// Command alfredo-discover browses the SLP discovery group: it prints
// announced invitations as they arrive and answers -query requests with
// an active service request.
//
// Usage:
//
//	alfredo-discover                       # watch invitations
//	alfredo-discover -query "(apps=*)"     # active search with predicate
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"github.com/alfredo-mw/alfredo/internal/discovery"
	"github.com/alfredo-mw/alfredo/internal/filter"
)

func main() {
	var (
		group   = flag.String("group", discovery.DefaultGroup, "discovery multicast group")
		query   = flag.String("query", "", "active search with an optional LDAP predicate")
		active  = flag.Bool("active", false, "perform an active search (implied by -query)")
		timeout = flag.Duration("timeout", 2*time.Second, "active search window")
	)
	flag.Parse()

	if err := run(*group, *query, *timeout, *active || *query != ""); err != nil {
		log.Fatalf("alfredo-discover: %v", err)
	}
}

func run(group, query string, window time.Duration, active bool) error {
	bus, err := discovery.NewUDPBus(group)
	if err != nil {
		return err
	}
	defer bus.Close()
	agent, err := discovery.NewAgent(fmt.Sprintf("discover-%d", os.Getpid()), bus)
	if err != nil {
		return err
	}
	defer agent.Close()

	if active {
		var pred *filter.Filter
		if query != "" {
			pred, err = filter.Parse(query)
			if err != nil {
				return fmt.Errorf("bad predicate: %w", err)
			}
		}
		fmt.Printf("searching %s for %v ...\n", group, window)
		ctx, cancel := context.WithTimeout(context.Background(), window)
		defer cancel()
		found, err := agent.Discover(ctx, "alfredo", "", pred)
		if err != nil {
			return err
		}
		if len(found) == 0 {
			fmt.Println("nothing found")
			return nil
		}
		for _, adv := range found {
			fmt.Printf("%-45s scope=%s attrs=%v\n", adv.URL, adv.Scope, adv.Attributes)
		}
		return nil
	}

	fmt.Printf("listening for invitations on %s (ctrl-c to stop)\n", group)
	agent.OnAnnouncement(func(adv discovery.Advertisement) {
		fmt.Printf("%s  %-45s %v\n", time.Now().Format("15:04:05"), adv.URL, adv.Attributes)
	})
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	return nil
}
