// Command alfredo-bench regenerates the paper's evaluation (§4): the
// resource-consumption report, Tables 1 and 2, Figures 3–6, and the
// three design-choice ablations. Measured values print next to the
// paper's reported numbers.
//
// Usage:
//
//	alfredo-bench                  # everything, short windows
//	alfredo-bench -exp table1      # one experiment
//	alfredo-bench -full -window 10s  # longer, with saturation points
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"github.com/alfredo-mw/alfredo/internal/bench"
)

func main() {
	var (
		exp     = flag.String("exp", "all", "experiment: all, "+strings.Join(bench.Order, ", "))
		window  = flag.Duration("window", 3*time.Second, "measurement window per point")
		warmup  = flag.Duration("warmup", time.Second, "warmup before each window")
		full    = flag.Bool("full", false, "include saturation points and full sweeps")
		reps    = flag.Int("repeats", 3, "repetitions for the startup tables")
		jsonDir = flag.String("json", "", "directory for BENCH_<exp>.json result files (empty = off)")
	)
	flag.Parse()

	cfg := bench.Config{
		Out:     os.Stdout,
		Window:  *window,
		Warmup:  *warmup,
		Full:    *full,
		Repeats: *reps,
		JSONDir: *jsonDir,
	}

	if *exp == "all" {
		if err := bench.RunAll(cfg); err != nil {
			log.Fatalf("alfredo-bench: %v", err)
		}
		return
	}
	runner, ok := bench.Experiments[*exp]
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown experiment %q; choose from: all, %s\n",
			*exp, strings.Join(bench.Order, ", "))
		os.Exit(2)
	}
	if err := runner(cfg); err != nil {
		log.Fatalf("alfredo-bench: %v", err)
	}
}
