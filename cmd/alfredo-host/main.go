// Command alfredo-host runs a target device: it hosts one or both of
// the prototype applications over real TCP, optionally serves the HTML
// rendering through the HTTP service, and announces itself on the SLP
// discovery group.
//
// Usage:
//
//	alfredo-host -listen 127.0.0.1:9278 -apps shop,mouse -announce
//	alfredo-host -listen 127.0.0.1:9278 -http 127.0.0.1:8080
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"github.com/alfredo-mw/alfredo/internal/apps/infoscreen"
	"github.com/alfredo-mw/alfredo/internal/apps/mousecontroller"
	"github.com/alfredo-mw/alfredo/internal/apps/sensorstream"
	"github.com/alfredo-mw/alfredo/internal/apps/shop"
	"github.com/alfredo-mw/alfredo/internal/core"
	"github.com/alfredo-mw/alfredo/internal/device"
	"github.com/alfredo-mw/alfredo/internal/discovery"
	"github.com/alfredo-mw/alfredo/internal/httpd"
	"github.com/alfredo-mw/alfredo/internal/obs"
	"github.com/alfredo-mw/alfredo/internal/remote"
)

func main() {
	var (
		listen     = flag.String("listen", "127.0.0.1:9278", "TCP address to serve AlfredO on")
		apps       = flag.String("apps", "shop,mouse", "comma-separated apps to host: shop, mouse, sensor, info")
		name       = flag.String("name", "alfredo-host", "device name announced to peers")
		announce   = flag.Bool("announce", false, "broadcast SLP invitations on the discovery group")
		group      = flag.String("group", discovery.DefaultGroup, "discovery multicast group")
		snapshot   = flag.Duration("snapshot", 500*time.Millisecond, "mouse screen snapshot interval")
		storage    = flag.String("storage", "", "directory for persistent bundle storage")
		obsAddr    = flag.String("obs", "", "serve the telemetry introspection endpoint (metrics + traces) on this address")
		dispatch   = flag.Int("dispatch-workers", 0, "max concurrent inbound invocation handlers per channel (0 = default, negative = unbounded)")
		chunkBytes = flag.Int("chunk-bytes", 0, "chunk size for content-addressed bundle serving (0 = default 4KB)")
		healthInt  = flag.Duration("health-interval", 0, "health scoring cadence; faster scores sharpen the signal phone optimizers read for re-placement (0 = default 5s)")
		streamWin  = flag.Int("stream-window", 0, "per-stream send window in bytes for credited streams (0 = default 256KB)")
	)
	flag.Parse()

	if err := run(*listen, *apps, *name, *group, *storage, *obsAddr, *snapshot, *announce, *dispatch, *chunkBytes, *healthInt, *streamWin); err != nil {
		log.Fatalf("alfredo-host: %v", err)
	}
}

func run(listen, apps, name, group, storage, obsAddr string, snapshotEvery time.Duration, announce bool, dispatchWorkers, chunkBytes int, healthInterval time.Duration, streamWindow int) error {
	// The host is the fleet telemetry sink: connected phones ship their
	// metric registries here, and the host scores its own health so the
	// admission layer sheds before saturation.
	agg := obs.NewAggregator()
	node, err := core.NewNode(core.NodeConfig{Name: name, Profile: device.Notebook(), StorageDir: storage,
		DispatchWorkers: dispatchWorkers, ChunkBytes: chunkBytes, StreamWindowBytes: streamWindow,
		Aggregator: agg, Health: &obs.HealthConfig{Interval: healthInterval}})
	if err != nil {
		return err
	}
	defer node.Close()

	var hosted []string
	var sensor *sensorstream.Service
	var screen *infoscreen.Screen
	for _, app := range strings.Split(apps, ",") {
		switch strings.TrimSpace(app) {
		case "shop":
			if err := node.RegisterApp(shop.New().App()); err != nil {
				return err
			}
			hosted = append(hosted, shop.InterfaceName)
		case "mouse":
			svc := mousecontroller.New(1280, 800)
			if err := node.RegisterApp(svc.App()); err != nil {
				return err
			}
			if err := svc.StartSnapshots(node.Events(), snapshotEvery); err != nil {
				return err
			}
			defer svc.StopSnapshots()
			hosted = append(hosted, mousecontroller.InterfaceName)
		case "sensor":
			sensor = sensorstream.New(nil)
			if err := node.RegisterApp(sensor.App()); err != nil {
				return err
			}
			hosted = append(hosted, sensorstream.InterfaceName)
		case "info":
			screen = infoscreen.NewScreen(remote.BroadcasterConfig{})
			defer screen.Close()
			if err := node.RegisterApp(screen.App()); err != nil {
				return err
			}
			hosted = append(hosted, infoscreen.InterfaceName)
		case "":
		default:
			return fmt.Errorf("unknown app %q (want shop, mouse, sensor, info)", app)
		}
	}
	if len(hosted) == 0 {
		return fmt.Errorf("no apps selected")
	}

	l, err := net.Listen("tcp", listen)
	if err != nil {
		return fmt.Errorf("listening on %s: %w", listen, err)
	}
	defer l.Close()
	node.Serve(l)
	fmt.Printf("%s serving %s on %s\n", name, strings.Join(hosted, ", "), l.Addr())

	// The streaming apps attach to phones as they connect: the sensor
	// starts its 120 Hz credited feed per channel, the info screen
	// subscribes the channel to the card broadcaster.
	if sensor != nil || screen != nil {
		stop := make(chan struct{})
		defer close(stop)
		go followChannels(node.Peer(), stop, func(ch *remote.Channel) {
			if sensor != nil {
				go func() {
					if err := sensor.Stream(ch, remote.StreamReliable, sensorFeedReadings); err != nil {
						log.Printf("sensor feed ended: %v", err)
					}
				}()
			}
			if screen != nil {
				if _, err := screen.Attach(ch); err != nil {
					log.Printf("infoscreen attach: %v", err)
				}
			}
		})
	}
	if screen != nil {
		go demoCards(screen)
	}

	// Live introspection: local metrics and traces, the fleet view of
	// every connected phone, the node's health score, and on-demand
	// pprof — all curl-able while the host serves sessions.
	if obsAddr != "" {
		web := httpd.NewService()
		if err := httpd.RegisterIntrospection(web, nil); err != nil {
			return err
		}
		// The fleet view folds the host's own registry in per scrape, so
		// one endpoint answers for the whole deployment.
		if err := httpd.RegisterFleet(web, agg, func() {
			agg.IngestRegistry(name, "", obs.Default().Metrics)
		}); err != nil {
			return err
		}
		if err := httpd.RegisterHealth(web, node.Health().Score); err != nil {
			return err
		}
		if err := httpd.RegisterPprof(web); err != nil {
			return err
		}
		addr, err := web.Start(obsAddr)
		if err != nil {
			return err
		}
		defer func() {
			ctx, cancel := context.WithTimeout(context.Background(), time.Second)
			defer cancel()
			_ = web.Stop(ctx)
		}()
		fmt.Printf("telemetry at http://%s%s/metrics\n", addr, httpd.IntrospectionAlias)
		fmt.Printf("fleet view at http://%s%s/metrics, health at http://%s%s\n",
			addr, httpd.FleetAlias, addr, httpd.HealthAlias)
	}

	if announce {
		bus, err := discovery.NewUDPBus(group)
		if err != nil {
			return fmt.Errorf("joining discovery group: %w", err)
		}
		defer bus.Close()
		agent, err := discovery.NewAgent(name, bus)
		if err != nil {
			return err
		}
		defer agent.Close()
		if _, err := agent.Register(discovery.Advertisement{
			URL:        discovery.MakeServiceURL("alfredo", l.Addr().String()),
			Attributes: map[string]any{"apps": strings.Join(hosted, ","), "name": name},
		}); err != nil {
			return err
		}
		if err := agent.StartAnnouncing(2 * time.Second); err != nil {
			return err
		}
		defer agent.StopAnnouncing()
		fmt.Printf("announcing on %s every 2s\n", group)
	}

	sig := make(chan os.Signal, 1)

	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Println("shutting down")
	return nil
}

// sensorFeedReadings is one hour of feed at 120 Hz — effectively "run
// until the phone disconnects" for an interactive session.
const sensorFeedReadings = 120 * 3600

// followChannels polls the peer's channel set and calls attach exactly
// once for every channel that appears (each phone connecting over TCP).
func followChannels(peer *remote.Peer, stop <-chan struct{}, attach func(*remote.Channel)) {
	seen := make(map[*remote.Channel]bool)
	ticker := time.NewTicker(500 * time.Millisecond)
	defer ticker.Stop()
	for {
		select {
		case <-stop:
			return
		case <-ticker.C:
			for _, ch := range peer.Channels() {
				if !seen[ch] {
					seen[ch] = true
					attach(ch)
				}
			}
		}
	}
}

// demoCards keeps the info screen's board alive with a clock card and
// a rotating departures card, so attached viewers see keyed updates
// (and coalescing, on slow links) without any operator input.
func demoCards(screen *infoscreen.Screen) {
	gates := []string{"Boarding 14:20", "Final call", "Departed", "Boarding 16:05"}
	ticker := time.NewTicker(time.Second)
	defer ticker.Stop()
	for i := 0; ; i++ {
		<-ticker.C
		screen.Update("clock", "Time", time.Now().Format(time.RFC1123))
		screen.Update("gate-4", "Flight LX8", gates[i%len(gates)])
	}
}
