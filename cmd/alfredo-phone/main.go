// Command alfredo-phone is the interactive client: it connects to an
// alfredo-host over TCP (or discovers one via SLP), leases an
// application, renders it with the chosen device profile, and drives it
// from a small REPL.
//
// Usage:
//
//	alfredo-phone -connect 127.0.0.1:9278 -profile nokia9300i
//	alfredo-phone -discover
//
// REPL commands:
//
//	list                        show leased services
//	acquire <interface>         lease a service and render its UI
//	show                        print the current screen
//	press <control>             press a button / pad
//	select <control> <value>    select a list/choice entry
//	type <control> <text>       change a text input
//	move <control> <dx> <dy>    move a pad
//	ping                        measure link RTT
//	streams                     show live stream feeds (sensor, info screen)
//	release                     release the current app
//	quit
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"strconv"
	"strings"
	"sync"
	"time"

	"github.com/alfredo-mw/alfredo/internal/apps/infoscreen"
	"github.com/alfredo-mw/alfredo/internal/apps/sensorstream"
	"github.com/alfredo-mw/alfredo/internal/apps/shop"
	"github.com/alfredo-mw/alfredo/internal/core"
	"github.com/alfredo-mw/alfredo/internal/device"
	"github.com/alfredo-mw/alfredo/internal/devsim"
	"github.com/alfredo-mw/alfredo/internal/discovery"
	"github.com/alfredo-mw/alfredo/internal/httpd"
	"github.com/alfredo-mw/alfredo/internal/obs"
	"github.com/alfredo-mw/alfredo/internal/remote"
	"github.com/alfredo-mw/alfredo/internal/render"
	"github.com/alfredo-mw/alfredo/internal/ui"
)

func main() {
	var (
		connect    = flag.String("connect", "", "TCP address of an alfredo-host")
		discover   = flag.Bool("discover", false, "discover a host via SLP instead of -connect")
		group      = flag.String("group", discovery.DefaultGroup, "discovery multicast group")
		profile    = flag.String("profile", "nokia9300i", "device profile: nokia9300i, se-m600i, iphone, notebook")
		simulate   = flag.Bool("simulate-cpu", false, "simulate the profile's CPU speed (realistic acquire times)")
		httpAddr   = flag.String("http", "", "serve html-rendered apps on this address (the browser/iPhone path)")
		obsAddr    = flag.String("obs", "", "serve the telemetry introspection endpoint (metrics + traces) on this address")
		dispatch   = flag.Int("dispatch-workers", 0, "max concurrent inbound invocation handlers per channel (0 = default, negative = unbounded)")
		cacheBytes = flag.Int64("cache-bytes", 8<<20, "chunk cache byte budget for warm-start acquisitions (0 disables)")
		cacheDir   = flag.String("cache-dir", "", "persist cached chunks in this directory so warm starts survive restarts")
		metricsInt = flag.Duration("metrics-interval", 0, "cadence for shipping metrics to a host that is a telemetry sink (0 = default 10s, negative disables)")
		optimize   = flag.Bool("optimize", false, "run the online optimizer on acquired apps: pull the logic tier when the link degrades, push it back when it recovers")
		pullRTT    = flag.Duration("pull-rtt", 0, "smoothed RTT above which the optimizer pulls movable logic tiers (0 = default 20ms)")
		pushRTT    = flag.Duration("push-rtt", 0, "smoothed RTT below which pulled logic tiers are pushed back (0 = default pull-rtt/4)")
		placeDwell = flag.Duration("place-dwell", 0, "minimum time between placement reversals of one dependency (0 = default 10 probe intervals)")
		streamWin  = flag.Int("stream-window", 0, "per-stream receive window in bytes granted to credited senders (0 = default 256KB)")
	)
	flag.Parse()

	place := placementFlags{Optimize: *optimize, PullRTT: *pullRTT, PushRTT: *pushRTT, Dwell: *placeDwell}
	if err := run(*connect, *group, *profile, *httpAddr, *obsAddr, *discover, *simulate, *dispatch, *cacheBytes, *cacheDir, *metricsInt, *streamWin, place); err != nil {
		log.Fatalf("alfredo-phone: %v", err)
	}
}

// placementFlags carries the live re-placement tuning from the command
// line to the per-acquisition optimizer.
type placementFlags struct {
	Optimize bool
	PullRTT  time.Duration
	PushRTT  time.Duration
	Dwell    time.Duration
}

func run(connect, group, profileName, httpAddr, obsAddr string, discover, simulate bool, dispatchWorkers int, cacheBytes int64, cacheDir string, metricsInterval time.Duration, streamWindow int, place placementFlags) error {
	prof, ok := device.ProfileByName(profileName)
	if !ok {
		return fmt.Errorf("unknown profile %q", profileName)
	}
	var sim *devsim.Device
	if simulate {
		sim, _ = devsim.DeviceByName(prof.SimDevice)
	}

	if discover {
		addr, err := discoverHost(group)
		if err != nil {
			return err
		}
		connect = addr
	}
	if connect == "" {
		return fmt.Errorf("need -connect or -discover")
	}

	proxyCode := remote.NewProxyCodeRegistry()
	// Pre-install the shop's smart proxy code (trusted distribution).
	if err := shop.RegisterProxyCode(proxyCode); err != nil {
		return err
	}
	node, err := core.NewNode(core.NodeConfig{
		Name:            "phone-" + profileName,
		Profile:         prof,
		Sim:             sim,
		ProxyCode:       proxyCode,
		DispatchWorkers: dispatchWorkers,
		CacheBytes:      cacheBytes,
		CacheDir:        cacheDir,
		// Ship this phone's registry to any host that announces a
		// telemetry sink, and score local health continuously — the
		// signal the online optimizer's MaxLocalLoad gate reads.
		MetricsInterval: metricsInterval,
		Health:          &obs.HealthConfig{},
		// Receive window granted to each credited stream sender; lower
		// it on constrained profiles to bound feed memory.
		StreamWindowBytes: streamWindow,
	})
	if err != nil {
		return err
	}
	defer node.Close()

	conn, err := net.Dial("tcp", connect)
	if err != nil {
		return fmt.Errorf("connecting to %s: %w", connect, err)
	}
	session, err := node.Connect(conn)
	if err != nil {
		return err
	}
	defer session.Close()
	fmt.Printf("connected to %s as a %s\n", session.RemoteID(), prof.Name)

	// Inbound streams from the host: the sensor feed and the info
	// screen's card broadcast, dispatched by stream name. Registered
	// right after connect so the host's first feed finds a handler.
	feeds := newPhoneFeeds()
	session.Channel().HandleStreams(feeds.handle)

	// The servlet path: acquired HTML views are registered with the
	// HTTP service so any browser can drive them (§3.3, the paper's
	// iPhone scenario).
	var web *httpd.Service
	if httpAddr != "" {
		web = httpd.NewService()
		addr, err := web.Start(httpAddr)
		if err != nil {
			return err
		}
		defer func() {
			ctx, cancel := context.WithTimeout(context.Background(), time.Second)
			defer cancel()
			_ = web.Stop(ctx)
		}()
		fmt.Printf("serving html views on http://%s/\n", addr)
		// Piggyback the introspection endpoint on the servlet service.
		if err := httpd.RegisterIntrospection(web, nil); err == nil {
			fmt.Printf("telemetry at http://%s%s/metrics\n", addr, httpd.IntrospectionAlias)
		}
	}

	// Dedicated telemetry endpoint when no -http service is running (or
	// a separate port is wanted). Carries health and pprof alongside the
	// metrics so an overloaded phone can be profiled in place.
	if obsAddr != "" {
		ws := httpd.NewService()
		if err := httpd.RegisterIntrospection(ws, nil); err != nil {
			return err
		}
		if err := httpd.RegisterHealth(ws, node.Health().Score); err != nil {
			return err
		}
		if err := httpd.RegisterPprof(ws); err != nil {
			return err
		}
		addr, err := ws.Start(obsAddr)
		if err != nil {
			return err
		}
		defer func() {
			ctx, cancel := context.WithTimeout(context.Background(), time.Second)
			defer cancel()
			_ = ws.Stop(ctx)
		}()
		fmt.Printf("telemetry at http://%s%s/metrics\n", addr, httpd.IntrospectionAlias)
	}

	return repl(session, prof, web, place, feeds)
}

// phoneFeeds holds the phone ends of the host's streaming apps. Each
// inbound stream gets a fresh collector so a host restarting a feed
// (or several hosts' worth of reconnects) never reuses a finished one.
type phoneFeeds struct {
	mu     sync.Mutex
	sensor *sensorstream.Collector
	viewer *infoscreen.Viewer
	keys   []string
}

func newPhoneFeeds() *phoneFeeds { return &phoneFeeds{} }

func (f *phoneFeeds) handle(r *remote.StreamReader) {
	switch r.Name {
	case sensorstream.StreamName:
		c := sensorstream.NewCollector()
		f.mu.Lock()
		f.sensor = c
		f.mu.Unlock()
		c.Handle(r)
	case infoscreen.BroadcastName:
		v := infoscreen.NewViewer()
		f.mu.Lock()
		f.viewer = v
		f.mu.Unlock()
		v.Handle(r)
	default:
		for {
			if _, err := r.Next(); err != nil {
				return
			}
		}
	}
}

// show prints the live feed state to the REPL.
func (f *phoneFeeds) show() {
	f.mu.Lock()
	sensor, viewer := f.sensor, f.viewer
	f.mu.Unlock()
	if sensor == nil && viewer == nil {
		fmt.Println("  no live streams (host apps: sensor, info)")
		return
	}
	if sensor != nil {
		latest, received := sensor.Latest()
		fmt.Printf("  sensor: %d readings, latest #%d accel %.3f,%.3f,%.3f (gaps %d)\n",
			received, latest.Seq, latest.X, latest.Y, latest.Z, sensor.Gaps())
		if err := sensor.Err(); err != nil {
			fmt.Println("  sensor error:", err)
		}
	}
	if viewer != nil {
		fmt.Printf("  info screen: %d updates\n", viewer.Updates())
		for _, key := range []string{"clock", "gate-4"} {
			if c, ok := viewer.Card(key); ok {
				fmt.Printf("    [%s] %s — %s (rev %d)\n", c.Key, c.Title, c.Body, c.Revision)
			}
		}
	}
}

// startOptimizer attaches the online optimizer to a freshly acquired
// application, printing each re-placement decision. Release stops it.
func startOptimizer(app *core.Application, place placementFlags) {
	_, err := app.StartOptimizer(core.OptimizerConfig{
		RTTThreshold: place.PullRTT,
		PushRTT:      place.PushRTT,
		MinDwell:     place.Dwell,
		OnDecision: func(d core.Decision) {
			if d.Skipped {
				fmt.Println("  [optimizer] probe failed; round skipped")
				return
			}
			for _, s := range d.Pulled {
				fmt.Printf("  [optimizer] pulled %s (srtt %v)\n", s, d.SmoothedRTT.Round(time.Millisecond))
			}
			for _, s := range d.Pushed {
				fmt.Printf("  [optimizer] pushed %s back (srtt %v)\n", s, d.SmoothedRTT.Round(time.Millisecond))
			}
		},
	})
	if err != nil {
		fmt.Println("  optimizer not started:", err)
		return
	}
	fmt.Println("  optimizer online (live pull/push re-placement)")
}

func discoverHost(group string) (string, error) {
	bus, err := discovery.NewUDPBus(group)
	if err != nil {
		return "", err
	}
	defer bus.Close()
	agent, err := discovery.NewAgent(fmt.Sprintf("phone-%d", os.Getpid()), bus)
	if err != nil {
		return "", err
	}
	defer agent.Close()
	fmt.Println("discovering hosts for 2s ...")
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	found, err := agent.Discover(ctx, "alfredo", "", nil)
	if err != nil {
		return "", err
	}
	if len(found) == 0 {
		return "", fmt.Errorf("no hosts discovered on %s", group)
	}
	for _, adv := range found {
		fmt.Printf("  found %s %v\n", adv.URL, adv.Attributes)
	}
	_, addr, err := discovery.ParseServiceURL(found[0].URL)
	return addr, err
}

func repl(session *core.Session, prof device.Profile, web *httpd.Service, place placementFlags, feeds *phoneFeeds) error {
	var app *core.Application
	scanner := bufio.NewScanner(os.Stdin)
	fmt.Print("> ")
	for scanner.Scan() {
		fields := strings.Fields(scanner.Text())
		if len(fields) == 0 {
			fmt.Print("> ")
			continue
		}
		cmd, args := fields[0], fields[1:]
		switch cmd {
		case "quit", "exit":
			return nil
		case "list":
			for _, s := range session.Services() {
				fmt.Printf("  #%d %s\n", s.ID, strings.Join(s.Interfaces, ", "))
			}
		case "streams":
			feeds.show()
		case "ping":
			rtt, err := session.Ping()
			if err != nil {
				fmt.Println("  error:", err)
			} else {
				fmt.Printf("  rtt %v\n", rtt.Round(time.Microsecond))
			}
		case "acquire":
			if len(args) != 1 {
				fmt.Println("  usage: acquire <interface>")
				break
			}
			if app != nil {
				app.Release()
				app = nil
			}
			a, err := session.Acquire(args[0], core.AcquireOptions{
				Policy: core.AdaptivePolicy{}, Trusted: true,
			})
			if err != nil {
				fmt.Println("  error:", err)
				break
			}
			app = a
			if place.Optimize {
				startOptimizer(a, place)
			}
			if web != nil {
				if hv, ok := a.View.(*render.HTMLView); ok {
					alias := "/" + strings.ToLower(args[0])
					if err := web.RegisterServlet(alias, hv); err == nil {
						if addr, up := web.Addr(); up {
							fmt.Printf("  browse at http://%s%s/\n", addr, alias)
						}
					}
				}
			}
			t := a.Timing
			fmt.Printf("  acquired in %v (fetch %v, build %v, install %v, start %v)\n",
				t.TotalStart().Round(time.Millisecond), t.AcquireInterface.Round(time.Millisecond),
				t.BuildProxy.Round(time.Millisecond), t.InstallProxy.Round(time.Millisecond),
				t.StartProxy.Round(time.Millisecond))
			if f := a.Fetch; f.Mode != "" && f.Mode != remote.FetchModeLegacy {
				fmt.Printf("  fetch %s: %d/%d chunks over the wire, %d bytes served from cache\n",
					f.Mode, f.ChunksFetched, f.ChunksTotal, f.BytesSaved)
			}
			fmt.Println(a.View.Render())
		case "show":
			if app == nil {
				fmt.Println("  no app acquired")
				break
			}
			fmt.Println(app.View.Render())
		case "press", "select", "type", "move":
			if app == nil {
				fmt.Println("  no app acquired")
				break
			}
			ev, err := buildEvent(cmd, args)
			if err != nil {
				fmt.Println(" ", err)
				break
			}
			if err := app.View.Inject(ev); err != nil {
				fmt.Println("  error:", err)
				break
			}
			fmt.Println(app.View.Render())
		case "release":
			if app != nil {
				app.Release()
				app = nil
				fmt.Println("  released")
			}
		default:
			fmt.Println("  commands: list, acquire, show, press, select, type, move, ping, streams, release, quit")
		}
		fmt.Print("> ")
	}
	return scanner.Err()
}

func buildEvent(cmd string, args []string) (ui.Event, error) {
	switch cmd {
	case "press":
		if len(args) != 1 {
			return ui.Event{}, fmt.Errorf("usage: press <control>")
		}
		return ui.Event{Control: args[0], Kind: ui.EventPress}, nil
	case "select":
		if len(args) < 2 {
			return ui.Event{}, fmt.Errorf("usage: select <control> <value>")
		}
		return ui.Event{Control: args[0], Kind: ui.EventSelect, Value: strings.Join(args[1:], " ")}, nil
	case "type":
		if len(args) < 2 {
			return ui.Event{}, fmt.Errorf("usage: type <control> <text>")
		}
		return ui.Event{Control: args[0], Kind: ui.EventChange, Value: strings.Join(args[1:], " ")}, nil
	case "move":
		if len(args) != 3 {
			return ui.Event{}, fmt.Errorf("usage: move <control> <dx> <dy>")
		}
		dx, err1 := strconv.ParseInt(args[1], 10, 64)
		dy, err2 := strconv.ParseInt(args[2], 10, 64)
		if err1 != nil || err2 != nil {
			return ui.Event{}, fmt.Errorf("dx/dy must be integers")
		}
		return ui.Event{Control: args[0], Kind: ui.EventMove, Value: []any{dx, dy}}, nil
	}
	return ui.Event{}, fmt.Errorf("unknown command %q", cmd)
}
