package alfredo_test

import (
	"testing"

	"github.com/alfredo-mw/alfredo/internal/filter"
	"github.com/alfredo-mw/alfredo/internal/script"
	"github.com/alfredo-mw/alfredo/internal/ui"
	"github.com/alfredo-mw/alfredo/internal/wire"
)

// Native fuzz targets for every parser that consumes untrusted input:
// the wire decoder (network frames), the LDAP filter parser (service
// predicates from peers), the expression parser (shipped controller
// rules), and the UI description parser (shipped descriptors). Run at
// depth with `go test -fuzz=FuzzWireDecode .` etc.; during normal test
// runs only the seed corpus executes, acting as a regression net.

func FuzzWireDecode(f *testing.F) {
	for _, m := range []wire.Message{
		&wire.Hello{PeerID: "p", Version: 1, Props: map[string]any{"a": int64(1)}},
		&wire.Invoke{CallID: 1, ServiceID: 2, Method: "M", Args: []any{"x", int64(3)}},
		&wire.Invoke{CallID: 1, ServiceID: 2, Method: "M", Args: []any{"x"},
			TraceID: 0xdeadbeefcafe, SpanID: 7},
		&wire.FetchService{RequestID: 4, ServiceID: 9, TraceID: 1, SpanID: 1},
		&wire.ServiceReply{RequestID: 1, Descriptor: []byte("{}")},
		&wire.Event{Topic: "a/b", Props: map[string]any{}},
		&wire.StreamData{StreamID: 9, Chunk: []byte{1, 2, 3}},
		&wire.StreamData{StreamID: 9, Chunk: []byte{1, 2, 3}, More: true},
		&wire.StreamCredit{StreamID: 9, Bytes: 1 << 18},
		&wire.FetchManifest{RequestID: 4, ServiceID: 9, TraceID: 1, SpanID: 1},
		&wire.ManifestReply{RequestID: 4, OK: true, Version: 2, ChunkBytes: 4096,
			TotalBytes: 5, Root: "r", Chunks: []wire.ChunkRef{{Hash: "h", Size: 5}}},
		&wire.FetchChunks{RequestID: 4, Hashes: []string{"h1", "h2"}},
		&wire.ChunkData{RequestID: 4, Hash: "h1", Compressed: true, Data: []byte{9}},
		&wire.MetricsReport{Node: "n", Seq: 2, Full: true, Samples: []wire.MetricSample{
			{Name: "c", Kind: wire.MetricCounter, Labels: []string{"k", "v"}, Value: 7},
			{Name: "m", Kind: wire.MetricMeter, Rate: 1.5},
			{Name: "h", Kind: wire.MetricHistogram, Buckets: []int64{1, 0, 2},
				Count: 3, Sum: 12, WinBuckets: []int64{1, 0, 0}, WinCount: 1, WinSum: 4},
		}},
	} {
		frame, err := wire.EncodeMessage(m)
		if err != nil {
			f.Fatal(err)
		}
		payload := frame[4:]
		f.Add(payload)
		// Truncation seeds: chop the payload at several depths, modeling
		// a stream cut mid-frame.
		for _, frac := range []int{2, 3, 4} {
			f.Add(payload[:len(payload)/frac])
		}
		// Bit-flip seeds: single-bit corruption like a noisy radio link
		// (netsim FaultCorrupt) would produce.
		for _, bit := range []int{0, 7, len(payload) * 4, len(payload)*8 - 1} {
			flipped := make([]byte, len(payload))
			copy(flipped, payload)
			flipped[bit/8] ^= 1 << (bit % 8)
			f.Add(flipped)
		}
	}
	f.Add([]byte{})
	f.Add([]byte{0xFF, 0x00})

	f.Fuzz(func(t *testing.T, payload []byte) {
		msg, err := wire.DecodeMessage(payload)
		if err != nil {
			return
		}
		// Valid decodes must re-encode without panicking.
		if _, err := wire.EncodeMessage(msg); err != nil {
			// Some decoded values (e.g. oversized re-encodes) may fail
			// encoding; that is an error, not a panic, and acceptable.
			_ = err
		}
	})
}

func FuzzFilterParse(f *testing.F) {
	for _, s := range []string{
		"(a=b)", "(&(a=b)(c>=5))", "(|(x~=y)(!(z=*)))", "(name=Mouse*ler)",
		"(((", "(a=b))", `(p=a\*b)`,
	} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, s string) {
		flt, err := filter.Parse(s)
		if err != nil {
			return
		}
		// Canonical form must reparse to the same canonical form.
		again, err := filter.Parse(flt.String())
		if err != nil {
			t.Fatalf("canonical form %q of %q does not reparse: %v", flt.String(), s, err)
		}
		if flt.String() != again.String() {
			t.Fatalf("canonical form unstable: %q -> %q", flt.String(), again.String())
		}
		// Matching must not panic on assorted property shapes.
		flt.Matches(map[string]any{"a": "b", "c": int64(7), "z": []string{"v"}})
	})
}

func FuzzExprParse(f *testing.F) {
	for _, s := range []string{
		"1 + 2 * 3", "event.value[0] * 8", "'a' + 'b'", "len(items) > 0 && enabled",
		"clamp(x, 0, 10)", "((", "1 +",
	} {
		f.Add(s)
	}
	env := map[string]any{
		"event":   map[string]any{"value": []any{int64(1), int64(2)}},
		"items":   []any{"a"},
		"enabled": true,
		"x":       int64(5),
	}
	f.Fuzz(func(t *testing.T, s string) {
		e, err := script.ParseExpr(s)
		if err != nil {
			return
		}
		// Evaluation may fail (unknown vars etc.) but must not panic.
		_, _ = e.Eval(env)
	})
}

func FuzzDescriptorParse(f *testing.F) {
	valid := &ui.Description{
		Title: "t",
		Controls: []ui.Control{
			{ID: "a", Kind: ui.KindButton, Text: "go"},
			{ID: "b", Kind: ui.KindRange, Min: 0, Max: 5},
		},
		Relations: []ui.Relation{{Kind: ui.RelOrder, Members: []string{"a", "b"}}},
	}
	b, err := valid.Marshal()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(b)
	f.Add([]byte("{}"))
	f.Add([]byte(`{"controls":[{"id":"x","kind":"nope"}]}`))

	f.Fuzz(func(t *testing.T, data []byte) {
		d, err := ui.Unmarshal(data)
		if err != nil {
			return
		}
		// A successfully parsed description must re-marshal and still
		// validate.
		if err := d.Validate(); err != nil {
			t.Fatalf("Unmarshal returned invalid description: %v", err)
		}
		if _, err := d.Marshal(); err != nil {
			t.Fatalf("re-marshal failed: %v", err)
		}
	})
}
