package alfredo_test

import (
	"encoding/json"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"github.com/alfredo-mw/alfredo/internal/apps/shop"
	"github.com/alfredo-mw/alfredo/internal/core"
	"github.com/alfredo-mw/alfredo/internal/device"
	"github.com/alfredo-mw/alfredo/internal/httpd"
	"github.com/alfredo-mw/alfredo/internal/obs"
)

// TestCrossPeerTraceViaIntrospection is the acceptance check for the
// telemetry stack: a single remote invocation from the phone must
// produce ONE trace whose spans come from both peers — the phone's
// app.invoke/rpc.invoke and the host's rpc.serve — and that trace must
// be reachable through the HTTP introspection endpoint, along with a
// Prometheus metrics view carrying the invoke counters of both sides.
func TestCrossPeerTraceViaIntrospection(t *testing.T) {
	// Both nodes share one fresh hub, exactly as two peers reporting to
	// the same collector would: the trace store merges their spans by
	// trace ID, which only works if the IDs actually crossed the wire.
	hub := obs.NewHub()

	host, err := core.NewNode(core.NodeConfig{Name: "trace-host", Profile: device.Notebook(), Obs: hub})
	if err != nil {
		t.Fatal(err)
	}
	defer host.Close()
	if err := host.RegisterApp(shop.New().App()); err != nil {
		t.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	host.Serve(l)

	phone, err := core.NewNode(core.NodeConfig{Name: "trace-phone", Profile: device.Nokia9300i(), Obs: hub})
	if err != nil {
		t.Fatal(err)
	}
	defer phone.Close()
	conn, err := net.Dial("tcp", l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	session, err := phone.Connect(conn)
	if err != nil {
		t.Fatal(err)
	}
	defer session.Close()

	app, err := session.Acquire(shop.InterfaceName, core.AcquireOptions{SkipUI: true})
	if err != nil {
		t.Fatal(err)
	}
	before := hub.Traces.Len()
	if _, err := app.Invoke("Categories"); err != nil {
		t.Fatal(err)
	}

	// Find the invoke trace among the recent ones (acquire traced too).
	var invokeTrace string
	for _, sum := range hub.Traces.Recent(10) {
		if sum.Root == "app.invoke" {
			invokeTrace = sum.TraceID
			if sum.Spans < 3 {
				t.Fatalf("app.invoke trace has %d spans, want >= 3 (client + server)", sum.Spans)
			}
		}
	}
	if invokeTrace == "" {
		t.Fatalf("no app.invoke trace recorded (have %d traces, %d before invoke)",
			hub.Traces.Len(), before)
	}

	// The whole thing must be visible through the introspection servlet,
	// mounted on the httpd service like the cmd/ tools mount it.
	svc := httpd.NewService()
	if err := httpd.RegisterIntrospection(svc, hub); err != nil {
		t.Fatal(err)
	}
	web := httptest.NewServer(svc)
	defer web.Close()

	get := func(path string) string {
		t.Helper()
		resp, err := http.Get(web.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(body)
	}

	// One trace, spans from both peers, via the text trace view.
	tree := get("/obs/trace?id=" + invokeTrace + "&format=text")
	for _, want := range []string{"app.invoke", "rpc.invoke", "rpc.serve", "node=trace-phone", "node=trace-host"} {
		if !strings.Contains(tree, want) {
			t.Errorf("trace view missing %q:\n%s", want, tree)
		}
	}

	// The JSON span view must carry the shared trace id on every span.
	var spans []struct {
		Name    string `json:"name"`
		TraceID string `json:"trace_id"`
	}
	if err := json.Unmarshal([]byte(get("/obs/trace?id="+invokeTrace)), &spans); err != nil {
		t.Fatal(err)
	}
	if len(spans) < 3 {
		t.Fatalf("JSON trace has %d spans, want >= 3", len(spans))
	}
	for _, sp := range spans {
		if sp.TraceID != invokeTrace {
			t.Errorf("span %s carries trace %s, want %s", sp.Name, sp.TraceID, invokeTrace)
		}
	}

	// Metrics endpoint: Prometheus exposition with both sides' counters.
	metrics := get("/obs/metrics")
	for _, want := range []string{
		"alfredo_remote_invokes_total{service=\"" + shop.InterfaceName + "\"}",
		"alfredo_remote_served_invokes_total{service=\"" + shop.InterfaceName + "\"}",
		"alfredo_remote_invoke_seconds_bucket",
		"# TYPE alfredo_remote_invoke_seconds histogram",
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("metrics view missing %q", want)
		}
	}
	// Frame I/O counters land on the process-wide hub (the wire layer
	// has no per-connection hub); they must be serveable the same way.
	defaultHandler := httpd.NewIntrospectionHandler(nil)
	rec := httptest.NewRecorder()
	defaultHandler.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if !strings.Contains(rec.Body.String(), "alfredo_wire_frames_encoded_total") {
		t.Error("default-hub metrics view missing alfredo_wire_frames_encoded_total")
	}

	// Trace summaries list the invoke trace.
	if recent := get("/obs/traces?n=50"); !strings.Contains(recent, invokeTrace) {
		t.Errorf("/obs/traces does not list trace %s", invokeTrace)
	}
}
