module github.com/alfredo-mw/alfredo

go 1.22
