package filter

import (
	"errors"
	"strconv"
	"strings"
	"testing"
	"testing/quick"
)

func mustMatch(t *testing.T, expr string, attrs map[string]any) {
	t.Helper()
	f, err := Parse(expr)
	if err != nil {
		t.Fatalf("Parse(%q): %v", expr, err)
	}
	if !f.Matches(attrs) {
		t.Errorf("filter %q should match %v", expr, attrs)
	}
}

func mustNotMatch(t *testing.T, expr string, attrs map[string]any) {
	t.Helper()
	f, err := Parse(expr)
	if err != nil {
		t.Fatalf("Parse(%q): %v", expr, err)
	}
	if f.Matches(attrs) {
		t.Errorf("filter %q should not match %v", expr, attrs)
	}
}

func TestEquality(t *testing.T) {
	attrs := map[string]any{"objectClass": "ch.ethz.PointerService", "port": 9278}
	mustMatch(t, "(objectClass=ch.ethz.PointerService)", attrs)
	mustNotMatch(t, "(objectClass=ch.ethz.ShopService)", attrs)
	mustMatch(t, "(port=9278)", attrs)
	mustNotMatch(t, "(port=9279)", attrs)
}

func TestCaseInsensitiveAttributeNames(t *testing.T) {
	attrs := map[string]any{"Service.Ranking": 5}
	mustMatch(t, "(service.ranking=5)", attrs)
	mustMatch(t, "(SERVICE.RANKING>=4)", attrs)
}

func TestNumericComparisons(t *testing.T) {
	attrs := map[string]any{"mem": int64(4096), "load": 0.75, "cores": uint8(4)}
	mustMatch(t, "(mem>=4096)", attrs)
	mustMatch(t, "(mem<=4096)", attrs)
	mustNotMatch(t, "(mem>=4097)", attrs)
	mustMatch(t, "(load>=0.5)", attrs)
	mustNotMatch(t, "(load>=0.9)", attrs)
	mustMatch(t, "(cores>=2)", attrs)
	// Float literal against an integer attribute.
	mustMatch(t, "(mem>=4095.5)", attrs)
}

func TestBooleanComparison(t *testing.T) {
	attrs := map[string]any{"remote": true}
	mustMatch(t, "(remote=true)", attrs)
	mustNotMatch(t, "(remote=false)", attrs)
	mustMatch(t, "(remote>=false)", attrs)
}

func TestPresence(t *testing.T) {
	attrs := map[string]any{"screen": "640x200"}
	mustMatch(t, "(screen=*)", attrs)
	mustNotMatch(t, "(keyboard=*)", attrs)
}

func TestSubstring(t *testing.T) {
	attrs := map[string]any{"name": "MouseController"}
	mustMatch(t, "(name=Mouse*)", attrs)
	mustMatch(t, "(name=*Controller)", attrs)
	mustMatch(t, "(name=M*use*ler)", attrs)
	mustMatch(t, "(name=*ouse*)", attrs)
	mustNotMatch(t, "(name=Shop*)", attrs)
	mustNotMatch(t, "(name=*Shop*)", attrs)
	// Segments must match in order without overlap.
	mustNotMatch(t, "(name=*Controller*Mouse*)", attrs)
}

func TestApprox(t *testing.T) {
	attrs := map[string]any{"vendor": "Sony Ericsson"}
	mustMatch(t, "(vendor~=sonyericsson)", attrs)
	mustMatch(t, "(vendor~=SONY ERICSSON)", attrs)
	mustNotMatch(t, "(vendor~=nokia)", attrs)
}

func TestComposite(t *testing.T) {
	attrs := map[string]any{"objectClass": "ui.PointingDevice", "precision": 3}
	mustMatch(t, "(&(objectClass=ui.PointingDevice)(precision>=2))", attrs)
	mustNotMatch(t, "(&(objectClass=ui.PointingDevice)(precision>=4))", attrs)
	mustMatch(t, "(|(objectClass=ui.KeyboardDevice)(objectClass=ui.PointingDevice))", attrs)
	mustNotMatch(t, "(!(objectClass=ui.PointingDevice))", attrs)
	mustMatch(t, "(!(objectClass=ui.KeyboardDevice))", attrs)
	mustMatch(t, "(&(|(precision=1)(precision=3))(!(objectClass=x)))", attrs)
}

func TestMultiValuedAttributes(t *testing.T) {
	attrs := map[string]any{
		"capabilities": []string{"KeyboardDevice", "PointingDevice"},
		"ports":        []any{80, 9278},
	}
	mustMatch(t, "(capabilities=PointingDevice)", attrs)
	mustNotMatch(t, "(capabilities=ScreenDevice)", attrs)
	mustMatch(t, "(ports=9278)", attrs)
	mustMatch(t, "(capabilities=Pointing*)", attrs)
}

func TestEscaping(t *testing.T) {
	attrs := map[string]any{"desc": "a*b(c)d\\e"}
	mustMatch(t, `(desc=a\*b\(c\)d\\e)`, attrs)
	mustNotMatch(t, `(desc=a\*b\(c\)d\\f)`, attrs)
	// An escaped '*' is a literal, so this is equality not substring.
	mustNotMatch(t, `(desc=a\*)`, attrs)
}

func TestNilAndMissing(t *testing.T) {
	var f *Filter
	if f.Matches(map[string]any{"a": 1}) {
		t.Error("nil filter must match nothing")
	}
	mustNotMatch(t, "(a=1)", nil)
	mustNotMatch(t, "(a>=1)", map[string]any{"b": 2})
}

func TestWhitespaceTolerance(t *testing.T) {
	attrs := map[string]any{"a": "x", "b": int64(2)}
	mustMatch(t, " ( & (a=x) ( b>=2 ) ) ", attrs)
}

func TestSyntaxErrors(t *testing.T) {
	bad := []string{
		"",
		"(",
		"()",
		"(a)",
		"(a=x",
		"a=x",
		"(=x)",
		"(a=x))",
		"(&)",
		"(!(a=x)(b=y))",
		"(a>x)",
		"(a<x)",
		"(a~x)",
		"(a=x\\)",
		"(a*=x)",
		"(a=(x))",
		"(a>=*)",
		"(a<=foo*bar)",
	}
	for _, s := range bad {
		if _, err := Parse(s); err == nil {
			t.Errorf("Parse(%q) should fail", s)
		} else if !errors.Is(err, ErrSyntax) {
			t.Errorf("Parse(%q) error %v is not ErrSyntax", s, err)
		}
	}
}

func TestStringRoundTrip(t *testing.T) {
	exprs := []string{
		"(a=b)",
		"(&(a=b)(c>=5))",
		"(|(a=b)(!(c~=d)))",
		"(name=Mouse*ler)",
		"(screen=*)",
		`(desc=a\*b\(c\))`,
	}
	for _, s := range exprs {
		f1, err := Parse(s)
		if err != nil {
			t.Fatalf("Parse(%q): %v", s, err)
		}
		f2, err := Parse(f1.String())
		if err != nil {
			t.Fatalf("reparse of %q -> %q: %v", s, f1.String(), err)
		}
		if f1.String() != f2.String() {
			t.Errorf("round trip not stable: %q -> %q -> %q", s, f1.String(), f2.String())
		}
	}
}

func TestMustParsePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustParse should panic on bad input")
		}
	}()
	MustParse("(((")
}

// TestPropertyEqualityRoundTrip checks that for any string value, an
// equality filter built by escaping that value matches a map containing it.
func TestPropertyEqualityRoundTrip(t *testing.T) {
	prop := func(val string) bool {
		if strings.ContainsAny(val, "\x00") {
			return true
		}
		expr := "(key=" + escapeValue(val) + ")"
		f, err := Parse(expr)
		if err != nil {
			return false
		}
		return f.Matches(map[string]any{"key": val})
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// TestPropertyCanonicalFormStable checks that String() is a fixed point:
// parsing the canonical form yields the same canonical form.
func TestPropertyCanonicalFormStable(t *testing.T) {
	prop := func(val string, ge int64) bool {
		expr := "(&(k=" + escapeValue(val) + ")(n>=" + int64String(ge) + "))"
		f, err := Parse(expr)
		if err != nil {
			return false
		}
		g, err := Parse(f.String())
		if err != nil {
			return false
		}
		return f.String() == g.String()
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestPropertySubstringSelfMatch checks that a substring filter built from
// slicing a value around a '*' always matches the original value.
func TestPropertySubstringSelfMatch(t *testing.T) {
	prop := func(val string, cut uint8) bool {
		if len(val) == 0 {
			return true
		}
		i := int(cut) % (len(val) + 1)
		expr := "(k=" + escapeValue(val[:i]) + "*" + escapeValue(val[i:]) + ")"
		f, err := Parse(expr)
		if err != nil {
			return false
		}
		return f.Matches(map[string]any{"k": val})
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func int64String(v int64) string {
	return strconv.FormatInt(v, 10)
}
