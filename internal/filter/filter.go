// Package filter implements the LDAP search filter language of RFC 1960,
// the dialect used by the OSGi service registry and by SLP predicates.
//
// A filter is parsed once with Parse and can then be matched against
// property maps concurrently. Attribute names are matched
// case-insensitively, as required by the OSGi core specification.
//
// Supported grammar:
//
//	filter     = '(' (and | or | not | operation) ')'
//	and        = '&' filter+
//	or         = '|' filter+
//	not        = '!' filter
//	operation  = attr ('=' | '~=' | '>=' | '<=') value
//	presence   = attr '=*'
//	substring  = attr '=' [initial] ('*' [any])+ [final]
//
// The characters '(', ')', '*' and '\' are escaped in values with a
// backslash.
package filter

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
)

// Operator identifies the comparison performed by a leaf node.
type Operator int

// Leaf operators. And, Or and Not are composite node kinds.
const (
	OpEqual Operator = iota + 1
	OpApprox
	OpGreaterEqual
	OpLessEqual
	OpPresent
	OpSubstring
)

func (o Operator) String() string {
	switch o {
	case OpEqual:
		return "="
	case OpApprox:
		return "~="
	case OpGreaterEqual:
		return ">="
	case OpLessEqual:
		return "<="
	case OpPresent:
		return "=*"
	case OpSubstring:
		return "=~sub"
	default:
		return fmt.Sprintf("Operator(%d)", int(o))
	}
}

// ErrSyntax is wrapped by all parse errors returned from Parse.
var ErrSyntax = errors.New("filter: syntax error")

// Filter is a parsed, immutable RFC 1960 filter. The zero value matches
// nothing; obtain instances through Parse or MustParse.
type Filter struct {
	root node
	src  string
}

// Parse compiles the filter expression s.
func Parse(s string) (*Filter, error) {
	p := &parser{in: s}
	n, err := p.parseFilter()
	if err != nil {
		return nil, err
	}
	p.skipSpace()
	if p.pos != len(p.in) {
		return nil, fmt.Errorf("%w: trailing garbage at offset %d in %q", ErrSyntax, p.pos, s)
	}
	return &Filter{root: n, src: s}, nil
}

// MustParse is like Parse but panics on error. It is intended for
// compile-time-constant filters.
func MustParse(s string) *Filter {
	f, err := Parse(s)
	if err != nil {
		panic(err)
	}
	return f
}

// Matches reports whether the filter matches the given attribute map.
// A nil map is treated as empty.
func (f *Filter) Matches(attrs map[string]any) bool {
	if f == nil || f.root == nil {
		return false
	}
	return f.root.matches(attrs)
}

// String returns the canonical textual form of the filter.
func (f *Filter) String() string {
	if f == nil || f.root == nil {
		return ""
	}
	var b strings.Builder
	f.root.write(&b)
	return b.String()
}

// node is the interface implemented by all AST nodes.
type node interface {
	matches(attrs map[string]any) bool
	write(b *strings.Builder)
}

type andNode struct{ kids []node }

func (n *andNode) matches(attrs map[string]any) bool {
	for _, k := range n.kids {
		if !k.matches(attrs) {
			return false
		}
	}
	return true
}

func (n *andNode) write(b *strings.Builder) {
	b.WriteString("(&")
	for _, k := range n.kids {
		k.write(b)
	}
	b.WriteByte(')')
}

type orNode struct{ kids []node }

func (n *orNode) matches(attrs map[string]any) bool {
	for _, k := range n.kids {
		if k.matches(attrs) {
			return true
		}
	}
	return false
}

func (n *orNode) write(b *strings.Builder) {
	b.WriteString("(|")
	for _, k := range n.kids {
		k.write(b)
	}
	b.WriteByte(')')
}

type notNode struct{ kid node }

func (n *notNode) matches(attrs map[string]any) bool {
	return !n.kid.matches(attrs)
}

func (n *notNode) write(b *strings.Builder) {
	b.WriteString("(!")
	n.kid.write(b)
	b.WriteByte(')')
}

type leafNode struct {
	attr string
	op   Operator
	// value is the literal operand for comparison operators. For
	// OpSubstring, parts holds the segments between '*' wildcards
	// (empty leading/trailing segments denote an unanchored side).
	value string
	parts []string
}

func (n *leafNode) matches(attrs map[string]any) bool {
	v, ok := lookup(attrs, n.attr)
	if n.op == OpPresent {
		return ok
	}
	if !ok {
		return false
	}
	return matchValue(v, n)
}

func (n *leafNode) write(b *strings.Builder) {
	b.WriteByte('(')
	b.WriteString(n.attr)
	switch n.op {
	case OpEqual:
		b.WriteByte('=')
		b.WriteString(escapeValue(n.value))
	case OpApprox:
		b.WriteString("~=")
		b.WriteString(escapeValue(n.value))
	case OpGreaterEqual:
		b.WriteString(">=")
		b.WriteString(escapeValue(n.value))
	case OpLessEqual:
		b.WriteString("<=")
		b.WriteString(escapeValue(n.value))
	case OpPresent:
		b.WriteString("=*")
	case OpSubstring:
		b.WriteByte('=')
		for i, p := range n.parts {
			if i > 0 {
				b.WriteByte('*')
			}
			b.WriteString(escapeValue(p))
		}
	}
	b.WriteByte(')')
}

// lookup finds attr in attrs case-insensitively. An exact-case hit wins.
func lookup(attrs map[string]any, attr string) (any, bool) {
	if v, ok := attrs[attr]; ok {
		return v, true
	}
	for k, v := range attrs {
		if strings.EqualFold(k, attr) {
			return v, true
		}
	}
	return nil, false
}

// matchValue applies a leaf comparison to a single attribute value. If the
// value is a slice, the comparison succeeds when any element matches
// (OSGi multi-value semantics).
func matchValue(v any, n *leafNode) bool {
	switch vv := v.(type) {
	case []string:
		for _, e := range vv {
			if matchScalar(e, n) {
				return true
			}
		}
		return false
	case []any:
		for _, e := range vv {
			if matchScalar(e, n) {
				return true
			}
		}
		return false
	default:
		return matchScalar(v, n)
	}
}

func matchScalar(v any, n *leafNode) bool {
	switch n.op {
	case OpSubstring:
		return matchSubstring(toString(v), n.parts)
	case OpApprox:
		return approxEqual(toString(v), n.value)
	case OpEqual, OpGreaterEqual, OpLessEqual:
		c, ok := compare(v, n.value)
		if !ok {
			return false
		}
		switch n.op {
		case OpEqual:
			return c == 0
		case OpGreaterEqual:
			return c >= 0
		default:
			return c <= 0
		}
	default:
		return false
	}
}

// compare compares an attribute value against the filter literal, using
// the attribute's native type to interpret the literal. It returns
// (cmp, true) on success; ok is false when the literal cannot be
// interpreted in the attribute's type.
func compare(v any, lit string) (int, bool) {
	switch vv := v.(type) {
	case string:
		return strings.Compare(vv, lit), true
	case bool:
		b, err := strconv.ParseBool(strings.TrimSpace(lit))
		if err != nil {
			return 0, false
		}
		switch {
		case vv == b:
			return 0, true
		case vv && !b:
			return 1, true
		default:
			return -1, true
		}
	case int:
		return compareInt(int64(vv), lit)
	case int8:
		return compareInt(int64(vv), lit)
	case int16:
		return compareInt(int64(vv), lit)
	case int32:
		return compareInt(int64(vv), lit)
	case int64:
		return compareInt(vv, lit)
	case uint:
		return compareInt(int64(vv), lit)
	case uint8:
		return compareInt(int64(vv), lit)
	case uint16:
		return compareInt(int64(vv), lit)
	case uint32:
		return compareInt(int64(vv), lit)
	case float32:
		return compareFloat(float64(vv), lit)
	case float64:
		return compareFloat(vv, lit)
	case fmt.Stringer:
		return strings.Compare(vv.String(), lit), true
	default:
		return 0, false
	}
}

func compareInt(v int64, lit string) (int, bool) {
	l, err := strconv.ParseInt(strings.TrimSpace(lit), 10, 64)
	if err != nil {
		// Fall back to float so (x>=2.5) works on integer attributes.
		return compareFloat(float64(v), lit)
	}
	switch {
	case v < l:
		return -1, true
	case v > l:
		return 1, true
	default:
		return 0, true
	}
}

func compareFloat(v float64, lit string) (int, bool) {
	l, err := strconv.ParseFloat(strings.TrimSpace(lit), 64)
	if err != nil {
		return 0, false
	}
	switch {
	case v < l:
		return -1, true
	case v > l:
		return 1, true
	default:
		return 0, true
	}
}

func toString(v any) string {
	switch vv := v.(type) {
	case string:
		return vv
	case fmt.Stringer:
		return vv.String()
	default:
		return fmt.Sprint(vv)
	}
}

// approxEqual implements ~=: case-insensitive comparison ignoring all
// whitespace, the conventional OSGi interpretation.
func approxEqual(a, b string) bool {
	return strings.EqualFold(stripSpace(a), stripSpace(b))
}

func stripSpace(s string) string {
	var b strings.Builder
	b.Grow(len(s))
	for _, r := range s {
		if r != ' ' && r != '\t' && r != '\n' && r != '\r' {
			b.WriteRune(r)
		}
	}
	return b.String()
}

// matchSubstring matches s against wildcard segments. parts always has at
// least two elements (a bare '*' parses to ["", ""]).
func matchSubstring(s string, parts []string) bool {
	if len(parts) == 0 {
		return false
	}
	first, last := parts[0], parts[len(parts)-1]
	if !strings.HasPrefix(s, first) {
		return false
	}
	s = s[len(first):]
	middle := parts[1 : len(parts)-1]
	for _, m := range middle {
		idx := strings.Index(s, m)
		if idx < 0 {
			return false
		}
		s = s[idx+len(m):]
	}
	return strings.HasSuffix(s, last)
}

func escapeValue(s string) string {
	var b strings.Builder
	b.Grow(len(s))
	// Operate on bytes so that arbitrary (even invalid UTF-8) values
	// survive an escape/parse round trip; all escapable characters are
	// single-byte ASCII.
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '(', ')', '*', '\\':
			b.WriteByte('\\')
		}
		b.WriteByte(s[i])
	}
	return b.String()
}

// parser holds the scanning state for a single Parse call.
type parser struct {
	in  string
	pos int
}

func (p *parser) errf(format string, args ...any) error {
	msg := fmt.Sprintf(format, args...)
	return fmt.Errorf("%w: %s at offset %d in %q", ErrSyntax, msg, p.pos, p.in)
}

func (p *parser) skipSpace() {
	for p.pos < len(p.in) && (p.in[p.pos] == ' ' || p.in[p.pos] == '\t') {
		p.pos++
	}
}

func (p *parser) parseFilter() (node, error) {
	p.skipSpace()
	if p.pos >= len(p.in) || p.in[p.pos] != '(' {
		return nil, p.errf("expected '('")
	}
	p.pos++
	p.skipSpace()
	if p.pos >= len(p.in) {
		return nil, p.errf("unterminated filter")
	}
	var n node
	var err error
	switch p.in[p.pos] {
	case '&':
		p.pos++
		kids, kerr := p.parseList()
		if kerr != nil {
			return nil, kerr
		}
		n = &andNode{kids: kids}
	case '|':
		p.pos++
		kids, kerr := p.parseList()
		if kerr != nil {
			return nil, kerr
		}
		n = &orNode{kids: kids}
	case '!':
		p.pos++
		kid, kerr := p.parseFilter()
		if kerr != nil {
			return nil, kerr
		}
		n = &notNode{kid: kid}
	default:
		n, err = p.parseOperation()
		if err != nil {
			return nil, err
		}
	}
	p.skipSpace()
	if p.pos >= len(p.in) || p.in[p.pos] != ')' {
		return nil, p.errf("expected ')'")
	}
	p.pos++
	return n, nil
}

func (p *parser) parseList() ([]node, error) {
	var kids []node
	for {
		p.skipSpace()
		if p.pos < len(p.in) && p.in[p.pos] == '(' {
			k, err := p.parseFilter()
			if err != nil {
				return nil, err
			}
			kids = append(kids, k)
			continue
		}
		break
	}
	if len(kids) == 0 {
		return nil, p.errf("composite filter requires at least one operand")
	}
	return kids, nil
}

func (p *parser) parseOperation() (node, error) {
	attr, err := p.parseAttr()
	if err != nil {
		return nil, err
	}
	if p.pos >= len(p.in) {
		return nil, p.errf("expected operator")
	}
	var op Operator
	switch p.in[p.pos] {
	case '=':
		op = OpEqual
		p.pos++
	case '~':
		op = OpApprox
		p.pos++
		if p.pos >= len(p.in) || p.in[p.pos] != '=' {
			return nil, p.errf("expected '=' after '~'")
		}
		p.pos++
	case '>':
		op = OpGreaterEqual
		p.pos++
		if p.pos >= len(p.in) || p.in[p.pos] != '=' {
			return nil, p.errf("expected '=' after '>'")
		}
		p.pos++
	case '<':
		op = OpLessEqual
		p.pos++
		if p.pos >= len(p.in) || p.in[p.pos] != '=' {
			return nil, p.errf("expected '=' after '<'")
		}
		p.pos++
	default:
		return nil, p.errf("unexpected operator character %q", p.in[p.pos])
	}
	parts, wild, err := p.parseValue()
	if err != nil {
		return nil, err
	}
	if op != OpEqual && wild {
		return nil, p.errf("wildcards are only valid with '='")
	}
	if !wild {
		return &leafNode{attr: attr, op: op, value: parts[0]}, nil
	}
	if len(parts) == 2 && parts[0] == "" && parts[1] == "" {
		return &leafNode{attr: attr, op: OpPresent}, nil
	}
	return &leafNode{attr: attr, op: OpSubstring, parts: parts}, nil
}

func (p *parser) parseAttr() (string, error) {
	p.skipSpace()
	start := p.pos
	for p.pos < len(p.in) {
		c := p.in[p.pos]
		if c == '=' || c == '~' || c == '>' || c == '<' || c == '(' || c == ')' {
			break
		}
		p.pos++
	}
	attr := strings.TrimSpace(p.in[start:p.pos])
	if attr == "" {
		return "", p.errf("empty attribute name")
	}
	if strings.ContainsAny(attr, "*\\") {
		return "", p.errf("invalid attribute name %q", attr)
	}
	return attr, nil
}

// parseValue scans the operand up to the closing ')'. It returns the
// wildcard-separated segments and whether any unescaped '*' was seen.
// For a non-wildcard value, parts has exactly one element.
func (p *parser) parseValue() (parts []string, wild bool, err error) {
	var cur strings.Builder
	for p.pos < len(p.in) {
		c := p.in[p.pos]
		switch c {
		case ')':
			parts = append(parts, cur.String())
			return parts, wild, nil
		case '(':
			return nil, false, p.errf("unescaped '(' in value")
		case '*':
			wild = true
			parts = append(parts, cur.String())
			cur.Reset()
			p.pos++
		case '\\':
			p.pos++
			if p.pos >= len(p.in) {
				return nil, false, p.errf("dangling escape")
			}
			cur.WriteByte(p.in[p.pos])
			p.pos++
		default:
			cur.WriteByte(c)
			p.pos++
		}
	}
	return nil, false, p.errf("unterminated value")
}
