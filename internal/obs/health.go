package obs

// Health scoring: fold the signals the telemetry plane already
// collects — dispatch queue depth, admission rejections, live invoke
// p99, heap pressure — into one overload score in [0, 1] per component
// and overall. The score is published as gauges (so it ships across
// nodes like any other metric and shows up in the fleet view), drives
// adaptive admission shedding through remote.Peer.StartHealthDriver,
// and reaches placement policy through core.HealthView — the live
// input the paper's "decide where each tier runs" mechanism needs.
//
// The scorer reads the registry by metric name, so it has no
// dependency on the packages that produce the signals; a component
// whose family is absent simply reads zero.

import (
	"sync/atomic"
	"time"

	"github.com/alfredo-mw/alfredo/internal/sim/clock"
)

// Metric families the scorer reads, and the gauges it publishes.
const (
	healthQueueFamily   = "alfredo_remote_dispatch_queue_depth"
	healthRejectsFamily = "alfredo_remote_admission_rejected_total"
	healthHeapFamily    = "alfredo_runtime_heap_alloc_bytes"

	HealthOverallGauge   = "alfredo_health_overload_milli"
	HealthComponentGauge = "alfredo_health_component_milli"
)

// Health scoring defaults.
const (
	DefaultHealthInterval  = 5 * time.Second
	DefaultInvokeP99Target = 100 * time.Millisecond
	DefaultHeapLimitBytes  = 1 << 30 // 1 GiB
	DefaultQueueCapacity   = 256     // remote.DefaultReactorWorkers
	DefaultRejectRateMax   = 100.0   // rejections/sec that reads as fully overloaded
)

// defaultLatencyFamilies are the invoke-latency histograms scored when
// HealthConfig.LatencyFamilies is empty: the serve side and the client
// side of the invoke path (a node usually populates only one).
var defaultLatencyFamilies = []string{
	"alfredo_remote_server_invoke_seconds",
	"alfredo_remote_invoke_seconds",
}

// HealthConfig tunes the scorer. The zero value selects every default.
type HealthConfig struct {
	// Interval between scoring passes (default DefaultHealthInterval).
	Interval time.Duration
	// InvokeP99Target is the live p99 the latency component treats as
	// healthy: the component reads 0 at or below the target and 1 at
	// twice the target (default DefaultInvokeP99Target).
	InvokeP99Target time.Duration
	// HeapLimitBytes is the soft heap ceiling: the heap component reads
	// 0 at or below half of it and 1 at the full limit (default
	// DefaultHeapLimitBytes). Keep a Profiler running so the heap gauge
	// it reads stays fresh; core.NewNode does this when health scoring
	// is enabled.
	HeapLimitBytes int64
	// QueueCapacity normalizes the dispatch queue depth (default
	// DefaultQueueCapacity; remote.Peer.StartHealthDriver defaults it to
	// the peer's reactor width instead).
	QueueCapacity int64
	// RejectRateMax is the admission rejection rate (per second) that
	// reads as fully overloaded (default DefaultRejectRateMax).
	RejectRateMax float64
	// LatencyFamilies are the histogram families whose live windowed
	// p99 feeds the latency component; the worst one wins (default
	// defaultLatencyFamilies).
	LatencyFamilies []string
	// OnScore, when non-nil, is called after every scoring pass.
	OnScore func(HealthScore)
}

func (c HealthConfig) normalized() HealthConfig {
	if c.Interval <= 0 {
		c.Interval = DefaultHealthInterval
	}
	if c.InvokeP99Target <= 0 {
		c.InvokeP99Target = DefaultInvokeP99Target
	}
	if c.HeapLimitBytes <= 0 {
		c.HeapLimitBytes = DefaultHeapLimitBytes
	}
	if c.QueueCapacity <= 0 {
		c.QueueCapacity = DefaultQueueCapacity
	}
	if c.RejectRateMax <= 0 {
		c.RejectRateMax = DefaultRejectRateMax
	}
	if len(c.LatencyFamilies) == 0 {
		c.LatencyFamilies = defaultLatencyFamilies
	}
	return c
}

// HealthScore is one scoring pass. Components and Overall are in
// [0, 1]: 0 is idle, 1 is fully overloaded. Overall is the worst
// component — overload in any one dimension is overload.
type HealthScore struct {
	Overall float64 `json:"overall"`
	Queue   float64 `json:"queue"`
	Rejects float64 `json:"rejects"`
	Latency float64 `json:"latency"`
	Heap    float64 `json:"heap"`

	// InvokeP99 is the live windowed p99 behind the latency component.
	InvokeP99 time.Duration `json:"invoke_p99_ns"`
	// RejectRate is the admission rejection rate (per second) behind
	// the rejects component.
	RejectRate float64 `json:"reject_rate"`
}

// HealthScorer periodically folds registry state into a HealthScore.
type HealthScorer struct {
	r   *Registry
	cfg HealthConfig
	clk clock.Clock

	lastRejects int64
	lastAt      time.Time

	last atomic.Pointer[HealthScore]
	stop chan struct{}
	done chan struct{}
}

// StartHealthScorer begins scoring r every cfg.Interval on clk (nil
// selects the wall clock). One pass runs synchronously before it
// returns, so Last and the published gauges are live immediately.
// Stop it with Stop.
func StartHealthScorer(r *Registry, clk clock.Clock, cfg HealthConfig) *HealthScorer {
	clk = clock.Or(clk)
	h := &HealthScorer{
		r: r, cfg: cfg.normalized(), clk: clk,
		stop: make(chan struct{}), done: make(chan struct{}),
	}
	h.lastAt = clk.Now()
	h.lastRejects = r.Total(healthRejectsFamily)
	h.score()
	go func() {
		defer close(h.done)
		t := clk.NewTicker(h.cfg.Interval)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				h.score()
			case <-h.stop:
				return
			}
		}
	}()
	return h
}

// Stop halts the scorer and waits for its goroutine to exit. The
// published gauges keep their last values. Safe to call once.
func (h *HealthScorer) Stop() {
	select {
	case <-h.stop:
	default:
		close(h.stop)
	}
	<-h.done
}

// Last returns the most recent score. Nil-safe; the zero score before
// the first pass.
func (h *HealthScorer) Last() HealthScore {
	if h == nil {
		return HealthScore{}
	}
	if s := h.last.Load(); s != nil {
		return *s
	}
	return HealthScore{}
}

// clamp01 bounds a component score to [0, 1]; NaN reads as 0.
func clamp01(f float64) float64 {
	switch {
	case f != f || f < 0:
		return 0
	case f > 1:
		return 1
	}
	return f
}

// score runs one pass: read the inputs, derive the components, publish
// the gauges, remember the score, notify.
func (h *HealthScorer) score() {
	s := HealthScore{}

	// Queue: dispatch backlog relative to the reactor's width.
	depth := h.r.Gauge(healthQueueFamily).Value()
	s.Queue = clamp01(float64(depth) / float64(h.cfg.QueueCapacity))

	// Rejects: admission rejections per second since the last pass.
	now := h.clk.Now()
	rejects := h.r.Total(healthRejectsFamily)
	if el := now.Sub(h.lastAt); el > 0 {
		s.RejectRate = float64(rejects-h.lastRejects) / el.Seconds()
	}
	h.lastRejects = rejects
	h.lastAt = now
	s.Rejects = clamp01(s.RejectRate / h.cfg.RejectRateMax)

	// Latency: the worst live windowed p99 across the invoke families,
	// scored against the target (0 at target, 1 at 2x target).
	for _, fam := range h.cfg.LatencyFamilies {
		if p99 := h.r.WindowQuantile(fam, 0.99); p99 > s.InvokeP99 {
			s.InvokeP99 = p99
		}
	}
	s.Latency = clamp01(float64(s.InvokeP99-h.cfg.InvokeP99Target) / float64(h.cfg.InvokeP99Target))

	// Heap: pressure against the soft limit (0 at half, 1 at full).
	heap := h.r.Gauge(healthHeapFamily).Value()
	half := h.cfg.HeapLimitBytes / 2
	s.Heap = clamp01(float64(heap-half) / float64(half))

	s.Overall = s.Queue
	for _, c := range []float64{s.Rejects, s.Latency, s.Heap} {
		if c > s.Overall {
			s.Overall = c
		}
	}

	h.r.Gauge(HealthOverallGauge).Set(int64(s.Overall * 1000))
	h.r.Gauge(HealthComponentGauge, "component", "queue").Set(int64(s.Queue * 1000))
	h.r.Gauge(HealthComponentGauge, "component", "rejects").Set(int64(s.Rejects * 1000))
	h.r.Gauge(HealthComponentGauge, "component", "latency").Set(int64(s.Latency * 1000))
	h.r.Gauge(HealthComponentGauge, "component", "heap").Set(int64(s.Heap * 1000))

	h.last.Store(&s)
	if h.cfg.OnScore != nil {
		h.cfg.OnScore(s)
	}
}
