package obs

// Windowed aggregation: every histogram additionally maintains a ring
// of time slots so snapshots can answer "what is the p99 *now*", not
// just since process start, and EWMA meters expose smoothed event
// rates. Both take their notion of "now" from the registry's clock, so
// under the simulation harness the windows rotate on virtual time and a
// seeded run replays the exact same windowed readings.

import (
	"math"
	"sync/atomic"
	"time"

	"github.com/alfredo-mw/alfredo/internal/sim/clock"
)

const (
	// winSlotCount and winSlotDur define the sliding window every
	// histogram keeps: winSlotCount slots of winSlotDur each, giving a
	// window of (winSlotCount-1)..winSlotCount slot durations depending
	// on how full the current slot is.
	winSlotCount = 6
	winSlotDur   = 10 * time.Second
)

// WindowSpan is the nominal width of the sliding window kept by every
// histogram (the current, partially filled slot counts toward it).
const WindowSpan = winSlotCount * winSlotDur

// winSlot is one rotation slot of a histogram's sliding window. Slots
// are reused in place: a writer landing in a slot whose id is stale
// CAS-claims it, zeroes it and stamps the new id. The reset races with
// concurrent adds into the same (stale) slot — an observation may be
// lost at a slot boundary under contention, which is acceptable for a
// windowed estimate and keeps the hot path free of locks.
type winSlot struct {
	id     atomic.Int64
	counts []atomic.Int64 // len(bounds)+1, same layout as Histogram.counts
	count  atomic.Int64
	sum    atomic.Int64 // nanoseconds
}

// slotIndex returns the ring slot and slot id for a given time.
func slotID(now time.Time) int64 { return now.UnixNano() / int64(winSlotDur) }

// rotate makes the slot for id usable, zeroing it if it still carries
// an older rotation. Returns the slot.
func (h *Histogram) rotate(id int64) *winSlot {
	s := &h.slots[int(id%winSlotCount+winSlotCount)%winSlotCount]
	for {
		cur := s.id.Load()
		if cur >= id {
			return s // current (or a concurrent rotator got ahead)
		}
		if s.id.CompareAndSwap(cur, id) {
			for i := range s.counts {
				s.counts[i].Store(0)
			}
			s.count.Store(0)
			s.sum.Store(0)
			return s
		}
	}
}

// observeWindow records one observation in the sliding window.
func (h *Histogram) observeWindow(bucket int, d time.Duration) {
	if h.clk == nil {
		return // detached handle (kind mismatch): cumulative only
	}
	h.observeWindowAt(h.clk.Now(), bucket, d)
}

// observeWindowAt is observeWindow with the observation time already in
// hand, saving a clock read on paths that know "now" (ObserveSince).
// now must come from h.clk's time domain.
func (h *Histogram) observeWindowAt(now time.Time, bucket int, d time.Duration) {
	s := h.rotate(slotID(now))
	s.counts[bucket].Add(1)
	s.count.Add(1)
	s.sum.Add(int64(d))
}

// windowCounts sums the live slots into one bucket array. The returned
// slice has len(bounds)+1 entries; total and sum aggregate the window.
func (h *Histogram) windowCounts() (buckets []int64, total int64, sum int64) {
	if h == nil || h.clk == nil {
		return nil, 0, 0
	}
	oldest := slotID(h.clk.Now()) - winSlotCount + 1
	buckets = make([]int64, len(h.counts))
	for i := range h.slots {
		s := &h.slots[i]
		if s.id.Load() < oldest {
			continue
		}
		for j := range s.counts {
			buckets[j] += s.counts[j].Load()
		}
		total += s.count.Load()
		sum += s.sum.Load()
	}
	return buckets, total, sum
}

// WindowCount returns the number of observations inside the sliding
// window. Nil-safe.
func (h *Histogram) WindowCount() int64 {
	_, total, _ := h.windowCounts()
	return total
}

// WindowQuantile estimates the q-quantile over the sliding window only
// — the "what is the latency now" reading the all-time Quantile cannot
// give once a long run has accumulated history. Nil-safe; returns 0
// with no observations in the window.
func (h *Histogram) WindowQuantile(q float64) time.Duration {
	buckets, total, _ := h.windowCounts()
	if total == 0 {
		return 0
	}
	return bucketQuantile(h.bounds, buckets, total, q)
}

// WindowSnapshot returns a point-in-time copy of the sliding window
// (nil when the histogram is nil, detached, or the window is empty).
func (h *Histogram) WindowSnapshot() *HistogramSnapshot {
	buckets, total, sum := h.windowCounts()
	if total == 0 {
		return nil
	}
	snap := &HistogramSnapshot{
		Count:   total,
		Sum:     time.Duration(sum),
		Buckets: make([]Bucket, len(buckets)),
	}
	for i, n := range buckets {
		var ub time.Duration
		if i < len(h.bounds) {
			ub = h.bounds[i]
		}
		snap.Buckets[i] = Bucket{UpperBound: ub, Count: n}
	}
	return snap
}

// bucketQuantile estimates the q-quantile from a bucket array by linear
// interpolation inside the bucket containing the target rank; the +Inf
// bucket saturates at the largest finite bound.
func bucketQuantile(bounds []time.Duration, buckets []int64, total int64, q float64) time.Duration {
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := int64(q * float64(total))
	if rank < 1 {
		rank = 1
	}
	var cum int64
	for i, n := range buckets {
		if n == 0 {
			continue
		}
		if cum+n >= rank {
			if i >= len(bounds) {
				return bounds[len(bounds)-1]
			}
			lo := time.Duration(0)
			if i > 0 {
				lo = bounds[i-1]
			}
			frac := float64(rank-cum) / float64(n)
			return lo + time.Duration(frac*float64(bounds[i]-lo))
		}
		cum += n
	}
	return bounds[len(bounds)-1]
}

// ObserveExemplar records one duration and attaches the observing
// trace's id as the bucket's exemplar, so a high-latency bucket in a
// snapshot links to a concrete recent trace explaining it. Zero trace
// ids record the observation without touching the exemplar. Nil-safe.
func (h *Histogram) ObserveExemplar(d time.Duration, traceID uint64) {
	if h == nil {
		return
	}
	if d < 0 {
		d = 0
	}
	i := h.bucketOf(d)
	if traceID != 0 && h.exemplars != nil {
		h.exemplars[i].Store(traceID)
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	h.sum.Add(int64(d))
	h.observeWindow(i, d)
}

// meterTau is the EWMA smoothing horizon: readings decay with a time
// constant of meterTau, so a burst fades from the rate over roughly
// half a minute.
const meterTau = 30 * time.Second

// Meter is an exponentially weighted moving-average event-rate meter
// (events per second). Marks accumulate lock-free; the EWMA folds
// lazily on reads and on marks that cross a fold boundary, taking
// elapsed time from the registry clock. A nil *Meter is a no-op.
type Meter struct {
	clk clock.Clock

	pending  atomic.Int64  // marks since the last fold
	lastFold atomic.Int64  // unix nanos of the last fold
	rateBits atomic.Uint64 // float64 bits of the folded rate
}

func newMeter(clk clock.Clock) *Meter {
	m := &Meter{clk: clk}
	m.lastFold.Store(clk.Now().UnixNano())
	return m
}

// Mark records n events. Nil-safe; zero and negative n are ignored.
func (m *Meter) Mark(n int64) {
	if m == nil || n <= 0 {
		return
	}
	m.pending.Add(n)
}

// Rate returns the smoothed event rate in events/second. Nil-safe.
func (m *Meter) Rate() float64 {
	if m == nil {
		return 0
	}
	m.fold()
	return math.Float64frombits(m.rateBits.Load())
}

// fold merges pending marks into the EWMA if enough time has elapsed.
// One reader wins the CAS and folds; others read the pre-fold rate,
// which is at most one fold interval stale.
func (m *Meter) fold() {
	now := m.clk.Now().UnixNano()
	last := m.lastFold.Load()
	el := time.Duration(now - last)
	if el < time.Second {
		return
	}
	if !m.lastFold.CompareAndSwap(last, now) {
		return
	}
	marks := m.pending.Swap(0)
	inst := float64(marks) / el.Seconds()
	alpha := 1 - math.Exp(-el.Seconds()/meterTau.Seconds())
	old := math.Float64frombits(m.rateBits.Load())
	m.rateBits.Store(math.Float64bits(old + alpha*(inst-old)))
}
