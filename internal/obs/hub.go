package obs

import "github.com/alfredo-mw/alfredo/internal/sim/clock"

// Hub bundles one registry, tracer and trace store — the unit of
// telemetry plumbed through remote.Config and core.NodeConfig. Peers
// sharing a Hub (the common in-process case: tests, netsim experiments,
// or simply the process-wide Default) land their spans in the same
// store, so a remote invocation shows up as ONE trace with spans from
// both sides.
//
// The zero Hub (&Hub{}, see Nop) has nil components; every operation on
// them is a no-op with zero allocations.
type Hub struct {
	Metrics *Registry
	Tracer  *Tracer
	Traces  *TraceStore
}

// NewHub creates a fully enabled hub with a DefaultTraceCap-sized
// trace store.
func NewHub() *Hub { return NewHubOn(nil) }

// NewHubOn is NewHub with an explicit clock for the registry's windowed
// digests and meters; nil means the wall clock. The simulation harness
// passes its virtual clock so windows rotate on virtual time.
func NewHubOn(clk clock.Clock) *Hub {
	store := NewTraceStore(DefaultTraceCap)
	return &Hub{
		Metrics: NewRegistryOn(clk),
		Tracer:  NewTracer(store),
		Traces:  store,
	}
}

// Nop returns a disabled hub: telemetry calls through it are no-ops
// and allocate nothing.
func Nop() *Hub { return &Hub{} }

// Enabled reports whether the hub records anything at all.
func (h *Hub) Enabled() bool {
	return h != nil && (h.Metrics != nil || h.Tracer != nil)
}

var defaultHub = NewHub()

// Default returns the process-wide hub. Packages without config
// plumbing (wire, netsim, render) record here; nodes and peers default
// here too unless a Config/NodeConfig supplies its own.
func Default() *Hub { return defaultHub }

// OrDefault resolves a possibly-nil hub from a config field: nil means
// "use the process default". To disable telemetry, pass Nop() instead.
func (h *Hub) OrDefault() *Hub {
	if h == nil {
		return Default()
	}
	return h
}
