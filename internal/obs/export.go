package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// WritePrometheus renders a snapshot of the registry in the Prometheus
// text exposition format (version 0.0.4): counters and gauges as bare
// samples, histograms as cumulative `_bucket{le="..."}` series plus
// `_sum` (seconds) and `_count`. Nil-safe.
func WritePrometheus(w io.Writer, r *Registry) error {
	return WritePrometheusSamples(w, r.Snapshot())
}

// WritePrometheusSamples renders an already-taken sample set (e.g. an
// Aggregator's fleet snapshot) in the exposition format. Samples must
// be sorted by name, as Registry.Snapshot and Aggregator.Snapshot
// return them, so TYPE headers are emitted once per family.
func WritePrometheusSamples(w io.Writer, samples []Sample) error {
	var lastName string
	for _, s := range samples {
		if s.Name != lastName {
			if s.Help != "" {
				if _, err := fmt.Fprintf(w, "# HELP %s %s\n", s.Name, s.Help); err != nil {
					return err
				}
			}
			// Meters surface as gauges: "meter" is not an exposition
			// format type, and the smoothed rate reads like one.
			typ := s.Kind
			if typ == "meter" {
				typ = "gauge"
			}
			if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", s.Name, typ); err != nil {
				return err
			}
			lastName = s.Name
		}
		if s.Kind == "meter" {
			if _, err := fmt.Fprintf(w, "%s%s %g\n", s.Name, s.LabelString(), s.Rate); err != nil {
				return err
			}
			continue
		}
		if s.Hist == nil {
			if _, err := fmt.Fprintf(w, "%s%s %d\n", s.Name, s.LabelString(), s.Value); err != nil {
				return err
			}
			continue
		}
		if err := writePromHistogram(w, &s); err != nil {
			return err
		}
	}
	return nil
}

func writePromHistogram(w io.Writer, s *Sample) error {
	var cum int64
	for _, b := range s.Hist.Buckets {
		cum += b.Count
		le := "+Inf"
		if b.UpperBound != 0 {
			le = strconv.FormatFloat(b.UpperBound.Seconds(), 'g', -1, 64)
		}
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n",
			s.Name, mergeLabels(s, "le", le), cum); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%s_sum%s %g\n", s.Name, s.LabelString(), s.Hist.Sum.Seconds()); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count%s %d\n", s.Name, s.LabelString(), s.Hist.Count)
	return err
}

// mergeLabels renders the sample's labels with one extra pair appended,
// escaped per the exposition format like LabelString.
func mergeLabels(s *Sample, key, value string) string {
	base := s.LabelString()
	extra := key + `="` + escapeLabelValue(value) + `"`
	if base == "" {
		return "{" + extra + "}"
	}
	return strings.TrimSuffix(base, "}") + "," + extra + "}"
}

// WriteJSON renders a snapshot of the registry as a JSON array of
// samples. Nil-safe (renders []).
func WriteJSON(w io.Writer, r *Registry) error {
	snap := r.Snapshot()
	if snap == nil {
		snap = []Sample{}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(snap)
}
