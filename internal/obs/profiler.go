package obs

// Continuous runtime profiling: a sampler publishing Go runtime state
// (goroutines, heap, GC, scheduler width) as gauges on a clock-driven
// cadence, so the health scorer and the fleet plane see process
// pressure without anyone attaching a profiler. On-demand pprof
// endpoints live in internal/httpd; this collector is the always-on
// complement cheap enough to leave running everywhere.

import (
	"runtime"
	"time"

	"github.com/alfredo-mw/alfredo/internal/sim/clock"
)

// DefaultProfileInterval is the runtime sampling cadence when the
// caller passes zero.
const DefaultProfileInterval = 10 * time.Second

// Profiler periodically samples runtime statistics into a registry.
type Profiler struct {
	stop chan struct{}
	done chan struct{}
}

// StartProfiler begins sampling runtime stats into r every interval on
// clk (nil clk selects the wall clock; interval <= 0 selects
// DefaultProfileInterval). One sample is taken synchronously before it
// returns, so gauges are live immediately. Stop it with Stop.
func StartProfiler(r *Registry, clk clock.Clock, interval time.Duration) *Profiler {
	if interval <= 0 {
		interval = DefaultProfileInterval
	}
	clk = clock.Or(clk)
	p := &Profiler{stop: make(chan struct{}), done: make(chan struct{})}
	sampleRuntime(r)
	go func() {
		defer close(p.done)
		t := clk.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				sampleRuntime(r)
			case <-p.stop:
				return
			}
		}
	}()
	return p
}

// Stop halts the sampler and waits for its goroutine to exit. Safe to
// call once; the gauges keep their last sampled values.
func (p *Profiler) Stop() {
	select {
	case <-p.stop:
	default:
		close(p.stop)
	}
	<-p.done
}

// sampleRuntime publishes one reading of the runtime counters.
// ReadMemStats stops the world for ~µs at this cadence — negligible
// against a multi-second interval.
func sampleRuntime(r *Registry) {
	if r == nil {
		return
	}
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	r.Gauge("alfredo_runtime_goroutines").Set(int64(runtime.NumGoroutine()))
	r.Gauge("alfredo_runtime_gomaxprocs").Set(int64(runtime.GOMAXPROCS(0)))
	r.Gauge("alfredo_runtime_heap_alloc_bytes").Set(int64(ms.HeapAlloc))
	r.Gauge("alfredo_runtime_heap_sys_bytes").Set(int64(ms.HeapSys))
	r.Gauge("alfredo_runtime_heap_objects").Set(int64(ms.HeapObjects))
	r.Gauge("alfredo_runtime_next_gc_bytes").Set(int64(ms.NextGC))
	r.Gauge("alfredo_runtime_gc_cycles").Set(int64(ms.NumGC))
	r.Gauge("alfredo_runtime_gc_pause_total_us").Set(int64(ms.PauseTotalNs / 1e3))
	if ms.NumGC > 0 {
		r.Gauge("alfredo_runtime_gc_last_pause_us").
			Set(int64(ms.PauseNs[(ms.NumGC+255)%256] / 1e3))
	}
}
