package obs

import (
	"context"
	"sync"
	"sync/atomic"
	"time"
)

// SpanContext is the wire-portable identity of a span: carried inside
// wire.Invoke / wire.FetchService so the server side of a remote call
// can parent its span under the client's, making one trace cover
// phone -> target -> phone.
type SpanContext struct {
	TraceID uint64
	SpanID  uint64
}

// Valid reports whether the context identifies a live trace.
func (sc SpanContext) Valid() bool { return sc.TraceID != 0 }

// Attr is one key/value annotation on a span.
type Attr struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// Event is a timestamped annotation on a span (retry attempts, redials,
// degrade/recover transitions).
type Event struct {
	At  time.Time `json:"at"`
	Msg string    `json:"msg"`
}

// Span is one timed operation inside a trace. All methods are nil-safe
// so disabled tracers cost nothing on instrumented paths.
type Span struct {
	tracer   *Tracer
	name     string
	traceID  uint64
	spanID   uint64
	parentID uint64
	start    time.Time

	mu       sync.Mutex
	attrs    []Attr
	events   []Event
	errMsg   string
	finished bool
}

// Context returns the span's wire-portable identity (zero when nil).
func (s *Span) Context() SpanContext {
	if s == nil {
		return SpanContext{}
	}
	return SpanContext{TraceID: s.traceID, SpanID: s.spanID}
}

// SetAttr attaches a key/value annotation. Nil-safe.
func (s *Span) SetAttr(key, value string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.attrs = append(s.attrs, Attr{Key: key, Value: value})
	s.mu.Unlock()
}

// Annotate appends a timestamped event. Nil-safe.
func (s *Span) Annotate(msg string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.events = append(s.events, Event{At: time.Now(), Msg: msg})
	s.mu.Unlock()
}

// Fail marks the span failed with err's message; a nil err is ignored
// so `span.Fail(err)` is safe on both outcomes. Nil-safe.
func (s *Span) Fail(err error) {
	if s == nil || err == nil {
		return
	}
	s.mu.Lock()
	s.errMsg = err.Error()
	s.mu.Unlock()
}

// Finish ends the span and publishes it to the tracer's store. Calling
// Finish more than once is a no-op. Nil-safe.
func (s *Span) Finish() {
	if s == nil {
		return
	}
	end := time.Now()
	s.mu.Lock()
	if s.finished {
		s.mu.Unlock()
		return
	}
	s.finished = true
	data := SpanData{
		Name:     s.name,
		TraceID:  s.traceID,
		SpanID:   s.spanID,
		ParentID: s.parentID,
		Start:    s.start,
		Duration: end.Sub(s.start),
		Attrs:    s.attrs,
		Events:   s.events,
		Error:    s.errMsg,
	}
	s.mu.Unlock()
	if s.tracer != nil && s.tracer.store != nil {
		s.tracer.store.add(data)
	}
}

// SpanData is the immutable record of a finished span.
type SpanData struct {
	Name     string        `json:"name"`
	TraceID  uint64        `json:"-"`
	SpanID   uint64        `json:"-"`
	ParentID uint64        `json:"-"`
	Start    time.Time     `json:"start"`
	Duration time.Duration `json:"duration"`
	Attrs    []Attr        `json:"attrs,omitempty"`
	Events   []Event       `json:"events,omitempty"`
	Error    string        `json:"error,omitempty"`
}

// Trace sampling. A span costs an allocation, two clock reads, a few
// mutex cycles and a store insert — on both ends of every RPC, which
// measures out to >20% of pipelined invoke throughput when every call
// is traced. Head-based sampling keeps the trace plane representative
// at a fraction of that cost: the first traceSampleFirst root spans
// are always recorded (fresh processes, tests and demos see every
// early trace), after which one root in traceSampleEvery is kept.
// The decision is made once at the root and inherited: a sampled
// client span ships a valid SpanContext, so every downstream span —
// local children and the serving peer's remote-parented spans — is
// recorded too, keeping traces whole. An unsampled root returns a nil
// span, which every instrumented path already treats as a no-op.
const (
	traceSampleFirst = 128
	traceSampleEvery = 64
)

// Tracer mints spans and publishes finished ones to a TraceStore. A nil
// *Tracer is the disabled tracer: Start returns the context unchanged
// and a nil span.
type Tracer struct {
	store *TraceStore
	roots atomic.Uint64 // root spans started, sampled or not
}

// sampleRoot decides whether the next root span is recorded.
func (t *Tracer) sampleRoot() bool {
	n := t.roots.Add(1)
	return n <= traceSampleFirst || n%traceSampleEvery == 0
}

// NewTracer creates a tracer publishing to store (which may be nil to
// trace into the void).
func NewTracer(store *TraceStore) *Tracer { return &Tracer{store: store} }

// Store returns the tracer's trace store (nil for a disabled tracer).
func (t *Tracer) Store() *TraceStore {
	if t == nil {
		return nil
	}
	return t.store
}

type spanCtxKey struct{}

// ContextWithSpan returns ctx carrying span.
func ContextWithSpan(ctx context.Context, span *Span) context.Context {
	if span == nil {
		return ctx
	}
	return context.WithValue(ctx, spanCtxKey{}, span)
}

// SpanFromContext returns the span carried by ctx, or nil.
func SpanFromContext(ctx context.Context) *Span {
	if ctx == nil {
		return nil
	}
	s, _ := ctx.Value(spanCtxKey{}).(*Span)
	return s
}

// Start begins a span named name. If ctx carries a span, the new span
// joins its trace as a child; otherwise a new trace begins, subject to
// the sampling decision — an unsampled root yields a nil span (a
// no-op everywhere) and leaves ctx unchanged. The returned context
// carries the new span for further propagation.
func (t *Tracer) Start(ctx context.Context, name string) (context.Context, *Span) {
	if t == nil {
		return ctx, nil
	}
	var parent SpanContext
	if p := SpanFromContext(ctx); p != nil {
		parent = p.Context()
	}
	if !parent.Valid() && !t.sampleRoot() {
		return ctx, nil
	}
	s := t.startSpan(parent, name)
	return ContextWithSpan(ctx, s), s
}

// StartRemote begins the server-side span of a remote operation whose
// client shipped parent over the wire. A valid parent means the client
// sampled the trace, so the serving span is always recorded. An
// invalid (zero) parent — an un-instrumented old client or an
// unsampled one — starts a fresh trace subject to this tracer's own
// sampling decision.
func (t *Tracer) StartRemote(parent SpanContext, name string) *Span {
	if t == nil {
		return nil
	}
	if !parent.Valid() && !t.sampleRoot() {
		return nil
	}
	return t.startSpan(parent, name)
}

func (t *Tracer) startSpan(parent SpanContext, name string) *Span {
	s := &Span{
		tracer: t,
		name:   name,
		spanID: newID(),
		start:  time.Now(),
	}
	if parent.Valid() {
		s.traceID = parent.TraceID
		s.parentID = parent.SpanID
	} else {
		s.traceID = newID()
	}
	return s
}

// idState is a Weyl sequence seeded once from the wall clock; newID
// finalizes each step with a splitmix64 mix for well-spread, unique,
// nonzero 64-bit IDs without math/rand.
var idState atomic.Uint64

func init() { idState.Store(uint64(time.Now().UnixNano())) }

func newID() uint64 {
	for {
		x := idState.Add(0x9e3779b97f4a7c15)
		x ^= x >> 30
		x *= 0xbf58476d1ce4e5b9
		x ^= x >> 27
		x *= 0x94d049bb133111eb
		x ^= x >> 31
		if x != 0 {
			return x
		}
	}
}
