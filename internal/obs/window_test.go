package obs

import (
	"strings"
	"testing"
	"time"

	"github.com/alfredo-mw/alfredo/internal/sim/clock"
)

// TestWindowExpiry drives a histogram's sliding window on the virtual
// clock: observations age out of the window while the cumulative view
// keeps them forever.
func TestWindowExpiry(t *testing.T) {
	clk := clock.NewVirtual(1)
	r := NewRegistryOn(clk)
	h := r.Histogram("test_latency_seconds")

	for i := 0; i < 100; i++ {
		h.Observe(2 * time.Millisecond)
	}
	if got := h.WindowCount(); got != 100 {
		t.Fatalf("WindowCount = %d, want 100", got)
	}
	if q := h.WindowQuantile(0.5); q == 0 {
		t.Fatalf("WindowQuantile(0.5) = 0, want > 0")
	}

	// Age every observation out of the window.
	clk.Advance(WindowSpan + winSlotDur)
	if got := h.WindowCount(); got != 0 {
		t.Fatalf("WindowCount after expiry = %d, want 0", got)
	}
	if q := h.WindowQuantile(0.5); q != 0 {
		t.Fatalf("WindowQuantile after expiry = %v, want 0", q)
	}
	if got := h.Count(); got != 100 {
		t.Fatalf("cumulative Count = %d, want 100", got)
	}
	if snap := h.WindowSnapshot(); snap != nil {
		t.Fatalf("WindowSnapshot after expiry = %+v, want nil", snap)
	}
}

// TestWindowQuantileTracksRecent is the point of windows: after a slow
// phase replaces a long fast history, the windowed p99 reports the slow
// regime while the all-time quantile still averages it away.
func TestWindowQuantileTracksRecent(t *testing.T) {
	clk := clock.NewVirtual(2)
	r := NewRegistryOn(clk)
	h := r.Histogram("test_latency_seconds")

	for i := 0; i < 10000; i++ {
		h.Observe(200 * time.Microsecond) // long fast history
	}
	clk.Advance(WindowSpan + winSlotDur) // fast history leaves the window
	for i := 0; i < 100; i++ {
		h.Observe(200 * time.Millisecond) // current slow regime
	}

	winP99 := h.WindowQuantile(0.99)
	allP99 := h.Quantile(0.99)
	if winP99 < 50*time.Millisecond {
		t.Fatalf("window p99 = %v, want the slow regime (>= 50ms)", winP99)
	}
	if allP99 > 10*time.Millisecond {
		t.Fatalf("all-time p99 = %v, expected it diluted by history (<= 10ms)", allP99)
	}

	// The registry-level family merge sees the same live reading.
	if q := r.WindowQuantile("test_latency_seconds", 0.99); q < 50*time.Millisecond {
		t.Fatalf("Registry.WindowQuantile = %v, want >= 50ms", q)
	}
	if q := r.WindowQuantile("no_such_family", 0.99); q != 0 {
		t.Fatalf("Registry.WindowQuantile(absent) = %v, want 0", q)
	}
}

// TestWindowRotationReusesSlots pushes the clock through many slot
// widths and checks the ring only ever holds a window's worth.
func TestWindowRotationReusesSlots(t *testing.T) {
	clk := clock.NewVirtual(3)
	r := NewRegistryOn(clk)
	h := r.Histogram("test_latency_seconds")

	for i := 0; i < 20; i++ {
		clk.Advance(winSlotDur)
		h.Observe(time.Millisecond)
	}
	// Each slot got exactly one observation; only winSlotCount survive.
	if got := h.WindowCount(); got != winSlotCount {
		t.Fatalf("WindowCount = %d, want %d", got, winSlotCount)
	}
	if got := h.Count(); got != 20 {
		t.Fatalf("cumulative Count = %d, want 20", got)
	}
}

// TestObserveExemplar checks a trace id lands on the matching bucket
// and surfaces in the snapshot.
func TestObserveExemplar(t *testing.T) {
	clk := clock.NewVirtual(4)
	r := NewRegistryOn(clk)
	h := r.Histogram("test_latency_seconds")

	h.ObserveExemplar(3*time.Millisecond, 0xdeadbeef)
	h.ObserveExemplar(time.Microsecond, 0) // zero id: observation only

	if got := h.Count(); got != 2 {
		t.Fatalf("Count = %d, want 2", got)
	}
	snap := r.Snapshot()
	var found string
	for _, s := range snap {
		if s.Name != "test_latency_seconds" || s.Hist == nil {
			continue
		}
		for _, b := range s.Hist.Buckets {
			if b.Exemplar != "" {
				found = b.Exemplar
			}
		}
	}
	if found != FormatID(0xdeadbeef) {
		t.Fatalf("exemplar = %q, want %q", found, FormatID(0xdeadbeef))
	}
}

// TestMeterEWMA marks a steady rate on the virtual clock and checks the
// smoothed rate converges toward it, then decays when marks stop.
func TestMeterEWMA(t *testing.T) {
	clk := clock.NewVirtual(5)
	r := NewRegistryOn(clk)
	m := r.Meter("test_events_rate")

	// 100 events/sec for 5 minutes: EWMA converges to ~100.
	for i := 0; i < 300; i++ {
		m.Mark(100)
		clk.Advance(time.Second)
	}
	rate := m.Rate()
	if rate < 90 || rate > 110 {
		t.Fatalf("converged rate = %g, want ~100", rate)
	}

	// Silence: the rate decays toward zero over a few taus.
	for i := 0; i < 300; i++ {
		clk.Advance(time.Second)
		_ = m.Rate()
	}
	if rate = m.Rate(); rate > 1 {
		t.Fatalf("decayed rate = %g, want < 1", rate)
	}

	var nilMeter *Meter
	nilMeter.Mark(5)
	if nilMeter.Rate() != 0 {
		t.Fatal("nil meter must read 0")
	}
}

// TestCardinalityCap floods one family with distinct label values and
// checks growth stops at the cap with the excess collapsed onto the
// "other" series — without losing any counts.
func TestCardinalityCap(t *testing.T) {
	r := NewRegistry()
	r.maxSeries = 4

	const n = 50
	for i := 0; i < n; i++ {
		r.Counter("test_requests_total", "tenant", string(rune('a'+i))).Inc()
	}
	snap := r.Snapshot()
	var series, total int64
	var overflow int64 = -1
	for _, s := range snap {
		if s.Name != "test_requests_total" {
			continue
		}
		series++
		total += s.Value
		if s.Labels["tenant"] == OverflowLabel {
			overflow = s.Value
		}
	}
	// The cap admits maxSeries distinct sets plus the overflow series.
	if series > int64(r.maxSeries)+1 {
		t.Fatalf("family grew to %d series, cap %d", series, r.maxSeries)
	}
	if total != n {
		t.Fatalf("counts not conserved: sum = %d, want %d", total, n)
	}
	if overflow < int64(n-r.maxSeries-1) {
		t.Fatalf("overflow series absorbed %d, want >= %d", overflow, n-r.maxSeries-1)
	}
}

// TestLabelEscaping locks the exposition-format escaping: backslash,
// double quote and newline only (no Go-style \uXXXX).
func TestLabelEscaping(t *testing.T) {
	s := &Sample{
		Name:   "test_metric",
		Labels: map[string]string{"path": "a\\b\"c\nd", "unicode": "héllo"},
	}
	got := s.LabelString()
	want := `{path="a\\b\"c\nd",unicode="héllo"}`
	if got != want {
		t.Fatalf("LabelString = %s, want %s", got, want)
	}

	// The histogram le= merge path escapes through the same helper.
	r := NewRegistry()
	r.Histogram("test_hist", "svc", `quo"te`).Observe(time.Millisecond)
	var b strings.Builder
	if err := WritePrometheus(&b, r); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), `svc="quo\"te"`) {
		t.Fatalf("exporter output lacks escaped label:\n%s", b.String())
	}
	if strings.Contains(b.String(), `\u`) {
		t.Fatalf("exporter output contains Go-style escapes:\n%s", b.String())
	}
}

// TestMeterExportsAsGauge locks the exporter mapping: meters render as
// gauges (the exposition format has no meter type) with a float value.
func TestMeterExportsAsGauge(t *testing.T) {
	clk := clock.NewVirtual(6)
	r := NewRegistryOn(clk)
	m := r.Meter("test_rate")
	m.Mark(50)
	clk.Advance(5 * time.Second)
	_ = m.Rate()

	var b strings.Builder
	if err := WritePrometheus(&b, r); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "# TYPE test_rate gauge") {
		t.Fatalf("meter not exported as gauge:\n%s", out)
	}
	if strings.Contains(out, "meter") {
		t.Fatalf("raw meter type leaked into exposition output:\n%s", out)
	}
}

// TestEnabledObserveZeroAlloc guards the hot path: an enabled histogram
// observation (cumulative + window slot) must not allocate, and neither
// may meter marks or the nil handles.
func TestEnabledObserveZeroAlloc(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("test_latency_seconds")
	m := r.Meter("test_rate")

	if n := testing.AllocsPerRun(200, func() { h.Observe(time.Millisecond) }); n != 0 {
		t.Fatalf("enabled Observe allocates %v/op, want 0", n)
	}
	if n := testing.AllocsPerRun(200, func() { m.Mark(1) }); n != 0 {
		t.Fatalf("enabled Mark allocates %v/op, want 0", n)
	}

	var nh *Histogram
	var nm *Meter
	if n := testing.AllocsPerRun(200, func() {
		nh.Observe(time.Millisecond)
		nh.ObserveExemplar(time.Millisecond, 7)
		nm.Mark(1)
		_ = nm.Rate()
		_ = nh.WindowQuantile(0.99)
	}); n != 0 {
		t.Fatalf("nil-handle path allocates %v/op, want 0", n)
	}
}
