package obs

import (
	"context"
	"testing"
	"time"
)

// nopInvokePath exercises exactly the telemetry call sequence an
// instrumented remote invoke performs, against disabled handles. Both
// the guard test and the guard benchmark run it so the zero-allocation
// property is checked the same way in both.
func nopInvokePath(h *Hub, c *Counter, e *Counter, g *Gauge, hist *Histogram) {
	start := time.Now()
	ctx, span := h.Tracer.Start(context.Background(), "rpc.invoke")
	_ = ctx
	span.SetAttr("method", "Work")
	span.Annotate("retry 1 after timeout")
	span.Fail(nil)
	c.Inc()
	e.Add(1)
	g.Add(1)
	hist.ObserveSince(start)
	span.Finish()
	g.Add(-1)
}

func TestNopTelemetryZeroAlloc(t *testing.T) {
	h := Nop()
	c := h.Metrics.Counter("invokes_total")
	e := h.Metrics.Counter("errors_total")
	g := h.Metrics.Gauge("inflight")
	hist := h.Metrics.Histogram("invoke_seconds")
	if c != nil || g != nil || hist != nil {
		t.Fatal("disabled registry must hand out nil handles")
	}
	allocs := testing.AllocsPerRun(200, func() {
		nopInvokePath(h, c, e, g, hist)
	})
	if allocs != 0 {
		t.Fatalf("disabled telemetry allocates %.1f per invoke, want 0", allocs)
	}
}

// BenchmarkNopInvokeTelemetry is the CI guard from ISSUE 2: a disabled
// registry/tracer must add zero allocations per invoke.
func BenchmarkNopInvokeTelemetry(b *testing.B) {
	h := Nop()
	c := h.Metrics.Counter("invokes_total")
	e := h.Metrics.Counter("errors_total")
	g := h.Metrics.Gauge("inflight")
	hist := h.Metrics.Histogram("invoke_seconds")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		nopInvokePath(h, c, e, g, hist)
	}
}

// BenchmarkEnabledInvokeTelemetry is the same call sequence against a
// live hub, for comparing against the no-op cost.
func BenchmarkEnabledInvokeTelemetry(b *testing.B) {
	h := NewHub()
	c := h.Metrics.Counter("invokes_total")
	e := h.Metrics.Counter("errors_total")
	g := h.Metrics.Gauge("inflight")
	hist := h.Metrics.Histogram("invoke_seconds")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		nopInvokePath(h, c, e, g, hist)
	}
}
