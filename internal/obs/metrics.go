// Package obs is the stdlib-only telemetry core: a lock-cheap metrics
// registry (atomic counters, gauges, fixed-bucket latency histograms
// with labeled families), span-based tracing with context.Context
// propagation across peers, and point-in-time snapshots feeding the
// Prometheus-text / JSON exporters served by internal/httpd.
//
// Every handle type (*Counter, *Gauge, *Histogram, *Span) and the
// *Registry / *Tracer themselves are nil-safe: a nil receiver makes
// every operation a no-op with zero allocations, so instrumented hot
// paths cost nothing when telemetry is disabled (see Nop). Handles are
// meant to be resolved once (package init or construction time) and
// then hit only with atomic operations on the hot path.
package obs

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing metric.
type Counter struct{ v atomic.Int64 }

// Inc adds one. Nil-safe.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds n (negative deltas are ignored: counters only go up).
func (c *Counter) Add(n int64) {
	if c != nil && n > 0 {
		c.v.Add(n)
	}
}

// Value returns the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a metric that can go up and down.
type Gauge struct{ v atomic.Int64 }

// Set stores v. Nil-safe.
func (g *Gauge) Set(v int64) {
	if g != nil {
		g.v.Store(v)
	}
}

// Add adds delta (may be negative). Nil-safe.
func (g *Gauge) Add(delta int64) {
	if g != nil {
		g.v.Add(delta)
	}
}

// Value returns the current value.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// LatencyBuckets are the fixed upper bounds of every latency histogram,
// spanning sub-millisecond wired-LAN invokes up to the multi-second
// acquisition totals of Tables 1 and 2.
var LatencyBuckets = []time.Duration{
	100 * time.Microsecond,
	250 * time.Microsecond,
	500 * time.Microsecond,
	1 * time.Millisecond,
	2500 * time.Microsecond,
	5 * time.Millisecond,
	10 * time.Millisecond,
	25 * time.Millisecond,
	50 * time.Millisecond,
	100 * time.Millisecond,
	250 * time.Millisecond,
	500 * time.Millisecond,
	1 * time.Second,
	2500 * time.Millisecond,
	5 * time.Second,
	10 * time.Second,
}

// Histogram is a fixed-bucket latency histogram. Observations are two
// atomic adds plus a short linear scan over the bounds.
type Histogram struct {
	bounds []time.Duration
	counts []atomic.Int64 // len(bounds)+1; last bucket is +Inf
	count  atomic.Int64
	sum    atomic.Int64 // nanoseconds
}

func newHistogram() *Histogram {
	return &Histogram{
		bounds: LatencyBuckets,
		counts: make([]atomic.Int64, len(LatencyBuckets)+1),
	}
}

// Observe records one duration. Nil-safe.
func (h *Histogram) Observe(d time.Duration) {
	if h == nil {
		return
	}
	if d < 0 {
		d = 0
	}
	i := 0
	for ; i < len(h.bounds); i++ {
		if d <= h.bounds[i] {
			break
		}
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	h.sum.Add(int64(d))
}

// ObserveSince records the elapsed time since start. Nil-safe.
func (h *Histogram) ObserveSince(start time.Time) {
	if h != nil {
		h.Observe(time.Since(start))
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the total observed duration.
func (h *Histogram) Sum() time.Duration {
	if h == nil {
		return 0
	}
	return time.Duration(h.sum.Load())
}

// Quantile estimates the q-quantile (0 < q <= 1, e.g. 0.5, 0.99) by
// linear interpolation inside the bucket containing the target rank.
// Observations landing in the +Inf bucket report the largest finite
// bound — the estimate saturates rather than invents a tail. Nil-safe;
// returns 0 with no observations.
func (h *Histogram) Quantile(q float64) time.Duration {
	if h == nil {
		return 0
	}
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := int64(q * float64(total))
	if rank < 1 {
		rank = 1
	}
	var cum int64
	for i := range h.counts {
		n := h.counts[i].Load()
		if n == 0 {
			continue
		}
		if cum+n >= rank {
			if i >= len(h.bounds) {
				// +Inf bucket: saturate at the largest finite bound.
				return h.bounds[len(h.bounds)-1]
			}
			lo := time.Duration(0)
			if i > 0 {
				lo = h.bounds[i-1]
			}
			hi := h.bounds[i]
			frac := float64(rank-cum) / float64(n)
			return lo + time.Duration(frac*float64(hi-lo))
		}
		cum += n
	}
	return h.bounds[len(h.bounds)-1]
}

// metric is the union of the three handle kinds inside a family.
type metric struct {
	labels  []string // alternating key, value
	counter *Counter
	gauge   *Gauge
	hist    *Histogram
}

type kind uint8

const (
	kindCounter kind = iota
	kindGauge
	kindHistogram
)

func (k kind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	case kindHistogram:
		return "histogram"
	}
	return "unknown"
}

// family is one named metric with any number of label permutations.
type family struct {
	name string
	kind kind
	help string

	mu     sync.RWMutex
	series map[string]*metric
}

// Registry holds metric families. A nil *Registry is the disabled
// registry: every lookup returns a nil handle and every handle
// operation is a no-op.
type Registry struct {
	mu       sync.RWMutex
	families map[string]*family
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// labelKey encodes alternating key/value pairs into a map key.
func labelKey(labels []string) string {
	if len(labels) == 0 {
		return ""
	}
	return strings.Join(labels, "\xff")
}

// lookup resolves (creating on first use) the series for name+labels.
// A kind mismatch with an existing family returns a detached handle so
// that instrumentation bugs degrade to lost samples, not panics.
func (r *Registry) lookup(k kind, name string, labels []string) *metric {
	r.mu.RLock()
	f := r.families[name]
	r.mu.RUnlock()
	if f == nil {
		r.mu.Lock()
		if f = r.families[name]; f == nil {
			f = &family{name: name, kind: k, series: make(map[string]*metric)}
			r.families[name] = f
		}
		r.mu.Unlock()
	}
	if f.kind != k {
		return newMetric(k, nil)
	}
	key := labelKey(labels)
	f.mu.RLock()
	m := f.series[key]
	f.mu.RUnlock()
	if m != nil {
		return m
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if m = f.series[key]; m == nil {
		ls := make([]string, len(labels))
		copy(ls, labels)
		m = newMetric(k, ls)
		f.series[key] = m
	}
	return m
}

func newMetric(k kind, labels []string) *metric {
	m := &metric{labels: labels}
	switch k {
	case kindCounter:
		m.counter = &Counter{}
	case kindGauge:
		m.gauge = &Gauge{}
	case kindHistogram:
		m.hist = newHistogram()
	}
	return m
}

// Counter resolves the counter for name and alternating label key/value
// pairs, creating it on first use. Nil registry returns a nil handle.
func (r *Registry) Counter(name string, labels ...string) *Counter {
	if r == nil {
		return nil
	}
	return r.lookup(kindCounter, name, labels).counter
}

// Gauge resolves a gauge handle. Nil registry returns a nil handle.
func (r *Registry) Gauge(name string, labels ...string) *Gauge {
	if r == nil {
		return nil
	}
	return r.lookup(kindGauge, name, labels).gauge
}

// Histogram resolves a latency histogram handle. Nil registry returns a
// nil handle.
func (r *Registry) Histogram(name string, labels ...string) *Histogram {
	if r == nil {
		return nil
	}
	return r.lookup(kindHistogram, name, labels).hist
}

// Help attaches a help string to a family, emitted as # HELP by the
// Prometheus exporter.
func (r *Registry) Help(name, help string) {
	if r == nil {
		return
	}
	r.mu.Lock()
	f := r.families[name]
	if f == nil {
		f = &family{name: name, kind: kindCounter, series: make(map[string]*metric)}
		r.families[name] = f
	}
	f.help = help
	r.mu.Unlock()
}

// Bucket is one histogram bucket in a snapshot (non-cumulative count).
type Bucket struct {
	UpperBound time.Duration `json:"upper_bound"` // 0 marks the +Inf bucket
	Count      int64         `json:"count"`
}

// HistogramSnapshot is a point-in-time copy of a histogram.
type HistogramSnapshot struct {
	Count   int64         `json:"count"`
	Sum     time.Duration `json:"sum"`
	Buckets []Bucket      `json:"buckets"`
}

// Mean returns the average observation (0 when empty).
func (h *HistogramSnapshot) Mean() time.Duration {
	if h == nil || h.Count == 0 {
		return 0
	}
	return h.Sum / time.Duration(h.Count)
}

// Quantile estimates the q-quantile (0 < q <= 1) by linear
// interpolation inside the bucket that contains it. Observations in the
// +Inf bucket resolve to the largest finite bound.
func (h *HistogramSnapshot) Quantile(q float64) time.Duration {
	if h == nil || h.Count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(h.Count)
	var seen float64
	lower := time.Duration(0)
	for _, b := range h.Buckets {
		if b.UpperBound == 0 { // +Inf
			return lower
		}
		if seen+float64(b.Count) >= rank {
			if b.Count == 0 {
				return b.UpperBound
			}
			frac := (rank - seen) / float64(b.Count)
			return lower + time.Duration(frac*float64(b.UpperBound-lower))
		}
		seen += float64(b.Count)
		lower = b.UpperBound
	}
	return lower
}

// Sample is one metric series in a snapshot.
type Sample struct {
	Name   string             `json:"name"`
	Kind   string             `json:"kind"`
	Labels map[string]string  `json:"labels,omitempty"`
	Help   string             `json:"help,omitempty"`
	Value  int64              `json:"value"`
	Hist   *HistogramSnapshot `json:"histogram,omitempty"`
}

// LabelString renders the sample's labels as {k="v",...} ("" when
// unlabeled), in sorted key order.
func (s *Sample) LabelString() string {
	if len(s.Labels) == 0 {
		return ""
	}
	keys := make([]string, 0, len(s.Labels))
	for k := range s.Labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, len(keys))
	for i, k := range keys {
		parts[i] = fmt.Sprintf("%s=%q", k, s.Labels[k])
	}
	return "{" + strings.Join(parts, ",") + "}"
}

// Snapshot returns a point-in-time copy of every series, sorted by name
// then labels. Nil registry returns nil.
func (r *Registry) Snapshot() []Sample {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	fams := make([]*family, 0, len(r.families))
	for _, f := range r.families {
		fams = append(fams, f)
	}
	r.mu.RUnlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })

	var out []Sample
	for _, f := range fams {
		f.mu.RLock()
		series := make([]*metric, 0, len(f.series))
		for _, m := range f.series {
			series = append(series, m)
		}
		help := f.help
		f.mu.RUnlock()
		sort.Slice(series, func(i, j int) bool {
			return labelKey(series[i].labels) < labelKey(series[j].labels)
		})
		for _, m := range series {
			s := Sample{Name: f.name, Kind: f.kind.String(), Help: help}
			if len(m.labels) >= 2 {
				s.Labels = make(map[string]string, len(m.labels)/2)
				for i := 0; i+1 < len(m.labels); i += 2 {
					s.Labels[m.labels[i]] = m.labels[i+1]
				}
			}
			switch f.kind {
			case kindCounter:
				s.Value = m.counter.Value()
			case kindGauge:
				s.Value = m.gauge.Value()
			case kindHistogram:
				s.Hist = snapshotHistogram(m.hist)
			}
			out = append(out, s)
		}
	}
	return out
}

func snapshotHistogram(h *Histogram) *HistogramSnapshot {
	snap := &HistogramSnapshot{
		Count:   h.count.Load(),
		Sum:     time.Duration(h.sum.Load()),
		Buckets: make([]Bucket, len(h.counts)),
	}
	for i := range h.counts {
		var ub time.Duration
		if i < len(h.bounds) {
			ub = h.bounds[i]
		}
		snap.Buckets[i] = Bucket{UpperBound: ub, Count: h.counts[i].Load()}
	}
	return snap
}
