// Package obs is the stdlib-only telemetry core: a lock-cheap metrics
// registry (atomic counters, gauges, fixed-bucket latency histograms
// with labeled families), span-based tracing with context.Context
// propagation across peers, and point-in-time snapshots feeding the
// Prometheus-text / JSON exporters served by internal/httpd.
//
// Every handle type (*Counter, *Gauge, *Histogram, *Span) and the
// *Registry / *Tracer themselves are nil-safe: a nil receiver makes
// every operation a no-op with zero allocations, so instrumented hot
// paths cost nothing when telemetry is disabled (see Nop). Handles are
// meant to be resolved once (package init or construction time) and
// then hit only with atomic operations on the hot path.
package obs

import (
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/alfredo-mw/alfredo/internal/sim/clock"
)

// Counter is a monotonically increasing metric.
type Counter struct{ v atomic.Int64 }

// Inc adds one. Nil-safe.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds n (negative deltas are ignored: counters only go up).
func (c *Counter) Add(n int64) {
	if c != nil && n > 0 {
		c.v.Add(n)
	}
}

// Value returns the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a metric that can go up and down.
type Gauge struct{ v atomic.Int64 }

// Set stores v. Nil-safe.
func (g *Gauge) Set(v int64) {
	if g != nil {
		g.v.Store(v)
	}
}

// Add adds delta (may be negative). Nil-safe.
func (g *Gauge) Add(delta int64) {
	if g != nil {
		g.v.Add(delta)
	}
}

// Value returns the current value.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// LatencyBuckets are the fixed upper bounds of every latency histogram,
// spanning sub-millisecond wired-LAN invokes up to the multi-second
// acquisition totals of Tables 1 and 2.
var LatencyBuckets = []time.Duration{
	100 * time.Microsecond,
	250 * time.Microsecond,
	500 * time.Microsecond,
	1 * time.Millisecond,
	2500 * time.Microsecond,
	5 * time.Millisecond,
	10 * time.Millisecond,
	25 * time.Millisecond,
	50 * time.Millisecond,
	100 * time.Millisecond,
	250 * time.Millisecond,
	500 * time.Millisecond,
	1 * time.Second,
	2500 * time.Millisecond,
	5 * time.Second,
	10 * time.Second,
}

// Histogram is a fixed-bucket latency histogram. Observations are a
// few atomic adds plus a short linear scan over the bounds: the
// cumulative (all-time) buckets, the sliding-window slot (window.go),
// and optionally a per-bucket trace exemplar.
type Histogram struct {
	bounds []time.Duration
	counts []atomic.Int64 // len(bounds)+1; last bucket is +Inf
	count  atomic.Int64
	sum    atomic.Int64 // nanoseconds

	// clk drives the sliding-window rotation; nil (detached handles)
	// disables the window but keeps cumulative counting.
	clk       clock.Clock
	slots     [winSlotCount]winSlot
	exemplars []atomic.Uint64 // len(bounds)+1; most recent trace id per bucket
}

func newHistogram(clk clock.Clock) *Histogram {
	h := &Histogram{
		bounds: LatencyBuckets,
		counts: make([]atomic.Int64, len(LatencyBuckets)+1),
		clk:    clk,
	}
	if clk != nil {
		for i := range h.slots {
			h.slots[i].id.Store(-1)
			h.slots[i].counts = make([]atomic.Int64, len(h.counts))
		}
		h.exemplars = make([]atomic.Uint64, len(h.counts))
	}
	return h
}

// bucketOf returns the index of the bucket containing d (the +Inf
// bucket for durations past the largest bound).
func (h *Histogram) bucketOf(d time.Duration) int {
	i := 0
	for ; i < len(h.bounds); i++ {
		if d <= h.bounds[i] {
			break
		}
	}
	return i
}

// Observe records one duration. Nil-safe.
func (h *Histogram) Observe(d time.Duration) {
	if h == nil {
		return
	}
	if d < 0 {
		d = 0
	}
	i := h.bucketOf(d)
	h.counts[i].Add(1)
	h.count.Add(1)
	h.sum.Add(int64(d))
	h.observeWindow(i, d)
}

// ObserveSince records the elapsed time since start. Nil-safe. On a
// wall-clock registry the window slot is derived from start+elapsed
// rather than a second clock read, so the invoke hot path pays one
// time.Now per observation, not two.
func (h *Histogram) ObserveSince(start time.Time) {
	if h == nil {
		return
	}
	d := time.Since(start)
	if d < 0 {
		d = 0
	}
	i := h.bucketOf(d)
	h.counts[i].Add(1)
	h.count.Add(1)
	h.sum.Add(int64(d))
	switch {
	case h.clk == nil:
	case h.clk == clock.Wall:
		h.observeWindowAt(start.Add(d), i, d)
	default:
		h.observeWindowAt(h.clk.Now(), i, d)
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the total observed duration.
func (h *Histogram) Sum() time.Duration {
	if h == nil {
		return 0
	}
	return time.Duration(h.sum.Load())
}

// Quantile estimates the q-quantile (0 < q <= 1, e.g. 0.5, 0.99) by
// linear interpolation inside the bucket containing the target rank.
// Observations landing in the +Inf bucket report the largest finite
// bound — the estimate saturates rather than invents a tail. Nil-safe;
// returns 0 with no observations.
func (h *Histogram) Quantile(q float64) time.Duration {
	if h == nil {
		return 0
	}
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := int64(q * float64(total))
	if rank < 1 {
		rank = 1
	}
	var cum int64
	for i := range h.counts {
		n := h.counts[i].Load()
		if n == 0 {
			continue
		}
		if cum+n >= rank {
			if i >= len(h.bounds) {
				// +Inf bucket: saturate at the largest finite bound.
				return h.bounds[len(h.bounds)-1]
			}
			lo := time.Duration(0)
			if i > 0 {
				lo = h.bounds[i-1]
			}
			hi := h.bounds[i]
			frac := float64(rank-cum) / float64(n)
			return lo + time.Duration(frac*float64(hi-lo))
		}
		cum += n
	}
	return h.bounds[len(h.bounds)-1]
}

// metric is the union of the handle kinds inside a family.
type metric struct {
	labels  []string // alternating key, value
	counter *Counter
	gauge   *Gauge
	hist    *Histogram
	meter   *Meter
}

type kind uint8

const (
	kindCounter kind = iota
	kindGauge
	kindHistogram
	kindMeter
)

func (k kind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	case kindHistogram:
		return "histogram"
	case kindMeter:
		return "meter"
	}
	return "unknown"
}

// kindOf maps a snapshot kind string back to the internal kind; used
// when merging shipped samples. Reports false for unknown strings.
func kindOf(s string) (kind, bool) {
	switch s {
	case "counter":
		return kindCounter, true
	case "gauge":
		return kindGauge, true
	case "histogram":
		return kindHistogram, true
	case "meter":
		return kindMeter, true
	}
	return 0, false
}

// family is one named metric with any number of label permutations.
type family struct {
	name string
	kind kind
	help string

	mu     sync.RWMutex
	series map[string]*metric
}

// DefaultMaxSeries bounds the label permutations one family may hold.
// Past the cap, new label sets collapse into a single overflow series
// whose label values are all "other" — so a hostile or buggy label
// stream (e.g. per-request ids) cannot grow the registry without
// bound, while the total stays countable.
const DefaultMaxSeries = 1024

// OverflowLabel is the label value series are collapsed onto once a
// family exceeds its series cap.
const OverflowLabel = "other"

// Registry holds metric families. A nil *Registry is the disabled
// registry: every lookup returns a nil handle and every handle
// operation is a no-op.
type Registry struct {
	clk       clock.Clock
	maxSeries int

	mu       sync.RWMutex
	families map[string]*family
}

// NewRegistry creates an empty registry on the wall clock.
func NewRegistry() *Registry { return NewRegistryOn(nil) }

// NewRegistryOn creates an empty registry whose sliding windows and
// meters advance on clk (nil selects the wall clock). The simulation
// harness passes its virtual clock so windowed readings replay
// deterministically.
func NewRegistryOn(clk clock.Clock) *Registry {
	return &Registry{
		clk:       clock.Or(clk),
		maxSeries: DefaultMaxSeries,
		families:  make(map[string]*family),
	}
}

// Clock returns the registry's time source (wall by default).
func (r *Registry) Clock() clock.Clock {
	if r == nil {
		return clock.Wall
	}
	return r.clk
}

// labelKey encodes alternating key/value pairs into a map key.
func labelKey(labels []string) string {
	if len(labels) == 0 {
		return ""
	}
	return strings.Join(labels, "\xff")
}

// lookup resolves (creating on first use) the series for name+labels.
// A kind mismatch with an existing family returns a detached handle so
// that instrumentation bugs degrade to lost samples, not panics.
func (r *Registry) lookup(k kind, name string, labels []string) *metric {
	r.mu.RLock()
	f := r.families[name]
	r.mu.RUnlock()
	if f == nil {
		r.mu.Lock()
		if f = r.families[name]; f == nil {
			f = &family{name: name, kind: k, series: make(map[string]*metric)}
			r.families[name] = f
		}
		r.mu.Unlock()
	}
	if f.kind != k {
		return newMetric(k, nil, nil)
	}
	key := labelKey(labels)
	f.mu.RLock()
	m := f.series[key]
	full := len(f.series) >= r.maxSeries
	f.mu.RUnlock()
	if m != nil {
		return m
	}
	if full && len(labels) > 0 {
		// Cardinality cap: collapse the new label set onto the overflow
		// series (all label values "other") instead of growing the
		// family. The overflow series itself is created through the
		// normal path below and re-entry terminates because its key is
		// stable.
		over := overflowLabels(labels)
		if labelKey(over) != key {
			return r.lookup(k, name, over)
		}
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if m = f.series[key]; m == nil {
		ls := make([]string, len(labels))
		copy(ls, labels)
		m = newMetric(k, ls, r.clk)
		f.series[key] = m
	}
	return m
}

// overflowLabels keeps the label keys and replaces every value with
// OverflowLabel.
func overflowLabels(labels []string) []string {
	out := make([]string, len(labels))
	for i, v := range labels {
		if i%2 == 0 {
			out[i] = v
		} else {
			out[i] = OverflowLabel
		}
	}
	return out
}

func newMetric(k kind, labels []string, clk clock.Clock) *metric {
	m := &metric{labels: labels}
	switch k {
	case kindCounter:
		m.counter = &Counter{}
	case kindGauge:
		m.gauge = &Gauge{}
	case kindHistogram:
		m.hist = newHistogram(clk)
	case kindMeter:
		m.meter = newMeter(clock.Or(clk))
	}
	return m
}

// Counter resolves the counter for name and alternating label key/value
// pairs, creating it on first use. Nil registry returns a nil handle.
func (r *Registry) Counter(name string, labels ...string) *Counter {
	if r == nil {
		return nil
	}
	return r.lookup(kindCounter, name, labels).counter
}

// Gauge resolves a gauge handle. Nil registry returns a nil handle.
func (r *Registry) Gauge(name string, labels ...string) *Gauge {
	if r == nil {
		return nil
	}
	return r.lookup(kindGauge, name, labels).gauge
}

// Histogram resolves a latency histogram handle. Nil registry returns a
// nil handle.
func (r *Registry) Histogram(name string, labels ...string) *Histogram {
	if r == nil {
		return nil
	}
	return r.lookup(kindHistogram, name, labels).hist
}

// Meter resolves an EWMA rate meter handle. Nil registry returns a nil
// handle.
func (r *Registry) Meter(name string, labels ...string) *Meter {
	if r == nil {
		return nil
	}
	return r.lookup(kindMeter, name, labels).meter
}

// WindowQuantile estimates the q-quantile over the sliding windows of
// every series in the named histogram family merged together — the
// "live p99 across all services" reading health scoring consumes.
// Returns 0 when the family is absent or its windows are empty.
func (r *Registry) WindowQuantile(name string, q float64) time.Duration {
	return r.WindowQuantileLabeled(name, q)
}

// WindowQuantileLabeled is WindowQuantile restricted to the series
// whose labels include every given key/value pair (alternating, as in
// the handle constructors) — the per-service latency tap the
// re-placement optimizer reads. An empty filter merges the whole
// family. Returns 0 when nothing matches or the windows are empty.
func (r *Registry) WindowQuantileLabeled(name string, q float64, labels ...string) time.Duration {
	if r == nil {
		return 0
	}
	r.mu.RLock()
	f := r.families[name]
	r.mu.RUnlock()
	if f == nil || f.kind != kindHistogram {
		return 0
	}
	f.mu.RLock()
	series := make([]*metric, 0, len(f.series))
	for _, m := range f.series {
		if labelsInclude(m.labels, labels) {
			series = append(series, m)
		}
	}
	f.mu.RUnlock()
	var merged []int64
	var total int64
	var bounds []time.Duration
	for _, m := range series {
		buckets, n, _ := m.hist.windowCounts()
		if n == 0 {
			continue
		}
		if merged == nil {
			merged = make([]int64, len(buckets))
			bounds = m.hist.bounds
		}
		for i := range buckets {
			merged[i] += buckets[i]
		}
		total += n
	}
	if total == 0 {
		return 0
	}
	return bucketQuantile(bounds, merged, total, q)
}

// labelsInclude reports whether have (alternating key/value) contains
// every pair of want.
func labelsInclude(have, want []string) bool {
	for i := 0; i+1 < len(want); i += 2 {
		found := false
		for j := 0; j+1 < len(have); j += 2 {
			if have[j] == want[i] && have[j+1] == want[i+1] {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}

// Total sums a family across every series: counter and gauge values,
// or histogram observation counts. Meters (smoothed rates) contribute
// nothing. Returns 0 for absent families. Nil-safe.
func (r *Registry) Total(name string) int64 {
	if r == nil {
		return 0
	}
	r.mu.RLock()
	f := r.families[name]
	r.mu.RUnlock()
	if f == nil {
		return 0
	}
	f.mu.RLock()
	defer f.mu.RUnlock()
	var total int64
	for _, m := range f.series {
		switch {
		case m.counter != nil:
			total += m.counter.Value()
		case m.gauge != nil:
			total += m.gauge.Value()
		case m.hist != nil:
			total += m.hist.Count()
		}
	}
	return total
}

// Help attaches a help string to a family, emitted as # HELP by the
// Prometheus exporter.
func (r *Registry) Help(name, help string) {
	if r == nil {
		return
	}
	r.mu.Lock()
	f := r.families[name]
	if f == nil {
		f = &family{name: name, kind: kindCounter, series: make(map[string]*metric)}
		r.families[name] = f
	}
	f.help = help
	r.mu.Unlock()
}

// Bucket is one histogram bucket in a snapshot (non-cumulative count).
// Exemplar, when non-empty, is the hex trace id of a recent
// observation that landed in this bucket (see ObserveExemplar).
type Bucket struct {
	UpperBound time.Duration `json:"upper_bound"` // 0 marks the +Inf bucket
	Count      int64         `json:"count"`
	Exemplar   string        `json:"exemplar,omitempty"`
}

// HistogramSnapshot is a point-in-time copy of a histogram.
type HistogramSnapshot struct {
	Count   int64         `json:"count"`
	Sum     time.Duration `json:"sum"`
	Buckets []Bucket      `json:"buckets"`
}

// Mean returns the average observation (0 when empty).
func (h *HistogramSnapshot) Mean() time.Duration {
	if h == nil || h.Count == 0 {
		return 0
	}
	return h.Sum / time.Duration(h.Count)
}

// Quantile estimates the q-quantile (0 < q <= 1) by linear
// interpolation inside the bucket that contains it. Observations in the
// +Inf bucket resolve to the largest finite bound.
func (h *HistogramSnapshot) Quantile(q float64) time.Duration {
	if h == nil || h.Count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(h.Count)
	var seen float64
	lower := time.Duration(0)
	for _, b := range h.Buckets {
		if b.UpperBound == 0 { // +Inf
			return lower
		}
		if seen+float64(b.Count) >= rank {
			if b.Count == 0 {
				return b.UpperBound
			}
			frac := (rank - seen) / float64(b.Count)
			return lower + time.Duration(frac*float64(b.UpperBound-lower))
		}
		seen += float64(b.Count)
		lower = b.UpperBound
	}
	return lower
}

// Sample is one metric series in a snapshot.
type Sample struct {
	Name   string             `json:"name"`
	Kind   string             `json:"kind"`
	Labels map[string]string  `json:"labels,omitempty"`
	Help   string             `json:"help,omitempty"`
	Value  int64              `json:"value"`
	Rate   float64            `json:"rate,omitempty"` // meters: events/sec
	Hist   *HistogramSnapshot `json:"histogram,omitempty"`
	Win    *HistogramSnapshot `json:"window,omitempty"` // sliding-window view
}

// LabelString renders the sample's labels as {k="v",...} ("" when
// unlabeled), in sorted key order. Values are escaped per the
// Prometheus exposition format (0.0.4): backslash, double quote and
// newline only — Go-style \uXXXX escapes are not part of the format.
func (s *Sample) LabelString() string {
	if len(s.Labels) == 0 {
		return ""
	}
	keys := make([]string, 0, len(s.Labels))
	for k := range s.Labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(k)
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(s.Labels[k]))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// escapeLabelValue escapes a label value for the Prometheus text
// exposition format: backslash, double quote and line feed. All other
// bytes (including non-ASCII UTF-8) pass through verbatim.
func escapeLabelValue(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var b strings.Builder
	b.Grow(len(v) + 2)
	for i := 0; i < len(v); i++ {
		switch v[i] {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteByte(v[i])
		}
	}
	return b.String()
}

// Snapshot returns a point-in-time copy of every series, sorted by name
// then labels. Nil registry returns nil.
func (r *Registry) Snapshot() []Sample {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	fams := make([]*family, 0, len(r.families))
	for _, f := range r.families {
		fams = append(fams, f)
	}
	r.mu.RUnlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })

	var out []Sample
	for _, f := range fams {
		f.mu.RLock()
		series := make([]*metric, 0, len(f.series))
		for _, m := range f.series {
			series = append(series, m)
		}
		help := f.help
		f.mu.RUnlock()
		sort.Slice(series, func(i, j int) bool {
			return labelKey(series[i].labels) < labelKey(series[j].labels)
		})
		for _, m := range series {
			s := Sample{Name: f.name, Kind: f.kind.String(), Help: help}
			if len(m.labels) >= 2 {
				s.Labels = make(map[string]string, len(m.labels)/2)
				for i := 0; i+1 < len(m.labels); i += 2 {
					s.Labels[m.labels[i]] = m.labels[i+1]
				}
			}
			switch f.kind {
			case kindCounter:
				s.Value = m.counter.Value()
			case kindGauge:
				s.Value = m.gauge.Value()
			case kindHistogram:
				s.Hist = snapshotHistogram(m.hist)
				s.Win = m.hist.WindowSnapshot()
			case kindMeter:
				s.Rate = m.meter.Rate()
			}
			out = append(out, s)
		}
	}
	return out
}

func snapshotHistogram(h *Histogram) *HistogramSnapshot {
	snap := &HistogramSnapshot{
		Count:   h.count.Load(),
		Sum:     time.Duration(h.sum.Load()),
		Buckets: make([]Bucket, len(h.counts)),
	}
	for i := range h.counts {
		var ub time.Duration
		if i < len(h.bounds) {
			ub = h.bounds[i]
		}
		b := Bucket{UpperBound: ub, Count: h.counts[i].Load()}
		if h.exemplars != nil {
			if id := h.exemplars[i].Load(); id != 0 {
				b.Exemplar = FormatID(id)
			}
		}
		snap.Buckets[i] = b
	}
	return snap
}
