package obs

import (
	"testing"
	"time"

	"github.com/alfredo-mw/alfredo/internal/sim/clock"
)

// TestHealthScorerComponents seeds the registry with every signal the
// scorer folds — queue depth, heap pressure, live invoke p99 — and
// checks the component math, the worst-component overall and the
// published gauges after the synchronous first pass.
func TestHealthScorerComponents(t *testing.T) {
	clk := clock.NewVirtual(1)
	r := NewRegistryOn(clk)

	// Queue at half the default reactor width: component 0.5.
	r.Gauge(healthQueueFamily).Set(DefaultQueueCapacity / 2)
	// Heap at 75% of the 1 GiB default limit: (0.75-0.5)/0.5 = 0.5.
	r.Gauge(healthHeapFamily).Set(768 << 20)
	// Invoke p99 at ~2.5x the 100ms target: latency saturates at 1.
	h := r.Histogram("alfredo_remote_server_invoke_seconds")
	for i := 0; i < 100; i++ {
		h.Observe(200 * time.Millisecond)
	}

	hs := StartHealthScorer(r, clk, HealthConfig{})
	defer hs.Stop()

	s := hs.Last()
	if s.Queue < 0.49 || s.Queue > 0.51 {
		t.Fatalf("queue component = %g, want ~0.5", s.Queue)
	}
	if s.Heap < 0.49 || s.Heap > 0.51 {
		t.Fatalf("heap component = %g, want ~0.5", s.Heap)
	}
	if s.Latency != 1 {
		t.Fatalf("latency component = %g, want 1 (p99 %v far past target)", s.Latency, s.InvokeP99)
	}
	if s.InvokeP99 < DefaultInvokeP99Target {
		t.Fatalf("InvokeP99 = %v, want >= %v", s.InvokeP99, DefaultInvokeP99Target)
	}
	if s.Overall != s.Latency {
		t.Fatalf("overall = %g, want the worst component (latency %g)", s.Overall, s.Latency)
	}

	// The score ships like any other metric: published as gauges.
	if got := r.Gauge(HealthOverallGauge).Value(); got != 1000 {
		t.Fatalf("overall gauge = %d milli, want 1000", got)
	}
	if got := r.Gauge(HealthComponentGauge, "component", "queue").Value(); got != 500 {
		t.Fatalf("queue gauge = %d milli, want 500", got)
	}
}

// TestHealthScorerRejectRateOnVirtualClock drives the periodic pass on
// the virtual clock: admission rejections land between two passes and
// the rejects component must read the rate over exactly the simulated
// interval — deterministic, replayable scoring.
func TestHealthScorerRejectRateOnVirtualClock(t *testing.T) {
	clk := clock.NewVirtual(2)
	r := NewRegistryOn(clk)

	hs := StartHealthScorer(r, clk, HealthConfig{})
	defer hs.Stop()
	if s := hs.Last(); s.Overall != 0 {
		t.Fatalf("idle registry scores %+v, want all zero", s)
	}

	// 250 rejections over one 5s interval: 50/s, half of the 100/s max.
	r.Counter(healthRejectsFamily).Add(250)
	if !clk.WaitCond(time.Minute, func() bool { return hs.Last().Rejects > 0 }) {
		t.Fatal("scorer never observed the rejection burst on virtual time")
	}
	s := hs.Last()
	if s.RejectRate < 49 || s.RejectRate > 51 {
		t.Fatalf("reject rate = %g/s, want ~50 (250 rejects over 5s virtual)", s.RejectRate)
	}
	if s.Rejects < 0.49 || s.Rejects > 0.51 {
		t.Fatalf("rejects component = %g, want ~0.5", s.Rejects)
	}
	if s.Overall != s.Rejects {
		t.Fatalf("overall = %g, want rejects component %g", s.Overall, s.Rejects)
	}

	// Quiet interval: the rate decays to zero on the next pass.
	if !clk.WaitCond(time.Minute, func() bool { return hs.Last().Rejects == 0 }) {
		t.Fatal("rejects component never decayed after the burst")
	}
}

// TestHealthScorerNilSafety: a nil scorer reads the zero score, so
// HealthView-style consumers need no guards.
func TestHealthScorerNilSafety(t *testing.T) {
	var hs *HealthScorer
	if s := hs.Last(); s != (HealthScore{}) {
		t.Fatalf("nil scorer Last = %+v, want zero", s)
	}
}
