package obs

import (
	"context"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("hits_total")
	c.Inc()
	c.Add(4)
	c.Add(-10) // ignored: counters only go up
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if again := r.Counter("hits_total"); again != c {
		t.Fatal("same name+labels must resolve to the same handle")
	}
	g := r.Gauge("active")
	g.Set(7)
	g.Add(-2)
	if got := g.Value(); got != 5 {
		t.Fatalf("gauge = %d, want 5", got)
	}
}

func TestLabeledFamilies(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("reqs_total", "op", "invoke")
	b := r.Counter("reqs_total", "op", "fetch")
	if a == b {
		t.Fatal("distinct labels must yield distinct series")
	}
	a.Inc()
	a.Inc()
	b.Inc()
	if r.Counter("reqs_total", "op", "invoke").Value() != 2 {
		t.Fatal("labeled lookup did not find existing series")
	}
	snap := r.Snapshot()
	if len(snap) != 2 {
		t.Fatalf("snapshot has %d samples, want 2", len(snap))
	}
	if snap[0].Labels["op"] != "fetch" || snap[1].Labels["op"] != "invoke" {
		t.Fatalf("snapshot not sorted by labels: %+v", snap)
	}
}

func TestKindMismatchReturnsDetachedHandle(t *testing.T) {
	r := NewRegistry()
	r.Counter("x").Inc()
	g := r.Gauge("x") // wrong kind for existing family
	if g == nil {
		t.Fatal("mismatch must return a usable detached handle, not nil")
	}
	g.Set(99) // must not panic and must not corrupt the family
	if got := r.Counter("x").Value(); got != 1 {
		t.Fatalf("counter corrupted by kind mismatch: %d", got)
	}
}

func TestHistogramObserveAndQuantile(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat_seconds")
	for i := 0; i < 100; i++ {
		h.Observe(3 * time.Millisecond) // falls in the (2.5ms, 5ms] bucket
	}
	h.Observe(20 * time.Second) // +Inf bucket
	if h.Count() != 101 {
		t.Fatalf("count = %d, want 101", h.Count())
	}
	snap := r.Snapshot()[0].Hist
	if snap.Count != 101 {
		t.Fatalf("snapshot count = %d", snap.Count)
	}
	q50 := snap.Quantile(0.5)
	if q50 < 2500*time.Microsecond || q50 > 5*time.Millisecond {
		t.Fatalf("median %v outside the (2.5ms, 5ms] bucket", q50)
	}
	// The +Inf observation resolves to the largest finite bound.
	if q := snap.Quantile(1); q != LatencyBuckets[len(LatencyBuckets)-1] {
		t.Fatalf("q100 = %v, want top bound", q)
	}
	if snap.Mean() <= 0 {
		t.Fatal("mean must be positive")
	}
}

func TestPrometheusExport(t *testing.T) {
	r := NewRegistry()
	r.Help("frames_total", "Frames seen.")
	r.Counter("frames_total", "dir", "in").Add(3)
	r.Gauge("active").Set(2)
	r.Histogram("lat_seconds").Observe(time.Millisecond)
	var b strings.Builder
	if err := WritePrometheus(&b, r); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# HELP frames_total Frames seen.",
		"# TYPE frames_total counter",
		`frames_total{dir="in"} 3`,
		"# TYPE active gauge",
		"active 2",
		"# TYPE lat_seconds histogram",
		`lat_seconds_bucket{le="0.001"} 1`,
		`lat_seconds_bucket{le="+Inf"} 1`,
		"lat_seconds_sum 0.001",
		"lat_seconds_count 1",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("prometheus output missing %q:\n%s", want, out)
		}
	}
	var jb strings.Builder
	if err := WriteJSON(&jb, r); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(jb.String(), `"frames_total"`) {
		t.Fatalf("json output missing sample: %s", jb.String())
	}
}

func TestRegistryConcurrentAccess(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				r.Counter("c", "k", "v").Inc()
				r.Histogram("h").Observe(time.Microsecond)
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("c", "k", "v").Value(); got != 8000 {
		t.Fatalf("concurrent counter = %d, want 8000", got)
	}
}

func TestTracerParentChildAndRemote(t *testing.T) {
	store := NewTraceStore(16)
	tr := NewTracer(store)

	ctx, root := tr.Start(context.Background(), "client.invoke")
	_, child := tr.Start(ctx, "rpc.invoke")
	if child.Context().TraceID != root.Context().TraceID {
		t.Fatal("child must join the parent trace")
	}
	// Simulate the wire hop: only the SpanContext crosses.
	server := tr.StartRemote(child.Context(), "rpc.server")
	server.SetAttr("node", "target")
	server.Annotate("handled")
	server.Finish()
	child.Finish()
	root.Finish()

	spans, ok := store.Trace(FormatID(root.Context().TraceID))
	if !ok {
		t.Fatal("trace not found in store")
	}
	if len(spans) != 3 {
		t.Fatalf("trace has %d spans, want 3", len(spans))
	}
	// The server span's parent must be the client rpc span.
	var srv *SpanData
	for i := range spans {
		if spans[i].Name == "rpc.server" {
			srv = &spans[i]
		}
	}
	if srv == nil || srv.ParentID != child.Context().SpanID {
		t.Fatalf("server span not parented under client rpc span: %+v", srv)
	}
	tree := FormatTrace(spans)
	if !strings.Contains(tree, "rpc.server") || !strings.Contains(tree, "node=target") {
		t.Fatalf("FormatTrace missing content:\n%s", tree)
	}
}

func TestStartRemoteWithoutParentStartsFreshTrace(t *testing.T) {
	tr := NewTracer(NewTraceStore(4))
	s := tr.StartRemote(SpanContext{}, "rpc.server")
	if !s.Context().Valid() {
		t.Fatal("span without parent must still get a trace ID")
	}
}

func TestTraceStoreEvictionAndViews(t *testing.T) {
	store := NewTraceStore(2)
	tr := NewTracer(store)
	var ids []string
	for i := 0; i < 3; i++ {
		_, s := tr.Start(context.Background(), "op")
		if i == 1 {
			time.Sleep(2 * time.Millisecond) // make the middle trace slowest
		}
		s.Finish()
		ids = append(ids, FormatID(s.Context().TraceID))
	}
	if store.Len() != 2 {
		t.Fatalf("store holds %d traces, want 2 (evicted oldest)", store.Len())
	}
	if _, ok := store.Trace(ids[0]); ok {
		t.Fatal("oldest trace should have been evicted")
	}
	recent := store.Recent(10)
	if len(recent) != 2 || recent[0].TraceID != ids[2] {
		t.Fatalf("Recent order wrong: %+v", recent)
	}
	slow := store.Slowest(1)
	if len(slow) != 1 || slow[0].TraceID != ids[1] {
		t.Fatalf("Slowest should pick the slept trace: %+v", slow)
	}
}

func TestSpanFinishIdempotent(t *testing.T) {
	store := NewTraceStore(4)
	tr := NewTracer(store)
	_, s := tr.Start(context.Background(), "op")
	s.Finish()
	s.Finish()
	spans, _ := store.Trace(FormatID(s.Context().TraceID))
	if len(spans) != 1 {
		t.Fatalf("double Finish published %d spans", len(spans))
	}
}

func TestNewIDsAreUnique(t *testing.T) {
	seen := make(map[uint64]bool)
	for i := 0; i < 10000; i++ {
		id := newID()
		if id == 0 || seen[id] {
			t.Fatalf("id collision or zero at iteration %d", i)
		}
		seen[id] = true
	}
}

func TestHubDefaults(t *testing.T) {
	var h *Hub
	if h.OrDefault() != Default() {
		t.Fatal("nil hub must resolve to Default")
	}
	if Nop().Enabled() {
		t.Fatal("Nop hub must be disabled")
	}
	if !Default().Enabled() {
		t.Fatal("Default hub must be enabled")
	}
	if Nop().OrDefault() == Default() {
		t.Fatal("Nop must not resolve to Default")
	}
}
