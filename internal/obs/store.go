package obs

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

const (
	// DefaultTraceCap bounds how many traces the ring store retains.
	DefaultTraceCap = 256
	// maxSpansPerTrace caps span accumulation inside one trace so a
	// runaway trace ID cannot grow without bound.
	maxSpansPerTrace = 512
)

// TraceStore is a ring buffer of recent traces, grouped by trace ID.
// When full, the oldest trace is evicted to admit a new one.
type TraceStore struct {
	mu     sync.Mutex
	cap    int
	traces map[uint64]*traceRec
	order  []uint64 // insertion order for eviction
}

type traceRec struct {
	id      uint64
	spans   []SpanData
	dropped int
}

// NewTraceStore creates a store retaining up to capacity traces
// (DefaultTraceCap when <= 0).
func NewTraceStore(capacity int) *TraceStore {
	if capacity <= 0 {
		capacity = DefaultTraceCap
	}
	return &TraceStore{cap: capacity, traces: make(map[uint64]*traceRec)}
}

func (ts *TraceStore) add(span SpanData) {
	ts.mu.Lock()
	defer ts.mu.Unlock()
	rec := ts.traces[span.TraceID]
	if rec == nil {
		if len(ts.order) >= ts.cap {
			oldest := ts.order[0]
			ts.order = ts.order[1:]
			delete(ts.traces, oldest)
		}
		rec = &traceRec{id: span.TraceID}
		ts.traces[span.TraceID] = rec
		ts.order = append(ts.order, span.TraceID)
	}
	if len(rec.spans) >= maxSpansPerTrace {
		rec.dropped++
		return
	}
	rec.spans = append(rec.spans, span)
}

// TraceSummary is the list-view of one trace.
type TraceSummary struct {
	TraceID  string        `json:"trace_id"`
	Root     string        `json:"root"`
	Spans    int           `json:"spans"`
	Errors   int           `json:"errors"`
	Start    time.Time     `json:"start"`
	Duration time.Duration `json:"duration"`
}

// summarize must be called with ts.mu held.
func (rec *traceRec) summarize() TraceSummary {
	sum := TraceSummary{TraceID: FormatID(rec.id), Spans: len(rec.spans) + rec.dropped}
	var start, end time.Time
	var rootDur time.Duration
	for i := range rec.spans {
		sp := &rec.spans[i]
		if start.IsZero() || sp.Start.Before(start) {
			start = sp.Start
		}
		if e := sp.Start.Add(sp.Duration); end.IsZero() || e.After(end) {
			end = e
		}
		if sp.Error != "" {
			sum.Errors++
		}
		if sp.ParentID == 0 && sp.Duration > rootDur {
			sum.Root, rootDur = sp.Name, sp.Duration
		}
	}
	if sum.Root == "" && len(rec.spans) > 0 {
		sum.Root = rec.spans[0].Name
	}
	sum.Start = start
	if !start.IsZero() {
		sum.Duration = end.Sub(start)
	}
	return sum
}

// Recent returns summaries of the n most recently started traces,
// newest first. Nil-safe.
func (ts *TraceStore) Recent(n int) []TraceSummary {
	return ts.view(n, func(a, b TraceSummary) bool { return a.Start.After(b.Start) })
}

// Slowest returns summaries of the n slowest traces, slowest first.
// Nil-safe.
func (ts *TraceStore) Slowest(n int) []TraceSummary {
	return ts.view(n, func(a, b TraceSummary) bool { return a.Duration > b.Duration })
}

func (ts *TraceStore) view(n int, less func(a, b TraceSummary) bool) []TraceSummary {
	if ts == nil {
		return nil
	}
	ts.mu.Lock()
	sums := make([]TraceSummary, 0, len(ts.traces))
	for _, rec := range ts.traces {
		sums = append(sums, rec.summarize())
	}
	ts.mu.Unlock()
	sort.Slice(sums, func(i, j int) bool { return less(sums[i], sums[j]) })
	if n > 0 && len(sums) > n {
		sums = sums[:n]
	}
	return sums
}

// Trace returns all spans of the trace identified by the hex ID (as
// printed in summaries), sorted by start time. Nil-safe.
func (ts *TraceStore) Trace(hexID string) ([]SpanData, bool) {
	if ts == nil {
		return nil, false
	}
	id, err := strconv.ParseUint(strings.TrimSpace(hexID), 16, 64)
	if err != nil {
		return nil, false
	}
	ts.mu.Lock()
	rec := ts.traces[id]
	var spans []SpanData
	if rec != nil {
		spans = append([]SpanData(nil), rec.spans...)
	}
	ts.mu.Unlock()
	if rec == nil {
		return nil, false
	}
	sort.Slice(spans, func(i, j int) bool { return spans[i].Start.Before(spans[j].Start) })
	return spans, true
}

// Len returns how many traces the store currently holds. Nil-safe.
func (ts *TraceStore) Len() int {
	if ts == nil {
		return 0
	}
	ts.mu.Lock()
	defer ts.mu.Unlock()
	return len(ts.traces)
}

// FormatID renders a trace/span ID the way the HTTP views expect it.
func FormatID(id uint64) string { return fmt.Sprintf("%016x", id) }

// FormatTrace renders spans (one trace, as returned by Trace) as an
// indented tree with durations, annotations and errors — the curl-able
// plain-text trace view.
func FormatTrace(spans []SpanData) string {
	if len(spans) == 0 {
		return "(empty trace)\n"
	}
	children := make(map[uint64][]SpanData)
	byID := make(map[uint64]bool, len(spans))
	for _, sp := range spans {
		byID[sp.SpanID] = true
	}
	var roots []SpanData
	for _, sp := range spans {
		if sp.ParentID != 0 && byID[sp.ParentID] {
			children[sp.ParentID] = append(children[sp.ParentID], sp)
		} else {
			roots = append(roots, sp)
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "trace %s (%d spans)\n", FormatID(spans[0].TraceID), len(spans))
	var walk func(sp SpanData, depth int)
	walk = func(sp SpanData, depth int) {
		indent := strings.Repeat("  ", depth)
		fmt.Fprintf(&b, "%s- %-28s %10s", indent, sp.Name, sp.Duration.Round(time.Microsecond))
		for _, a := range sp.Attrs {
			fmt.Fprintf(&b, " %s=%s", a.Key, a.Value)
		}
		if sp.Error != "" {
			fmt.Fprintf(&b, " ERROR=%q", sp.Error)
		}
		b.WriteByte('\n')
		for _, ev := range sp.Events {
			fmt.Fprintf(&b, "%s    @%s %s\n", indent,
				ev.At.Sub(sp.Start).Round(time.Microsecond), ev.Msg)
		}
		kids := children[sp.SpanID]
		sort.Slice(kids, func(i, j int) bool { return kids[i].Start.Before(kids[j].Start) })
		for _, kid := range kids {
			walk(kid, depth+1)
		}
	}
	sort.Slice(roots, func(i, j int) bool { return roots[i].Start.Before(roots[j].Start) })
	for _, root := range roots {
		walk(root, 0)
	}
	return b.String()
}
