package obs

import (
	"sort"
	"strings"
	"sync"
	"time"
)

// DefaultMaxNodes bounds the number of distinct nodes an Aggregator
// tracks; reports from nodes beyond the cap are counted and dropped so
// a hostile node-id stream cannot grow the fleet view without bound.
const DefaultMaxNodes = 4096

// nodeState is one reporting node's most recent metric state.
type nodeState struct {
	node   string
	tenant string
	seq    int64
	// samples maps name+"\xfe"+labelKey to the last shipped sample.
	// Values are cumulative, so merging a newer report is plain
	// last-write-wins per series.
	samples map[string]Sample
}

// Aggregator merges metric reports from many nodes into one fleet
// view. The host's remote layer feeds it decoded MetricsReport frames
// (each already converted to []Sample); internal/httpd serves it at
// /obs/fleet. Reports carry cumulative values with a per-connection
// sequence number: stale reorderings are dropped, full reports replace
// the node's state wholesale (reconnects reset the sequence), delta
// reports overwrite only the series they carry. Nil-safe.
type Aggregator struct {
	maxNodes int

	mu      sync.RWMutex
	nodes   map[string]*nodeState
	dropped int64 // reports rejected (node cap or stale seq)
}

// NewAggregator creates an empty fleet aggregator.
func NewAggregator() *Aggregator {
	return &Aggregator{
		maxNodes: DefaultMaxNodes,
		nodes:    make(map[string]*nodeState),
	}
}

// Ingest merges one node's report. full replaces the node's entire
// sample state and resets its sequence tracking (a reconnected node
// restarts at a low seq); delta reports must carry a seq newer than
// the last applied one or they are dropped as stale reorderings.
// Returns false when the report was dropped.
func (a *Aggregator) Ingest(node, tenant string, seq int64, full bool, samples []Sample) bool {
	if a == nil || node == "" {
		return false
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	st := a.nodes[node]
	if st == nil {
		if len(a.nodes) >= a.maxNodes {
			a.dropped++
			return false
		}
		st = &nodeState{node: node, samples: make(map[string]Sample)}
		a.nodes[node] = st
	}
	if full {
		// Epoch reset: replace wholesale and accept the new sequence.
		st.samples = make(map[string]Sample, len(samples))
		st.seq = seq
	} else {
		if seq <= st.seq {
			a.dropped++
			return false
		}
		st.seq = seq
	}
	st.tenant = tenant
	for _, s := range samples {
		st.samples[s.Name+"\xfe"+sampleLabelKey(&s)] = s
	}
	return true
}

// sampleLabelKey flattens a sample's label map into a stable key.
func sampleLabelKey(s *Sample) string {
	if len(s.Labels) == 0 {
		return ""
	}
	keys := make([]string, 0, len(s.Labels))
	for k := range s.Labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for _, k := range keys {
		b.WriteString(k)
		b.WriteByte('\xff')
		b.WriteString(s.Labels[k])
		b.WriteByte('\xff')
	}
	return b.String()
}

// IngestRegistry folds a local registry's snapshot in as a node — the
// host includes its own metrics in the fleet view this way.
func (a *Aggregator) IngestRegistry(node, tenant string, r *Registry) {
	if a == nil || r == nil {
		return
	}
	a.mu.RLock()
	var seq int64
	if st := a.nodes[node]; st != nil {
		seq = st.seq
	}
	a.mu.RUnlock()
	a.Ingest(node, tenant, seq+1, true, r.Snapshot())
}

// NodeInfo summarizes one reporting node in the fleet view.
type NodeInfo struct {
	Node   string `json:"node"`
	Tenant string `json:"tenant,omitempty"`
	Seq    int64  `json:"seq"`
	Series int    `json:"series"`
}

// Nodes lists the reporting nodes, sorted by name. Nil-safe.
func (a *Aggregator) Nodes() []NodeInfo {
	if a == nil {
		return nil
	}
	a.mu.RLock()
	defer a.mu.RUnlock()
	out := make([]NodeInfo, 0, len(a.nodes))
	for _, st := range a.nodes {
		out = append(out, NodeInfo{
			Node: st.node, Tenant: st.tenant, Seq: st.seq, Series: len(st.samples),
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Node < out[j].Node })
	return out
}

// Dropped returns the number of reports rejected (node cap or stale
// sequence).
func (a *Aggregator) Dropped() int64 {
	if a == nil {
		return 0
	}
	a.mu.RLock()
	defer a.mu.RUnlock()
	return a.dropped
}

// Snapshot returns every node's series with "node" (and, when set,
// "tenant") labels folded in, sorted like Registry.Snapshot — the
// fleet-wide scrape. Nil-safe.
func (a *Aggregator) Snapshot() []Sample {
	if a == nil {
		return nil
	}
	a.mu.RLock()
	var out []Sample
	for _, st := range a.nodes {
		for _, s := range st.samples {
			labels := make(map[string]string, len(s.Labels)+2)
			for k, v := range s.Labels {
				labels[k] = v
			}
			labels["node"] = st.node
			if st.tenant != "" {
				labels["tenant"] = st.tenant
			}
			s.Labels = labels
			out = append(out, s)
		}
	}
	a.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Name != out[j].Name {
			return out[i].Name < out[j].Name
		}
		return sampleLabelKey(&out[i]) < sampleLabelKey(&out[j])
	})
	return out
}

// Total sums a counter/gauge family across every node and series — the
// fleet-wide count the conservation invariant checks. Nil-safe.
func (a *Aggregator) Total(name string) int64 {
	if a == nil {
		return 0
	}
	a.mu.RLock()
	defer a.mu.RUnlock()
	var total int64
	for _, st := range a.nodes {
		for _, s := range st.samples {
			if s.Name == name {
				total += s.Value
			}
		}
	}
	return total
}

// Count sums a histogram family's cumulative observation count across
// every node and series. Nil-safe.
func (a *Aggregator) Count(name string) int64 {
	if a == nil {
		return 0
	}
	a.mu.RLock()
	defer a.mu.RUnlock()
	var total int64
	for _, st := range a.nodes {
		for _, s := range st.samples {
			if s.Name == name && s.Hist != nil {
				total += s.Hist.Count
			}
		}
	}
	return total
}

// NodeTotal sums a counter/gauge family across one node's series.
func (a *Aggregator) NodeTotal(node, name string) int64 {
	if a == nil {
		return 0
	}
	a.mu.RLock()
	defer a.mu.RUnlock()
	st := a.nodes[node]
	if st == nil {
		return 0
	}
	var total int64
	for _, s := range st.samples {
		if s.Name == name {
			total += s.Value
		}
	}
	return total
}

// WindowQuantile estimates the q-quantile of a histogram family over
// the merged sliding windows of every node — the live fleet-wide p50 or
// p99 as of the nodes' most recent reports. Falls back to the
// cumulative histograms when no report carried a window (e.g. all
// windows were empty at ship time). Nil-safe.
func (a *Aggregator) WindowQuantile(name string, q float64) time.Duration {
	if a == nil {
		return 0
	}
	a.mu.RLock()
	merged := a.mergedHistogram(name, true)
	if merged == nil {
		merged = a.mergedHistogram(name, false)
	}
	a.mu.RUnlock()
	return merged.Quantile(q)
}

// Quantile estimates the q-quantile of a histogram family over the
// merged cumulative (all-time) histograms of every node. Nil-safe.
func (a *Aggregator) Quantile(name string, q float64) time.Duration {
	if a == nil {
		return 0
	}
	a.mu.RLock()
	merged := a.mergedHistogram(name, false)
	a.mu.RUnlock()
	return merged.Quantile(q)
}

// mergedHistogram folds one histogram family across all nodes and
// series into a single snapshot (window or cumulative view). Caller
// holds at least a read lock. Returns nil when no series matched.
func (a *Aggregator) mergedHistogram(name string, window bool) *HistogramSnapshot {
	var out *HistogramSnapshot
	for _, st := range a.nodes {
		for _, s := range st.samples {
			if s.Name != name {
				continue
			}
			h := s.Hist
			if window {
				h = s.Win
			}
			if h == nil || h.Count == 0 {
				continue
			}
			if out == nil {
				out = &HistogramSnapshot{Buckets: make([]Bucket, len(h.Buckets))}
				for i, b := range h.Buckets {
					out.Buckets[i].UpperBound = b.UpperBound
				}
			}
			if len(h.Buckets) != len(out.Buckets) {
				continue // mismatched bucket layout: skip rather than misfold
			}
			out.Count += h.Count
			out.Sum += h.Sum
			for i, b := range h.Buckets {
				out.Buckets[i].Count += b.Count
			}
		}
	}
	return out
}
