// Package infoscreen is the fan-out counterpart of sensorstream: a
// host publishes a board of keyed "cards" (departures, room bookings,
// tickers) to every attached phone through a remote.Broadcaster. Each
// card update is encoded once no matter how many viewers are attached,
// and a viewer on a slow link coalesces to the latest revision per key
// instead of falling behind — exactly the semantics a public info
// screen wants: freshest state, never a backlog of stale updates.
package infoscreen

import (
	"encoding/binary"
	"fmt"
	"sync"

	"github.com/alfredo-mw/alfredo/internal/core"
	"github.com/alfredo-mw/alfredo/internal/remote"
	"github.com/alfredo-mw/alfredo/internal/ui"
)

// Interface and stream names.
const (
	// InterfaceName is the service interface under which the screen
	// registers.
	InterfaceName = "alfredo.apps.InfoScreen"
	// BroadcastName names the card broadcaster (and so the stream each
	// viewer receives).
	BroadcastName = "alfredo/infoscreen/cards"
)

// Card is one keyed slot on the board.
type Card struct {
	// Key identifies the slot; updates to the same key supersede each
	// other and may coalesce on slow links.
	Key string
	// Revision increases with every update to the key.
	Revision int64
	// Title and Body are the rendered content.
	Title string
	Body  string
}

// Encode appends the card's binary form to dst: revision, then the
// three strings length-prefixed.
func (c Card) Encode(dst []byte) []byte {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], uint64(c.Revision))
	dst = append(dst, b[:]...)
	for _, s := range []string{c.Key, c.Title, c.Body} {
		var l [4]byte
		binary.BigEndian.PutUint32(l[:], uint32(len(s)))
		dst = append(dst, l[:]...)
		dst = append(dst, s...)
	}
	return dst
}

// DecodeCard parses one encoded card.
func DecodeCard(p []byte) (Card, error) {
	if len(p) < 8 {
		return Card{}, fmt.Errorf("infoscreen: card truncated at revision")
	}
	c := Card{Revision: int64(binary.BigEndian.Uint64(p[:8]))}
	p = p[8:]
	for i, dst := range []*string{&c.Key, &c.Title, &c.Body} {
		if len(p) < 4 {
			return Card{}, fmt.Errorf("infoscreen: card truncated at field %d length", i)
		}
		n := int(binary.BigEndian.Uint32(p[:4]))
		p = p[4:]
		if len(p) < n {
			return Card{}, fmt.Errorf("infoscreen: card truncated at field %d body", i)
		}
		*dst = string(p[:n])
		p = p[n:]
	}
	if len(p) != 0 {
		return Card{}, fmt.Errorf("infoscreen: %d trailing bytes after card", len(p))
	}
	return c, nil
}

// Screen is the host-side publisher: the current board plus the
// broadcaster that fans updates out to attached viewers.
type Screen struct {
	b *remote.Broadcaster

	mu    sync.Mutex
	cards map[string]Card
}

// NewScreen creates an empty board. cfg tunes the broadcaster (zero
// value is fine: reliable class, default per-viewer queue).
func NewScreen(cfg remote.BroadcasterConfig) *Screen {
	return &Screen{
		b:     remote.NewBroadcaster(BroadcastName, cfg),
		cards: make(map[string]Card),
	}
}

// Update sets a card and publishes the new revision to every attached
// viewer. Encode happens once here regardless of viewer count.
func (s *Screen) Update(key, title, body string) Card {
	s.mu.Lock()
	c := Card{Key: key, Revision: s.cards[key].Revision + 1, Title: title, Body: body}
	s.cards[key] = c
	s.mu.Unlock()
	s.b.Publish(key, c.Encode(nil))
	return c
}

// Attach subscribes the phone behind ch to the board and replays the
// current cards so the new viewer starts complete. The replay goes
// through the broadcaster (keyed, so established viewers coalesce the
// duplicate revisions away rather than re-rendering them).
func (s *Screen) Attach(ch *remote.Channel) (*remote.Subscription, error) {
	sub, err := s.b.Subscribe(ch, nil)
	if err != nil {
		return nil, fmt.Errorf("infoscreen: attach viewer: %w", err)
	}
	s.mu.Lock()
	replay := make([]Card, 0, len(s.cards))
	for _, c := range s.cards {
		replay = append(replay, c)
	}
	s.mu.Unlock()
	for _, c := range replay {
		s.b.Publish(c.Key, c.Encode(nil))
	}
	return sub, nil
}

// Viewers returns the number of attached viewers.
func (s *Screen) Viewers() int { return s.b.Subscribers() }

// Close detaches every viewer and shuts the broadcaster down.
func (s *Screen) Close() { s.b.Close() }

// App builds the registerable AlfredO application: board metadata
// methods plus a descriptor rendering the cards as an ordered list.
func (s *Screen) App() *core.App {
	table := remote.NewService(InterfaceName).
		Method("Keys", nil, "list", func(args []any) (any, error) {
			s.mu.Lock()
			defer s.mu.Unlock()
			keys := make([]any, 0, len(s.cards))
			for k := range s.cards {
				keys = append(keys, k)
			}
			return keys, nil
		}).
		Method("Viewers", nil, "int", func(args []any) (any, error) {
			return int64(s.Viewers()), nil
		})

	desc := &core.Descriptor{
		Service: InterfaceName,
		UI: &ui.Description{
			Title: "InfoScreen",
			Controls: []ui.Control{
				{ID: "board", Kind: ui.KindLabel, Text: "Cards", Importance: 10},
				{ID: "status", Kind: ui.KindLabel, Text: "Live", Importance: 3},
			},
			Relations: []ui.Relation{
				{Kind: ui.RelOrder, Members: []string{"board", "status"}},
			},
		},
		StartWorkMs: 9,
	}

	return &core.App{Descriptor: desc, Service: table}
}

// Viewer is the phone-side consumer: it keeps the latest revision per
// key, ignoring the stale or duplicate revisions a replay can produce.
type Viewer struct {
	mu      sync.Mutex
	cards   map[string]Card
	updates int64
	err     error
	done    chan struct{}
}

// NewViewer returns an empty viewer.
func NewViewer() *Viewer {
	return &Viewer{cards: make(map[string]Card), done: make(chan struct{})}
}

// Handle consumes one card stream; pass it to Channel.HandleStreams.
func (v *Viewer) Handle(r *remote.StreamReader) {
	defer close(v.done)
	for {
		chunk, err := r.Next()
		if err != nil {
			return
		}
		c, derr := DecodeCard(chunk)
		v.mu.Lock()
		if derr != nil {
			if v.err == nil {
				v.err = derr
			}
		} else if c.Revision > v.cards[c.Key].Revision {
			v.cards[c.Key] = c
			v.updates++
		}
		v.mu.Unlock()
	}
}

// Done is closed when the viewer's stream ends.
func (v *Viewer) Done() <-chan struct{} { return v.done }

// Card returns the current card for key.
func (v *Viewer) Card(key string) (Card, bool) {
	v.mu.Lock()
	defer v.mu.Unlock()
	c, ok := v.cards[key]
	return c, ok
}

// Updates returns how many fresh (revision-advancing) cards arrived.
func (v *Viewer) Updates() int64 {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.updates
}

// Err returns the first decode error, or nil.
func (v *Viewer) Err() error {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.err
}
