package infoscreen

import (
	"fmt"
	"testing"
	"time"

	"github.com/alfredo-mw/alfredo/internal/module"
	"github.com/alfredo-mw/alfredo/internal/netsim"
	"github.com/alfredo-mw/alfredo/internal/remote"
)

func TestCardRoundTrip(t *testing.T) {
	in := Card{Key: "gate-4", Revision: 7, Title: "Flight LX8", Body: "Boarding 14:20"}
	enc := in.Encode(nil)
	out, err := DecodeCard(enc)
	if err != nil {
		t.Fatal(err)
	}
	if out != in {
		t.Errorf("round trip: got %+v want %+v", out, in)
	}
	for cut := 1; cut < len(enc); cut += 5 {
		if _, err := DecodeCard(enc[:cut]); err == nil {
			t.Errorf("truncation at %d decoded", cut)
		}
	}
	if _, err := DecodeCard(append(enc, 'x')); err == nil {
		t.Error("trailing bytes decoded")
	}
	empty := Card{Key: "", Revision: 1}
	if out, err := DecodeCard(empty.Encode(nil)); err != nil || out != empty {
		t.Errorf("empty-field card: %+v, %v", out, err)
	}
}

// board builds a screen host with n attached viewers and returns the
// screen plus the viewers.
func board(t *testing.T, n int) (*Screen, []*Viewer) {
	t.Helper()
	hostFW := module.NewFramework(module.Config{Name: "board-host"})
	t.Cleanup(func() { _ = hostFW.Shutdown() })
	host, err := remote.NewPeer(remote.Config{Framework: hostFW, Timeout: 5 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(host.Close)
	fabric := netsim.NewFabric()
	l, err := fabric.Listen("board-host")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = l.Close() })
	go func() { _ = host.Serve(l) }()

	viewers := make([]*Viewer, n)
	for i := range viewers {
		viewers[i] = NewViewer()
		fw := module.NewFramework(module.Config{Name: fmt.Sprintf("viewer-%d", i)})
		t.Cleanup(func() { _ = fw.Shutdown() })
		peer, err := remote.NewPeer(remote.Config{Framework: fw, Timeout: 5 * time.Second})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(peer.Close)
		conn, err := fabric.Dial("board-host", netsim.Gigabit)
		if err != nil {
			t.Fatal(err)
		}
		ch, err := peer.Connect(conn)
		if err != nil {
			t.Fatal(err)
		}
		ch.HandleStreams(viewers[i].Handle)
	}
	deadline := time.Now().Add(5 * time.Second)
	for len(host.Channels()) < n {
		if time.Now().After(deadline) {
			t.Fatalf("only %d/%d host channels up", len(host.Channels()), n)
		}
		time.Sleep(time.Millisecond)
	}

	screen := NewScreen(remote.BroadcasterConfig{})
	t.Cleanup(screen.Close)
	for _, ch := range host.Channels() {
		if _, err := screen.Attach(ch); err != nil {
			t.Fatal(err)
		}
	}
	return screen, viewers
}

func waitCard(t *testing.T, v *Viewer, key string, rev int64) Card {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if c, ok := v.Card(key); ok && c.Revision >= rev {
			return c
		}
		if time.Now().After(deadline) {
			c, _ := v.Card(key)
			t.Fatalf("viewer never saw %s rev %d (have %+v)", key, rev, c)
		}
		time.Sleep(time.Millisecond)
	}
}

func TestBoardFansOutToAllViewers(t *testing.T) {
	screen, viewers := board(t, 3)
	if screen.Viewers() != 3 {
		t.Fatalf("Viewers = %d", screen.Viewers())
	}

	screen.Update("gate-4", "Flight LX8", "Boarding 14:20")
	screen.Update("gate-7", "Flight BA2", "Delayed")
	c := screen.Update("gate-4", "Flight LX8", "Final call")

	for i, v := range viewers {
		got := waitCard(t, v, "gate-4", c.Revision)
		if got.Body != "Final call" {
			t.Errorf("viewer %d gate-4 = %+v", i, got)
		}
		waitCard(t, v, "gate-7", 1)
		if err := v.Err(); err != nil {
			t.Errorf("viewer %d: %v", i, err)
		}
	}
}

func TestReplayConvergesLateViewer(t *testing.T) {
	// Build the host with two channels but attach only the first; the
	// second attaches after updates and must converge via replay.
	hostFW := module.NewFramework(module.Config{Name: "replay-host"})
	t.Cleanup(func() { _ = hostFW.Shutdown() })
	host, err := remote.NewPeer(remote.Config{Framework: hostFW, Timeout: 5 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(host.Close)
	fabric := netsim.NewFabric()
	l, err := fabric.Listen("replay-host")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = l.Close() })
	go func() { _ = host.Serve(l) }()

	viewers := make([]*Viewer, 2)
	for i := range viewers {
		viewers[i] = NewViewer()
		fw := module.NewFramework(module.Config{Name: fmt.Sprintf("replay-viewer-%d", i)})
		t.Cleanup(func() { _ = fw.Shutdown() })
		peer, err := remote.NewPeer(remote.Config{Framework: fw, Timeout: 5 * time.Second})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(peer.Close)
		conn, err := fabric.Dial("replay-host", netsim.Gigabit)
		if err != nil {
			t.Fatal(err)
		}
		ch, err := peer.Connect(conn)
		if err != nil {
			t.Fatal(err)
		}
		ch.HandleStreams(viewers[i].Handle)
	}
	deadline := time.Now().Add(5 * time.Second)
	for len(host.Channels()) < 2 {
		if time.Now().After(deadline) {
			t.Fatal("host channels never came up")
		}
		time.Sleep(time.Millisecond)
	}

	screen := NewScreen(remote.BroadcasterConfig{})
	t.Cleanup(screen.Close)
	if _, err := screen.Attach(host.Channels()[0]); err != nil {
		t.Fatal(err)
	}
	screen.Update("gate-4", "Flight LX8", "Boarding")
	screen.Update("gate-7", "Flight BA2", "On time")
	waitCard(t, viewers[0], "gate-7", 1)

	if _, err := screen.Attach(host.Channels()[1]); err != nil {
		t.Fatal(err)
	}
	waitCard(t, viewers[1], "gate-4", 1)
	waitCard(t, viewers[1], "gate-7", 1)
	// The established viewer must not have re-counted the replayed
	// revisions as fresh updates.
	if got := viewers[0].Updates(); got != 2 {
		t.Errorf("established viewer counted %d updates, want 2", got)
	}
}

func TestAppShape(t *testing.T) {
	screen := NewScreen(remote.BroadcasterConfig{})
	t.Cleanup(screen.Close)
	screen.Update("gate-4", "LX8", "Boarding")
	app := screen.App()
	if app.Descriptor.Service != InterfaceName {
		t.Errorf("descriptor service = %q", app.Descriptor.Service)
	}
	keys, err := app.Service.Invoke("Keys", nil)
	if err != nil {
		t.Fatal(err)
	}
	if ks, ok := keys.([]any); !ok || len(ks) != 1 || ks[0] != "gate-4" {
		t.Errorf("Keys = %v", keys)
	}
	if n, _ := app.Service.Invoke("Viewers", nil); n != int64(0) {
		t.Errorf("Viewers = %v", n)
	}
}
