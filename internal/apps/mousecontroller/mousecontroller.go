// Package mousecontroller implements the MouseController prototype of
// paper §5.1: a service that lets a phone control the mouse pointer of
// a notebook. The notebook side maintains a simulated desktop (cursor,
// windows) and periodically publishes screen snapshots as asynchronous
// events; the phone side is pure descriptor — an abstract pad control
// bound by controller rules to the PointerService, rendered with
// whatever pointing hardware the phone has (cursor keys on a Nokia
// 9300i, the accelerometer on an iPhone).
package mousecontroller

import (
	"bytes"
	"fmt"
	"image"
	"image/color"
	"image/png"
	"sync"
	"time"

	"github.com/alfredo-mw/alfredo/internal/core"
	"github.com/alfredo-mw/alfredo/internal/device"
	"github.com/alfredo-mw/alfredo/internal/event"
	"github.com/alfredo-mw/alfredo/internal/remote"
	"github.com/alfredo-mw/alfredo/internal/script"
	"github.com/alfredo-mw/alfredo/internal/ui"
)

// Interface and topic names.
const (
	// InterfaceName is the main service interface.
	InterfaceName = "alfredo.apps.MouseController"
	// SnapshotTopic carries screen snapshot events (§5.1: "the
	// application uses asynchronous events between the service and the
	// phone").
	SnapshotTopic = "alfredo/mouse/snapshot"
)

// Snapshot geometry: 320x208 RGB = ~200 kB, the client-side memory the
// paper reports for MouseController ("the RGB bitmap image that the
// application periodically receives ... and that is stored in the
// local memory", §4.1).
const (
	SnapshotWidth  = 320
	SnapshotHeight = 208
	snapshotBytes  = SnapshotWidth * SnapshotHeight * 3
)

// Window is one window on the simulated desktop.
type Window struct {
	Title     string
	X, Y      int
	W, H      int
	Minimized bool
}

// Desktop is the notebook's simulated screen state.
type Desktop struct {
	mu      sync.Mutex
	width   int
	height  int
	cursorX int
	cursorY int
	windows []Window
	clicks  int64
}

// NewDesktop creates a desktop with a browser-like window open (the
// paper's Figure 7 scenario).
func NewDesktop(width, height int) *Desktop {
	return &Desktop{
		width:   width,
		height:  height,
		cursorX: width / 2,
		cursorY: height / 2,
		windows: []Window{
			{Title: "Browser", X: 40, Y: 30, W: width - 120, H: height - 100},
			{Title: "Terminal", X: 80, Y: 60, W: 300, H: 200},
		},
	}
}

// MoveBy displaces the cursor, clamped to the screen.
func (d *Desktop) MoveBy(dx, dy int) (int, int) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.cursorX = clamp(d.cursorX+dx, 0, d.width-1)
	d.cursorY = clamp(d.cursorY+dy, 0, d.height-1)
	return d.cursorX, d.cursorY
}

// Position returns the cursor position.
func (d *Desktop) Position() (int, int) {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.cursorX, d.cursorY
}

// Click presses the primary button at the cursor: a click on a window
// title bar toggles minimization (the user in Figure 7 "is minimizing
// the window opened on the notebook's screen").
func (d *Desktop) Click() string {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.clicks++
	for i := range d.windows {
		w := &d.windows[i]
		if !w.Minimized && d.cursorY >= w.Y && d.cursorY < w.Y+16 &&
			d.cursorX >= w.X && d.cursorX < w.X+w.W {
			w.Minimized = true
			return "minimized " + w.Title
		}
	}
	// Clicking a minimized window's spot on the task bar restores it.
	if d.cursorY >= d.height-16 {
		for i := range d.windows {
			if d.windows[i].Minimized {
				d.windows[i].Minimized = false
				return "restored " + d.windows[i].Title
			}
		}
	}
	return "click"
}

// Clicks returns the total click count.
func (d *Desktop) Clicks() int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.clicks
}

// Windows returns a copy of the window list.
func (d *Desktop) Windows() []Window {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make([]Window, len(d.windows))
	copy(out, d.windows)
	return out
}

// Snapshot renders the desktop to an RGB frame buffer. The rendering is
// cheap and deterministic: background, window rectangles, cursor dot.
func (d *Desktop) Snapshot() []byte {
	d.mu.Lock()
	defer d.mu.Unlock()
	frame := make([]byte, snapshotBytes)
	// Background: dim blue.
	for i := 0; i < len(frame); i += 3 {
		frame[i+2] = 64
	}
	scaleX := float64(SnapshotWidth) / float64(d.width)
	scaleY := float64(SnapshotHeight) / float64(d.height)
	for _, w := range d.windows {
		if w.Minimized {
			continue
		}
		x0, y0 := int(float64(w.X)*scaleX), int(float64(w.Y)*scaleY)
		x1, y1 := int(float64(w.X+w.W)*scaleX), int(float64(w.Y+w.H)*scaleY)
		for y := clamp(y0, 0, SnapshotHeight-1); y < clamp(y1, 0, SnapshotHeight); y++ {
			for x := clamp(x0, 0, SnapshotWidth-1); x < clamp(x1, 0, SnapshotWidth); x++ {
				o := (y*SnapshotWidth + x) * 3
				frame[o], frame[o+1], frame[o+2] = 200, 200, 200
			}
		}
	}
	cx := clamp(int(float64(d.cursorX)*scaleX), 0, SnapshotWidth-1)
	cy := clamp(int(float64(d.cursorY)*scaleY), 0, SnapshotHeight-1)
	o := (cy*SnapshotWidth + cx) * 3
	frame[o], frame[o+1], frame[o+2] = 255, 0, 0
	return frame
}

// SnapshotPNG renders the desktop to a PNG image — the compact form
// used by browser-rendered clients (the html engine emits it as a data
// URI). The raw RGB Snapshot remains the event payload, matching the
// paper's ~200 kB client-memory figure.
func (d *Desktop) SnapshotPNG() ([]byte, error) {
	frame := d.Snapshot()
	img := image.NewRGBA(image.Rect(0, 0, SnapshotWidth, SnapshotHeight))
	for y := 0; y < SnapshotHeight; y++ {
		for x := 0; x < SnapshotWidth; x++ {
			o := (y*SnapshotWidth + x) * 3
			img.SetRGBA(x, y, color.RGBA{R: frame[o], G: frame[o+1], B: frame[o+2], A: 255})
		}
	}
	var buf bytes.Buffer
	if err := png.Encode(&buf, img); err != nil {
		return nil, fmt.Errorf("mousecontroller: encoding snapshot: %w", err)
	}
	return buf.Bytes(), nil
}

func clamp(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// Service is the provider-side MouseController application.
type Service struct {
	desktop *Desktop

	mu   sync.Mutex
	stop chan struct{}
	wg   sync.WaitGroup
}

// New creates the application around a simulated desktop of the given
// pixel geometry.
func New(screenWidth, screenHeight int) *Service {
	return &Service{desktop: NewDesktop(screenWidth, screenHeight)}
}

// Desktop exposes the simulated desktop (tests, examples).
func (s *Service) Desktop() *Desktop { return s.desktop }

// App builds the registerable AlfredO application: method table plus
// descriptor.
func (s *Service) App() *core.App {
	table := remote.NewService(InterfaceName).
		Method("MoveBy", []string{"int", "int"}, "list", func(args []any) (any, error) {
			x, y := s.desktop.MoveBy(int(args[0].(int64)), int(args[1].(int64)))
			return []any{int64(x), int64(y)}, nil
		}).
		Method("Click", nil, "string", func(args []any) (any, error) {
			return s.desktop.Click(), nil
		}).
		Method("Position", nil, "list", func(args []any) (any, error) {
			x, y := s.desktop.Position()
			return []any{int64(x), int64(y)}, nil
		})

	desc := &core.Descriptor{
		Service: InterfaceName,
		UI: &ui.Description{
			Title: "MouseController",
			Controls: []ui.Control{
				{ID: "screen", Kind: ui.KindImage, Text: "Remote screen", Importance: 10},
				{ID: "cursor", Kind: ui.KindPad, Text: "Move", Importance: 9,
					Requires: []string{string(device.PointingDevice)}},
				{ID: "status", Kind: ui.KindLabel, Text: "Connected", Importance: 3},
			},
			Relations: []ui.Relation{
				{Kind: ui.RelOrder, Members: []string{"screen", "cursor", "status"}},
			},
			Requires: []string{string(device.PointingDevice)},
		},
		Controller: &script.Program{
			Init: map[string]string{"moves": "0"},
			Rules: []script.Rule{
				{
					Name: "move",
					On:   script.Trigger{UI: &script.UITrigger{Control: "cursor", Kind: ui.EventMove}},
					Do: []script.Action{
						{Invoke: &script.InvokeAction{Method: "MoveBy",
							Args: []string{"event.value[0] * 8", "event.value[1] * 8"}}},
						{SetVar: &script.SetVarAction{Name: "moves", Value: "moves + 1"}},
						{SetControl: &script.SetControlAction{Control: "status", Property: "value",
							Value: "'cursor at ' + result[0] + ',' + result[1]"}},
					},
				},
				{
					Name: "click",
					On:   script.Trigger{UI: &script.UITrigger{Control: "cursor", Kind: ui.EventPress}},
					Do: []script.Action{
						{Invoke: &script.InvokeAction{Method: "Click"}},
						{SetControl: &script.SetControlAction{Control: "status", Property: "value", Value: "result"}},
					},
				},
				{
					Name: "snapshot",
					On:   script.Trigger{Event: &script.EventTrigger{Topic: SnapshotTopic}},
					Do: []script.Action{
						{SetControl: &script.SetControlAction{Control: "screen", Property: "image",
							Value: "event.props.frame"}},
					},
				},
			},
		},
		// Calibrated so the proxy start lands at ~1000 ms on the Nokia
		// 9300i (Table 1): event subscription setup plus the
		// framebuffer allocation.
		StartWorkMs: 46,
	}

	return &core.App{Descriptor: desc, Service: table}
}

// StartSnapshots begins publishing screen snapshots on the event admin
// every interval. Stop with StopSnapshots. Snapshots are forwarded to
// phones only while they subscribe to SnapshotTopic, and the remote
// layer drops frames when the consumer falls behind — together the
// paper's "sends updates whenever there is enough bandwidth".
func (s *Service) StartSnapshots(admin *event.Admin, interval time.Duration) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.stop != nil {
		return fmt.Errorf("mousecontroller: snapshots already running")
	}
	s.stop = make(chan struct{})
	stop := s.stop
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		ticker := time.NewTicker(interval)
		defer ticker.Stop()
		seq := int64(0)
		for {
			select {
			case <-stop:
				return
			case <-ticker.C:
				seq++
				_ = admin.Post(event.Event{
					Topic: SnapshotTopic,
					Properties: map[string]any{
						"frame": s.desktop.Snapshot(),
						"seq":   seq,
					},
				})
			}
		}
	}()
	return nil
}

// StopSnapshots halts snapshot publication.
func (s *Service) StopSnapshots() {
	s.mu.Lock()
	stop := s.stop
	s.stop = nil
	s.mu.Unlock()
	if stop != nil {
		close(stop)
	}
	s.wg.Wait()
}
