package mousecontroller

import (
	"strings"
	"testing"
	"time"

	"github.com/alfredo-mw/alfredo/internal/core"
	"github.com/alfredo-mw/alfredo/internal/device"
	"github.com/alfredo-mw/alfredo/internal/event"
	"github.com/alfredo-mw/alfredo/internal/netsim"
	"github.com/alfredo-mw/alfredo/internal/ui"
)

func TestDesktopMechanics(t *testing.T) {
	d := NewDesktop(800, 600)
	x, y := d.Position()
	if x != 400 || y != 300 {
		t.Errorf("initial position = %d,%d", x, y)
	}
	x, y = d.MoveBy(100, -50)
	if x != 500 || y != 250 {
		t.Errorf("after move = %d,%d", x, y)
	}
	// Clamping at the edges.
	x, y = d.MoveBy(10000, 10000)
	if x != 799 || y != 599 {
		t.Errorf("clamped = %d,%d", x, y)
	}
	x, y = d.MoveBy(-10000, -10000)
	if x != 0 || y != 0 {
		t.Errorf("clamped low = %d,%d", x, y)
	}
}

func TestClickMinimizesWindow(t *testing.T) {
	d := NewDesktop(800, 600)
	// Move onto the Browser title bar (window at 40,30).
	d.MoveBy(-400+50, -300+35)
	msg := d.Click()
	if !strings.Contains(msg, "minimized Browser") {
		t.Errorf("click = %q", msg)
	}
	ws := d.Windows()
	if !ws[0].Minimized {
		t.Error("Browser not minimized")
	}
	// Click the task bar to restore.
	d.MoveBy(0, 10000)
	msg = d.Click()
	if !strings.Contains(msg, "restored") {
		t.Errorf("restore click = %q", msg)
	}
	if d.Clicks() != 2 {
		t.Errorf("clicks = %d", d.Clicks())
	}
}

func TestSnapshotGeometry(t *testing.T) {
	d := NewDesktop(800, 600)
	frame := d.Snapshot()
	if len(frame) != SnapshotWidth*SnapshotHeight*3 {
		t.Fatalf("frame size = %d", len(frame))
	}
	// ~200 kB, the client memory figure of §4.1.
	if len(frame) < 190_000 || len(frame) > 210_000 {
		t.Errorf("frame size %d not ~200kB", len(frame))
	}
	// The cursor pixel is red.
	x, y := d.Position()
	cx := x * SnapshotWidth / 800
	cy := y * SnapshotHeight / 600
	o := (cy*SnapshotWidth + cx) * 3
	if frame[o] != 255 {
		t.Errorf("cursor pixel = %v", frame[o:o+3])
	}
}

func TestSnapshotPublishing(t *testing.T) {
	svc := New(800, 600)
	admin := event.NewAdmin(0)
	defer admin.Close()

	frames := make(chan int, 16)
	_, _ = admin.Subscribe(SnapshotTopic, nil, func(ev event.Event) {
		frame, _ := ev.Properties["frame"].([]byte)
		select {
		case frames <- len(frame):
		default:
		}
	})
	if err := svc.StartSnapshots(admin, 10*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if err := svc.StartSnapshots(admin, 10*time.Millisecond); err == nil {
		t.Error("double start accepted")
	}
	select {
	case n := <-frames:
		if n != SnapshotWidth*SnapshotHeight*3 {
			t.Errorf("frame bytes = %d", n)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("no snapshot published")
	}
	svc.StopSnapshots()
	svc.StopSnapshots() // idempotent
}

// TestEndToEndPhoneControlsDesktop drives the full paper scenario:
// phone acquires MouseController, pad events move the notebook cursor.
func TestEndToEndPhoneControlsDesktop(t *testing.T) {
	svc := New(800, 600)

	notebook, err := core.NewNode(core.NodeConfig{Name: "notebook", Profile: device.Notebook()})
	if err != nil {
		t.Fatal(err)
	}
	defer notebook.Close()
	if err := notebook.RegisterApp(svc.App()); err != nil {
		t.Fatal(err)
	}

	phone, err := core.NewNode(core.NodeConfig{Name: "nokia", Profile: device.Nokia9300i()})
	if err != nil {
		t.Fatal(err)
	}
	defer phone.Close()

	fabric := netsim.NewFabric()
	l, _ := fabric.Listen("notebook")
	defer l.Close()
	notebook.Serve(l)
	conn, err := fabric.Dial("notebook", netsim.Loopback)
	if err != nil {
		t.Fatal(err)
	}
	session, err := phone.Connect(conn)
	if err != nil {
		t.Fatal(err)
	}
	defer session.Close()

	app, err := session.Acquire(InterfaceName, core.AcquireOptions{})
	if err != nil {
		t.Fatalf("Acquire: %v", err)
	}

	// The Nokia renders the pad via its cursor keys (capability map).
	if impl := app.View.Report().Implementors[string(device.PointingDevice)]; impl != "CursorKeys" {
		t.Errorf("PointingDevice implementor = %q", impl)
	}

	x0, y0 := svc.Desktop().Position()
	// Simulate cursor-key presses: pad move right+down.
	if err := app.View.Inject(ui.Event{Control: "cursor", Kind: ui.EventMove,
		Value: []any{int64(1), int64(1)}}); err != nil {
		t.Fatal(err)
	}
	x1, y1 := svc.Desktop().Position()
	if x1 != x0+8 || y1 != y0+8 {
		t.Errorf("cursor moved to %d,%d from %d,%d (ctl err %v)",
			x1, y1, x0, y0, app.Controller.LastError())
	}
	// The status label reflects the new position.
	if v, _ := app.View.Property("status", "value"); v == nil {
		t.Error("status not updated")
	}
	// Click crosses the wire too.
	if err := app.View.Inject(ui.Event{Control: "cursor", Kind: ui.EventPress}); err != nil {
		t.Fatal(err)
	}
	if svc.Desktop().Clicks() != 1 {
		t.Errorf("clicks = %d", svc.Desktop().Clicks())
	}
}

// TestSnapshotReachesPhoneView checks the asynchronous event path of
// §5.1 end to end: published frames land in the phone's image control.
func TestSnapshotReachesPhoneView(t *testing.T) {
	svc := New(800, 600)
	notebook, err := core.NewNode(core.NodeConfig{Name: "notebook", Profile: device.Notebook()})
	if err != nil {
		t.Fatal(err)
	}
	defer notebook.Close()
	_ = notebook.RegisterApp(svc.App())

	phone, err := core.NewNode(core.NodeConfig{Name: "nokia", Profile: device.Nokia9300i()})
	if err != nil {
		t.Fatal(err)
	}
	defer phone.Close()

	fabric := netsim.NewFabric()
	l, _ := fabric.Listen("notebook")
	defer l.Close()
	notebook.Serve(l)
	conn, _ := fabric.Dial("notebook", netsim.Loopback)
	session, err := phone.Connect(conn)
	if err != nil {
		t.Fatal(err)
	}
	defer session.Close()

	app, err := session.Acquire(InterfaceName, core.AcquireOptions{})
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(30 * time.Millisecond) // subscription frame

	if err := svc.StartSnapshots(notebook.Events(), 20*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	defer svc.StopSnapshots()

	deadline := time.Now().Add(3 * time.Second)
	for {
		if img, ok := app.View.Property("screen", "image"); ok {
			if frame, isBytes := img.([]byte); isBytes && len(frame) == SnapshotWidth*SnapshotHeight*3 {
				return // success
			}
		}
		if time.Now().After(deadline) {
			img, _ := app.View.Property("screen", "image")
			t.Fatalf("snapshot never reached view; image = %T, ctl err = %v",
				img, app.Controller.LastError())
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestSnapshotPNG(t *testing.T) {
	d := NewDesktop(800, 600)
	data, err := d.SnapshotPNG()
	if err != nil {
		t.Fatal(err)
	}
	if len(data) < 100 {
		t.Fatalf("png size = %d", len(data))
	}
	// PNG magic + much smaller than the raw RGB frame.
	if data[0] != 0x89 || string(data[1:4]) != "PNG" {
		t.Errorf("not a PNG: % x", data[:8])
	}
	if len(data) >= SnapshotWidth*SnapshotHeight*3 {
		t.Errorf("png (%d) not smaller than raw frame", len(data))
	}
}
