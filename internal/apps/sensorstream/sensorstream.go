// Package sensorstream is a streaming prototype in the spirit of the
// paper's §5 applications: the host carries a high-rate sensor (a
// simulated accelerometer sampled at 120 Hz) and ships readings to the
// phone over the prioritized stream mux rather than per-sample
// invocations or events. A reliable credited stream gives the consumer
// back-pressure without loss; an unreliable stream keeps only the
// freshest window under §5.1's adaptive drop-oldest semantics. Either
// way the invoke path stays responsive: stream frames ride the bulk
// priority class below control and invocation traffic.
package sensorstream

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"sync"
	"time"

	"github.com/alfredo-mw/alfredo/internal/core"
	"github.com/alfredo-mw/alfredo/internal/remote"
	"github.com/alfredo-mw/alfredo/internal/sim/clock"
	"github.com/alfredo-mw/alfredo/internal/ui"
)

// Interface and stream names.
const (
	// InterfaceName is the service interface under which the sensor
	// registers.
	InterfaceName = "alfredo.apps.SensorStream"
	// StreamName is the stream the source opens toward the consumer.
	StreamName = "alfredo/sensor/feed"
	// SampleHz is the source's sampling rate.
	SampleHz = 120
)

// ReadingBytes is the fixed wire size of one encoded Reading.
const ReadingBytes = 8 + 8 + 3*8

// Reading is one accelerometer sample.
type Reading struct {
	// Seq numbers readings from 0; a reliable feed delivers them
	// gap-free and in order.
	Seq int64
	// At is the sample time as elapsed clock time since the source
	// started.
	At time.Duration
	// X, Y, Z are the simulated acceleration components.
	X, Y, Z float64
}

// Encode appends the reading's fixed binary form to dst.
func (r Reading) Encode(dst []byte) []byte {
	var b [ReadingBytes]byte
	binary.BigEndian.PutUint64(b[0:8], uint64(r.Seq))
	binary.BigEndian.PutUint64(b[8:16], uint64(r.At))
	binary.BigEndian.PutUint64(b[16:24], math.Float64bits(r.X))
	binary.BigEndian.PutUint64(b[24:32], math.Float64bits(r.Y))
	binary.BigEndian.PutUint64(b[32:40], math.Float64bits(r.Z))
	return append(dst, b[:]...)
}

// DecodeReading parses one encoded reading.
func DecodeReading(p []byte) (Reading, error) {
	if len(p) != ReadingBytes {
		return Reading{}, fmt.Errorf("sensorstream: reading is %d bytes, want %d", len(p), ReadingBytes)
	}
	return Reading{
		Seq: int64(binary.BigEndian.Uint64(p[0:8])),
		At:  time.Duration(binary.BigEndian.Uint64(p[8:16])),
		X:   math.Float64frombits(binary.BigEndian.Uint64(p[16:24])),
		Y:   math.Float64frombits(binary.BigEndian.Uint64(p[24:32])),
		Z:   math.Float64frombits(binary.BigEndian.Uint64(p[32:40])),
	}, nil
}

// sample computes the deterministic waveform at sample index i: a slow
// tilt plus a fast vibration, distinct per axis so decode mix-ups are
// caught by tests.
func sample(i int64) (x, y, z float64) {
	t := float64(i) / SampleHz
	x = math.Sin(2*math.Pi*0.5*t) + 0.05*math.Sin(2*math.Pi*17*t)
	y = math.Cos(2*math.Pi*0.5*t) + 0.05*math.Sin(2*math.Pi*23*t)
	z = 1 + 0.02*math.Sin(2*math.Pi*40*t)
	return
}

// Service is the host-side sensor application.
type Service struct {
	clk clock.Clock

	mu      sync.Mutex
	shipped int64
}

// New creates the sensor around the given clock (nil = wall clock; the
// sim harness passes its virtual clock so a 120 Hz feed costs no real
// time).
func New(clk clock.Clock) *Service {
	return &Service{clk: clock.Or(clk)}
}

// Shipped returns the total readings written to feeds so far.
func (s *Service) Shipped() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.shipped
}

// App builds the registerable AlfredO application: a small method
// table for feed metadata plus a descriptor that renders the live
// magnitude on whatever display the phone has.
func (s *Service) App() *core.App {
	table := remote.NewService(InterfaceName).
		Method("Rate", nil, "int", func(args []any) (any, error) {
			return int64(SampleHz), nil
		}).
		Method("Shipped", nil, "int", func(args []any) (any, error) {
			return s.Shipped(), nil
		})

	desc := &core.Descriptor{
		Service: InterfaceName,
		UI: &ui.Description{
			Title: "SensorStream",
			Controls: []ui.Control{
				{ID: "magnitude", Kind: ui.KindLabel, Text: "Acceleration", Importance: 10},
				{ID: "rate", Kind: ui.KindLabel, Text: "120 Hz", Importance: 4},
			},
			Relations: []ui.Relation{
				{Kind: ui.RelOrder, Members: []string{"magnitude", "rate"}},
			},
		},
		StartWorkMs: 12,
	}

	return &core.App{Descriptor: desc, Service: table}
}

// Stream opens the feed on ch with the given class and writes n
// readings paced at SampleHz on the service's clock, then closes the
// stream. It blocks until done; run it on its own goroutine for a
// live feed. Reliable feeds exercise credit back-pressure (a slow
// consumer stalls the ticker loop instead of losing samples);
// unreliable feeds drop oldest when the consumer lags.
func (s *Service) Stream(ch *remote.Channel, class remote.StreamClass, n int) error {
	w, err := ch.OpenStreamClass(StreamName, class, map[string]any{"rate": int64(SampleHz)})
	if err != nil {
		return fmt.Errorf("sensorstream: open feed: %w", err)
	}
	start := s.clk.Now()
	ticker := s.clk.NewTicker(time.Second / SampleHz)
	defer ticker.Stop()
	buf := make([]byte, 0, ReadingBytes)
	for i := int64(0); i < int64(n); i++ {
		<-ticker.C
		r := Reading{Seq: i, At: s.clk.Since(start)}
		r.X, r.Y, r.Z = sample(i)
		buf = r.Encode(buf[:0])
		if _, err := w.Write(buf); err != nil {
			_ = w.Abort("sensorstream: source failed")
			return fmt.Errorf("sensorstream: write reading %d: %w", i, err)
		}
		s.mu.Lock()
		s.shipped++
		s.mu.Unlock()
	}
	if err := w.Close(); err != nil {
		return fmt.Errorf("sensorstream: close feed: %w", err)
	}
	return nil
}

// Collector is the phone-side feed consumer: it decodes readings,
// verifies sequence order, and keeps the latest sample for the UI.
type Collector struct {
	mu       sync.Mutex
	latest   Reading
	received int64
	gaps     int64
	lastSeq  int64
	err      error
	done     chan struct{}
}

// NewCollector returns an empty collector.
func NewCollector() *Collector {
	return &Collector{lastSeq: -1, done: make(chan struct{})}
}

// Handle consumes one feed stream; pass it to Channel.HandleStreams
// (directly when the sensor feed is the only stream, or from a
// dispatching handler keyed on r.Name).
func (c *Collector) Handle(r *remote.StreamReader) {
	defer close(c.done)
	for {
		chunk, err := r.Next()
		if err != nil {
			c.mu.Lock()
			if err != io.EOF {
				c.err = err
			}
			c.mu.Unlock()
			return
		}
		rd, derr := DecodeReading(chunk)
		c.mu.Lock()
		if derr != nil {
			c.err = derr
		} else {
			if rd.Seq != c.lastSeq+1 {
				c.gaps++
			}
			c.lastSeq = rd.Seq
			c.latest = rd
			c.received++
		}
		c.mu.Unlock()
	}
}

// Done is closed when the feed ends (EOF, abort, or teardown).
func (c *Collector) Done() <-chan struct{} { return c.done }

// Latest returns the most recent reading and how many arrived.
func (c *Collector) Latest() (Reading, int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.latest, c.received
}

// Gaps returns how many sequence discontinuities were observed (always
// zero on a reliable feed; the drop count on an unreliable one is on
// the reader's Dropped counter).
func (c *Collector) Gaps() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.gaps
}

// Err returns the first non-EOF error the collector hit (decode
// failure, abort reason, channel teardown), or nil after a clean feed.
func (c *Collector) Err() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.err
}
