package sensorstream

import (
	"testing"
	"time"

	"github.com/alfredo-mw/alfredo/internal/module"
	"github.com/alfredo-mw/alfredo/internal/netsim"
	"github.com/alfredo-mw/alfredo/internal/remote"
)

func TestReadingRoundTrip(t *testing.T) {
	in := Reading{Seq: 42, At: 350 * time.Millisecond, X: -0.25, Y: 1.5, Z: 0.98}
	enc := in.Encode(nil)
	if len(enc) != ReadingBytes {
		t.Fatalf("encoded %d bytes, want %d", len(enc), ReadingBytes)
	}
	out, err := DecodeReading(enc)
	if err != nil {
		t.Fatal(err)
	}
	if out != in {
		t.Errorf("round trip: got %+v want %+v", out, in)
	}
	if _, err := DecodeReading(enc[:ReadingBytes-1]); err == nil {
		t.Error("truncated reading decoded")
	}
	if _, err := DecodeReading(append(enc, 0)); err == nil {
		t.Error("oversized reading decoded")
	}
}

func TestSampleWaveform(t *testing.T) {
	x0, y0, z0 := sample(17)
	x1, y1, z1 := sample(17)
	if x0 != x1 || y0 != y1 || z0 != z1 {
		t.Error("sample is not deterministic")
	}
	if x0 == y0 || y0 == z0 {
		t.Errorf("axes not distinct: %v %v %v", x0, y0, z0)
	}
}

func TestAppShape(t *testing.T) {
	svc := New(nil)
	app := svc.App()
	if app.Descriptor.Service != InterfaceName {
		t.Errorf("descriptor service = %q", app.Descriptor.Service)
	}
	rate, err := app.Service.Invoke("Rate", nil)
	if err != nil {
		t.Fatal(err)
	}
	if rate != int64(SampleHz) {
		t.Errorf("Rate = %v", rate)
	}
	if shipped, _ := app.Service.Invoke("Shipped", nil); shipped != int64(0) {
		t.Errorf("Shipped = %v before any feed", shipped)
	}
}

// feedPair is a connected host/phone peer pair; the returned channel
// is the host side (feeds flow host -> phone).
func feedPair(t *testing.T, collector *Collector) *remote.Channel {
	t.Helper()
	hostFW := module.NewFramework(module.Config{Name: "sensor-host"})
	t.Cleanup(func() { _ = hostFW.Shutdown() })
	host, err := remote.NewPeer(remote.Config{Framework: hostFW, Timeout: 5 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(host.Close)
	fabric := netsim.NewFabric()
	l, err := fabric.Listen("sensor-host")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = l.Close() })
	go func() { _ = host.Serve(l) }()

	phoneFW := module.NewFramework(module.Config{Name: "sensor-phone"})
	t.Cleanup(func() { _ = phoneFW.Shutdown() })
	phone, err := remote.NewPeer(remote.Config{Framework: phoneFW, Timeout: 5 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(phone.Close)
	conn, err := fabric.Dial("sensor-host", netsim.Gigabit)
	if err != nil {
		t.Fatal(err)
	}
	ch, err := phone.Connect(conn)
	if err != nil {
		t.Fatal(err)
	}
	ch.HandleStreams(collector.Handle)

	deadline := time.Now().Add(5 * time.Second)
	for len(host.Channels()) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("host channel never came up")
		}
		time.Sleep(time.Millisecond)
	}
	return host.Channels()[0]
}

func TestFeedEndToEnd(t *testing.T) {
	collector := NewCollector()
	hostCh := feedPair(t, collector)

	svc := New(nil)
	const n = 36 // 0.3s of feed at 120 Hz on the wall clock
	if err := svc.Stream(hostCh, remote.StreamReliable, n); err != nil {
		t.Fatal(err)
	}
	select {
	case <-collector.Done():
	case <-time.After(5 * time.Second):
		t.Fatal("collector never finished")
	}
	if err := collector.Err(); err != nil {
		t.Fatal(err)
	}
	latest, received := collector.Latest()
	if received != n {
		t.Fatalf("received %d readings, want %d", received, n)
	}
	if collector.Gaps() != 0 {
		t.Errorf("reliable feed had %d gaps", collector.Gaps())
	}
	if latest.Seq != n-1 {
		t.Errorf("latest seq = %d", latest.Seq)
	}
	wx, wy, wz := sample(n - 1)
	if latest.X != wx || latest.Y != wy || latest.Z != wz {
		t.Errorf("latest sample mismatch: %+v", latest)
	}
	if svc.Shipped() != n {
		t.Errorf("Shipped = %d", svc.Shipped())
	}
}
