package shop

import (
	"strings"
	"testing"
	"time"

	"github.com/alfredo-mw/alfredo/internal/core"
	"github.com/alfredo-mw/alfredo/internal/device"
	"github.com/alfredo-mw/alfredo/internal/netsim"
	"github.com/alfredo-mw/alfredo/internal/remote"
	"github.com/alfredo-mw/alfredo/internal/ui"
)

func TestCatalog(t *testing.T) {
	c := NewCatalog()
	cats := c.Categories()
	if len(cats) != 3 || cats[0] != "beds" {
		t.Errorf("categories = %v", cats)
	}
	beds := c.ProductsIn("beds")
	if len(beds) != 3 {
		t.Errorf("beds = %v", beds)
	}
	p, ok := c.Product("Malm")
	if !ok || p.Price != 19900 {
		t.Errorf("Malm = %+v, %v", p, ok)
	}
	if _, ok := c.Product("Ghost"); ok {
		t.Error("phantom product")
	}
	c.Add(Product{Name: "New", Category: "beds", Price: 100})
	if c.Size() != 8 {
		t.Errorf("size = %d", c.Size())
	}
}

func TestFormatPrice(t *testing.T) {
	cases := map[int64]string{
		0:      "0.00",
		5:      "0.05",
		19900:  "199.00",
		123456: "1234.56",
		-250:   "-2.50",
	}
	for cents, want := range cases {
		if got := FormatPrice(cents); got != want {
			t.Errorf("FormatPrice(%d) = %q, want %q", cents, got, want)
		}
	}
}

func TestCompareProducts(t *testing.T) {
	c := NewCatalog()
	a, _ := c.Product("Malm")
	b, _ := c.Product("Duken")
	out := CompareProducts(a.asMap(), b.asMap())
	if !strings.Contains(out, "Malm is cheaper by 50.00") {
		t.Errorf("compare = %q", out)
	}
	same := CompareProducts(a.asMap(), a.asMap())
	if !strings.Contains(same, "same price") {
		t.Errorf("self compare = %q", same)
	}
}

func TestBlurb(t *testing.T) {
	if !strings.Contains(Blurb(false), "24 hours") {
		t.Error("closed blurb should advertise 24h browsing")
	}
	if !strings.Contains(Blurb(true), "Welcome") {
		t.Error("open blurb should greet")
	}
}

type shopPair struct {
	screen  *core.Node
	phone   *core.Node
	session *core.Session
	svc     *Service
}

func newShopPair(t *testing.T, link netsim.LinkProfile, registerCode bool) *shopPair {
	t.Helper()
	svc := New()
	screen, err := core.NewNode(core.NodeConfig{Name: "shop-screen", Profile: device.Touchscreen()})
	if err != nil {
		t.Fatal(err)
	}
	if err := screen.RegisterApp(svc.App()); err != nil {
		t.Fatal(err)
	}

	proxyCode := remote.NewProxyCodeRegistry()
	if registerCode {
		if err := RegisterProxyCode(proxyCode); err != nil {
			t.Fatal(err)
		}
	}
	phone, err := core.NewNode(core.NodeConfig{
		Name:         "nokia",
		Profile:      device.Nokia9300i(),
		ProxyCode:    proxyCode,
		FreeMemoryKB: 8192,
	})
	if err != nil {
		t.Fatal(err)
	}

	fabric := netsim.NewFabric()
	l, err := fabric.Listen("shop-screen")
	if err != nil {
		t.Fatal(err)
	}
	screen.Serve(l)
	conn, err := fabric.Dial("shop-screen", link)
	if err != nil {
		t.Fatal(err)
	}
	session, err := phone.Connect(conn)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		session.Close()
		phone.Close()
		screen.Close()
		_ = l.Close()
	})
	return &shopPair{screen: screen, phone: phone, session: session, svc: svc}
}

func TestBrowseFlowEndToEnd(t *testing.T) {
	p := newShopPair(t, netsim.Loopback, false)
	app, err := p.session.Acquire(InterfaceName, core.AcquireOptions{})
	if err != nil {
		t.Fatalf("Acquire: %v", err)
	}

	// Select the beds category: the controller invokes Browse remotely
	// and fills the product list.
	if err := app.View.Inject(ui.Event{Control: "categories", Kind: ui.EventSelect, Value: "beds"}); err != nil {
		t.Fatal(err)
	}
	items, _ := app.View.Property("products", "items")
	list, ok := items.([]any)
	if !ok || len(list) != 3 {
		t.Fatalf("products = %v (ctl err %v)", items, app.Controller.LastError())
	}

	// Select a product: detail appears.
	if err := app.View.Inject(ui.Event{Control: "products", Kind: ui.EventSelect, Value: "Malm"}); err != nil {
		t.Fatal(err)
	}
	detail, _ := app.View.Property("detail", "value")
	if s, _ := detail.(string); !strings.Contains(s, "Malm") || !strings.Contains(s, "199.00") {
		t.Errorf("detail = %v", detail)
	}

	// Compare against another bed.
	_ = app.View.Inject(ui.Event{Control: "compareWith", Kind: ui.EventChange, Value: "Duken"})
	_ = app.View.Inject(ui.Event{Control: "compareBtn", Kind: ui.EventPress})
	cmp, _ := app.View.Property("detail", "value")
	if s, _ := cmp.(string); !strings.Contains(s, "cheaper") {
		t.Errorf("compare = %v (ctl err %v)", cmp, app.Controller.LastError())
	}
}

func TestLogicTierOffload(t *testing.T) {
	// Slow trusted link + registered proxy code: the logic tier moves
	// to the phone and Compare executes locally.
	slow := netsim.LinkProfile{Name: "slow", Latency: 30 * time.Millisecond}
	p := newShopPair(t, slow, true)
	app, err := p.session.Acquire(InterfaceName, core.AcquireOptions{
		Policy:  core.AdaptivePolicy{},
		Trusted: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	logic, ok := app.Deps[LogicInterface]
	if !ok {
		t.Fatalf("logic tier not pulled; reasons %v", app.Placement.Reasons)
	}
	// The data tier must never move (§3.2).
	if _, pulled := app.Deps[CatalogInterface]; pulled {
		t.Error("data tier was pulled to the client")
	}

	// Local execution: a locally-implemented method answers much faster
	// than a 60 ms round trip.
	a, _ := p.svc.Catalog().Product("Malm")
	b, _ := p.svc.Catalog().Product("Duken")
	start := time.Now()
	out, err := logic.Invoke("Compare", []any{a.asMap(), b.asMap()})
	local := time.Since(start)
	if err != nil || !strings.Contains(out.(string), "cheaper") {
		t.Fatalf("Compare = %v, %v", out, err)
	}
	if local > 20*time.Millisecond {
		t.Errorf("local Compare took %v; smart proxy did not run locally", local)
	}
	// A method outside LocalMethods crosses the network.
	start = time.Now()
	cheapest, err := logic.Invoke("Cheapest", []any{"beds"})
	remoteTime := time.Since(start)
	if err != nil || cheapest != "Malm" {
		t.Fatalf("Cheapest = %v, %v", cheapest, err)
	}
	if remoteTime < 50*time.Millisecond {
		t.Errorf("Cheapest took %v; expected a remote round trip", remoteTime)
	}
}

func TestThinVsOffloadLatency(t *testing.T) {
	// The §3.2 motivation made measurable: on a slow link, a pulled
	// logic tier answers Compare faster than the remote main service.
	slow := netsim.LinkProfile{Name: "slow", Latency: 30 * time.Millisecond}
	p := newShopPair(t, slow, true)
	app, err := p.session.Acquire(InterfaceName, core.AcquireOptions{
		Policy: core.AdaptivePolicy{}, Trusted: true,
	})
	if err != nil {
		t.Fatal(err)
	}

	start := time.Now()
	if _, err := app.Invoke("Compare", "Malm", "Duken"); err != nil {
		t.Fatal(err)
	}
	thin := time.Since(start)

	a, _ := p.svc.Catalog().Product("Malm")
	b, _ := p.svc.Catalog().Product("Duken")
	logic := app.Deps[LogicInterface]
	start = time.Now()
	if _, err := logic.Invoke("Compare", []any{a.asMap(), b.asMap()}); err != nil {
		t.Fatal(err)
	}
	offloaded := time.Since(start)

	if offloaded*2 > thin {
		t.Errorf("offloaded Compare (%v) not clearly faster than remote (%v)", offloaded, thin)
	}
}

func TestInjectedTypesShipWithCatalog(t *testing.T) {
	p := newShopPair(t, netsim.Loopback, false)
	info, ok := p.session.Channel().FindRemoteService(CatalogInterface)
	if !ok {
		t.Fatal("catalog not leased")
	}
	reply, err := p.session.Channel().Fetch(info.ID)
	if err != nil {
		t.Fatal(err)
	}
	if len(reply.Types) != 1 || reply.Types[0].Name != "Product" {
		t.Errorf("injected types = %v", reply.Types)
	}
	if len(reply.Types[0].Fields) != 6 {
		t.Errorf("Product fields = %v", reply.Types[0].Fields)
	}
}
