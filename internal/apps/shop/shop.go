// Package shop implements the AlfredOShop prototype of paper §5.2: an
// information screen behind a shop window that passers-by control from
// their phones — browsing and comparing products even when the shop is
// closed. The application decomposes exactly along the paper's tiers:
// the product catalog is the pinned data tier, the filtering/comparison
// logic is a movable logic tier (with a smart proxy so pulled logic
// really executes on the client), and the UI ships as a descriptor.
package shop

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"github.com/alfredo-mw/alfredo/internal/core"
	"github.com/alfredo-mw/alfredo/internal/device"
	"github.com/alfredo-mw/alfredo/internal/module"
	"github.com/alfredo-mw/alfredo/internal/remote"
	"github.com/alfredo-mw/alfredo/internal/script"
	"github.com/alfredo-mw/alfredo/internal/ui"
	"github.com/alfredo-mw/alfredo/internal/wire"
)

// Interface names.
const (
	// InterfaceName is the main (presentation-facing) service.
	InterfaceName = "alfredo.apps.AlfredOShop"
	// CatalogInterface is the data-tier catalog service (always on the
	// target, §3.2).
	CatalogInterface = "alfredo.apps.shop.Catalog"
	// LogicInterface is the movable logic-tier service.
	LogicInterface = "alfredo.apps.shop.Logic"
)

// Product is one catalog entry.
type Product struct {
	Name     string
	Category string
	Price    int64 // cents
	Detail   string
	WidthCM  int64
	HeightCM int64
}

func (p Product) asMap() map[string]any {
	return map[string]any{
		"name":     p.Name,
		"category": p.Category,
		"price":    p.Price,
		"detail":   p.Detail,
		"widthCM":  p.WidthCM,
		"heightCM": p.HeightCM,
	}
}

// Catalog is the data tier: thread-safe product storage.
type Catalog struct {
	mu       sync.RWMutex
	products map[string]Product
}

// NewCatalog creates a catalog preloaded with the furniture the paper's
// screenshots show (beds, figure 8).
func NewCatalog() *Catalog {
	c := &Catalog{products: make(map[string]Product)}
	for _, p := range []Product{
		{Name: "Norddal", Category: "beds", Price: 29900, Detail: "Bunk bed, pine, 90x200 cm", WidthCM: 90, HeightCM: 200},
		{Name: "Malm", Category: "beds", Price: 19900, Detail: "Bed frame, oak veneer, 160x200 cm", WidthCM: 160, HeightCM: 200},
		{Name: "Duken", Category: "beds", Price: 24900, Detail: "Four-poster bed, 180x200 cm", WidthCM: 180, HeightCM: 200},
		{Name: "Klippan", Category: "sofas", Price: 34900, Detail: "Two-seat sofa, red", WidthCM: 180, HeightCM: 88},
		{Name: "Ektorp", Category: "sofas", Price: 44900, Detail: "Three-seat sofa, beige", WidthCM: 218, HeightCM: 88},
		{Name: "Lack", Category: "tables", Price: 2900, Detail: "Side table, black-brown", WidthCM: 55, HeightCM: 45},
		{Name: "Norden", Category: "tables", Price: 19900, Detail: "Gateleg table, birch", WidthCM: 152, HeightCM: 80},
	} {
		c.products[p.Name] = p
	}
	return c
}

// Add inserts or replaces a product.
func (c *Catalog) Add(p Product) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.products[p.Name] = p
}

// Categories returns the sorted distinct categories.
func (c *Catalog) Categories() []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	set := make(map[string]bool)
	for _, p := range c.products {
		set[p.Category] = true
	}
	out := make([]string, 0, len(set))
	for cat := range set {
		out = append(out, cat)
	}
	sort.Strings(out)
	return out
}

// ProductsIn returns the sorted product names of a category.
func (c *Catalog) ProductsIn(category string) []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	var out []string
	for _, p := range c.products {
		if p.Category == category {
			out = append(out, p.Name)
		}
	}
	sort.Strings(out)
	return out
}

// Product looks up a product by name.
func (c *Catalog) Product(name string) (Product, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	p, ok := c.products[name]
	return p, ok
}

// Size returns the product count.
func (c *Catalog) Size() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.products)
}

// Service is the provider-side AlfredOShop application.
type Service struct {
	catalog *Catalog
}

// New creates the application with a stocked catalog.
func New() *Service {
	return &Service{catalog: NewCatalog()}
}

// Catalog exposes the data tier (tests, examples).
func (s *Service) Catalog() *Catalog { return s.catalog }

// catalogTable builds the data-tier service.
func (s *Service) catalogTable() *remote.MethodTable {
	return remote.NewService(CatalogInterface).
		Method("Categories", nil, "list", func(args []any) (any, error) {
			return toAnyList(s.catalog.Categories()), nil
		}).
		Method("ProductsIn", []string{"string"}, "list", func(args []any) (any, error) {
			return toAnyList(s.catalog.ProductsIn(args[0].(string))), nil
		}).
		Method("Product", []string{"string"}, "map", func(args []any) (any, error) {
			p, ok := s.catalog.Product(args[0].(string))
			if !ok {
				return nil, fmt.Errorf("shop: no product %q", args[0])
			}
			return p.asMap(), nil
		}).
		WithTypes(wire.TypeDesc{
			Name: "Product",
			Fields: []wire.TypeField{
				{Name: "name", Type: "string"},
				{Name: "category", Type: "string"},
				{Name: "price", Type: "int"},
				{Name: "detail", Type: "string"},
				{Name: "widthCM", Type: "int"},
				{Name: "heightCM", Type: "int"},
			},
		})
}

// LogicCodeRef is the content-addressed reference of the shop logic's
// smart proxy code. Clients that pre-installed it (RegisterProxyCode)
// execute Compare and FormatPrice locally after pulling the logic tier.
var LogicCodeRef = module.HashRef([]byte("alfredo.apps.shop.Logic/v1"))

// logicTable builds the movable logic-tier service.
func (s *Service) logicTable() *remote.MethodTable {
	return remote.NewService(LogicInterface).
		Method("Compare", []string{"map", "map"}, "string", func(args []any) (any, error) {
			return CompareProducts(args[0].(map[string]any), args[1].(map[string]any)), nil
		}).
		Method("FormatPrice", []string{"int"}, "string", func(args []any) (any, error) {
			return FormatPrice(args[0].(int64)), nil
		}).
		Method("Cheapest", []string{"string"}, "string", func(args []any) (any, error) {
			names := s.catalog.ProductsIn(args[0].(string))
			best := ""
			var bestPrice int64 = 1 << 62
			for _, n := range names {
				if p, ok := s.catalog.Product(n); ok && p.Price < bestPrice {
					best, bestPrice = n, p.Price
				}
			}
			return best, nil
		}).
		WithSmartProxy(&wire.SmartProxyRef{
			CodeRef:      LogicCodeRef,
			LocalMethods: []string{"Compare", "FormatPrice"},
		})
}

// mainTable builds the presentation-facing main service.
func (s *Service) mainTable() *remote.MethodTable {
	return remote.NewService(InterfaceName).
		Method("Browse", []string{"string"}, "list", func(args []any) (any, error) {
			return toAnyList(s.catalog.ProductsIn(args[0].(string))), nil
		}).
		Method("Categories", nil, "list", func(args []any) (any, error) {
			return toAnyList(s.catalog.Categories()), nil
		}).
		Method("Detail", []string{"string"}, "string", func(args []any) (any, error) {
			p, ok := s.catalog.Product(args[0].(string))
			if !ok {
				return "unknown product", nil
			}
			return fmt.Sprintf("%s — %s (%s)", p.Name, p.Detail, FormatPrice(p.Price)), nil
		}).
		Method("Compare", []string{"string", "string"}, "string", func(args []any) (any, error) {
			a, okA := s.catalog.Product(args[0].(string))
			b, okB := s.catalog.Product(args[1].(string))
			if !okA || !okB {
				return "need two known products", nil
			}
			return CompareProducts(a.asMap(), b.asMap()), nil
		})
}

// App builds the registerable AlfredO application.
func (s *Service) App() *core.App {
	desc := &core.Descriptor{
		Service: InterfaceName,
		UI: &ui.Description{
			Title: "AlfredOShop",
			Controls: []ui.Control{
				{ID: "welcome", Kind: ui.KindLabel, Text: "Browse our products", Importance: 4},
				{ID: "categories", Kind: ui.KindChoice, Text: "Category",
					Items: []string{"beds", "sofas", "tables"}, Importance: 9,
					Requires: []string{string(device.SelectionDevice)}},
				{ID: "products", Kind: ui.KindList, Text: "Products", Importance: 10,
					Requires: []string{string(device.SelectionDevice)}},
				{ID: "detail", Kind: ui.KindLabel, Text: "Detail", Importance: 8},
				{ID: "compareWith", Kind: ui.KindTextInput, Text: "Compare with", Importance: 5,
					Requires: []string{string(device.KeyboardDevice)}},
				{ID: "compareBtn", Kind: ui.KindButton, Text: "Compare", Importance: 6},
			},
			Relations: []ui.Relation{
				{Kind: ui.RelOrder, Members: []string{"welcome", "categories", "products", "detail", "compareWith", "compareBtn"}},
				{Kind: ui.RelGroup, Name: "browse", Members: []string{"categories", "products"}},
				{Kind: ui.RelDetails, From: "products", To: "detail"},
			},
			Requires: []string{string(device.SelectionDevice)},
		},
		Controller: &script.Program{
			Init: map[string]string{"selected": "''"},
			Rules: []script.Rule{
				{
					Name: "browse-category",
					On:   script.Trigger{UI: &script.UITrigger{Control: "categories", Kind: ui.EventSelect}},
					Do: []script.Action{
						{Invoke: &script.InvokeAction{Method: "Browse", Args: []string{"event.value"}}},
						{SetControl: &script.SetControlAction{Control: "products", Property: "items", Value: "result"}},
					},
				},
				{
					Name: "show-detail",
					On:   script.Trigger{UI: &script.UITrigger{Control: "products", Kind: ui.EventSelect}},
					Do: []script.Action{
						{SetVar: &script.SetVarAction{Name: "selected", Value: "event.value"}},
						{Invoke: &script.InvokeAction{Method: "Detail", Args: []string{"event.value"}}},
						{SetControl: &script.SetControlAction{Control: "detail", Property: "value", Value: "result"}},
					},
				},
				{
					Name: "compare",
					On:   script.Trigger{UI: &script.UITrigger{Control: "compareBtn", Kind: ui.EventPress}},
					When: "selected != ''",
					Do: []script.Action{
						{Invoke: &script.InvokeAction{Method: "Compare",
							Args: []string{"selected", "str(vars.compareWith)"}}},
						{SetControl: &script.SetControlAction{Control: "detail", Property: "value", Value: "result"}},
					},
				},
				{
					Name: "remember-compare-input",
					On:   script.Trigger{UI: &script.UITrigger{Control: "compareWith", Kind: ui.EventChange}},
					Do: []script.Action{
						{SetVar: &script.SetVarAction{Name: "compareWith", Value: "event.value"}},
					},
				},
			},
		},
		Dependencies: []core.Dependency{
			{Service: CatalogInterface, Tier: core.TierData},
			{Service: LogicInterface, Tier: core.TierLogic, Movable: true,
				Requirements: core.Requirements{MinMemoryKB: 64}},
		},
		// Calibrated so the proxy start lands at ~360 ms on the Nokia
		// 9300i (Table 1): UI state wiring only.
		StartWorkMs: 15,
	}

	return &core.App{
		Descriptor: desc,
		Service:    s.mainTable(),
		Dependencies: map[string]*remote.MethodTable{
			CatalogInterface: s.catalogTable(),
			LogicInterface:   s.logicTable(),
		},
	}
}

// LogicProxyCode is the client-side smart proxy implementation of the
// shop logic: Compare and FormatPrice run locally, everything else
// (Cheapest needs the catalog) goes remote. Register it under
// LogicCodeRef on client nodes.
type LogicProxyCode struct{}

var _ remote.ProxyCode = LogicProxyCode{}

// Invoke implements remote.ProxyCode.
func (LogicProxyCode) Invoke(method string, args []any, remoteCall remote.Invoker) (any, error) {
	switch method {
	case "Compare":
		a, okA := args[0].(map[string]any)
		b, okB := args[1].(map[string]any)
		if !okA || !okB {
			return nil, fmt.Errorf("shop: Compare needs two product maps")
		}
		return CompareProducts(a, b), nil
	case "FormatPrice":
		price, ok := args[0].(int64)
		if !ok {
			return nil, fmt.Errorf("shop: FormatPrice needs an int")
		}
		return FormatPrice(price), nil
	default:
		return remoteCall.Invoke(method, args)
	}
}

// RegisterProxyCode pre-installs the shop logic's smart proxy code in a
// client's registry (the trusted-code distribution model, DESIGN.md §2).
func RegisterProxyCode(reg *remote.ProxyCodeRegistry) error {
	return reg.Register(LogicCodeRef, func() remote.ProxyCode { return LogicProxyCode{} })
}

// CompareProducts renders a human-readable comparison; it is pure so
// that the provider service and the smart proxy share it.
func CompareProducts(a, b map[string]any) string {
	name := func(m map[string]any) string { s, _ := m["name"].(string); return s }
	price := func(m map[string]any) int64 { p, _ := m["price"].(int64); return p }
	var verdict string
	switch {
	case price(a) < price(b):
		verdict = fmt.Sprintf("%s is cheaper by %s", name(a), FormatPrice(price(b)-price(a)))
	case price(b) < price(a):
		verdict = fmt.Sprintf("%s is cheaper by %s", name(b), FormatPrice(price(a)-price(b)))
	default:
		verdict = "same price"
	}
	return fmt.Sprintf("%s (%s) vs %s (%s): %s",
		name(a), FormatPrice(price(a)), name(b), FormatPrice(price(b)), verdict)
}

// FormatPrice renders cents as "123.45".
func FormatPrice(cents int64) string {
	sign := ""
	if cents < 0 {
		sign, cents = "-", -cents
	}
	return fmt.Sprintf("%s%d.%02d", sign, cents/100, cents%100)
}

func toAnyList(ss []string) []any {
	out := make([]any, len(ss))
	for i, s := range ss {
		out[i] = s
	}
	return out
}

// Blurb returns the shop-window greeting, including opening status —
// the 24h accessibility pitch of §5.2.
func Blurb(shopOpen bool) string {
	if shopOpen {
		return "Welcome! Come in or browse from your phone."
	}
	return strings.TrimSpace("Shop closed — browse our products from your phone, 24 hours a day.")
}
