package remote

// Adaptive shedding: the health scorer's overload score drives the
// admission controller's shed factor, so a node approaching overload
// narrows every tenant's share proportionally before the queues and
// tails blow out — instead of rejecting only at the hard capacity rim.

import (
	"github.com/alfredo-mw/alfredo/internal/obs"
)

// Shed mapping: no shedding below shedStart, then linear up to shedMax
// at a fully overloaded score. shedMax stays below 1 so even a node
// scoring 1.0 keeps admitting a trickle — the score must be able to
// recover from its own effect.
const (
	shedStart = 0.7
	shedMax   = 0.8
)

// ShedFromScore maps an overall health score in [0, 1] to an admission
// shed fraction: 0 below shedStart, rising linearly to shedMax at 1.
func ShedFromScore(overall float64) float64 {
	if overall != overall || overall <= shedStart { // NaN or healthy
		return 0
	}
	if overall > 1 {
		overall = 1
	}
	return (overall - shedStart) / (1 - shedStart) * shedMax
}

// StartHealthDriver starts an obs.HealthScorer on the peer's registry
// and clock whose scores drive the peer's admission controller through
// ShedFromScore. QueueCapacity defaults to the peer's reactor width
// (the natural normalizer for its dispatch backlog); any OnScore hook
// in cfg still fires after the shed factor is applied. With admission
// disabled the scores are still computed and published — the fleet
// plane sees them — they just shed nothing. Stop the returned scorer
// before closing the peer.
func (p *Peer) StartHealthDriver(cfg obs.HealthConfig) *obs.HealthScorer {
	if cfg.QueueCapacity <= 0 && p.cfg.ReactorWorkers > 0 {
		cfg.QueueCapacity = int64(p.cfg.ReactorWorkers)
	}
	user := cfg.OnScore
	cfg.OnScore = func(s obs.HealthScore) {
		if a := p.admission; a != nil {
			a.SetShedFactor(ShedFromScore(s.Overall))
		}
		if user != nil {
			user(s)
		}
	}
	return obs.StartHealthScorer(p.cfg.Obs.Metrics, p.cfg.Clock, cfg)
}
