package remote

import (
	"context"
	"fmt"
	"time"

	"github.com/alfredo-mw/alfredo/internal/module"
	"github.com/alfredo-mw/alfredo/internal/service"
	"github.com/alfredo-mw/alfredo/internal/wire"
)

// DescriptorResource is the archive resource name under which a proxy
// bundle carries the shipped AlfredO service descriptor.
const DescriptorResource = "alfredo/descriptor.json"

// DynamicService is the client-side face of a remote service: a proxy
// synthesized from the shipped interface descriptor. It is registered
// in the local registry under the remote interface names, so consumers
// "invoke service functions as if they were locally implemented"
// (paper §2.1). It itself implements Service, which makes re-export
// (proxy chaining) possible.
type DynamicService struct {
	desc    wire.InterfaceDesc
	types   []wire.TypeDesc
	invoke  func(ctx context.Context, method string, args []any) (any, error)
	local   map[string]bool
	code    ProxyCode
	channel *Channel
	svcID   int64
}

var _ Service = (*DynamicService)(nil)

// Describe implements Service with the shipped interface descriptor.
func (d *DynamicService) Describe() wire.InterfaceDesc { return d.desc }

// Types returns the injected type descriptors shipped with the service.
func (d *DynamicService) Types() []wire.TypeDesc { return d.types }

// ServiceID returns the remote service id this proxy is bound to.
func (d *DynamicService) ServiceID() int64 { return d.svcID }

// Channel returns the channel the proxy invokes through.
func (d *DynamicService) Channel() *Channel { return d.channel }

// Invoke validates the call against the shipped interface and routes it
// either into smart proxy code (locally implemented methods) or over
// the network.
func (d *DynamicService) Invoke(method string, args []any) (any, error) {
	return d.InvokeCtx(context.Background(), method, args)
}

// InvokeCtx is Invoke with a caller context: a span carried in ctx
// propagates through the proxy into the remote invocation, so the
// whole chain lands in one trace.
func (d *DynamicService) InvokeCtx(ctx context.Context, method string, args []any) (any, error) {
	m, ok := d.desc.Method(method)
	if !ok {
		return nil, fmt.Errorf("%w: %s.%s", ErrNoSuchMethod, d.desc.Name, method)
	}
	norm := make([]any, len(args))
	for i, a := range args {
		n, err := wire.Normalize(a)
		if err != nil {
			return nil, fmt.Errorf("remote: proxy %s.%s: %w", d.desc.Name, method, err)
		}
		norm[i] = n
	}
	if err := CheckArgs(m, norm); err != nil {
		return nil, err
	}
	if d.code != nil && d.local[method] {
		return d.code.Invoke(method, norm, remoteInvoker{d: d, ctx: ctx})
	}
	return d.invoke(ctx, method, norm)
}

// remoteInvoker hands smart proxy code the fall-through path without
// re-entering the local-method dispatch, carrying the caller's context
// for trace propagation.
type remoteInvoker struct {
	d   *DynamicService
	ctx context.Context
}

func (r remoteInvoker) Invoke(method string, args []any) (any, error) {
	ctx := r.ctx
	if ctx == nil {
		ctx = context.Background()
	}
	return r.d.invoke(ctx, method, args)
}

// ProxyBundle is the synthesized result of BuildProxy: an installable
// archive and its activator, plus the proxy service object.
type ProxyBundle struct {
	Archive   *module.Archive
	Activator module.Activator
	Service   *DynamicService
}

// BuildProxy synthesizes a proxy bundle from a fetched ServiceReply —
// the "Build proxy bundle" phase of Tables 1 and 2. The returned
// archive installs like any other bundle; starting it registers the
// DynamicService in the local registry under the remote interface
// names.
//
// Substitution note: R-OSGi generates Java bytecode here; we generate a
// method-table proxy plus a dynamic activator (DESIGN.md §2).
func (c *Channel) BuildProxy(reply *wire.ServiceReply) (*ProxyBundle, error) {
	if len(reply.Interfaces) == 0 {
		return nil, fmt.Errorf("%w: reply for service %d carries no interface", ErrNoSuchService, reply.Info.ID)
	}
	iface := reply.Interfaces[0]
	svcID := reply.Info.ID

	dyn := &DynamicService{
		desc:    iface,
		types:   reply.Types,
		channel: c,
		svcID:   svcID,
		invoke: func(ctx context.Context, method string, args []any) (any, error) {
			return c.InvokeCtx(ctx, svcID, method, args)
		},
	}
	if reply.Smart != nil {
		if factory, ok := c.peer.cfg.ProxyCode.Lookup(reply.Smart.CodeRef); ok {
			dyn.code = factory()
			dyn.local = make(map[string]bool, len(reply.Smart.LocalMethods))
			for _, m := range reply.Smart.LocalMethods {
				dyn.local[m] = true
			}
		}
	}

	archive := &module.Archive{
		Manifest: module.Manifest{
			SymbolicName: fmt.Sprintf("proxy.%s.%d", c.RemoteID(), svcID),
			Version:      module.Version{Major: 1},
			Headers: map[string]string{
				"Proxy-For":  iface.Name,
				"Proxy-Peer": c.RemoteID(),
			},
		},
		Resources: map[string][]byte{},
	}
	if len(reply.Descriptor) > 0 {
		archive.Resources[DescriptorResource] = reply.Descriptor
	}

	props := service.Properties{
		service.PropRemote:     true,
		service.PropRemotePeer: c.RemoteID(),
	}
	for k, v := range reply.Info.Props {
		switch k {
		case service.PropObjectClass, service.PropServiceID, PropExported:
			// Identity properties are reassigned locally, and a proxy
			// must not be re-exported implicitly.
		default:
			props[k] = v
		}
	}

	activator := &proxyActivator{ifaces: reply.Info.Interfaces, dyn: dyn, props: props}
	if len(activator.ifaces) == 0 {
		activator.ifaces = []string{iface.Name}
	}

	// The synthesis work happens on the simulated device CPU.
	c.peer.cfg.Device.BuildProxy(len(iface.Methods))

	return &ProxyBundle{Archive: archive, Activator: activator, Service: dyn}, nil
}

// proxyActivator registers the dynamic service while the proxy bundle
// is active.
type proxyActivator struct {
	ifaces []string
	dyn    *DynamicService
	props  service.Properties
	// startWork is extra app-specific start cost (set by the core layer
	// from the service descriptor).
	startWork time.Duration
}

var _ module.Activator = (*proxyActivator)(nil)

func (a *proxyActivator) Start(ctx *module.Context) error {
	dev := a.dyn.channel.peer.cfg.Device
	dev.StartBundle(a.startWork)
	_, err := ctx.RegisterService(a.ifaces, a.dyn, a.props)
	if err != nil {
		return fmt.Errorf("remote: registering proxy for %v: %w", a.ifaces, err)
	}
	return nil
}

func (a *proxyActivator) Stop(ctx *module.Context) error { return nil }

// SetStartWork declares app-specific start cost executed when the proxy
// bundle starts (the descriptor-declared work behind the divergent
// "Start proxy bundle" rows of Tables 1 and 2).
func (p *ProxyBundle) SetStartWork(d time.Duration) {
	if a, ok := p.Activator.(*proxyActivator); ok {
		a.startWork = d
	}
}

// InstallProxy performs the full default client flow after Fetch:
// build, install and start the proxy bundle, tracking it for automatic
// uninstall when the channel closes. It returns the started bundle and
// the proxy service.
func (c *Channel) InstallProxy(reply *wire.ServiceReply) (*module.Bundle, *DynamicService, error) {
	pb, err := c.BuildProxy(reply)
	if err != nil {
		return nil, nil, err
	}
	c.peer.cfg.Device.InstallBundle()
	b, err := c.peer.cfg.Framework.InstallDynamic(pb.Archive, pb.Activator)
	if err != nil {
		return nil, nil, err
	}
	if err := b.Start(); err != nil {
		_ = b.Uninstall()
		return nil, nil, err
	}
	c.TrackProxy(b)
	return b, pb.Service, nil
}

// TrackProxy records a proxy bundle for automatic uninstall at channel
// teardown ("proxy bundles ... are not cached but immediately
// uninstalled as soon as the interaction is terminated", §4.1). The
// core layer calls it when it drives the install/start phases itself
// for timing.
func (c *Channel) TrackProxy(b *module.Bundle) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.proxies = append(c.proxies, b)
}

// UntrackProxy removes a bundle from channel-teardown tracking. The
// tier re-placement path uninstalls pushed-back proxies itself the
// moment their last invoke drains; leaving the entry behind would grow
// the tracking list without bound across pull/push cycles. Unknown
// bundles are ignored.
func (c *Channel) UntrackProxy(b *module.Bundle) {
	if b == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	for i, p := range c.proxies {
		if p == b {
			c.proxies = append(c.proxies[:i], c.proxies[i+1:]...)
			return
		}
	}
}
