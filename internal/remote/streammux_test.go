package remote

import (
	"bytes"
	"fmt"
	"io"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"github.com/alfredo-mw/alfredo/internal/event"
	"github.com/alfredo-mw/alfredo/internal/module"
	"github.com/alfredo-mw/alfredo/internal/netsim"
	"github.com/alfredo-mw/alfredo/internal/wire"
)

// newMuxNode builds a test node with a mutated peer config (stream
// window, hello props) for the flow-control tests.
func newMuxNode(t *testing.T, name string, mut func(*Config)) *testNode {
	t.Helper()
	fw := module.NewFramework(module.Config{Name: name})
	ev := event.NewAdmin(0)
	cfg := Config{
		Framework: fw,
		Events:    ev,
		ProxyCode: NewProxyCodeRegistry(),
		Timeout:   5 * time.Second,
	}
	if mut != nil {
		mut(&cfg)
	}
	peer, err := NewPeer(cfg)
	if err != nil {
		t.Fatalf("NewPeer(%s): %v", name, err)
	}
	n := &testNode{fw: fw, events: ev, peer: peer}
	t.Cleanup(func() {
		peer.Close()
		ev.Close()
		_ = fw.Shutdown()
	})
	return n
}

// pat builds a deterministic payload so reassembly bugs show as content
// mismatches, not just length mismatches.
func pat(n int, seed byte) []byte {
	p := make([]byte, n)
	for i := range p {
		p[i] = seed + byte(i*7)
	}
	return p
}

// TestStreamCreditBackpressure: with a one-segment window, the writer's
// second chunk must block until the reader consumes the first — and the
// credit books must always show sent ≤ granted.
func TestStreamCreditBackpressure(t *testing.T) {
	server := newMuxNode(t, "srv", func(c *Config) { c.StreamWindowBytes = maxStreamFrame })
	client := newTestNode(t, "cli")
	ch := connectNodes(t, server, client, netsim.Loopback)

	release := make(chan struct{})
	rcvd := make(chan []byte, 16)
	for _, sc := range server.peer.Channels() {
		sc.HandleStreams(func(r *StreamReader) {
			<-release
			for {
				chunk, err := r.Next()
				if err != nil {
					close(rcvd)
					return
				}
				rcvd <- chunk
			}
		})
	}

	w, err := ch.OpenStream("bulk", nil)
	if err != nil {
		t.Fatalf("OpenStream: %v", err)
	}
	var written atomic.Int32
	go func() {
		for i := 0; i < 4; i++ {
			if _, err := w.Write(pat(maxStreamFrame, byte(i))); err != nil {
				return
			}
			written.Add(1)
		}
		_ = w.Close()
	}()

	waitFor(t, 5*time.Second, func() bool { return written.Load() == 1 })
	time.Sleep(100 * time.Millisecond)
	if got := written.Load(); got != 1 {
		t.Fatalf("writer got past the window without consumption: %d chunks written", got)
	}
	sent, granted, credited := w.FlowStats()
	if !credited {
		t.Fatal("reliable stream on a negotiated channel should be credited")
	}
	if sent > granted {
		t.Fatalf("sent %d > granted %d", sent, granted)
	}

	close(release)
	var chunks [][]byte
	for chunk := range rcvd {
		chunks = append(chunks, chunk)
	}
	if len(chunks) != 4 {
		t.Fatalf("received %d chunks, want 4", len(chunks))
	}
	for i, chunk := range chunks {
		if !bytes.Equal(chunk, pat(maxStreamFrame, byte(i))) {
			t.Fatalf("chunk %d corrupted", i)
		}
	}
	sent, granted, _ = w.FlowStats()
	if sent != 4*maxStreamFrame || sent > granted {
		t.Errorf("final books: sent=%d granted=%d", sent, granted)
	}
}

// TestStreamSegmentationPreservesBoundaries: a write far larger than one
// frame arrives as a single reassembled chunk.
func TestStreamSegmentationPreservesBoundaries(t *testing.T) {
	server := newTestNode(t, "srv")
	client := newTestNode(t, "cli")
	ch := connectNodes(t, server, client, netsim.Loopback)

	rcvd := make(chan []byte, 4)
	for _, sc := range server.peer.Channels() {
		sc.HandleStreams(func(r *StreamReader) {
			for {
				chunk, err := r.Next()
				if err != nil {
					close(rcvd)
					return
				}
				rcvd <- chunk
			}
		})
	}

	w, err := ch.OpenStream("big", nil)
	if err != nil {
		t.Fatalf("OpenStream: %v", err)
	}
	big := pat(100_000, 3)
	if n, err := w.Write(big); err != nil || n != len(big) {
		t.Fatalf("Write = %d, %v", n, err)
	}
	if _, err := w.Write([]byte("tail")); err != nil {
		t.Fatal(err)
	}
	_ = w.Close()

	var chunks [][]byte
	for chunk := range rcvd {
		chunks = append(chunks, chunk)
	}
	if len(chunks) != 2 {
		t.Fatalf("got %d chunks, want 2 (boundaries must survive segmentation)", len(chunks))
	}
	if !bytes.Equal(chunks[0], big) {
		t.Errorf("100KB message corrupted in reassembly (len %d)", len(chunks[0]))
	}
	if string(chunks[1]) != "tail" {
		t.Errorf("second message = %q", chunks[1])
	}
}

// TestStreamNoHandlerRejected: opening a stream to a peer without a
// handler fails the writer promptly and leaves no registry state on
// either side (the seed leaked the receive entry forever).
func TestStreamNoHandlerRejected(t *testing.T) {
	server := newTestNode(t, "srv")
	client := newTestNode(t, "cli")
	ch := connectNodes(t, server, client, netsim.Loopback)

	w, err := ch.OpenStream("nobody-home", nil)
	if err != nil {
		t.Fatalf("OpenStream: %v", err)
	}
	waitFor(t, 5*time.Second, func() bool {
		_, err := w.Write([]byte("x"))
		return err != nil && strings.Contains(err.Error(), "no stream handler")
	})
	if n := ch.OpenStreamCount(); n != 0 {
		t.Errorf("client stream registry holds %d entries after rejection", n)
	}
	for _, sc := range server.peer.Channels() {
		if n := sc.OpenStreamCount(); n != 0 {
			t.Errorf("server stream registry holds %d entries after rejection", n)
		}
	}
}

// TestStreamTeardownReleasesStreams: closing the channel fails pending
// writers and drains both registries — no leaked stream state.
func TestStreamTeardownReleasesStreams(t *testing.T) {
	server := newTestNode(t, "srv")
	client := newTestNode(t, "cli")
	ch := connectNodes(t, server, client, netsim.Loopback)

	for _, sc := range server.peer.Channels() {
		sc.HandleStreams(func(r *StreamReader) {
			for {
				if _, err := r.Next(); err != nil {
					return
				}
			}
		})
	}
	wr, err := ch.OpenStream("reliable", nil)
	if err != nil {
		t.Fatal(err)
	}
	wu, err := ch.OpenStreamClass("lossy", StreamUnreliable, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := wr.Write([]byte("a")); err != nil {
		t.Fatal(err)
	}
	if _, err := wu.Write([]byte("b")); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 5*time.Second, func() bool {
		for _, sc := range server.peer.Channels() {
			if sc.OpenStreamCount() == 2 {
				return true
			}
		}
		return false
	})

	ch.Close()
	if _, err := wr.Write([]byte("late")); err == nil {
		t.Error("write on torn-down channel should fail")
	}
	if n := ch.OpenStreamCount(); n != 0 {
		t.Errorf("client holds %d stream entries after teardown", n)
	}
	waitFor(t, 5*time.Second, func() bool {
		for _, sc := range server.peer.Channels() {
			if sc.OpenStreamCount() != 0 {
				return false
			}
		}
		return true
	})
}

// TestStreamDropAccountingExact: on an unreliable stream every sent
// chunk is either delivered or counted dropped — nothing vanishes
// silently (the seed's final non-blocking send could lose one uncounted).
func TestStreamDropAccountingExact(t *testing.T) {
	const total = 600 // comfortably past the streamBacklog of 256
	server := newTestNode(t, "srv")
	client := newTestNode(t, "cli")
	ch := connectNodes(t, server, client, netsim.Loopback)

	release := make(chan struct{})
	type tally struct {
		delivered int64
		dropped   int64
	}
	done := make(chan tally, 1)
	for _, sc := range server.peer.Channels() {
		sc.HandleStreams(func(r *StreamReader) {
			<-release
			var n int64
			for {
				if _, err := r.Next(); err != nil {
					done <- tally{delivered: n, dropped: r.Dropped()}
					return
				}
				n++
			}
		})
	}

	w, err := ch.OpenStreamClass("flood", StreamUnreliable, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < total; i++ {
		if _, err := w.Write(pat(64, byte(i))); err != nil {
			t.Fatalf("unreliable write %d blocked/failed: %v", i, err)
		}
	}
	_ = w.Close()
	close(release)

	select {
	case got := <-done:
		if got.delivered+got.dropped != total {
			t.Errorf("conservation violated: delivered %d + dropped %d != sent %d",
				got.delivered, got.dropped, total)
		}
		if got.dropped == 0 {
			t.Errorf("expected drops past backlog %d, got none", streamBacklog)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("reader never finished")
	}
}

// TestStreamLegacyFallback: a peer that does not announce stream.credit
// gets the seed behavior — no negotiation, no segmentation, no credits.
func TestStreamLegacyFallback(t *testing.T) {
	server := newMuxNode(t, "srv", func(c *Config) {
		c.HelloProps = map[string]any{propStreamCredit: false}
	})
	client := newTestNode(t, "cli")
	ch := connectNodes(t, server, client, netsim.Loopback)

	if ch.streamCredit {
		t.Fatal("stream.credit negotiated against a legacy peer")
	}
	rcvd := make(chan []byte, 4)
	for _, sc := range server.peer.Channels() {
		sc.HandleStreams(func(r *StreamReader) {
			for {
				chunk, err := r.Next()
				if err != nil {
					close(rcvd)
					return
				}
				rcvd <- chunk
			}
		})
	}
	w, err := ch.OpenStream("old-school", nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, credited := w.FlowStats(); credited {
		t.Error("legacy writer must not be credited")
	}
	big := pat(50_000, 9)
	if _, err := w.Write(big); err != nil {
		t.Fatal(err)
	}
	_ = w.Close()
	var chunks [][]byte
	for chunk := range rcvd {
		chunks = append(chunks, chunk)
	}
	if len(chunks) != 1 || !bytes.Equal(chunks[0], big) {
		t.Errorf("legacy delivery: %d chunks, want 1 intact 50KB chunk", len(chunks))
	}
}

// TestStreamReliableLosslessUnderPartition: a link partition stalls the
// stream but loses nothing — every chunk arrives intact and in order
// after the partition lifts. A second stream aborted mid-partition
// propagates its reason to the reader.
func TestStreamReliableLosslessUnderPartition(t *testing.T) {
	const chunks = 50
	server := newTestNode(t, "srv")
	client := newTestNode(t, "cli")
	fabric := netsim.NewFabric()
	serveFabric(t, fabric, server)
	link := netsim.LinkProfile{Name: "wlan", Latency: time.Millisecond}
	ch, conn := connectRaw(t, fabric, server, client, link)

	rcvd := make(chan []byte, chunks+1)
	abortErr := make(chan error, 1)
	waitFor(t, 5*time.Second, func() bool { return len(server.peer.Channels()) > 0 })
	for _, sc := range server.peer.Channels() {
		sc.HandleStreams(func(r *StreamReader) {
			if r.Name == "abortive" {
				for {
					if _, err := r.Next(); err != nil {
						abortErr <- err
						return
					}
				}
			}
			for {
				chunk, err := r.Next()
				if err != nil {
					close(rcvd)
					return
				}
				rcvd <- chunk
			}
		})
	}

	w, err := ch.OpenStream("telemetry", nil)
	if err != nil {
		t.Fatal(err)
	}
	wa, err := ch.OpenStream("abortive", nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := wa.Write([]byte("first")); err != nil {
		t.Fatal(err)
	}
	go func() {
		for i := 0; i < chunks; i++ {
			if i == chunks/2 {
				conn.Partition(150 * time.Millisecond)
				_ = wa.Abort("sensor died")
			}
			if _, err := w.Write(pat(4096, byte(i))); err != nil {
				return
			}
		}
		_ = w.Close()
	}()

	var got [][]byte
	deadline := time.After(15 * time.Second)
	for {
		select {
		case chunk, ok := <-rcvd:
			if !ok {
				goto drained
			}
			got = append(got, chunk)
		case <-deadline:
			t.Fatalf("stalled with %d/%d chunks", len(got), chunks)
		}
	}
drained:
	if len(got) != chunks {
		t.Fatalf("lost chunks across partition: got %d, want %d", len(got), chunks)
	}
	for i, chunk := range got {
		if !bytes.Equal(chunk, pat(4096, byte(i))) {
			t.Fatalf("chunk %d corrupted or reordered", i)
		}
	}
	select {
	case err := <-abortErr:
		if err == nil || !strings.Contains(err.Error(), "sensor died") {
			t.Errorf("abort reason lost: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("abort never reached the reader")
	}
}

// TestStreamReaderShortRead: the io.Reader view consumes big chunks
// across calls (leftover) and returns small chunks short — it never
// blocks to top up the buffer from a second chunk.
func TestStreamReaderShortRead(t *testing.T) {
	server := newTestNode(t, "srv")
	client := newTestNode(t, "cli")
	ch := connectNodes(t, server, client, netsim.Loopback)

	type readResult struct {
		s   string
		err error
	}
	results := make(chan readResult, 8)
	for _, sc := range server.peer.Channels() {
		sc.HandleStreams(func(r *StreamReader) {
			buf := make([]byte, 4)
			for {
				n, err := r.Read(buf)
				results <- readResult{s: string(buf[:n]), err: err}
				if err != nil {
					close(results)
					return
				}
			}
		})
	}

	w, err := ch.OpenStream("text", nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Write([]byte("hello world")); err != nil {
		t.Fatal(err)
	}
	if _, err := w.Write([]byte("xy")); err != nil {
		t.Fatal(err)
	}
	_ = w.Close()

	var reads []readResult
	for r := range results {
		reads = append(reads, r)
	}
	want := []string{"hell", "o wo", "rld", "xy"}
	if len(reads) != len(want)+1 {
		t.Fatalf("reads = %+v", reads)
	}
	for i, s := range want {
		if reads[i].s != s || reads[i].err != nil {
			t.Errorf("read %d = %q, %v; want %q", i, reads[i].s, reads[i].err, s)
		}
	}
	if reads[len(want)].err != io.EOF {
		t.Errorf("final read error = %v, want io.EOF", reads[len(want)].err)
	}
}

// --- Broadcaster ---

// bcastRig wires one server (the publisher) to n clients and registers
// a per-client collector before subscribing every server channel.
type bcastRig struct {
	server  *testNode
	clients []*testNode
	feeds   []chan []byte
	gate    chan struct{} // collectors wait on this before consuming (when gated)
}

func newBcastRig(t *testing.T, n int, gated bool, clientMut func(*Config)) *bcastRig {
	t.Helper()
	rig := &bcastRig{server: newTestNode(t, "host")}
	if gated {
		rig.gate = make(chan struct{})
	}
	for i := 0; i < n; i++ {
		cli := newMuxNode(t, fmt.Sprintf("viewer-%d", i), clientMut)
		feed := make(chan []byte, 256)
		ch := connectNodes(t, rig.server, cli, netsim.Loopback)
		ch.HandleStreams(func(r *StreamReader) {
			if rig.gate != nil {
				<-rig.gate
			}
			for {
				chunk, err := r.Next()
				if err != nil {
					return
				}
				feed <- chunk
			}
		})
		rig.clients = append(rig.clients, cli)
		rig.feeds = append(rig.feeds, feed)
	}
	waitFor(t, 5*time.Second, func() bool { return len(rig.server.peer.Channels()) == n })
	return rig
}

// Note: collectors above are registered on the CLIENT channel — streams
// opened by the server's Broadcaster arrive there.
func (rig *bcastRig) subscribeAll(t *testing.T, b *Broadcaster) []*Subscription {
	t.Helper()
	var subs []*Subscription
	for _, sc := range rig.server.peer.Channels() {
		sub, err := b.Subscribe(sc, nil)
		if err != nil {
			t.Fatalf("Subscribe: %v", err)
		}
		subs = append(subs, sub)
	}
	return subs
}

// TestBroadcasterFanOut: one publish reaches every subscriber intact and
// in order, and the payload is encoded once per publish — not once per
// subscriber (the delivered counter proves the sends still happened).
func TestBroadcasterFanOut(t *testing.T) {
	const subs, msgs = 3, 5
	rig := newBcastRig(t, subs, false, nil)
	b := NewBroadcaster("cards", BroadcasterConfig{Obs: rig.server.peer.cfg.Obs})
	defer b.Close()
	rig.subscribeAll(t, b)
	if got := b.Subscribers(); got != subs {
		t.Fatalf("Subscribers = %d, want %d", got, subs)
	}

	encodesBefore := b.encodes.Value()
	deliveredBefore := b.delivered.Value()
	for i := 0; i < msgs; i++ {
		b.Publish("card", pat(2048, byte(i)))
	}
	for _, feed := range rig.feeds {
		for i := 0; i < msgs; i++ {
			select {
			case chunk := <-feed:
				if !bytes.Equal(chunk, pat(2048, byte(i))) {
					t.Fatalf("subscriber saw corrupted/reordered message %d", i)
				}
			case <-time.After(5 * time.Second):
				t.Fatalf("subscriber starved at message %d", i)
			}
		}
	}
	// Encode-once: each 2KB publish is one segment, shared by all three
	// subscribers.
	if got := b.encodes.Value() - encodesBefore; got != msgs {
		t.Errorf("encodes = %d, want %d (one per publish, not per subscriber)", got, msgs)
	}
	waitFor(t, 5*time.Second, func() bool { return b.delivered.Value()-deliveredBefore == subs*msgs })
}

// TestBroadcasterHeaderAllocFree: the only per-subscriber encoding work
// is the frame header, and composing it allocates nothing.
func TestBroadcasterHeaderAllocFree(t *testing.T) {
	allocs := testing.AllocsPerRun(200, func() {
		var hdrBuf [16]byte
		hdr := wire.AppendStreamDataHeader(hdrBuf[:0], 123456, 16400)
		if len(hdr) == 0 {
			t.Fatal("empty header")
		}
	})
	if allocs != 0 {
		t.Errorf("per-subscriber header composition allocates %v times", allocs)
	}
}

// TestBroadcasterCoalescing: a stalled subscriber with a full queue
// keeps only the freshest revision of a key; when it finally drains, the
// last delivered card is the newest one published.
func TestBroadcasterCoalescing(t *testing.T) {
	const revisions = 50
	// One-segment window and no consumption: the sender goroutine jams
	// after the first message, so the queue fills and coalescing engages.
	rig := newBcastRig(t, 1, true, func(c *Config) { c.StreamWindowBytes = maxStreamFrame })
	b := NewBroadcaster("cards", BroadcasterConfig{Queue: 4, Obs: rig.server.peer.cfg.Obs})
	defer b.Close()
	sub := rig.subscribeAll(t, b)[0]

	payload := func(rev int) []byte { return pat(maxStreamFrame, byte(rev)) }
	deliveredBefore := b.delivered.Value()
	for i := 0; i < revisions; i++ {
		b.Publish("weather", payload(i))
	}
	waitFor(t, 5*time.Second, func() bool { return sub.Coalesced() > 0 })

	// Drain: open the gate and collect until the latest revision arrives.
	close(rig.gate)
	var last []byte
	deadline := time.After(10 * time.Second)
	for !bytes.Equal(last, payload(revisions-1)) {
		select {
		case chunk := <-rig.feeds[0]:
			last = chunk
		case <-deadline:
			t.Fatal("latest revision never delivered after coalescing")
		}
	}
	if sub.Coalesced()+sub.Dropped() == 0 {
		t.Error("stalled subscriber should have coalesced or dropped")
	}
	// Far fewer than `revisions` messages may actually be sent; the
	// queue bound guarantees it.
	if d := b.delivered.Value() - deliveredBefore; d > 4+2 {
		t.Errorf("delivered %d messages to a stalled subscriber; queue bound leaked", d)
	}
}

// TestBroadcasterDetachOnChannelClose: a dead subscriber link detaches
// its subscription without a publish having to fail first.
func TestBroadcasterDetachOnChannelClose(t *testing.T) {
	rig := newBcastRig(t, 2, false, nil)
	b := NewBroadcaster("cards", BroadcasterConfig{Obs: rig.server.peer.cfg.Obs})
	defer b.Close()
	subs := rig.subscribeAll(t, b)

	rig.server.peer.Channels()[0].Close()
	waitFor(t, 5*time.Second, func() bool { return b.Subscribers() == 1 })
	select {
	case <-subs[0].Done():
	case <-subs[1].Done():
	case <-time.After(5 * time.Second):
		t.Fatal("no subscription ended after channel close")
	}

	// The surviving subscriber still gets publishes.
	b.Publish("card", []byte("still-here"))
	gotOne := false
	for _, feed := range rig.feeds {
		select {
		case chunk := <-feed:
			if string(chunk) == "still-here" {
				gotOne = true
			}
		case <-time.After(2 * time.Second):
		}
	}
	if !gotOne {
		t.Error("surviving subscriber missed the publish")
	}
}

// TestBroadcasterCancelAndClose: Cancel detaches one subscriber; Close
// detaches the rest and further subscribes fail.
func TestBroadcasterCancelAndClose(t *testing.T) {
	rig := newBcastRig(t, 2, false, nil)
	b := NewBroadcaster("cards", BroadcasterConfig{Obs: rig.server.peer.cfg.Obs})
	subs := rig.subscribeAll(t, b)

	subs[0].Cancel()
	waitFor(t, 5*time.Second, func() bool { return b.Subscribers() == 1 })
	b.Close()
	if got := b.Subscribers(); got != 0 {
		t.Errorf("Subscribers after Close = %d", got)
	}
	if _, err := b.Subscribe(rig.server.peer.Channels()[0], nil); err == nil {
		t.Error("Subscribe after Close should fail")
	}
}
