package remote

import (
	"bytes"
	"context"
	"encoding/binary"
	"math/rand"
	"net"
	"testing"
	"time"

	"github.com/alfredo-mw/alfredo/internal/module"
	"github.com/alfredo-mw/alfredo/internal/netsim"
	"github.com/alfredo-mw/alfredo/internal/service"
	"github.com/alfredo-mw/alfredo/internal/wire"
)

// newCachedNode is newTestNode plus a chunk cache, enabling the
// chunked acquisition path on the requesting side.
func newCachedNode(t *testing.T, name string, budget int64) *testNode {
	t.Helper()
	n := newTestNode(t, name)
	cache, err := module.NewChunkCache(budget, "")
	if err != nil {
		t.Fatal(err)
	}
	n.peer.cfg.ChunkCache = cache
	return n
}

// bigPayloadService exports a service whose descriptor is n bytes of
// seeded random data: incompressible, so wire byte counts reflect the
// actual transfer volume.
func bigPayloadService(t *testing.T, n *testNode, size int, seed int64) *MethodTable {
	t.Helper()
	desc := make([]byte, size)
	rand.New(rand.NewSource(seed)).Read(desc)
	svc := NewService("test.Big").
		Method("Noop", nil, "void", func(args []any) (any, error) { return nil, nil }).
		WithDescriptor(desc)
	if _, err := n.fw.Registry().Register(
		[]string{"test.Big"}, svc, service.Properties{PropExported: true}, "test"); err != nil {
		t.Fatal(err)
	}
	return svc
}

// fetchBig runs one AcquireFetch of test.Big and returns the reply
// stats plus the fabric bytes the exchange moved.
func fetchBig(t *testing.T, fabric *netsim.Fabric, ch *Channel, extra ...*Channel) (FetchStats, int64) {
	t.Helper()
	info, ok := ch.FindRemoteService("test.Big")
	if !ok {
		t.Fatal("test.Big not in lease")
	}
	before := fabric.Stats().Bytes.Load()
	reply, stats, err := ch.AcquireFetch(context.Background(), info.ID, extra...)
	if err != nil {
		t.Fatalf("AcquireFetch: %v", err)
	}
	if len(reply.Interfaces) == 0 || reply.Interfaces[0].Name != "test.Big" {
		t.Fatalf("bad reply: %+v", reply)
	}
	return stats, fabric.Stats().Bytes.Load() - before
}

// TestAcquireWarmUnder10Percent is the headline acceptance check: a
// warm re-acquire of an unchanged service must move less than 10% of
// the cold-fetch bytes over the link (it needs only the manifest
// exchange).
func TestAcquireWarmUnder10Percent(t *testing.T) {
	server := newTestNode(t, "host")
	client := newCachedNode(t, "phone", 1<<20)
	bigPayloadService(t, server, 64<<10, 42)

	fabric := netsim.NewFabric()
	l, err := fabric.Listen(server.peer.ID())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = l.Close() })
	go func() { _ = server.peer.Serve(l) }()

	dial := func() *Channel {
		conn, err := fabric.Dial(server.peer.ID(), netsim.Loopback)
		if err != nil {
			t.Fatal(err)
		}
		ch, err := client.peer.Connect(conn)
		if err != nil {
			t.Fatal(err)
		}
		return ch
	}

	ch := dial()
	coldStats, coldBytes := fetchBig(t, fabric, ch)
	if coldStats.Mode != FetchModeCold {
		t.Fatalf("first fetch mode = %s, want cold", coldStats.Mode)
	}
	if coldBytes < 64<<10 {
		t.Fatalf("cold fetch moved %d bytes, expected at least the payload", coldBytes)
	}

	// New session, same node cache: the chunks survive the channel.
	ch.Close()
	ch2 := dial()
	t.Cleanup(ch2.Close)
	warmStats, warmBytes := fetchBig(t, fabric, ch2)
	if warmStats.Mode != FetchModeWarm {
		t.Fatalf("re-acquire mode = %s, want warm", warmStats.Mode)
	}
	if warmStats.ChunksFetched != 0 || warmStats.BytesSaved != warmStats.BytesTotal {
		t.Fatalf("warm stats: %+v", warmStats)
	}
	if warmBytes*10 >= coldBytes {
		t.Fatalf("warm re-acquire moved %d bytes, cold moved %d: want < 10%%", warmBytes, coldBytes)
	}
	if err := client.peer.cfg.ChunkCache.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestAcquireDelta mutates part of the served payload between two
// acquisitions: the second must fetch only the changed chunks under a
// bumped manifest version.
func TestAcquireDelta(t *testing.T) {
	server := newTestNode(t, "host")
	client := newCachedNode(t, "phone", 1<<20)
	svc := bigPayloadService(t, server, 64<<10, 7)

	fabric := netsim.NewFabric()
	ch := connectPeers(t, fabric, server, client)

	coldStats, _ := fetchBig(t, fabric, ch)
	if coldStats.Mode != FetchModeCold {
		t.Fatalf("first fetch mode = %s", coldStats.Mode)
	}

	// Rewrite the final quarter of the descriptor: earlier chunks keep
	// their content and hashes.
	desc := make([]byte, 64<<10)
	rand.New(rand.NewSource(7)).Read(desc)
	rand.New(rand.NewSource(8)).Read(desc[48<<10:])
	svc.WithDescriptor(desc)

	deltaStats, _ := fetchBig(t, fabric, ch)
	if deltaStats.Mode != FetchModeDelta {
		t.Fatalf("second fetch mode = %s, want delta", deltaStats.Mode)
	}
	if deltaStats.ChunksFetched == 0 || deltaStats.ChunksFetched >= deltaStats.ChunksTotal {
		t.Fatalf("delta stats: %+v", deltaStats)
	}
	// Roughly a quarter changed; anything at or past half means the
	// delta diff is not working.
	if deltaStats.BytesFetched*2 >= deltaStats.BytesTotal {
		t.Fatalf("delta fetched %d of %d bytes", deltaStats.BytesFetched, deltaStats.BytesTotal)
	}
}

// connectPeers wires two test nodes over a given fabric.
func connectPeers(t *testing.T, fabric *netsim.Fabric, server, client *testNode) *Channel {
	t.Helper()
	l, err := fabric.Listen(server.peer.ID())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = l.Close() })
	go func() { _ = server.peer.Serve(l) }()
	conn, err := fabric.Dial(server.peer.ID(), netsim.Loopback)
	if err != nil {
		t.Fatal(err)
	}
	ch, err := client.peer.Connect(conn)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(ch.Close)
	return ch
}

// TestAcquireLegacyFallbacks: without a local cache, or against a peer
// that does not announce chunked serving, acquisition degrades to the
// legacy single-shot fetch.
func TestAcquireLegacyFallbacks(t *testing.T) {
	t.Run("no-cache", func(t *testing.T) {
		server := newTestNode(t, "host")
		client := newTestNode(t, "phone") // no ChunkCache
		bigPayloadService(t, server, 8<<10, 1)
		ch := connectPeers(t, netsim.NewFabric(), server, client)
		info, _ := ch.FindRemoteService("test.Big")
		reply, stats, err := ch.AcquireFetch(context.Background(), info.ID)
		if err != nil || stats.Mode != FetchModeLegacy || len(reply.Interfaces) == 0 {
			t.Fatalf("mode=%s err=%v", stats.Mode, err)
		}
	})
	t.Run("legacy-peer", func(t *testing.T) {
		server := newTestNode(t, "host")
		// Pose as a pre-chunking peer by overriding the capability.
		server.peer.cfg.HelloProps = map[string]any{propFetchChunked: false}
		client := newCachedNode(t, "phone", 1<<20)
		bigPayloadService(t, server, 8<<10, 2)
		ch := connectPeers(t, netsim.NewFabric(), server, client)
		info, _ := ch.FindRemoteService("test.Big")
		reply, stats, err := ch.AcquireFetch(context.Background(), info.ID)
		if err != nil || stats.Mode != FetchModeLegacy || len(reply.Interfaces) == 0 {
			t.Fatalf("mode=%s err=%v", stats.Mode, err)
		}
	})
}

// corruptingConn wraps a client conn and flips one byte in the Data
// field of the first CHUNK_DATA frame it relays inbound, simulating a
// payload corrupted in transit without desyncing the stream framing.
type corruptingConn struct {
	net.Conn
	pending []byte // parsed frames ready for the reader
	raw     []byte // bytes read but not yet frame-complete
	done    bool
}

func (c *corruptingConn) Read(p []byte) (int, error) {
	for len(c.pending) == 0 {
		buf := make([]byte, 32<<10)
		n, err := c.Conn.Read(buf)
		if n > 0 {
			c.raw = append(c.raw, buf[:n]...)
			c.extractFrames()
		}
		if err != nil {
			// Ship whatever is parsed first; the error resurfaces on
			// the next call once pending drains.
			if len(c.pending) == 0 {
				return 0, err
			}
			break
		}
	}
	n := copy(p, c.pending)
	c.pending = c.pending[n:]
	return n, nil
}

func (c *corruptingConn) extractFrames() {
	for len(c.raw) >= 4 {
		size := int(binary.BigEndian.Uint32(c.raw[:4]))
		if len(c.raw) < 4+size {
			return
		}
		frame := c.raw[:4+size]
		if !c.done && size > 0 && wire.MsgType(frame[4]) == wire.MsgChunkData {
			// Flip the final byte: the last field of CHUNK_DATA is the
			// chunk payload, so the frame still parses but the bytes
			// no longer hash to the advertised chunk key.
			frame[len(frame)-1] ^= 0xff
			c.done = true
		}
		c.pending = append(c.pending, frame...)
		c.raw = c.raw[4+size:]
	}
}

// TestAcquireCorruptChunkRefetch: a chunk whose bytes fail the hash is
// re-requested, never cached, and the acquisition still completes.
func TestAcquireCorruptChunkRefetch(t *testing.T) {
	server := newTestNode(t, "host")
	client := newCachedNode(t, "phone", 1<<20)
	bigPayloadService(t, server, 32<<10, 9)

	fabric := netsim.NewFabric()
	l, err := fabric.Listen(server.peer.ID())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = l.Close() })
	go func() { _ = server.peer.Serve(l) }()
	conn, err := fabric.Dial(server.peer.ID(), netsim.Loopback)
	if err != nil {
		t.Fatal(err)
	}
	ch, err := client.peer.Connect(&corruptingConn{Conn: conn})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(ch.Close)

	info, ok := ch.FindRemoteService("test.Big")
	if !ok {
		t.Fatal("test.Big not in lease")
	}
	reply, stats, err := ch.AcquireFetch(context.Background(), info.ID)
	if err != nil {
		t.Fatalf("AcquireFetch: %v", err)
	}
	if len(reply.Interfaces) == 0 {
		t.Fatal("empty reply")
	}
	if stats.Retransmits == 0 {
		t.Fatalf("corrupted chunk not counted as retransmit: %+v", stats)
	}
	cs := client.peer.cfg.ChunkCache.Stats()
	if cs.CorruptDropped == 0 {
		t.Fatalf("corrupt bytes never reached (or silently entered) the cache: %+v", cs)
	}
	if err := client.peer.cfg.ChunkCache.Validate(); err != nil {
		t.Fatalf("cache poisoned: %v", err)
	}
}

// TestAcquireMultiChannel spreads the chunk windows across two links
// to the same host; a dead extra link is skipped, not fatal.
func TestAcquireMultiChannel(t *testing.T) {
	server := newTestNode(t, "host")
	client := newCachedNode(t, "phone", 1<<20)
	client.peer.cfg.FetchWindow = 2 // force several windows
	bigPayloadService(t, server, 64<<10, 11)

	fabric := netsim.NewFabric()
	l, err := fabric.Listen(server.peer.ID())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = l.Close() })
	go func() { _ = server.peer.Serve(l) }()
	dial := func() *Channel {
		conn, err := fabric.Dial(server.peer.ID(), netsim.Loopback)
		if err != nil {
			t.Fatal(err)
		}
		ch, err := client.peer.Connect(conn)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(ch.Close)
		return ch
	}
	primary, second, dead := dial(), dial(), dial()
	dead.Close()

	stats, _ := fetchBig(t, fabric, primary, second, dead)
	if stats.Mode != FetchModeCold || stats.ChunksFetched != stats.ChunksTotal {
		t.Fatalf("stats: %+v", stats)
	}
}

// TestChunkCompressionRoundTrip covers the per-chunk compression
// heuristic and its inverse.
func TestChunkCompressionRoundTrip(t *testing.T) {
	compressible := bytes.Repeat([]byte("alfredo bundle data "), 400)
	z, ok := compressChunk(compressible)
	if !ok || len(z) >= len(compressible) {
		t.Fatalf("compressible data not compressed (ok=%v, %d -> %d)", ok, len(compressible), len(z))
	}
	out, err := expandChunk(&wire.ChunkData{Hash: "h", Compressed: true, Data: z}, int64(len(compressible)))
	if err != nil || !bytes.Equal(out, compressible) {
		t.Fatalf("round trip failed: %v", err)
	}

	random := make([]byte, 8192)
	rand.New(rand.NewSource(3)).Read(random)
	if _, ok := compressChunk(random); ok {
		t.Fatal("high-entropy data should skip compression")
	}
	if len(random) < 64 {
		t.Fatal("bad test setup")
	}
	if _, ok := compressChunk(random[:32]); ok {
		t.Fatal("tiny chunks should skip compression")
	}
}

// TestAcquireCompressibleSavesWire: a compressible payload moves far
// fewer bytes than its size even on a cold fetch.
func TestAcquireCompressibleSavesWire(t *testing.T) {
	server := newTestNode(t, "host")
	client := newCachedNode(t, "phone", 1<<20)
	desc := bytes.Repeat([]byte("categories and items all the way down; "), 1600) // ~62 KB
	svc := NewService("test.Big").
		Method("Noop", nil, "void", func(args []any) (any, error) { return nil, nil }).
		WithDescriptor(desc)
	if _, err := server.fw.Registry().Register(
		[]string{"test.Big"}, svc, service.Properties{PropExported: true}, "test"); err != nil {
		t.Fatal(err)
	}
	fabric := netsim.NewFabric()
	ch := connectPeers(t, fabric, server, client)

	stats, wireBytes := fetchBig(t, fabric, ch)
	if stats.Mode != FetchModeCold {
		t.Fatalf("mode = %s", stats.Mode)
	}
	if wireBytes*2 >= stats.BytesTotal {
		t.Fatalf("compressible cold fetch moved %d wire bytes for a %d byte artifact",
			wireBytes, stats.BytesTotal)
	}
}

// TestStreamWriterSingleCopy guards the pooled-buffer stream write
// path: the bytes arrive intact and the writer does not retain p.
func TestStreamWriterSingleCopy(t *testing.T) {
	server := newTestNode(t, "host")
	client := newTestNode(t, "phone")

	ch := connectPeers(t, netsim.NewFabric(), server, client)

	got := make(chan []byte, 1)
	serverChans := server.peer.Channels()
	if len(serverChans) != 1 {
		t.Fatalf("server channels = %d", len(serverChans))
	}
	serverChans[0].HandleStreams(func(r *StreamReader) {
		chunk, err := r.Next()
		if err == nil {
			got <- chunk
		}
	})

	w, err := ch.OpenStream("s", nil)
	if err != nil {
		t.Fatal(err)
	}
	payload := []byte("stream payload through pooled encode buffer")
	sent := append([]byte(nil), payload...)
	if _, err := w.Write(sent); err != nil {
		t.Fatal(err)
	}
	// Scribble over the caller's slice immediately: the write must have
	// already copied it into the frame.
	for i := range sent {
		sent[i] = 0
	}
	select {
	case chunk := <-got:
		if !bytes.Equal(chunk, payload) {
			t.Fatalf("received %q, want %q", chunk, payload)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("stream chunk never arrived")
	}
	_ = w.Close()
}
