// Package remote implements distributed services on top of the module
// framework — the R-OSGi analog (paper §2). Peers connect over any
// net.Conn transport (TCP or the netsim fabric), exchange symmetric
// leases describing their exported services, ship service interfaces on
// demand, and synthesize local proxy bundles through which remote
// services are invoked as if they were local.
//
// The package also carries the R-OSGi extras AlfredO relies on:
// asynchronous remote events bridged through the event admin, smart
// proxies (content-addressed client-side code with remote fallback),
// transparent byte streams for high-volume data, and ping probes.
package remote

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"github.com/alfredo-mw/alfredo/internal/wire"
)

// Remote layer errors.
var (
	ErrNoSuchService  = errors.New("remote: no such service")
	ErrNoSuchMethod   = errors.New("remote: no such method")
	ErrBadArgs        = errors.New("remote: arguments do not match method signature")
	ErrChannelClosed  = errors.New("remote: channel closed")
	ErrTimeout        = errors.New("remote: invocation timed out")
	ErrBadHandshake   = errors.New("remote: handshake failed")
	ErrRemoteFailure  = errors.New("remote: remote invocation failed")
	ErrNotExportable  = errors.New("remote: service does not implement remote.Service")
	ErrDuplicateProxy = errors.New("remote: proxy code already registered")
	// ErrOverloaded is a serve-side admission rejection (admission.go).
	// It is issued before any service code runs, so a call failing with
	// it has definitely not executed — every invoke path, including the
	// non-idempotent one, retries it with backoff.
	ErrOverloaded = errors.New("remote: overloaded")
)

// Service is the invocable form of an exportable service: a
// self-describing method table. Because Go cannot synthesize interface
// implementations at runtime, remote dispatch is name-based; Describe
// supplies the interface descriptor that ships to clients.
type Service interface {
	Describe() wire.InterfaceDesc
	Invoke(method string, args []any) (any, error)
}

// DescriptorProvider optionally attaches an opaque service descriptor
// (the AlfredO UI/controller/dependency description, §3.2) that ships
// inside ServiceReply.
type DescriptorProvider interface {
	ServiceDescriptor() []byte
}

// TypeProvider optionally ships composite type descriptors alongside
// the interface (type injection, §2.2).
type TypeProvider interface {
	InjectedTypes() []wire.TypeDesc
}

// SmartProxyProvider optionally names client-side proxy code (§2.2
// smart proxies).
type SmartProxyProvider interface {
	SmartProxy() *wire.SmartProxyRef
}

// MethodFunc implements one service method over normalized wire values.
type MethodFunc func(args []any) (any, error)

// MethodTable is a builder-style Service implementation. It validates
// invocation arguments against declared signatures before dispatch.
type MethodTable struct {
	name    string
	mu      sync.RWMutex
	order   []string
	methods map[string]tableMethod

	descriptor []byte
	types      []wire.TypeDesc
	smart      *wire.SmartProxyRef
}

type tableMethod struct {
	desc wire.MethodDesc
	fn   MethodFunc
}

var (
	_ Service            = (*MethodTable)(nil)
	_ DescriptorProvider = (*MethodTable)(nil)
	_ TypeProvider       = (*MethodTable)(nil)
	_ SmartProxyProvider = (*MethodTable)(nil)
)

// NewService creates an empty method table published under the given
// interface name.
func NewService(interfaceName string) *MethodTable {
	return &MethodTable{
		name:    interfaceName,
		methods: make(map[string]tableMethod),
	}
}

// Method declares a method with its argument wire types (see
// wire.TypeName) and return wire type ("void" for none), and its
// implementation. It returns the table for chaining and panics on a
// duplicate name (a programming error).
func (t *MethodTable) Method(name string, argTypes []string, returnType string, fn MethodFunc) *MethodTable {
	t.mu.Lock()
	defer t.mu.Unlock()
	if _, dup := t.methods[name]; dup {
		panic(fmt.Sprintf("remote: method %s.%s declared twice", t.name, name))
	}
	if fn == nil {
		panic(fmt.Sprintf("remote: method %s.%s has no implementation", t.name, name))
	}
	t.methods[name] = tableMethod{
		desc: wire.MethodDesc{Name: name, Args: argTypes, Return: returnType},
		fn:   fn,
	}
	t.order = append(t.order, name)
	return t
}

// WithDescriptor attaches the AlfredO service descriptor.
func (t *MethodTable) WithDescriptor(d []byte) *MethodTable {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.descriptor = d
	return t
}

// WithTypes attaches injected type descriptors.
func (t *MethodTable) WithTypes(types ...wire.TypeDesc) *MethodTable {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.types = append(t.types, types...)
	return t
}

// WithSmartProxy attaches a smart proxy reference.
func (t *MethodTable) WithSmartProxy(ref *wire.SmartProxyRef) *MethodTable {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.smart = ref
	return t
}

// Describe implements Service.
func (t *MethodTable) Describe() wire.InterfaceDesc {
	t.mu.RLock()
	defer t.mu.RUnlock()
	d := wire.InterfaceDesc{Name: t.name, Methods: make([]wire.MethodDesc, 0, len(t.order))}
	for _, n := range t.order {
		d.Methods = append(d.Methods, t.methods[n].desc)
	}
	return d
}

// Invoke implements Service: it validates args against the declared
// signature and dispatches.
func (t *MethodTable) Invoke(method string, args []any) (any, error) {
	t.mu.RLock()
	m, ok := t.methods[method]
	t.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("%w: %s.%s", ErrNoSuchMethod, t.name, method)
	}
	if err := CheckArgs(m.desc, args); err != nil {
		return nil, err
	}
	return m.fn(args)
}

// ServiceDescriptor implements DescriptorProvider.
func (t *MethodTable) ServiceDescriptor() []byte {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.descriptor
}

// InjectedTypes implements TypeProvider.
func (t *MethodTable) InjectedTypes() []wire.TypeDesc {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.types
}

// SmartProxy implements SmartProxyProvider.
func (t *MethodTable) SmartProxy() *wire.SmartProxyRef {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.smart
}

// CheckArgs validates normalized argument values against a method
// descriptor. The "any" wire type accepts every value.
func CheckArgs(desc wire.MethodDesc, args []any) error {
	if len(args) != len(desc.Args) {
		return fmt.Errorf("%w: %s takes %d args, got %d", ErrBadArgs, desc.Name, len(desc.Args), len(args))
	}
	for i, want := range desc.Args {
		if want == "any" {
			continue
		}
		got := wire.TypeName(args[i])
		if got != want && !(args[i] == nil) {
			return fmt.Errorf("%w: %s arg %d is %s, want %s", ErrBadArgs, desc.Name, i, got, want)
		}
	}
	return nil
}

// Invoker is the minimal remote-invocation capability handed to smart
// proxy code for its fall-through methods.
type Invoker interface {
	Invoke(method string, args []any) (any, error)
}

// ProxyCode is client-side smart proxy logic. Locally implemented
// methods run in-process; the code may delegate to remoteCall for
// anything else.
type ProxyCode interface {
	Invoke(method string, args []any, remoteCall Invoker) (any, error)
}

// ProxyCodeFactory creates a ProxyCode instance per proxy.
type ProxyCodeFactory func() ProxyCode

// ProxyCodeRegistry holds pre-installed smart proxy code, keyed by the
// content-addressed reference that arrives in SmartProxyRef.CodeRef
// (DESIGN.md §2: the trusted smart-proxy distribution model).
type ProxyCodeRegistry struct {
	mu        sync.RWMutex
	factories map[string]ProxyCodeFactory
}

// NewProxyCodeRegistry creates an empty registry.
func NewProxyCodeRegistry() *ProxyCodeRegistry {
	return &ProxyCodeRegistry{factories: make(map[string]ProxyCodeFactory)}
}

// Register installs proxy code under ref.
func (r *ProxyCodeRegistry) Register(ref string, f ProxyCodeFactory) error {
	if ref == "" || f == nil {
		return fmt.Errorf("remote: invalid proxy code registration %q", ref)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.factories[ref]; dup {
		return fmt.Errorf("%w: %s", ErrDuplicateProxy, ref)
	}
	r.factories[ref] = f
	return nil
}

// Lookup resolves a proxy code reference.
func (r *ProxyCodeRegistry) Lookup(ref string) (ProxyCodeFactory, bool) {
	if r == nil {
		return nil, false
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	f, ok := r.factories[ref]
	return f, ok
}

// Refs lists registered references, sorted.
func (r *ProxyCodeRegistry) Refs() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.factories))
	for k := range r.factories {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
