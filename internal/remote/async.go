package remote

// Pipelined invocations. InvokeAsync ships the Invoke frame and returns
// a Call future immediately, so a client can keep many invocations in
// flight on one channel and overlap their round-trip times — the wire
// analog of HTTP pipelining. Combined with write coalescing in
// sendFrame, a burst of InvokeAsync calls lands on the transport as a
// handful of large writes instead of one write per frame.

import (
	"context"
	"fmt"
	"sync"
	"time"

	"github.com/alfredo-mw/alfredo/internal/obs"
)

// Call is an in-flight pipelined invocation started by InvokeAsync.
// Wait resolves it; a Call must be resolved exactly by one Wait (or via
// CollectResults) to release its telemetry span.
type Call struct {
	c        *Channel
	method   string
	id       int64
	ch       chan callResult
	so       *svcObs
	span     *obs.Span
	start    time.Time
	deadline time.Time

	mu    sync.Mutex
	done  bool
	value any
	err   error
}

// InvokeAsync starts a remote invocation without waiting for its
// result. The returned Call is resolved with Wait. Errors that occur
// before the frame is sent (bad arguments, closed channel) surface on
// Wait, never here, so call sites can fire a batch unconditionally and
// collect afterwards.
func (c *Channel) InvokeAsync(serviceID int64, method string, args []any) *Call {
	return c.InvokeAsyncCtx(context.Background(), serviceID, method, args)
}

// InvokeAsyncCtx is InvokeAsync with trace propagation: the call joins
// the span carried by ctx, like InvokeCtx.
func (c *Channel) InvokeAsyncCtx(ctx context.Context, serviceID int64, method string, args []any) *Call {
	so := c.invokeObs(serviceID)
	start := time.Now()
	_, span := c.obsHub().Tracer.Start(ctx, "rpc.invoke")
	span.SetAttr("method", method)
	call := &Call{
		c:      c,
		method: method,
		so:     so,
		span:   span,
		start:  start,
		// The deadline lives on the channel's clock (virtual in
		// simulation); start stays wall time for telemetry latencies.
		deadline: c.clock().Now().Add(c.peer.cfg.Timeout),
	}
	norm, err := normalizeArgs(method, args)
	if err != nil {
		call.done, call.err = true, err
		call.finishObs(err)
		return call
	}
	id, ch, err := c.sendInvoke(span, serviceID, method, norm)
	if err != nil {
		call.done, call.err = true, err
		call.finishObs(err)
		return call
	}
	call.id, call.ch = id, ch
	return call
}

// finishObs records the call's telemetry exactly once, at resolution.
func (call *Call) finishObs(err error) {
	call.so.calls.Inc()
	if err != nil {
		call.so.errors.Inc()
	}
	call.so.lat.ObserveSince(call.start)
	call.span.Fail(err)
	call.span.Finish()
}

// Wait blocks until the invocation resolves (result, error, timeout, or
// channel teardown) and returns its outcome. Wait is idempotent: later
// calls return the cached outcome.
func (call *Call) Wait() (any, error) {
	call.mu.Lock()
	defer call.mu.Unlock()
	if call.done {
		return call.value, call.err
	}
	call.done = true
	c := call.c

	timer := c.clock().NewTimer(c.clock().Until(call.deadline))
	defer timer.Stop()
	select {
	case res := <-call.ch:
		call.value, call.err = res.value, res.err
	case <-timer.C:
		c.dropPendingCall(call.id)
		call.err = fmt.Errorf("%w: %s after %v", ErrTimeout, call.method, c.peer.cfg.Timeout)
	case <-c.closed:
		c.dropPendingCall(call.id)
		call.err = ErrChannelClosed
	}
	call.finishObs(call.err)
	return call.value, call.err
}

// CollectResults waits for every call and returns their values in
// order, along with the first error encountered. All calls are resolved
// even when an early one fails, so no telemetry span or pending-call
// entry is left dangling.
func CollectResults(calls []*Call) ([]any, error) {
	values := make([]any, len(calls))
	var firstErr error
	for i, call := range calls {
		v, err := call.Wait()
		values[i] = v
		if err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return values, firstErr
}
