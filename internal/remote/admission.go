package remote

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"github.com/alfredo-mw/alfredo/internal/obs"
	"github.com/alfredo-mw/alfredo/internal/sim/clock"
	"github.com/alfredo-mw/alfredo/internal/stripe"
)

// Serve-side admission control with per-tenant fairness.
//
// A host serving many tenants must not let one hot tenant starve the
// rest, and must shed load it cannot carry *before* spending service
// CPU on it. Admission runs at the top of the invoke handler: a
// rejected call has executed nothing, so the phone side may retry it
// freely — even for non-idempotent methods — which is why ErrOverloaded
// is the one failure the plain Invoke path retries.
//
// Two limits compose:
//
//   - A per-tenant token bucket (RatePerSec × weight, depth
//     Burst × weight) bounds sustained request rate per tenant.
//
//   - A global MaxInFlight bound with work-conserving weighted shares:
//     tenant t may hold up to
//         share(t) = MaxInFlight × w(t) / Σ w(active tenants)
//     concurrent invocations, where "active" means tenants with at
//     least one call in flight. A lone tenant therefore gets the whole
//     host (work conservation); when others show up, its share shrinks
//     toward its weighted fraction.
//
// Counters are labeled by rejection reason, never by tenant — with
// 100k tenants a per-tenant label would blow up the metric registry.

// AdmissionPolicy configures serve-side admission control.
type AdmissionPolicy struct {
	// MaxInFlight bounds concurrent inbound invocations across all
	// tenants; zero or negative disables the in-flight bound.
	MaxInFlight int
	// RatePerSec is the sustained invocations-per-second budget per
	// weight unit; a tenant of weight w refills at RatePerSec×w. Zero
	// disables rate limiting.
	RatePerSec float64
	// Burst is the token-bucket depth per weight unit; zero selects
	// max(RatePerSec, 1).
	Burst float64
	// Weights assigns per-tenant weights; tenants not listed get
	// DefaultWeight. A zero or negative weight rejects every call from
	// that tenant — the explicit "shut this tenant off" switch.
	Weights map[string]int
	// DefaultWeight applies to tenants absent from Weights; zero
	// selects 1.
	DefaultWeight int
	// MaxTenants bounds the number of distinct tenant states the
	// controller tracks; zero selects DefaultMaxTenants. Past the cap,
	// unseen tenant ids share one overflow state (named OverflowTenant)
	// so a hostile tenant-id stream cannot grow memory without bound —
	// they still get admitted, just under a shared budget.
	MaxTenants int
}

// DefaultMaxTenants is the default bound on tracked tenant states.
const DefaultMaxTenants = 8192

// OverflowTenant is the shared tenant state that absorbs tenant ids
// first seen after the MaxTenants cap is reached.
const OverflowTenant = "other"

// Admission rejection reasons (the low-cardinality metric label).
const (
	RejectZeroWeight = "zero_weight"
	RejectRate       = "rate"
	RejectShare      = "share"
	RejectCapacity   = "capacity"
)

type tenantState struct {
	weight atomic.Int64

	// inFlight is this tenant's concurrent invocation count; the 0↔1
	// transitions move the tenant's weight in and out of the
	// active-weight sum.
	inFlight atomic.Int64

	// Token bucket, guarded by mu; tokens are in invocation units.
	mu     sync.Mutex
	tokens float64
	last   time.Time
	primed bool
}

// Admission is the serve-side admission controller. All methods are
// safe for concurrent use; tenant state is striped so admission itself
// does not become the global lock it exists to prevent.
type Admission struct {
	pol AdmissionPolicy
	clk clock.Clock

	maxInFlight  atomic.Int64 // runtime-adjustable copy of pol.MaxInFlight
	inFlight     atomic.Int64
	activeWeight atomic.Int64

	// shedMilli is the health-driven shed factor in thousandths: the
	// effective in-flight limit is maxInFlight reduced by this fraction.
	// Zero means no shedding.
	shedMilli atomic.Int64

	tenants *stripe.Map[string, *tenantState]

	admitted  *obs.Counter
	gauge     *obs.Gauge
	shedGauge *obs.Gauge
	rejects   map[string]*obs.Counter
}

// NewAdmission builds a controller from pol on the given clock (token
// refills — and therefore rejections — are deterministic under a
// virtual clock).
func NewAdmission(pol AdmissionPolicy, clk clock.Clock, m *obs.Registry) *Admission {
	if pol.DefaultWeight == 0 {
		pol.DefaultWeight = 1
	}
	if pol.Burst <= 0 {
		pol.Burst = pol.RatePerSec
		if pol.Burst < 1 {
			pol.Burst = 1
		}
	}
	if pol.MaxTenants <= 0 {
		pol.MaxTenants = DefaultMaxTenants
	}
	a := &Admission{
		pol:       pol,
		clk:       clock.Or(clk),
		tenants:   stripe.NewMap[string, *tenantState](stripe.DefaultShards(), stripe.StringHash),
		admitted:  m.Counter("alfredo_remote_admission_admitted_total"),
		gauge:     m.Gauge("alfredo_remote_admission_inflight"),
		shedGauge: m.Gauge("alfredo_remote_admission_shed_milli"),
		rejects:   make(map[string]*obs.Counter, 4),
	}
	for _, reason := range []string{RejectZeroWeight, RejectRate, RejectShare, RejectCapacity} {
		a.rejects[reason] = m.Counter("alfredo_remote_admission_rejected_total", "reason", reason)
	}
	a.maxInFlight.Store(int64(pol.MaxInFlight))
	return a
}

func (a *Admission) tenant(name string) *tenantState {
	if ts, ok := a.tenants.Get(name); ok {
		return ts
	}
	// Cardinality cap: tenant ids first seen at the cap collapse onto
	// the shared overflow state instead of growing the map. The overflow
	// state itself is created through the normal path (the recursion
	// terminates because its entry, once present, hits the Get above).
	if name != OverflowTenant && a.tenants.Len() >= a.pol.MaxTenants {
		return a.tenant(OverflowTenant)
	}
	fresh := &tenantState{}
	w := a.pol.DefaultWeight
	if cw, ok := a.pol.Weights[name]; ok {
		w = cw
	}
	fresh.weight.Store(int64(w))
	ts, _ := a.tenants.Update(name, func(old *tenantState, ok bool) (*tenantState, bool) {
		if ok {
			return old, true
		}
		return fresh, true
	})
	return ts
}

func (a *Admission) reject(reason, tenant string) error {
	a.rejects[reason].Inc()
	return fmt.Errorf("%w: tenant %s rejected (%s)", ErrOverloaded, tenant, reason)
}

// Admit decides one inbound invocation for the named tenant. On
// success it returns a release function the handler must call when the
// invocation finishes; on overload it returns an error wrapping
// ErrOverloaded, and nothing has been consumed except a rate token.
func (a *Admission) Admit(tenant string) (func(), error) {
	ts := a.tenant(tenant)
	w := ts.weight.Load()
	if w <= 0 {
		return nil, a.reject(RejectZeroWeight, tenant)
	}

	if a.pol.RatePerSec > 0 && !ts.takeToken(a.clk, a.pol.RatePerSec*float64(w), a.pol.Burst*float64(w)) {
		return nil, a.reject(RejectRate, tenant)
	}

	max := a.maxInFlight.Load()
	if max <= 0 {
		// No in-flight bound: only the rate limiter applies.
		a.admitted.Inc()
		return func() {}, nil
	}
	// Health-driven shedding narrows the effective capacity before the
	// share math, so overload pressure reduces every tenant's share
	// proportionally instead of only rejecting at the global rim.
	if shed := a.shedMilli.Load(); shed > 0 {
		max -= max * shed / 1000
		if max < 1 {
			max = 1
		}
	}

	// Tenant joins the active set for the duration of its first call.
	nf := ts.inFlight.Add(1)
	if nf == 1 {
		a.activeWeight.Add(w)
	}
	undoTenant := func() {
		if ts.inFlight.Add(-1) == 0 {
			a.activeWeight.Add(-w)
		}
	}

	active := a.activeWeight.Load()
	if active < w {
		active = w
	}
	share := max * w / active
	if share < 1 {
		share = 1 // every admitted tenant may always run one call
	}
	if nf > share {
		undoTenant()
		return nil, a.reject(RejectShare, tenant)
	}

	if a.inFlight.Add(1) > max {
		a.inFlight.Add(-1)
		undoTenant()
		return nil, a.reject(RejectCapacity, tenant)
	}
	a.gauge.Add(1)
	a.admitted.Inc()

	var once sync.Once
	return func() {
		once.Do(func() {
			a.inFlight.Add(-1)
			a.gauge.Add(-1)
			undoTenant()
		})
	}, nil
}

// takeToken refills the bucket from elapsed clock time and consumes one
// token if available. A fresh tenant starts with a full bucket.
func (ts *tenantState) takeToken(clk clock.Clock, rate, burst float64) bool {
	ts.mu.Lock()
	defer ts.mu.Unlock()
	now := clk.Now()
	if !ts.primed {
		ts.tokens = burst
		ts.primed = true
	} else if el := now.Sub(ts.last).Seconds(); el > 0 {
		ts.tokens += el * rate
	}
	ts.last = now
	if ts.tokens > burst {
		ts.tokens = burst
	}
	if ts.tokens < 1 {
		return false
	}
	ts.tokens--
	return true
}

// InFlight returns the current admitted-call count.
func (a *Admission) InFlight() int { return int(a.inFlight.Load()) }

// MaxInFlight returns the current global in-flight limit.
func (a *Admission) MaxInFlight() int { return int(a.maxInFlight.Load()) }

// SetMaxInFlight changes the global in-flight limit at runtime.
// Lowering it below the current in-flight count rejects new admissions
// until enough calls drain — running calls are never cancelled.
func (a *Admission) SetMaxInFlight(n int) { a.maxInFlight.Store(int64(n)) }

// SetWeight changes a tenant's weight at runtime. Weight 0 (or less)
// shuts the tenant off: every subsequent call is rejected.
func (a *Admission) SetWeight(tenant string, w int) {
	a.tenant(tenant).weight.Store(int64(w))
}

// Tenants returns the number of distinct tenant states tracked
// (bounded by AdmissionPolicy.MaxTenants).
func (a *Admission) Tenants() int { return a.tenants.Len() }

// SetShedFactor sets the health-driven shed fraction in [0, 1): the
// effective in-flight capacity becomes MaxInFlight × (1 - f). The
// health scorer drives this from its overload score; 0 restores full
// capacity. Values are clamped; shedding never drops capacity below
// one in-flight call.
func (a *Admission) SetShedFactor(f float64) {
	switch {
	case f < 0 || f != f: // negative or NaN
		f = 0
	case f > 0.99:
		f = 0.99
	}
	milli := int64(f * 1000)
	a.shedMilli.Store(milli)
	a.shedGauge.Set(milli)
}

// ShedFactor returns the current shed fraction.
func (a *Admission) ShedFactor() float64 {
	return float64(a.shedMilli.Load()) / 1000
}
