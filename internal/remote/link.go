package remote

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"github.com/alfredo-mw/alfredo/internal/obs"
)

// ErrLinkDown is returned once a Link has exhausted its reconnect
// budget: the target is considered unreachable until a new link is
// established explicitly.
var ErrLinkDown = errors.New("remote: link down: reconnect budget exhausted")

// LinkState is the lifecycle of a resilient link.
type LinkState int

const (
	// LinkUp means the channel is established and usable.
	LinkUp LinkState = iota
	// LinkReconnecting means the channel dropped and redial attempts
	// are in progress.
	LinkReconnecting
	// LinkDown means the reconnect budget was exhausted; the link is
	// terminal.
	LinkDown
	// LinkClosed means the link was closed deliberately.
	LinkClosed
)

func (s LinkState) String() string {
	switch s {
	case LinkUp:
		return "up"
	case LinkReconnecting:
		return "reconnecting"
	case LinkDown:
		return "down"
	case LinkClosed:
		return "closed"
	}
	return fmt.Sprintf("state(%d)", int(s))
}

// Dialer produces a fresh transport connection to the same target; a
// Link calls it for the initial connection and for every reconnect.
type Dialer func() (net.Conn, error)

// Link is a self-healing channel: it watches the underlying Channel,
// and when the transport fails it redials with exponential backoff and
// jitter, re-runs the handshake, and re-establishes the symmetric lease
// (§3.2) — all within the policy's reconnect budget. State transitions
// are published to watchers; the core layer uses them to degrade and
// recover sessions.
type Link struct {
	peer   *Peer
	dial   Dialer
	policy RetryPolicy

	mu       sync.Mutex
	ch       *Channel
	state    LinkState
	err      error
	changed  chan struct{}
	watchers []func(LinkState, *Channel)

	stop chan struct{}
	done chan struct{}
}

// DialLink establishes a resilient link using the peer's retry policy:
// dial makes the initial connection now and is retained for automatic
// reconnection. The initial dial is not retried — a target that was
// never reachable is an error, not an outage.
func (p *Peer) DialLink(dial Dialer) (*Link, error) {
	conn, err := dial()
	if err != nil {
		return nil, err
	}
	ch, err := p.setupChannel(conn, true)
	if err != nil {
		_ = conn.Close()
		return nil, err
	}
	l := &Link{
		peer:    p,
		dial:    dial,
		policy:  p.cfg.Retry,
		ch:      ch,
		state:   LinkUp,
		changed: make(chan struct{}),
		stop:    make(chan struct{}),
		done:    make(chan struct{}),
	}
	go l.monitor(ch)
	return l, nil
}

// Policy returns the retry policy governing this link.
func (l *Link) Policy() RetryPolicy { return l.policy }

// Channel returns the current channel. During reconnection it is the
// last (closed) channel; check State before relying on it.
func (l *Link) Channel() *Channel {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.ch
}

// State returns the current link state.
func (l *Link) State() LinkState {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.state
}

// Err returns the cause of the last transition into LinkReconnecting or
// LinkDown (nil while the link has never failed).
func (l *Link) Err() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.err
}

// OnStateChange registers a watcher invoked (sequentially, from the
// link's monitor goroutine) on every state transition. On LinkUp the
// new channel is passed; on other states the channel argument is nil.
func (l *Link) OnStateChange(fn func(LinkState, *Channel)) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.watchers = append(l.watchers, fn)
}

// StateAndWait returns the current state plus a channel closed at the
// next transition, for callers that need to block on recovery.
func (l *Link) StateAndWait() (LinkState, <-chan struct{}) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.state, l.changed
}

// Await blocks until the link is up (returning its channel) or
// terminally down/closed, but no longer than d.
func (l *Link) Await(d time.Duration) (*Channel, error) {
	deadline := l.peer.cfg.Clock.NewTimer(d)
	defer deadline.Stop()
	for {
		st, wait := l.StateAndWait()
		switch st {
		case LinkUp:
			// The transport may have died an instant ago, before the
			// monitor observed it; never hand out a dead channel.
			if ch := l.Channel(); ch != nil {
				select {
				case <-ch.Done():
				default:
					return ch, nil
				}
			}
		case LinkDown:
			return nil, fmt.Errorf("%w: %v", ErrLinkDown, l.Err())
		case LinkClosed:
			return nil, ErrChannelClosed
		}
		select {
		case <-wait:
		case <-deadline.C:
			return nil, fmt.Errorf("%w: not reconnected within %v", ErrLinkDown, d)
		}
	}
}

// Close tears the link down deliberately; no reconnection is attempted.
func (l *Link) Close() {
	l.mu.Lock()
	if l.state == LinkClosed {
		l.mu.Unlock()
		return
	}
	l.state = LinkClosed
	ch := l.ch
	close(l.stop)
	close(l.changed)
	l.changed = make(chan struct{})
	l.mu.Unlock()
	if ch != nil {
		ch.Close()
	}
	<-l.done
}

func (l *Link) setState(st LinkState, ch *Channel, cause error) {
	l.mu.Lock()
	if l.state == LinkClosed {
		l.mu.Unlock()
		return
	}
	l.state = st
	if ch != nil {
		l.ch = ch
	}
	if cause != nil || st == LinkUp {
		l.err = cause
	}
	close(l.changed)
	l.changed = make(chan struct{})
	watchers := make([]func(LinkState, *Channel), len(l.watchers))
	copy(watchers, l.watchers)
	l.mu.Unlock()
	for _, fn := range watchers {
		fn(st, ch)
	}
}

func (l *Link) closing() bool {
	select {
	case <-l.stop:
		return true
	default:
		return false
	}
}

// transitionCounter counts one link state transition on the peer's hub.
func (l *Link) transitionCounter(state LinkState) *obs.Counter {
	return l.peer.cfg.Obs.Metrics.Counter(
		"alfredo_remote_link_transitions_total", "state", state.String())
}

// monitor watches the current channel and drives the reconnect loop.
// Each reconnect episode is a trace of its own: a link.reconnect span
// annotated with every redial attempt, plus transition counters and a
// reconnect-duration histogram.
func (l *Link) monitor(ch *Channel) {
	defer close(l.done)
	for {
		select {
		case <-ch.Done():
		case <-l.stop:
			return
		}
		if l.closing() {
			return
		}
		l.setState(LinkReconnecting, nil, ch.Err())
		l.transitionCounter(LinkReconnecting).Inc()
		reconStart := time.Now()
		_, span := l.peer.cfg.Obs.Tracer.Start(context.Background(), "link.reconnect")
		span.SetAttr("node", l.peer.ID())
		if cause := ch.Err(); cause != nil {
			span.Annotate("link lost: " + cause.Error())
		}
		next, err := l.redial(span)
		if err != nil {
			if !l.closing() {
				l.setState(LinkDown, nil, err)
				l.transitionCounter(LinkDown).Inc()
			}
			span.Fail(err)
			span.Finish()
			return
		}
		ch = next
		l.setState(LinkUp, next, nil)
		l.transitionCounter(LinkUp).Inc()
		l.peer.cfg.Obs.Metrics.Histogram("alfredo_remote_reconnect_seconds").ObserveSince(reconStart)
		span.Finish()
	}
}

// redial re-establishes the channel: dial, handshake, lease exchange —
// retried with backoff until the reconnect budget runs out.
func (l *Link) redial(span *obs.Span) (*Channel, error) {
	clk := l.peer.cfg.Clock
	deadline := clk.Now().Add(l.policy.ReconnectBudget)
	redials := l.peer.cfg.Obs.Metrics.Counter("alfredo_remote_redials_total")
	var lastErr error
	for attempt := 0; ; attempt++ {
		if l.closing() {
			return nil, ErrChannelClosed
		}
		redials.Inc()
		conn, err := l.dial()
		if err == nil {
			ch, herr := l.peer.setupChannel(conn, true)
			if herr == nil {
				if span != nil {
					span.Annotate(fmt.Sprintf("redial attempt %d succeeded", attempt+1))
				}
				return ch, nil
			}
			_ = conn.Close()
			err = herr
		}
		if span != nil {
			span.Annotate(fmt.Sprintf("redial attempt %d failed: %v", attempt+1, err))
		}
		lastErr = err
		delay := l.peer.retryDelay(attempt)
		if clk.Now().Add(delay).After(deadline) {
			return nil, fmt.Errorf("%w: last error: %v", ErrLinkDown, lastErr)
		}
		t := clk.NewTimer(delay)
		select {
		case <-t.C:
		case <-l.stop:
			t.Stop()
			return nil, ErrChannelClosed
		}
	}
}
