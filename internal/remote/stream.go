package remote

import (
	"fmt"
	"io"
	"sync"

	"github.com/alfredo-mw/alfredo/internal/wire"
)

// streamBacklog bounds the per-stream receive queue. When the consumer
// falls behind, the oldest queued chunks are dropped — matching the
// paper's adaptive semantics for high-volume data ("the application ...
// sends updates whenever there is enough bandwidth", §5.1). Dropped
// counts are observable through StreamReader.Dropped.
const streamBacklog = 256

// StreamWriter is the sending end of a transparent stream proxy.
type StreamWriter struct {
	c  *Channel
	id int64

	mu     sync.Mutex
	closed bool
}

var _ io.WriteCloser = (*StreamWriter)(nil)

// OpenStream opens a named byte stream to the remote peer (§3.2:
// "high-volume data exchange through transparent stream proxies").
func (c *Channel) OpenStream(name string, props map[string]any) (*StreamWriter, error) {
	c.mu.Lock()
	c.nextID++
	id := c.nextID
	c.mu.Unlock()
	if err := c.send(&wire.StreamOpen{StreamID: id, Name: name, Props: props}); err != nil {
		return nil, err
	}
	return &StreamWriter{c: c, id: id}, nil
}

// Write ships one chunk. Writes after Close fail.
func (w *StreamWriter) Write(p []byte) (int, error) {
	w.mu.Lock()
	closed := w.closed
	w.mu.Unlock()
	if closed {
		return 0, fmt.Errorf("remote: write on closed stream %d", w.id)
	}
	// Encode straight from the caller's slice into a pooled frame
	// buffer: the encoder copies p into the frame, and the frame is
	// written out before this call returns, so the io.Writer contract
	// (p not retained) holds with exactly one copy.
	buf := wire.GetBuffer()
	frame, err := wire.EncodeInto(buf, &wire.StreamData{StreamID: w.id, Chunk: p})
	if err != nil {
		wire.PutBuffer(buf)
		return 0, err
	}
	err = w.c.sendFrame(frame)
	wire.PutBuffer(buf)
	if err != nil {
		return 0, err
	}
	return len(p), nil
}

// Close terminates the stream cleanly.
func (w *StreamWriter) Close() error {
	return w.closeWith("")
}

// Abort terminates the stream with an error reported to the reader.
func (w *StreamWriter) Abort(reason string) error {
	if reason == "" {
		reason = "aborted"
	}
	return w.closeWith(reason)
}

func (w *StreamWriter) closeWith(errMsg string) error {
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return nil
	}
	w.closed = true
	w.mu.Unlock()
	return w.c.send(&wire.StreamClose{StreamID: w.id, Err: errMsg})
}

// StreamReader is the receiving end of a stream: chunk-oriented, with
// an io.Reader view for byte consumers.
type StreamReader struct {
	Name  string
	Props map[string]any

	s        *inStream
	leftover []byte
}

// Next returns the next chunk, blocking until one arrives or the
// stream ends (io.EOF on clean close).
func (r *StreamReader) Next() ([]byte, error) {
	chunk, ok := <-r.s.ch
	if !ok {
		return nil, r.s.err()
	}
	return chunk, nil
}

// Read implements io.Reader over the chunk sequence.
func (r *StreamReader) Read(p []byte) (int, error) {
	if len(r.leftover) == 0 {
		chunk, err := r.Next()
		if err != nil {
			return 0, err
		}
		r.leftover = chunk
	}
	n := copy(p, r.leftover)
	r.leftover = r.leftover[n:]
	return n, nil
}

// Dropped reports chunks discarded because the consumer fell behind.
func (r *StreamReader) Dropped() int64 {
	r.s.mu.Lock()
	defer r.s.mu.Unlock()
	return r.s.dropped
}

type inStream struct {
	id int64
	ch chan []byte

	mu      sync.Mutex
	closed  bool
	errMsg  string
	failure error
	dropped int64
}

func (s *inStream) err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.failure != nil {
		return s.failure
	}
	if s.errMsg != "" {
		return fmt.Errorf("remote: stream %d: %s", s.id, s.errMsg)
	}
	return io.EOF
}

func (s *inStream) closeWith(err error) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	s.failure = err
	s.mu.Unlock()
	close(s.ch)
}

// HandleStreams registers the callback invoked (on its own goroutine)
// for every inbound stream. Only one handler is supported; later calls
// replace it for subsequently opened streams.
func (c *Channel) HandleStreams(fn func(r *StreamReader)) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.streamFn = func(name string, props map[string]any, r *StreamReader) {
		r.Name = name
		r.Props = props
		fn(r)
	}
}

func (c *Channel) handleStreamOpen(m *wire.StreamOpen) {
	s := &inStream{id: m.StreamID, ch: make(chan []byte, streamBacklog)}
	c.mu.Lock()
	c.streams[m.StreamID] = s
	fn := c.streamFn
	c.mu.Unlock()
	if fn == nil {
		return
	}
	reader := &StreamReader{s: s}
	c.wg.Add(1)
	go func() {
		defer c.wg.Done()
		fn(m.Name, m.Props, reader)
	}()
}

func (c *Channel) handleStreamData(m *wire.StreamData) {
	c.mu.Lock()
	s := c.streams[m.StreamID]
	c.mu.Unlock()
	if s == nil {
		return
	}
	// The lock is held across the channel sends so that closeWith (which
	// closes s.ch under the same lock) cannot race a send-on-closed.
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return
	}
	select {
	case s.ch <- m.Chunk:
	default:
		// Consumer is behind: drop the oldest chunk to make room, so
		// the stream stays fresh rather than ever-later (adaptive
		// snapshot semantics, §5.1).
		select {
		case <-s.ch:
		default:
		}
		s.dropped++
		select {
		case s.ch <- m.Chunk:
		default:
		}
	}
}

func (c *Channel) handleStreamClose(m *wire.StreamClose) {
	c.mu.Lock()
	s := c.streams[m.StreamID]
	delete(c.streams, m.StreamID)
	c.mu.Unlock()
	if s == nil {
		return
	}
	s.mu.Lock()
	s.errMsg = m.Err
	s.mu.Unlock()
	s.closeWith(nil)
}
