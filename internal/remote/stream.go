package remote

import (
	"fmt"
	"io"
	"sync"

	"github.com/alfredo-mw/alfredo/internal/wire"
)

// streamBacklog bounds the per-stream receive queue of unreliable (and
// legacy) streams. When the consumer falls behind, the oldest queued
// chunks are dropped — matching the paper's adaptive semantics for
// high-volume data ("the application ... sends updates whenever there
// is enough bandwidth", §5.1). Dropped counts are observable through
// StreamReader.Dropped.
const streamBacklog = 256

// maxStreamFrame bounds one StreamData payload on channels that
// negotiated stream credit: larger writes are segmented so a bulk chunk
// train always has preemption points where control and invoke frames
// can slot in. 16 KiB keeps a single segment's hold on the write lock
// short even on the paper's WLAN-class links.
const maxStreamFrame = 16 << 10

// DefaultStreamWindow is the per-stream receive window granted to the
// sender of a reliable stream when Config.StreamWindowBytes is zero.
// The receiver grants it on open and replenishes as the application
// consumes chunks, so a stalled reader bounds the sender's buffered
// bytes to one window instead of losing data.
const DefaultStreamWindow = 256 << 10

// propStreamCredit is the hello property announcing credit-based stream
// flow control. Like propFetchChunked it is negotiated: both sides must
// announce it, otherwise streams keep the legacy unbounded-send /
// receiver-drop-oldest behavior (and frames never carry segmentation
// markers, which legacy decoders reject).
const propStreamCredit = "stream.credit"

// propStreamClass is the StreamOpen property carrying the stream class;
// absent means reliable.
const propStreamClass = "stream.class"

// streamClassUnreliable marks a stream that keeps the adaptive
// drop-oldest semantics even on credit-negotiated channels: no credits,
// no backpressure, freshest data wins. Snapshot feeds (mouse positions,
// sensor previews) want this; transfers want the reliable default.
const streamClassUnreliable = "unreliable"

// StreamClass selects the delivery contract of an outbound stream.
type StreamClass int

const (
	// StreamReliable is the default: writes are credit-gated against the
	// receiver's window and every chunk is delivered in order. A slow
	// consumer blocks the writer instead of losing data.
	StreamReliable StreamClass = iota
	// StreamUnreliable keeps the paper's §5.1 adaptive semantics: the
	// receiver queues up to streamBacklog chunks and drops the oldest
	// when the consumer falls behind. Writers never block on the
	// consumer.
	StreamUnreliable
)

// StreamWriter is the sending end of a transparent stream proxy.
type StreamWriter struct {
	c  *Channel
	id int64
	// segmented: this channel negotiated stream.credit, so large writes
	// are cut into ≤maxStreamFrame frames with More markers (the remote
	// reassembles). credited additionally gates writes on the receiver's
	// window (reliable class only).
	segmented bool
	credited  bool

	mu      sync.Mutex
	cond    *sync.Cond
	avail   int64 // credit bytes available to send
	granted int64 // total credit ever granted by the receiver
	sent    int64 // total payload bytes sent
	closed  bool
	failure error // remote close/abort or channel teardown
}

var _ io.WriteCloser = (*StreamWriter)(nil)

// OpenStream opens a named reliable byte stream to the remote peer
// (§3.2: "high-volume data exchange through transparent stream
// proxies").
func (c *Channel) OpenStream(name string, props map[string]any) (*StreamWriter, error) {
	return c.OpenStreamClass(name, StreamReliable, props)
}

// OpenStreamClass opens a stream with an explicit delivery class.
func (c *Channel) OpenStreamClass(name string, class StreamClass, props map[string]any) (*StreamWriter, error) {
	if class == StreamUnreliable {
		np := make(map[string]any, len(props)+1)
		for k, v := range props {
			np[k] = v
		}
		np[propStreamClass] = streamClassUnreliable
		props = np
	}
	w := &StreamWriter{
		c:         c,
		segmented: c.streamCredit,
		credited:  c.streamCredit && class == StreamReliable,
	}
	w.cond = sync.NewCond(&w.mu)
	// Register before the open frame is on the wire: a remote
	// StreamClose (no handler, early abort) or credit can race the send
	// returning. A failed send unregisters, so the writer never leaks.
	c.mu.Lock()
	c.nextStream += 2
	w.id = c.nextStream
	c.outStreams[w.id] = w
	c.mu.Unlock()
	if err := c.send(&wire.StreamOpen{StreamID: w.id, Name: name, Props: props}); err != nil {
		c.mu.Lock()
		delete(c.outStreams, w.id)
		c.mu.Unlock()
		return nil, err
	}
	c.sObs.opened.Inc()
	c.sObs.active.Add(1)
	return w, nil
}

// Write ships one chunk. On reliable credit-negotiated streams the call
// blocks while the receiver's window is exhausted (backpressure); large
// chunks are segmented into bounded frames and reassembled by the
// remote, so message boundaries are preserved. Writes after Close fail.
func (w *StreamWriter) Write(p []byte) (int, error) {
	if !w.segmented {
		// Legacy peer (or pre-negotiation): one chunk, one frame, no
		// credits — the seed behavior.
		if err := w.reserve(0); err != nil {
			return 0, err
		}
		if err := w.writeFrame(p, false); err != nil {
			return 0, err
		}
		w.mu.Lock()
		w.sent += int64(len(p))
		w.mu.Unlock()
		return len(p), nil
	}
	total := 0
	for first := true; first || len(p) > 0; first = false {
		seg := p
		if len(seg) > maxStreamFrame {
			seg = seg[:maxStreamFrame]
		}
		if w.credited {
			n, err := w.reserveUpTo(len(seg))
			if err != nil {
				return total, err
			}
			seg = seg[:n]
		} else if err := w.reserve(0); err != nil {
			return total, err
		}
		if err := w.writeFrame(seg, len(p) > len(seg)); err != nil {
			return total, err
		}
		total += len(seg)
		p = p[len(seg):]
	}
	return total, nil
}

// writeFrame encodes one StreamData frame straight from the caller's
// slice into a pooled frame buffer: the encoder copies seg into the
// frame, and the frame is written out before this call returns, so the
// io.Writer contract (p not retained) holds with exactly one copy.
// Stream payload travels at bulk priority: it yields to control and
// invoke frames at every segment boundary.
func (w *StreamWriter) writeFrame(seg []byte, more bool) error {
	buf := wire.GetBuffer()
	frame, err := wire.EncodeInto(buf, &wire.StreamData{StreamID: w.id, Chunk: seg, More: more})
	if err != nil {
		wire.PutBuffer(buf)
		return err
	}
	err = w.c.sendFrameBulk(frame)
	wire.PutBuffer(buf)
	if err != nil {
		return err
	}
	w.c.sObs.txFrames.Inc()
	w.c.sObs.txBytes.Add(int64(len(seg)))
	return nil
}

// reserve(0) checks the writer is open; reserveUpTo blocks until at
// least one credit byte is available and consumes up to n of them.
func (w *StreamWriter) reserve(int) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return w.writeErrLocked()
	}
	return nil
}

func (w *StreamWriter) reserveUpTo(n int) (int, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if n == 0 {
		if w.closed {
			return 0, w.writeErrLocked()
		}
		return 0, nil
	}
	for {
		if w.closed {
			return 0, w.writeErrLocked()
		}
		if w.avail > 0 {
			if int64(n) > w.avail {
				n = int(w.avail)
			}
			w.avail -= int64(n)
			w.sent += int64(n)
			return n, nil
		}
		w.c.sObs.creditStalls.Inc()
		w.cond.Wait()
	}
}

// reserveExact blocks until the full n bytes of credit are available:
// the fan-out path shares pre-encoded segment tails across subscribers
// and cannot shrink a segment to fit a partial grant. n never exceeds
// maxStreamFrame, which NewPeer guarantees is at most one window.
func (w *StreamWriter) reserveExact(n int) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	for {
		if w.closed {
			return w.writeErrLocked()
		}
		if !w.credited || w.avail >= int64(n) {
			if w.credited {
				w.avail -= int64(n)
			}
			w.sent += int64(n)
			return nil
		}
		w.c.sObs.creditStalls.Inc()
		w.cond.Wait()
	}
}

func (w *StreamWriter) writeErrLocked() error {
	if w.failure != nil {
		return w.failure
	}
	return fmt.Errorf("remote: write on closed stream %d", w.id)
}

// grant adds receiver credit and wakes blocked writers.
func (w *StreamWriter) grant(n int64) {
	w.mu.Lock()
	w.avail += n
	w.granted += n
	w.mu.Unlock()
	w.cond.Broadcast()
}

// fail terminates the writer from the remote side (StreamClose) or
// channel teardown: pending and future writes return err.
func (w *StreamWriter) fail(err error) {
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return
	}
	w.closed = true
	w.failure = err
	w.mu.Unlock()
	w.cond.Broadcast()
	w.c.sObs.closedN.Inc()
	w.c.sObs.active.Add(-1)
}

// FlowStats reports the writer's credit accounting: payload bytes sent
// and credit bytes granted by the receiver. For credited writers
// sent ≤ granted always holds — the simulation harness asserts it as a
// conservation invariant. credited is false for unreliable and legacy
// streams, whose sent is unbounded by design.
func (w *StreamWriter) FlowStats() (sent, granted int64, credited bool) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.sent, w.granted, w.credited
}

// Close terminates the stream cleanly.
func (w *StreamWriter) Close() error {
	return w.closeWith("")
}

// Abort terminates the stream with an error reported to the reader.
func (w *StreamWriter) Abort(reason string) error {
	if reason == "" {
		reason = "aborted"
	}
	return w.closeWith(reason)
}

func (w *StreamWriter) closeWith(errMsg string) error {
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return nil
	}
	w.closed = true
	w.mu.Unlock()
	w.cond.Broadcast()
	w.c.mu.Lock()
	delete(w.c.outStreams, w.id)
	w.c.mu.Unlock()
	w.c.sObs.closedN.Inc()
	w.c.sObs.active.Add(-1)
	return w.c.send(&wire.StreamClose{StreamID: w.id, Err: errMsg})
}

// StreamReader is the receiving end of a stream: chunk-oriented, with
// an io.Reader view for byte consumers.
type StreamReader struct {
	Name  string
	Props map[string]any

	s        *inStream
	leftover []byte
}

// Next returns the next chunk, blocking until one arrives or the
// stream ends (io.EOF on clean close). On reliable streams, consuming a
// chunk replenishes the sender's credit once half the window has been
// eaten, so a steadily consuming reader keeps the sender running
// without a credit frame per chunk.
func (r *StreamReader) Next() ([]byte, error) {
	s := r.s
	if !s.credited {
		chunk, ok := <-s.ch
		if !ok {
			return nil, s.err()
		}
		return chunk, nil
	}
	s.mu.Lock()
	for len(s.q) == 0 && !s.closed {
		s.cond.Wait()
	}
	if len(s.q) == 0 {
		s.mu.Unlock()
		return nil, s.err()
	}
	chunk := s.q[0]
	s.q[0] = nil
	s.q = s.q[1:]
	s.consumed += int64(len(chunk))
	var grant int64
	if s.consumed*2 >= s.window && !s.closed {
		grant = s.consumed
		s.consumed = 0
		s.granted += grant
	}
	s.mu.Unlock()
	if grant > 0 {
		// Credit frames are control traffic: they must overtake bulk
		// data, or a full-duplex transfer could stall its own reverse
		// credits behind its forward chunks.
		_ = s.c.send(&wire.StreamCredit{StreamID: s.id, Bytes: grant})
		s.c.sObs.creditGrants.Inc()
	}
	return chunk, nil
}

// Read implements io.Reader over the chunk sequence. A chunk larger
// than p is consumed across multiple reads (the remainder is kept as
// leftover); a chunk smaller than p returns short — Read never blocks
// for a second chunk to fill p.
func (r *StreamReader) Read(p []byte) (int, error) {
	if len(r.leftover) == 0 {
		chunk, err := r.Next()
		if err != nil {
			return 0, err
		}
		r.leftover = chunk
	}
	n := copy(p, r.leftover)
	r.leftover = r.leftover[n:]
	return n, nil
}

// Dropped reports chunks discarded because the consumer fell behind
// (unreliable and legacy streams only; reliable streams never drop).
func (r *StreamReader) Dropped() int64 {
	r.s.mu.Lock()
	defer r.s.mu.Unlock()
	return r.s.dropped
}

// inStream is the receive side of one inbound stream. Credited
// (reliable) streams queue into q under mu — the queue is bounded in
// bytes by the credit window, not a chunk count. Unreliable and legacy
// streams keep the fixed-capacity channel with drop-oldest overflow.
type inStream struct {
	id       int64
	c        *Channel
	credited bool

	ch chan []byte // unreliable/legacy delivery

	// partial accumulates segments of one application message (More
	// markers). It is touched only by the channel's readLoop, never
	// concurrently.
	partial []byte

	mu       sync.Mutex
	cond     *sync.Cond // credited delivery
	q        [][]byte
	window   int64
	consumed int64 // consumed bytes not yet re-granted
	granted  int64 // total credit issued to the sender
	received int64 // total payload bytes delivered into the queue
	closed   bool
	errMsg   string
	failure  error
	dropped  int64
}

func (s *inStream) err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.failure != nil {
		return s.failure
	}
	if s.errMsg != "" {
		return fmt.Errorf("remote: stream %d: %s", s.id, s.errMsg)
	}
	return io.EOF
}

// closeWith ends the stream. Queued credited chunks stay readable — a
// cleanly closed reliable stream delivers every chunk before io.EOF.
func (s *inStream) closeWith(err error) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	s.failure = err
	s.mu.Unlock()
	if s.credited {
		s.cond.Broadcast()
	} else {
		close(s.ch)
	}
	s.c.sObs.closedN.Inc()
	s.c.sObs.active.Add(-1)
}

// HandleStreams registers the callback invoked (on its own goroutine)
// for every inbound stream. Only one handler is supported; later calls
// replace it for subsequently opened streams.
func (c *Channel) HandleStreams(fn func(r *StreamReader)) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.streamFn = func(name string, props map[string]any, r *StreamReader) {
		r.Name = name
		r.Props = props
		fn(r)
	}
}

func (c *Channel) handleStreamOpen(m *wire.StreamOpen) {
	c.mu.Lock()
	fn := c.streamFn
	c.mu.Unlock()
	if fn == nil {
		// No handler: reject instead of registering a stream nobody will
		// ever read. The seed kept the entry (and its growing queue) in
		// c.streams forever; now the writer learns immediately and the
		// receive side holds no state.
		_ = c.send(&wire.StreamClose{StreamID: m.StreamID, Err: "no stream handler"})
		return
	}
	class, _ := m.Props[propStreamClass].(string)
	s := &inStream{
		id:       m.StreamID,
		c:        c,
		credited: c.streamCredit && class != streamClassUnreliable,
		window:   c.streamWindow,
	}
	if s.credited {
		s.cond = sync.NewCond(&s.mu)
	} else {
		s.ch = make(chan []byte, streamBacklog)
	}
	c.mu.Lock()
	c.streams[m.StreamID] = s
	c.mu.Unlock()
	c.sObs.opened.Inc()
	c.sObs.active.Add(1)
	select {
	case <-c.closed:
		// Teardown raced the registration: its drain may have missed the
		// entry, so close it here (idempotent either way).
		c.mu.Lock()
		delete(c.streams, m.StreamID)
		c.mu.Unlock()
		s.closeWith(ErrChannelClosed)
		return
	default:
	}
	if s.credited {
		// The initial window. Credit is receiver-driven from the first
		// byte: the sender starts at zero and may send nothing until
		// this grant arrives.
		s.mu.Lock()
		s.granted = s.window
		s.mu.Unlock()
		_ = c.send(&wire.StreamCredit{StreamID: m.StreamID, Bytes: s.window})
		c.sObs.creditGrants.Inc()
	}
	reader := &StreamReader{s: s}
	c.wg.Add(1)
	go func() {
		defer c.wg.Done()
		fn(m.Name, m.Props, reader)
	}()
}

func (c *Channel) handleStreamData(m *wire.StreamData) {
	c.mu.Lock()
	s := c.streams[m.StreamID]
	c.mu.Unlock()
	if s == nil {
		return
	}
	chunk := m.Chunk
	if m.More || len(s.partial) > 0 {
		// Segment of a larger message: reassemble before delivery so
		// consumers see the writer's message boundaries. partial is
		// bounded by what credits admitted plus one legacy frame, so a
		// hostile peer cannot grow it past its granted window.
		s.partial = append(s.partial, chunk...)
		if m.More {
			return
		}
		chunk = s.partial
		s.partial = nil
	}
	c.sObs.rxBytes.Add(int64(len(chunk)))
	if s.credited {
		s.mu.Lock()
		if !s.closed {
			s.received += int64(len(chunk))
			s.q = append(s.q, chunk)
		}
		s.mu.Unlock()
		s.cond.Signal()
		return
	}
	s.deliverDropOldest(chunk)
}

// deliverDropOldest enqueues chunk on an unreliable/legacy stream,
// evicting oldest entries while the queue is full. The channel readLoop
// is the only producer, so after an eviction the retried send can only
// fail if a consumer raced in and *refilled* the queue — impossible,
// consumers only drain — hence the loop terminates and the accounting
// is exact: every evicted chunk is counted, and the new chunk is never
// silently lost (the seed's final non-blocking send could lose it
// uncounted).
func (s *inStream) deliverDropOldest(chunk []byte) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return
	}
	s.received += int64(len(chunk))
	for {
		select {
		case s.ch <- chunk:
			return
		default:
		}
		select {
		case <-s.ch:
			s.dropped++
			s.c.sObs.droppedN.Inc()
		default:
		}
	}
}

func (c *Channel) handleStreamClose(m *wire.StreamClose) {
	// Stream ids are direction-disjoint (dial side odd, accept side
	// even), so the id tells whether this closes an inbound stream we
	// read (writer finished) or an outbound stream we write (reader
	// aborted / rejected).
	c.mu.Lock()
	s := c.streams[m.StreamID]
	delete(c.streams, m.StreamID)
	w := c.outStreams[m.StreamID]
	delete(c.outStreams, m.StreamID)
	c.mu.Unlock()
	if s != nil {
		s.mu.Lock()
		s.errMsg = m.Err
		s.mu.Unlock()
		s.closeWith(nil)
	}
	if w != nil {
		if m.Err != "" {
			w.fail(fmt.Errorf("remote: stream %d closed by peer: %s", m.StreamID, m.Err))
		} else {
			w.fail(fmt.Errorf("remote: stream %d closed by peer", m.StreamID))
		}
	}
}

func (c *Channel) handleStreamCredit(m *wire.StreamCredit) {
	if m.Bytes < 0 {
		return // nonsense grant from a broken peer; ignore
	}
	c.mu.Lock()
	w := c.outStreams[m.StreamID]
	c.mu.Unlock()
	if w != nil {
		w.grant(m.Bytes)
	}
}

// OpenStreamCount reports streams with live state on this channel, both
// inbound and outbound. The simulation harness checks it reaches zero
// after drain — a nonzero residue is a stream registry leak.
func (c *Channel) OpenStreamCount() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.streams) + len(c.outStreams)
}
