package remote

// Regression tests for the invoke hot-path overhaul: teardown error
// reporting, pending-map hygiene, stray-frame suppression, the bounded
// dispatch contract under an inbound flood, and invoke/fetch/ping
// racing a crash-fault teardown.

import (
	"errors"
	"net"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/alfredo-mw/alfredo/internal/netsim"
	"github.com/alfredo-mw/alfredo/internal/service"
	"github.com/alfredo-mw/alfredo/internal/wire"
)

// TestFetchDuringTeardownIsChannelClosed pins the teardown error
// contract: a fetch whose reply never arrives because the channel tore
// down must report ErrChannelClosed — not ErrNoSuchService, which would
// tell the caller the peer authoritatively denied the service. The
// outcome used to depend on which select case won the race against the
// teardown drain, so the test repeats the race.
func TestFetchDuringTeardownIsChannelClosed(t *testing.T) {
	link := netsim.LinkProfile{Name: "slow", Latency: 20 * time.Millisecond, Bandwidth: 125e6}
	for i := 0; i < 20; i++ {
		server := newTestNode(t, "fetch-srv")
		client := newTestNode(t, "fetch-cli")
		fabric := netsim.NewFabric()
		serveFabric(t, fabric, server)
		ch, _ := connectRaw(t, fabric, server, client, link)

		errCh := make(chan error, 1)
		go func() {
			_, err := ch.Fetch(9999)
			errCh <- err
		}()
		time.Sleep(5 * time.Millisecond)
		ch.Close()

		select {
		case err := <-errCh:
			if errors.Is(err, ErrNoSuchService) {
				t.Fatalf("iteration %d: fetch during teardown = ErrNoSuchService, want ErrChannelClosed", i)
			}
			if !errors.Is(err, ErrChannelClosed) {
				t.Fatalf("iteration %d: fetch during teardown = %v, want ErrChannelClosed", i, err)
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("iteration %d: fetch did not return after teardown", i)
		}
	}
}

// TestPingSendErrorDropsPending pins the send-error cleanup of
// pingOnce: a ping whose frame cannot be sent must remove its pending
// entry instead of leaking it until channel teardown.
func TestPingSendErrorDropsPending(t *testing.T) {
	server := newTestNode(t, "ping-srv")
	client := newTestNode(t, "ping-cli")
	ch := connectNodes(t, server, client, netsim.Loopback)
	ch.Close()

	if _, err := ch.pingOnce(); err == nil {
		t.Fatal("pingOnce on a closed channel succeeded")
	}
	ch.mu.Lock()
	n := len(ch.pendingPings)
	ch.mu.Unlock()
	if n != 0 {
		t.Fatalf("pendingPings holds %d entries after send error, want 0", n)
	}
}

// TestTeardownDrainsPendingPings pins the teardown drain: an in-flight
// ping must be woken with ErrChannelClosed when the channel dies, and
// its pending entry must be gone.
func TestTeardownDrainsPendingPings(t *testing.T) {
	server := newTestNode(t, "drain-srv")
	client := newTestNode(t, "drain-cli")
	ch := connectNodes(t, server, client, netsim.Loopback)

	pch := make(chan error, 1)
	ch.mu.Lock()
	ch.pendingPings[42] = pch
	ch.mu.Unlock()

	ch.Close()
	select {
	case err := <-pch:
		if !errors.Is(err, ErrChannelClosed) {
			t.Fatalf("drained ping got %v, want ErrChannelClosed", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("teardown did not drain the pending ping")
	}
	ch.mu.Lock()
	n := len(ch.pendingPings)
	ch.mu.Unlock()
	if n != 0 {
		t.Fatalf("pendingPings holds %d entries after teardown, want 0", n)
	}
}

// rawHandshake performs the peer handshake from the raw side of a pipe:
// the test plays a protocol-conformant peer with no services.
func rawHandshake(t *testing.T, conn net.Conn, peerID string) *wire.Lease {
	t.Helper()
	if _, err := wire.ReadMessage(conn); err != nil {
		t.Fatalf("reading hello: %v", err)
	}
	if err := wire.WriteMessage(conn, &wire.Hello{PeerID: peerID, Version: wire.ProtocolVersion}); err != nil {
		t.Fatalf("writing hello: %v", err)
	}
	msg, err := wire.ReadMessage(conn)
	if err != nil {
		t.Fatalf("reading lease: %v", err)
	}
	lease, ok := msg.(*wire.Lease)
	if !ok {
		t.Fatalf("expected LEASE, got %s", msg.Type())
	}
	if err := wire.WriteMessage(conn, &wire.Lease{}); err != nil {
		t.Fatalf("writing lease: %v", err)
	}
	return lease
}

// TestFetchUnknownServiceSendsNoStrayErrorReply pins the wire-level
// "no such service" answer to a fetch: exactly one empty ServiceReply,
// with no trailing ErrorReply frame (the stray frame carried CallID 0
// and could be mistaken for an answer to a real call).
func TestFetchUnknownServiceSendsNoStrayErrorReply(t *testing.T) {
	node := newTestNode(t, "fetch-target")
	a, b := net.Pipe()
	defer a.Close()
	defer b.Close()
	_ = b.SetDeadline(time.Now().Add(5 * time.Second))

	connected := make(chan error, 1)
	go func() {
		_, err := node.peer.Connect(a)
		connected <- err
	}()
	rawHandshake(t, b, "raw-tester")
	if err := <-connected; err != nil {
		t.Fatalf("Connect: %v", err)
	}

	if err := wire.WriteMessage(b, &wire.FetchService{RequestID: 7, ServiceID: 4242}); err != nil {
		t.Fatalf("writing fetch: %v", err)
	}
	msg, err := wire.ReadMessage(b)
	if err != nil {
		t.Fatalf("reading fetch answer: %v", err)
	}
	reply, ok := msg.(*wire.ServiceReply)
	if !ok {
		t.Fatalf("fetch of unknown service answered with %s, want SERVICE_REPLY", msg.Type())
	}
	if reply.RequestID != 7 || len(reply.Interfaces) != 0 {
		t.Fatalf("unexpected reply: RequestID=%d Interfaces=%d", reply.RequestID, len(reply.Interfaces))
	}

	// The very next frame must answer our ping — any interleaved
	// ErrorReply is the stray frame this test exists to catch.
	if err := wire.WriteMessage(b, &wire.Ping{Seq: 1}); err != nil {
		t.Fatalf("writing ping: %v", err)
	}
	msg, err = wire.ReadMessage(b)
	if err != nil {
		t.Fatalf("reading pong: %v", err)
	}
	if _, ok := msg.(*wire.Pong); !ok {
		t.Fatalf("frame after ServiceReply is %s, want PONG (stray frame leaked)", msg.Type())
	}
}

// TestInvokeFetchPingRacingTeardown exercises every pending-map path
// against a crash-fault teardown under the race detector: concurrent
// invokes, fetches and pings must all return promptly once the link is
// dropped, with no panic, leak or misclassified error.
func TestInvokeFetchPingRacingTeardown(t *testing.T) {
	server := newTestNode(t, "race-srv")
	client := newTestNode(t, "race-cli")
	exportCalculator(t, server)
	fabric := netsim.NewFabric()
	serveFabric(t, fabric, server)
	link := netsim.LinkProfile{Name: "lan", Latency: 2 * time.Millisecond, Bandwidth: 125e6}
	ch, conn := connectRaw(t, fabric, server, client, link)
	svcID := soleServiceID(t, ch)

	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				if _, err := ch.Invoke(svcID, "Add", []any{int64(1), int64(2)}); err != nil {
					return
				}
			}
		}()
	}
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				if _, err := ch.Fetch(svcID); err != nil {
					return
				}
			}
		}()
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				if _, err := ch.Ping(); err != nil {
					return
				}
			}
		}()
	}

	time.Sleep(30 * time.Millisecond)
	conn.Drop()

	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("callers did not return after the link dropped")
	}
}

// TestInboundInvokeFloodBounded pins the dispatch bound: a peer
// flooding invocations at a channel must never inflate the handler
// goroutine count past DispatchWorkers — backpressure holds the excess
// on the transport instead.
func TestInboundInvokeFloodBounded(t *testing.T) {
	node := newTestNode(t, "flood-target")
	gate := make(chan struct{})
	var entered atomic.Int32
	blocker := NewService("test.Block").
		Method("Block", nil, "void", func(args []any) (any, error) {
			entered.Add(1)
			<-gate
			return nil, nil
		})
	if _, err := node.fw.Registry().Register([]string{"test.Block"}, blocker,
		service.Properties{PropExported: true}, "test"); err != nil {
		t.Fatalf("Register: %v", err)
	}

	a, b := net.Pipe()
	defer a.Close()
	defer b.Close()
	defer close(gate)

	connected := make(chan error, 1)
	go func() {
		_, err := node.peer.Connect(a)
		connected <- err
	}()
	lease := rawHandshake(t, b, "flooder")
	if err := <-connected; err != nil {
		t.Fatalf("Connect: %v", err)
	}
	if len(lease.Services) != 1 {
		t.Fatalf("lease carries %d services, want 1", len(lease.Services))
	}
	svcID := lease.Services[0].ID

	base := runtime.NumGoroutine()
	go func() {
		for i := 1; i <= 10000; i++ {
			if err := wire.WriteMessage(b, &wire.Invoke{
				CallID: int64(i), ServiceID: svcID, Method: "Block",
			}); err != nil {
				return // pipe closed at test end while backpressured
			}
		}
	}()

	deadline := time.Now().Add(5 * time.Second)
	for entered.Load() < int32(DefaultDispatchWorkers) {
		if time.Now().After(deadline) {
			t.Fatalf("only %d handlers started, want %d", entered.Load(), DefaultDispatchWorkers)
		}
		time.Sleep(time.Millisecond)
	}
	// Give an unbounded dispatcher time to spawn thousands more.
	time.Sleep(100 * time.Millisecond)

	if n := int(entered.Load()); n > DefaultDispatchWorkers {
		t.Errorf("%d handlers entered the service, want at most %d", n, DefaultDispatchWorkers)
	}
	if g := runtime.NumGoroutine(); g > base+DefaultDispatchWorkers+25 {
		t.Errorf("goroutines grew to %d (baseline %d): dispatch is not bounded", g, base)
	}
}
