package remote

import (
	"errors"
	"sort"
	"strings"
	"time"

	"github.com/alfredo-mw/alfredo/internal/obs"
	"github.com/alfredo-mw/alfredo/internal/wire"
)

// Cross-node metric shipping (the fleet telemetry plane, DESIGN.md
// §12). A peer configured with an obs.Aggregator announces the
// "metrics.sink" hello property; the other side of every channel that
// sees the announcement ships its registry state back on a clock-driven
// cadence as MetricsReport frames. Values on the wire are cumulative —
// a lost report costs freshness, never correctness — so the receiving
// aggregator merges them idempotently, last write wins. Most reports
// are deltas (only series whose state changed since the last shipped
// report); the first report of a connection and every
// metricsResyncEvery-th one are full resyncs, which also heal the
// receiver after drops or a reconnect.

// propMetricsSink is the hello property a peer sets to announce that it
// ingests MetricsReport frames into a fleet aggregator.
const propMetricsSink = "metrics.sink"

// ErrNoSink reports an explicit metrics flush on a channel whose
// remote side never announced a metrics sink.
var ErrNoSink = errors.New("remote: peer did not announce a metrics sink")

// DefaultMetricsInterval is the shipping cadence when the peer has a
// metrics sink and Config.MetricsInterval is zero.
const DefaultMetricsInterval = 10 * time.Second

// metricsResyncEvery forces a full (non-delta) report every n-th ship,
// bounding how long a receiver that missed deltas can stay stale.
const metricsResyncEvery = 8

// shipFP is the change fingerprint of one series between ships. Any
// field moving marks the series dirty for the next delta; winCount and
// winSum move when a window ages out, so a quieting histogram still
// gets re-shipped until its window reads empty at the receiver.
type shipFP struct {
	value            int64
	count, sum       int64
	winCount, winSum int64
	rate             float64
}

func fingerprint(s *obs.Sample) shipFP {
	fp := shipFP{value: s.Value, rate: s.Rate}
	if s.Hist != nil {
		fp.count, fp.sum = s.Hist.Count, int64(s.Hist.Sum)
	}
	if s.Win != nil {
		fp.winCount, fp.winSum = s.Win.Count, int64(s.Win.Sum)
	}
	return fp
}

// metricsEnabled reports whether this channel ships its metrics: the
// remote side announced a sink and shipping is not disabled locally.
func (c *Channel) metricsEnabled() bool {
	if c.peer.cfg.MetricsInterval < 0 {
		return false
	}
	c.mu.Lock()
	sink := c.remoteProps[propMetricsSink] == true
	c.mu.Unlock()
	return sink && c.obsHub().Metrics != nil
}

// metricsLoop ships this channel's registry on the peer's clock until
// the channel closes.
func (c *Channel) metricsLoop(interval time.Duration) {
	defer c.wg.Done()
	t := c.clock().NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			_ = c.shipMetrics(false)
		case <-c.closed:
			return
		}
	}
}

// shipMetrics sends one MetricsReport. forceFull (or the resync
// schedule) ships the entire registry; otherwise only series whose
// fingerprint moved since the last successful ship. The fingerprint
// table advances only when the transport write succeeded, so a frame
// lost in the send path is retried by content on the next tick.
func (c *Channel) shipMetrics(forceFull bool) error {
	reg := c.obsHub().Metrics
	if reg == nil {
		return nil
	}
	snap := reg.Snapshot()

	c.shipMu.Lock()
	defer c.shipMu.Unlock()
	full := forceFull || c.shipTicks%metricsResyncEvery == 0
	c.shipTicks++

	var samples []wire.MetricSample
	fps := make(map[string]shipFP, len(snap))
	for i := range snap {
		s := &snap[i]
		key := s.Name + "\xfe" + strings.Join(flattenLabels(s.Labels), "\xff")
		fp := fingerprint(s)
		fps[key] = fp
		if !full {
			if last, ok := c.shipLast[key]; ok && last == fp {
				continue
			}
		}
		samples = append(samples, toWireSample(s))
	}
	if !full && len(samples) == 0 {
		return nil // nothing moved; skip the frame entirely
	}
	c.shipSeq++
	err := c.send(&wire.MetricsReport{
		Node:    c.peer.ID(),
		Seq:     c.shipSeq,
		Full:    full,
		Samples: samples,
	})
	if err != nil {
		return err
	}
	c.shipLast = fps
	return nil
}

// handleMetricsReport folds an inbound report into the peer's
// aggregator. Reports arriving at a peer with no aggregator are
// dropped — a hostile peer cannot make us accumulate state we never
// asked for.
func (c *Channel) handleMetricsReport(m *wire.MetricsReport) {
	agg := c.peer.cfg.Aggregator
	if agg == nil {
		return
	}
	// The report's self-declared node name is ignored in favor of the
	// authenticated channel identity: one peer cannot impersonate (or
	// overwrite) another's telemetry.
	agg.Ingest(c.RemoteID(), c.Tenant(), m.Seq, m.Full, fromWireSamples(m.Samples))
}

// ShipMetricsNow synchronously ships a full report on every channel
// whose remote side ingests metrics, returning how many were sent.
// Tests and benchmarks use it to flush telemetry deterministically
// instead of waiting for the ticker.
func (p *Peer) ShipMetricsNow() int {
	n := 0
	for _, c := range p.Channels() {
		if c.metricsEnabled() && c.shipMetrics(true) == nil {
			n++
		}
	}
	return n
}

// ShipMetricsNow synchronously ships one full report on this channel,
// provided the remote side announced a metrics sink. Unlike the
// peer-level flush it ignores MetricsInterval, so a peer that disabled
// the per-channel shipping tickers (interval < 0 — e.g. a benchmark
// holding 100k channels open) can still flush explicitly on a channel
// of its choosing. Reports ErrNoSink when the remote is not a sink.
func (c *Channel) ShipMetricsNow() error {
	c.mu.Lock()
	sink := c.remoteProps[propMetricsSink] == true
	c.mu.Unlock()
	if !sink {
		return ErrNoSink
	}
	return c.shipMetrics(true)
}

// flattenLabels converts a snapshot label map to the alternating
// key/value form used on the wire, sorted by key.
func flattenLabels(labels map[string]string) []string {
	if len(labels) == 0 {
		return nil
	}
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]string, 0, len(keys)*2)
	for _, k := range keys {
		out = append(out, k, labels[k])
	}
	return out
}

func kindToWire(kind string) byte {
	switch kind {
	case "gauge":
		return wire.MetricGauge
	case "histogram":
		return wire.MetricHistogram
	case "meter":
		return wire.MetricMeter
	default:
		return wire.MetricCounter
	}
}

func kindFromWire(k byte) string {
	switch k {
	case wire.MetricGauge:
		return "gauge"
	case wire.MetricHistogram:
		return "histogram"
	case wire.MetricMeter:
		return "meter"
	default:
		return "counter"
	}
}

func toWireSample(s *obs.Sample) wire.MetricSample {
	out := wire.MetricSample{
		Name:   s.Name,
		Kind:   kindToWire(s.Kind),
		Labels: flattenLabels(s.Labels),
		Value:  s.Value,
		Rate:   s.Rate,
	}
	if s.Hist != nil {
		out.Count, out.Sum = s.Hist.Count, int64(s.Hist.Sum)
		out.Buckets = make([]int64, len(s.Hist.Buckets))
		for i, b := range s.Hist.Buckets {
			out.Buckets[i] = b.Count
		}
	}
	if s.Win != nil {
		out.WinCount, out.WinSum = s.Win.Count, int64(s.Win.Sum)
		out.WinBuckets = make([]int64, len(s.Win.Buckets))
		for i, b := range s.Win.Buckets {
			out.WinBuckets[i] = b.Count
		}
	}
	return out
}

// bucketsFromWire rebuilds a histogram snapshot from a wire bucket
// array, mapping bounds from the shared fixed bucket layout
// (obs.LatencyBuckets; index past the bounds is the +Inf bucket).
func bucketsFromWire(counts []int64, count, sum int64) *obs.HistogramSnapshot {
	if len(counts) == 0 {
		return nil
	}
	snap := &obs.HistogramSnapshot{
		Count:   count,
		Sum:     time.Duration(sum),
		Buckets: make([]obs.Bucket, len(counts)),
	}
	for i, n := range counts {
		var ub time.Duration
		if i < len(obs.LatencyBuckets) {
			ub = obs.LatencyBuckets[i]
		}
		snap.Buckets[i] = obs.Bucket{UpperBound: ub, Count: n}
	}
	return snap
}

func fromWireSamples(in []wire.MetricSample) []obs.Sample {
	out := make([]obs.Sample, 0, len(in))
	for i := range in {
		ws := &in[i]
		s := obs.Sample{
			Name:  ws.Name,
			Kind:  kindFromWire(ws.Kind),
			Value: ws.Value,
			Rate:  ws.Rate,
		}
		if len(ws.Labels) >= 2 {
			s.Labels = make(map[string]string, len(ws.Labels)/2)
			for j := 0; j+1 < len(ws.Labels); j += 2 {
				s.Labels[ws.Labels[j]] = ws.Labels[j+1]
			}
		}
		s.Hist = bucketsFromWire(ws.Buckets, ws.Count, ws.Sum)
		s.Win = bucketsFromWire(ws.WinBuckets, ws.WinCount, ws.WinSum)
		out = append(out, s)
	}
	return out
}
