package remote

import (
	"bytes"
	"compress/flate"
	"context"
	"errors"
	"fmt"
	"io"
	"math"
	"time"

	"github.com/alfredo-mw/alfredo/internal/module"
	"github.com/alfredo-mw/alfredo/internal/obs"
	"github.com/alfredo-mw/alfredo/internal/wire"
)

// Chunked service acquisition (DESIGN.md §10). Instead of shipping the
// whole service reply in one frame (legacy FetchService), the requester
// asks for the artifact's chunk manifest, diffs it against its
// content-addressed cache, and fetches only the missing chunks — with a
// configurable in-flight window pipelined over the link, spread across
// several links when available, and per-chunk compression when the
// bytes look compressible. A warm re-acquire of an unchanged service
// touches the network only for the manifest exchange.

// propFetchChunked is the Hello property announcing that a peer serves
// chunked fetches. Absence (an older peer) makes requesters fall back
// to the legacy single-shot fetch.
const propFetchChunked = "fetch.chunked"

// DefaultFetchWindow is the number of chunk hashes kept in flight per
// request batch when Config.FetchWindow is zero.
const DefaultFetchWindow = 16

// Fetch modes recorded in FetchStats.Mode and the per-mode counter.
const (
	FetchModeCold   = "cold"   // no usable cached chunks
	FetchModeWarm   = "warm"   // fully cached: manifest exchange only
	FetchModeDelta  = "delta"  // partially cached: fetched the difference
	FetchModeLegacy = "legacy" // single-shot FetchService path
)

// FetchStats reports what one acquisition moved over the network.
type FetchStats struct {
	Mode          string
	ChunksTotal   int
	ChunksFetched int
	Retransmits   int
	BytesTotal    int64 // artifact size
	BytesFetched  int64 // uncompressed bytes actually transferred
	BytesSaved    int64 // BytesTotal - BytesFetched
}

type manifestResult struct {
	reply *wire.ManifestReply
	err   error
}

// errChunkGone signals that the serving peer no longer stores a
// requested chunk (artifact replaced after the manifest was issued);
// the requester falls back to the legacy fetch.
var errChunkGone = errors.New("remote: chunk no longer served by peer")

// AcquireFetch retrieves a service reply through the chunked data
// plane when possible: manifest exchange, cache diff, windowed fetch of
// missing chunks (spread across extra channels when given — they must
// reach peers exporting the same content), hash-verified assembly.
// Without a local chunk cache, or against a peer that does not announce
// chunked serving, it degrades to the legacy single-shot FetchCtx.
func (c *Channel) AcquireFetch(ctx context.Context, serviceID int64, extra ...*Channel) (*wire.ServiceReply, FetchStats, error) {
	cache := c.peer.cfg.ChunkCache
	if cache == nil || !c.remoteSupportsChunked() {
		return c.legacyFetch(ctx, serviceID)
	}

	ctx, span := c.obsHub().Tracer.Start(ctx, "rpc.acquire.chunked")
	defer span.Finish()

	man, err := c.fetchManifest(ctx, serviceID)
	if err != nil {
		span.Fail(err)
		return nil, FetchStats{}, err
	}
	if !man.OK {
		span.Annotate("peer declined chunked fetch")
		return c.legacyFetch(ctx, serviceID)
	}

	reply, stats, err := c.assembleFromManifest(ctx, man, extra)
	if err != nil {
		if errors.Is(err, errChunkGone) || errors.Is(err, module.ErrBundleCorrupt) {
			// The artifact changed under us or reassembly failed
			// verification: the cache holds only hash-checked chunks, so
			// nothing is poisoned — retry through the legacy path.
			span.Annotate("chunked fetch degraded: " + err.Error())
			return c.legacyFetch(ctx, serviceID)
		}
		span.Fail(err)
		return nil, stats, err
	}
	if reply == nil || len(reply.Interfaces) == 0 {
		err := fmt.Errorf("%w: service %d", ErrNoSuchService, serviceID)
		span.Fail(err)
		return nil, stats, err
	}
	span.SetAttr("mode", stats.Mode)
	c.recordFetchStats(stats)
	return reply, stats, nil
}

func (c *Channel) legacyFetch(ctx context.Context, serviceID int64) (*wire.ServiceReply, FetchStats, error) {
	reply, err := c.FetchCtx(ctx, serviceID)
	stats := FetchStats{Mode: FetchModeLegacy}
	if err == nil {
		c.recordFetchStats(stats)
	}
	return reply, stats, err
}

func (c *Channel) recordFetchStats(st FetchStats) {
	m := c.obsHub().Metrics
	m.Counter("alfredo_remote_fetch_mode_total", "mode", st.Mode).Inc()
	hits := st.ChunksTotal - st.ChunksFetched
	if hits > 0 {
		m.Counter("alfredo_remote_chunk_cache_hits_total").Add(int64(hits))
	}
	if st.ChunksFetched > 0 {
		m.Counter("alfredo_remote_chunk_cache_misses_total").Add(int64(st.ChunksFetched))
	}
	if st.BytesSaved > 0 {
		m.Gauge("alfredo_remote_fetch_bytes_saved").Add(st.BytesSaved)
	}
}

// remoteSupportsChunked reports whether the peer announced chunked
// serving in its Hello.
func (c *Channel) remoteSupportsChunked() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.remoteProps[propFetchChunked] == true
}

// fetchManifest retrieves the chunk manifest for a service, retrying
// timeouts under the peer's policy (manifest requests are read-only).
func (c *Channel) fetchManifest(ctx context.Context, serviceID int64) (*wire.ManifestReply, error) {
	policy := c.peer.cfg.Retry
	var lastErr error
	for attempt := 0; attempt < policy.MaxAttempts; attempt++ {
		if attempt > 0 {
			c.retryCounter("manifest", "timeout").Inc()
			if !c.backoff(c.peer.retryDelay(attempt - 1)) {
				return nil, ErrChannelClosed
			}
		}
		man, err := c.fetchManifestOnce(ctx, serviceID)
		if err == nil || !errors.Is(err, ErrTimeout) {
			return man, err
		}
		lastErr = err
	}
	return nil, fmt.Errorf("remote: manifest fetch of service %d failed after %d attempts: %w",
		serviceID, policy.MaxAttempts, lastErr)
}

func (c *Channel) fetchManifestOnce(ctx context.Context, serviceID int64) (*wire.ManifestReply, error) {
	_, span := c.obsHub().Tracer.Start(ctx, "rpc.fetch.manifest")
	defer span.Finish()

	c.mu.Lock()
	c.nextID++
	id := c.nextID
	ch := make(chan manifestResult, 1)
	c.pendingManifests[id] = ch
	c.mu.Unlock()
	cleanup := func() {
		c.mu.Lock()
		delete(c.pendingManifests, id)
		c.mu.Unlock()
	}

	sc := span.Context()
	if err := c.send(&wire.FetchManifest{RequestID: id, ServiceID: serviceID,
		TraceID: sc.TraceID, SpanID: sc.SpanID}); err != nil {
		cleanup()
		span.Fail(err)
		return nil, err
	}
	timer := c.clock().NewTimer(c.peer.cfg.Timeout)
	defer timer.Stop()
	select {
	case res := <-ch:
		if res.err != nil {
			span.Fail(res.err)
			return nil, res.err
		}
		return res.reply, nil
	case <-timer.C:
		cleanup()
		err := fmt.Errorf("%w: manifest of service %d after %v", ErrTimeout, serviceID, c.peer.cfg.Timeout)
		span.Fail(err)
		return nil, err
	case <-c.closed:
		cleanup()
		span.Fail(ErrChannelClosed)
		return nil, ErrChannelClosed
	}
}

// assembleFromManifest diffs the manifest against the cache, fetches
// missing chunks, and decodes the reassembled artifact.
func (c *Channel) assembleFromManifest(ctx context.Context, man *wire.ManifestReply, extra []*Channel) (*wire.ServiceReply, FetchStats, error) {
	cache := c.peer.cfg.ChunkCache
	stats := FetchStats{BytesTotal: man.TotalBytes}

	// Dedup: a manifest may repeat a hash (identical chunks); each
	// distinct hash is fetched at most once.
	seen := make(map[string]bool, len(man.Chunks))
	sizeOf := make(map[string]int64, len(man.Chunks))
	var missing []string
	for _, ref := range man.Chunks {
		if seen[ref.Hash] {
			continue
		}
		seen[ref.Hash] = true
		sizeOf[ref.Hash] = ref.Size
		stats.ChunksTotal++
		if !cache.Contains(ref.Hash) {
			missing = append(missing, ref.Hash)
		}
	}

	switch {
	case len(missing) == 0:
		stats.Mode = FetchModeWarm
	case len(missing) == stats.ChunksTotal:
		stats.Mode = FetchModeCold
	default:
		stats.Mode = FetchModeDelta
	}

	if len(missing) > 0 {
		if err := c.fetchMissingChunks(ctx, man, missing, sizeOf, &stats, extra); err != nil {
			return nil, stats, err
		}
	}
	stats.BytesSaved = stats.BytesTotal - stats.BytesFetched

	mod := module.BundleManifest{
		Version:    man.Version,
		ChunkBytes: man.ChunkBytes,
		TotalBytes: man.TotalBytes,
		Root:       man.Root,
		Chunks:     make([]module.ChunkRef, len(man.Chunks)),
	}
	for i, ref := range man.Chunks {
		mod.Chunks[i] = module.ChunkRef{Hash: ref.Hash, Size: ref.Size}
	}
	payload, err := module.AssembleChunks(mod, cache.Get)
	if err != nil {
		return nil, stats, err
	}

	msg, err := wire.DecodeMessage(payload)
	if err != nil {
		return nil, stats, fmt.Errorf("%w: %v", module.ErrBundleCorrupt, err)
	}
	reply, ok := msg.(*wire.ServiceReply)
	if !ok {
		return nil, stats, fmt.Errorf("%w: artifact decodes to %s", module.ErrBundleCorrupt, msg.Type())
	}
	// Client-side parse cost proportional to the artifact size, exactly
	// like the legacy reader-reported frame size.
	c.peer.cfg.Device.ParseReply(len(payload))
	return reply, stats, nil
}

// chunkBatch is one in-flight FetchChunks window on one channel.
type chunkBatch struct {
	ch     *Channel
	id     int64
	rx     chan *wire.ChunkData
	want   map[string]bool
	issued time.Time
}

// fetchMissingChunks ships the missing hashes in windows: every window
// is issued immediately (pipelining over one link), round-robin across
// the given channels when several are usable (parallel links). Chunks
// are verified and cached as they arrive, so partial progress survives
// a mid-fetch failure; a corrupted chunk is re-requested immediately, a
// timed-out window is retransmitted up to the retry budget.
func (c *Channel) fetchMissingChunks(ctx context.Context, man *wire.ManifestReply, missing []string, sizeOf map[string]int64, stats *FetchStats, extra []*Channel) error {
	cache := c.peer.cfg.ChunkCache
	window := c.peer.cfg.FetchWindow
	if window <= 0 {
		window = DefaultFetchWindow
	}
	channels := []*Channel{c}
	for _, e := range extra {
		if e != nil && e != c && e.remoteSupportsChunked() && e.peerAlive() {
			channels = append(channels, e)
		}
	}

	_, span := c.obsHub().Tracer.Start(ctx, "rpc.fetch.chunks")
	span.SetAttr("chunks", fmt.Sprint(len(missing)))
	span.SetAttr("links", fmt.Sprint(len(channels)))
	defer span.Finish()

	// Issue every window up front.
	var batches []*chunkBatch
	for i := 0; i < len(missing); i += window {
		end := i + window
		if end > len(missing) {
			end = len(missing)
		}
		hashes := missing[i:end]
		ch := channels[(i/window)%len(channels)]
		b, err := issueBatch(ch, hashes)
		if err != nil {
			// The assigned link failed at send time: fall back to the
			// primary channel; if that fails too, give up.
			if ch == c {
				dropBatches(batches)
				span.Fail(err)
				return err
			}
			if b, err = issueBatch(c, hashes); err != nil {
				dropBatches(batches)
				span.Fail(err)
				return err
			}
		}
		batches = append(batches, b)
	}
	defer dropBatches(batches)

	hist := c.obsHub().Metrics.Histogram("alfredo_remote_fetch_window_seconds")
	for _, b := range batches {
		if err := c.collectBatch(b, cache, sizeOf, stats, channels); err != nil {
			span.Fail(err)
			return err
		}
		hist.Observe(c.clock().Since(b.issued))
	}
	return nil
}

func issueBatch(ch *Channel, hashes []string) (*chunkBatch, error) {
	ch.mu.Lock()
	ch.nextID++
	id := ch.nextID
	// Buffered beyond the window size so duplicate deliveries from a
	// retransmit race never block the reader; overflow is dropped at
	// the router and re-requested by the timeout path.
	rx := make(chan *wire.ChunkData, 2*len(hashes)+4)
	ch.pendingChunks[id] = rx
	ch.mu.Unlock()

	b := &chunkBatch{ch: ch, id: id, rx: rx, want: make(map[string]bool, len(hashes)), issued: ch.clock().Now()}
	for _, h := range hashes {
		b.want[h] = true
	}
	if err := ch.send(&wire.FetchChunks{RequestID: id, Hashes: hashes}); err != nil {
		b.drop()
		return nil, err
	}
	return b, nil
}

func (b *chunkBatch) drop() {
	b.ch.mu.Lock()
	delete(b.ch.pendingChunks, b.id)
	b.ch.mu.Unlock()
}

func dropBatches(batches []*chunkBatch) {
	for _, b := range batches {
		b.drop()
	}
}

func (b *chunkBatch) remaining() []string {
	out := make([]string, 0, len(b.want))
	for h := range b.want {
		out = append(out, h)
	}
	return out
}

// collectBatch drains one window, verifying and caching each chunk on
// arrival. Timeouts retransmit the window's remaining hashes (on a
// surviving channel if the batch's link died) up to the retry budget;
// a chunk failing its hash is re-requested immediately.
func (c *Channel) collectBatch(b *chunkBatch, cache *module.ChunkCache, sizeOf map[string]int64, stats *FetchStats, channels []*Channel) error {
	policy := c.peer.cfg.Retry
	rounds := 0
	timer := c.clock().NewTimer(c.peer.cfg.Timeout)
	// The timer is replaced after each retransmit round; stop whichever
	// instance is live on exit.
	defer func() { timer.Stop() }()
	for len(b.want) > 0 {
		select {
		case cd := <-b.rx:
			if cd.Missing {
				return fmt.Errorf("%w: %.12s", errChunkGone, cd.Hash)
			}
			if !b.want[cd.Hash] {
				continue // duplicate from an earlier retransmit
			}
			data, err := expandChunk(cd, sizeOf[cd.Hash])
			if err == nil {
				err = cache.Put(cd.Hash, data)
			}
			if err != nil {
				// Corruption in flight: count it, re-request just this
				// hash, keep draining. The bad bytes never enter the
				// cache (Put verifies before storing).
				stats.Retransmits++
				c.retryCounter("chunks", "corrupt").Inc()
				c.obsHub().Metrics.Counter("alfredo_remote_chunk_retransmits_total", "cause", "corrupt").Inc()
				if serr := b.ch.send(&wire.FetchChunks{RequestID: b.id, Hashes: []string{cd.Hash}}); serr != nil {
					return serr
				}
				continue
			}
			delete(b.want, cd.Hash)
			stats.ChunksFetched++
			stats.BytesFetched += int64(len(data))
		case <-timer.C:
			rounds++
			if rounds >= policy.MaxAttempts {
				return fmt.Errorf("%w: %d chunks still missing after %d rounds",
					ErrTimeout, len(b.want), rounds)
			}
			stats.Retransmits += len(b.want)
			c.retryCounter("chunks", "timeout").Inc()
			c.obsHub().Metrics.Counter("alfredo_remote_chunk_retransmits_total", "cause", "timeout").Add(int64(len(b.want)))
			if err := c.reissueBatch(b, channels); err != nil {
				return err
			}
			timer = c.clock().NewTimer(c.peer.cfg.Timeout)
		case <-b.ch.closed:
			// The batch's link died mid-window. Chunks already received
			// are cached; move the rest to a surviving channel.
			if err := c.reissueBatch(b, channels); err != nil {
				return err
			}
		case <-c.closed:
			return ErrChannelClosed
		}
	}
	return nil
}

// reissueBatch re-requests a batch's remaining hashes, re-registering
// on a live channel if the batch's own link has closed.
func (c *Channel) reissueBatch(b *chunkBatch, channels []*Channel) error {
	target := b.ch
	if !target.peerAlive() {
		target = nil
		for _, ch := range channels {
			if ch.peerAlive() {
				target = ch
				break
			}
		}
		if target == nil {
			return ErrChannelClosed
		}
	}
	if target == b.ch {
		return b.ch.send(&wire.FetchChunks{RequestID: b.id, Hashes: b.remaining()})
	}
	hashes := b.remaining()
	b.drop()
	nb, err := issueBatch(target, hashes)
	if err != nil {
		return err
	}
	// Keep the original issue time: the window histogram should charge
	// the full wait including the failed link.
	nb.issued = b.issued
	*b = *nb
	return nil
}

// peerAlive reports whether the channel is still open.
func (c *Channel) peerAlive() bool {
	select {
	case <-c.closed:
		return false
	default:
		return true
	}
}

// expandChunk returns a chunk's uncompressed bytes, bounding the
// inflate by the manifest's declared size.
func expandChunk(cd *wire.ChunkData, size int64) ([]byte, error) {
	if !cd.Compressed {
		return cd.Data, nil
	}
	if size <= 0 {
		size = int64(wire.MaxBlob)
	}
	r := flate.NewReader(bytes.NewReader(cd.Data))
	defer r.Close()
	out, err := io.ReadAll(io.LimitReader(r, size+1))
	if err != nil {
		return nil, fmt.Errorf("remote: inflating chunk %.12s: %w", cd.Hash, err)
	}
	if int64(len(out)) > size {
		return nil, fmt.Errorf("remote: chunk %.12s inflates past declared %d bytes", cd.Hash, size)
	}
	return out, nil
}

// --- serving side ---------------------------------------------------

// artifactKey names a service's artifact in the peer's store.
func artifactKey(serviceID int64) string { return fmt.Sprintf("svc:%d", serviceID) }

// handleFetchManifest builds (or reuses) the chunked artifact for a
// service and answers with its manifest. The artifact is the encoded
// legacy reply payload, so both fetch paths ship byte-identical
// content and the chunk store detects changes by root digest.
func (c *Channel) handleFetchManifest(m *wire.FetchManifest) {
	span := c.obsHub().Tracer.StartRemote(
		obs.SpanContext{TraceID: m.TraceID, SpanID: m.SpanID}, "rpc.serve.manifest")
	span.SetAttr("node", c.peer.ID())
	defer span.Finish()

	reply, ok := c.buildReply(m.ServiceID)
	if !ok {
		span.Fail(fmt.Errorf("service %d not exported", m.ServiceID))
		_ = c.send(&wire.ManifestReply{RequestID: m.RequestID})
		return
	}
	frame, err := wire.EncodeMessage(reply)
	if err != nil {
		span.Fail(err)
		_ = c.send(&wire.ManifestReply{RequestID: m.RequestID})
		return
	}
	// The artifact payload is the frame minus the length prefix: type
	// byte plus body, exactly what DecodeMessage consumes.
	man := c.peer.artifacts.Manifest(artifactKey(m.ServiceID), frame[4:])
	out := &wire.ManifestReply{
		RequestID:  m.RequestID,
		OK:         true,
		Version:    man.Version,
		ChunkBytes: man.ChunkBytes,
		TotalBytes: man.TotalBytes,
		Root:       man.Root,
		Chunks:     make([]wire.ChunkRef, len(man.Chunks)),
	}
	for i, ref := range man.Chunks {
		out.Chunks[i] = wire.ChunkRef{Hash: ref.Hash, Size: ref.Size}
	}
	_ = c.send(out)
}

// handleFetchChunks streams the requested chunks back in request
// order, compressing each one that looks compressible. Hashes no
// longer stored answer Missing, telling the requester to restart from
// a fresh manifest or the legacy path.
func (c *Channel) handleFetchChunks(m *wire.FetchChunks) {
	for _, h := range m.Hashes {
		data, ok := c.peer.artifacts.Chunk(h)
		if !ok {
			_ = c.send(&wire.ChunkData{RequestID: m.RequestID, Hash: h, Missing: true})
			continue
		}
		cd := &wire.ChunkData{RequestID: m.RequestID, Hash: h, Data: data}
		if z, ok := compressChunk(data); ok {
			cd.Data, cd.Compressed = z, true
		}
		if err := c.send(cd); err != nil {
			return
		}
	}
}

// compressChunk DEFLATEs a chunk when it looks worthwhile: skip tiny
// chunks, skip bytes that sample as high-entropy (already compressed
// or encrypted content — the common case for media payloads), and keep
// the original when compression does not actually shrink it.
func compressChunk(data []byte) ([]byte, bool) {
	if len(data) < 64 || looksIncompressible(data) {
		return nil, false
	}
	var buf bytes.Buffer
	w, err := flate.NewWriter(&buf, flate.BestSpeed)
	if err != nil {
		return nil, false
	}
	if _, err := w.Write(data); err != nil || w.Close() != nil {
		return nil, false
	}
	if buf.Len() >= len(data) {
		return nil, false
	}
	return buf.Bytes(), true
}

// looksIncompressible estimates the byte entropy of a sparse sample; a
// sample near 8 bits/byte will not deflate enough to pay for the CPU.
func looksIncompressible(data []byte) bool {
	stride := len(data) / 1024
	if stride < 1 {
		stride = 1
	}
	var hist [256]int
	n := 0
	for i := 0; i < len(data); i += stride {
		hist[data[i]]++
		n++
	}
	var entropy float64
	for _, count := range hist {
		if count == 0 {
			continue
		}
		p := float64(count) / float64(n)
		entropy -= p * math.Log2(p)
	}
	return entropy > 7.2
}
