package remote

import (
	"math/rand"
	"sync"
	"time"
)

// Retry defaults. They are sized for the paper's WLAN/Bluetooth links:
// a first retry well under a human-visible delay, capped growth, and a
// reconnect budget long enough to ride out a several-second radio
// shadow.
const (
	DefaultRetryAttempts   = 3
	DefaultRetryBase       = 25 * time.Millisecond
	DefaultRetryMax        = 2 * time.Second
	DefaultRetryMultiplier = 2.0
	DefaultRetryJitter     = 0.2
	DefaultReconnectBudget = 15 * time.Second
)

// RetryPolicy parameterizes per-call retries and channel reconnection:
// exponential backoff with full-range jitter, a per-call attempt cap,
// and a total wall-clock budget for re-establishing a dropped link.
type RetryPolicy struct {
	// MaxAttempts is the total number of tries per call (first attempt
	// included). 1 disables retries; 0 selects the default.
	MaxAttempts int
	// BaseDelay is the backoff before the first retry.
	BaseDelay time.Duration
	// MaxDelay caps the exponential growth.
	MaxDelay time.Duration
	// Multiplier is the per-attempt growth factor.
	Multiplier float64
	// Jitter spreads each delay uniformly in [d*(1-J), d*(1+J)] so that
	// many clients recovering from the same outage do not retry in
	// lockstep.
	Jitter float64
	// ReconnectBudget bounds how long a Link keeps redialing a dropped
	// connection before giving up and going Down.
	ReconnectBudget time.Duration
}

// withDefaults fills zero fields.
func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = DefaultRetryAttempts
	}
	if p.BaseDelay <= 0 {
		p.BaseDelay = DefaultRetryBase
	}
	if p.MaxDelay <= 0 {
		p.MaxDelay = DefaultRetryMax
	}
	if p.Multiplier < 1 {
		p.Multiplier = DefaultRetryMultiplier
	}
	if p.Jitter <= 0 {
		p.Jitter = DefaultRetryJitter
	} else if p.Jitter > 1 {
		p.Jitter = 1
	}
	if p.ReconnectBudget <= 0 {
		p.ReconnectBudget = DefaultReconnectBudget
	}
	return p
}

// Backoff returns the jittered delay before retry number attempt
// (0-based: Backoff(0) precedes the second try), drawing jitter from
// the process-global source.
func (p RetryPolicy) Backoff(attempt int) time.Duration {
	return p.BackoffRand(attempt, nil)
}

// BackoffRand is Backoff with an explicit jitter source: the simulation
// harness passes a seeded RNG (Config.Seed) so a replayed run draws the
// exact same retry schedule. A nil rng selects the process-global
// source, the production default.
func (p RetryPolicy) BackoffRand(attempt int, rng *rand.Rand) time.Duration {
	d := float64(p.BaseDelay)
	for i := 0; i < attempt; i++ {
		d *= p.Multiplier
		if d >= float64(p.MaxDelay) {
			d = float64(p.MaxDelay)
			break
		}
	}
	if d > float64(p.MaxDelay) {
		d = float64(p.MaxDelay)
	}
	u := rand.Float64
	if rng != nil {
		u = rng.Float64
	}
	// Full-range jitter: uniform in [d*(1-J), d*(1+J)], clamped to the
	// cap so the worst case stays bounded.
	d *= 1 + p.Jitter*(2*u()-1)
	if d > float64(p.MaxDelay) {
		d = float64(p.MaxDelay)
	}
	if d < 0 {
		d = 0
	}
	return time.Duration(d)
}

// lockedSource makes a rand.Source64 safe for the concurrent backoff
// calls issued by channels, links and pipelined invokes sharing one
// peer-level seeded RNG.
type lockedSource struct {
	mu  sync.Mutex
	src rand.Source64
}

func (s *lockedSource) Int63() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.src.Int63()
}

func (s *lockedSource) Uint64() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.src.Uint64()
}

func (s *lockedSource) Seed(seed int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.src.Seed(seed)
}
