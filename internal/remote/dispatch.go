package remote

// Bounded dispatch of inbound invocations.
//
// The seed spawned one goroutine per inbound Invoke frame, which kept
// the reader responsive but let a hostile or merely enthusiastic peer
// grow goroutines without bound. Dispatch is now bounded by a slot
// semaphore: the reader acquires a slot before spawning the handler,
// and once DispatchWorkers handlers are in flight the reader blocks, so
// backpressure propagates to the transport (the peer's sends stall)
// instead of into unbounded memory.
//
// Two regimes, on purpose:
//
//   - Slots free (sporadic load): the handler is spawned fresh, exactly
//     like the seed. A persistent worker pool was measured ~3x slower
//     here on the in-proc fabric — its handoff let the whole process go
//     idle between simulated-delivery timers (an idle-process timer
//     wakeup costs ~130us vs ~20us when other goroutines keep the
//     scheduler busy), while freshly spawned handlers interleave with
//     the reader and keep the pipeline phases smeared.
//
//   - Slots exhausted (sustained load): the reader parks, offering the
//     frame on an unbuffered chain channel, and a finishing handler
//     takes it directly — keeping its slot and reusing its goroutine.
//     Under a pipelined flood this converges to a fixed set of hot
//     handler goroutines (~45% more throughput than spawning: no
//     per-invoke goroutine creation or stack growth) without the idle
//     pool's latency penalty, because the chain only forms when there
//     is no idle time.
//
// There is no stranded-work window: the parked reader offers the frame
// and a slot acquisition in the same select, so if every handler exits
// instead of chaining, the freed slot wakes the reader and it spawns.
//
// Setting Config.DispatchWorkers negative restores the seed's unbounded
// behavior for ablation runs.

import "github.com/alfredo-mw/alfredo/internal/wire"

// invokeWork is one inbound invocation as handed from the reader to a
// handler goroutine: the decoded frame plus its wire size (for devsim
// dispatch-cost accounting).
type invokeWork struct {
	m    *wire.Invoke
	size int
}

// startDispatch initializes the dispatch bound. With a negative
// DispatchWorkers it does nothing, and dispatchInvoke falls back to
// unbounded goroutine-per-invoke.
func (c *Channel) startDispatch() {
	workers := c.peer.cfg.DispatchWorkers
	if workers < 0 {
		return
	}
	m := c.peer.cfg.Obs.Metrics
	c.dispatchSem = make(chan struct{}, workers)
	c.chainQ = make(chan invokeWork)
	c.dispatchDepth = m.Gauge("alfredo_remote_dispatch_queue_depth")
	c.dispatchStalls = m.Counter("alfredo_remote_dispatch_stalls_total")
}

// dispatchInvoke hands an inbound invocation to a bounded handler
// goroutine. It is called from the read loop only; blocking here (all
// slots taken) is the backpressure mechanism — the reader stops
// consuming frames until a handler finishes or chains.
//
// With the peer-wide reactor enabled (reactor.go), the channel slot is
// acquired here and ownership travels with the work item into the
// pool; without it, the handler is spawned per channel exactly as in
// the original bounded model.
func (c *Channel) dispatchInvoke(m *wire.Invoke, size int) {
	if c.dispatchSem == nil {
		// Ablation mode: unbounded goroutine-per-invoke, as seeded.
		c.wg.Add(1)
		go func() {
			defer c.wg.Done()
			c.handleInvoke(m, size)
		}()
		return
	}
	w := invokeWork{m, size}
	select {
	case c.dispatchSem <- struct{}{}:
	default:
		// Slots exhausted: count the stall, then park offering the frame
		// to a finishing handler (chain), a freed slot (spawn), or
		// teardown (drop — the channel is dying).
		c.dispatchStalls.Inc()
		select {
		case c.chainQ <- w:
			return
		case c.dispatchSem <- struct{}{}:
		case <-c.closed:
			return
		}
	}
	c.dispatchDepth.Add(1)
	if r := c.peer.reactor; r != nil {
		r.submit(c, w)
		return
	}
	c.wg.Add(1)
	go c.invokeWorker(w)
}

// releaseSlot returns a channel dispatch slot; whoever executes (or
// drops) a frame releases the slot that frame held.
func (c *Channel) releaseSlot() {
	<-c.dispatchSem
	c.dispatchDepth.Add(-1)
}

// invokeWorker handles one invocation, then chains into the next parked
// frame if the reader is stalled on slots — reusing this goroutine and
// its slot — and releases the slot only when no work is waiting. This
// is the per-channel-only path (reactor disabled).
func (c *Channel) invokeWorker(w invokeWork) {
	defer c.wg.Done()
	for {
		c.handleInvoke(w.m, w.size)
		select {
		case w = <-c.chainQ:
			continue
		default:
			c.releaseSlot()
			return
		}
	}
}
