package remote

import (
	"errors"
	"io"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/alfredo-mw/alfredo/internal/event"
	"github.com/alfredo-mw/alfredo/internal/module"
	"github.com/alfredo-mw/alfredo/internal/netsim"
	"github.com/alfredo-mw/alfredo/internal/service"
	"github.com/alfredo-mw/alfredo/internal/wire"
)

// testNode is one side of a two-peer test setup.
type testNode struct {
	fw     *module.Framework
	events *event.Admin
	peer   *Peer
}

func newTestNode(t *testing.T, name string) *testNode {
	t.Helper()
	fw := module.NewFramework(module.Config{Name: name})
	ev := event.NewAdmin(0)
	peer, err := NewPeer(Config{
		Framework: fw,
		Events:    ev,
		ProxyCode: NewProxyCodeRegistry(),
		Timeout:   5 * time.Second,
	})
	if err != nil {
		t.Fatalf("NewPeer(%s): %v", name, err)
	}
	n := &testNode{fw: fw, events: ev, peer: peer}
	t.Cleanup(func() {
		peer.Close()
		ev.Close()
		_ = fw.Shutdown()
	})
	return n
}

// connectNodes wires two nodes over the netsim fabric and returns the
// client-side channel.
func connectNodes(t *testing.T, server, client *testNode, link netsim.LinkProfile) *Channel {
	t.Helper()
	fabric := netsim.NewFabric()
	l, err := fabric.Listen(server.peer.ID())
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	t.Cleanup(func() { _ = l.Close() })

	go func() { _ = server.peer.Serve(l) }()

	conn, err := fabric.Dial(server.peer.ID(), link)
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	ch, err := client.peer.Connect(conn)
	if err != nil {
		t.Fatalf("Connect: %v", err)
	}
	t.Cleanup(ch.Close)
	return ch
}

// calculator is a tiny exported service used across the tests.
func calculatorService() *MethodTable {
	return NewService("test.Calculator").
		Method("Add", []string{"int", "int"}, "int", func(args []any) (any, error) {
			return args[0].(int64) + args[1].(int64), nil
		}).
		Method("Concat", []string{"string", "string"}, "string", func(args []any) (any, error) {
			return args[0].(string) + args[1].(string), nil
		}).
		Method("Fail", nil, "void", func(args []any) (any, error) {
			return nil, errors.New("deliberate failure")
		}).
		WithDescriptor([]byte(`{"service":"test.Calculator"}`))
}

func exportCalculator(t *testing.T, n *testNode) *service.Registration {
	t.Helper()
	reg, err := n.fw.Registry().Register(
		[]string{"test.Calculator"}, calculatorService(),
		service.Properties{PropExported: true, "flavor": "vanilla"}, "test")
	if err != nil {
		t.Fatalf("Register: %v", err)
	}
	return reg
}

func TestHandshakeAndLease(t *testing.T) {
	server := newTestNode(t, "target-device")
	client := newTestNode(t, "phone")
	exportCalculator(t, server)

	ch := connectNodes(t, server, client, netsim.Loopback)

	if ch.RemoteID() != "target-device" {
		t.Errorf("RemoteID = %s", ch.RemoteID())
	}
	svcs := ch.RemoteServices()
	if len(svcs) != 1 {
		t.Fatalf("remote services = %d, want 1", len(svcs))
	}
	if svcs[0].Interfaces[0] != "test.Calculator" {
		t.Errorf("lease interface = %v", svcs[0].Interfaces)
	}
	if svcs[0].Props["flavor"] != "vanilla" {
		t.Errorf("lease props = %v", svcs[0].Props)
	}
}

func TestNonExportedServicesInvisible(t *testing.T) {
	server := newTestNode(t, "srv")
	client := newTestNode(t, "cli")
	// Registered without the export flag.
	_, _ = server.fw.Registry().Register([]string{"hidden.Svc"}, calculatorService(), nil, "test")

	ch := connectNodes(t, server, client, netsim.Loopback)
	if got := len(ch.RemoteServices()); got != 0 {
		t.Errorf("lease should be empty, got %d services", got)
	}
}

func TestInvoke(t *testing.T) {
	server := newTestNode(t, "srv")
	client := newTestNode(t, "cli")
	exportCalculator(t, server)
	ch := connectNodes(t, server, client, netsim.Loopback)

	info, ok := ch.FindRemoteService("test.Calculator")
	if !ok {
		t.Fatal("calculator not in lease")
	}
	got, err := ch.Invoke(info.ID, "Add", []any{int64(20), int64(22)})
	if err != nil {
		t.Fatalf("Invoke Add: %v", err)
	}
	if got != int64(42) {
		t.Errorf("Add = %v, want 42", got)
	}
	got, err = ch.Invoke(info.ID, "Concat", []any{"foo", "bar"})
	if err != nil {
		t.Fatalf("Invoke Concat: %v", err)
	}
	if got != "foobar" {
		t.Errorf("Concat = %v", got)
	}
}

func TestInvokeErrors(t *testing.T) {
	server := newTestNode(t, "srv")
	client := newTestNode(t, "cli")
	exportCalculator(t, server)
	ch := connectNodes(t, server, client, netsim.Loopback)
	info, _ := ch.FindRemoteService("test.Calculator")

	if _, err := ch.Invoke(info.ID, "Missing", nil); !errors.Is(err, ErrNoSuchMethod) {
		t.Errorf("missing method error = %v", err)
	}
	if _, err := ch.Invoke(info.ID, "Add", []any{"not", "ints"}); !errors.Is(err, ErrBadArgs) {
		t.Errorf("bad args error = %v", err)
	}
	if _, err := ch.Invoke(info.ID, "Fail", nil); !errors.Is(err, ErrRemoteFailure) {
		t.Errorf("service failure error = %v", err)
	}
	if _, err := ch.Invoke(99999, "Add", []any{int64(1), int64(2)}); !errors.Is(err, ErrNoSuchService) {
		t.Errorf("unknown service error = %v", err)
	}
	var re *RemoteError
	_, err := ch.Invoke(info.ID, "Fail", nil)
	if !errors.As(err, &re) || re.Code != CodeInvokeFailed {
		t.Errorf("error detail = %v", err)
	}
}

func TestFetchAndInstallProxy(t *testing.T) {
	server := newTestNode(t, "srv")
	client := newTestNode(t, "cli")
	exportCalculator(t, server)
	ch := connectNodes(t, server, client, netsim.Loopback)
	info, _ := ch.FindRemoteService("test.Calculator")

	reply, err := ch.Fetch(info.ID)
	if err != nil {
		t.Fatalf("Fetch: %v", err)
	}
	if len(reply.Interfaces) != 1 || reply.Interfaces[0].Name != "test.Calculator" {
		t.Fatalf("fetched interfaces = %v", reply.Interfaces)
	}
	if len(reply.Interfaces[0].Methods) != 3 {
		t.Errorf("method count = %d, want 3", len(reply.Interfaces[0].Methods))
	}
	if string(reply.Descriptor) != `{"service":"test.Calculator"}` {
		t.Errorf("descriptor = %q", reply.Descriptor)
	}

	bundle, proxy, err := ch.InstallProxy(reply)
	if err != nil {
		t.Fatalf("InstallProxy: %v", err)
	}
	if bundle.State() != module.StateActive {
		t.Errorf("proxy bundle state = %v", bundle.State())
	}

	// The proxy is now a regular local service.
	ref := client.fw.Registry().Find("test.Calculator", nil)
	if ref == nil {
		t.Fatal("proxy not registered locally")
	}
	if remoteFlag, _ := ref.Property(service.PropRemote); remoteFlag != true {
		t.Error("proxy not marked service.remote")
	}
	obj, _ := client.fw.Registry().Get(ref, "consumer")
	local := obj.(*DynamicService)
	got, err := local.Invoke("Add", []any{int64(1), int64(2)})
	if err != nil || got != int64(3) {
		t.Errorf("proxy Invoke = %v, %v", got, err)
	}
	if local != proxy {
		t.Error("registered proxy is not the returned proxy")
	}

	// Int widening happens transparently in the proxy.
	got, err = local.Invoke("Add", []any{3, 4})
	if err != nil || got != int64(7) {
		t.Errorf("proxy Invoke with plain ints = %v, %v", got, err)
	}
}

func TestFetchUnknownService(t *testing.T) {
	server := newTestNode(t, "srv")
	client := newTestNode(t, "cli")
	exportCalculator(t, server)
	ch := connectNodes(t, server, client, netsim.Loopback)
	if _, err := ch.Fetch(424242); !errors.Is(err, ErrNoSuchService) {
		t.Errorf("Fetch unknown = %v", err)
	}
}

func TestProxyUninstalledOnChannelClose(t *testing.T) {
	server := newTestNode(t, "srv")
	client := newTestNode(t, "cli")
	exportCalculator(t, server)
	ch := connectNodes(t, server, client, netsim.Loopback)
	info, _ := ch.FindRemoteService("test.Calculator")
	reply, err := ch.Fetch(info.ID)
	if err != nil {
		t.Fatal(err)
	}
	bundle, _, err := ch.InstallProxy(reply)
	if err != nil {
		t.Fatal(err)
	}

	ch.Close()
	waitFor(t, time.Second, func() bool {
		return bundle.State() == module.StateUninstalled
	})
	if client.fw.Registry().Find("test.Calculator", nil) != nil {
		t.Error("proxy service survived channel close")
	}
}

func TestLeaseUpdates(t *testing.T) {
	server := newTestNode(t, "srv")
	client := newTestNode(t, "cli")
	ch := connectNodes(t, server, client, netsim.Loopback)

	var mu sync.Mutex
	changes := 0
	ch.OnServicesChanged(func() {
		mu.Lock()
		changes++
		mu.Unlock()
	})

	if len(ch.RemoteServices()) != 0 {
		t.Fatal("lease should start empty")
	}
	reg := exportCalculator(t, server)
	waitFor(t, time.Second, func() bool { return len(ch.RemoteServices()) == 1 })

	_ = reg.Unregister()
	waitFor(t, time.Second, func() bool { return len(ch.RemoteServices()) == 0 })

	mu.Lock()
	defer mu.Unlock()
	if changes < 2 {
		t.Errorf("change notifications = %d, want >= 2", changes)
	}
}

func TestRemoteEvents(t *testing.T) {
	r := newVRig(t, 3, 5*time.Second, RetryPolicy{})
	ch, _ := r.connect(t, netsim.Loopback)

	received := make(chan event.Event, 8)
	if _, err := r.client.events.Subscribe("telemetry/*", nil, func(ev event.Event) {
		received <- ev
	}); err != nil {
		t.Fatal(err)
	}
	r.drive(t, time.Minute, func() {
		if err := ch.SetRemoteSubscriptions([]string{"telemetry/*"}); err != nil {
			t.Errorf("SetRemoteSubscriptions: %v", err)
		}
	})
	// Let the Subscribe frame land on the server before posting.
	r.v.WaitCond(100*time.Millisecond, func() bool { return false })

	if err := r.server.events.Post(event.Event{
		Topic:      "telemetry/temp",
		Properties: map[string]any{"celsius": int64(21)},
	}); err != nil {
		t.Fatal(err)
	}

	if !r.v.WaitCond(2*time.Second, func() bool { return len(received) > 0 }) {
		t.Fatal("remote event never arrived")
	}
	ev := <-received
	if ev.Topic != "telemetry/temp" {
		t.Errorf("topic = %s", ev.Topic)
	}
	if ev.Properties["celsius"] != int64(21) {
		t.Errorf("props = %v", ev.Properties)
	}
	if ev.Properties[PropOriginPeer] != "target" {
		t.Errorf("origin = %v", ev.Properties[PropOriginPeer])
	}

	// Unmatched topics are not forwarded: give the fabric a bounded
	// window of virtual time, then require silence.
	_ = r.server.events.Post(event.Event{Topic: "other/topic"})
	r.v.WaitCond(200*time.Millisecond, func() bool { return false })
	select {
	case ev := <-received:
		t.Errorf("unexpected event %v", ev)
	default:
	}
}

func TestEventLoopPrevention(t *testing.T) {
	r := newVRig(t, 4, 5*time.Second, RetryPolicy{})
	ch, _ := r.connect(t, netsim.Loopback)

	// Both sides subscribe to everything — without origin tracking this
	// would ping-pong forever.
	r.drive(t, time.Minute, func() {
		if err := ch.SetRemoteSubscriptions([]string{"*"}); err != nil {
			t.Errorf("SetRemoteSubscriptions: %v", err)
			return
		}
		for _, c := range r.server.peer.Channels() {
			if err := c.SetRemoteSubscriptions([]string{"*"}); err != nil {
				t.Errorf("SetRemoteSubscriptions (server): %v", err)
			}
		}
	})
	r.v.WaitCond(100*time.Millisecond, func() bool { return false })

	var mu sync.Mutex
	count := 0
	_, _ = r.server.events.Subscribe("ping/pong", nil, func(event.Event) {
		mu.Lock()
		count++
		mu.Unlock()
	})
	_ = r.server.events.Post(event.Event{Topic: "ping/pong"})
	// A bounded window of virtual time: any echo storm would ping-pong
	// across the loopback link well within half a second.
	r.v.WaitCond(500*time.Millisecond, func() bool { return false })
	mu.Lock()
	defer mu.Unlock()
	if count > 2 {
		t.Errorf("event echoed %d times; loop prevention failed", count)
	}
}

func TestStreams(t *testing.T) {
	server := newTestNode(t, "srv")
	client := newTestNode(t, "cli")
	ch := connectNodes(t, server, client, netsim.Loopback)

	got := make(chan []byte, 16)
	name := make(chan string, 1)
	for _, sc := range server.peer.Channels() {
		sc.HandleStreams(func(r *StreamReader) {
			name <- r.Name
			for {
				chunk, err := r.Next()
				if err != nil {
					close(got)
					return
				}
				got <- chunk
			}
		})
	}

	w, err := ch.OpenStream("screen", map[string]any{"fmt": "rgb"})
	if err != nil {
		t.Fatalf("OpenStream: %v", err)
	}
	if _, err := w.Write([]byte("frame-1")); err != nil {
		t.Fatal(err)
	}
	if _, err := w.Write([]byte("frame-2")); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	select {
	case n := <-name:
		if n != "screen" {
			t.Errorf("stream name = %s", n)
		}
	case <-time.After(time.Second):
		t.Fatal("stream never opened")
	}
	var frames []string
	for chunk := range got {
		frames = append(frames, string(chunk))
	}
	if len(frames) != 2 || frames[0] != "frame-1" || frames[1] != "frame-2" {
		t.Errorf("frames = %v", frames)
	}
	if _, err := w.Write([]byte("late")); err == nil {
		t.Error("write after close should fail")
	}
}

func TestPing(t *testing.T) {
	server := newTestNode(t, "srv")
	client := newTestNode(t, "cli")
	link := netsim.LinkProfile{Name: "10ms", Latency: 10 * time.Millisecond}
	ch := connectNodes(t, server, client, link)

	rtt, err := ch.Ping()
	if err != nil {
		t.Fatalf("Ping: %v", err)
	}
	if rtt < 18*time.Millisecond || rtt > 150*time.Millisecond {
		t.Errorf("RTT = %v, want ~20ms", rtt)
	}
}

type doubleProxy struct{}

func (doubleProxy) Invoke(method string, args []any, remoteCall Invoker) (any, error) {
	if method == "Double" {
		return args[0].(int64) * 2, nil
	}
	return remoteCall.Invoke(method, args)
}

func TestSmartProxy(t *testing.T) {
	server := newTestNode(t, "srv")
	client := newTestNode(t, "cli")

	code := []byte("smart-proxy-code-v1")
	ref := module.HashRef(code)
	if err := client.peer.cfg.ProxyCode.Register(ref, func() ProxyCode { return doubleProxy{} }); err != nil {
		t.Fatal(err)
	}

	smart := NewService("test.Doubler").
		Method("Double", []string{"int"}, "int", func(args []any) (any, error) {
			t.Error("Double must run locally on the client, not remotely")
			return args[0].(int64) * 2, nil
		}).
		Method("Triple", []string{"int"}, "int", func(args []any) (any, error) {
			return args[0].(int64) * 3, nil
		}).
		WithSmartProxy(&wire.SmartProxyRef{CodeRef: ref, LocalMethods: []string{"Double"}})
	_, _ = server.fw.Registry().Register([]string{"test.Doubler"}, smart,
		service.Properties{PropExported: true}, "test")

	ch := connectNodes(t, server, client, netsim.Loopback)
	info, _ := ch.FindRemoteService("test.Doubler")
	reply, err := ch.Fetch(info.ID)
	if err != nil {
		t.Fatal(err)
	}
	_, proxy, err := ch.InstallProxy(reply)
	if err != nil {
		t.Fatal(err)
	}

	// Local method runs in the pre-installed proxy code.
	got, err := proxy.Invoke("Double", []any{int64(21)})
	if err != nil || got != int64(42) {
		t.Errorf("Double = %v, %v", got, err)
	}
	// Abstract method falls through to the remote service.
	got, err = proxy.Invoke("Triple", []any{int64(7)})
	if err != nil || got != int64(21) {
		t.Errorf("Triple = %v, %v", got, err)
	}
}

func TestSmartProxyWithoutLocalCodeFallsBack(t *testing.T) {
	server := newTestNode(t, "srv")
	client := newTestNode(t, "cli")

	smart := NewService("test.Doubler").
		Method("Double", []string{"int"}, "int", func(args []any) (any, error) {
			return args[0].(int64) * 2, nil
		}).
		WithSmartProxy(&wire.SmartProxyRef{CodeRef: "sha256:unknown", LocalMethods: []string{"Double"}})
	_, _ = server.fw.Registry().Register([]string{"test.Doubler"}, smart,
		service.Properties{PropExported: true}, "test")

	ch := connectNodes(t, server, client, netsim.Loopback)
	info, _ := ch.FindRemoteService("test.Doubler")
	reply, _ := ch.Fetch(info.ID)
	_, proxy, err := ch.InstallProxy(reply)
	if err != nil {
		t.Fatal(err)
	}
	// Unknown code ref: everything goes remote, still correct.
	got, err := proxy.Invoke("Double", []any{int64(5)})
	if err != nil || got != int64(10) {
		t.Errorf("Double fallback = %v, %v", got, err)
	}
}

func TestConcurrentInvocations(t *testing.T) {
	server := newTestNode(t, "srv")
	client := newTestNode(t, "cli")
	exportCalculator(t, server)
	ch := connectNodes(t, server, client, netsim.Loopback)
	info, _ := ch.FindRemoteService("test.Calculator")

	var wg sync.WaitGroup
	const n = 32
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			got, err := ch.Invoke(info.ID, "Add", []any{int64(i), int64(i)})
			if err != nil {
				t.Errorf("Invoke %d: %v", i, err)
				return
			}
			if got != int64(2*i) {
				t.Errorf("Invoke %d = %v", i, got)
			}
		}(i)
	}
	wg.Wait()
}

func TestChannelCloseFailsPendingCalls(t *testing.T) {
	r := newVRig(t, 5, 5*time.Second, RetryPolicy{})
	var calls atomic.Int64
	exportSlow(t, r, &calls, 2*time.Second)
	ch, _ := r.connect(t, netsim.Loopback)
	id := soleServiceID(t, ch)

	errCh := make(chan error, 1)
	go func() {
		_, err := ch.Invoke(id, "Nap", nil)
		errCh <- err
	}()
	// Close only once the call is provably in flight on the server.
	if !r.v.WaitCond(time.Second, func() bool { return calls.Load() == 1 }) {
		t.Fatal("slow call never reached the server")
	}
	r.drive(t, time.Minute, ch.Close)
	if !r.v.WaitCond(time.Second, func() bool { return len(errCh) > 0 }) {
		t.Fatal("pending call not failed on close")
	}
	if err := <-errCh; !errors.Is(err, ErrChannelClosed) {
		t.Errorf("pending call error = %v, want ErrChannelClosed", err)
	}
}

func TestInvokeTimeout(t *testing.T) {
	// An impatient client (50ms budget) against a 1s-virtual-sleep
	// handler: the call must surface ErrTimeout after 50ms of simulated
	// time, not wall time.
	r := newVRig(t, 6, 50*time.Millisecond, RetryPolicy{})
	var calls atomic.Int64
	exportSlow(t, r, &calls, time.Second)
	ch, _ := r.connect(t, netsim.Loopback)
	id := soleServiceID(t, ch)

	r.drive(t, time.Minute, func() {
		if _, err := ch.Invoke(id, "Nap", nil); !errors.Is(err, ErrTimeout) {
			t.Errorf("Invoke = %v, want ErrTimeout", err)
		}
	})
}

func TestHandshakeVersionMismatch(t *testing.T) {
	client := newTestNode(t, "cli")
	a, b := net.Pipe()
	defer a.Close()
	defer b.Close()

	done := make(chan error, 1)
	go func() {
		_, err := client.peer.Connect(a)
		done <- err
	}()
	// Fake server with wrong protocol version.
	if _, err := wire.ReadMessage(b); err != nil {
		t.Fatal(err)
	}
	if err := wire.WriteMessage(b, &wire.Hello{PeerID: "impostor", Version: 99}); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if !errors.Is(err, ErrBadHandshake) {
			t.Errorf("Connect = %v, want ErrBadHandshake", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("handshake did not fail")
	}
}

func TestServiceExportRequiresInterface(t *testing.T) {
	n := newTestNode(t, "n")
	// A plain struct flagged for export is ignored, not fatal.
	_, _ = n.fw.Registry().Register([]string{"bogus"}, &struct{ X int }{},
		service.Properties{PropExported: true}, "test")
	if infos := n.peer.exportedInfosFor(""); len(infos) != 0 {
		t.Errorf("unexportable service leaked into lease: %v", infos)
	}
}

func TestMethodTablePanicsOnDuplicates(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("duplicate method should panic")
		}
	}()
	NewService("x").
		Method("A", nil, "void", func([]any) (any, error) { return nil, nil }).
		Method("A", nil, "void", func([]any) (any, error) { return nil, nil })
}

func waitFor(t *testing.T, timeout time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatal("condition never became true")
}

func TestLeasePropertyModification(t *testing.T) {
	server := newTestNode(t, "srv")
	client := newTestNode(t, "cli")
	reg := exportCalculator(t, server)
	ch := connectNodes(t, server, client, netsim.Loopback)

	// Property changes on an exported service propagate to the lease.
	if err := reg.SetProperties(service.Properties{
		PropExported: true, "flavor": "chocolate",
	}); err != nil {
		t.Fatal(err)
	}
	waitFor(t, time.Second, func() bool {
		info, ok := ch.FindRemoteService("test.Calculator")
		return ok && info.Props["flavor"] == "chocolate"
	})

	// Withdrawing the export flag retracts the lease entry.
	if err := reg.SetProperties(service.Properties{"flavor": "chocolate"}); err != nil {
		t.Fatal(err)
	}
	waitFor(t, time.Second, func() bool {
		_, ok := ch.FindRemoteService("test.Calculator")
		return !ok
	})

	// Re-flagging exports it again.
	if err := reg.SetProperties(service.Properties{PropExported: true}); err != nil {
		t.Fatal(err)
	}
	waitFor(t, time.Second, func() bool {
		_, ok := ch.FindRemoteService("test.Calculator")
		return ok
	})
}

func TestStreamBackpressureDropsOldest(t *testing.T) {
	server := newTestNode(t, "srv")
	client := newTestNode(t, "cli")
	ch := connectNodes(t, server, client, netsim.Loopback)

	started := make(chan *StreamReader, 1)
	for _, sc := range server.peer.Channels() {
		sc.HandleStreams(func(r *StreamReader) {
			started <- r
			// Deliberately never read: the consumer is stuck.
			<-r.s.ch // consume exactly one to prove ordering, then stall
			select {}
		})
	}

	// Unreliable class: the paper's adaptive drop-oldest semantics.
	// (Reliable streams — the default — now backpressure the writer
	// instead of dropping; see TestStreamCreditBackpressure.)
	w, err := ch.OpenStreamClass("firehose", StreamUnreliable, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Overflow the backlog decisively.
	for i := 0; i < streamBacklog*2; i++ {
		if _, err := w.Write([]byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	var reader *StreamReader
	select {
	case reader = <-started:
	case <-time.After(2 * time.Second):
		t.Fatal("stream never started")
	}
	waitFor(t, 2*time.Second, func() bool { return reader.Dropped() > 0 })
}

func TestStreamAbortReportsError(t *testing.T) {
	server := newTestNode(t, "srv")
	client := newTestNode(t, "cli")
	ch := connectNodes(t, server, client, netsim.Loopback)

	errCh := make(chan error, 1)
	for _, sc := range server.peer.Channels() {
		sc.HandleStreams(func(r *StreamReader) {
			for {
				if _, err := r.Next(); err != nil {
					errCh <- err
					return
				}
			}
		})
	}
	w, err := ch.OpenStream("doomed", nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Write([]byte("x")); err != nil {
		t.Fatal(err)
	}
	if err := w.Abort("camera unplugged"); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-errCh:
		if err == nil || !strings.Contains(err.Error(), "camera unplugged") {
			t.Errorf("stream error = %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("abort never reached the reader")
	}
}

func TestStreamReaderAsIOReader(t *testing.T) {
	server := newTestNode(t, "srv")
	client := newTestNode(t, "cli")
	ch := connectNodes(t, server, client, netsim.Loopback)

	got := make(chan []byte, 1)
	for _, sc := range server.peer.Channels() {
		sc.HandleStreams(func(r *StreamReader) {
			data, err := io.ReadAll(r)
			if err != nil {
				t.Errorf("ReadAll: %v", err)
			}
			got <- data
		})
	}
	w, err := ch.OpenStream("bytes", nil)
	if err != nil {
		t.Fatal(err)
	}
	payload := []byte("high-volume data exchange through transparent stream proxies")
	if _, err := w.Write(payload[:20]); err != nil {
		t.Fatal(err)
	}
	if _, err := w.Write(payload[20:]); err != nil {
		t.Fatal(err)
	}
	_ = w.Close()
	select {
	case data := <-got:
		if string(data) != string(payload) {
			t.Errorf("stream data = %q", data)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("stream data never arrived")
	}
}

func TestInvokeTimesOutOnLossyLink(t *testing.T) {
	fwS := module.NewFramework(module.Config{Name: "lossy-srv"})
	defer fwS.Shutdown()
	peerS, err := NewPeer(Config{Framework: fwS})
	if err != nil {
		t.Fatal(err)
	}
	defer peerS.Close()
	_, _ = fwS.Registry().Register([]string{"test.Calculator"}, calculatorService(),
		service.Properties{PropExported: true}, "test")

	fwC := module.NewFramework(module.Config{Name: "lossy-cli"})
	defer fwC.Shutdown()
	peerC, err := NewPeer(Config{Framework: fwC, Timeout: 150 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer peerC.Close()

	fabric := netsim.NewFabric()
	l, _ := fabric.Listen("lossy-srv")
	defer l.Close()
	go func() { _ = peerS.Serve(l) }()
	conn, err := fabric.Dial("lossy-srv", netsim.Loopback)
	if err != nil {
		t.Fatal(err)
	}
	simConn := conn.(*netsim.Conn)
	ch, err := peerC.Connect(conn)
	if err != nil {
		t.Fatal(err)
	}
	defer ch.Close()
	info, _ := ch.FindRemoteService("test.Calculator")

	// The radio degrades to total loss after the handshake: the next
	// invocation must fail with a timeout, not hang.
	simConn.SetLink(netsim.LinkProfile{Name: "dead", LossProb: 1.0})
	if _, err := ch.Invoke(info.ID, "Add", []any{int64(1), int64(2)}); !errors.Is(err, ErrTimeout) {
		t.Errorf("Invoke over dead link = %v, want ErrTimeout", err)
	}
}

func TestChannelAccessors(t *testing.T) {
	server := newTestNode(t, "accessor-srv")
	client := newTestNode(t, "accessor-cli")
	exportCalculator(t, server)
	ch := connectNodes(t, server, client, netsim.Loopback)

	props := ch.RemoteProps()
	if _, ok := props["device"]; !ok {
		t.Errorf("hello props = %v", props)
	}
	if ch.Err() != nil {
		t.Errorf("Err before close = %v", ch.Err())
	}
	select {
	case <-ch.Done():
		t.Fatal("Done closed prematurely")
	default:
	}
	if got := len(client.peer.Channels()); got != 1 {
		t.Errorf("client channels = %d", got)
	}
	if client.peer.Framework() != client.fw || client.peer.Events() != client.events {
		t.Error("peer accessors mismatched")
	}
	if client.peer.Device() != nil {
		t.Error("device should be nil")
	}

	// Type injection survives the proxy pipeline.
	smart := NewService("typed.Svc").
		Method("Get", nil, "map", func(args []any) (any, error) {
			return map[string]any{"a": int64(1)}, nil
		}).
		WithTypes(wire.TypeDesc{Name: "Thing", Fields: []wire.TypeField{{Name: "a", Type: "int"}}})
	_, _ = server.fw.Registry().Register([]string{"typed.Svc"}, smart,
		service.Properties{PropExported: true}, "test")
	waitFor(t, time.Second, func() bool {
		_, ok := ch.FindRemoteService("typed.Svc")
		return ok
	})
	info, _ := ch.FindRemoteService("typed.Svc")
	reply, err := ch.Fetch(info.ID)
	if err != nil {
		t.Fatal(err)
	}
	_, proxy, err := ch.InstallProxy(reply)
	if err != nil {
		t.Fatal(err)
	}
	types := proxy.Types()
	if len(types) != 1 || types[0].Name != "Thing" {
		t.Errorf("injected types = %v", types)
	}
	if proxy.ServiceID() != info.ID || proxy.Channel() != ch {
		t.Error("proxy identity accessors wrong")
	}

	ch.Close()
	select {
	case <-ch.Done():
	case <-time.After(time.Second):
		t.Fatal("Done never closed")
	}
}
