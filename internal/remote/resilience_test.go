package remote

import (
	"errors"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/alfredo-mw/alfredo/internal/event"
	"github.com/alfredo-mw/alfredo/internal/module"
	"github.com/alfredo-mw/alfredo/internal/netsim"
	"github.com/alfredo-mw/alfredo/internal/service"
)

// newRetryNode is newTestNode with an explicit timeout and retry
// policy, for tests that exercise the failure paths.
func newRetryNode(t *testing.T, name string, timeout time.Duration, retry RetryPolicy) *testNode {
	t.Helper()
	fw := module.NewFramework(module.Config{Name: name})
	ev := event.NewAdmin(0)
	peer, err := NewPeer(Config{
		Framework: fw,
		Events:    ev,
		ProxyCode: NewProxyCodeRegistry(),
		Timeout:   timeout,
		Retry:     retry,
	})
	if err != nil {
		t.Fatalf("NewPeer(%s): %v", name, err)
	}
	n := &testNode{fw: fw, events: ev, peer: peer}
	t.Cleanup(func() {
		peer.Close()
		ev.Close()
		_ = fw.Shutdown()
	})
	return n
}

// serveFabric binds the server peer to the fabric under its own id.
func serveFabric(t *testing.T, fabric *netsim.Fabric, server *testNode) {
	t.Helper()
	l, err := fabric.Listen(server.peer.ID())
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	t.Cleanup(func() { _ = l.Close() })
	go func() { _ = server.peer.Serve(l) }()
}

// connectRaw dials over the fabric and returns both the channel and the
// client-side simulated connection, so tests can inject faults.
func connectRaw(t *testing.T, fabric *netsim.Fabric, server, client *testNode, link netsim.LinkProfile) (*Channel, *netsim.Conn) {
	t.Helper()
	conn, err := fabric.Dial(server.peer.ID(), link)
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	ch, err := client.peer.Connect(conn)
	if err != nil {
		t.Fatalf("Connect: %v", err)
	}
	t.Cleanup(ch.Close)
	return ch, conn.(*netsim.Conn)
}

// slowService counts invocations and sleeps past the caller's timeout.
func slowService(calls *atomic.Int64, d time.Duration) *MethodTable {
	return NewService("test.Slow").
		Method("Nap", nil, "int", func(args []any) (any, error) {
			calls.Add(1)
			time.Sleep(d)
			return int64(42), nil
		}).
		Method("Fast", nil, "int", func(args []any) (any, error) {
			return int64(7), nil
		})
}

func exportSlow(t *testing.T, n *testNode, calls *atomic.Int64, d time.Duration) {
	t.Helper()
	if _, err := n.fw.Registry().Register([]string{"test.Slow"}, slowService(calls, d),
		service.Properties{PropExported: true}, "test"); err != nil {
		t.Fatalf("Register: %v", err)
	}
}

func soleServiceID(t *testing.T, ch *Channel) int64 {
	t.Helper()
	svcs := ch.RemoteServices()
	if len(svcs) != 1 {
		t.Fatalf("remote services = %d, want 1", len(svcs))
	}
	return svcs[0].ID
}

// TestInvokeTimeoutTyped asserts the single-attempt timeout contract:
// Invoke wraps ErrTimeout, is never retried (the outcome of the first
// attempt is unknown), and the channel stays usable afterwards.
func TestInvokeTimeoutTyped(t *testing.T) {
	var calls atomic.Int64
	server := newTestNode(t, "target")
	client := newRetryNode(t, "phone", 100*time.Millisecond,
		RetryPolicy{MaxAttempts: 3, BaseDelay: 10 * time.Millisecond})
	exportSlow(t, server, &calls, 300*time.Millisecond)

	fabric := netsim.NewFabric()
	serveFabric(t, fabric, server)
	ch, _ := connectRaw(t, fabric, server, client, netsim.Loopback)
	id := soleServiceID(t, ch)

	_, err := ch.Invoke(id, "Nap", nil)
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("Invoke error = %v, want ErrTimeout", err)
	}
	// Even with MaxAttempts=3 the non-idempotent path must not replay.
	time.Sleep(400 * time.Millisecond)
	if n := calls.Load(); n != 1 {
		t.Errorf("slow method executed %d times after Invoke, want 1", n)
	}
	// The channel survives the timeout (the stale reply is discarded).
	v, err := ch.Invoke(id, "Fast", nil)
	if err != nil || v != int64(7) {
		t.Errorf("Fast after timeout = %v, %v", v, err)
	}
}

// TestInvokeIdempotentRetries asserts the at-least-once path: every
// attempt times out, the call is replayed MaxAttempts times, and the
// final error reports the attempt count and wraps ErrTimeout.
func TestInvokeIdempotentRetries(t *testing.T) {
	var calls atomic.Int64
	server := newTestNode(t, "target")
	client := newRetryNode(t, "phone", 80*time.Millisecond,
		RetryPolicy{MaxAttempts: 3, BaseDelay: 10 * time.Millisecond})
	exportSlow(t, server, &calls, 250*time.Millisecond)

	fabric := netsim.NewFabric()
	serveFabric(t, fabric, server)
	ch, _ := connectRaw(t, fabric, server, client, netsim.Loopback)
	id := soleServiceID(t, ch)

	_, err := ch.InvokeIdempotent(id, "Nap", nil)
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("InvokeIdempotent error = %v, want ErrTimeout", err)
	}
	if !strings.Contains(err.Error(), "after 3 attempts") {
		t.Errorf("error does not report attempt count: %v", err)
	}
	time.Sleep(400 * time.Millisecond)
	if n := calls.Load(); n != 3 {
		t.Errorf("idempotent method executed %d times, want 3", n)
	}
}

// TestInvokeIdempotentRecovers asserts a retry succeeding once a
// partition lifts: the first attempt times out inside the stall, a
// later one lands after it.
func TestInvokeIdempotentRecovers(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-dependent retry test")
	}
	server := newTestNode(t, "target")
	client := newRetryNode(t, "phone", 150*time.Millisecond,
		RetryPolicy{MaxAttempts: 5, BaseDelay: 100 * time.Millisecond, Multiplier: 1})
	var calls atomic.Int64
	exportSlow(t, server, &calls, 0)

	fabric := netsim.NewFabric()
	serveFabric(t, fabric, server)
	ch, conn := connectRaw(t, fabric, server, client, netsim.Loopback)
	id := soleServiceID(t, ch)

	conn.Partition(250 * time.Millisecond)
	v, err := ch.InvokeIdempotent(id, "Fast", nil)
	if err != nil || v != int64(7) {
		t.Fatalf("InvokeIdempotent across partition = %v, %v", v, err)
	}
}

func TestFetchTimeoutTyped(t *testing.T) {
	var calls atomic.Int64
	server := newTestNode(t, "target")
	client := newRetryNode(t, "phone", 100*time.Millisecond, RetryPolicy{MaxAttempts: 1})
	exportSlow(t, server, &calls, 0)

	fabric := netsim.NewFabric()
	serveFabric(t, fabric, server)
	ch, conn := connectRaw(t, fabric, server, client, netsim.Loopback)
	id := soleServiceID(t, ch)

	conn.Partition(300 * time.Millisecond)
	if _, err := ch.Fetch(id); !errors.Is(err, ErrTimeout) {
		t.Fatalf("Fetch error = %v, want ErrTimeout", err)
	}
	// After the partition lifts the channel works again.
	time.Sleep(300 * time.Millisecond)
	if _, err := ch.Fetch(id); err != nil {
		t.Errorf("Fetch after partition = %v", err)
	}
}

func TestPingTimeoutTyped(t *testing.T) {
	server := newTestNode(t, "target")
	client := newRetryNode(t, "phone", 100*time.Millisecond, RetryPolicy{MaxAttempts: 1})

	fabric := netsim.NewFabric()
	serveFabric(t, fabric, server)
	ch, conn := connectRaw(t, fabric, server, client, netsim.Loopback)

	conn.Partition(300 * time.Millisecond)
	if _, err := ch.Ping(); !errors.Is(err, ErrTimeout) {
		t.Fatalf("Ping error = %v, want ErrTimeout", err)
	}
	time.Sleep(300 * time.Millisecond)
	if _, err := ch.Ping(); err != nil {
		t.Errorf("Ping after partition = %v", err)
	}
}

// TestLinkReconnect drops the transport under a resilient link and
// asserts the full recovery arc: Reconnecting is observed, the link
// comes back Up with a fresh channel, the lease is re-established, and
// invocations work again.
func TestLinkReconnect(t *testing.T) {
	server := newTestNode(t, "target")
	client := newRetryNode(t, "phone", time.Second,
		RetryPolicy{MaxAttempts: 3, BaseDelay: 20 * time.Millisecond, ReconnectBudget: 5 * time.Second})
	exportCalculator(t, server)

	fabric := netsim.NewFabric()
	serveFabric(t, fabric, server)

	var mu sync.Mutex
	var conns []*netsim.Conn
	dial := func() (net.Conn, error) {
		c, err := fabric.Dial(server.peer.ID(), netsim.Loopback)
		if err != nil {
			return nil, err
		}
		mu.Lock()
		conns = append(conns, c.(*netsim.Conn))
		mu.Unlock()
		return c, nil
	}
	link, err := client.peer.DialLink(dial)
	if err != nil {
		t.Fatalf("DialLink: %v", err)
	}
	defer link.Close()

	var states []LinkState
	link.OnStateChange(func(st LinkState, _ *Channel) {
		mu.Lock()
		states = append(states, st)
		mu.Unlock()
	})

	first := link.Channel()
	id := soleServiceID(t, first)
	if v, err := first.Invoke(id, "Add", []any{int64(2), int64(3)}); err != nil || v != int64(5) {
		t.Fatalf("Add before drop = %v, %v", v, err)
	}

	mu.Lock()
	conns[0].Drop()
	mu.Unlock()
	// The failure propagates through the dead channel's read loop; wait
	// for the link to notice before asking for recovery.
	deadline := time.Now().Add(2 * time.Second)
	for link.State() == LinkUp && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}

	ch, err := link.Await(5 * time.Second)
	if err != nil {
		t.Fatalf("Await after drop: %v", err)
	}
	if ch == first {
		t.Fatal("Await returned the dropped channel")
	}
	// The lease was re-exchanged during the reconnect handshake.
	id2 := soleServiceID(t, ch)
	if v, err := ch.Invoke(id2, "Add", []any{int64(20), int64(30)}); err != nil || v != int64(50) {
		t.Errorf("Add after reconnect = %v, %v", v, err)
	}
	if link.State() != LinkUp {
		t.Errorf("link state = %v, want up", link.State())
	}
	mu.Lock()
	defer mu.Unlock()
	if len(states) < 2 || states[0] != LinkReconnecting || states[len(states)-1] != LinkUp {
		t.Errorf("state transitions = %v, want reconnecting...up", states)
	}
}

// TestLinkDownAfterBudget blocks the dial target so every reconnect
// attempt fails: the link must go terminally Down within its budget and
// surface the typed error.
func TestLinkDownAfterBudget(t *testing.T) {
	server := newTestNode(t, "target")
	client := newRetryNode(t, "phone", time.Second,
		RetryPolicy{MaxAttempts: 2, BaseDelay: 20 * time.Millisecond, ReconnectBudget: 250 * time.Millisecond})
	exportCalculator(t, server)

	fabric := netsim.NewFabric()
	serveFabric(t, fabric, server)

	dial := func() (net.Conn, error) { return fabric.Dial(server.peer.ID(), netsim.Loopback) }
	link, err := client.peer.DialLink(dial)
	if err != nil {
		t.Fatalf("DialLink: %v", err)
	}
	defer link.Close()

	fabric.Block(server.peer.ID(), time.Hour)
	link.Channel().Close()

	start := time.Now()
	if _, err := link.Await(5 * time.Second); !errors.Is(err, ErrLinkDown) {
		t.Fatalf("Await = %v, want ErrLinkDown", err)
	}
	if d := time.Since(start); d > 3*time.Second {
		t.Errorf("link took %v to go down, budget was 250ms", d)
	}
	if link.State() != LinkDown {
		t.Errorf("state = %v, want down", link.State())
	}
	if !errors.Is(link.Err(), ErrLinkDown) {
		t.Errorf("Err() = %v, want ErrLinkDown", link.Err())
	}
}

// TestLinkCloseStopsReconnect closes the link while it is mid-reconnect
// and asserts the monitor goroutine exits without going Down.
func TestLinkCloseStopsReconnect(t *testing.T) {
	server := newTestNode(t, "target")
	client := newRetryNode(t, "phone", time.Second,
		RetryPolicy{MaxAttempts: 2, BaseDelay: 50 * time.Millisecond, ReconnectBudget: time.Hour})
	exportCalculator(t, server)

	fabric := netsim.NewFabric()
	serveFabric(t, fabric, server)

	dial := func() (net.Conn, error) { return fabric.Dial(server.peer.ID(), netsim.Loopback) }
	link, err := client.peer.DialLink(dial)
	if err != nil {
		t.Fatalf("DialLink: %v", err)
	}
	fabric.Block(server.peer.ID(), time.Hour)
	link.Channel().Close()
	time.Sleep(30 * time.Millisecond) // let the monitor enter redial
	link.Close()                      // must return (waits for the monitor)
	if st := link.State(); st != LinkClosed {
		t.Errorf("state after Close = %v, want closed", st)
	}
	link.Close() // idempotent
}
