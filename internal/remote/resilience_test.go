package remote

import (
	"errors"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/alfredo-mw/alfredo/internal/event"
	"github.com/alfredo-mw/alfredo/internal/module"
	"github.com/alfredo-mw/alfredo/internal/netsim"
	"github.com/alfredo-mw/alfredo/internal/service"
	"github.com/alfredo-mw/alfredo/internal/sim/clock"
	"github.com/alfredo-mw/alfredo/internal/sim/leak"
)

// The resilience tests run entirely on a virtual clock: timeouts, retry
// backoff, partitions and reconnect budgets are all simulated time, so
// the suite is deterministic and finishes in milliseconds of wall time.
// Blocking calls are run on their own goroutine while the test
// goroutine drives the clock (vrig.drive) — the virtual-clock
// replacement for the sleep-polling loops this file used to contain.

// vrig is a seeded two-peer rig on one shared virtual clock: fabric,
// server and client all take their time from v.
type vrig struct {
	v      *clock.Virtual
	fabric *netsim.Fabric
	server *testNode
	client *testNode
}

// newClockNode is newTestNode with an explicit clock, timeout and retry
// policy, for tests that exercise the failure paths on simulated time.
func newClockNode(t *testing.T, name string, v *clock.Virtual, timeout time.Duration, retry RetryPolicy) *testNode {
	t.Helper()
	fw := module.NewFramework(module.Config{Name: name})
	ev := event.NewAdmin(0)
	peer, err := NewPeer(Config{
		Framework: fw,
		Events:    ev,
		ProxyCode: NewProxyCodeRegistry(),
		Timeout:   timeout,
		Retry:     retry,
		Clock:     v,
	})
	if err != nil {
		t.Fatalf("NewPeer(%s): %v", name, err)
	}
	n := &testNode{fw: fw, events: ev, peer: peer}
	t.Cleanup(func() {
		// Teardown can wait on virtual timers (draining channels, the
		// link monitor), so it has to be driven like any blocking call.
		var done atomic.Bool
		go func() {
			defer done.Store(true)
			peer.Close()
			ev.Close()
			_ = fw.Shutdown()
		}()
		if !v.WaitCond(time.Minute, done.Load) {
			t.Errorf("teardown of %s stalled under the virtual clock", name)
		}
	})
	return n
}

func newVRig(t *testing.T, seed int64, timeout time.Duration, retry RetryPolicy) *vrig {
	t.Helper()
	// Registered before the node cleanups, so it runs after them (LIFO)
	// and verifies the rig's goroutines are gone once both peers close.
	leak.CheckGoroutines(t)
	v := clock.NewVirtual(seed)
	r := &vrig{
		v:      v,
		fabric: netsim.NewFabric().WithClock(v).WithSeed(seed),
		server: newClockNode(t, "target", v, 5*time.Second, RetryPolicy{}),
		client: newClockNode(t, "phone", v, timeout, retry),
	}
	serveFabric(t, r.fabric, r.server)
	return r
}

// drive runs fn on its own goroutine and steps the virtual clock until
// it returns, failing the test if fn is still blocked after budget of
// virtual time.
func (r *vrig) drive(t *testing.T, budget time.Duration, fn func()) {
	t.Helper()
	var done atomic.Bool
	go func() {
		defer done.Store(true)
		fn()
	}()
	if !r.v.WaitCond(budget, done.Load) {
		t.Fatalf("blocked call did not finish within %v of virtual time", budget)
	}
}

// connect dials the server over the fabric and returns both the channel
// and the client-side simulated connection, so tests can inject faults.
func (r *vrig) connect(t *testing.T, link netsim.LinkProfile) (*Channel, *netsim.Conn) {
	t.Helper()
	var ch *Channel
	var conn net.Conn
	r.drive(t, time.Minute, func() {
		c, err := r.fabric.Dial(r.server.peer.ID(), link)
		if err != nil {
			t.Errorf("Dial: %v", err)
			return
		}
		conn = c
		cc, err := r.client.peer.Connect(c)
		if err != nil {
			t.Errorf("Connect: %v", err)
			return
		}
		ch = cc
	})
	if ch == nil {
		t.FailNow()
	}
	t.Cleanup(func() {
		var done atomic.Bool
		go func() {
			defer done.Store(true)
			ch.Close()
		}()
		if !r.v.WaitCond(time.Minute, done.Load) {
			t.Error("channel close stalled under the virtual clock")
		}
	})
	return ch, conn.(*netsim.Conn)
}

// connectRaw dials over the fabric and returns both the channel and the
// client-side simulated connection, so tests can inject faults. Unlike
// vrig.connect it runs on whatever clock the nodes use (the hotpath
// tests use it on the wall clock).
func connectRaw(t *testing.T, fabric *netsim.Fabric, server, client *testNode, link netsim.LinkProfile) (*Channel, *netsim.Conn) {
	t.Helper()
	conn, err := fabric.Dial(server.peer.ID(), link)
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	ch, err := client.peer.Connect(conn)
	if err != nil {
		t.Fatalf("Connect: %v", err)
	}
	t.Cleanup(ch.Close)
	return ch, conn.(*netsim.Conn)
}

// serveFabric binds the server peer to the fabric under its own id.
func serveFabric(t *testing.T, fabric *netsim.Fabric, server *testNode) {
	t.Helper()
	l, err := fabric.Listen(server.peer.ID())
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	t.Cleanup(func() { _ = l.Close() })
	go func() { _ = server.peer.Serve(l) }()
}

// slowService counts invocations and sleeps (on the rig's clock) past
// the caller's timeout.
func slowService(v *clock.Virtual, calls *atomic.Int64, d time.Duration) *MethodTable {
	return NewService("test.Slow").
		Method("Nap", nil, "int", func(args []any) (any, error) {
			calls.Add(1)
			v.Sleep(d)
			return int64(42), nil
		}).
		Method("Fast", nil, "int", func(args []any) (any, error) {
			return int64(7), nil
		})
}

func exportSlow(t *testing.T, r *vrig, calls *atomic.Int64, d time.Duration) {
	t.Helper()
	if _, err := r.server.fw.Registry().Register([]string{"test.Slow"}, slowService(r.v, calls, d),
		service.Properties{PropExported: true}, "test"); err != nil {
		t.Fatalf("Register: %v", err)
	}
}

func soleServiceID(t *testing.T, ch *Channel) int64 {
	t.Helper()
	svcs := ch.RemoteServices()
	if len(svcs) != 1 {
		t.Fatalf("remote services = %d, want 1", len(svcs))
	}
	return svcs[0].ID
}

// TestInvokeTimeoutTyped asserts the single-attempt timeout contract:
// Invoke wraps ErrTimeout, is never retried (the outcome of the first
// attempt is unknown), and the channel stays usable afterwards.
func TestInvokeTimeoutTyped(t *testing.T) {
	r := newVRig(t, 1, 100*time.Millisecond,
		RetryPolicy{MaxAttempts: 3, BaseDelay: 10 * time.Millisecond})
	var calls atomic.Int64
	exportSlow(t, r, &calls, 300*time.Millisecond)
	ch, _ := r.connect(t, netsim.Loopback)
	id := soleServiceID(t, ch)

	var err error
	r.drive(t, time.Second, func() { _, err = ch.Invoke(id, "Nap", nil) })
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("Invoke error = %v, want ErrTimeout", err)
	}
	// Even with MaxAttempts=3 the non-idempotent path must not replay:
	// advance past the handler's sleep and count executions.
	r.v.Advance(400 * time.Millisecond)
	if n := calls.Load(); n != 1 {
		t.Errorf("slow method executed %d times after Invoke, want 1", n)
	}
	// The channel survives the timeout (the stale reply is discarded).
	var v any
	r.drive(t, time.Second, func() { v, err = ch.Invoke(id, "Fast", nil) })
	if err != nil || v != int64(7) {
		t.Errorf("Fast after timeout = %v, %v", v, err)
	}
}

// TestInvokeIdempotentRetries asserts the at-least-once path: every
// attempt times out, the call is replayed MaxAttempts times, and the
// final error reports the attempt count and wraps ErrTimeout.
func TestInvokeIdempotentRetries(t *testing.T) {
	r := newVRig(t, 2, 80*time.Millisecond,
		RetryPolicy{MaxAttempts: 3, BaseDelay: 10 * time.Millisecond})
	var calls atomic.Int64
	exportSlow(t, r, &calls, 250*time.Millisecond)
	ch, _ := r.connect(t, netsim.Loopback)
	id := soleServiceID(t, ch)

	var err error
	r.drive(t, 2*time.Second, func() { _, err = ch.InvokeIdempotent(id, "Nap", nil) })
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("InvokeIdempotent error = %v, want ErrTimeout", err)
	}
	if !strings.Contains(err.Error(), "after 3 attempts") {
		t.Errorf("error does not report attempt count: %v", err)
	}
	// Let every in-flight server-side Nap run to completion, then count.
	r.v.Advance(time.Second)
	if n := calls.Load(); n != 3 {
		t.Errorf("idempotent method executed %d times, want 3", n)
	}
}

// TestInvokeIdempotentRecovers asserts a retry succeeding once a
// partition lifts: the first attempt times out inside the stall, a
// later one lands after it. On the virtual clock this is exact, not
// timing-dependent.
func TestInvokeIdempotentRecovers(t *testing.T) {
	r := newVRig(t, 3, 150*time.Millisecond,
		RetryPolicy{MaxAttempts: 5, BaseDelay: 100 * time.Millisecond, Multiplier: 1})
	var calls atomic.Int64
	exportSlow(t, r, &calls, 0)
	ch, conn := r.connect(t, netsim.Loopback)
	id := soleServiceID(t, ch)

	conn.Partition(250 * time.Millisecond)
	var v any
	var err error
	r.drive(t, 5*time.Second, func() { v, err = ch.InvokeIdempotent(id, "Fast", nil) })
	if err != nil || v != int64(7) {
		t.Fatalf("InvokeIdempotent across partition = %v, %v", v, err)
	}
}

func TestFetchTimeoutTyped(t *testing.T) {
	r := newVRig(t, 4, 100*time.Millisecond, RetryPolicy{MaxAttempts: 1})
	var calls atomic.Int64
	exportSlow(t, r, &calls, 0)
	ch, conn := r.connect(t, netsim.Loopback)
	id := soleServiceID(t, ch)

	conn.Partition(300 * time.Millisecond)
	var err error
	r.drive(t, time.Second, func() { _, err = ch.Fetch(id) })
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("Fetch error = %v, want ErrTimeout", err)
	}
	// After the partition lifts the channel works again.
	r.v.Advance(300 * time.Millisecond)
	r.drive(t, time.Second, func() { _, err = ch.Fetch(id) })
	if err != nil {
		t.Errorf("Fetch after partition = %v", err)
	}
}

func TestPingTimeoutTyped(t *testing.T) {
	r := newVRig(t, 5, 100*time.Millisecond, RetryPolicy{MaxAttempts: 1})
	ch, conn := r.connect(t, netsim.Loopback)

	conn.Partition(300 * time.Millisecond)
	var err error
	r.drive(t, time.Second, func() { _, err = ch.Ping() })
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("Ping error = %v, want ErrTimeout", err)
	}
	r.v.Advance(300 * time.Millisecond)
	r.drive(t, time.Second, func() { _, err = ch.Ping() })
	if err != nil {
		t.Errorf("Ping after partition = %v", err)
	}
}

// TestLinkReconnect drops the transport under a resilient link and
// asserts the full recovery arc: Reconnecting is observed, the link
// comes back Up with a fresh channel, the lease is re-established, and
// invocations work again.
func TestLinkReconnect(t *testing.T) {
	r := newVRig(t, 6, time.Second,
		RetryPolicy{MaxAttempts: 3, BaseDelay: 20 * time.Millisecond, ReconnectBudget: 5 * time.Second})
	exportCalculator(t, r.server)

	var mu sync.Mutex
	var conns []*netsim.Conn
	dial := func() (net.Conn, error) {
		c, err := r.fabric.Dial(r.server.peer.ID(), netsim.Loopback)
		if err != nil {
			return nil, err
		}
		mu.Lock()
		conns = append(conns, c.(*netsim.Conn))
		mu.Unlock()
		return c, nil
	}
	var link *Link
	r.drive(t, time.Minute, func() {
		l, err := r.client.peer.DialLink(dial)
		if err != nil {
			t.Errorf("DialLink: %v", err)
			return
		}
		link = l
	})
	if link == nil {
		t.FailNow()
	}
	defer func() {
		r.drive(t, time.Minute, link.Close)
	}()

	var states []LinkState
	link.OnStateChange(func(st LinkState, _ *Channel) {
		mu.Lock()
		states = append(states, st)
		mu.Unlock()
	})

	first := link.Channel()
	id := soleServiceID(t, first)
	var v any
	var err error
	r.drive(t, time.Second, func() { v, err = first.Invoke(id, "Add", []any{int64(2), int64(3)}) })
	if err != nil || v != int64(5) {
		t.Fatalf("Add before drop = %v, %v", v, err)
	}

	mu.Lock()
	conns[0].Drop()
	mu.Unlock()
	// The failure propagates through the dead channel's read loop; wait
	// for the link to notice before asking for recovery.
	if !r.v.WaitCond(2*time.Second, func() bool { return link.State() != LinkUp }) {
		t.Fatal("link never left Up after the transport dropped")
	}

	var ch *Channel
	r.drive(t, 10*time.Second, func() { ch, err = link.Await(5 * time.Second) })
	if err != nil {
		t.Fatalf("Await after drop: %v", err)
	}
	if ch == first {
		t.Fatal("Await returned the dropped channel")
	}
	// The lease was re-exchanged during the reconnect handshake.
	id2 := soleServiceID(t, ch)
	r.drive(t, time.Second, func() { v, err = ch.Invoke(id2, "Add", []any{int64(20), int64(30)}) })
	if err != nil || v != int64(50) {
		t.Errorf("Add after reconnect = %v, %v", v, err)
	}
	if link.State() != LinkUp {
		t.Errorf("link state = %v, want up", link.State())
	}
	mu.Lock()
	defer mu.Unlock()
	if len(states) < 2 || states[0] != LinkReconnecting || states[len(states)-1] != LinkUp {
		t.Errorf("state transitions = %v, want reconnecting...up", states)
	}
}

// TestLinkDownAfterBudget blocks the dial target so every reconnect
// attempt fails: the link must go terminally Down within its budget and
// surface the typed error.
func TestLinkDownAfterBudget(t *testing.T) {
	r := newVRig(t, 7, time.Second,
		RetryPolicy{MaxAttempts: 2, BaseDelay: 20 * time.Millisecond, ReconnectBudget: 250 * time.Millisecond})
	exportCalculator(t, r.server)

	dial := func() (net.Conn, error) { return r.fabric.Dial(r.server.peer.ID(), netsim.Loopback) }
	var link *Link
	r.drive(t, time.Minute, func() {
		l, err := r.client.peer.DialLink(dial)
		if err != nil {
			t.Errorf("DialLink: %v", err)
			return
		}
		link = l
	})
	if link == nil {
		t.FailNow()
	}
	defer func() {
		r.drive(t, time.Minute, link.Close)
	}()

	r.fabric.Block(r.server.peer.ID(), time.Hour)
	link.Channel().Close()

	start := r.v.Elapsed()
	var err error
	r.drive(t, 10*time.Second, func() { _, err = link.Await(5 * time.Second) })
	if !errors.Is(err, ErrLinkDown) {
		t.Fatalf("Await = %v, want ErrLinkDown", err)
	}
	if d := r.v.Elapsed() - start; d > 3*time.Second {
		t.Errorf("link took %v of virtual time to go down, budget was 250ms", d)
	}
	if link.State() != LinkDown {
		t.Errorf("state = %v, want down", link.State())
	}
	if !errors.Is(link.Err(), ErrLinkDown) {
		t.Errorf("Err() = %v, want ErrLinkDown", link.Err())
	}
}

// TestLinkCloseStopsReconnect closes the link while it is mid-reconnect
// and asserts the monitor goroutine exits without going Down.
func TestLinkCloseStopsReconnect(t *testing.T) {
	r := newVRig(t, 8, time.Second,
		RetryPolicy{MaxAttempts: 2, BaseDelay: 50 * time.Millisecond, ReconnectBudget: time.Hour})
	exportCalculator(t, r.server)

	dial := func() (net.Conn, error) { return r.fabric.Dial(r.server.peer.ID(), netsim.Loopback) }
	var link *Link
	r.drive(t, time.Minute, func() {
		l, err := r.client.peer.DialLink(dial)
		if err != nil {
			t.Errorf("DialLink: %v", err)
			return
		}
		link = l
	})
	if link == nil {
		t.FailNow()
	}
	r.fabric.Block(r.server.peer.ID(), time.Hour)
	link.Channel().Close()
	r.v.Advance(30 * time.Millisecond) // let the monitor enter redial
	r.drive(t, time.Minute, link.Close)
	if st := link.State(); st != LinkClosed {
		t.Errorf("state after Close = %v, want closed", st)
	}
	link.Close() // idempotent
}
