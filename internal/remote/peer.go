package remote

import (
	"fmt"
	"math/rand"
	"net"
	"sync"
	"time"

	"github.com/alfredo-mw/alfredo/internal/devsim"
	"github.com/alfredo-mw/alfredo/internal/event"
	"github.com/alfredo-mw/alfredo/internal/module"
	"github.com/alfredo-mw/alfredo/internal/obs"
	"github.com/alfredo-mw/alfredo/internal/service"
	"github.com/alfredo-mw/alfredo/internal/sim/clock"
	"github.com/alfredo-mw/alfredo/internal/wire"
)

// PropExported marks a registered service as remotely visible: set it
// to true in the service properties and the peer includes the service
// in its leases. The service object must implement remote.Service.
const PropExported = "service.exported"

// PropOriginPeer is attached to events that arrived from a remote peer,
// to prevent forwarding loops.
const PropOriginPeer = "event.remote.origin"

// DefaultInvokeTimeout bounds a remote invocation when Config.Timeout
// is zero.
const DefaultInvokeTimeout = 30 * time.Second

// DefaultDispatchWorkers bounds in-flight inbound invocation handlers
// per channel when Config.DispatchWorkers is zero.
const DefaultDispatchWorkers = 8

// Config parameterizes a Peer.
type Config struct {
	// Framework hosts proxy bundles and supplies the service registry
	// and peer identity. Required.
	Framework *module.Framework
	// Events enables remote event forwarding when non-nil.
	Events *event.Admin
	// Device is the simulated platform executing this peer's framework
	// operations; nil disables cost simulation.
	Device *devsim.Device
	// ProxyCode resolves smart proxy references; nil disables smart
	// proxies (all methods go remote).
	ProxyCode *ProxyCodeRegistry
	// Timeout bounds remote invocations and fetches.
	Timeout time.Duration
	// Retry governs per-call retries (idempotent invokes, fetches,
	// pings) and Link reconnection backoff. Zero fields take defaults.
	Retry RetryPolicy
	// ClientInvokeCost is the client-side CPU cost per invocation fed
	// to the device model. Zero selects devsim.CostClientInvoke (the
	// full AlfredO client path); raw benchmark clients use
	// devsim.CostClientInvokeRaw.
	ClientInvokeCost time.Duration
	// DispatchWorkers bounds the handler goroutines serving inbound
	// invocations per channel. Zero selects DefaultDispatchWorkers; a
	// negative value removes the bound and spawns one goroutine per
	// inbound invocation (the seed behavior, kept for ablation runs).
	// With the bound, a flood of inbound invokes is held to
	// DispatchWorkers concurrent handlers and backpressure propagates
	// to the transport: the channel reader stops consuming frames until
	// a handler finishes.
	DispatchWorkers int
	// HelloProps are announced to peers during the handshake (§3.2:
	// "the device can decide which capabilities to expose to the
	// target device"). Values must be wire-normalizable.
	HelloProps map[string]any
	// Obs supplies telemetry: metrics and traces for invokes, fetches,
	// retries and link transitions. Nil selects the process-wide
	// obs.Default(); pass obs.Nop() to disable telemetry entirely.
	Obs *obs.Hub
	// Clock is the time source for invocation timeouts, retry backoff,
	// ping RTTs and link reconnection. Nil selects the wall clock (the
	// production default); the simulation harness injects a virtual
	// clock so the whole retry/reconnect machinery runs on simulated
	// time.
	Clock clock.Clock
	// Seed, when non-zero, derandomizes retry jitter: backoff delays
	// are drawn from a dedicated RNG seeded with this value instead of
	// the process-global source, so a simulated run replays its exact
	// retry schedule. Zero keeps the production behavior.
	Seed int64
	// ChunkCache enables the chunked acquisition fast path on the
	// requesting side: manifests are diffed against it and only missing
	// chunks cross the network (fetch.go). Nil keeps every fetch on the
	// legacy single-shot path. The cache is typically shared by all
	// peers of a node and may persist across sessions.
	ChunkCache *module.ChunkCache
	// ChunkBytes is the fixed chunk size this peer cuts served
	// artifacts into; zero selects module.DefaultChunkBytes.
	ChunkBytes int
	// FetchWindow bounds the chunk hashes kept in flight per request
	// window during a chunked fetch; zero selects DefaultFetchWindow.
	FetchWindow int
}

type exportedService struct {
	info wire.ServiceInfo
	svc  Service
}

// Peer is one endpoint of the remote service layer, bound to a local
// framework. It serves inbound connections, dials outbound ones, and
// keeps leases synchronized with every connected peer.
type Peer struct {
	cfg Config

	// rng is the seeded jitter source when Config.Seed is set; nil
	// selects the process-global source (see RetryPolicy.BackoffRand).
	rng *rand.Rand

	// leaseMu makes lease snapshots consistent with incremental
	// broadcasts: it is held across (channel join + lease write) during
	// the handshake and across (export change + broadcast), so a
	// concurrent export is either in the snapshot or broadcast — never
	// lost.
	leaseMu sync.Mutex

	// artifacts holds this peer's served-side chunked artifacts, built
	// lazily at the first manifest request per service and refreshed
	// (version-bumped) when the service content changes.
	artifacts *module.ArtifactStore

	mu       sync.Mutex
	exported map[int64]exportedService
	channels map[*Channel]struct{}
	regTok   int64
	closed   bool

	wg sync.WaitGroup
}

// NewPeer creates a peer bound to cfg.Framework. Services already
// registered with PropExported are exported immediately; later
// registrations and unregistrations are propagated to connected peers
// as incremental lease updates.
func NewPeer(cfg Config) (*Peer, error) {
	if cfg.Framework == nil {
		return nil, fmt.Errorf("remote: config requires a framework")
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = DefaultInvokeTimeout
	}
	if cfg.ClientInvokeCost <= 0 {
		cfg.ClientInvokeCost = devsim.CostClientInvoke
	}
	if cfg.DispatchWorkers == 0 {
		cfg.DispatchWorkers = DefaultDispatchWorkers
	}
	cfg.Retry = cfg.Retry.withDefaults()
	cfg.Obs = cfg.Obs.OrDefault()
	cfg.Clock = clock.Or(cfg.Clock)
	p := &Peer{
		cfg:       cfg,
		artifacts: module.NewArtifactStore(cfg.ChunkBytes),
		exported:  make(map[int64]exportedService),
		channels:  make(map[*Channel]struct{}),
	}
	if cfg.Seed != 0 {
		p.rng = rand.New(&lockedSource{src: rand.NewSource(cfg.Seed).(rand.Source64)})
	}

	reg := cfg.Framework.Registry()
	p.regTok = reg.AddListener(p.onServiceEvent, nil)
	for _, ref := range reg.FindAll("", nil) {
		p.maybeExport(ref)
	}
	return p, nil
}

// ID returns the peer identity (the framework name).
func (p *Peer) ID() string { return p.cfg.Framework.Name() }

// Clock returns the peer's time source.
func (p *Peer) Clock() clock.Clock { return p.cfg.Clock }

// retryDelay returns the jittered backoff before retry number attempt,
// drawn from the peer's seeded RNG when configured.
func (p *Peer) retryDelay(attempt int) time.Duration {
	return p.cfg.Retry.BackoffRand(attempt, p.rng)
}

// Framework returns the hosting framework.
func (p *Peer) Framework() *module.Framework { return p.cfg.Framework }

// Events returns the attached event admin (possibly nil).
func (p *Peer) Events() *event.Admin { return p.cfg.Events }

// Device returns the simulated device (possibly nil).
func (p *Peer) Device() *devsim.Device { return p.cfg.Device }

// ChunkCache returns the phone-side chunk cache (nil when disabled).
func (p *Peer) ChunkCache() *module.ChunkCache { return p.cfg.ChunkCache }

// Serve accepts connections from l until the listener closes. Run it
// in a goroutine; it returns the listener's Accept error.
func (p *Peer) Serve(l net.Listener) error {
	for {
		conn, err := l.Accept()
		if err != nil {
			return fmt.Errorf("remote: accept: %w", err)
		}
		p.wg.Add(1)
		go func(conn net.Conn) {
			defer p.wg.Done()
			if _, err := p.setupChannel(conn); err != nil {
				_ = conn.Close()
			}
		}(conn)
	}
}

// Connect establishes a channel over an existing connection (dialer
// side).
func (p *Peer) Connect(conn net.Conn) (*Channel, error) {
	return p.setupChannel(conn)
}

// Channels returns the currently connected channels.
func (p *Peer) Channels() []*Channel {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]*Channel, 0, len(p.channels))
	for c := range p.channels {
		out = append(out, c)
	}
	return out
}

// Close tears down all channels. The peer cannot be reused.
func (p *Peer) Close() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.closed = true
	chans := make([]*Channel, 0, len(p.channels))
	for c := range p.channels {
		chans = append(chans, c)
	}
	p.mu.Unlock()

	p.cfg.Framework.Registry().RemoveListener(p.regTok)
	for _, c := range chans {
		c.Close()
	}
	p.wg.Wait()
}

// exportedInfos snapshots the current lease content.
func (p *Peer) exportedInfos() []wire.ServiceInfo {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]wire.ServiceInfo, 0, len(p.exported))
	for _, e := range p.exported {
		out = append(out, e.info)
	}
	return out
}

// lookupExported resolves a service id from an inbound invocation.
func (p *Peer) lookupExported(id int64) (Service, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	e, ok := p.exported[id]
	return e.svc, ok
}

// exportedInfo returns the lease entry for an exported service id.
func (p *Peer) exportedInfo(id int64) (wire.ServiceInfo, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	e, ok := p.exported[id]
	return e.info, ok
}

func (p *Peer) onServiceEvent(ev service.Event) {
	p.leaseMu.Lock()
	defer p.leaseMu.Unlock()
	switch ev.Type {
	case service.EventRegistered:
		if info, ok := p.maybeExport(ev.Ref); ok {
			p.broadcast(&wire.ServiceAdded{Service: info})
		}
	case service.EventModified:
		p.mu.Lock()
		e, exported := p.exported[ev.Ref.ID()]
		p.mu.Unlock()
		flagged, _ := ev.Ref.Property(PropExported)
		switch {
		case exported && flagged != true:
			// The export flag was withdrawn: retract the lease entry.
			p.mu.Lock()
			delete(p.exported, ev.Ref.ID())
			p.mu.Unlock()
			p.cfg.Framework.Registry().Unget(ev.Ref)
			p.broadcast(&wire.ServiceRemoved{ServiceID: ev.Ref.ID()})
		case exported:
			// Properties changed: peers keep their lease entries
			// synchronized (§2.2: "changes of services ... are
			// immediately visible to all connected machines").
			e.info.Props = sanitizeProps(ev.Ref.Properties())
			p.mu.Lock()
			p.exported[ev.Ref.ID()] = e
			p.mu.Unlock()
			p.broadcast(&wire.ServiceAdded{Service: e.info})
		default:
			if info, ok := p.maybeExport(ev.Ref); ok {
				p.broadcast(&wire.ServiceAdded{Service: info})
			}
		}
	case service.EventUnregistering:
		p.mu.Lock()
		_, was := p.exported[ev.Ref.ID()]
		delete(p.exported, ev.Ref.ID())
		p.mu.Unlock()
		if was {
			p.cfg.Framework.Registry().Unget(ev.Ref)
			p.broadcast(&wire.ServiceRemoved{ServiceID: ev.Ref.ID()})
		}
	}
}

// maybeExport exports ref if it is flagged and invocable; it reports
// whether a new export happened and the resulting lease entry.
func (p *Peer) maybeExport(ref *service.Reference) (wire.ServiceInfo, bool) {
	flagged, _ := ref.Property(PropExported)
	if flagged != true {
		return wire.ServiceInfo{}, false
	}
	p.mu.Lock()
	if _, dup := p.exported[ref.ID()]; dup {
		p.mu.Unlock()
		return wire.ServiceInfo{}, false
	}
	p.mu.Unlock()

	obj, ok := p.cfg.Framework.Registry().Get(ref, "remote:"+p.ID())
	if !ok {
		return wire.ServiceInfo{}, false
	}
	svc, ok := obj.(Service)
	if !ok {
		// Flagged but not invocable: leave it local (%w documented on
		// the constant); unexportable services are a configuration
		// error surfaced at registration review, not a crash.
		p.cfg.Framework.Registry().Unget(ref)
		return wire.ServiceInfo{}, false
	}
	info := wire.ServiceInfo{
		ID:         ref.ID(),
		Interfaces: ref.Interfaces(),
		Props:      sanitizeProps(ref.Properties()),
	}
	p.mu.Lock()
	p.exported[ref.ID()] = exportedService{info: info, svc: svc}
	p.mu.Unlock()
	return info, true
}

// broadcast sends a lease update to every channel, dropping channels
// whose link has failed.
func (p *Peer) broadcast(m wire.Message) {
	for _, c := range p.Channels() {
		_ = c.send(m)
	}
}

func (p *Peer) addChannel(c *Channel) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return ErrChannelClosed
	}
	p.channels[c] = struct{}{}
	return nil
}

func (p *Peer) removeChannel(c *Channel) {
	p.mu.Lock()
	defer p.mu.Unlock()
	delete(p.channels, c)
}

// sanitizeProps keeps only wire-encodable property values so that a
// lease never fails to serialize because of an exotic local property.
func sanitizeProps(props service.Properties) map[string]any {
	out := make(map[string]any, len(props))
	for k, v := range props {
		if n, err := wire.Normalize(v); err == nil {
			out[k] = n
		}
	}
	return out
}
