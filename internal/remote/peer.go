package remote

import (
	"fmt"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"github.com/alfredo-mw/alfredo/internal/devsim"
	"github.com/alfredo-mw/alfredo/internal/event"
	"github.com/alfredo-mw/alfredo/internal/module"
	"github.com/alfredo-mw/alfredo/internal/obs"
	"github.com/alfredo-mw/alfredo/internal/service"
	"github.com/alfredo-mw/alfredo/internal/sim/clock"
	"github.com/alfredo-mw/alfredo/internal/stripe"
	"github.com/alfredo-mw/alfredo/internal/wire"
)

// PropExported marks a registered service as remotely visible: set it
// to true in the service properties and the peer includes the service
// in its leases. The service object must implement remote.Service.
const PropExported = "service.exported"

// PropTenant scopes an exported service to one tenant: when set (a
// string), the service appears only in leases and lookups of channels
// whose Hello announced the same tenant (HelloTenantProp). Services
// without the property are public. This is the isolation boundary the
// scale suite proves: a session must never observe — or invoke —
// another tenant's services.
const PropTenant = "service.tenant"

// HelloTenantProp is the handshake property under which a connecting
// peer announces its tenant identity.
const HelloTenantProp = "tenant"

// PropOriginPeer is attached to events that arrived from a remote peer,
// to prevent forwarding loops.
const PropOriginPeer = "event.remote.origin"

// DefaultInvokeTimeout bounds a remote invocation when Config.Timeout
// is zero.
const DefaultInvokeTimeout = 30 * time.Second

// DefaultDispatchWorkers bounds in-flight inbound invocation handlers
// per channel when Config.DispatchWorkers is zero.
const DefaultDispatchWorkers = 8

// DefaultReactorWorkers bounds in-flight inbound invocation handlers
// across ALL channels of a peer when Config.ReactorWorkers is zero.
// Per-channel slots bound what one connection can claim; the reactor
// bounds the sum, so handler goroutines stay O(pool) instead of
// O(channels) when tens of thousands of sessions are connected.
const DefaultReactorWorkers = 256

// Config parameterizes a Peer.
type Config struct {
	// Framework hosts proxy bundles and supplies the service registry
	// and peer identity. Required.
	Framework *module.Framework
	// Events enables remote event forwarding when non-nil.
	Events *event.Admin
	// Device is the simulated platform executing this peer's framework
	// operations; nil disables cost simulation.
	Device *devsim.Device
	// ProxyCode resolves smart proxy references; nil disables smart
	// proxies (all methods go remote).
	ProxyCode *ProxyCodeRegistry
	// Timeout bounds remote invocations and fetches.
	Timeout time.Duration
	// Retry governs per-call retries (idempotent invokes, fetches,
	// pings) and Link reconnection backoff. Zero fields take defaults.
	Retry RetryPolicy
	// ClientInvokeCost is the client-side CPU cost per invocation fed
	// to the device model. Zero selects devsim.CostClientInvoke (the
	// full AlfredO client path); raw benchmark clients use
	// devsim.CostClientInvokeRaw.
	ClientInvokeCost time.Duration
	// DispatchWorkers bounds the handler goroutines serving inbound
	// invocations per channel. Zero selects DefaultDispatchWorkers; a
	// negative value removes the bound and spawns one goroutine per
	// inbound invocation (the seed behavior, kept for ablation runs).
	// With the bound, a flood of inbound invokes is held to
	// DispatchWorkers concurrent handlers and backpressure propagates
	// to the transport: the channel reader stops consuming frames until
	// a handler finishes.
	DispatchWorkers int
	// ReactorWorkers bounds the handler goroutines serving inbound
	// invocations across all channels of this peer (the reactor pool,
	// see reactor.go). Zero selects DefaultReactorWorkers; a negative
	// value disables the peer-wide bound and keeps only the per-channel
	// one (the PR-3 model, kept for ablation runs). Ignored when
	// DispatchWorkers is negative.
	ReactorWorkers int
	// Admission enables serve-side admission control with per-tenant
	// fairness (admission.go): inbound invocations past the configured
	// in-flight and rate limits are rejected with ErrOverloaded before
	// any service code runs. Nil admits everything.
	Admission *AdmissionPolicy
	// WriteBufferBytes sizes the per-channel write-coalescing buffer.
	// Zero selects writeCoalesceBuffer (32 KiB — right for a handful of
	// channels); hosts serving tens of thousands of sessions shrink it
	// to keep per-session memory bounded.
	WriteBufferBytes int
	// HelloProps are announced to peers during the handshake (§3.2:
	// "the device can decide which capabilities to expose to the
	// target device"). Values must be wire-normalizable. The
	// HelloTenantProp entry, when present, identifies this peer's
	// tenant to the serving side.
	HelloProps map[string]any
	// Obs supplies telemetry: metrics and traces for invokes, fetches,
	// retries and link transitions. Nil selects the process-wide
	// obs.Default(); pass obs.Nop() to disable telemetry entirely.
	Obs *obs.Hub
	// Clock is the time source for invocation timeouts, retry backoff,
	// ping RTTs and link reconnection. Nil selects the wall clock (the
	// production default); the simulation harness injects a virtual
	// clock so the whole retry/reconnect machinery runs on simulated
	// time.
	Clock clock.Clock
	// Seed, when non-zero, derandomizes retry jitter: backoff delays
	// are drawn from a dedicated RNG seeded with this value instead of
	// the process-global source, so a simulated run replays its exact
	// retry schedule. Zero keeps the production behavior.
	Seed int64
	// ChunkCache enables the chunked acquisition fast path on the
	// requesting side: manifests are diffed against it and only missing
	// chunks cross the network (fetch.go). Nil keeps every fetch on the
	// legacy single-shot path. The cache is typically shared by all
	// peers of a node and may persist across sessions.
	ChunkCache *module.ChunkCache
	// ChunkBytes is the fixed chunk size this peer cuts served
	// artifacts into; zero selects module.DefaultChunkBytes.
	ChunkBytes int
	// FetchWindow bounds the chunk hashes kept in flight per request
	// window during a chunked fetch; zero selects DefaultFetchWindow.
	FetchWindow int
	// StreamWindowBytes is the receive window granted per reliable
	// inbound stream on credit-negotiated channels: the sender may have
	// at most this many un-consumed payload bytes in flight before its
	// writes block (stream.go). Zero selects DefaultStreamWindow; values
	// below one segment (16 KiB) are raised to it, since the fan-out
	// path reserves whole segments.
	StreamWindowBytes int
	// Aggregator, when non-nil, makes this peer a fleet telemetry sink:
	// it announces "metrics.sink" in its hello and folds inbound
	// MetricsReport frames into the aggregator under the sending
	// channel's identity (telemetry.go). Hosts set it; phones leave it
	// nil.
	Aggregator *obs.Aggregator
	// MetricsInterval is the cadence on which this peer ships its metric
	// registry to peers that announced a metrics sink. Zero selects
	// DefaultMetricsInterval; negative disables shipping.
	MetricsInterval time.Duration
}

type exportedService struct {
	info   wire.ServiceInfo
	svc    Service
	tenant string // from PropTenant; "" means public
}

// Peer is one endpoint of the remote service layer, bound to a local
// framework. It serves inbound connections, dials outbound ones, and
// keeps leases synchronized with every connected peer.
type Peer struct {
	cfg Config

	// rng is the seeded jitter source when Config.Seed is set; nil
	// selects the process-global source (see RetryPolicy.BackoffRand).
	rng *rand.Rand

	// leaseMu makes lease snapshots consistent with incremental
	// broadcasts: it is held across (channel join + lease write) during
	// the handshake and across (export change + broadcast), so a
	// concurrent export is either in the snapshot or broadcast — never
	// lost.
	leaseMu sync.Mutex

	// artifacts holds this peer's served-side chunked artifacts, built
	// lazily at the first manifest request per service and refreshed
	// (version-bumped) when the service content changes.
	artifacts *module.ArtifactStore

	// exported and channels are the serve-side hot tables, striped so
	// concurrent sessions do not serialize on one lock: every inbound
	// invocation resolves its service in exported, and every connect,
	// teardown and broadcast walks channels.
	exported *stripe.Map[int64, exportedService]
	channels *stripe.Map[int64, *Channel]

	// closeMu orders channel admission against Close: adds take the
	// read side (concurrent adds proceed on distinct shards), Close
	// takes the write side once to flip closed, so a channel is either
	// in the snapshot Close tears down or observes closed and refuses.
	closeMu sync.RWMutex
	closed  bool

	nextChanID atomic.Int64
	regTok     int64

	// reactor is the peer-wide bounded handler pool (nil when disabled).
	reactor *reactor
	// admission is the serve-side admission controller (nil when
	// disabled).
	admission *Admission

	// streamFn is the peer-level default stream handler, inherited by
	// every channel established after HandleStreams (reconnecting links
	// create fresh channels, so serve-side stream consumers register
	// here once instead of racing every accept).
	streamMu sync.Mutex
	streamFn func(c *Channel, r *StreamReader)

	wg sync.WaitGroup
}

// HandleStreams registers a default handler invoked (on its own
// goroutine) for every stream opened on any subsequently established
// channel of this peer. A channel-level Channel.HandleStreams replaces
// it for that channel's later streams.
func (p *Peer) HandleStreams(fn func(c *Channel, r *StreamReader)) {
	p.streamMu.Lock()
	p.streamFn = fn
	p.streamMu.Unlock()
}

func (p *Peer) streamHandler() func(c *Channel, r *StreamReader) {
	p.streamMu.Lock()
	defer p.streamMu.Unlock()
	return p.streamFn
}

// NewPeer creates a peer bound to cfg.Framework. Services already
// registered with PropExported are exported immediately; later
// registrations and unregistrations are propagated to connected peers
// as incremental lease updates.
func NewPeer(cfg Config) (*Peer, error) {
	if cfg.Framework == nil {
		return nil, fmt.Errorf("remote: config requires a framework")
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = DefaultInvokeTimeout
	}
	if cfg.ClientInvokeCost <= 0 {
		cfg.ClientInvokeCost = devsim.CostClientInvoke
	}
	if cfg.DispatchWorkers == 0 {
		cfg.DispatchWorkers = DefaultDispatchWorkers
	}
	if cfg.ReactorWorkers == 0 {
		cfg.ReactorWorkers = DefaultReactorWorkers
	}
	if cfg.WriteBufferBytes <= 0 {
		cfg.WriteBufferBytes = writeCoalesceBuffer
	}
	if cfg.StreamWindowBytes <= 0 {
		cfg.StreamWindowBytes = DefaultStreamWindow
	}
	if cfg.StreamWindowBytes < maxStreamFrame {
		// reserveExact needs one whole segment to fit the window.
		cfg.StreamWindowBytes = maxStreamFrame
	}
	cfg.Retry = cfg.Retry.withDefaults()
	cfg.Obs = cfg.Obs.OrDefault()
	cfg.Clock = clock.Or(cfg.Clock)
	p := &Peer{
		cfg:       cfg,
		artifacts: module.NewArtifactStore(cfg.ChunkBytes),
		exported:  stripe.NewMap[int64, exportedService](stripe.DefaultShards(), stripe.Int64Hash),
		channels:  stripe.NewMap[int64, *Channel](stripe.DefaultShards(), stripe.Int64Hash),
	}
	if cfg.Seed != 0 {
		p.rng = rand.New(&lockedSource{src: rand.NewSource(cfg.Seed).(rand.Source64)})
	}
	if cfg.DispatchWorkers > 0 && cfg.ReactorWorkers > 0 {
		p.reactor = newReactor(cfg.ReactorWorkers, cfg.Obs.Metrics)
	}
	if cfg.Admission != nil {
		p.admission = NewAdmission(*cfg.Admission, cfg.Clock, cfg.Obs.Metrics)
	}

	reg := cfg.Framework.Registry()
	p.regTok = reg.AddListener(p.onServiceEvent, nil)
	for _, ref := range reg.FindAll("", nil) {
		p.maybeExport(ref)
	}
	return p, nil
}

// ID returns the peer identity (the framework name).
func (p *Peer) ID() string { return p.cfg.Framework.Name() }

// Clock returns the peer's time source.
func (p *Peer) Clock() clock.Clock { return p.cfg.Clock }

// Admission returns the peer's admission controller, or nil when
// admission control is disabled.
func (p *Peer) Admission() *Admission { return p.admission }

// retryDelay returns the jittered backoff before retry number attempt,
// drawn from the peer's seeded RNG when configured.
func (p *Peer) retryDelay(attempt int) time.Duration {
	return p.cfg.Retry.BackoffRand(attempt, p.rng)
}

// Framework returns the hosting framework.
func (p *Peer) Framework() *module.Framework { return p.cfg.Framework }

// Events returns the attached event admin (possibly nil).
func (p *Peer) Events() *event.Admin { return p.cfg.Events }

// Device returns the simulated device (possibly nil).
func (p *Peer) Device() *devsim.Device { return p.cfg.Device }

// ChunkCache returns the phone-side chunk cache (nil when disabled).
func (p *Peer) ChunkCache() *module.ChunkCache { return p.cfg.ChunkCache }

// Serve accepts connections from l until the listener closes. Run it
// in a goroutine; it returns the listener's Accept error.
func (p *Peer) Serve(l net.Listener) error {
	for {
		conn, err := l.Accept()
		if err != nil {
			return fmt.Errorf("remote: accept: %w", err)
		}
		p.wg.Add(1)
		go func(conn net.Conn) {
			defer p.wg.Done()
			if _, err := p.setupChannel(conn, false); err != nil {
				_ = conn.Close()
			}
		}(conn)
	}
}

// Connect establishes a channel over an existing connection (dialer
// side).
func (p *Peer) Connect(conn net.Conn) (*Channel, error) {
	return p.setupChannel(conn, true)
}

// Channels returns the currently connected channels.
func (p *Peer) Channels() []*Channel {
	return p.channels.Values()
}

// ChannelCount returns the number of connected channels.
func (p *Peer) ChannelCount() int { return p.channels.Len() }

// ChannelShardCounts returns the per-shard channel-table counts; the
// scale suite sums them against the global channels-active gauge.
func (p *Peer) ChannelShardCounts() []int { return p.channels.ShardCounts() }

// ExportedShardCounts returns the per-shard export-table counts.
func (p *Peer) ExportedShardCounts() []int { return p.exported.ShardCounts() }

// ExportedCount returns the number of exported services.
func (p *Peer) ExportedCount() int { return p.exported.Len() }

// Close tears down all channels. The peer cannot be reused.
func (p *Peer) Close() {
	p.closeMu.Lock()
	if p.closed {
		p.closeMu.Unlock()
		return
	}
	p.closed = true
	p.closeMu.Unlock()

	p.cfg.Framework.Registry().RemoveListener(p.regTok)
	for _, c := range p.channels.Values() {
		c.Close()
	}
	p.wg.Wait()
	if p.reactor != nil {
		p.reactor.wait()
	}
}

// visibleTo reports whether a service scoped to svcTenant may be seen
// by a channel whose peer announced chTenant: public services (no
// tenant) are visible to everyone, tenant-scoped services only to their
// own tenant.
func visibleTo(svcTenant, chTenant string) bool {
	return svcTenant == "" || svcTenant == chTenant
}

// exportedInfosFor snapshots the lease content visible to a channel of
// the given tenant.
func (p *Peer) exportedInfosFor(tenant string) []wire.ServiceInfo {
	out := make([]wire.ServiceInfo, 0, 8)
	p.exported.Range(func(_ int64, e exportedService) bool {
		if visibleTo(e.tenant, tenant) {
			out = append(out, e.info)
		}
		return true
	})
	return out
}

// lookupExported resolves a service id from an inbound invocation on a
// channel of the given tenant. Services scoped to another tenant are
// indistinguishable from absent ones — isolation, not an error hint.
func (p *Peer) lookupExported(id int64, tenant string) (Service, bool) {
	e, ok := p.exported.Get(id)
	if !ok || !visibleTo(e.tenant, tenant) {
		return nil, false
	}
	return e.svc, true
}

// exportedInfo returns the lease entry for an exported service id,
// subject to the same tenant visibility as lookupExported.
func (p *Peer) exportedInfo(id int64, tenant string) (wire.ServiceInfo, bool) {
	e, ok := p.exported.Get(id)
	if !ok || !visibleTo(e.tenant, tenant) {
		return wire.ServiceInfo{}, false
	}
	return e.info, true
}

// tenantOfProps extracts the PropTenant scope from sanitized service
// properties.
func tenantOfProps(props map[string]any) string {
	t, _ := props[PropTenant].(string)
	return t
}

func (p *Peer) onServiceEvent(ev service.Event) {
	p.leaseMu.Lock()
	defer p.leaseMu.Unlock()
	switch ev.Type {
	case service.EventRegistered:
		if info, ok := p.maybeExport(ev.Ref); ok {
			p.broadcast(&wire.ServiceAdded{Service: info}, tenantOfProps(info.Props))
		}
	case service.EventModified:
		e, exported := p.exported.Get(ev.Ref.ID())
		flagged, _ := ev.Ref.Property(PropExported)
		switch {
		case exported && flagged != true:
			// The export flag was withdrawn: retract the lease entry.
			p.exported.Delete(ev.Ref.ID())
			p.cfg.Framework.Registry().Unget(ev.Ref)
			p.broadcast(&wire.ServiceRemoved{ServiceID: ev.Ref.ID()}, e.tenant)
		case exported:
			// Properties changed: peers keep their lease entries
			// synchronized (§2.2: "changes of services ... are
			// immediately visible to all connected machines").
			prevTenant := e.tenant
			e.info.Props = sanitizeProps(ev.Ref.Properties())
			e.tenant = tenantOfProps(e.info.Props)
			p.exported.Store(ev.Ref.ID(), e)
			if e.tenant != prevTenant {
				// The scope itself moved: the old audience loses the
				// service, the new one gains it.
				p.broadcast(&wire.ServiceRemoved{ServiceID: ev.Ref.ID()}, prevTenant)
			}
			p.broadcast(&wire.ServiceAdded{Service: e.info}, e.tenant)
		default:
			if info, ok := p.maybeExport(ev.Ref); ok {
				p.broadcast(&wire.ServiceAdded{Service: info}, tenantOfProps(info.Props))
			}
		}
	case service.EventUnregistering:
		e, was := p.exported.Delete(ev.Ref.ID())
		if was {
			p.cfg.Framework.Registry().Unget(ev.Ref)
			p.broadcast(&wire.ServiceRemoved{ServiceID: ev.Ref.ID()}, e.tenant)
		}
	}
}

// maybeExport exports ref if it is flagged and invocable; it reports
// whether a new export happened and the resulting lease entry.
func (p *Peer) maybeExport(ref *service.Reference) (wire.ServiceInfo, bool) {
	flagged, _ := ref.Property(PropExported)
	if flagged != true {
		return wire.ServiceInfo{}, false
	}
	if _, dup := p.exported.Get(ref.ID()); dup {
		return wire.ServiceInfo{}, false
	}

	obj, ok := p.cfg.Framework.Registry().Get(ref, "remote:"+p.ID())
	if !ok {
		return wire.ServiceInfo{}, false
	}
	svc, ok := obj.(Service)
	if !ok {
		// Flagged but not invocable: leave it local (%w documented on
		// the constant); unexportable services are a configuration
		// error surfaced at registration review, not a crash.
		p.cfg.Framework.Registry().Unget(ref)
		return wire.ServiceInfo{}, false
	}
	info := wire.ServiceInfo{
		ID:         ref.ID(),
		Interfaces: ref.Interfaces(),
		Props:      sanitizeProps(ref.Properties()),
	}
	entry := exportedService{info: info, svc: svc, tenant: tenantOfProps(info.Props)}
	won := false
	p.exported.Update(ref.ID(), func(old exportedService, ok bool) (exportedService, bool) {
		if ok {
			return old, true // lost the race to a concurrent export
		}
		won = true
		return entry, true
	})
	if !won {
		p.cfg.Framework.Registry().Unget(ref)
		return wire.ServiceInfo{}, false
	}
	return info, true
}

// broadcast sends a lease update to every channel allowed to see it:
// all channels for public services (tenant ""), only the scoped
// tenant's channels otherwise. Channels whose link has failed drop the
// frame.
func (p *Peer) broadcast(m wire.Message, tenant string) {
	p.channels.Range(func(_ int64, c *Channel) bool {
		if visibleTo(tenant, c.Tenant()) {
			_ = c.send(m)
		}
		return true
	})
}

func (p *Peer) addChannel(c *Channel) error {
	p.closeMu.RLock()
	defer p.closeMu.RUnlock()
	if p.closed {
		return ErrChannelClosed
	}
	p.channels.Store(c.id, c)
	return nil
}

func (p *Peer) removeChannel(c *Channel) {
	p.channels.Delete(c.id)
}

// sanitizeProps keeps only wire-encodable property values so that a
// lease never fails to serialize because of an exotic local property.
func sanitizeProps(props service.Properties) map[string]any {
	out := make(map[string]any, len(props))
	for k, v := range props {
		if n, err := wire.Normalize(v); err == nil {
			out[k] = n
		}
	}
	return out
}
