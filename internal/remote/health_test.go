package remote

import (
	"math"
	"sync/atomic"
	"testing"
	"time"

	"github.com/alfredo-mw/alfredo/internal/event"
	"github.com/alfredo-mw/alfredo/internal/module"
	"github.com/alfredo-mw/alfredo/internal/obs"
	"github.com/alfredo-mw/alfredo/internal/sim/clock"
	"github.com/alfredo-mw/alfredo/internal/sim/leak"
)

// TestShedFromScore pins the shed mapping's boundaries: the dead band
// below shedStart, the linear ramp, the shedMax ceiling, the >1 clamp,
// and the NaN guard (a scorer with no inputs must never shed).
func TestShedFromScore(t *testing.T) {
	cases := []struct {
		name    string
		overall float64
		want    float64
	}{
		{name: "NaN reads as healthy", overall: math.NaN(), want: 0},
		{name: "negative reads as healthy", overall: -0.5, want: 0},
		{name: "zero", overall: 0, want: 0},
		{name: "just below shedStart", overall: shedStart - 0.001, want: 0},
		{name: "exactly shedStart", overall: shedStart, want: 0},
		{name: "ramp midpoint", overall: (shedStart + 1) / 2, want: shedMax / 2},
		{name: "fully overloaded", overall: 1, want: shedMax},
		{name: "above one clamps to shedMax", overall: 1.5, want: shedMax},
		{name: "infinity clamps to shedMax", overall: math.Inf(1), want: shedMax},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := ShedFromScore(tc.overall)
			if math.Abs(got-tc.want) > 1e-12 {
				t.Fatalf("ShedFromScore(%v) = %v, want %v", tc.overall, got, tc.want)
			}
		})
	}
	// Monotone on the ramp: more overload never sheds less.
	prev := 0.0
	for s := shedStart; s <= 1.0; s += 0.01 {
		f := ShedFromScore(s)
		if f < prev {
			t.Fatalf("ShedFromScore not monotone: f(%v) = %v < %v", s, f, prev)
		}
		prev = f
	}
}

// healthDriverPeer builds a standalone peer (no network) with its own
// obs hub and an optional admission policy, torn down under the
// virtual clock.
func healthDriverPeer(t *testing.T, v *clock.Virtual, pol *AdmissionPolicy) (*Peer, *obs.Hub) {
	t.Helper()
	hub := obs.NewHub()
	fw := module.NewFramework(module.Config{Name: "health-driver"})
	ev := event.NewAdmin(0)
	peer, err := NewPeer(Config{
		Framework: fw,
		Events:    ev,
		ProxyCode: NewProxyCodeRegistry(),
		Clock:     v,
		Seed:      11,
		Admission: pol,
		Obs:       hub,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		var done atomic.Bool
		go func() {
			defer done.Store(true)
			peer.Close()
			ev.Close()
			_ = fw.Shutdown()
		}()
		if !v.WaitCond(time.Minute, done.Load) {
			t.Error("peer teardown stalled under the virtual clock")
		}
	})
	return peer, hub
}

// TestStartHealthDriverAppliesShedBeforeUserHook pins the hook
// contract: when a user OnScore hook fires, the shed factor derived
// from that same score has already been applied to the admission
// controller — a hook reading Admission().ShedFactor() observes the
// post-score state, never the previous round's.
func TestStartHealthDriverAppliesShedBeforeUserHook(t *testing.T) {
	leak.CheckGoroutines(t)
	v := clock.NewVirtual(11)
	pol := AdmissionPolicy{MaxInFlight: 100}
	peer, hub := healthDriverPeer(t, v, &pol)

	// Drive the queue component: depth 90 of capacity 100 scores 0.9
	// overall, which is inside the shed ramp.
	hub.Metrics.Gauge("alfredo_remote_dispatch_queue_depth").Set(90)

	var calls atomic.Int64
	scorer := peer.StartHealthDriver(obs.HealthConfig{
		Interval:      10 * time.Millisecond,
		QueueCapacity: 100,
		OnScore: func(s obs.HealthScore) {
			calls.Add(1)
			want := ShedFromScore(s.Overall)
			got := peer.Admission().ShedFactor()
			// ShedFactor quantizes to millis.
			if math.Abs(got-want) > 0.001 {
				t.Errorf("inside OnScore: ShedFactor = %v, want %v (score %v already applied)",
					got, want, s.Overall)
			}
		},
	})
	defer scorer.Stop()

	// One pass runs synchronously inside StartHealthDriver: the user
	// hook must have fired (the driver wraps, not replaces, it) and the
	// shed factor must already reflect the overloaded queue.
	if calls.Load() != 1 {
		t.Fatalf("user OnScore fired %d times during the synchronous first pass, want 1", calls.Load())
	}
	if f := peer.Admission().ShedFactor(); f <= 0 {
		t.Fatalf("shed factor %v after overloaded first pass, want > 0", f)
	}

	// The queue drains; the next pass must restore full capacity and
	// still call the user hook.
	hub.Metrics.Gauge("alfredo_remote_dispatch_queue_depth").Set(0)
	v.Advance(15 * time.Millisecond)
	if !v.WaitCond(time.Second, func() bool { return calls.Load() >= 2 }) {
		t.Fatal("user OnScore never fired on a ticker pass")
	}
	if f := peer.Admission().ShedFactor(); f != 0 {
		t.Fatalf("shed factor %v after recovery, want 0", f)
	}
}

// TestStartHealthDriverWithoutAdmission: with admission disabled the
// driver still scores and still fires the user hook — it just has
// nothing to shed.
func TestStartHealthDriverWithoutAdmission(t *testing.T) {
	leak.CheckGoroutines(t)
	v := clock.NewVirtual(12)
	peer, hub := healthDriverPeer(t, v, nil)
	hub.Metrics.Gauge("alfredo_remote_dispatch_queue_depth").Set(90)

	var calls atomic.Int64
	scorer := peer.StartHealthDriver(obs.HealthConfig{
		Interval:      10 * time.Millisecond,
		QueueCapacity: 100,
		OnScore:       func(obs.HealthScore) { calls.Add(1) },
	})
	defer scorer.Stop()
	if calls.Load() != 1 {
		t.Fatalf("user OnScore fired %d times, want 1", calls.Load())
	}
	if peer.Admission() != nil {
		t.Fatal("admission unexpectedly enabled")
	}
	if got := scorer.Last().Overall; got < 0.89 || got > 0.91 {
		t.Fatalf("Overall = %v, want ~0.9 from the queue component", got)
	}
}
