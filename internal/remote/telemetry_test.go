package remote

import (
	"testing"
	"time"

	"github.com/alfredo-mw/alfredo/internal/event"
	"github.com/alfredo-mw/alfredo/internal/module"
	"github.com/alfredo-mw/alfredo/internal/netsim"
	"github.com/alfredo-mw/alfredo/internal/obs"
)

// newObsNode is newTestNode with a private hub (so each side's metrics
// are its own, not the process default's) and optional aggregator.
func newObsNode(t *testing.T, name string, agg *obs.Aggregator) *testNode {
	t.Helper()
	fw := module.NewFramework(module.Config{Name: name})
	ev := event.NewAdmin(0)
	peer, err := NewPeer(Config{
		Framework:  fw,
		Events:     ev,
		ProxyCode:  NewProxyCodeRegistry(),
		Timeout:    5 * time.Second,
		Obs:        obs.NewHub(),
		Aggregator: agg,
	})
	if err != nil {
		t.Fatalf("NewPeer(%s): %v", name, err)
	}
	n := &testNode{fw: fw, events: ev, peer: peer}
	t.Cleanup(func() {
		peer.Close()
		ev.Close()
		_ = fw.Shutdown()
	})
	return n
}

// TestMetricsShipping drives invocations phone->host, flushes a report
// and checks the host's fleet aggregator sees the phone's counters and
// a live windowed latency digest under the phone's identity.
func TestMetricsShipping(t *testing.T) {
	agg := obs.NewAggregator()
	host := newObsNode(t, "host", agg)
	phone := newObsNode(t, "phone", nil)
	exportCalculator(t, host)

	ch := connectNodes(t, host, phone, netsim.Loopback)
	if !ch.metricsEnabled() {
		t.Fatal("phone channel did not see the host's metrics.sink announcement")
	}

	svc, ok := ch.FindRemoteService("test.Calculator")
	if !ok {
		t.Fatal("calculator not in lease")
	}
	const calls = 25
	for i := 0; i < calls; i++ {
		if _, err := ch.Invoke(svc.ID, "Add", []any{int64(1), int64(2)}); err != nil {
			t.Fatalf("Invoke: %v", err)
		}
	}

	if n := phone.peer.ShipMetricsNow(); n != 1 {
		t.Fatalf("ShipMetricsNow shipped on %d channels, want 1", n)
	}
	// The report is applied by the host's read loop; wait for it.
	deadline := time.Now().Add(2 * time.Second)
	for agg.Total("alfredo_remote_invokes_total") != calls {
		if time.Now().After(deadline) {
			t.Fatalf("aggregated invokes = %d, want %d",
				agg.Total("alfredo_remote_invokes_total"), calls)
		}
		time.Sleep(time.Millisecond)
	}

	nodes := agg.Nodes()
	if len(nodes) != 1 || nodes[0].Node != "phone" {
		t.Fatalf("aggregator nodes = %+v, want [phone]", nodes)
	}
	if agg.NodeTotal("phone", "alfredo_remote_invokes_total") != calls {
		t.Fatalf("per-node total = %d, want %d",
			agg.NodeTotal("phone", "alfredo_remote_invokes_total"), calls)
	}
	if q := agg.WindowQuantile("alfredo_remote_invoke_seconds", 0.99); q <= 0 {
		t.Fatalf("fleet windowed p99 = %v, want > 0", q)
	}
	// The fleet snapshot labels every series with the reporting node.
	found := false
	for _, s := range agg.Snapshot() {
		if s.Name == "alfredo_remote_invokes_total" && s.Labels["node"] == "phone" {
			found = true
		}
	}
	if !found {
		t.Fatal("fleet snapshot lacks node-labeled invoke counter")
	}
}

// TestMetricsDeltaShipping checks the delta path: an unchanged registry
// ships nothing, a changed one ships only the moved series, and the
// aggregator remains exactly consistent with the sender afterwards.
func TestMetricsDeltaShipping(t *testing.T) {
	agg := obs.NewAggregator()
	host := newObsNode(t, "host", agg)
	phone := newObsNode(t, "phone", nil)
	exportCalculator(t, host)

	ch := connectNodes(t, host, phone, netsim.Loopback)
	svc, _ := ch.FindRemoteService("test.Calculator")

	invoke := func(n int) {
		for i := 0; i < n; i++ {
			if _, err := ch.Invoke(svc.ID, "Add", []any{int64(1), int64(2)}); err != nil {
				t.Fatalf("Invoke: %v", err)
			}
		}
	}
	waitTotal := func(want int64) {
		t.Helper()
		deadline := time.Now().Add(2 * time.Second)
		for agg.Total("alfredo_remote_invokes_total") != want {
			if time.Now().After(deadline) {
				t.Fatalf("aggregated invokes = %d, want %d",
					agg.Total("alfredo_remote_invokes_total"), want)
			}
			time.Sleep(time.Millisecond)
		}
	}

	invoke(10)
	if err := ch.shipMetrics(true); err != nil { // full baseline
		t.Fatal(err)
	}
	waitTotal(10)
	seqAfterFull := ch.shipSeq

	// Nothing changed: the delta tick must not even send a frame.
	ch.shipMu.Lock()
	ch.shipTicks = 1 // off the resync schedule so the next ship is a delta
	ch.shipMu.Unlock()
	if err := ch.shipMetrics(false); err != nil {
		t.Fatal(err)
	}
	if ch.shipSeq != seqAfterFull {
		t.Fatalf("idle delta consumed a sequence number (%d -> %d)", seqAfterFull, ch.shipSeq)
	}

	// Changes ship incrementally and the totals stay exact.
	invoke(7)
	ch.shipMu.Lock()
	ch.shipTicks = 1
	ch.shipMu.Unlock()
	if err := ch.shipMetrics(false); err != nil {
		t.Fatal(err)
	}
	waitTotal(17)
}
