package remote

import (
	"fmt"
	"sync"

	"github.com/alfredo-mw/alfredo/internal/obs"
	"github.com/alfredo-mw/alfredo/internal/wire"
)

// DefaultBroadcastQueue bounds the per-subscriber pending messages of a
// Broadcaster before coalescing kicks in.
const DefaultBroadcastQueue = 64

// BroadcasterConfig parameterizes a Broadcaster.
type BroadcasterConfig struct {
	// Queue bounds per-subscriber pending messages. When a subscriber's
	// queue is full, a keyed publish replaces the queued message with
	// the same key (keep-latest coalescing — a slow infoscreen gets the
	// freshest weather card, not every stale revision), and an unkeyed
	// publish evicts the oldest entry. Zero selects
	// DefaultBroadcastQueue.
	Queue int
	// Class selects the subscriber stream class; the default
	// StreamReliable delivers every non-coalesced message in order,
	// respecting each subscriber's credit window.
	Class StreamClass
	// Obs supplies the hub's telemetry; nil selects obs.Default().
	Obs *obs.Hub
}

// bcastMsg is one published message: the payload encoded once into
// shared segment tails at publish time, delivered to every subscriber
// by prepending a tiny per-stream header (wire.AppendStreamDataHeader).
type bcastMsg struct {
	key     string
	payload []byte
	tails   [][]byte // shared StreamData tails, one per segment
	sizes   []int    // payload bytes per segment (credit accounting)
}

// Broadcaster delivers published chunks to many subscriber streams:
// the fan-out hub behind one-to-many feeds (an infoscreen pushing the
// same cards to every watching phone). Publishing is O(subscribers)
// sends but O(segments) encodes — the payload is encoded exactly once
// and the bytes shared — and a slow subscriber never stalls the
// publisher or its peers: each subscriber has its own bounded queue
// (coalesced when over limit) drained by its own sender goroutine that
// alone blocks on that subscriber's credits.
type Broadcaster struct {
	name  string
	queue int
	class StreamClass

	mu     sync.Mutex
	subs   map[int64]*bcastSub
	nextID int64
	closed bool

	wg sync.WaitGroup

	subscribers *obs.Gauge
	published   *obs.Counter
	delivered   *obs.Counter
	coalesced   *obs.Counter
	dropped     *obs.Counter
	encodes     *obs.Counter
	sendErrors  *obs.Counter
}

// NewBroadcaster creates a fan-out hub publishing under the given
// stream name.
func NewBroadcaster(name string, cfg BroadcasterConfig) *Broadcaster {
	if cfg.Queue <= 0 {
		cfg.Queue = DefaultBroadcastQueue
	}
	m := cfg.Obs.OrDefault().Metrics
	return &Broadcaster{
		name:        name,
		queue:       cfg.Queue,
		class:       cfg.Class,
		subs:        make(map[int64]*bcastSub),
		subscribers: m.Gauge("alfredo_remote_broadcast_subscribers", "stream", name),
		published:   m.Counter("alfredo_remote_broadcast_published_total", "stream", name),
		delivered:   m.Counter("alfredo_remote_broadcast_delivered_total", "stream", name),
		coalesced:   m.Counter("alfredo_remote_broadcast_coalesced_total", "stream", name),
		dropped:     m.Counter("alfredo_remote_broadcast_dropped_total", "stream", name),
		encodes:     m.Counter("alfredo_remote_broadcast_encodes_total", "stream", name),
		sendErrors:  m.Counter("alfredo_remote_broadcast_send_errors_total", "stream", name),
	}
}

// Name returns the stream name subscribers receive.
func (b *Broadcaster) Name() string { return b.name }

// Subscribers returns the current subscriber count.
func (b *Broadcaster) Subscribers() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.subs)
}

// Subscribe opens a stream to the channel's peer and attaches it to the
// hub. The subscription ends when the channel closes, a send fails, the
// caller cancels it, or the hub closes.
func (b *Broadcaster) Subscribe(c *Channel, props map[string]any) (*Subscription, error) {
	w, err := c.OpenStreamClass(b.name, b.class, props)
	if err != nil {
		return nil, err
	}
	s := &bcastSub{b: b, w: w, done: make(chan struct{})}
	s.cond = sync.NewCond(&s.mu)
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		_ = w.Close()
		return nil, fmt.Errorf("remote: broadcaster %q closed", b.name)
	}
	b.nextID++
	s.id = b.nextID
	b.subs[s.id] = s
	b.mu.Unlock()
	b.subscribers.Add(1)
	b.wg.Add(2)
	go s.run()
	go s.watch(c)
	return &Subscription{s: s}, nil
}

// Publish encodes payload once and queues it to every subscriber. A
// non-empty key enables keep-latest coalescing for subscribers whose
// queue is full. Publish never blocks on a slow subscriber.
func (b *Broadcaster) Publish(key string, payload []byte) {
	m := &bcastMsg{key: key, payload: payload}
	// Encode once: segment tails are shared read-only by every
	// subscriber's sender.
	for first := true; first || len(payload) > 0; first = false {
		seg := payload
		if len(seg) > maxStreamFrame {
			seg = seg[:maxStreamFrame]
		}
		payload = payload[len(seg):]
		m.tails = append(m.tails, wire.AppendStreamTail(nil, seg, len(payload) > 0))
		m.sizes = append(m.sizes, len(seg))
	}
	b.encodes.Add(int64(len(m.tails)))
	b.published.Inc()
	b.mu.Lock()
	subs := make([]*bcastSub, 0, len(b.subs))
	for _, s := range b.subs {
		subs = append(subs, s)
	}
	b.mu.Unlock()
	for _, s := range subs {
		s.enqueue(m)
	}
}

// Close detaches every subscriber (closing their streams cleanly) and
// stops the hub.
func (b *Broadcaster) Close() {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return
	}
	b.closed = true
	subs := make([]*bcastSub, 0, len(b.subs))
	for _, s := range b.subs {
		subs = append(subs, s)
	}
	b.mu.Unlock()
	for _, s := range subs {
		b.detach(s, true)
	}
	b.wg.Wait()
}

// detach removes a subscriber; closeStream selects a clean StreamClose
// (hub shutdown / unsubscribe) versus leaving the failed writer alone.
func (b *Broadcaster) detach(s *bcastSub, closeStream bool) {
	b.mu.Lock()
	_, present := b.subs[s.id]
	delete(b.subs, s.id)
	b.mu.Unlock()
	if present {
		b.subscribers.Add(-1)
	}
	s.close()
	if closeStream {
		_ = s.w.Close()
	}
}

// Subscription is a handle to one subscriber of a Broadcaster.
type Subscription struct{ s *bcastSub }

// Cancel detaches the subscriber and closes its stream.
func (sub *Subscription) Cancel() { sub.s.b.detach(sub.s, true) }

// Done is closed when the subscription ends (cancel, send failure,
// channel close, or hub close).
func (sub *Subscription) Done() <-chan struct{} { return sub.s.done }

// Coalesced reports messages replaced by fresher same-key publishes
// while queued for this subscriber.
func (sub *Subscription) Coalesced() int64 {
	sub.s.mu.Lock()
	defer sub.s.mu.Unlock()
	return sub.s.coalesced
}

// Dropped reports unkeyed messages evicted from this subscriber's full
// queue.
func (sub *Subscription) Dropped() int64 {
	sub.s.mu.Lock()
	defer sub.s.mu.Unlock()
	return sub.s.dropped
}

type bcastSub struct {
	b  *Broadcaster
	id int64
	w  *StreamWriter

	mu        sync.Mutex
	cond      *sync.Cond
	q         []*bcastMsg
	closed    bool
	coalesced int64
	dropped   int64

	done     chan struct{}
	doneOnce sync.Once
}

func (s *bcastSub) enqueue(m *bcastMsg) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	if len(s.q) >= s.b.queue {
		if m.key != "" {
			// Keep-latest per key: replace the newest queued revision of
			// this key in place, preserving its position (and thus
			// cross-key ordering).
			for i := len(s.q) - 1; i >= 0; i-- {
				if s.q[i].key == m.key {
					s.q[i] = m
					s.coalesced++
					s.mu.Unlock()
					s.b.coalesced.Inc()
					return
				}
			}
		}
		// No coalesce target: evict the oldest so the feed stays fresh.
		copy(s.q, s.q[1:])
		s.q[len(s.q)-1] = nil
		s.q = s.q[:len(s.q)-1]
		s.dropped++
		s.b.dropped.Inc()
	}
	s.q = append(s.q, m)
	s.mu.Unlock()
	s.cond.Signal()
}

// run is the subscriber's sender: it alone blocks on this subscriber's
// credits, so one stalled phone delays only its own feed.
func (s *bcastSub) run() {
	defer s.b.wg.Done()
	for {
		s.mu.Lock()
		for len(s.q) == 0 && !s.closed {
			s.cond.Wait()
		}
		if s.closed {
			s.mu.Unlock()
			return
		}
		m := s.q[0]
		s.q[0] = nil
		s.q = s.q[1:]
		s.mu.Unlock()
		if err := s.send(m); err != nil {
			s.b.sendErrors.Inc()
			s.b.detach(s, false)
			return
		}
		s.b.delivered.Inc()
	}
}

// send ships one message over the subscriber's stream. On segmented
// channels the shared tails are written directly (encode-once: only the
// ~10-byte header is built per subscriber); a legacy channel falls back
// to a per-subscriber Write of the original payload.
func (s *bcastSub) send(m *bcastMsg) error {
	w := s.w
	if !w.segmented {
		_, err := w.Write(m.payload)
		return err
	}
	for i, tail := range m.tails {
		if err := w.reserveExact(m.sizes[i]); err != nil {
			return err
		}
		var hdrBuf [16]byte
		hdr := wire.AppendStreamDataHeader(hdrBuf[:0], w.id, len(tail))
		if err := w.c.sendFrameBulk(hdr, tail); err != nil {
			return err
		}
		w.c.sObs.txFrames.Inc()
		w.c.sObs.txBytes.Add(int64(m.sizes[i]))
	}
	return nil
}

// watch ends the subscription when the underlying channel dies, so a
// silent subscriber on a dead link is detached without waiting for the
// next publish to fail.
func (s *bcastSub) watch(c *Channel) {
	defer s.b.wg.Done()
	select {
	case <-c.Done():
		s.b.detach(s, false)
	case <-s.done:
	}
}

func (s *bcastSub) close() {
	s.mu.Lock()
	s.closed = true
	s.q = nil
	s.mu.Unlock()
	s.cond.Broadcast()
	s.doneOnce.Do(func() { close(s.done) })
}
