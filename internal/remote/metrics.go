package remote

import (
	"strconv"

	"github.com/alfredo-mw/alfredo/internal/obs"
)

// svcObs bundles the per-service telemetry handles of one direction of
// a channel (client invokes or served invokes). Handles are resolved
// once per (channel, service) and cached, so the steady-state cost per
// call is atomic adds only — no registry lookups, no label allocation.
type svcObs struct {
	calls  *obs.Counter
	errors *obs.Counter
	lat    *obs.Histogram
}

// obsHub returns the telemetry hub this channel records to (never nil;
// NewPeer normalizes Config.Obs).
func (c *Channel) obsHub() *obs.Hub { return c.peer.cfg.Obs }

// remoteServiceName labels a service offered by the remote peer by its
// first interface, falling back to the numeric id.
func (c *Channel) remoteServiceName(id int64) string {
	c.mu.Lock()
	s, ok := c.remoteSvcs[id]
	c.mu.Unlock()
	if ok && len(s.Interfaces) > 0 {
		return s.Interfaces[0]
	}
	return "svc-" + strconv.FormatInt(id, 10)
}

// localServiceName labels a locally exported service by its first
// interface, falling back to the numeric id.
func (c *Channel) localServiceName(id int64) string {
	if info, ok := c.peer.exportedInfo(id, c.tenant); ok && len(info.Interfaces) > 0 {
		return info.Interfaces[0]
	}
	return "svc-" + strconv.FormatInt(id, 10)
}

// invokeObs resolves (and caches) client-side invoke telemetry for a
// remote service.
func (c *Channel) invokeObs(id int64) *svcObs {
	c.mu.Lock()
	so, ok := c.invokeObsBySvc[id]
	c.mu.Unlock()
	if ok {
		return so
	}
	name := c.remoteServiceName(id)
	m := c.obsHub().Metrics
	so = &svcObs{
		calls:  m.Counter("alfredo_remote_invokes_total", "service", name),
		errors: m.Counter("alfredo_remote_invoke_errors_total", "service", name),
		lat:    m.Histogram("alfredo_remote_invoke_seconds", "service", name),
	}
	c.mu.Lock()
	c.invokeObsBySvc[id] = so
	c.mu.Unlock()
	return so
}

// serveObs resolves (and caches) server-side invoke telemetry for a
// locally exported service.
func (c *Channel) serveObs(id int64) *svcObs {
	c.mu.Lock()
	so, ok := c.serveObsBySvc[id]
	c.mu.Unlock()
	if ok {
		return so
	}
	name := c.localServiceName(id)
	m := c.obsHub().Metrics
	so = &svcObs{
		calls:  m.Counter("alfredo_remote_served_invokes_total", "service", name),
		errors: m.Counter("alfredo_remote_served_invoke_errors_total", "service", name),
		lat:    m.Histogram("alfredo_remote_server_invoke_seconds", "service", name),
	}
	c.mu.Lock()
	c.serveObsBySvc[id] = so
	c.mu.Unlock()
	return so
}

// streamObs bundles the stream-mux telemetry handles of one channel,
// resolved once at setup so the per-chunk cost is atomic adds only.
// Counts cover both directions: opened/active track streams with live
// state on this peer, tx/rx the payload bytes moved, creditGrants and
// creditStalls the flow-control activity, dropped the unreliable-class
// evictions.
type streamObs struct {
	opened       *obs.Counter
	closedN      *obs.Counter
	active       *obs.Gauge
	txBytes      *obs.Counter
	rxBytes      *obs.Counter
	txFrames     *obs.Counter
	droppedN     *obs.Counter
	creditGrants *obs.Counter
	creditStalls *obs.Counter
}

func newStreamObs(m *obs.Registry) *streamObs {
	return &streamObs{
		opened:       m.Counter("alfredo_remote_streams_opened_total"),
		closedN:      m.Counter("alfredo_remote_streams_closed_total"),
		active:       m.Gauge("alfredo_remote_streams_active"),
		txBytes:      m.Counter("alfredo_remote_stream_tx_bytes_total"),
		rxBytes:      m.Counter("alfredo_remote_stream_rx_bytes_total"),
		txFrames:     m.Counter("alfredo_remote_stream_tx_frames_total"),
		droppedN:     m.Counter("alfredo_remote_stream_dropped_total"),
		creditGrants: m.Counter("alfredo_remote_stream_credit_grants_total"),
		creditStalls: m.Counter("alfredo_remote_stream_credit_stalls_total"),
	}
}

// retryCounter counts one retry of op ("invoke", "fetch", "ping") by
// cause. Retries are a cold path, so this resolves from the registry
// each time.
func (c *Channel) retryCounter(op, cause string) *obs.Counter {
	return c.obsHub().Metrics.Counter("alfredo_remote_retries_total", "op", op, "cause", cause)
}
