package remote

import (
	"sync"

	"github.com/alfredo-mw/alfredo/internal/obs"
)

// Peer-wide bounded reactor pool for inbound invocation handlers.
//
// The per-channel dispatch slots (dispatch.go) bound what one
// connection can claim, but with tens of thousands of sessions the sum
// still grows O(channels): every busy channel holds its own handlers.
// The reactor layers a second, peer-wide bound on top: a handler
// goroutine must hold a reactor slot in addition to its channel slot,
// so total handler goroutines stay O(ReactorWorkers) no matter how many
// sessions are connected.
//
// The two-regime design of the per-channel layer is preserved:
//
//   - Slots free: the handler is spawned fresh (the fast sporadic-load
//     path measured in PR 3).
//
//   - Reactor saturated: the reader parks offering the frame on the
//     reactor's chain channel; a finishing handler adopts it directly —
//     keeping its reactor slot and goroutine but switching channels.
//     Under a many-session flood this converges to a fixed set of hot
//     handler goroutines serving all channels round-robin-ish, which is
//     the reactor pattern.
//
// A handler finishing work first offers itself to its own channel's
// chain (keeping channel+reactor slots — the single-hot-channel fast
// path), then releases the channel slot and offers itself peer-wide.
// Ownership of the channel slot travels with the work item: whoever
// executes a frame releases that frame's channel slot.
//
// There is no stranded-work window, by the same argument as the
// per-channel layer: the parked reader offers the frame and a slot
// acquisition in one select, so if every handler exits instead of
// chaining, a freed slot wakes the reader and it spawns.

// reactorWork is one inbound invocation bound for the pool: the frame
// plus the channel it arrived on (whose dispatch slot it holds).
type reactorWork struct {
	c *Channel
	w invokeWork
}

type reactor struct {
	sem    chan struct{}
	chain  chan reactorWork
	active *obs.Gauge
	stalls *obs.Counter
	wg     sync.WaitGroup
}

func newReactor(workers int, m *obs.Registry) *reactor {
	return &reactor{
		sem:    make(chan struct{}, workers),
		chain:  make(chan reactorWork),
		active: m.Gauge("alfredo_remote_reactor_active"),
		stalls: m.Counter("alfredo_remote_reactor_stalls_total"),
	}
}

// submit hands one invocation (already holding a channel dispatch slot)
// to the pool. Called from channel read loops only; blocking here is
// the peer-wide backpressure mechanism.
func (r *reactor) submit(c *Channel, w invokeWork) {
	select {
	case r.sem <- struct{}{}:
	default:
		// Pool saturated: park offering the frame to a finishing
		// handler (chain), a freed slot (spawn), or this channel's
		// teardown (drop the frame and its channel slot — the channel
		// is dying).
		r.stalls.Inc()
		select {
		case r.chain <- reactorWork{c, w}:
			return
		case r.sem <- struct{}{}:
		case <-c.closed:
			c.releaseSlot()
			return
		}
	}
	r.active.Add(1)
	r.wg.Add(1)
	go r.worker(reactorWork{c, w})
}

// worker handles one invocation, then chains: first into the same
// channel's parked frame (keeping both slots), then into any channel's
// parked frame (keeping only the reactor slot), and exits only when no
// work is waiting anywhere.
func (r *reactor) worker(rw reactorWork) {
	defer r.wg.Done()
	for {
		rw.c.handleInvoke(rw.w.m, rw.w.size)
		select {
		case w := <-rw.c.chainQ:
			rw.w = w
			continue
		default:
		}
		rw.c.releaseSlot()
		select {
		case rw = <-r.chain:
			continue
		default:
			<-r.sem
			r.active.Add(-1)
			return
		}
	}
}

// wait blocks until every pool goroutine has exited. Called from
// Peer.Close after all channels are down; parked readers have been
// released by their channels' closed signal, so the pool drains.
func (r *reactor) wait() { r.wg.Wait() }
