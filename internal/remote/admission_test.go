package remote

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/alfredo-mw/alfredo/internal/event"
	"github.com/alfredo-mw/alfredo/internal/module"
	"github.com/alfredo-mw/alfredo/internal/netsim"
	"github.com/alfredo-mw/alfredo/internal/obs"
	"github.com/alfredo-mw/alfredo/internal/service"
	"github.com/alfredo-mw/alfredo/internal/sim/clock"
	"github.com/alfredo-mw/alfredo/internal/sim/leak"
)

func newAdm(t *testing.T, pol AdmissionPolicy) (*Admission, *clock.Virtual) {
	t.Helper()
	v := clock.NewVirtual(1)
	return NewAdmission(pol, v, obs.NewHub().Metrics), v
}

// admitN admits n calls for tenant, failing on rejection, and returns
// the releases.
func admitN(t *testing.T, a *Admission, tenant string, n int) []func() {
	t.Helper()
	out := make([]func(), 0, n)
	for i := 0; i < n; i++ {
		rel, err := a.Admit(tenant)
		if err != nil {
			t.Fatalf("Admit(%s) call %d: %v", tenant, i+1, err)
		}
		out = append(out, rel)
	}
	return out
}

// TestAdmissionEdgeCases is the table of admission-control edge cases:
// each row builds a controller, drives a scenario, and checks who got
// in.
func TestAdmissionEdgeCases(t *testing.T) {
	cases := []struct {
		name string
		run  func(t *testing.T)
	}{
		{name: "zero weight tenant always rejected", run: func(t *testing.T) {
			a, _ := newAdm(t, AdmissionPolicy{
				MaxInFlight: 100,
				Weights:     map[string]int{"banned": 0},
				// Weights entries are taken literally: 0 means shut off,
				// not "use the default".
				DefaultWeight: 5,
			})
			if _, err := a.Admit("banned"); !errors.Is(err, ErrOverloaded) {
				t.Fatalf("zero-weight tenant admitted (err=%v)", err)
			}
			// Other tenants are unaffected.
			rel, err := a.Admit("fine")
			if err != nil {
				t.Fatalf("default-weight tenant rejected: %v", err)
			}
			rel()
			// Weight dropped to zero at runtime shuts the tenant off too.
			a.SetWeight("fine", 0)
			if _, err := a.Admit("fine"); !errors.Is(err, ErrOverloaded) {
				t.Fatalf("tenant with weight zeroed at runtime admitted (err=%v)", err)
			}
		}},
		{name: "limit lowered below current in-flight", run: func(t *testing.T) {
			a, _ := newAdm(t, AdmissionPolicy{MaxInFlight: 8})
			rels := admitN(t, a, "t1", 4)
			a.SetMaxInFlight(2) // below the 4 already running
			if _, err := a.Admit("t1"); !errors.Is(err, ErrOverloaded) {
				t.Fatalf("admit above lowered limit succeeded (err=%v)", err)
			}
			if got := a.InFlight(); got != 4 {
				t.Fatalf("running calls were disturbed: in-flight %d, want 4", got)
			}
			// Draining below the new limit reopens admission.
			rels[0]()
			rels[1]()
			rels[2]()
			rel, err := a.Admit("t1")
			if err != nil {
				t.Fatalf("admit after drain below new limit: %v", err)
			}
			rel()
			rels[3]()
			if got := a.InFlight(); got != 0 {
				t.Fatalf("in-flight after full drain = %d, want 0", got)
			}
		}},
		{name: "single hot tenant cannot starve the rest", run: func(t *testing.T) {
			a, _ := newAdm(t, AdmissionPolicy{MaxInFlight: 10})
			// The hot tenant arrives first and, alone, may fill the host
			// (work conservation)...
			hot := admitN(t, a, "hot", 10)
			// ...but once a second tenant is active, the hot tenant is
			// over its half share, while the newcomer still gets in after
			// capacity drains.
			hot[0]()
			hot[1]()
			relQuiet, err := a.Admit("quiet")
			if err != nil {
				t.Fatalf("quiet tenant rejected despite free capacity: %v", err)
			}
			if _, err := a.Admit("hot"); !errors.Is(err, ErrOverloaded) {
				t.Fatalf("hot tenant admitted above its share (err=%v)", err)
			}
			relQuiet()
			for _, rel := range hot[2:] {
				rel()
			}
			if got := a.InFlight(); got != 0 {
				t.Fatalf("in-flight after drain = %d, want 0", got)
			}
		}},
		{name: "weighted shares split by weight", run: func(t *testing.T) {
			a, _ := newAdm(t, AdmissionPolicy{
				MaxInFlight: 12,
				Weights:     map[string]int{"gold": 2, "bronze": 1},
			})
			// Both active: gold is entitled to 12*2/3 = 8, bronze to 4.
			g := admitN(t, a, "gold", 1)
			b := admitN(t, a, "bronze", 1)
			g = append(g, admitN(t, a, "gold", 7)...)
			if _, err := a.Admit("gold"); !errors.Is(err, ErrOverloaded) {
				t.Fatalf("gold admitted above its weighted share (err=%v)", err)
			}
			b = append(b, admitN(t, a, "bronze", 3)...)
			if _, err := a.Admit("bronze"); !errors.Is(err, ErrOverloaded) {
				t.Fatalf("bronze admitted above its weighted share (err=%v)", err)
			}
			for _, rel := range append(g, b...) {
				rel()
			}
		}},
		{name: "rate limit refills on the clock", run: func(t *testing.T) {
			a, v := newAdm(t, AdmissionPolicy{RatePerSec: 10, Burst: 2})
			rel1, err1 := a.Admit("t")
			rel2, err2 := a.Admit("t")
			if err1 != nil || err2 != nil {
				t.Fatalf("burst admits failed: %v, %v", err1, err2)
			}
			rel1()
			rel2()
			if _, err := a.Admit("t"); !errors.Is(err, ErrOverloaded) {
				t.Fatalf("admit past burst succeeded (err=%v)", err)
			}
			v.Advance(100 * time.Millisecond) // one token at 10/s
			rel3, err := a.Admit("t")
			if err != nil {
				t.Fatalf("admit after refill: %v", err)
			}
			rel3()
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) { tc.run(t) })
	}
}

// newAdmissionRig builds a server with admission control plus a client
// announcing the given tenant, wired over a seeded virtual-clock
// fabric.
type admissionRig struct {
	v      *clock.Virtual
	fabric *netsim.Fabric
	server *testNode
	client *testNode
}

func newAdmissionRig(t *testing.T, pol *AdmissionPolicy, tenant string, retry RetryPolicy) *admissionRig {
	t.Helper()
	leak.CheckGoroutines(t)
	v := clock.NewVirtual(7)
	r := &admissionRig{v: v, fabric: netsim.NewFabric().WithClock(v).WithSeed(7)}

	mk := func(name string, pol *AdmissionPolicy, hello map[string]any) *testNode {
		fw := module.NewFramework(module.Config{Name: name})
		ev := event.NewAdmin(0)
		peer, err := NewPeer(Config{
			Framework:  fw,
			Events:     ev,
			ProxyCode:  NewProxyCodeRegistry(),
			Timeout:    2 * time.Second,
			Retry:      retry,
			Clock:      v,
			Seed:       7,
			Admission:  pol,
			HelloProps: hello,
		})
		if err != nil {
			t.Fatalf("NewPeer(%s): %v", name, err)
		}
		n := &testNode{fw: fw, events: ev, peer: peer}
		t.Cleanup(func() {
			var done atomic.Bool
			go func() {
				defer done.Store(true)
				peer.Close()
				ev.Close()
				_ = fw.Shutdown()
			}()
			if !v.WaitCond(time.Minute, done.Load) {
				t.Errorf("teardown of %s stalled under the virtual clock", name)
			}
		})
		return n
	}
	r.server = mk("target", pol, nil)
	r.client = mk("phone", nil, map[string]any{HelloTenantProp: tenant})
	serveFabric(t, r.fabric, r.server)
	return r
}

func (r *admissionRig) drive(t *testing.T, budget time.Duration, fn func()) {
	t.Helper()
	var done atomic.Bool
	go func() {
		defer done.Store(true)
		fn()
	}()
	if !r.v.WaitCond(budget, done.Load) {
		t.Fatalf("blocked call did not finish within %v of virtual time", budget)
	}
}

// TestOverloadRejectionCrossesTheWire proves the typed error survives
// the wire: a zero-weight tenant's invoke fails with ErrOverloaded
// (not a generic remote failure), the channel survives, and no pending
// op is stranded.
func TestOverloadRejectionCrossesTheWire(t *testing.T) {
	pol := &AdmissionPolicy{MaxInFlight: 4, Weights: map[string]int{"deadbeat": 0}}
	r := newAdmissionRig(t, pol, "deadbeat", RetryPolicy{MaxAttempts: 1})
	exportCalculator(t, r.server)

	var ch *Channel
	r.drive(t, time.Minute, func() {
		conn, err := r.fabric.Dial(r.server.peer.ID(), netsim.Loopback)
		if err != nil {
			t.Errorf("Dial: %v", err)
			return
		}
		c, err := r.client.peer.Connect(conn)
		if err != nil {
			t.Errorf("Connect: %v", err)
			return
		}
		ch = c
	})
	if ch == nil {
		t.FailNow()
	}
	id := soleServiceID(t, ch)

	var err error
	r.drive(t, time.Minute, func() { _, err = ch.Invoke(id, "Add", []any{int64(1), int64(2)}) })
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("invoke error = %v, want ErrOverloaded", err)
	}
	var re *RemoteError
	if !errors.As(err, &re) || re.Code != CodeOverloaded {
		t.Fatalf("error = %#v, want RemoteError with CodeOverloaded", err)
	}
	if got := ch.PendingOps(); got != 0 {
		t.Fatalf("rejection stranded %d pending ops", got)
	}
	// The channel is still fully usable for admitted tenants' traffic —
	// prove it by lifting the weight and invoking again.
	r.server.peer.Admission().SetWeight("deadbeat", 1)
	var v any
	r.drive(t, time.Minute, func() { v, err = ch.Invoke(id, "Add", []any{int64(1), int64(2)}) })
	if err != nil || v != int64(3) {
		t.Fatalf("invoke after weight restore = %v, %v", v, err)
	}
}

// TestOverloadRetriesUntilAdmitted proves the phone-side retry policy
// understands ErrOverloaded: with the tenant rate-limited, a plain
// (non-idempotent) Invoke backs off and succeeds on a later attempt
// once the bucket refills — safe precisely because rejection precedes
// execution.
func TestOverloadRetriesUntilAdmitted(t *testing.T) {
	pol := &AdmissionPolicy{RatePerSec: 2, Burst: 1}
	r := newAdmissionRig(t, pol, "tenant-a", RetryPolicy{
		MaxAttempts: 5, BaseDelay: 400 * time.Millisecond, Multiplier: 1, Jitter: 0,
	})
	exportCalculator(t, r.server)

	var ch *Channel
	r.drive(t, time.Minute, func() {
		conn, err := r.fabric.Dial(r.server.peer.ID(), netsim.Loopback)
		if err != nil {
			t.Errorf("Dial: %v", err)
			return
		}
		c, err := r.client.peer.Connect(conn)
		if err != nil {
			t.Errorf("Connect: %v", err)
			return
		}
		ch = c
	})
	if ch == nil {
		t.FailNow()
	}
	id := soleServiceID(t, ch)

	// First call drains the 1-token burst; the second is rejected, then
	// retried on backoff until the 2/s refill admits it.
	var err error
	r.drive(t, time.Minute, func() { _, err = ch.Invoke(id, "Add", []any{int64(1), int64(1)}) })
	if err != nil {
		t.Fatalf("first invoke: %v", err)
	}
	var v any
	r.drive(t, time.Minute, func() { v, err = ch.Invoke(id, "Add", []any{int64(2), int64(2)}) })
	if err != nil || v != int64(4) {
		t.Fatalf("retried invoke = %v, %v", v, err)
	}
	retries := r.client.peer.cfg.Obs.Metrics.Counter(
		"alfredo_remote_retries_total", "op", "invoke", "cause", "overloaded").Value()
	if retries == 0 {
		t.Fatal("no overload retries recorded; the call was never rejected")
	}
}

// TestRejectionDuringSessionRecovery drops the link mid-session while
// the tenant is shut off: the resilient link must still recover its
// channel (handshake and leases are not admission-gated), the invoke
// issued during recovery must fail typed — ErrOverloaded, not a
// stranded timeout — and traffic must flow again once the tenant is
// restored.
func TestRejectionDuringSessionRecovery(t *testing.T) {
	pol := &AdmissionPolicy{MaxInFlight: 4}
	r := newAdmissionRig(t, pol, "tenant-r", RetryPolicy{
		MaxAttempts: 2, BaseDelay: 100 * time.Millisecond, Multiplier: 1, Jitter: 0,
		ReconnectBudget: 30 * time.Second,
	})
	exportCalculator(t, r.server)

	var mu sync.Mutex
	var conns []*netsim.Conn
	dial := func() (net.Conn, error) {
		c, err := r.fabric.Dial(r.server.peer.ID(), netsim.Loopback)
		if err != nil {
			return nil, err
		}
		mu.Lock()
		conns = append(conns, c.(*netsim.Conn))
		mu.Unlock()
		return c, nil
	}
	var link *Link
	r.drive(t, time.Minute, func() {
		l, err := r.client.peer.DialLink(dial)
		if err != nil {
			t.Errorf("DialLink: %v", err)
			return
		}
		link = l
	})
	if link == nil {
		t.FailNow()
	}
	defer r.drive(t, time.Minute, link.Close)

	id := soleServiceID(t, link.Channel())
	var v any
	var err error
	r.drive(t, time.Minute, func() { v, err = link.Channel().Invoke(id, "Add", []any{int64(2), int64(3)}) })
	if err != nil || v != int64(5) {
		t.Fatalf("Add before drop = %v, %v", v, err)
	}

	// Shut the tenant off, then kill the transport: recovery redials
	// while every invoke is rejected.
	r.server.peer.Admission().SetWeight("tenant-r", 0)
	first := link.Channel()
	mu.Lock()
	conns[0].Drop()
	mu.Unlock()
	// The failure propagates through the dead channel's read loop; wait
	// for the link to notice before asking for recovery.
	if !r.v.WaitCond(2*time.Second, func() bool { return link.State() != LinkUp }) {
		t.Fatal("link never left Up after the transport dropped")
	}

	var ch2 *Channel
	r.drive(t, time.Minute, func() { ch2, err = link.Await(30 * time.Second) })
	if err != nil {
		t.Fatalf("link did not recover with tenant shut off: %v", err)
	}
	if ch2 == first {
		t.Fatal("Await returned the dropped channel")
	}
	r.drive(t, time.Minute, func() { _, err = ch2.Invoke(id, "Add", []any{int64(1), int64(1)}) })
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("invoke during shut-off = %v, want ErrOverloaded", err)
	}
	if got := ch2.PendingOps(); got != 0 {
		t.Fatalf("rejection during recovery stranded %d pending ops", got)
	}

	r.server.peer.Admission().SetWeight("tenant-r", 1)
	r.drive(t, time.Minute, func() { v, err = ch2.Invoke(id, "Add", []any{int64(4), int64(4)}) })
	if err != nil || v != int64(8) {
		t.Fatalf("invoke after restore = %v, %v", v, err)
	}
}

// TestTenantScopedServiceVisibility proves the isolation boundary at
// the lease level: a tenant-scoped service appears only in the
// matching tenant's lease, is invocable only by it, and other tenants
// get NO_SUCH_SERVICE — indistinguishable from absence.
func TestTenantScopedServiceVisibility(t *testing.T) {
	server := newTestNode(t, "host")
	fabric := netsim.NewFabric()
	l, err := fabric.Listen(server.peer.ID())
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	t.Cleanup(func() { _ = l.Close() })
	go func() { _ = server.peer.Serve(l) }()

	// One public service, one scoped to tenant-a.
	exportCalculator(t, server)
	scoped := NewService("scoped.Secret").
		Method("Reveal", nil, "string", func([]any) (any, error) { return "classified", nil })
	reg, err := server.fw.Registry().Register([]string{"scoped.Secret"}, scoped,
		service.Properties{PropExported: true, PropTenant: "tenant-a"}, "test")
	if err != nil {
		t.Fatalf("Register scoped: %v", err)
	}

	connectTenant := func(name, tenant string) *Channel {
		t.Helper()
		fw := module.NewFramework(module.Config{Name: name})
		ev := event.NewAdmin(0)
		peer, err := NewPeer(Config{
			Framework:  fw,
			Events:     ev,
			ProxyCode:  NewProxyCodeRegistry(),
			Timeout:    5 * time.Second,
			HelloProps: map[string]any{HelloTenantProp: tenant},
		})
		if err != nil {
			t.Fatalf("NewPeer(%s): %v", name, err)
		}
		t.Cleanup(func() {
			peer.Close()
			ev.Close()
			_ = fw.Shutdown()
		})
		conn, err := fabric.Dial(server.peer.ID(), netsim.Loopback)
		if err != nil {
			t.Fatalf("Dial: %v", err)
		}
		ch, err := peer.Connect(conn)
		if err != nil {
			t.Fatalf("Connect(%s): %v", name, err)
		}
		t.Cleanup(ch.Close)
		return ch
	}

	chA := connectTenant("phone-a", "tenant-a")
	chB := connectTenant("phone-b", "tenant-b")

	if _, ok := chA.FindRemoteService("scoped.Secret"); !ok {
		t.Fatal("tenant-a does not see its own scoped service")
	}
	if _, ok := chB.FindRemoteService("scoped.Secret"); ok {
		t.Fatal("tenant-b sees tenant-a's scoped service in its lease")
	}
	if _, ok := chB.FindRemoteService("test.Calculator"); !ok {
		t.Fatal("tenant-b does not see the public service")
	}

	// Even knowing the id, cross-tenant invocation is refused as absent.
	info, _ := chA.FindRemoteService("scoped.Secret")
	if v, err := chA.Invoke(info.ID, "Reveal", nil); err != nil || v != "classified" {
		t.Fatalf("tenant-a invoke of scoped service = %v, %v", v, err)
	}
	if _, err := chB.Invoke(info.ID, "Reveal", nil); !errors.Is(err, ErrNoSuchService) {
		t.Fatalf("tenant-b invoke of scoped id = %v, want ErrNoSuchService", err)
	}

	// Unregistration retracts the scoped entry from the scoped tenant.
	reg.Unregister()
	deadline := time.Now().Add(2 * time.Second)
	for {
		if _, ok := chA.FindRemoteService("scoped.Secret"); !ok {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("scoped service not retracted from tenant-a after unregister")
		}
		time.Sleep(time.Millisecond)
	}
}

// TestAdmissionConcurrentChurn hammers one controller from many
// goroutines and checks the books balance: this is shared-state fodder
// for the race detector, and the zero in-flight count at the end is
// the no-leak invariant.
func TestAdmissionConcurrentChurn(t *testing.T) {
	a := NewAdmission(AdmissionPolicy{MaxInFlight: 32}, clock.Wall, obs.NewHub().Metrics)
	var admitted, rejected atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			tenant := fmt.Sprintf("t%d", g%5)
			for i := 0; i < 200; i++ {
				rel, err := a.Admit(tenant)
				if err != nil {
					rejected.Add(1)
					continue
				}
				admitted.Add(1)
				if i%7 == 0 {
					a.SetMaxInFlight(16 + (i % 17))
				}
				rel()
			}
		}(g)
	}
	wg.Wait()
	if a.InFlight() != 0 {
		t.Fatalf("in-flight after churn = %d, want 0", a.InFlight())
	}
	if admitted.Load() == 0 {
		t.Fatal("nothing was admitted")
	}
}

// TestAdmissionTenantCap floods the controller with distinct tenant
// ids and checks tracked state stops growing at MaxTenants: later ids
// share the overflow state (and its budget) instead of growing memory.
func TestAdmissionTenantCap(t *testing.T) {
	a, _ := newAdm(t, AdmissionPolicy{MaxInFlight: 1000, MaxTenants: 16})
	for i := 0; i < 500; i++ {
		rel, err := a.Admit(fmt.Sprintf("hostile-%d", i))
		if err == nil {
			rel()
		}
	}
	// 16 tracked states plus the shared overflow entry.
	if n := a.Tenants(); n > 17 {
		t.Fatalf("tenant states grew to %d, cap 16", n)
	}
	// Overflow tenants still share fairly: with the overflow state busy,
	// a capped-out fresh tenant competes inside the shared budget rather
	// than being rejected outright.
	if _, err := a.Admit("hostile-9999"); err != nil {
		t.Fatalf("overflow tenant rejected outright: %v", err)
	}
}

// TestAdmissionShedFactor checks health-driven shedding narrows the
// effective capacity without touching the configured limit, and that
// clearing it restores full capacity.
func TestAdmissionShedFactor(t *testing.T) {
	a, _ := newAdm(t, AdmissionPolicy{MaxInFlight: 10})

	a.SetShedFactor(0.5) // effective capacity: 5
	rels := admitN(t, a, "x", 5)
	if _, err := a.Admit("x"); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("6th call admitted under 50%% shed (err=%v)", err)
	}
	if got := a.ShedFactor(); got != 0.5 {
		t.Fatalf("ShedFactor = %v, want 0.5", got)
	}
	if a.MaxInFlight() != 10 {
		t.Fatalf("shedding mutated MaxInFlight: %d", a.MaxInFlight())
	}

	a.SetShedFactor(0) // restore
	rels = append(rels, admitN(t, a, "x", 5)...)
	for _, rel := range rels {
		rel()
	}
	if a.InFlight() != 0 {
		t.Fatalf("in-flight = %d after releases", a.InFlight())
	}

	// Extreme shed still admits one call (never a full blackout), and
	// out-of-range values clamp instead of panicking.
	a.SetShedFactor(5.0)
	rel, err := a.Admit("x")
	if err != nil {
		t.Fatalf("full shed blacked out admission entirely: %v", err)
	}
	if _, err := a.Admit("y"); !errors.Is(err, ErrOverloaded) {
		t.Fatal("second call admitted under max shed")
	}
	rel()
	a.SetShedFactor(-1)
	if a.ShedFactor() != 0 {
		t.Fatalf("negative shed not clamped: %v", a.ShedFactor())
	}
}
