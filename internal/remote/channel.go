package remote

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"net"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"github.com/alfredo-mw/alfredo/internal/event"
	"github.com/alfredo-mw/alfredo/internal/module"
	"github.com/alfredo-mw/alfredo/internal/obs"
	"github.com/alfredo-mw/alfredo/internal/sim/clock"
	"github.com/alfredo-mw/alfredo/internal/wire"
)

// Remote error codes carried in ErrorReply frames.
const (
	CodeNoSuchService = "NO_SUCH_SERVICE"
	CodeNoSuchMethod  = "NO_SUCH_METHOD"
	CodeBadArgs       = "BAD_ARGS"
	CodeInvokeFailed  = "INVOKE_FAILED"
	CodeBadRequest    = "BAD_REQUEST"
	CodeOverloaded    = "OVERLOADED"
)

// RemoteError is a failure reported by the remote peer.
type RemoteError struct {
	Code    string
	Message string
}

func (e *RemoteError) Error() string {
	return fmt.Sprintf("remote: peer error %s: %s", e.Code, e.Message)
}

// Is maps well-known codes onto the package sentinels so that callers
// can use errors.Is across the network boundary.
func (e *RemoteError) Is(target error) bool {
	switch target {
	case ErrNoSuchService:
		return e.Code == CodeNoSuchService
	case ErrNoSuchMethod:
		return e.Code == CodeNoSuchMethod
	case ErrBadArgs:
		return e.Code == CodeBadArgs
	case ErrOverloaded:
		return e.Code == CodeOverloaded
	case ErrRemoteFailure:
		return true
	default:
		return false
	}
}

type callResult struct {
	value any
	err   error
}

// fetchResult is what a pending fetch resolves to: the reply plus its
// on-the-wire frame size (for devsim parse-cost accounting — the reply
// is never re-encoded just to learn its length), or a teardown error.
type fetchResult struct {
	reply *wire.ServiceReply
	size  int
	err   error
}

// Channel is one established connection to a remote peer. It is
// symmetric: either side can fetch, invoke, stream and receive events.
type Channel struct {
	peer *Peer
	conn net.Conn

	// id keys this channel in the peer's striped channel table.
	id int64
	// tenant is the remote peer's announced tenant (HelloTenantProp),
	// fixed at handshake; it scopes which exported services this
	// channel may see and the admission accounting it bills to.
	tenant string

	// Frame writes are coalesced: senders append to bw under wmu, and
	// the last sender out of the lock flushes (wpend tracks senders
	// committed to the lock). A lone sender therefore still flushes its
	// own frame immediately — coalescing adds no latency, only merges
	// bursts into fewer transport writes.
	wmu   sync.Mutex
	bw    *bufio.Writer
	wpend atomic.Int32

	// Priority gate between the two send classes. High-priority senders
	// (control and invoke frames — everything but stream payload) count
	// themselves in hiPend around the write; bulk senders (StreamData
	// segments) wait on gateCond while any high-priority sender is
	// pending, so a bulk chunk train can never head-of-line-block an
	// invoke or a StreamClose: at worst one ≤16KB segment is ahead of
	// it in the buffer. When no bulk sender is active (bulkWaiters zero)
	// the gate costs the invoke path two uncontended atomic ops.
	hiPend      atomic.Int32
	bulkWaiters atomic.Int32
	gateMu      sync.Mutex
	gateCond    *sync.Cond

	// dispatchSem bounds the handler goroutines serving inbound
	// invocations: one slot per in-flight handler, the reader blocks
	// when all are taken (nil selects unbounded goroutine-per-invoke,
	// the seed behavior kept for ablations). See dispatch.go.
	dispatchSem    chan struct{}
	chainQ         chan invokeWork
	dispatchDepth  *obs.Gauge
	dispatchStalls *obs.Counter

	mu           sync.Mutex
	remoteID     string
	remoteProps  map[string]any
	remoteSvcs   map[int64]wire.ServiceInfo
	pendingCalls map[int64]chan callResult
	pendingFetch map[int64]chan fetchResult
	pendingPings map[int64]chan error
	// Chunked acquisition (fetch.go): one entry per outstanding
	// manifest request; one buffered stream per in-flight chunk window.
	pendingManifests map[int64]chan manifestResult
	pendingChunks    map[int64]chan *wire.ChunkData
	nextID           int64
	remoteSubs       []string
	streams          map[int64]*inStream
	outStreams       map[int64]*StreamWriter
	// nextStream allocates outbound stream ids with direction parity
	// (dialer odd, acceptor even): StreamClose and StreamCredit flow in
	// both directions, and disjoint id spaces make their target map
	// unambiguous.
	nextStream int64
	streamFn   func(name string, props map[string]any, r *StreamReader)
	svcWatchers      []func()
	proxies          []*module.Bundle
	evTok            int64
	hasEvTok         bool
	closeReason      error

	// Cached per-service telemetry handles (see metrics.go).
	invokeObsBySvc map[int64]*svcObs
	serveObsBySvc  map[int64]*svcObs

	// Metric-shipping state (telemetry.go): sequence counter, ship
	// count (for the periodic full resync), and the per-series
	// fingerprints of the last successfully shipped report.
	shipMu    sync.Mutex
	shipSeq   int64
	shipTicks int64
	shipLast  map[string]shipFP

	// Stream flow control (stream.go): streamCredit records that both
	// hellos announced propStreamCredit; streamWindow is the receive
	// window granted per reliable inbound stream. Both are fixed at
	// handshake. sObs caches the stream telemetry handles.
	streamCredit bool
	streamWindow int64
	sObs         *streamObs

	// opened records that setup completed and the channel was counted
	// in the opened/active telemetry; teardown mirrors the accounting
	// only when it is set.
	opened atomic.Bool

	closed chan struct{}
	once   sync.Once
	wg     sync.WaitGroup
}

// setupChannel performs the symmetric handshake: Hello exchange, then
// lease exchange, then the reader starts. initiator marks the dialing
// side; it seeds the stream-id parity (dialer odd, acceptor even) so
// both directions can open streams without id collisions.
func (p *Peer) setupChannel(conn net.Conn, initiator bool) (*Channel, error) {
	c := &Channel{
		peer:             p,
		conn:             conn,
		id:               p.nextChanID.Add(1),
		bw:               bufio.NewWriterSize(conn, p.cfg.WriteBufferBytes),
		remoteSvcs:       make(map[int64]wire.ServiceInfo),
		pendingCalls:     make(map[int64]chan callResult),
		pendingFetch:     make(map[int64]chan fetchResult),
		pendingPings:     make(map[int64]chan error),
		pendingManifests: make(map[int64]chan manifestResult),
		pendingChunks:    make(map[int64]chan *wire.ChunkData),
		streams:          make(map[int64]*inStream),
		outStreams:       make(map[int64]*StreamWriter),
		invokeObsBySvc:   make(map[int64]*svcObs),
		serveObsBySvc:    make(map[int64]*svcObs),
		streamWindow:     int64(p.cfg.StreamWindowBytes),
		sObs:             newStreamObs(p.cfg.Obs.Metrics),
		closed:           make(chan struct{}),
	}
	c.gateCond = sync.NewCond(&c.gateMu)
	if initiator {
		c.nextStream = -1 // first allocation lands on 1; acceptor side on 2
	}

	// Bound the handshake: a dead or hostile peer must not hang the
	// connector forever. The deadline is computed on the peer's clock so
	// that a netsim transport on the same (virtual) clock interprets it
	// consistently.
	if err := conn.SetReadDeadline(p.cfg.Clock.Now().Add(p.cfg.Timeout)); err == nil {
		defer func() { _ = conn.SetReadDeadline(time.Time{}) }()
	}

	// Every peer serves chunked fetches; announcing it lets requesters
	// pick the chunked path. Explicit HelloProps may override (tests
	// and ablations pose as a legacy peer by setting it false).
	helloProps := map[string]any{
		"device":         p.cfg.Device.Name(),
		propFetchChunked: true,
		propStreamCredit: true,
	}
	if p.cfg.Aggregator != nil {
		// Announcing the sink invites the other side to ship its metric
		// state here (telemetry.go).
		helloProps[propMetricsSink] = true
	}
	for k, v := range p.cfg.HelloProps {
		helloProps[k] = v
	}
	if err := wire.WriteMessage(conn, &wire.Hello{
		PeerID:  p.ID(),
		Version: wire.ProtocolVersion,
		Props:   helloProps,
	}); err != nil {
		return nil, fmt.Errorf("%w: sending hello: %w", ErrBadHandshake, err)
	}
	msg, err := wire.ReadMessage(conn)
	if err != nil {
		return nil, fmt.Errorf("%w: reading hello: %w", ErrBadHandshake, err)
	}
	hello, ok := msg.(*wire.Hello)
	if !ok {
		return nil, fmt.Errorf("%w: expected HELLO, got %s", ErrBadHandshake, msg.Type())
	}
	if hello.Version != wire.ProtocolVersion {
		return nil, fmt.Errorf("%w: protocol version %d, want %d", ErrBadHandshake, hello.Version, wire.ProtocolVersion)
	}
	c.remoteID = hello.PeerID
	c.remoteProps = hello.Props
	if t, ok := hello.Props[HelloTenantProp].(string); ok {
		c.tenant = t
	}
	// Stream credit is on only when both hellos announced it (explicit
	// HelloProps may pose as a legacy peer); otherwise every stream
	// keeps the seed's unbounded-send / drop-oldest behavior and no
	// frame ever carries a segmentation marker.
	localCredit, _ := helloProps[propStreamCredit].(bool)
	remoteCredit, _ := hello.Props[propStreamCredit].(bool)
	c.streamCredit = localCredit && remoteCredit
	// The peer-level default stream handler, installed before the
	// reader starts so no inbound StreamOpen can miss it.
	if fn := p.streamHandler(); fn != nil {
		ch := c
		c.streamFn = func(name string, props map[string]any, r *StreamReader) {
			r.Name = name
			r.Props = props
			fn(ch, r)
		}
	}

	// The channel joins the broadcast set *before* the lease snapshot is
	// taken, under the peer's lease lock: any concurrent export is
	// therefore either contained in the snapshot or broadcast to this
	// channel — never lost.
	p.leaseMu.Lock()
	if err := p.addChannel(c); err != nil {
		p.leaseMu.Unlock()
		return nil, err
	}
	err = wire.WriteMessage(conn, &wire.Lease{Services: p.exportedInfosFor(c.tenant)})
	p.leaseMu.Unlock()
	if err != nil {
		p.removeChannel(c)
		return nil, fmt.Errorf("%w: sending lease: %w", ErrBadHandshake, err)
	}
	msg, err = wire.ReadMessage(conn)
	if err != nil {
		// Without this removal the half-set-up channel stays in the
		// peer's broadcast set forever and Peer.Close later tears down
		// a channel that never finished its handshake.
		p.removeChannel(c)
		return nil, fmt.Errorf("%w: reading lease: %w", ErrBadHandshake, err)
	}
	lease, ok := msg.(*wire.Lease)
	if !ok {
		p.removeChannel(c)
		return nil, fmt.Errorf("%w: expected LEASE, got %s", ErrBadHandshake, msg.Type())
	}
	c.mu.Lock()
	for _, s := range lease.Services {
		c.remoteSvcs[s.ID] = s
	}
	c.mu.Unlock()

	if p.cfg.Events != nil {
		tok, err := p.cfg.Events.Subscribe("*", nil, c.forwardEvent)
		if err == nil {
			c.mu.Lock()
			c.evTok, c.hasEvTok = tok, true
			c.mu.Unlock()
		}
	}

	// Clear the handshake deadline before the reader starts so an idle
	// channel does not time out (the deferred clear also runs, which is
	// harmless).
	_ = conn.SetReadDeadline(time.Time{})

	c.opened.Store(true)
	p.cfg.Obs.Metrics.Counter("alfredo_remote_channels_opened_total").Inc()
	p.cfg.Obs.Metrics.Gauge("alfredo_remote_channels_active").Add(1)

	c.startDispatch()
	if c.metricsEnabled() {
		interval := p.cfg.MetricsInterval
		if interval == 0 {
			interval = DefaultMetricsInterval
		}
		c.wg.Add(1)
		go c.metricsLoop(interval)
	}
	c.wg.Add(1)
	go c.readLoop()
	return c, nil
}

// Tenant returns the tenant announced by the remote peer's Hello
// (empty when the peer did not announce one). It is immutable after
// the handshake.
func (c *Channel) Tenant() string { return c.tenant }

// admissionTenant is the identity admission control bills this
// channel's calls to: the announced tenant, or the remote peer id for
// peers outside any tenant.
func (c *Channel) admissionTenant() string {
	if c.tenant != "" {
		return c.tenant
	}
	return c.remoteID
}

// RemoteID returns the peer identity on the other side.
func (c *Channel) RemoteID() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.remoteID
}

// RemoteProps returns the properties announced in the remote Hello.
func (c *Channel) RemoteProps() map[string]any {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[string]any, len(c.remoteProps))
	for k, v := range c.remoteProps {
		out[k] = v
	}
	return out
}

// RemoteServices lists the services currently offered by the remote
// peer, ordered by service id.
func (c *Channel) RemoteServices() []wire.ServiceInfo {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]wire.ServiceInfo, 0, len(c.remoteSvcs))
	for _, s := range c.remoteSvcs {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// FindRemoteService returns the remote service offered under the given
// interface name.
func (c *Channel) FindRemoteService(iface string) (wire.ServiceInfo, bool) {
	for _, s := range c.RemoteServices() {
		for _, i := range s.Interfaces {
			if i == iface {
				return s, true
			}
		}
	}
	return wire.ServiceInfo{}, false
}

// OnServicesChanged registers a callback fired whenever the remote
// lease changes.
func (c *Channel) OnServicesChanged(fn func()) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.svcWatchers = append(c.svcWatchers, fn)
}

// Err returns the teardown cause after the channel closed, nil before.
func (c *Channel) Err() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.closeReason
}

// Done returns a channel closed when the connection tears down.
func (c *Channel) Done() <-chan struct{} { return c.closed }

// PendingOps reports the number of in-flight request/reply operations
// (invokes, fetches, pings) still awaiting a reply. A quiescent channel
// holds zero — the simulation harness checks this after every step to
// catch pending-map leaks.
func (c *Channel) PendingOps() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.pendingCalls) + len(c.pendingFetch) + len(c.pendingPings) +
		len(c.pendingManifests) + len(c.pendingChunks)
}

// clock returns the peer's time source.
func (c *Channel) clock() clock.Clock { return c.peer.cfg.Clock }

// writeCoalesceBuffer is the default per-channel write buffer: large
// enough to merge a burst of invocation frames into one transport
// write, small enough to be irrelevant per connection. Hosts serving
// tens of thousands of sessions shrink it via Config.WriteBufferBytes
// — at 10k channels the default alone would cost 320 MB.
const writeCoalesceBuffer = 32 << 10

// send encodes and writes one message through a pooled encode buffer:
// the frame is built in place and released after the write, so the
// steady-state send path allocates nothing for framing.
func (c *Channel) send(m wire.Message) error {
	buf := wire.GetBuffer()
	frame, err := wire.EncodeInto(buf, m)
	if err != nil {
		wire.PutBuffer(buf)
		return err
	}
	err = c.sendFrame(frame)
	wire.PutBuffer(buf)
	return err
}

// sendFrame writes one encoded frame at high priority (control and
// invoke traffic). Bulk stream payload goes through sendFrameBulk,
// which yields to pending high-priority senders; the hiPend counter
// around the write is what it yields to. When no bulk sender exists
// the gate adds two uncontended atomic ops to this path and nothing
// else.
func (c *Channel) sendFrame(frame []byte) error {
	c.hiPend.Add(1)
	err := c.writeParts(frame)
	if c.hiPend.Add(-1) == 0 && c.bulkWaiters.Load() > 0 {
		// Last high-priority sender out wakes parked bulk senders. The
		// gate lock is taken so the wake cannot slip between a bulk
		// sender's hiPend check and its Wait (sequencing: a waiter
		// registers in bulkWaiters before checking hiPend, so either it
		// sees our decrement or we see its registration).
		c.gateMu.Lock()
		c.gateCond.Broadcast()
		c.gateMu.Unlock()
	}
	return err
}

// sendFrameBulk writes one frame of bulk stream payload, possibly in
// two parts (a per-subscriber header and a shared encoded tail — the
// fan-out path), parked while any high-priority send is pending. Bulk
// frames are bounded (≤ maxStreamFrame payload), so the worst case a
// control frame waits is one segment already in the buffered writer.
func (c *Channel) sendFrameBulk(parts ...[]byte) error {
	if c.hiPend.Load() > 0 {
		c.bulkWaiters.Add(1)
		c.gateMu.Lock()
		for c.hiPend.Load() > 0 {
			select {
			case <-c.closed:
				c.gateMu.Unlock()
				c.bulkWaiters.Add(-1)
				return ErrChannelClosed
			default:
			}
			c.gateCond.Wait()
		}
		c.gateMu.Unlock()
		c.bulkWaiters.Add(-1)
	}
	return c.writeParts(parts...)
}

// writeParts writes one frame (possibly split into consecutive parts)
// with write coalescing: the parts go into the buffered writer under
// one lock hold, and whoever is the last sender holding the lock
// flushes. Concurrent senders therefore batch into a single transport
// write (one netsim chunk, one syscall on real sockets) while an
// uncontended sender flushes its own frame immediately — there is no
// flush timer, so coalescing never delays a frame.
func (c *Channel) writeParts(parts ...[]byte) error {
	select {
	case <-c.closed:
		return ErrChannelClosed
	default:
	}
	c.wpend.Add(1)
	c.wmu.Lock()
	var err error
	for _, part := range parts {
		if _, err = c.bw.Write(part); err != nil {
			break
		}
	}
	if c.wpend.Add(-1) == 0 {
		// No other sender is committed to the lock: flush now. If one
		// is, it flushes on its way out (buffered write errors would
		// surface there and through the reader's teardown).
		if ferr := c.bw.Flush(); err == nil {
			err = ferr
		}
	}
	c.wmu.Unlock()
	if err != nil {
		return fmt.Errorf("remote: writing frame: %w", err)
	}
	return nil
}

// Invoke performs a synchronous remote invocation of a service offered
// by the remote peer. It is not retried: a timed-out invocation may
// have executed remotely, and Invoke makes no idempotency assumption.
// Use InvokeIdempotent for methods that are safe to replay.
func (c *Channel) Invoke(serviceID int64, method string, args []any) (any, error) {
	return c.InvokeCtx(context.Background(), serviceID, method, args)
}

// InvokeCtx is Invoke with a caller context: when ctx carries a span,
// the invocation joins its trace and ships the span context over the
// wire, so the serving peer's span lands in the same trace.
//
// Admission rejections (ErrOverloaded) are retried with backoff even
// here, on the non-idempotent path: the serving side rejects before
// any service code runs, so an overloaded call has definitely not
// executed and replaying it is safe.
func (c *Channel) InvokeCtx(ctx context.Context, serviceID int64, method string, args []any) (any, error) {
	norm, err := normalizeArgs(method, args)
	if err != nil {
		return nil, err
	}
	policy := c.peer.cfg.Retry
	value, err := c.invokeOnce(ctx, serviceID, method, norm)
	for attempt := 1; attempt < policy.MaxAttempts && errors.Is(err, ErrOverloaded); attempt++ {
		c.retryCounter("invoke", "overloaded").Inc()
		if !c.backoff(c.peer.retryDelay(attempt - 1)) {
			return nil, ErrChannelClosed
		}
		value, err = c.invokeOnce(ctx, serviceID, method, norm)
	}
	return value, err
}

// InvokeIdempotent invokes a method that is declared safe to execute
// more than once: timeouts are retried with the peer's backoff policy
// (at-least-once semantics). Non-idempotent methods must go through
// Invoke, which never replays a call whose outcome is unknown.
func (c *Channel) InvokeIdempotent(serviceID int64, method string, args []any) (any, error) {
	return c.InvokeIdempotentCtx(context.Background(), serviceID, method, args)
}

// InvokeIdempotentCtx is InvokeIdempotent with trace propagation: the
// retry loop gets its own span, each attempt a child span, and every
// retry is annotated with its cause and counted.
func (c *Channel) InvokeIdempotentCtx(ctx context.Context, serviceID int64, method string, args []any) (any, error) {
	norm, err := normalizeArgs(method, args)
	if err != nil {
		return nil, err
	}
	ctx, span := c.obsHub().Tracer.Start(ctx, "rpc.invoke.retryable")
	span.SetAttr("method", method)
	defer span.Finish()
	policy := c.peer.cfg.Retry
	var lastErr error
	for attempt := 0; attempt < policy.MaxAttempts; attempt++ {
		if attempt > 0 {
			cause := "timeout"
			if errors.Is(lastErr, ErrOverloaded) {
				cause = "overloaded"
			}
			c.retryCounter("invoke", cause).Inc()
			span.Annotate(fmt.Sprintf("retry %d (cause: %s)", attempt, cause))
			if !c.backoff(c.peer.retryDelay(attempt - 1)) {
				span.Fail(ErrChannelClosed)
				return nil, ErrChannelClosed
			}
		}
		value, err := c.invokeOnce(ctx, serviceID, method, norm)
		if err == nil || (!errors.Is(err, ErrTimeout) && !errors.Is(err, ErrOverloaded)) {
			span.Fail(err)
			return value, err
		}
		lastErr = err
	}
	failure := fmt.Errorf("remote: %s failed after %d attempts: %w", method, policy.MaxAttempts, lastErr)
	span.Fail(failure)
	return nil, failure
}

// backoff sleeps for d unless the channel closes first; it reports
// whether the channel is still usable.
func (c *Channel) backoff(d time.Duration) bool {
	t := c.clock().NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-c.closed:
		return false
	}
}

func normalizeArgs(method string, args []any) ([]any, error) {
	norm := make([]any, len(args))
	for i, a := range args {
		n, err := wire.Normalize(a)
		if err != nil {
			return nil, fmt.Errorf("remote: invoking %s: %w", method, err)
		}
		norm[i] = n
	}
	return norm, nil
}

// invokeOnce performs one invocation attempt with already-normalized
// arguments, wrapped in telemetry: a span (propagated over the wire)
// plus per-service counters and a latency histogram.
func (c *Channel) invokeOnce(ctx context.Context, serviceID int64, method string, norm []any) (any, error) {
	so := c.invokeObs(serviceID)
	start := time.Now()
	_, span := c.obsHub().Tracer.Start(ctx, "rpc.invoke")
	span.SetAttr("method", method)
	value, err := c.invokeWire(span, serviceID, method, norm)
	so.calls.Inc()
	if err != nil {
		so.errors.Inc()
	}
	so.lat.ObserveSince(start)
	span.Fail(err)
	span.Finish()
	return value, err
}

// invokeWire performs the actual wire exchange of one invocation
// attempt, shipping span's context in the Invoke frame.
func (c *Channel) invokeWire(span *obs.Span, serviceID int64, method string, norm []any) (any, error) {
	id, ch, err := c.sendInvoke(span, serviceID, method, norm)
	if err != nil {
		return nil, err
	}
	timer := c.clock().NewTimer(c.peer.cfg.Timeout)
	defer timer.Stop()
	select {
	case res := <-ch:
		return res.value, res.err
	case <-timer.C:
		c.dropPendingCall(id)
		return nil, fmt.Errorf("%w: %s after %v", ErrTimeout, method, c.peer.cfg.Timeout)
	case <-c.closed:
		c.dropPendingCall(id)
		return nil, ErrChannelClosed
	}
}

// sendInvoke registers a pending call and ships its Invoke frame from a
// pooled encode buffer; the synchronous and pipelined invoke paths both
// go through here. The frame size doubles as the devsim payload size —
// the frame is encoded exactly once.
func (c *Channel) sendInvoke(span *obs.Span, serviceID int64, method string, norm []any) (int64, chan callResult, error) {
	c.mu.Lock()
	c.nextID++
	id := c.nextID
	ch := make(chan callResult, 1)
	c.pendingCalls[id] = ch
	c.mu.Unlock()

	sc := span.Context()
	buf := wire.GetBuffer()
	frame, err := wire.EncodeInto(buf, &wire.Invoke{
		CallID:    id,
		ServiceID: serviceID,
		Method:    method,
		Args:      norm,
		TraceID:   sc.TraceID,
		SpanID:    sc.SpanID,
	})
	if err != nil {
		wire.PutBuffer(buf)
		c.dropPendingCall(id)
		return 0, nil, err
	}
	if span != nil {
		span.SetAttr("node", c.peer.ID())
		span.SetAttr("bytes", strconv.Itoa(len(frame)))
	}

	// Client-side marshalling/dispatch cost on the simulated device.
	c.peer.cfg.Device.ClientInvoke(c.peer.cfg.ClientInvokeCost, len(frame))

	err = c.sendFrame(frame)
	wire.PutBuffer(buf)
	if err != nil {
		c.dropPendingCall(id)
		return 0, nil, err
	}
	return id, ch, nil
}

func (c *Channel) dropPendingCall(id int64) {
	c.mu.Lock()
	delete(c.pendingCalls, id)
	c.mu.Unlock()
}

// Fetch retrieves everything needed to build a local proxy for a remote
// service: its interface descriptor(s), injected types, the AlfredO
// service descriptor, and any smart proxy reference. This is the
// "Acquire service interface" phase of Tables 1 and 2. Fetching is
// read-only and therefore always retried on timeout.
func (c *Channel) Fetch(serviceID int64) (*wire.ServiceReply, error) {
	return c.FetchCtx(context.Background(), serviceID)
}

// FetchCtx is Fetch with trace propagation: the retry loop gets its own
// span, each attempt a child span shipped over the wire, and every
// retry is annotated and counted.
func (c *Channel) FetchCtx(ctx context.Context, serviceID int64) (*wire.ServiceReply, error) {
	ctx, span := c.obsHub().Tracer.Start(ctx, "rpc.fetch.retryable")
	defer span.Finish()
	policy := c.peer.cfg.Retry
	var lastErr error
	for attempt := 0; attempt < policy.MaxAttempts; attempt++ {
		if attempt > 0 {
			c.retryCounter("fetch", "timeout").Inc()
			span.Annotate(fmt.Sprintf("retry %d (cause: timeout)", attempt))
			if !c.backoff(c.peer.retryDelay(attempt - 1)) {
				span.Fail(ErrChannelClosed)
				return nil, ErrChannelClosed
			}
		}
		reply, err := c.fetchOnce(ctx, serviceID)
		if err == nil || !errors.Is(err, ErrTimeout) {
			span.Fail(err)
			return reply, err
		}
		lastErr = err
	}
	failure := fmt.Errorf("remote: fetch of service %d failed after %d attempts: %w",
		serviceID, policy.MaxAttempts, lastErr)
	span.Fail(failure)
	return nil, failure
}

func (c *Channel) fetchOnce(ctx context.Context, serviceID int64) (reply *wire.ServiceReply, err error) {
	name := c.remoteServiceName(serviceID)
	m := c.obsHub().Metrics
	start := time.Now()
	_, span := c.obsHub().Tracer.Start(ctx, "rpc.fetch")
	span.SetAttr("service", name)
	defer func() {
		m.Counter("alfredo_remote_fetches_total", "service", name).Inc()
		if err != nil {
			m.Counter("alfredo_remote_fetch_errors_total", "service", name).Inc()
		}
		m.Histogram("alfredo_remote_fetch_seconds", "service", name).ObserveSince(start)
		span.Fail(err)
		span.Finish()
	}()

	c.mu.Lock()
	c.nextID++
	id := c.nextID
	ch := make(chan fetchResult, 1)
	c.pendingFetch[id] = ch
	c.mu.Unlock()

	cleanup := func() {
		c.mu.Lock()
		delete(c.pendingFetch, id)
		c.mu.Unlock()
	}

	sc := span.Context()
	if err := c.send(&wire.FetchService{RequestID: id, ServiceID: serviceID,
		TraceID: sc.TraceID, SpanID: sc.SpanID}); err != nil {
		cleanup()
		return nil, err
	}

	timer := c.clock().NewTimer(c.peer.cfg.Timeout)
	defer timer.Stop()
	select {
	case res := <-ch:
		// A teardown-drained fetch carries the teardown error: it must
		// not be mistaken for the peer answering "no such service".
		if res.err != nil {
			return nil, res.err
		}
		if res.reply == nil || len(res.reply.Interfaces) == 0 {
			return nil, fmt.Errorf("%w: service %d", ErrNoSuchService, serviceID)
		}
		// Client-side parse cost proportional to the reply's wire size,
		// reported by the reader — the reply is not re-encoded here.
		c.peer.cfg.Device.ParseReply(res.size)
		return res.reply, nil
	case <-timer.C:
		cleanup()
		return nil, fmt.Errorf("%w: fetch of service %d after %v", ErrTimeout, serviceID, c.peer.cfg.Timeout)
	case <-c.closed:
		cleanup()
		return nil, ErrChannelClosed
	}
}

// Ping measures the application-level round-trip time, the analog of
// the ICMP baseline in Figures 5 and 6. Pings are side-effect free and
// always retried on timeout.
func (c *Channel) Ping() (time.Duration, error) {
	policy := c.peer.cfg.Retry
	var lastErr error
	for attempt := 0; attempt < policy.MaxAttempts; attempt++ {
		if attempt > 0 {
			c.retryCounter("ping", "timeout").Inc()
			if !c.backoff(c.peer.retryDelay(attempt - 1)) {
				return 0, ErrChannelClosed
			}
		}
		rtt, err := c.pingOnce()
		if err == nil || !errors.Is(err, ErrTimeout) {
			return rtt, err
		}
		lastErr = err
	}
	return 0, fmt.Errorf("remote: ping failed after %d attempts: %w", policy.MaxAttempts, lastErr)
}

func (c *Channel) pingOnce() (time.Duration, error) {
	c.mu.Lock()
	c.nextID++
	id := c.nextID
	ch := make(chan error, 1)
	c.pendingPings[id] = ch
	c.mu.Unlock()

	dropPending := func() {
		c.mu.Lock()
		delete(c.pendingPings, id)
		c.mu.Unlock()
	}

	start := c.clock().Now()
	if err := c.send(&wire.Ping{Seq: id}); err != nil {
		dropPending()
		return 0, err
	}
	timer := c.clock().NewTimer(c.peer.cfg.Timeout)
	defer timer.Stop()
	select {
	case err := <-ch:
		if err != nil {
			return 0, err
		}
		return c.clock().Since(start), nil
	case <-timer.C:
		dropPending()
		return 0, fmt.Errorf("%w: ping after %v", ErrTimeout, c.peer.cfg.Timeout)
	case <-c.closed:
		dropPending()
		return 0, ErrChannelClosed
	}
}

// SetRemoteSubscriptions tells the remote peer which event topics to
// forward to this side.
func (c *Channel) SetRemoteSubscriptions(patterns []string) error {
	for _, pat := range patterns {
		if err := event.ValidatePattern(pat); err != nil {
			return err
		}
	}
	return c.send(&wire.Subscribe{Patterns: patterns})
}

// Close tears the channel down with an orderly Bye.
func (c *Channel) Close() {
	c.teardown(nil, true)
}

func (c *Channel) teardown(cause error, sendBye bool) {
	c.once.Do(func() {
		if sendBye {
			_ = c.send(&wire.Bye{Reason: "close"})
		}
		c.mu.Lock()
		c.closeReason = cause
		pending := c.pendingCalls
		c.pendingCalls = map[int64]chan callResult{}
		fetches := c.pendingFetch
		c.pendingFetch = map[int64]chan fetchResult{}
		pings := c.pendingPings
		c.pendingPings = map[int64]chan error{}
		manifests := c.pendingManifests
		c.pendingManifests = map[int64]chan manifestResult{}
		c.pendingChunks = map[int64]chan *wire.ChunkData{}
		streams := c.streams
		c.streams = map[int64]*inStream{}
		outStreams := c.outStreams
		c.outStreams = map[int64]*StreamWriter{}
		proxies := c.proxies
		c.proxies = nil
		hasTok, tok := c.hasEvTok, c.evTok
		c.hasEvTok = false
		c.mu.Unlock()

		close(c.closed)
		// Wake bulk senders parked at the priority gate so they observe
		// the close instead of waiting for a high-priority sender that
		// will never come.
		c.gateMu.Lock()
		c.gateCond.Broadcast()
		c.gateMu.Unlock()
		for _, ch := range pending {
			ch <- callResult{err: ErrChannelClosed}
		}
		for _, ch := range fetches {
			ch <- fetchResult{err: ErrChannelClosed}
		}
		for _, ch := range pings {
			ch <- ErrChannelClosed
		}
		for _, ch := range manifests {
			ch <- manifestResult{err: ErrChannelClosed}
		}
		// Chunk streams need no drain: their collectors select on
		// c.closed and re-issue remaining hashes on a surviving link.
		for _, s := range streams {
			s.closeWith(ErrChannelClosed)
		}
		// Outbound writers fail with the teardown cause: blocked credit
		// waits unblock, and later writes error instead of feeding a
		// dead link.
		for _, w := range outStreams {
			w.fail(ErrChannelClosed)
		}
		if hasTok && c.peer.cfg.Events != nil {
			c.peer.cfg.Events.Unsubscribe(tok)
		}
		// Proxy bundles are not cached: they are uninstalled as soon as
		// the interaction terminates (paper §4.1).
		for _, b := range proxies {
			_ = b.Uninstall()
		}
		_ = c.conn.Close()
		c.peer.removeChannel(c)
		// Only channels that completed setup were counted opened; a
		// teardown racing an in-flight handshake (peer shutdown mid-
		// redial) must not drive the active gauge negative.
		if c.opened.Load() {
			c.peer.cfg.Obs.Metrics.Counter("alfredo_remote_channels_closed_total").Inc()
			c.peer.cfg.Obs.Metrics.Gauge("alfredo_remote_channels_active").Add(-1)
		}
	})
}

// readLoop is the single reader of the connection. Invocations are
// handed to the bounded dispatch pool so that a slow service method
// cannot stall lease updates or event delivery; a full dispatch queue
// blocks the reader, pushing backpressure onto the transport instead of
// growing goroutines without bound.
func (c *Channel) readLoop() {
	defer c.wg.Done()
	for {
		msg, size, err := wire.ReadMessageSize(c.conn)
		if err != nil {
			c.teardown(err, false)
			return
		}
		switch m := msg.(type) {
		case *wire.Lease:
			// Post-handshake full leases merge (they only occur as
			// refreshes; incremental updates carry removals).
			c.mu.Lock()
			for _, s := range m.Services {
				c.remoteSvcs[s.ID] = s
			}
			c.mu.Unlock()
			c.notifyServiceWatchers()
		case *wire.ServiceAdded:
			c.mu.Lock()
			c.remoteSvcs[m.Service.ID] = m.Service
			c.mu.Unlock()
			c.notifyServiceWatchers()
		case *wire.ServiceRemoved:
			c.mu.Lock()
			delete(c.remoteSvcs, m.ServiceID)
			c.mu.Unlock()
			c.notifyServiceWatchers()
		case *wire.FetchService:
			c.handleFetch(m)
		case *wire.ServiceReply:
			c.mu.Lock()
			ch, ok := c.pendingFetch[m.RequestID]
			delete(c.pendingFetch, m.RequestID)
			c.mu.Unlock()
			if ok {
				ch <- fetchResult{reply: m, size: size}
			}
		case *wire.FetchManifest:
			c.handleFetchManifest(m)
		case *wire.ManifestReply:
			c.mu.Lock()
			ch, ok := c.pendingManifests[m.RequestID]
			delete(c.pendingManifests, m.RequestID)
			c.mu.Unlock()
			if ok {
				ch <- manifestResult{reply: m}
			}
		case *wire.FetchChunks:
			c.handleFetchChunks(m)
		case *wire.ChunkData:
			c.mu.Lock()
			ch, ok := c.pendingChunks[m.RequestID]
			c.mu.Unlock()
			if ok {
				// Non-blocking: an over-full window (duplicate
				// retransmit deliveries) drops the frame here and the
				// collector's timeout path re-requests the hash.
				select {
				case ch <- m:
				default:
				}
			}
		case *wire.Invoke:
			c.dispatchInvoke(m, size)
		case *wire.Result:
			c.mu.Lock()
			ch, ok := c.pendingCalls[m.CallID]
			delete(c.pendingCalls, m.CallID)
			c.mu.Unlock()
			if ok {
				ch <- callResult{value: m.Value}
			}
		case *wire.ErrorReply:
			c.mu.Lock()
			ch, ok := c.pendingCalls[m.CallID]
			delete(c.pendingCalls, m.CallID)
			c.mu.Unlock()
			if ok {
				ch <- callResult{err: &RemoteError{Code: m.Code, Message: m.Message}}
			}
		case *wire.Event:
			c.handleRemoteEvent(m)
		case *wire.Subscribe:
			c.mu.Lock()
			c.remoteSubs = m.Patterns
			c.mu.Unlock()
		case *wire.StreamOpen:
			c.handleStreamOpen(m)
		case *wire.StreamData:
			c.handleStreamData(m)
		case *wire.StreamClose:
			c.handleStreamClose(m)
		case *wire.StreamCredit:
			c.handleStreamCredit(m)
		case *wire.MetricsReport:
			c.handleMetricsReport(m)
		case *wire.Ping:
			_ = c.send(&wire.Pong{Seq: m.Seq})
		case *wire.Pong:
			c.mu.Lock()
			ch, ok := c.pendingPings[m.Seq]
			delete(c.pendingPings, m.Seq)
			c.mu.Unlock()
			if ok {
				ch <- nil
			}
		case *wire.Bye:
			c.teardown(nil, false)
			return
		case *wire.Hello:
			c.teardown(fmt.Errorf("%w: unexpected HELLO mid-stream", ErrBadHandshake), false)
			return
		}
	}
}

func (c *Channel) notifyServiceWatchers() {
	c.mu.Lock()
	watchers := make([]func(), len(c.svcWatchers))
	copy(watchers, c.svcWatchers)
	c.mu.Unlock()
	for _, fn := range watchers {
		fn()
	}
}

func (c *Channel) handleFetch(m *wire.FetchService) {
	// Parent the serving span under the requester's, carried in the
	// frame; un-traced frames start a fresh trace.
	span := c.obsHub().Tracer.StartRemote(
		obs.SpanContext{TraceID: m.TraceID, SpanID: m.SpanID}, "rpc.serve.fetch")
	span.SetAttr("node", c.peer.ID())
	defer span.Finish()

	reply, ok := c.buildReply(m.ServiceID)
	if !ok {
		span.Fail(fmt.Errorf("service %d not exported", m.ServiceID))
		// An empty reply tells the requester "no such service". No
		// ErrorReply is sent: fetches are correlated by RequestID, and an
		// ErrorReply would carry a meaningless CallID instead.
		_ = c.send(&wire.ServiceReply{RequestID: m.RequestID})
		return
	}
	reply.RequestID = m.RequestID
	_ = c.send(reply)
}

// buildReply assembles the full service reply for an exported service:
// interface descriptors, lease info, the AlfredO service descriptor,
// injected types and any smart proxy reference. Both fetch paths (the
// legacy single frame and the chunked artifact) ship exactly this.
func (c *Channel) buildReply(serviceID int64) (*wire.ServiceReply, bool) {
	svc, ok := c.peer.lookupExported(serviceID, c.tenant)
	if !ok {
		return nil, false
	}
	reply := &wire.ServiceReply{
		Interfaces: []wire.InterfaceDesc{svc.Describe()},
	}
	if info, known := c.peer.exportedInfo(serviceID, c.tenant); known {
		reply.Info = info
	}
	if dp, ok := svc.(DescriptorProvider); ok {
		reply.Descriptor = dp.ServiceDescriptor()
	}
	if tp, ok := svc.(TypeProvider); ok {
		reply.Types = tp.InjectedTypes()
	}
	if sp, ok := svc.(SmartProxyProvider); ok {
		reply.Smart = sp.SmartProxy()
	}
	return reply, true
}

func (c *Channel) handleInvoke(m *wire.Invoke, size int) {
	// Parent the serving span under the caller's span carried in the
	// frame: this is the server half of the cross-peer trace.
	so := c.serveObs(m.ServiceID)
	start := time.Now()
	span := c.obsHub().Tracer.StartRemote(
		obs.SpanContext{TraceID: m.TraceID, SpanID: m.SpanID}, "rpc.serve")
	span.SetAttr("method", m.Method)
	span.SetAttr("node", c.peer.ID())
	var failure error
	defer func() {
		so.calls.Inc()
		if failure != nil {
			so.errors.Inc()
		}
		so.lat.ObserveSince(start)
		span.Fail(failure)
		span.Finish()
	}()

	// Admission gate: reject before resolving or running any service
	// code, so a rejected call is always safe to retry. The release is
	// deferred — an admitted call counts in flight until its reply (or
	// error) is on the wire.
	if adm := c.peer.admission; adm != nil {
		release, err := adm.Admit(c.admissionTenant())
		if err != nil {
			failure = err
			_ = c.send(&wire.ErrorReply{CallID: m.CallID, Code: CodeOverloaded,
				Message: err.Error()})
			return
		}
		defer release()
	}

	svc, ok := c.peer.lookupExported(m.ServiceID, c.tenant)
	if !ok {
		failure = fmt.Errorf("service %d not exported", m.ServiceID)
		_ = c.send(&wire.ErrorReply{CallID: m.CallID, Code: CodeNoSuchService,
			Message: fmt.Sprintf("service %d not exported", m.ServiceID)})
		return
	}

	// Server-side dispatch cost on the simulated device; the inbound
	// frame size (reported by the reader) approximates decode+encode
	// work without re-encoding the message.
	c.peer.cfg.Device.ServerDispatch(size)

	value, err := svc.Invoke(m.Method, m.Args)
	if err != nil {
		failure = err
		code := CodeInvokeFailed
		switch {
		case errors.Is(err, ErrNoSuchMethod):
			code = CodeNoSuchMethod
		case errors.Is(err, ErrBadArgs):
			code = CodeBadArgs
		}
		_ = c.send(&wire.ErrorReply{CallID: m.CallID, Code: code, Message: err.Error()})
		return
	}
	if err := c.send(&wire.Result{CallID: m.CallID, Value: value}); err != nil {
		failure = err
		// The result could not be encoded or the link failed; report
		// the former to the caller if the channel is still up.
		_ = c.send(&wire.ErrorReply{CallID: m.CallID, Code: CodeInvokeFailed,
			Message: fmt.Sprintf("result not encodable: %v", err)})
	}
}

func (c *Channel) handleRemoteEvent(m *wire.Event) {
	admin := c.peer.cfg.Events
	if admin == nil {
		return
	}
	props := make(map[string]any, len(m.Props)+1)
	for k, v := range m.Props {
		props[k] = v
	}
	props[PropOriginPeer] = c.RemoteID()
	_ = admin.Post(event.Event{Topic: m.Topic, Properties: props})
}

// forwardEvent ships locally published events to the remote side when
// they match its subscription patterns. Events that originated at that
// peer are not echoed back.
func (c *Channel) forwardEvent(ev event.Event) {
	c.mu.Lock()
	subs := c.remoteSubs
	remoteID := c.remoteID
	c.mu.Unlock()
	if len(subs) == 0 {
		return
	}
	if origin, ok := ev.Properties[PropOriginPeer]; ok && origin == remoteID {
		return
	}
	for _, pat := range subs {
		if event.TopicMatches(pat, ev.Topic) {
			_ = c.send(&wire.Event{Topic: ev.Topic, Props: sanitizeProps(ev.Properties)})
			return
		}
	}
}
