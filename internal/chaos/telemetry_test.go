package chaos

import (
	"net"
	"sync"
	"testing"
	"time"

	"github.com/alfredo-mw/alfredo/internal/apps/shop"
	"github.com/alfredo-mw/alfredo/internal/core"
	"github.com/alfredo-mw/alfredo/internal/device"
	"github.com/alfredo-mw/alfredo/internal/netsim"
	"github.com/alfredo-mw/alfredo/internal/obs"
	"github.com/alfredo-mw/alfredo/internal/remote"
	"github.com/alfredo-mw/alfredo/internal/sim/leak"
)

// TestTelemetryMatchesFaultSchedule scripts a fault sequence against a
// resilient session whose phone reports into a private hub, then
// asserts the retry, reconnect and degrade/recover counters agree with
// what the schedule provoked. This is the end-to-end check that the
// failure-path instrumentation counts real events, not approximations.
func TestTelemetryMatchesFaultSchedule(t *testing.T) {
	leak.CheckGoroutines(t)
	hub := obs.NewHub()     // phone-side: the counters under test
	hostHub := obs.NewHub() // host-side: server counters, kept separate

	retry := remote.RetryPolicy{
		MaxAttempts:     4,
		BaseDelay:       100 * time.Millisecond,
		ReconnectBudget: 10 * time.Second,
	}

	host, err := core.NewNode(core.NodeConfig{Name: "tel-host", Profile: device.Notebook(), Obs: hostHub})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(host.Close)
	if err := host.RegisterApp(shop.New().App()); err != nil {
		t.Fatal(err)
	}
	fabric := netsim.NewFabric()
	l, err := fabric.Listen("tel-host")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = l.Close() })
	host.Serve(l)

	phone, err := core.NewNode(core.NodeConfig{
		Name:          "tel-phone",
		Profile:       device.Nokia9300i(),
		InvokeTimeout: 150 * time.Millisecond,
		Retry:         retry,
		Obs:           hub,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(phone.Close)

	var mu sync.Mutex
	var last *netsim.Conn
	dial := func() (net.Conn, error) {
		c, err := fabric.Dial("tel-host", netsim.WLAN11b)
		if err != nil {
			return nil, err
		}
		mu.Lock()
		last = c.(*netsim.Conn)
		mu.Unlock()
		return c, nil
	}
	session, err := phone.ConnectResilient(dial)
	if err != nil {
		t.Fatal(err)
	}
	app, err := session.Acquire(shop.InterfaceName, core.AcquireOptions{SkipUI: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := app.Invoke("Categories"); err != nil {
		t.Fatal(err)
	}

	counter := func(name string, labels ...string) int64 {
		return hub.Metrics.Counter(name, labels...).Value()
	}

	// Fault 1: partition long enough to time out the in-flight attempt;
	// the idempotent retry lands after the stall lifts.
	info, ok := session.Channel().FindRemoteService(shop.InterfaceName)
	if !ok {
		t.Fatal("shop service not offered")
	}
	mu.Lock()
	last.Partition(200 * time.Millisecond)
	mu.Unlock()
	if _, err := session.Channel().InvokeIdempotent(info.ID, "Categories", nil); err != nil {
		t.Fatalf("invoke across partition: %v", err)
	}
	retries := counter("alfredo_remote_retries_total", "op", "invoke", "cause", "timeout")
	if retries < 1 || retries > int64(retry.MaxAttempts-1) {
		t.Fatalf("retries after partition = %d, want 1..%d", retries, retry.MaxAttempts-1)
	}

	// Fault 2: hard drop — the session must degrade, the link must
	// redial, and the next invoke completes only after recovery.
	mu.Lock()
	last.Drop()
	mu.Unlock()
	waitFor(t, 5*time.Second, "degrade after drop", app.Degraded)
	if _, err := app.Invoke("Categories"); err != nil {
		t.Fatalf("invoke after drop: %v", err)
	}

	if got := counter("alfredo_core_degrades_total"); got != 1 {
		t.Errorf("degrades_total = %d, want 1", got)
	}
	if got := counter("alfredo_core_recoveries_total"); got != 1 {
		t.Errorf("recoveries_total = %d, want 1", got)
	}
	if got := counter("alfredo_remote_link_transitions_total", "state", "reconnecting"); got != 1 {
		t.Errorf("transitions{reconnecting} = %d, want 1", got)
	}
	// The initial DialLink is not a transition; only the reconnect is.
	if got := counter("alfredo_remote_link_transitions_total", "state", "up"); got != 1 {
		t.Errorf("transitions{up} = %d, want 1", got)
	}
	if got := counter("alfredo_remote_redials_total"); got < 1 {
		t.Errorf("redials_total = %d, want >= 1", got)
	}
	if got := hub.Metrics.Histogram("alfredo_remote_reconnect_seconds").Count(); got != 1 {
		t.Errorf("reconnect_seconds count = %d, want 1", got)
	}

	// Session lifecycle must balance once the session closes.
	if got := counter("alfredo_core_sessions_opened_total"); got != 1 {
		t.Errorf("sessions_opened_total = %d, want 1", got)
	}
	session.Close()
	if got := counter("alfredo_core_sessions_closed_total"); got != 1 {
		t.Errorf("sessions_closed_total = %d, want 1", got)
	}
	if got := hub.Metrics.Gauge("alfredo_core_sessions_active").Value(); got != 0 {
		t.Errorf("sessions_active = %d, want 0", got)
	}

	// The host saw the served invokes on its own hub, not the phone's.
	served := hostHub.Metrics.Counter("alfredo_remote_served_invokes_total",
		"service", shop.InterfaceName).Value()
	if served < 2 {
		t.Errorf("host served_invokes_total = %d, want >= 2", served)
	}
	if phoneServed := counter("alfredo_remote_served_invokes_total", "service", shop.InterfaceName); phoneServed != 0 {
		t.Errorf("phone served_invokes_total = %d, want 0", phoneServed)
	}
}
