// Package chaos holds the end-to-end fault-injection test suite: real
// application sessions (MouseController, AlfredOShop) driven through
// scripted netsim fault schedules — disconnects, partitions, loss,
// corruption — asserting that the remote and core layers degrade and
// recover the way the paper's lease model (§3.2) promises. The package
// contains only tests; there is no library code here.
package chaos
