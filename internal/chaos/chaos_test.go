package chaos

import (
	"errors"
	"net"
	"runtime"
	"sync"
	"testing"
	"time"

	"github.com/alfredo-mw/alfredo/internal/apps/mousecontroller"
	"github.com/alfredo-mw/alfredo/internal/apps/shop"
	"github.com/alfredo-mw/alfredo/internal/core"
	"github.com/alfredo-mw/alfredo/internal/device"
	"github.com/alfredo-mw/alfredo/internal/netsim"
	"github.com/alfredo-mw/alfredo/internal/remote"
	"github.com/alfredo-mw/alfredo/internal/render"
	"github.com/alfredo-mw/alfredo/internal/sim/leak"
	"github.com/alfredo-mw/alfredo/internal/ui"
)

// rig is a host + phone pair wired over the netsim fabric, with every
// client-side connection recorded so tests can inject faults into it.
type rig struct {
	fabric *netsim.Fabric
	host   *core.Node
	phone  *core.Node
	mouse  *mousecontroller.Service

	mu    sync.Mutex
	conns []*netsim.Conn
	link  netsim.LinkProfile
}

const hostAddr = "chaos-host"

func newRig(t *testing.T, link netsim.LinkProfile, timeout time.Duration, retry remote.RetryPolicy) *rig {
	t.Helper()
	// Registered before the node cleanups so it runs after them (LIFO):
	// once both nodes close, every channel, link and reactor goroutine
	// the rig spawned must be gone.
	leak.CheckGoroutines(t)
	host, err := core.NewNode(core.NodeConfig{Name: hostAddr, Profile: device.Notebook()})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(host.Close)
	mouse := mousecontroller.New(1280, 800)
	if err := host.RegisterApp(mouse.App()); err != nil {
		t.Fatal(err)
	}
	if err := host.RegisterApp(shop.New().App()); err != nil {
		t.Fatal(err)
	}

	fabric := netsim.NewFabric()
	l, err := fabric.Listen(hostAddr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = l.Close() })
	host.Serve(l)

	phone, err := core.NewNode(core.NodeConfig{
		Name:          "chaos-phone",
		Profile:       device.Nokia9300i(),
		InvokeTimeout: timeout,
		Retry:         retry,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(phone.Close)
	return &rig{fabric: fabric, host: host, phone: phone, mouse: mouse, link: link}
}

// dial is the Dialer handed to ConnectResilient; it records every
// connection it makes.
func (r *rig) dial() (net.Conn, error) {
	c, err := r.fabric.Dial(hostAddr, r.link)
	if err != nil {
		return nil, err
	}
	r.mu.Lock()
	r.conns = append(r.conns, c.(*netsim.Conn))
	r.mu.Unlock()
	return c, nil
}

// lastConn returns the most recently dialed connection.
func (r *rig) lastConn() *netsim.Conn {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.conns[len(r.conns)-1]
}

func waitFor(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestShopSurvivesMidSessionDisconnect is the headline recovery arc: a
// hard disconnect lands mid-interaction, the UI degrades (controls
// disabled, not wedged), the link redials, the session re-establishes
// its lease with a fresh proxy bundle, the controls come back, and a
// pending invocation completes — all inside the reconnect budget.
func TestShopSurvivesMidSessionDisconnect(t *testing.T) {
	retry := remote.RetryPolicy{
		MaxAttempts:     3,
		BaseDelay:       20 * time.Millisecond,
		ReconnectBudget: 5 * time.Second,
	}
	r := newRig(t, netsim.WLAN11b, 2*time.Second, retry)

	session, err := r.phone.ConnectResilient(r.dial)
	if err != nil {
		t.Fatal(err)
	}
	defer session.Close()

	app, err := session.Acquire(shop.InterfaceName, core.AcquireOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// Normal interaction before the fault.
	if err := app.View.Inject(ui.Event{Control: "categories", Kind: ui.EventSelect, Value: "tables"}); err != nil {
		t.Fatal(err)
	}

	// Blackout the host briefly so the degraded window is observable,
	// then cut the radio link mid-session.
	r.fabric.Block(hostAddr, 250*time.Millisecond)
	r.lastConn().Drop()

	waitFor(t, 2*time.Second, "application to degrade", app.Degraded)
	// While degraded, user input bounces off the disabled controls.
	err = app.View.Inject(ui.Event{Control: "categories", Kind: ui.EventSelect, Value: "chairs"})
	if !errors.Is(err, render.ErrControlDisabled) {
		t.Errorf("Inject while degraded = %v, want ErrControlDisabled", err)
	}

	// An invocation issued during the outage blocks and then succeeds
	// once the lease is re-established — within the backoff budget.
	start := time.Now()
	cats, err := app.Invoke("Categories")
	if err != nil {
		t.Fatalf("Invoke across disconnect: %v", err)
	}
	if d := time.Since(start); d > retry.ReconnectBudget {
		t.Errorf("recovery took %v, budget %v", d, retry.ReconnectBudget)
	}
	if list, ok := cats.([]any); !ok || len(list) == 0 {
		t.Errorf("Categories after recovery = %#v", cats)
	}

	waitFor(t, 2*time.Second, "application to recover", func() bool { return !app.Degraded() })
	// Controls are live again and the interaction works end to end.
	if err := app.View.Inject(ui.Event{Control: "categories", Kind: ui.EventSelect, Value: "tables"}); err != nil {
		t.Fatalf("Inject after recovery: %v", err)
	}
	items, _ := app.View.Property("products", "items")
	if list, ok := items.([]any); !ok || len(list) != 2 {
		t.Errorf("tables after recovery = %v (ctl err %v)", items, app.Controller.LastError())
	}
	// The lease was re-exchanged on the new channel.
	if len(session.Services()) == 0 {
		t.Error("lease empty after recovery")
	}
}

// TestPermanentPartitionDegradesWithTypedError keeps the host
// unreachable past the reconnect budget: the link must go terminally
// down, invocations must fail fast with ErrDegraded (not hang), and the
// UI must stay disabled.
func TestPermanentPartitionDegradesWithTypedError(t *testing.T) {
	retry := remote.RetryPolicy{
		MaxAttempts:     2,
		BaseDelay:       20 * time.Millisecond,
		ReconnectBudget: 300 * time.Millisecond,
	}
	r := newRig(t, netsim.WLAN11b, time.Second, retry)

	session, err := r.phone.ConnectResilient(r.dial)
	if err != nil {
		t.Fatal(err)
	}
	defer session.Close()

	app, err := session.Acquire(shop.InterfaceName, core.AcquireOptions{})
	if err != nil {
		t.Fatal(err)
	}

	// Permanent partition: every redial is refused.
	r.fabric.Block(hostAddr, time.Hour)
	r.lastConn().Drop()

	waitFor(t, 5*time.Second, "link to go down", func() bool {
		return session.Link().State() == remote.LinkDown
	})

	start := time.Now()
	if _, err := app.Invoke("Categories"); !errors.Is(err, core.ErrDegraded) {
		t.Errorf("Invoke on downed link = %v, want ErrDegraded", err)
	}
	if d := time.Since(start); d > 2*time.Second {
		t.Errorf("degraded Invoke took %v, want fast typed failure", d)
	}
	if err := app.View.Inject(ui.Event{Control: "categories", Kind: ui.EventSelect, Value: "tables"}); !errors.Is(err, render.ErrControlDisabled) {
		t.Errorf("Inject on downed link = %v, want ErrControlDisabled", err)
	}
	if !app.Degraded() {
		t.Error("application not degraded with link down")
	}
}

// TestMouseControllerUnderFaultSchedule runs a MouseController session
// through a scripted schedule — asymmetric loss, a partition, byte
// corruption, then a hard drop — while the client keeps issuing
// idempotent cursor moves. Losses desync the stream and corruption
// poisons frames; the resilient link keeps tearing down and redialing,
// and the at-least-once invocation layer must keep making progress.
func TestMouseControllerUnderFaultSchedule(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second fault schedule")
	}
	retry := remote.RetryPolicy{
		MaxAttempts:     4,
		BaseDelay:       25 * time.Millisecond,
		ReconnectBudget: 10 * time.Second,
	}
	r := newRig(t, netsim.WLAN11b, 400*time.Millisecond, retry)

	session, err := r.phone.ConnectResilient(r.dial)
	if err != nil {
		t.Fatal(err)
	}
	defer session.Close()
	x0, _ := r.mouse.Desktop().Position()

	stop := netsim.Schedule{
		{At: 50 * time.Millisecond, Kind: netsim.FaultLoss, In: -1, Out: 0.05},
		{At: 300 * time.Millisecond, Kind: netsim.FaultStall, For: 200 * time.Millisecond},
		{At: 700 * time.Millisecond, Kind: netsim.FaultCorrupt, Prob: 0.02},
		{At: 1200 * time.Millisecond, Kind: netsim.FaultDrop},
	}.Run(r.lastConn())
	defer stop()

	successes := 0
	deadline := time.Now().Add(8 * time.Second)
	for i := 0; i < 40 && time.Now().Before(deadline); i++ {
		ch := session.Channel()
		info, ok := ch.FindRemoteService(mousecontroller.InterfaceName)
		if !ok {
			time.Sleep(20 * time.Millisecond)
			continue
		}
		if _, err := ch.InvokeIdempotent(info.ID, "MoveBy", []any{int64(1), int64(0)}); err == nil {
			successes++
		}
		time.Sleep(20 * time.Millisecond)
	}
	if successes < 10 {
		t.Fatalf("only %d/40 idempotent moves landed under the fault schedule", successes)
	}
	// At-least-once: every acknowledged move executed one or more times.
	x1, _ := r.mouse.Desktop().Position()
	if x1-x0 < successes {
		t.Errorf("cursor advanced %d for %d acknowledged moves", x1-x0, successes)
	}
	// The link healed behind the schedule (the final drop redials).
	if _, err := session.Link().Await(5 * time.Second); err != nil {
		t.Errorf("link did not recover after the schedule: %v", err)
	}
}

// failingConn fails every write after the first n, then crash-drops the
// transport, modeling a disconnect at a precise point of the protocol.
type failingConn struct {
	net.Conn
	mu        sync.Mutex
	remaining int
}

var errInjectedWrite = errors.New("chaos: injected write failure")

func (f *failingConn) Write(b []byte) (int, error) {
	f.mu.Lock()
	if f.remaining <= 0 {
		f.mu.Unlock()
		f.Conn.(*netsim.Conn).Drop()
		return 0, errInjectedWrite
	}
	f.remaining--
	f.mu.Unlock()
	return f.Conn.Write(b)
}

// TestMidAcquireDisconnectDoesNotLeak disconnects at every write offset
// of the acquisition protocol in turn and asserts the phone returns to
// its baseline afterwards: no leaked proxy bundles (module footprint),
// no leaked service registrations, no leaked goroutines.
func TestMidAcquireDisconnectDoesNotLeak(t *testing.T) {
	if testing.Short() {
		t.Skip("sweeps many disconnect offsets")
	}
	r := newRig(t, netsim.Loopback, 500*time.Millisecond, remote.RetryPolicy{MaxAttempts: 1})

	baseFootprint := r.phone.Footprint()
	baseServices := len(r.phone.Framework().Registry().FindAll("", nil))
	runtime.GC()
	baseGoroutines := runtime.NumGoroutine()

	for n := 0; n < 10; n++ {
		raw, err := r.fabric.Dial(hostAddr, netsim.Loopback)
		if err != nil {
			t.Fatalf("offset %d: dial: %v", n, err)
		}
		conn := &failingConn{Conn: raw, remaining: n}
		session, err := r.phone.Connect(conn)
		if err != nil {
			continue // handshake itself hit the fault; nothing to clean
		}
		_, aerr := session.Acquire(shop.InterfaceName, core.AcquireOptions{})
		session.Close()
		if aerr == nil && n < 3 {
			t.Errorf("offset %d: acquisition survived a disconnect that early", n)
		}

		if fp := r.phone.Footprint(); fp != baseFootprint {
			t.Errorf("offset %d: footprint %d bytes, baseline %d — proxy bundle leaked", n, fp, baseFootprint)
		}
		if svc := len(r.phone.Framework().Registry().FindAll("", nil)); svc != baseServices {
			t.Errorf("offset %d: %d registered services, baseline %d", n, svc, baseServices)
		}
	}

	// Goroutines wind down asynchronously after channel teardown.
	if g, ok := leak.Settle(baseGoroutines+leak.Slack, 5*time.Second); !ok {
		t.Errorf("goroutines %d after sweep, baseline %d — goroutine leak\n%s",
			g, baseGoroutines, leak.Stacks())
	}
}
