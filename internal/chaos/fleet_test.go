package chaos

import (
	"net"
	"sync"
	"testing"
	"time"

	"github.com/alfredo-mw/alfredo/internal/apps/shop"
	"github.com/alfredo-mw/alfredo/internal/core"
	"github.com/alfredo-mw/alfredo/internal/device"
	"github.com/alfredo-mw/alfredo/internal/netsim"
	"github.com/alfredo-mw/alfredo/internal/obs"
	"github.com/alfredo-mw/alfredo/internal/remote"
	"github.com/alfredo-mw/alfredo/internal/sim/leak"
)

// TestFleetShippingUnderFaults runs the metric-shipping plane through a
// scripted fault sequence: a phone ships its registry to a host-side
// aggregator while the link is partitioned, dropped and redialed. The
// aggregator's view of the phone must never exceed the phone's own
// registry (no double-counting across retransmits or reconnect
// resyncs), and once the link heals it must converge to exact equality.
func TestFleetShippingUnderFaults(t *testing.T) {
	leak.CheckGoroutines(t)
	hub := obs.NewHub()
	agg := obs.NewAggregator()

	host, err := core.NewNode(core.NodeConfig{
		Name: "fleet-host", Profile: device.Notebook(),
		Obs: obs.NewHub(), Aggregator: agg,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(host.Close)
	if err := host.RegisterApp(shop.New().App()); err != nil {
		t.Fatal(err)
	}
	fabric := netsim.NewFabric()
	l, err := fabric.Listen("fleet-host")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = l.Close() })
	host.Serve(l)

	phone, err := core.NewNode(core.NodeConfig{
		Name:          "fleet-phone",
		Profile:       device.Nokia9300i(),
		InvokeTimeout: 150 * time.Millisecond,
		Retry: remote.RetryPolicy{
			MaxAttempts: 4, BaseDelay: 100 * time.Millisecond,
			ReconnectBudget: 10 * time.Second,
		},
		Obs:             hub,
		MetricsInterval: 20 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(phone.Close)

	var mu sync.Mutex
	var last *netsim.Conn
	session, err := phone.ConnectResilient(func() (net.Conn, error) {
		c, err := fabric.Dial("fleet-host", netsim.WLAN11b)
		if err != nil {
			return nil, err
		}
		mu.Lock()
		last = c.(*netsim.Conn)
		mu.Unlock()
		return c, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	defer session.Close()
	app, err := session.Acquire(shop.InterfaceName, core.AcquireOptions{SkipUI: true})
	if err != nil {
		t.Fatal(err)
	}

	const fam = "alfredo_remote_invokes_total"
	conserved := func() bool {
		shipped, own := agg.NodeTotal("fleet-phone", fam), hub.Metrics.Total(fam)
		if shipped > own {
			t.Fatalf("aggregator has %s = %d, phone registry only %d", fam, shipped, own)
		}
		return shipped == own
	}

	if _, err := app.Invoke("Categories"); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 5*time.Second, "first report ingested", conserved)
	if got := agg.NodeTotal("fleet-phone", fam); got == 0 {
		t.Fatal("aggregator converged at zero invokes; shipping is not running")
	}

	// Partition: reports written into the stall are delayed or lost;
	// the conservation bound must hold throughout and equality must
	// return once the partition lifts.
	mu.Lock()
	last.Partition(200 * time.Millisecond)
	mu.Unlock()
	info, ok := session.Channel().FindRemoteService(shop.InterfaceName)
	if !ok {
		t.Fatal("shop service not offered")
	}
	if _, err := session.Channel().InvokeIdempotent(info.ID, "Categories", nil); err != nil {
		t.Fatalf("invoke across partition: %v", err)
	}
	conserved()
	waitFor(t, 5*time.Second, "reconverge after partition", conserved)

	// Hard drop: the reconnect builds a fresh channel whose first
	// report is a full resync — the aggregator heals wholesale, and the
	// invokes made after recovery show up too.
	mu.Lock()
	last.Drop()
	mu.Unlock()
	waitFor(t, 5*time.Second, "degrade after drop", app.Degraded)
	if _, err := app.Invoke("Categories"); err != nil {
		t.Fatalf("invoke after drop: %v", err)
	}
	conserved()
	waitFor(t, 5*time.Second, "reconverge after reconnect", conserved)

	if nodes := agg.Nodes(); len(nodes) != 1 || nodes[0].Node != "fleet-phone" {
		t.Fatalf("aggregator nodes = %+v, want exactly fleet-phone", nodes)
	}
}
