package datasync

import (
	"errors"
	"fmt"
	"testing"
	"testing/quick"
	"time"

	"github.com/alfredo-mw/alfredo/internal/event"
	"github.com/alfredo-mw/alfredo/internal/module"
	"github.com/alfredo-mw/alfredo/internal/netsim"
	"github.com/alfredo-mw/alfredo/internal/remote"
	"github.com/alfredo-mw/alfredo/internal/service"
)

func TestStoreBasics(t *testing.T) {
	s := NewStore("catalog")
	if s.Name() != "catalog" {
		t.Errorf("name = %s", s.Name())
	}
	v1, err := s.Put("a", int64(1))
	if err != nil {
		t.Fatal(err)
	}
	v2, _ := s.Put("b", "two")
	if v2 <= v1 {
		t.Errorf("versions not increasing: %d, %d", v1, v2)
	}
	if got, ok := s.Get("a"); !ok || got != int64(1) {
		t.Errorf("Get(a) = %v, %v", got, ok)
	}
	v3 := s.Delete("a")
	if _, ok := s.Get("a"); ok {
		t.Error("a survived delete")
	}
	if keys := s.Keys(); len(keys) != 1 || keys[0] != "b" {
		t.Errorf("keys = %v", keys)
	}
	if s.Version() != v3 {
		t.Errorf("version = %d, want %d", s.Version(), v3)
	}
	// Non-normalizable values are rejected at the boundary.
	if _, err := s.Put("bad", make(chan int)); err == nil {
		t.Error("channel value accepted")
	}
	// Int widening happens on Put.
	_, _ = s.Put("n", 7)
	if got, _ := s.Get("n"); got != int64(7) {
		t.Errorf("widened value = %T %v", got, got)
	}
}

func TestChangeLog(t *testing.T) {
	s := NewStore("log")
	_, _ = s.Put("a", int64(1))
	_, _ = s.Put("b", int64(2))
	s.Delete("a")

	changes, ok := s.ChangesSince(0)
	if !ok || len(changes) != 3 {
		t.Fatalf("changes = %v, %v", changes, ok)
	}
	changes, ok = s.ChangesSince(2)
	if !ok || len(changes) != 1 || !changes[0].deleted {
		t.Errorf("tail changes = %v", changes)
	}
	changes, ok = s.ChangesSince(99)
	if !ok || len(changes) != 0 {
		t.Errorf("future changes = %v, %v", changes, ok)
	}
}

func TestChangeLogTruncation(t *testing.T) {
	s := NewStore("trunc")
	for i := 0; i < changeLogCap+50; i++ {
		_, _ = s.Put(fmt.Sprintf("k%d", i%10), int64(i))
	}
	if _, ok := s.ChangesSince(0); ok {
		t.Error("truncated log should demand resync from version 0")
	}
	if _, ok := s.ChangesSince(s.Version() - 5); !ok {
		t.Error("recent versions should still be served")
	}
}

// syncNodes wires a master and a client over the remote layer and
// returns the replica-side invoker and both event admins.
type syncEnv struct {
	store       *Store
	masterAdmin *event.Admin
	clientAdmin *event.Admin
	proxy       *remote.DynamicService
	channel     *remote.Channel
}

func newSyncEnv(t *testing.T) *syncEnv {
	t.Helper()
	store := NewStore("catalog")
	_, _ = store.Put("greeting", "hello")

	masterFW := module.NewFramework(module.Config{Name: "master"})
	masterAdmin := event.NewAdmin(0)
	masterPeer, err := remote.NewPeer(remote.Config{Framework: masterFW, Events: masterAdmin})
	if err != nil {
		t.Fatal(err)
	}
	table, iface := Export(store, masterAdmin)
	if _, err := masterFW.Registry().Register([]string{iface}, table,
		service.Properties{remote.PropExported: true}, "test"); err != nil {
		t.Fatal(err)
	}

	clientFW := module.NewFramework(module.Config{Name: "client"})
	clientAdmin := event.NewAdmin(0)
	clientPeer, err := remote.NewPeer(remote.Config{Framework: clientFW, Events: clientAdmin})
	if err != nil {
		t.Fatal(err)
	}

	fabric := netsim.NewFabric()
	l, err := fabric.Listen("master")
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = masterPeer.Serve(l) }()
	conn, err := fabric.Dial("master", netsim.Loopback)
	if err != nil {
		t.Fatal(err)
	}
	ch, err := clientPeer.Connect(conn)
	if err != nil {
		t.Fatal(err)
	}
	if err := ch.SetRemoteSubscriptions([]string{ChangeTopic("catalog")}); err != nil {
		t.Fatal(err)
	}
	time.Sleep(20 * time.Millisecond)

	info, ok := ch.FindRemoteService(iface)
	if !ok {
		t.Fatal("store not leased")
	}
	reply, err := ch.Fetch(info.ID)
	if err != nil {
		t.Fatal(err)
	}
	_, proxy, err := ch.InstallProxy(reply)
	if err != nil {
		t.Fatal(err)
	}

	t.Cleanup(func() {
		ch.Close()
		clientPeer.Close()
		masterPeer.Close()
		clientAdmin.Close()
		masterAdmin.Close()
		_ = clientFW.Shutdown()
		_ = masterFW.Shutdown()
		_ = l.Close()
	})
	return &syncEnv{
		store: store, masterAdmin: masterAdmin, clientAdmin: clientAdmin,
		proxy: proxy, channel: ch,
	}
}

func TestReplicaInitialSync(t *testing.T) {
	env := newSyncEnv(t)
	r, err := NewReplica("catalog", env.proxy, env.clientAdmin, ReplicaOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if got, ok := r.Get("greeting"); !ok || got != "hello" {
		t.Errorf("initial state = %v, %v", got, ok)
	}
	if r.Version() != env.store.Version() {
		t.Errorf("version = %d, want %d", r.Version(), env.store.Version())
	}
}

func TestReplicaFollowsMasterViaEvents(t *testing.T) {
	env := newSyncEnv(t)
	r, err := NewReplica("catalog", env.proxy, env.clientAdmin, ReplicaOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	// A master-side write propagates via the forwarded change event.
	if _, err := env.store.Put("price", int64(199)); err != nil {
		t.Fatal(err)
	}
	_ = env.masterAdmin.Post(event.Event{
		Topic:      ChangeTopic("catalog"),
		Properties: map[string]any{"version": env.store.Version()},
	})

	deadline := time.Now().Add(2 * time.Second)
	for {
		if v, ok := r.Get("price"); ok && v == int64(199) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("replica never saw the write; version %d vs %d", r.Version(), env.store.Version())
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestReplicaWriteThrough(t *testing.T) {
	env := newSyncEnv(t)
	r, err := NewReplica("catalog", env.proxy, env.clientAdmin, ReplicaOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	if err := r.Put("cart", []any{"Malm"}); err != nil {
		t.Fatal(err)
	}
	// Master sees the write...
	if got, ok := env.store.Get("cart"); !ok {
		t.Errorf("master missing write: %v", got)
	}
	// ...and the replica applied it locally without waiting.
	if got, ok := r.Get("cart"); !ok {
		t.Errorf("replica missing own write: %v", got)
	}

	if err := r.Delete("cart"); err != nil {
		t.Fatal(err)
	}
	if _, ok := env.store.Get("cart"); ok {
		t.Error("master still has deleted key")
	}
	if _, ok := r.Get("cart"); ok {
		t.Error("replica still has deleted key")
	}
}

func TestReplicaPolling(t *testing.T) {
	env := newSyncEnv(t)
	// No event admin: rely purely on polling.
	r, err := NewReplica("catalog", env.proxy, nil, ReplicaOptions{PollInterval: 15 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	_, _ = env.store.Put("polled", true)
	deadline := time.Now().Add(2 * time.Second)
	for {
		if v, ok := r.Get("polled"); ok && v == true {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("polling replica never caught up")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestReplicaResyncAfterTruncation(t *testing.T) {
	env := newSyncEnv(t)
	r, err := NewReplica("catalog", env.proxy, nil, ReplicaOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	// Overflow the change log so the replica's version falls off.
	for i := 0; i < changeLogCap+10; i++ {
		_, _ = env.store.Put(fmt.Sprintf("k%d", i%7), int64(i))
	}
	if err := r.Sync(); err != nil {
		t.Fatal(err)
	}
	if r.Version() != env.store.Version() {
		t.Errorf("version after resync = %d, want %d", r.Version(), env.store.Version())
	}
	want, _ := env.store.Get("k3")
	if got, _ := r.Get("k3"); got != want {
		t.Errorf("k3 = %v, want %v", got, want)
	}
}

func TestReplicaClose(t *testing.T) {
	env := newSyncEnv(t)
	r, err := NewReplica("catalog", env.proxy, env.clientAdmin, ReplicaOptions{PollInterval: 10 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	r.Close()
	r.Close() // idempotent
	if err := r.Put("x", 1); !errors.Is(err, ErrReplicaClosed) {
		t.Errorf("Put after close = %v", err)
	}
	if err := r.Sync(); !errors.Is(err, ErrReplicaClosed) {
		t.Errorf("Sync after close = %v", err)
	}
}

// TestPropertyStoreReplayEquivalence: applying any sequence of puts and
// deletes, a replica synced from version 0 via the change log equals
// the master state.
func TestPropertyStoreReplayEquivalence(t *testing.T) {
	prop := func(ops []uint8) bool {
		if len(ops) > 64 {
			ops = ops[:64]
		}
		s := NewStore("p")
		for i, op := range ops {
			key := fmt.Sprintf("k%d", op%8)
			if op%5 == 0 {
				s.Delete(key)
			} else {
				_, _ = s.Put(key, int64(i))
			}
		}
		changes, ok := s.ChangesSince(0)
		if !ok {
			return true // truncation not exercised at this size
		}
		rebuilt := make(map[string]any)
		for _, c := range changes {
			if c.deleted {
				delete(rebuilt, c.key)
			} else {
				rebuilt[c.key] = c.value
			}
		}
		want, _ := s.Snapshot()
		if len(rebuilt) != len(want) {
			return false
		}
		for k, v := range want {
			if rebuilt[k] != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
