// Package datasync implements the paper's §7 future work: "an
// automatic distribution mechanism of the data tiers to provide
// transparent synchronization".
//
// The model is single-master replication, which matches the paper's
// tier rules: the authoritative Store always lives on the target
// device (§3.2: "the data tier always resides on the target device"),
// and clients hold Replicas. A replica serves reads locally, forwards
// writes to the master (write-through), and stays current by pulling
// the master's version-ordered change log — triggered either by change
// events forwarded over the remote layer or by periodic polling.
package datasync

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"github.com/alfredo-mw/alfredo/internal/event"
	"github.com/alfredo-mw/alfredo/internal/remote"
	"github.com/alfredo-mw/alfredo/internal/wire"
)

// Errors.
var (
	ErrNoSuchKey     = errors.New("datasync: no such key")
	ErrReplicaClosed = errors.New("datasync: replica closed")
)

// changeLogCap bounds the retained change log; replicas further behind
// resynchronize with a full snapshot.
const changeLogCap = 1024

// change is one entry of the master's log.
type change struct {
	version int64
	key     string
	value   any // nil means deleted
	deleted bool
}

// Store is the master data tier: a versioned key/value store with a
// change log. Values must be wire-normalizable.
type Store struct {
	name string

	mu      sync.Mutex
	data    map[string]any
	version int64
	log     []change
	// logBase is the version of the oldest retained log entry minus 1.
	logBase int64
}

// NewStore creates an empty master store.
func NewStore(name string) *Store {
	return &Store{name: name, data: make(map[string]any)}
}

// Name returns the store name.
func (s *Store) Name() string { return s.name }

// Put stores a value and returns the new store version.
func (s *Store) Put(key string, value any) (int64, error) {
	norm, err := wire.Normalize(value)
	if err != nil {
		return 0, fmt.Errorf("datasync: value for %q: %w", key, err)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.version++
	s.data[key] = norm
	s.appendLocked(change{version: s.version, key: key, value: norm})
	return s.version, nil
}

// Delete removes a key (idempotent) and returns the new version.
func (s *Store) Delete(key string) int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.version++
	delete(s.data, key)
	s.appendLocked(change{version: s.version, key: key, deleted: true})
	return s.version
}

// Get reads a value.
func (s *Store) Get(key string) (any, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	v, ok := s.data[key]
	return v, ok
}

// Version returns the current store version.
func (s *Store) Version() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.version
}

// Keys returns the sorted keys.
func (s *Store) Keys() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, 0, len(s.data))
	for k := range s.data {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Snapshot returns the full state and its version.
func (s *Store) Snapshot() (map[string]any, int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	cp := make(map[string]any, len(s.data))
	for k, v := range s.data {
		cp[k] = v
	}
	return cp, s.version
}

// ChangesSince returns the log entries after version since, or ok=false
// when the log has been truncated past that point (replica must
// resnapshot).
func (s *Store) ChangesSince(since int64) (changes []change, ok bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if since < s.logBase {
		return nil, false
	}
	for _, c := range s.log {
		if c.version > since {
			changes = append(changes, c)
		}
	}
	return changes, true
}

func (s *Store) appendLocked(c change) {
	s.log = append(s.log, c)
	if len(s.log) > changeLogCap {
		drop := len(s.log) - changeLogCap
		s.logBase = s.log[drop-1].version
		s.log = append([]change(nil), s.log[drop:]...)
	}
}

// ChangeTopic returns the event topic on which the exported store
// announces changes.
func ChangeTopic(name string) string { return "alfredo/data/" + name }

// Export wraps the store as an exportable remote service and wires
// change announcements into the event admin (which the remote layer
// forwards to subscribed peers). The returned interface name is
// "alfredo.data.<name>".
func Export(store *Store, admin *event.Admin) (*remote.MethodTable, string) {
	iface := "alfredo.data." + store.Name()
	announce := func(version int64) {
		if admin == nil {
			return
		}
		_ = admin.Post(event.Event{
			Topic:      ChangeTopic(store.Name()),
			Properties: map[string]any{"version": version},
		})
	}
	table := remote.NewService(iface).
		Method("Get", []string{"string"}, "any", func(args []any) (any, error) {
			v, ok := store.Get(args[0].(string))
			if !ok {
				return nil, fmt.Errorf("%w: %s", ErrNoSuchKey, args[0])
			}
			return v, nil
		}).
		Method("Put", []string{"string", "any"}, "int", func(args []any) (any, error) {
			version, err := store.Put(args[0].(string), args[1])
			if err != nil {
				return nil, err
			}
			announce(version)
			return version, nil
		}).
		Method("Delete", []string{"string"}, "int", func(args []any) (any, error) {
			version := store.Delete(args[0].(string))
			announce(version)
			return version, nil
		}).
		Method("Snapshot", nil, "map", func(args []any) (any, error) {
			data, version := store.Snapshot()
			return map[string]any{"version": version, "data": data}, nil
		}).
		Method("Changes", []string{"int"}, "map", func(args []any) (any, error) {
			since := args[0].(int64)
			changes, ok := store.ChangesSince(since)
			if !ok {
				return map[string]any{"resync": true}, nil
			}
			list := make([]any, 0, len(changes))
			for _, c := range changes {
				list = append(list, map[string]any{
					"version": c.version,
					"key":     c.key,
					"value":   c.value,
					"deleted": c.deleted,
				})
			}
			return map[string]any{"changes": list}, nil
		}).
		Method("Version", nil, "int", func(args []any) (any, error) {
			return store.Version(), nil
		})
	return table, iface
}

// Replica is the client-side copy of a master store. Reads are local;
// writes go through the master. Create with NewReplica, release with
// Close.
type Replica struct {
	name    string
	invoker remote.Invoker
	admin   *event.Admin

	mu      sync.Mutex
	data    map[string]any
	version int64
	closed  bool
	evTok   int64
	hasTok  bool

	stop chan struct{}
	wg   sync.WaitGroup
}

// ReplicaOptions tune a replica.
type ReplicaOptions struct {
	// PollInterval is the fallback resynchronization period when no
	// change events arrive (0 disables polling).
	PollInterval time.Duration
}

// NewReplica creates a replica of the named store reachable through
// invoker (typically the DynamicService proxy of the exported store).
// It synchronizes immediately, then applies change events (when admin
// is non-nil) and polls as configured.
func NewReplica(name string, invoker remote.Invoker, admin *event.Admin, opts ReplicaOptions) (*Replica, error) {
	r := &Replica{
		name:    name,
		invoker: invoker,
		admin:   admin,
		data:    make(map[string]any),
		stop:    make(chan struct{}),
	}
	if err := r.resync(); err != nil {
		return nil, err
	}
	if admin != nil {
		tok, err := admin.Subscribe(ChangeTopic(name), nil, func(event.Event) {
			// Pull outside the dispatcher goroutine to keep event
			// delivery prompt. The closed check under the mutex keeps
			// the Add from racing Close's Wait.
			r.mu.Lock()
			if r.closed {
				r.mu.Unlock()
				return
			}
			r.wg.Add(1)
			r.mu.Unlock()
			go func() {
				defer r.wg.Done()
				_ = r.Sync()
			}()
		})
		if err == nil {
			r.evTok = tok
			r.hasTok = true
		}
	}
	if opts.PollInterval > 0 {
		r.wg.Add(1)
		go func() {
			defer r.wg.Done()
			ticker := time.NewTicker(opts.PollInterval)
			defer ticker.Stop()
			for {
				select {
				case <-r.stop:
					return
				case <-ticker.C:
					_ = r.Sync()
				}
			}
		}()
	}
	return r, nil
}

// Get reads from the local replica.
func (r *Replica) Get(key string) (any, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	v, ok := r.data[key]
	return v, ok
}

// Version returns the replica's applied version.
func (r *Replica) Version() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.version
}

// Keys returns the sorted replica keys.
func (r *Replica) Keys() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]string, 0, len(r.data))
	for k := range r.data {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Put writes through to the master and applies the change locally
// without waiting for the round-tripped event.
func (r *Replica) Put(key string, value any) error {
	r.mu.Lock()
	closed := r.closed
	r.mu.Unlock()
	if closed {
		return ErrReplicaClosed
	}
	version, err := r.invoker.Invoke("Put", []any{key, value})
	if err != nil {
		return err
	}
	norm, err := wire.Normalize(value)
	if err != nil {
		return err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if v, ok := version.(int64); ok && v > r.version {
		r.data[key] = norm
		r.version = v
	}
	return nil
}

// Delete writes through to the master.
func (r *Replica) Delete(key string) error {
	version, err := r.invoker.Invoke("Delete", []any{key})
	if err != nil {
		return err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if v, ok := version.(int64); ok && v > r.version {
		delete(r.data, key)
		r.version = v
	}
	return nil
}

// Sync pulls outstanding changes from the master (or a full snapshot
// when the master's log no longer covers the replica's version).
func (r *Replica) Sync() error {
	r.mu.Lock()
	since := r.version
	closed := r.closed
	r.mu.Unlock()
	if closed {
		return ErrReplicaClosed
	}

	res, err := r.invoker.Invoke("Changes", []any{since})
	if err != nil {
		return err
	}
	m, ok := res.(map[string]any)
	if !ok {
		return fmt.Errorf("datasync: unexpected Changes reply %T", res)
	}
	if resync, _ := m["resync"].(bool); resync {
		return r.resync()
	}
	list, _ := m["changes"].([]any)
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, e := range list {
		cm, ok := e.(map[string]any)
		if !ok {
			continue
		}
		version, _ := cm["version"].(int64)
		if version <= r.version {
			continue
		}
		key, _ := cm["key"].(string)
		if deleted, _ := cm["deleted"].(bool); deleted {
			delete(r.data, key)
		} else {
			r.data[key] = cm["value"]
		}
		r.version = version
	}
	return nil
}

func (r *Replica) resync() error {
	res, err := r.invoker.Invoke("Snapshot", nil)
	if err != nil {
		return err
	}
	m, ok := res.(map[string]any)
	if !ok {
		return fmt.Errorf("datasync: unexpected Snapshot reply %T", res)
	}
	data, _ := m["data"].(map[string]any)
	version, _ := m["version"].(int64)
	r.mu.Lock()
	defer r.mu.Unlock()
	r.data = make(map[string]any, len(data))
	for k, v := range data {
		r.data[k] = v
	}
	r.version = version
	return nil
}

// Close stops background synchronization.
func (r *Replica) Close() {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return
	}
	r.closed = true
	hasTok, tok := r.hasTok, r.evTok
	r.hasTok = false
	r.mu.Unlock()
	close(r.stop)
	if hasTok && r.admin != nil {
		r.admin.Unsubscribe(tok)
	}
	r.wg.Wait()
}
