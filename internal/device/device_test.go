package device

import "testing"

func TestStockProfilesResolve(t *testing.T) {
	for _, name := range []string{"nokia9300i", "se-m600i", "iphone", "notebook", "touchscreen"} {
		p, ok := ProfileByName(name)
		if !ok {
			t.Errorf("profile %s missing", name)
			continue
		}
		if p.Name != name {
			t.Errorf("name mismatch: %s", p.Name)
		}
		if p.Display.Width <= 0 || p.Display.Height <= 0 {
			t.Errorf("%s has no display", name)
		}
		if len(p.Renderers) == 0 {
			t.Errorf("%s has no renderers", name)
		}
	}
	if _, ok := ProfileByName("commodore64"); ok {
		t.Error("unknown profile resolved")
	}
}

func TestCapabilityMapping(t *testing.T) {
	nokia := Nokia9300i()
	// §5.1: on a Nokia 9300i the PointingDevice interface is implemented
	// with the cursor keys of the keyboard.
	impl, ok := nokia.ImplementorFor(PointingDevice)
	if !ok || impl != "CursorKeys" {
		t.Errorf("Nokia PointingDevice implementor = %s, %v", impl, ok)
	}
	// On an iPhone the same interface can be implemented with the
	// accelerometer (touch screen is preferred as it is listed first).
	iphone := IPhone()
	if impl, _ := iphone.ImplementorFor(PointingDevice); impl != "TouchScreen" {
		t.Errorf("iPhone PointingDevice implementor = %s", impl)
	}
	if !iphone.Has(PointingDevice) {
		t.Error("iPhone lacks PointingDevice")
	}
}

func TestScreenDeviceImplied(t *testing.T) {
	p := Profile{Name: "headless"}
	if p.Has(ScreenDevice) {
		t.Error("headless device claims a screen")
	}
	p.Display = Display{Width: 100, Height: 100}
	if !p.Has(ScreenDevice) {
		t.Error("display does not imply ScreenDevice")
	}
}

func TestSatisfies(t *testing.T) {
	nokia := Nokia9300i()
	ok, missing := nokia.Satisfies([]string{string(PointingDevice), string(KeyboardDevice)})
	if !ok || len(missing) != 0 {
		t.Errorf("Nokia should satisfy pointing+keyboard, missing %v", missing)
	}
	ok, missing = nokia.Satisfies([]string{string(AudioDevice)})
	if ok || len(missing) != 1 || missing[0] != AudioDevice {
		t.Errorf("Nokia should miss AudioDevice, got %v", missing)
	}
	// Empty requirements are trivially satisfied.
	if ok, _ := (Profile{}).Satisfies(nil); !ok {
		t.Error("empty requirements unsatisfied")
	}
}

func TestOrientations(t *testing.T) {
	if Nokia9300i().Display.Orientation != Landscape {
		t.Error("9300i should be landscape (paper §5.2)")
	}
	if SonyEricssonM600i().Display.Orientation != Portrait {
		t.Error("M600i should be portrait (paper §5.2)")
	}
}

func TestCapabilitiesSortedAndDeduped(t *testing.T) {
	p := Notebook()
	caps := p.Capabilities()
	for i := 1; i < len(caps); i++ {
		if caps[i-1] >= caps[i] {
			t.Errorf("capabilities not sorted/deduped: %v", caps)
		}
	}
}
