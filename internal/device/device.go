// Package device models the input/output capabilities of the
// heterogeneous hardware AlfredO runs on (paper §3.3): capabilities are
// abstract service interfaces (KeyboardDevice, PointingDevice, …)
// organized in a hierarchy, concrete input devices implement one or
// more of them, and a device profile describes what a platform offers —
// so "the mouse of a desktop computer is equivalent to the joystick of
// a phone or the knob of a coffee machine".
package device

import (
	"fmt"
	"sort"
)

// Capability names the abstract input/output service interfaces of the
// presentation model. They are what UI descriptions declare in their
// Requires lists.
type Capability string

// The capability hierarchy of §3.3.
const (
	// KeyboardDevice enters characters.
	KeyboardDevice Capability = "ui.KeyboardDevice"
	// PointingDevice moves a pointer / selects positions.
	PointingDevice Capability = "ui.PointingDevice"
	// ScreenDevice displays rendered output.
	ScreenDevice Capability = "ui.ScreenDevice"
	// SelectionDevice navigates discrete choices (lists, menus).
	SelectionDevice Capability = "ui.SelectionDevice"
	// AudioDevice plays sounds.
	AudioDevice Capability = "ui.AudioDevice"
)

// InputDevice is a concrete piece of hardware implementing one or more
// capability interfaces — e.g. the Nokia communicator's cursor keys
// implement both KeyboardDevice navigation and PointingDevice movement
// (§5.1), and an iPhone's accelerometer implements PointingDevice.
type InputDevice struct {
	Name     string       `json:"name"`
	Provides []Capability `json:"provides"`
}

// Orientation of a display.
type Orientation string

// Display orientations.
const (
	Landscape Orientation = "landscape"
	Portrait  Orientation = "portrait"
)

// Display describes a platform's screen.
type Display struct {
	Width       int         `json:"width"`
	Height      int         `json:"height"`
	Orientation Orientation `json:"orientation"`
	Color       bool        `json:"color"`
}

// Profile describes one platform: identity, display, input hardware,
// the renderers its runtime supports (in preference order), and the
// devsim profile that models its CPU.
type Profile struct {
	Name      string        `json:"name"`
	Display   Display       `json:"display"`
	Inputs    []InputDevice `json:"inputs"`
	Renderers []string      `json:"renderers"`
	// SimDevice names the devsim profile modelling this platform.
	SimDevice string `json:"simDevice,omitempty"`
	// Link names the netsim profile of the platform's radio.
	Link string `json:"link,omitempty"`
}

// Capabilities returns the sorted set of capabilities the profile's
// inputs provide; ScreenDevice is implied by a non-zero display.
func (p Profile) Capabilities() []Capability {
	set := make(map[Capability]bool)
	for _, in := range p.Inputs {
		for _, c := range in.Provides {
			set[c] = true
		}
	}
	if p.Display.Width > 0 && p.Display.Height > 0 {
		set[ScreenDevice] = true
	}
	out := make([]Capability, 0, len(set))
	for c := range set {
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Has reports whether the profile offers a capability.
func (p Profile) Has(c Capability) bool {
	for _, have := range p.Capabilities() {
		if have == c {
			return true
		}
	}
	return false
}

// Satisfies reports whether the profile offers every required
// capability; the second result lists what is missing.
func (p Profile) Satisfies(requires []string) (bool, []Capability) {
	var missing []Capability
	for _, r := range requires {
		if !p.Has(Capability(r)) {
			missing = append(missing, Capability(r))
		}
	}
	return len(missing) == 0, missing
}

// ImplementorFor returns the name of an input device providing the
// capability, preferring earlier entries (profile preference order).
func (p Profile) ImplementorFor(c Capability) (string, bool) {
	for _, in := range p.Inputs {
		for _, have := range in.Provides {
			if have == c {
				return in.Name, true
			}
		}
	}
	return "", false
}

// String implements fmt.Stringer.
func (p Profile) String() string {
	return fmt.Sprintf("profile{%s %dx%d %s}", p.Name, p.Display.Width, p.Display.Height, p.Display.Orientation)
}

// Stock profiles of the platforms in the paper.

// Nokia9300i is the landscape communicator: full keyboard whose cursor
// keys double as a pointing device, eRCP/SWT-class rendering modelled
// by the text renderer.
func Nokia9300i() Profile {
	return Profile{
		Name:    "nokia9300i",
		Display: Display{Width: 640, Height: 200, Orientation: Landscape, Color: true},
		Inputs: []InputDevice{
			{Name: "CursorKeys", Provides: []Capability{PointingDevice, SelectionDevice}},
			{Name: "FullKeyboard", Provides: []Capability{KeyboardDevice}},
		},
		Renderers: []string{"text", "tree"},
		SimDevice: "nokia9300i",
		Link:      "wlan11b",
	}
}

// SonyEricssonM600i is the portrait smartphone: jog dial and keypad,
// AWT-class rendering modelled by the tree renderer.
func SonyEricssonM600i() Profile {
	return Profile{
		Name:    "se-m600i",
		Display: Display{Width: 240, Height: 320, Orientation: Portrait, Color: true},
		Inputs: []InputDevice{
			{Name: "JogDial", Provides: []Capability{SelectionDevice}},
			{Name: "Keypad", Provides: []Capability{KeyboardDevice, PointingDevice}},
		},
		Renderers: []string{"tree", "text"},
		SimDevice: "se-m600i",
		Link:      "bt20",
	}
}

// IPhone has no Java runtime in 2008 (paper §5.2): only the servlet
// renderer applies, the touch screen covers pointing and selection, and
// the accelerometer implements PointingDevice for MouseController.
func IPhone() Profile {
	return Profile{
		Name:    "iphone",
		Display: Display{Width: 320, Height: 480, Orientation: Portrait, Color: true},
		Inputs: []InputDevice{
			{Name: "TouchScreen", Provides: []Capability{PointingDevice, SelectionDevice, KeyboardDevice}},
			{Name: "Accelerometer", Provides: []Capability{PointingDevice}},
		},
		Renderers: []string{"html"},
		SimDevice: "se-m600i",
		Link:      "wlan11b",
	}
}

// Notebook is the target-device platform of the prototype applications
// (§5): mouse, keyboard, large landscape screen.
func Notebook() Profile {
	return Profile{
		Name:    "notebook",
		Display: Display{Width: 1280, Height: 800, Orientation: Landscape, Color: true},
		Inputs: []InputDevice{
			{Name: "Mouse", Provides: []Capability{PointingDevice, SelectionDevice}},
			{Name: "NotebookKeyboard", Provides: []Capability{KeyboardDevice, PointingDevice}},
		},
		Renderers: []string{"tree", "text", "html"},
		SimDevice: "notebook",
		Link:      "eth100",
	}
}

// Touchscreen is an input-constrained public information screen.
func Touchscreen() Profile {
	return Profile{
		Name:    "touchscreen",
		Display: Display{Width: 1024, Height: 768, Orientation: Landscape, Color: true},
		Inputs: []InputDevice{
			{Name: "TouchPanel", Provides: []Capability{PointingDevice, SelectionDevice}},
		},
		Renderers: []string{"html", "tree"},
		SimDevice: "notebook",
		Link:      "eth100",
	}
}

// ProfileByName resolves a stock profile.
func ProfileByName(name string) (Profile, bool) {
	switch name {
	case "nokia9300i":
		return Nokia9300i(), true
	case "se-m600i":
		return SonyEricssonM600i(), true
	case "iphone":
		return IPhone(), true
	case "notebook":
		return Notebook(), true
	case "touchscreen":
		return Touchscreen(), true
	default:
		return Profile{}, false
	}
}
