package devsim

import "time"

// Cost catalog: the reference-desktop duration of each framework
// operation. A device executes an operation in catalogCost/deviceSpeed.
//
// Calibration (all derived from the paper, not measured on 2008
// hardware):
//
//   - Tables 1–2 put "Build proxy bundle" at 3125 ms on the Nokia 9300i
//     (speed 0.048) and 1881 ms on the M600i (speed 0.080): both imply a
//     reference cost of ~150 ms, dominated by a fixed part (the two
//     apps' interfaces differ in size yet build times differ by <1%).
//   - "Install proxy bundle" is I/O-bound (flash write): 703 ms vs
//     259 ms do NOT follow the CPU ratio, so install runs on the
//     device's I/O queue with its own speed factor.
//   - "Start proxy bundle" is app-dependent (the MouseController
//     activator subscribes to snapshot events and allocates a
//     framebuffer; AlfredOShop only wires UI state): the app start work
//     is declared per-archive and executed on the device CPU.
//   - Figure 3 (~1 ms single-client invocation on a P4 over Ethernet,
//     rising to ~2.5 ms at 128 clients at 10 inv/s each) implies a
//     server-side dispatch cost of ~0.67 ms: utilization 0.86 at
//     1280 inv/s produces exactly that gentle queueing rise, and the
//     knee the paper reports between 400 and 800 clients on the 4-core
//     cluster node (Fig. 4) follows from the same constant.
//   - Figures 5–6 (~100 ms phone-side invocation latency, < 150 ms at
//     40 concurrent services) imply ~1 ms of reference-CPU work per
//     invocation on the client path: ~21 ms on the Nokia, which at 40
//     invocations/s loads the phone CPU to ~0.8 and reproduces the
//     sub-150 ms rise.
const (
	// CostParseReplyPerKB is the client-side cost of decoding a fetched
	// service interface + descriptor, per KB.
	CostParseReplyPerKB = 750 * time.Microsecond

	// CostBuildProxyBase is the fixed cost of synthesizing a proxy
	// bundle from a shipped interface.
	CostBuildProxyBase = 149 * time.Millisecond

	// CostBuildProxyPerMethod is the incremental cost per proxied
	// method.
	CostBuildProxyPerMethod = 300 * time.Microsecond

	// CostInstallBundle is the I/O-queue cost of installing a proxy
	// bundle.
	CostInstallBundle = 30 * time.Millisecond

	// CostStartBundleBase is the fixed CPU cost of starting a proxy
	// bundle (registry interaction, activator dispatch). App-specific
	// start work is declared in the service descriptor and added.
	CostStartBundleBase = 2 * time.Millisecond

	// CostClientInvoke is the client-side CPU cost per invocation
	// (marshalling, proxy dispatch, demarshalling the result).
	CostClientInvoke = 1 * time.Millisecond

	// CostClientInvokePerKB adds to CostClientInvoke for large payloads.
	CostClientInvokePerKB = 200 * time.Microsecond

	// CostServerDispatch is the server-side CPU cost per invocation
	// (decode, registry lookup, dispatch, encode).
	CostServerDispatch = 670 * time.Microsecond

	// CostServerDispatchPerKB adds to CostServerDispatch for large
	// payloads.
	CostServerDispatchPerKB = 150 * time.Microsecond

	// CostJitter is the default multiplicative service-time jitter.
	CostJitter = 0.35
)
