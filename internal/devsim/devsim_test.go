package devsim

import (
	"context"
	"sync"
	"testing"
	"time"
)

func TestQueueScalesBySpeed(t *testing.T) {
	fast := NewQueue("fast", 1, 1.0)
	slow := NewQueue("slow", 1, 0.1)

	start := time.Now()
	fast.Execute(10 * time.Millisecond)
	fastTook := time.Since(start)

	start = time.Now()
	slow.Execute(10 * time.Millisecond)
	slowTook := time.Since(start)

	if fastTook < 8*time.Millisecond {
		t.Errorf("fast queue took %v, want >= ~10ms", fastTook)
	}
	if slowTook < 80*time.Millisecond {
		t.Errorf("slow queue took %v, want >= ~100ms (10x slower)", slowTook)
	}
}

func TestQueueContention(t *testing.T) {
	// Two 20 ms jobs on one core must serialize: total >= 40 ms.
	q := NewQueue("contended", 1, 1.0)
	start := time.Now()
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			q.Execute(20 * time.Millisecond)
		}()
	}
	wg.Wait()
	if took := time.Since(start); took < 38*time.Millisecond {
		t.Errorf("serialized execution took %v, want >= ~40ms", took)
	}

	// The same jobs on two cores run in parallel: total < 40 ms.
	q2 := NewQueue("parallel", 2, 1.0)
	start = time.Now()
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			q2.Execute(20 * time.Millisecond)
		}()
	}
	wg.Wait()
	if took := time.Since(start); took > 38*time.Millisecond {
		t.Errorf("parallel execution took %v, want < ~40ms", took)
	}
}

func TestQueueJitterBounds(t *testing.T) {
	// Individual operations may not sleep (debt accounting), but the
	// aggregate busy time of n jittered 4ms ops stays in [2ms,6ms]*n,
	// and the wall clock tracks the aggregate.
	q := NewQueue("jittery", 1, 1.0)
	q.SetJitter(0.5)
	const n = 20
	start := time.Now()
	for i := 0; i < n; i++ {
		q.Execute(4 * time.Millisecond)
	}
	took := time.Since(start)
	busy, ops := q.Stats()
	if ops != n {
		t.Fatalf("ops = %d", ops)
	}
	if busy < n*2*time.Millisecond || busy > n*6*time.Millisecond {
		t.Errorf("aggregate busy = %v, want within [%v,%v]", busy, n*2*time.Millisecond, n*6*time.Millisecond)
	}
	// Wall clock within debt quantum + scheduling slack of busy time.
	if took < busy-2*sleepQuantum {
		t.Errorf("wall clock %v far below busy %v", took, busy)
	}
}

func TestQueueStats(t *testing.T) {
	q := NewQueue("stats", 1, 1.0)
	q.Execute(2 * time.Millisecond)
	q.Execute(3 * time.Millisecond)
	busy, ops := q.Stats()
	if ops != 2 {
		t.Errorf("ops = %d, want 2", ops)
	}
	if busy < 4*time.Millisecond || busy > 8*time.Millisecond {
		t.Errorf("busy = %v, want ~5ms", busy)
	}
}

func TestQueueCtxCancel(t *testing.T) {
	q := NewQueue("busy", 1, 1.0)
	release := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		<-release
		q.Execute(50 * time.Millisecond)
	}()
	close(release)
	time.Sleep(5 * time.Millisecond) // let the holder grab the core

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()
	if err := q.ExecuteCtx(ctx, time.Millisecond); err == nil {
		t.Error("ExecuteCtx should fail while the core is held past the deadline")
	}
	wg.Wait()
}

func TestZeroAndNilSafety(t *testing.T) {
	var q *Queue
	if err := q.ExecuteCtx(context.Background(), time.Second); err != nil {
		t.Errorf("nil queue ExecuteCtx = %v", err)
	}
	q2 := NewQueue("zero", 1, 1.0)
	q2.Execute(0)
	q2.Execute(-time.Second)

	var d *Device
	d.ParseReply(1000)
	d.BuildProxy(10)
	d.InstallBundle()
	d.StartBundle(time.Second)
	d.ClientInvoke(CostClientInvoke, 100)
	d.ServerDispatch(100)
	if d.Name() != "" || d.CPU() != nil || d.IO() != nil {
		t.Error("nil device accessors should return zero values")
	}
}

func TestStockProfiles(t *testing.T) {
	for _, name := range []string{"nokia9300i", "se-m600i", "desktop-p4", "opteron", "notebook"} {
		d, ok := DeviceByName(name)
		if !ok {
			t.Errorf("device %s missing", name)
			continue
		}
		if d.Name() != name {
			t.Errorf("device name = %s, want %s", d.Name(), name)
		}
	}
	if _, ok := DeviceByName("psion5"); ok {
		t.Error("unknown device should not resolve")
	}

	// Calibration relations from the paper:
	nokia, m600i := Nokia9300i(), SonyEricssonM600i()
	// 1. The M600i CPU is faster than the Nokia's (Table 2 vs 1: "the
	//    performance is in average 40% faster").
	if m600i.CPU().Speed() <= nokia.CPU().Speed() {
		t.Error("M600i should have a faster CPU than the 9300i")
	}
	ratio := nokia.CPU().Speed() / m600i.CPU().Speed()
	if ratio < 0.5 || ratio > 0.7 {
		t.Errorf("build-time ratio = %.2f, want ~0.6 (3125ms vs 1881ms)", ratio)
	}
	// 2. Install is I/O bound and does not follow the CPU ratio.
	ioRatio := nokia.IO().Speed() / m600i.IO().Speed()
	if ioRatio > 0.5 {
		t.Errorf("install ratio = %.2f, want ~0.37 (703ms vs 259ms)", ioRatio)
	}
	// 3. The cluster node out-muscles the P4 by roughly 3.7x in
	//    aggregate (Fig. 4 knee at ~550 clients vs Fig. 3's 128-client
	//    ceiling).
	p4, opt := DesktopP4(), OpteronNode()
	aggP4 := float64(p4.CPU().Units()) * p4.CPU().Speed()
	aggOpt := float64(opt.CPU().Units()) * opt.CPU().Speed()
	if r := aggOpt / aggP4; r < 3.0 || r > 4.5 {
		t.Errorf("cluster/P4 aggregate ratio = %.2f, want ~3.7", r)
	}
}

func TestDeviceHookDurations(t *testing.T) {
	// On the Nokia profile, building a small proxy must land in the
	// paper's ~3.1s band.
	nokia := Nokia9300i()
	nokia.CPU().SetJitter(0) // deterministic for the assertion
	start := time.Now()
	nokia.BuildProxy(4)
	took := time.Since(start)
	if took < 2800*time.Millisecond || took > 3500*time.Millisecond {
		t.Errorf("Nokia proxy build = %v, want ~3.1s (Table 1)", took)
	}
}

func TestDeviceInstallDurations(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-heavy")
	}
	nokia := Nokia9300i()
	nokia.IO().SetJitter(0)
	start := time.Now()
	nokia.InstallBundle()
	if took := time.Since(start); took < 600*time.Millisecond || took > 850*time.Millisecond {
		t.Errorf("Nokia install = %v, want ~703ms (Table 1)", took)
	}
	m := SonyEricssonM600i()
	m.IO().SetJitter(0)
	start = time.Now()
	m.InstallBundle()
	if took := time.Since(start); took < 200*time.Millisecond || took > 350*time.Millisecond {
		t.Errorf("M600i install = %v, want ~259ms (Table 2)", took)
	}
}
