package devsim

import "time"

// Device bundles the execution queues of one simulated platform. A nil
// *Device disables cost simulation entirely (all hooks return
// immediately), which is what plain unit tests use.
type Device struct {
	name string
	cpu  *Queue
	io   *Queue
}

// NewDevice creates a device with a CPU queue of cpuUnits cores at
// cpuSpeed and a single-channel I/O queue at ioSpeed (both relative to
// the reference desktop = 1.0).
func NewDevice(name string, cpuUnits int, cpuSpeed, ioSpeed float64) *Device {
	cpu := NewQueue(name+"/cpu", cpuUnits, cpuSpeed)
	cpu.SetJitter(CostJitter)
	ioq := NewQueue(name+"/io", 1, ioSpeed)
	ioq.SetJitter(CostJitter / 2)
	return &Device{name: name, cpu: cpu, io: ioq}
}

// Stock device profiles. Speed factors are calibrated in costs.go.
//
//   - Nokia9300i: 150 MHz ARM9 communicator (WLAN experiments).
//   - SonyEricssonM600i: 208 MHz ARM9 smartphone (Bluetooth
//     experiments); ~40% faster CPU than the 9300i but with a much
//     faster flash path (the paper's install times do not follow the
//     CPU ratio).
//   - DesktopP4: the single-core Pentium 4 class service provider of
//     Figure 3 (reference speed 1.0).
//   - OpteronNode: a two-processor dual-core 2.2 GHz cluster node of
//     Figure 4.
//   - Notebook: the target device of the prototype applications (§5).
// Nokia9300i models the 150 MHz ARM9 communicator.
func Nokia9300i() *Device { return NewDevice("nokia9300i", 1, 0.048, 0.0427) }

// SonyEricssonM600i models the 208 MHz ARM9 smartphone.
func SonyEricssonM600i() *Device { return NewDevice("se-m600i", 1, 0.080, 0.116) }

// DesktopP4 models the single-core Pentium 4 reference desktop.
func DesktopP4() *Device { return NewDevice("desktop-p4", 1, 1.0, 1.0) }

// OpteronNode models a two-processor dual-core 2.2 GHz cluster node.
func OpteronNode() *Device { return NewDevice("opteron", 4, 0.92, 1.5) }

// Notebook models the prototype applications' target device.
func Notebook() *Device { return NewDevice("notebook", 2, 0.85, 0.9) }

// DeviceByName resolves a stock profile name.
func DeviceByName(name string) (*Device, bool) {
	switch name {
	case "nokia9300i":
		return Nokia9300i(), true
	case "se-m600i":
		return SonyEricssonM600i(), true
	case "desktop-p4":
		return DesktopP4(), true
	case "opteron":
		return OpteronNode(), true
	case "notebook":
		return Notebook(), true
	default:
		return nil, false
	}
}

// Name returns the device name ("" for nil).
func (d *Device) Name() string {
	if d == nil {
		return ""
	}
	return d.name
}

// CPU returns the device's CPU queue (nil for a nil device).
func (d *Device) CPU() *Queue {
	if d == nil {
		return nil
	}
	return d.cpu
}

// IO returns the device's I/O queue (nil for a nil device).
func (d *Device) IO() *Queue {
	if d == nil {
		return nil
	}
	return d.io
}

// The methods below are the cost hooks the remote and core layers call
// at the corresponding points of the acquire/invoke pipelines. All are
// nil-safe.

// ParseReply accounts for decoding a fetched service reply of the given
// size.
func (d *Device) ParseReply(bytes int) {
	if d == nil {
		return
	}
	d.cpu.Execute(time.Duration(float64(CostParseReplyPerKB) * float64(bytes) / 1024))
}

// BuildProxy accounts for synthesizing a proxy bundle with the given
// number of methods.
func (d *Device) BuildProxy(methods int) {
	if d == nil {
		return
	}
	d.cpu.Execute(CostBuildProxyBase + time.Duration(methods)*CostBuildProxyPerMethod)
}

// InstallBundle accounts for persisting a proxy bundle (I/O-bound).
func (d *Device) InstallBundle() {
	if d == nil {
		return
	}
	d.io.Execute(CostInstallBundle)
}

// StartBundle accounts for starting a proxy bundle; extra is the
// app-specific start work declared in the service descriptor.
func (d *Device) StartBundle(extra time.Duration) {
	if d == nil {
		return
	}
	d.cpu.Execute(CostStartBundleBase + extra)
}

// ClientInvoke accounts for the client-side work of one invocation with
// the given payload size. base distinguishes the full AlfredO client
// path (CostClientInvoke) from a raw remote-service client
// (CostClientInvokeRaw). payloadBytes is the invocation's actual frame
// size as reported by the transport encoder — callers never re-encode a
// message just to learn its length.
func (d *Device) ClientInvoke(base time.Duration, payloadBytes int) {
	if d == nil {
		return
	}
	d.cpu.Execute(base + time.Duration(float64(CostClientInvokePerKB)*float64(payloadBytes)/1024))
}

// ServerDispatch accounts for the server-side work of one invocation.
// payloadBytes is the inbound frame size reported by the transport
// reader — the serving side sizes the work from what actually crossed
// the wire instead of re-encoding the decoded message.
func (d *Device) ServerDispatch(payloadBytes int) {
	if d == nil {
		return
	}
	d.cpu.Execute(CostServerDispatch + time.Duration(float64(CostServerDispatchPerKB)*float64(payloadBytes)/1024))
}

// CostClientInvokeRaw is the client-side cost of a bare remote-service
// invocation without the AlfredO presentation/controller layers — the
// desktop clients of Figures 3 and 4.
const CostClientInvokeRaw = 80 * time.Microsecond
