// Package devsim simulates the execution platforms of the paper's
// evaluation: resource-constrained phones (Nokia 9300i, Sony Ericsson
// M600i), a Pentium 4 desktop, and dual-processor dual-core Opteron
// cluster nodes (DESIGN.md §2).
//
// Every framework operation with a measurable cost in the paper — proxy
// building, bundle install/start, argument marshalling, service dispatch
// — is routed through a device's CPU (or I/O) queue. A queue has a fixed
// number of units and a speed factor relative to the reference desktop;
// operations block for their scaled duration while holding a unit, so
// queueing delay, saturation knees and cross-device speedups emerge from
// contention rather than being scripted. Cost constants live in
// costs.go with their calibration notes.
//
// Timer precision: time.Sleep overshoots sub-millisecond durations by
// up to ~1 ms, which would inflate the sub-millisecond dispatch costs
// of Figures 3 and 4 several-fold. Each unit therefore keeps a signed
// sleep *debt*: costs accumulate, the unit sleeps only once the debt
// exceeds a quantum, and the measured oversleep is credited back. The
// long-run busy time per unit — and with it utilization, capacity and
// the saturation knee — is exact, at the price of lumpier individual
// latencies (which all experiments average anyway).
package devsim

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"time"
)

// sleepQuantum is the smallest debt a unit pays in one sleep.
const sleepQuantum = 1500 * time.Microsecond

// Queue models a pool of identical execution units (CPU cores or an
// I/O channel). Execute blocks for the scaled duration of an operation
// while holding one unit; when all units are busy, callers queue.
type Queue struct {
	name  string
	units int
	speed float64

	slots chan int // unit ids

	mu     sync.Mutex
	rng    *rand.Rand
	jitter float64
	busy   time.Duration
	ops    int64
	debt   []time.Duration // per-unit sleep debt
}

// NewQueue creates a queue with the given unit count and speed factor
// (1.0 = reference desktop; 0.05 = a 20x slower phone).
func NewQueue(name string, units int, speed float64) *Queue {
	if units < 1 {
		units = 1
	}
	if speed <= 0 {
		speed = 1.0
	}
	q := &Queue{
		name:  name,
		units: units,
		speed: speed,
		slots: make(chan int, units),
		rng:   rand.New(rand.NewSource(int64(len(name)) + 42)),
		debt:  make([]time.Duration, units),
	}
	for i := 0; i < units; i++ {
		q.slots <- i
	}
	return q
}

// SetJitter configures multiplicative cost jitter: each operation's
// duration is scaled by a uniform factor in [1-j, 1+j]. Real service
// times vary; without variance, deterministic arrivals would hide
// queueing effects that the paper's measurements show.
func (q *Queue) SetJitter(j float64) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if j < 0 {
		j = 0
	}
	if j > 0.9 {
		j = 0.9
	}
	q.jitter = j
}

// Execute blocks for cost (scaled by the queue's speed and jitter)
// while holding one unit. A zero or negative cost returns immediately.
func (q *Queue) Execute(cost time.Duration) {
	_ = q.ExecuteCtx(context.Background(), cost)
}

// ExecuteCtx is Execute with cancellation while waiting for a unit.
func (q *Queue) ExecuteCtx(ctx context.Context, cost time.Duration) error {
	if q == nil || cost <= 0 {
		return nil
	}
	var unit int
	select {
	case unit = <-q.slots:
	case <-ctx.Done():
		return fmt.Errorf("devsim: waiting for %s: %w", q.name, ctx.Err())
	}
	defer func() { q.slots <- unit }()

	d := q.scale(cost)
	q.mu.Lock()
	q.busy += d
	q.ops++
	q.debt[unit] += d
	pay := time.Duration(0)
	if q.debt[unit] >= sleepQuantum {
		pay = q.debt[unit]
		q.debt[unit] = 0
	}
	q.mu.Unlock()

	if pay > 0 {
		t0 := time.Now()
		time.Sleep(pay)
		oversleep := time.Since(t0) - pay
		if oversleep > 0 {
			q.mu.Lock()
			q.debt[unit] -= oversleep
			q.mu.Unlock()
		}
	}
	return nil
}

func (q *Queue) scale(cost time.Duration) time.Duration {
	d := time.Duration(float64(cost) / q.speed)
	q.mu.Lock()
	j := q.jitter
	var f float64
	if j > 0 {
		f = 1 - j + 2*j*q.rng.Float64()
	}
	q.mu.Unlock()
	if j > 0 {
		d = time.Duration(float64(d) * f)
	}
	return d
}

// Stats reports the cumulative busy time and operation count.
func (q *Queue) Stats() (busy time.Duration, ops int64) {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.busy, q.ops
}

// Units returns the number of execution units.
func (q *Queue) Units() int { return q.units }

// Speed returns the speed factor.
func (q *Queue) Speed() float64 { return q.speed }

// Name returns the queue name.
func (q *Queue) Name() string { return q.name }
