package ui

import (
	"errors"
	"fmt"
	"strings"
)

// Validation is the declarative input-validation part of the
// presentation model. The paper positions the descriptor against
// XForms-style declarative UIs "with input validation and content
// submission" (§3.2); these constraints are that capability: they ship
// as data and every renderer enforces them before an EventChange
// reaches the controller.
type Validation struct {
	// Required rejects empty values.
	Required bool `json:"required,omitempty"`
	// MinLen and MaxLen bound string lengths (MaxLen 0 = unbounded).
	MinLen int `json:"minLen,omitempty"`
	MaxLen int `json:"maxLen,omitempty"`
	// Pattern is a glob-style pattern ('*' matches any run, '?' one
	// character) the string value must match.
	Pattern string `json:"pattern,omitempty"`
	// OneOf restricts the value to an enumeration.
	OneOf []string `json:"oneOf,omitempty"`
	// Numeric rejects values that do not parse as numbers.
	Numeric bool `json:"numeric,omitempty"`
}

// ErrValidation is wrapped by all input-validation failures.
var ErrValidation = errors.New("ui: input validation failed")

// Zero reports whether no constraints are set.
func (v Validation) Zero() bool {
	return !v.Required && v.MinLen == 0 && v.MaxLen == 0 &&
		v.Pattern == "" && len(v.OneOf) == 0 && !v.Numeric
}

// Check validates a candidate value against the constraints.
func (v Validation) Check(value any) error {
	s := valueString(value)
	if v.Required && strings.TrimSpace(s) == "" {
		return fmt.Errorf("%w: value required", ErrValidation)
	}
	if s == "" && !v.Required {
		return nil // optional empty values pass remaining checks
	}
	if v.MinLen > 0 && len(s) < v.MinLen {
		return fmt.Errorf("%w: %q shorter than %d", ErrValidation, s, v.MinLen)
	}
	if v.MaxLen > 0 && len(s) > v.MaxLen {
		return fmt.Errorf("%w: %q longer than %d", ErrValidation, s, v.MaxLen)
	}
	if v.Pattern != "" && !globMatch(v.Pattern, s) {
		return fmt.Errorf("%w: %q does not match %q", ErrValidation, s, v.Pattern)
	}
	if len(v.OneOf) > 0 {
		ok := false
		for _, allowed := range v.OneOf {
			if s == allowed {
				ok = true
				break
			}
		}
		if !ok {
			return fmt.Errorf("%w: %q not in %v", ErrValidation, s, v.OneOf)
		}
	}
	if v.Numeric && !isNumeric(value) {
		return fmt.Errorf("%w: %q is not numeric", ErrValidation, s)
	}
	return nil
}

func valueString(v any) string {
	switch x := v.(type) {
	case nil:
		return ""
	case string:
		return x
	default:
		return fmt.Sprint(x)
	}
}

func isNumeric(v any) bool {
	switch x := v.(type) {
	case int, int8, int16, int32, int64, uint, uint8, uint16, uint32, float32, float64:
		return true
	case string:
		s := strings.TrimSpace(x)
		if s == "" {
			return false
		}
		dot := false
		for i, r := range s {
			switch {
			case r >= '0' && r <= '9':
			case r == '-' && i == 0:
			case r == '.' && !dot:
				dot = true
			default:
				return false
			}
		}
		return true
	default:
		return false
	}
}

// globMatch matches s against a pattern where '*' matches any run and
// '?' any single byte.
func globMatch(pattern, s string) bool {
	// Classic iterative glob with backtracking on the last '*'.
	pi, si := 0, 0
	star, starSi := -1, 0
	for si < len(s) {
		switch {
		case pi < len(pattern) && (pattern[pi] == '?' || pattern[pi] == s[si]):
			pi++
			si++
		case pi < len(pattern) && pattern[pi] == '*':
			star, starSi = pi, si
			pi++
		case star >= 0:
			pi = star + 1
			starSi++
			si = starSi
		default:
			return false
		}
	}
	for pi < len(pattern) && pattern[pi] == '*' {
		pi++
	}
	return pi == len(pattern)
}
