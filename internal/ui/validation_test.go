package ui

import (
	"errors"
	"testing"
	"testing/quick"
)

func TestValidationZero(t *testing.T) {
	if !(Validation{}).Zero() {
		t.Error("empty validation should be zero")
	}
	if (Validation{Required: true}).Zero() {
		t.Error("non-empty validation reported zero")
	}
	// Zero validation accepts anything.
	if err := (Validation{}).Check(nil); err != nil {
		t.Errorf("zero check = %v", err)
	}
}

func TestValidationRequired(t *testing.T) {
	v := Validation{Required: true}
	for _, bad := range []any{nil, "", "   "} {
		if err := v.Check(bad); !errors.Is(err, ErrValidation) {
			t.Errorf("Check(%v) = %v, want ErrValidation", bad, err)
		}
	}
	if err := v.Check("x"); err != nil {
		t.Errorf("Check(x) = %v", err)
	}
	// Optional empty values skip the remaining checks.
	opt := Validation{MinLen: 3}
	if err := opt.Check(""); err != nil {
		t.Errorf("optional empty = %v", err)
	}
}

func TestValidationLengths(t *testing.T) {
	v := Validation{MinLen: 2, MaxLen: 4}
	if err := v.Check("a"); !errors.Is(err, ErrValidation) {
		t.Errorf("too short = %v", err)
	}
	if err := v.Check("abcde"); !errors.Is(err, ErrValidation) {
		t.Errorf("too long = %v", err)
	}
	if err := v.Check("abc"); err != nil {
		t.Errorf("in range = %v", err)
	}
}

func TestValidationPattern(t *testing.T) {
	v := Validation{Pattern: "SKU-*-??"}
	if err := v.Check("SKU-table-01"); err != nil {
		t.Errorf("matching = %v", err)
	}
	if err := v.Check("SKU-table-1"); !errors.Is(err, ErrValidation) {
		t.Errorf("short suffix = %v", err)
	}
	if err := v.Check("BED-table-01"); !errors.Is(err, ErrValidation) {
		t.Errorf("wrong prefix = %v", err)
	}
}

func TestValidationOneOf(t *testing.T) {
	v := Validation{OneOf: []string{"beds", "sofas"}}
	if err := v.Check("beds"); err != nil {
		t.Errorf("allowed = %v", err)
	}
	if err := v.Check("tables"); !errors.Is(err, ErrValidation) {
		t.Errorf("disallowed = %v", err)
	}
}

func TestValidationNumeric(t *testing.T) {
	v := Validation{Numeric: true}
	for _, good := range []any{int64(5), 2.5, "42", "-3.5", 7} {
		if err := v.Check(good); err != nil {
			t.Errorf("Check(%v) = %v", good, err)
		}
	}
	for _, bad := range []any{"4x2", "2.5.1", "--2", true} {
		if err := v.Check(bad); !errors.Is(err, ErrValidation) {
			t.Errorf("Check(%v) = %v, want ErrValidation", bad, err)
		}
	}
}

func TestGlobMatch(t *testing.T) {
	cases := []struct {
		pattern, s string
		want       bool
	}{
		{"*", "", true},
		{"*", "anything", true},
		{"a*b", "ab", true},
		{"a*b", "axxxb", true},
		{"a*b", "axxxc", false},
		{"?", "x", true},
		{"?", "", false},
		{"a?c", "abc", true},
		{"a?c", "ac", false},
		{"*a*a*", "banana", true},
		{"", "", true},
		{"", "x", false},
	}
	for _, c := range cases {
		if got := globMatch(c.pattern, c.s); got != c.want {
			t.Errorf("globMatch(%q, %q) = %v, want %v", c.pattern, c.s, got, c.want)
		}
	}
}

func TestPropertyGlobStarMatchesEverything(t *testing.T) {
	prop := func(s string) bool {
		return globMatch("*", s) && globMatch(s+"*", s) && globMatch("*"+s, s)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestPropertySelfMatch(t *testing.T) {
	prop := func(s string) bool {
		for i := 0; i < len(s); i++ {
			if s[i] == '*' || s[i] == '?' {
				return true // literal-only inputs
			}
		}
		return globMatch(s, s)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestValidationSerializes(t *testing.T) {
	d := &Description{
		Title: "v",
		Controls: []Control{{
			ID: "sku", Kind: KindTextInput,
			Validate: Validation{Required: true, Pattern: "SKU-*"},
		}},
	}
	b, err := d.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Unmarshal(b)
	if err != nil {
		t.Fatal(err)
	}
	c, _ := got.Control("sku")
	if !c.Validate.Required || c.Validate.Pattern != "SKU-*" {
		t.Errorf("validation lost in round trip: %+v", c.Validate)
	}
}
