package ui

import (
	"errors"
	"testing"
	"testing/quick"
)

func shopUI() *Description {
	return &Description{
		Title: "AlfredOShop",
		Controls: []Control{
			{ID: "title", Kind: KindLabel, Text: "Welcome to the shop", Importance: 5},
			{ID: "categories", Kind: KindChoice, Items: []string{"beds", "sofas", "tables"}, Importance: 9},
			{ID: "products", Kind: KindList, Importance: 10},
			{ID: "detail", Kind: KindLabel, Importance: 8},
			{ID: "compare", Kind: KindButton, Text: "Compare", Importance: 3},
			{ID: "zoom", Kind: KindRange, Min: 1, Max: 10, Value: 5, Importance: 1},
		},
		Relations: []Relation{
			{Kind: RelLabels, From: "title", To: "products"},
			{Kind: RelDetails, From: "products", To: "detail"},
			{Kind: RelOrder, Members: []string{"title", "categories", "products", "detail", "compare", "zoom"}},
		},
		Requires: []string{"ui.SelectionDevice"},
	}
}

func TestValidDescription(t *testing.T) {
	if err := shopUI().Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
}

func TestValidationErrors(t *testing.T) {
	cases := []struct {
		mutate func(*Description)
		want   error
	}{
		{func(d *Description) { d.Controls = nil }, ErrNoControls},
		{func(d *Description) { d.Controls[1].ID = "title" }, ErrDuplicateID},
		{func(d *Description) { d.Controls[0].ID = "" }, ErrMissingID},
		{func(d *Description) { d.Controls[0].Kind = "blinkenlights" }, ErrBadKind},
		{func(d *Description) { d.Controls[5].Max = 0 }, ErrBadRange},
		{func(d *Description) { d.Relations[0].To = "ghost" }, ErrUnknownRef},
		{func(d *Description) { d.Relations[2].Members[0] = "ghost" }, ErrUnknownRef},
	}
	for i, c := range cases {
		d := shopUI()
		c.mutate(d)
		if err := d.Validate(); !errors.Is(err, c.want) {
			t.Errorf("case %d: Validate = %v, want %v", i, err, c.want)
		}
	}
}

func TestJSONRoundTrip(t *testing.T) {
	d := shopUI()
	b, err := d.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Unmarshal(b)
	if err != nil {
		t.Fatal(err)
	}
	if got.Title != d.Title || len(got.Controls) != len(d.Controls) || len(got.Relations) != len(d.Relations) {
		t.Errorf("round trip mismatch: %+v", got)
	}
	c, ok := got.Control("zoom")
	if !ok || c.Min != 1 || c.Max != 10 {
		t.Errorf("zoom control = %+v, %v", c, ok)
	}
	if _, err := Unmarshal([]byte("{}")); !errors.Is(err, ErrNoControls) {
		t.Errorf("empty description error = %v", err)
	}
	if _, err := Unmarshal([]byte("not json")); err == nil {
		t.Error("garbage accepted")
	}
}

func TestControlLookup(t *testing.T) {
	d := shopUI()
	if _, ok := d.Control("products"); !ok {
		t.Error("products not found")
	}
	if _, ok := d.Control("nope"); ok {
		t.Error("phantom control found")
	}
}

func TestAllRequires(t *testing.T) {
	d := shopUI()
	d.Controls[0].Requires = []string{"ui.ScreenDevice"}
	d.Controls[1].Requires = []string{"ui.SelectionDevice"} // duplicate of top-level
	reqs := d.AllRequires()
	set := make(map[string]bool)
	for _, r := range reqs {
		if set[r] {
			t.Errorf("duplicate requirement %s", r)
		}
		set[r] = true
	}
	if !set["ui.ScreenDevice"] || !set["ui.SelectionDevice"] {
		t.Errorf("requires = %v", reqs)
	}
}

func TestPropertyValidDescriptionsRoundTrip(t *testing.T) {
	prop := func(n uint8, title string) bool {
		count := int(n%8) + 1
		d := &Description{Title: title}
		for i := 0; i < count; i++ {
			d.Controls = append(d.Controls, Control{
				ID:   string(rune('a' + i)),
				Kind: KindLabel,
				Text: title,
			})
		}
		if d.Validate() != nil {
			return false
		}
		b, err := d.Marshal()
		if err != nil {
			return false
		}
		got, err := Unmarshal(b)
		return err == nil && len(got.Controls) == count && got.Title == title
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
