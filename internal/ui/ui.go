// Package ui defines the device-independent presentation model of
// AlfredO (paper §3.3): a user interface is described with abstract
// controls and relationships — never pixel layouts — plus the input
// capabilities it requires. Each client platform renders the same
// description with whatever hardware it has (package render).
//
// A Description is pure data: it serializes to JSON, ships inside the
// service descriptor, and is safe to interpret from untrusted sources —
// the sandbox-security property of §3.2 ("only a passive description of
// the UI is retrieved ... and no computation takes place on the actual
// phone").
package ui

import (
	"encoding/json"
	"errors"
	"fmt"
)

// Kind enumerates abstract control types.
type Kind string

// Abstract control kinds.
const (
	KindLabel     Kind = "label"     // read-only text
	KindButton    Kind = "button"    // momentary action
	KindTextInput Kind = "textinput" // free text entry (requires KeyboardDevice)
	KindList      Kind = "list"      // selectable item collection
	KindChoice    Kind = "choice"    // one-of-n selection
	KindRange     Kind = "range"     // bounded numeric value (slider/knob)
	KindImage     Kind = "image"     // pixel content (e.g. screen snapshots)
	KindProgress  Kind = "progress"  // read-only completion indicator
	KindPad       Kind = "pad"       // 2D directional input (requires PointingDevice)
)

// Control is one abstract UI element. Importance guides constrained
// renderers: controls with lower Importance are dropped first on small
// screens.
type Control struct {
	ID   string `json:"id"`
	Kind Kind   `json:"kind"`
	// Text is the label / caption.
	Text string `json:"text,omitempty"`
	// Value is the initial value (type depends on Kind).
	Value any `json:"value,omitempty"`
	// Items populates list and choice controls.
	Items []string `json:"items,omitempty"`
	// Min and Max bound range controls.
	Min int `json:"min,omitempty"`
	Max int `json:"max,omitempty"`
	// Requires lists capability interfaces this control needs (see
	// package device); empty means displayable everywhere.
	Requires []string `json:"requires,omitempty"`
	// Importance orders controls under space pressure (higher = keep).
	Importance int `json:"importance,omitempty"`
	// Hints carries renderer-specific advice ("monospace", "wide", …).
	Hints map[string]string `json:"hints,omitempty"`
	// Validate declares input constraints every renderer enforces on
	// change events (the XForms-style validation of §3.2).
	Validate Validation `json:"validate,omitempty"`
}

// RelationKind enumerates relationship types between controls.
type RelationKind string

// Relationship kinds: the abstract alternative to pixel layouts.
const (
	// RelLabels: From is the caption of To.
	RelLabels RelationKind = "labels"
	// RelGroup: Members belong together (rendered adjacently).
	RelGroup RelationKind = "group"
	// RelOrder: Members appear in the given sequence.
	RelOrder RelationKind = "order"
	// RelDetails: To shows detail for the selection in From.
	RelDetails RelationKind = "details"
)

// Relation expresses structure between controls.
type Relation struct {
	Kind    RelationKind `json:"kind"`
	From    string       `json:"from,omitempty"`
	To      string       `json:"to,omitempty"`
	Members []string     `json:"members,omitempty"`
	Name    string       `json:"name,omitempty"`
}

// Description is a complete abstract user interface.
type Description struct {
	Title     string     `json:"title"`
	Controls  []Control  `json:"controls"`
	Relations []Relation `json:"relations,omitempty"`
	// Requires lists capabilities the interaction as a whole needs.
	Requires []string `json:"requires,omitempty"`
}

// Validation errors.
var (
	ErrNoControls  = errors.New("ui: description has no controls")
	ErrDuplicateID = errors.New("ui: duplicate control id")
	ErrUnknownRef  = errors.New("ui: relation references unknown control")
	ErrBadKind     = errors.New("ui: unknown control kind")
	ErrBadRange    = errors.New("ui: range control needs min < max")
	ErrMissingID   = errors.New("ui: control without id")
)

var validKinds = map[Kind]bool{
	KindLabel: true, KindButton: true, KindTextInput: true, KindList: true,
	KindChoice: true, KindRange: true, KindImage: true, KindProgress: true,
	KindPad: true,
}

// Validate checks structural soundness of the description.
func (d *Description) Validate() error {
	if len(d.Controls) == 0 {
		return ErrNoControls
	}
	ids := make(map[string]bool, len(d.Controls))
	for _, c := range d.Controls {
		if c.ID == "" {
			return ErrMissingID
		}
		if ids[c.ID] {
			return fmt.Errorf("%w: %s", ErrDuplicateID, c.ID)
		}
		ids[c.ID] = true
		if !validKinds[c.Kind] {
			return fmt.Errorf("%w: %q on %s", ErrBadKind, c.Kind, c.ID)
		}
		if c.Kind == KindRange && c.Min >= c.Max {
			return fmt.Errorf("%w: %s has [%d,%d]", ErrBadRange, c.ID, c.Min, c.Max)
		}
	}
	check := func(ref string) error {
		if ref != "" && !ids[ref] {
			return fmt.Errorf("%w: %s", ErrUnknownRef, ref)
		}
		return nil
	}
	for _, r := range d.Relations {
		if err := check(r.From); err != nil {
			return err
		}
		if err := check(r.To); err != nil {
			return err
		}
		for _, m := range r.Members {
			if err := check(m); err != nil {
				return err
			}
		}
	}
	return nil
}

// Control returns the control with the given id.
func (d *Description) Control(id string) (Control, bool) {
	for _, c := range d.Controls {
		if c.ID == id {
			return c, true
		}
	}
	return Control{}, false
}

// AllRequires returns the union of description-level and per-control
// capability requirements.
func (d *Description) AllRequires() []string {
	set := make(map[string]bool)
	for _, r := range d.Requires {
		set[r] = true
	}
	for _, c := range d.Controls {
		for _, r := range c.Requires {
			set[r] = true
		}
	}
	out := make([]string, 0, len(set))
	for r := range set {
		out = append(out, r)
	}
	return out
}

// Marshal serializes the description to JSON.
func (d *Description) Marshal() ([]byte, error) {
	b, err := json.Marshal(d)
	if err != nil {
		return nil, fmt.Errorf("ui: marshaling description %q: %w", d.Title, err)
	}
	return b, nil
}

// Unmarshal parses and validates a description.
func Unmarshal(b []byte) (*Description, error) {
	var d Description
	if err := json.Unmarshal(b, &d); err != nil {
		return nil, fmt.Errorf("ui: parsing description: %w", err)
	}
	if err := d.Validate(); err != nil {
		return nil, err
	}
	return &d, nil
}

// EventKind enumerates interaction events flowing from a View to the
// Controller.
type EventKind string

// UI event kinds.
const (
	EventPress  EventKind = "press"  // button activated
	EventChange EventKind = "change" // value changed (textinput, range, choice)
	EventSelect EventKind = "select" // list item selected
	EventMove   EventKind = "move"   // pad movement: Value is [dx, dy]
)

// Event is one user interaction on a rendered control.
type Event struct {
	Control string    `json:"control"`
	Kind    EventKind `json:"kind"`
	Value   any       `json:"value,omitempty"`
}
