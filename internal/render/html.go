package render

import (
	"bytes"
	"encoding/base64"
	"encoding/json"
	"fmt"
	"html"
	"net/http"
	"strconv"
	"strings"
	"time"

	"github.com/alfredo-mw/alfredo/internal/device"
	"github.com/alfredo-mw/alfredo/internal/ui"
)

// HTMLRenderer produces an HTML page plus a small polling script — the
// servlet/AJAX analog of §3.3 for platforms without a native toolkit
// (the paper demonstrates it on an iPhone, §5.2). The view implements
// http.Handler so it can be registered with the HTTP service as a
// servlet:
//
//	GET  /        the page
//	GET  /state   {"version": n, "controls": {...}} for the poll loop
//	POST /event   {"control": ..., "kind": ..., "value": ...}
type HTMLRenderer struct{}

var _ Renderer = (*HTMLRenderer)(nil)

// Name implements Renderer.
func (*HTMLRenderer) Name() string { return "html" }

// Render implements Renderer. Browsers scroll, so no space budget
// applies; capability filtering still does.
func (*HTMLRenderer) Render(desc *ui.Description, profile device.Profile) (View, error) {
	defer observeRender("html", time.Now())
	base, err := newBaseView(desc, profile, "html", 0)
	if err != nil {
		return nil, err
	}
	return &HTMLView{baseView: base}, nil
}

// HTMLView is the servlet-rendered view.
type HTMLView struct {
	*baseView
}

var _ View = (*HTMLView)(nil)
var _ http.Handler = (*HTMLView)(nil)

// Render returns the full HTML page.
func (v *HTMLView) Render() string {
	order, state := v.snapshot()
	var b strings.Builder
	b.WriteString("<!DOCTYPE html>\n<html><head><meta charset=\"utf-8\">")
	fmt.Fprintf(&b, "<title>%s</title>", html.EscapeString(v.desc.Title))
	b.WriteString(pollScript)
	b.WriteString("</head><body>\n")
	fmt.Fprintf(&b, "<h1>%s</h1>\n", html.EscapeString(v.desc.Title))
	for _, id := range order {
		ctrl, _ := v.desc.Control(id)
		v.renderControl(&b, ctrl, state[id])
	}
	b.WriteString("</body></html>\n")
	return b.String()
}

func (v *HTMLView) renderControl(b *strings.Builder, c ui.Control, props map[string]any) {
	eid := html.EscapeString(c.ID)
	text := html.EscapeString(str(props["text"]))
	val := str(props["value"])
	switch c.Kind {
	case ui.KindLabel:
		fmt.Fprintf(b, "<p id=%q data-kind=\"label\">%s %s</p>\n", eid, text, html.EscapeString(val))
	case ui.KindButton:
		fmt.Fprintf(b, "<button id=%q onclick=\"sendEvent('%s','press',null)\">%s</button>\n", eid, eid, text)
	case ui.KindTextInput:
		fmt.Fprintf(b, "<label>%s <input id=%q value=%q onchange=\"sendEvent('%s','change',this.value)\"></label>\n",
			text, eid, html.EscapeString(val), eid)
	case ui.KindList:
		fmt.Fprintf(b, "<ul id=%q data-kind=\"list\">\n", eid)
		if items, ok := props["items"].([]any); ok {
			for _, it := range items {
				item := html.EscapeString(str(it))
				fmt.Fprintf(b, "  <li onclick=\"sendEvent('%s','select','%s')\">%s</li>\n", eid, item, item)
			}
		}
		b.WriteString("</ul>\n")
	case ui.KindChoice:
		fmt.Fprintf(b, "<select id=%q onchange=\"sendEvent('%s','select',this.value)\">\n", eid, eid)
		if items, ok := props["items"].([]any); ok {
			for _, it := range items {
				item := html.EscapeString(str(it))
				sel := ""
				if str(it) == val {
					sel = " selected"
				}
				fmt.Fprintf(b, "  <option%s>%s</option>\n", sel, item)
			}
		}
		b.WriteString("</select>\n")
	case ui.KindRange:
		fmt.Fprintf(b, "<input type=\"range\" id=%q min=\"%d\" max=\"%d\" value=%q onchange=\"sendEvent('%s','change',Number(this.value))\">\n",
			eid, c.Min, c.Max, html.EscapeString(val), eid)
	case ui.KindImage:
		if data, ok := props["image"].([]byte); ok && isPNG(data) {
			fmt.Fprintf(b, "<img id=%q data-kind=\"image\" src=\"data:image/png;base64,%s\">\n",
				eid, base64.StdEncoding.EncodeToString(data))
		} else {
			fmt.Fprintf(b, "<div id=%q data-kind=\"image\">%s</div>\n", eid, html.EscapeString(describeImage(props["image"])))
		}
	case ui.KindProgress:
		fmt.Fprintf(b, "<progress id=%q max=\"100\" value=%q></progress>\n", eid, html.EscapeString(val))
	case ui.KindPad:
		fmt.Fprintf(b, "<div id=%q data-kind=\"pad\">", eid)
		for _, dir := range [...]struct{ label, dx, dy string }{
			{"←", "-1", "0"}, {"→", "1", "0"}, {"↑", "0", "-1"}, {"↓", "0", "1"},
		} {
			fmt.Fprintf(b, "<button onclick=\"sendEvent('%s','move',[%s,%s])\">%s</button>", eid, dir.dx, dir.dy, dir.label)
		}
		b.WriteString("</div>\n")
	}
}

// ServeHTTP implements the servlet endpoints.
func (v *HTMLView) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	switch {
	case r.Method == http.MethodGet && strings.HasSuffix(r.URL.Path, "/state"):
		v.serveState(w)
	case r.Method == http.MethodPost && strings.HasSuffix(r.URL.Path, "/event"):
		v.serveEvent(w, r)
	case r.Method == http.MethodGet:
		w.Header().Set("Content-Type", "text/html; charset=utf-8")
		_, _ = w.Write([]byte(v.Render()))
	default:
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
	}
}

func (v *HTMLView) serveState(w http.ResponseWriter) {
	_, state := v.snapshot()
	// Image bytes would bloat the JSON; replace with a size note.
	for _, props := range state {
		if img, ok := props["image"].([]byte); ok {
			props["image"] = fmt.Sprintf("bytes:%d", len(img))
		}
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(map[string]any{
		"version":  v.Version(),
		"controls": state,
	})
}

func (v *HTMLView) serveEvent(w http.ResponseWriter, r *http.Request) {
	var ev ui.Event
	if err := json.NewDecoder(r.Body).Decode(&ev); err != nil {
		http.Error(w, "bad event: "+err.Error(), http.StatusBadRequest)
		return
	}
	// JSON numbers arrive as float64; integerize for the wire domain.
	if f, ok := ev.Value.(float64); ok && f == float64(int64(f)) {
		ev.Value = int64(f)
	}
	if err := v.Inject(ev); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

// isPNG detects the PNG signature; PNG image values render as inline
// data URIs, anything else as a size note.
func isPNG(data []byte) bool {
	return bytes.HasPrefix(data, []byte{0x89, 'P', 'N', 'G', '\r', '\n', 0x1a, '\n'})
}

func str(v any) string {
	switch x := v.(type) {
	case nil:
		return ""
	case string:
		return x
	case int:
		return strconv.Itoa(x)
	case int64:
		return strconv.FormatInt(x, 10)
	case float64:
		return strconv.FormatFloat(x, 'g', -1, 64)
	default:
		return fmt.Sprint(v)
	}
}

// pollScript is the "AJAX" of 2008: poll /state, patch the DOM, and
// POST events back.
const pollScript = `<script>
function sendEvent(control, kind, value) {
  fetch('event', {method:'POST', headers:{'Content-Type':'application/json'},
    body: JSON.stringify({control:control, kind:kind, value:value})});
}
var lastVersion = -1;
function poll() {
  fetch('state').then(function(r){return r.json();}).then(function(s){
    if (s.version === lastVersion) return;
    lastVersion = s.version;
    for (var id in s.controls) {
      var el = document.getElementById(id);
      if (!el) continue;
      var p = s.controls[id];
      if (el.dataset.kind === 'label' && p.text !== undefined) {
        el.textContent = p.text + ' ' + (p.value === null || p.value === undefined ? '' : p.value);
      } else if ('value' in p && 'value' in el && p.value !== null) {
        el.value = p.value;
      }
    }
  }).catch(function(){});
}
setInterval(poll, 500);
</script>`
