package render

import (
	"encoding/json"
	"errors"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"github.com/alfredo-mw/alfredo/internal/device"
	"github.com/alfredo-mw/alfredo/internal/ui"
)

func shopDesc() *ui.Description {
	return &ui.Description{
		Title: "AlfredOShop",
		Controls: []ui.Control{
			{ID: "title", Kind: ui.KindLabel, Text: "Shop window", Importance: 5},
			{ID: "categories", Kind: ui.KindChoice, Text: "Category", Items: []string{"beds", "sofas"}, Importance: 9},
			{ID: "products", Kind: ui.KindList, Text: "Products", Importance: 10},
			{ID: "detail", Kind: ui.KindLabel, Text: "Detail", Importance: 8},
			{ID: "typing", Kind: ui.KindTextInput, Text: "Search", Requires: []string{string(device.KeyboardDevice)}, Importance: 4},
			{ID: "zoom", Kind: ui.KindRange, Text: "Zoom", Min: 0, Max: 10, Value: 5, Importance: 1},
		},
		Relations: []ui.Relation{
			{Kind: ui.RelOrder, Members: []string{"title", "categories", "products", "detail", "typing", "zoom"}},
			{Kind: ui.RelGroup, Name: "browse", Members: []string{"categories", "products"}},
		},
		Requires: []string{string(device.SelectionDevice)},
	}
}

func TestRegistrySelection(t *testing.T) {
	reg := NewRegistry()
	for _, name := range []string{"tree", "text", "html"} {
		if _, ok := reg.Lookup(name); !ok {
			t.Errorf("engine %s missing", name)
		}
	}
	engine, err := reg.ForProfile(device.Nokia9300i())
	if err != nil {
		t.Fatalf("ForProfile: %v", err)
	}
	if engine.Name() != "text" {
		t.Errorf("Nokia engine = %s, want text (first preference)", engine.Name())
	}
	engine, _ = reg.ForProfile(device.IPhone())
	if engine.Name() != "html" {
		t.Errorf("iPhone engine = %s, want html", engine.Name())
	}
	if _, err := reg.ForProfile(device.Profile{Name: "alien", Renderers: []string{"quantum"}}); !errors.Is(err, ErrNoRenderer) {
		t.Errorf("unknown renderer error = %v", err)
	}
}

func TestSameDescriptionRendersEverywhere(t *testing.T) {
	reg := NewRegistry()
	desc := shopDesc()
	for _, profile := range []device.Profile{
		device.Nokia9300i(), device.SonyEricssonM600i(), device.IPhone(), device.Notebook(),
	} {
		view, err := reg.Render(desc, profile)
		if err != nil {
			t.Errorf("render on %s: %v", profile.Name, err)
			continue
		}
		out := view.Render()
		if !strings.Contains(out, "AlfredOShop") {
			t.Errorf("%s output lacks title:\n%s", profile.Name, out)
		}
		_ = view.Close()
	}
}

func TestCapabilityFiltering(t *testing.T) {
	// A profile with no keyboard must drop the textinput control.
	noKeyboard := device.Profile{
		Name:    "kiosk",
		Display: device.Display{Width: 800, Height: 600, Orientation: device.Landscape},
		Inputs: []device.InputDevice{
			{Name: "Touch", Provides: []device.Capability{device.PointingDevice, device.SelectionDevice}},
		},
		Renderers: []string{"tree"},
	}
	view, err := NewRegistry().Render(shopDesc(), noKeyboard)
	if err != nil {
		t.Fatal(err)
	}
	rep := view.Report()
	if len(rep.DroppedCapability) != 1 || rep.DroppedCapability[0] != "typing" {
		t.Errorf("DroppedCapability = %v, want [typing]", rep.DroppedCapability)
	}
	if strings.Contains(view.Render(), "Search") {
		t.Error("dropped control still rendered")
	}
	// Events on dropped controls are rejected.
	if err := view.Inject(ui.Event{Control: "typing", Kind: ui.EventChange, Value: "x"}); err == nil {
		t.Error("event on dropped control accepted")
	}
	// Setting properties on dropped controls is a tolerated no-op.
	if err := view.SetProperty("typing", "text", "hi"); err != nil {
		t.Errorf("SetProperty on dropped control = %v", err)
	}
}

func TestSpaceShedding(t *testing.T) {
	// A tiny display sheds the lowest-importance controls.
	tiny := device.Profile{
		Name:    "watch",
		Display: device.Display{Width: 200, Height: 60, Orientation: device.Portrait},
		Inputs: []device.InputDevice{
			{Name: "Crown", Provides: []device.Capability{device.SelectionDevice, device.KeyboardDevice}},
		},
		Renderers: []string{"text"},
	}
	view, err := NewRegistry().Render(shopDesc(), tiny)
	if err != nil {
		t.Fatal(err)
	}
	rep := view.Report()
	if len(rep.DroppedSpace) == 0 {
		t.Fatal("nothing shed on a 60px display")
	}
	for _, dropped := range rep.DroppedSpace {
		if dropped == "products" || dropped == "categories" {
			t.Errorf("high-importance control %s shed before low-importance ones", dropped)
		}
	}
	// zoom (importance 1) must be the first to go.
	if rep.DroppedSpace[0] != "zoom" {
		t.Errorf("first shed control = %s, want zoom", rep.DroppedSpace[0])
	}
}

func TestImplementorReport(t *testing.T) {
	view, err := NewRegistry().Render(shopDesc(), device.Nokia9300i())
	if err != nil {
		t.Fatal(err)
	}
	rep := view.Report()
	if impl := rep.Implementors[string(device.SelectionDevice)]; impl != "CursorKeys" {
		t.Errorf("SelectionDevice implementor = %q, want CursorKeys", impl)
	}
}

func TestViewStateAndEvents(t *testing.T) {
	view, err := NewRegistry().Render(shopDesc(), device.Notebook())
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	var events []ui.Event
	view.OnEvent(func(ev ui.Event) {
		mu.Lock()
		events = append(events, ev)
		mu.Unlock()
	})

	if err := view.SetProperty("products", "items", []any{"bed-1", "bed-2"}); err != nil {
		t.Fatal(err)
	}
	if err := view.Inject(ui.Event{Control: "products", Kind: ui.EventSelect, Value: "bed-2"}); err != nil {
		t.Fatal(err)
	}
	if v, _ := view.Property("products", "value"); v != "bed-2" {
		t.Errorf("selection not reflected: %v", v)
	}
	mu.Lock()
	if len(events) != 1 || events[0].Value != "bed-2" {
		t.Errorf("events = %v", events)
	}
	mu.Unlock()

	// Event/kind mismatches are rejected.
	if err := view.Inject(ui.Event{Control: "title", Kind: ui.EventPress}); !errors.Is(err, ErrBadEvent) {
		t.Errorf("press on label = %v", err)
	}
	if err := view.Inject(ui.Event{Control: "ghost", Kind: ui.EventPress}); !errors.Is(err, ErrUnknownControl) {
		t.Errorf("unknown control = %v", err)
	}
	if err := view.SetProperty("ghost", "text", "x"); !errors.Is(err, ErrUnknownControl) {
		t.Errorf("SetProperty unknown control = %v", err)
	}

	if err := view.Close(); err != nil {
		t.Fatal(err)
	}
	if err := view.Inject(ui.Event{Control: "products", Kind: ui.EventSelect, Value: "x"}); !errors.Is(err, ErrViewClosed) {
		t.Errorf("Inject after close = %v", err)
	}
}

func TestTextRendererGeometry(t *testing.T) {
	desc := shopDesc()
	reg := NewRegistry()
	engine, _ := reg.Lookup("text")

	nokia, err := engine.Render(desc, device.Nokia9300i())
	if err != nil {
		t.Fatal(err)
	}
	m600i, err := engine.Render(desc, device.SonyEricssonM600i())
	if err != nil {
		t.Fatal(err)
	}
	nokiaLines := strings.Split(strings.TrimRight(nokia.Render(), "\n"), "\n")
	m600iLines := strings.Split(strings.TrimRight(m600i.Render(), "\n"), "\n")
	// Landscape Nokia lines are wider than portrait M600i lines.
	if len(nokiaLines[0]) <= len(m600iLines[0]) {
		t.Errorf("landscape width %d should exceed portrait width %d",
			len(nokiaLines[0]), len(m600iLines[0]))
	}
}

func TestTreeRendererOutput(t *testing.T) {
	engine, ok := NewRegistry().Lookup("tree")
	if !ok {
		t.Fatal("tree engine missing")
	}
	v, err := engine.Render(shopDesc(), device.SonyEricssonM600i())
	if err != nil {
		t.Fatal(err)
	}
	out := v.Render()
	for _, want := range []string{`Panel "AlfredOShop"`, `Container "browse"`, `ListBox "products"`, `Choice "categories"`} {
		if !strings.Contains(out, want) {
			t.Errorf("tree output missing %q:\n%s", want, out)
		}
	}
}

func TestHTMLViewServesAndAcceptsEvents(t *testing.T) {
	engine, _ := NewRegistry().Lookup("html")
	v, err := engine.Render(shopDesc(), device.IPhone())
	if err != nil {
		t.Fatal(err)
	}
	htmlView := v.(*HTMLView)

	// Page.
	rec := httptest.NewRecorder()
	htmlView.ServeHTTP(rec, httptest.NewRequest("GET", "/", nil))
	page := rec.Body.String()
	for _, want := range []string{"<h1>AlfredOShop</h1>", "sendEvent", "<select", "<ul"} {
		if !strings.Contains(page, want) {
			t.Errorf("page missing %q", want)
		}
	}

	// State endpoint.
	rec = httptest.NewRecorder()
	htmlView.ServeHTTP(rec, httptest.NewRequest("GET", "/state", nil))
	var state struct {
		Version  int64                     `json:"version"`
		Controls map[string]map[string]any `json:"controls"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &state); err != nil {
		t.Fatalf("state JSON: %v", err)
	}
	if _, ok := state.Controls["products"]; !ok {
		t.Error("state lacks products control")
	}

	// Event endpoint drives the view.
	var got []ui.Event
	var mu sync.Mutex
	htmlView.OnEvent(func(ev ui.Event) {
		mu.Lock()
		got = append(got, ev)
		mu.Unlock()
	})
	rec = httptest.NewRecorder()
	req := httptest.NewRequest("POST", "/event",
		strings.NewReader(`{"control":"zoom","kind":"change","value":7}`))
	htmlView.ServeHTTP(rec, req)
	if rec.Code != 204 {
		t.Fatalf("event POST = %d: %s", rec.Code, rec.Body.String())
	}
	mu.Lock()
	if len(got) != 1 || got[0].Value != int64(7) {
		t.Errorf("events = %v", got)
	}
	mu.Unlock()
	if v, _ := htmlView.Property("zoom", "value"); v != int64(7) {
		t.Errorf("zoom value = %v", v)
	}

	// Bad event rejected.
	rec = httptest.NewRecorder()
	htmlView.ServeHTTP(rec, httptest.NewRequest("POST", "/event", strings.NewReader("{bad")))
	if rec.Code != 400 {
		t.Errorf("bad event = %d", rec.Code)
	}

	// XSS: titles and items are escaped.
	evil := &ui.Description{
		Title:    "<script>alert(1)</script>",
		Controls: []ui.Control{{ID: "l", Kind: ui.KindLabel, Text: "<b>bold</b>"}},
	}
	ev2, err := engine.Render(evil, device.IPhone())
	if err != nil {
		t.Fatal(err)
	}
	page2 := ev2.Render()
	if strings.Contains(page2, "<script>alert") || strings.Contains(page2, "<b>bold</b>") {
		t.Error("HTML output not escaped")
	}
}

func TestVersionIncrements(t *testing.T) {
	engine, _ := NewRegistry().Lookup("html")
	v, _ := engine.Render(shopDesc(), device.IPhone())
	hv := v.(*HTMLView)
	v0 := hv.Version()
	_ = hv.SetProperty("detail", "text", "new detail")
	if hv.Version() <= v0 {
		t.Error("version did not increase on SetProperty")
	}
}

func TestInputValidationEnforcedByViews(t *testing.T) {
	desc := &ui.Description{
		Title: "validated",
		Controls: []ui.Control{
			{ID: "qty", Kind: ui.KindTextInput, Text: "Quantity",
				Validate: ui.Validation{Required: true, Numeric: true}},
		},
	}
	// Every engine enforces the same shipped constraints.
	for _, name := range []string{"tree", "text", "html"} {
		engine, _ := NewRegistry().Lookup(name)
		view, err := engine.Render(desc, device.Notebook())
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if err := view.Inject(ui.Event{Control: "qty", Kind: ui.EventChange, Value: "abc"}); !errors.Is(err, ui.ErrValidation) {
			t.Errorf("%s: non-numeric accepted: %v", name, err)
		}
		if v, ok := view.Property("qty", "value"); ok && v == "abc" {
			t.Errorf("%s: rejected value reached state", name)
		}
		if err := view.Inject(ui.Event{Control: "qty", Kind: ui.EventChange, Value: "3"}); err != nil {
			t.Errorf("%s: valid value rejected: %v", name, err)
		}
		if v, _ := view.Property("qty", "value"); v != "3" {
			t.Errorf("%s: valid value not applied: %v", name, v)
		}
		_ = view.Close()
	}
}

func TestHTMLImageDataURI(t *testing.T) {
	// A tiny valid PNG (1x1 transparent pixel) must render as an <img>
	// data URI; non-PNG bytes fall back to a size note.
	png1x1 := []byte{
		0x89, 'P', 'N', 'G', '\r', '\n', 0x1a, '\n',
		0, 0, 0, 13, 'I', 'H', 'D', 'R', 0, 0, 0, 1, 0, 0, 0, 1,
		8, 6, 0, 0, 0, 0x1f, 0x15, 0xc4, 0x89,
	}
	desc := &ui.Description{
		Title:    "img",
		Controls: []ui.Control{{ID: "shot", Kind: ui.KindImage}},
	}
	engine, _ := NewRegistry().Lookup("html")
	view, err := engine.Render(desc, device.IPhone())
	if err != nil {
		t.Fatal(err)
	}
	_ = view.SetProperty("shot", "image", png1x1)
	if out := view.Render(); !strings.Contains(out, "data:image/png;base64,") {
		t.Errorf("PNG not inlined:\n%s", out)
	}
	_ = view.SetProperty("shot", "image", []byte{1, 2, 3})
	if out := view.Render(); strings.Contains(out, "data:image/png") {
		t.Error("non-PNG bytes inlined as PNG")
	}
}
