package render

import (
	"fmt"
	"strings"
	"time"

	"github.com/alfredo-mw/alfredo/internal/device"
	"github.com/alfredo-mw/alfredo/internal/ui"
)

// TreeRenderer produces a headless widget tree — the AWT-panel analog.
// Its Render output is a deterministic, indented dump of the widget
// hierarchy, which makes it the engine of choice for tests and for
// platforms driven programmatically.
type TreeRenderer struct{}

var _ Renderer = (*TreeRenderer)(nil)

// Name implements Renderer.
func (*TreeRenderer) Name() string { return "tree" }

// Render implements Renderer. The tree engine imposes no space budget:
// like a scrollable widget container, it shows every capability-
// compatible control.
func (*TreeRenderer) Render(desc *ui.Description, profile device.Profile) (View, error) {
	defer observeRender("tree", time.Now())
	base, err := newBaseView(desc, profile, "tree", 0)
	if err != nil {
		return nil, err
	}
	return &treeView{baseView: base}, nil
}

type treeView struct {
	*baseView
}

// Render dumps the widget tree: groups become nested containers,
// remaining controls hang off the root panel.
func (v *treeView) Render() string {
	order, state := v.snapshot()

	groups := make(map[string]string) // control -> group name
	groupOrder := make([]string, 0)
	for _, rel := range v.desc.Relations {
		if rel.Kind != ui.RelGroup {
			continue
		}
		name := rel.Name
		if name == "" {
			name = "group"
		}
		if !contains(groupOrder, name) {
			groupOrder = append(groupOrder, name)
		}
		for _, m := range rel.Members {
			groups[m] = name
		}
	}

	var b strings.Builder
	fmt.Fprintf(&b, "Panel %q [%s/%s]\n", v.desc.Title, v.profile.Name, "tree")
	printed := make(map[string]bool)
	for _, id := range order {
		if printed[id] {
			continue
		}
		g, grouped := groups[id]
		if !grouped {
			v.printControl(&b, 1, id, state[id])
			printed[id] = true
			continue
		}
		fmt.Fprintf(&b, "  Container %q\n", g)
		for _, mid := range order {
			if groups[mid] == g && !printed[mid] {
				v.printControl(&b, 2, mid, state[mid])
				printed[mid] = true
			}
		}
	}
	return b.String()
}

func (v *treeView) printControl(b *strings.Builder, depth int, id string, props map[string]any) {
	ctrl, _ := v.desc.Control(id)
	indent := strings.Repeat("  ", depth)
	fmt.Fprintf(b, "%s%s %q", indent, widgetName(ctrl.Kind), id)
	if t, _ := props["text"].(string); t != "" {
		fmt.Fprintf(b, " text=%q", t)
	}
	if val, ok := props["value"]; ok && val != nil {
		fmt.Fprintf(b, " value=%v", val)
	}
	if items, ok := props["items"].([]any); ok && len(items) > 0 {
		keys := make([]string, len(items))
		for i, it := range items {
			keys[i] = fmt.Sprint(it)
		}
		fmt.Fprintf(b, " items=[%s]", strings.Join(keys, ", "))
	}
	b.WriteByte('\n')
}

func widgetName(k ui.Kind) string {
	switch k {
	case ui.KindLabel:
		return "Label"
	case ui.KindButton:
		return "Button"
	case ui.KindTextInput:
		return "TextField"
	case ui.KindList:
		return "ListBox"
	case ui.KindChoice:
		return "Choice"
	case ui.KindRange:
		return "Slider"
	case ui.KindImage:
		return "Canvas"
	case ui.KindProgress:
		return "ProgressBar"
	case ui.KindPad:
		return "DirectionPad"
	default:
		return string(k)
	}
}

func contains(ss []string, s string) bool {
	for _, x := range ss {
		if x == s {
			return true
		}
	}
	return false
}
