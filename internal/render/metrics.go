package render

import (
	"time"

	"github.com/alfredo-mw/alfredo/internal/obs"
)

// observeRender times one engine Render call on the process-wide hub
// (views are built for whatever node asked; there is no per-view hub).
// Use as `defer observeRender("tree", time.Now())` — the start time is
// captured when the defer is registered.
func observeRender(engine string, start time.Time) {
	obs.Default().Metrics.Histogram("alfredo_render_render_seconds", "engine", engine).
		ObserveSince(start)
}

// injectHistogram resolves the per-engine event-injection latency
// histogram once per view, so the per-event cost is an atomic add.
func injectHistogram(engine string) *obs.Histogram {
	return obs.Default().Metrics.Histogram("alfredo_render_inject_seconds", "engine", engine)
}
