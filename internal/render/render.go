// Package render turns abstract UI descriptions (package ui) into
// concrete views on a given device profile — the Renderer of paper
// §3.3. Three engines model the paper's rendering paths:
//
//   - "tree": a headless widget tree, the AWT-panel analog, fully
//     inspectable from code (used by tests and the M600i profile).
//   - "text": a character-cell renderer honoring display size and
//     orientation, the eRCP/SWT-on-communicator analog.
//   - "html": an HTML + polling-JavaScript page served through the
//     HTTP service, the servlet/AJAX analog for browser-only clients
//     such as the 2008 iPhone.
//
// All engines render the SAME description; controls whose capability
// requirements the device cannot satisfy are dropped (and reported),
// and low-importance controls are shed when the display is too small —
// the paper's device-independence story made testable.
package render

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"github.com/alfredo-mw/alfredo/internal/device"
	"github.com/alfredo-mw/alfredo/internal/obs"
	"github.com/alfredo-mw/alfredo/internal/ui"
)

// Renderer errors.
var (
	ErrUnknownControl  = errors.New("render: unknown control")
	ErrUnknownRenderer = errors.New("render: no such renderer")
	ErrNoRenderer      = errors.New("render: no renderer suits the device profile")
	ErrViewClosed      = errors.New("render: view closed")
	ErrBadEvent        = errors.New("render: event does not fit control")
	ErrControlDisabled = errors.New("render: control disabled")
)

// PropEnabled is the control property the enabled-gate reads: setting
// it to false makes the view reject injected events for that control
// with ErrControlDisabled. The core layer uses it to degrade a UI
// whose target device is unreachable instead of letting interactions
// wedge on a dead link.
const PropEnabled = "enabled"

// View is a rendered user interface instance: the application's View in
// the MVC of Figure 2. It is safe for concurrent use.
type View interface {
	// Description returns the abstract description the view renders.
	Description() *ui.Description
	// SetProperty updates a control property ("text", "value", "items",
	// "image", …); the visual representation changes accordingly.
	SetProperty(controlID, property string, value any) error
	// Property reads a control property.
	Property(controlID, property string) (any, bool)
	// Inject delivers a user interaction to the view, as if the user
	// had operated the physical input device. The view updates its
	// state and forwards the event to the OnEvent sink.
	Inject(ev ui.Event) error
	// OnEvent registers the controller-facing event sink.
	OnEvent(fn func(ui.Event))
	// Render returns the current concrete representation (text screen,
	// HTML page, or tree dump, depending on the engine).
	Render() string
	// Report describes how the abstract UI was adapted to the device.
	Report() AdaptationReport
	// Close releases the view.
	Close() error
}

// AdaptationReport records how a description was fitted to a device.
type AdaptationReport struct {
	Renderer string
	Device   string
	// Shown lists rendered control ids in display order.
	Shown []string
	// DroppedCapability lists controls dropped for missing capabilities.
	DroppedCapability []string
	// DroppedSpace lists controls shed for lack of display space.
	DroppedSpace []string
	// Implementors maps required capabilities to the input device
	// chosen to implement them (e.g. PointingDevice -> CursorKeys).
	Implementors map[string]string
}

// Renderer builds views of abstract descriptions on a device profile.
type Renderer interface {
	Name() string
	Render(desc *ui.Description, profile device.Profile) (View, error)
}

// Registry maps renderer names to engines.
type Registry struct {
	mu      sync.RWMutex
	engines map[string]Renderer
}

// NewRegistry creates a registry preloaded with the three stock
// engines.
func NewRegistry() *Registry {
	r := &Registry{engines: make(map[string]Renderer)}
	r.Register(&TreeRenderer{})
	r.Register(&TextRenderer{})
	r.Register(&HTMLRenderer{})
	return r
}

// Register adds an engine (replacing any previous one of that name).
func (r *Registry) Register(engine Renderer) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.engines[engine.Name()] = engine
}

// Lookup returns the engine with the given name.
func (r *Registry) Lookup(name string) (Renderer, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	e, ok := r.engines[name]
	return e, ok
}

// ForProfile selects the first engine in the profile's renderer
// preference list that is registered.
func (r *Registry) ForProfile(profile device.Profile) (Renderer, error) {
	for _, name := range profile.Renderers {
		if e, ok := r.Lookup(name); ok {
			return e, nil
		}
	}
	return nil, fmt.Errorf("%w: %s wants %v", ErrNoRenderer, profile.Name, profile.Renderers)
}

// Render picks the engine for the profile and renders.
func (r *Registry) Render(desc *ui.Description, profile device.Profile) (View, error) {
	engine, err := r.ForProfile(profile)
	if err != nil {
		return nil, err
	}
	return engine.Render(desc, profile)
}

// baseView carries the engine-independent state machinery.
type baseView struct {
	desc    *ui.Description
	profile device.Profile
	report  AdaptationReport

	mu      sync.Mutex
	state   map[string]map[string]any // control -> property -> value
	order   []string                  // display order of shown controls
	sink    func(ui.Event)
	version int64
	closed  bool

	injectHist *obs.Histogram
}

// newBaseView adapts the description to the profile: capability
// filtering, ordering, and (given a row budget > 0) space shedding.
func newBaseView(desc *ui.Description, profile device.Profile, rendererName string, rowBudget int) (*baseView, error) {
	if err := desc.Validate(); err != nil {
		return nil, err
	}
	v := &baseView{
		desc:       desc,
		profile:    profile,
		state:      make(map[string]map[string]any, len(desc.Controls)),
		injectHist: injectHistogram(rendererName),
	}
	v.report = AdaptationReport{
		Renderer:     rendererName,
		Device:       profile.Name,
		Implementors: make(map[string]string),
	}
	for _, req := range desc.AllRequires() {
		if impl, ok := profile.ImplementorFor(device.Capability(req)); ok {
			v.report.Implementors[req] = impl
		}
	}

	// Capability filtering.
	var kept []ui.Control
	for _, c := range desc.Controls {
		if ok, _ := profile.Satisfies(c.Requires); !ok {
			v.report.DroppedCapability = append(v.report.DroppedCapability, c.ID)
			continue
		}
		kept = append(kept, c)
	}

	// Ordering: an explicit RelOrder wins; otherwise declaration order.
	orderIndex := make(map[string]int, len(kept))
	for i, c := range kept {
		orderIndex[c.ID] = i + 1000 // after any explicit ordering
	}
	for _, rel := range desc.Relations {
		if rel.Kind == ui.RelOrder {
			for i, id := range rel.Members {
				if _, shown := orderIndex[id]; shown {
					orderIndex[id] = i
				}
			}
		}
	}
	sort.SliceStable(kept, func(i, j int) bool {
		return orderIndex[kept[i].ID] < orderIndex[kept[j].ID]
	})

	// Space shedding: drop lowest-importance controls beyond the budget.
	if rowBudget > 0 && len(kept) > rowBudget {
		byImportance := make([]ui.Control, len(kept))
		copy(byImportance, kept)
		sort.SliceStable(byImportance, func(i, j int) bool {
			return byImportance[i].Importance < byImportance[j].Importance
		})
		drop := make(map[string]bool)
		for _, c := range byImportance[:len(kept)-rowBudget] {
			drop[c.ID] = true
			v.report.DroppedSpace = append(v.report.DroppedSpace, c.ID)
		}
		var fitted []ui.Control
		for _, c := range kept {
			if !drop[c.ID] {
				fitted = append(fitted, c)
			}
		}
		kept = fitted
	}

	for _, c := range kept {
		v.order = append(v.order, c.ID)
		v.report.Shown = append(v.report.Shown, c.ID)
		props := map[string]any{
			"text":  c.Text,
			"value": c.Value,
		}
		if len(c.Items) > 0 {
			items := make([]any, len(c.Items))
			for i, it := range c.Items {
				items[i] = it
			}
			props["items"] = items
		}
		v.state[c.ID] = props
	}
	return v, nil
}

func (v *baseView) Description() *ui.Description { return v.desc }

func (v *baseView) Report() AdaptationReport { return v.report }

func (v *baseView) SetProperty(controlID, property string, value any) error {
	v.mu.Lock()
	defer v.mu.Unlock()
	if v.closed {
		return ErrViewClosed
	}
	props, ok := v.state[controlID]
	if !ok {
		if _, exists := v.desc.Control(controlID); exists {
			// Dropped during adaptation: setting properties is a no-op
			// rather than an error, so controllers stay portable.
			return nil
		}
		return fmt.Errorf("%w: %s", ErrUnknownControl, controlID)
	}
	props[property] = value
	v.version++
	return nil
}

func (v *baseView) Property(controlID, property string) (any, bool) {
	v.mu.Lock()
	defer v.mu.Unlock()
	props, ok := v.state[controlID]
	if !ok {
		return nil, false
	}
	val, ok := props[property]
	return val, ok
}

func (v *baseView) OnEvent(fn func(ui.Event)) {
	v.mu.Lock()
	defer v.mu.Unlock()
	v.sink = fn
}

// Inject validates the event against the control kind, applies state
// changes, and forwards to the sink.
func (v *baseView) Inject(ev ui.Event) error {
	defer v.injectHist.ObserveSince(time.Now())
	v.mu.Lock()
	if v.closed {
		v.mu.Unlock()
		return ErrViewClosed
	}
	ctrl, exists := v.desc.Control(ev.Control)
	if !exists {
		v.mu.Unlock()
		return fmt.Errorf("%w: %s", ErrUnknownControl, ev.Control)
	}
	if _, shown := v.state[ev.Control]; !shown {
		v.mu.Unlock()
		return fmt.Errorf("%w: %s was dropped during adaptation", ErrUnknownControl, ev.Control)
	}
	if en, set := v.state[ev.Control][PropEnabled]; set && en == false {
		v.mu.Unlock()
		return fmt.Errorf("%w: %s", ErrControlDisabled, ev.Control)
	}
	if err := checkEventFits(ctrl, ev); err != nil {
		v.mu.Unlock()
		return err
	}
	// Declarative input validation: a rejected change never reaches the
	// view state or the controller.
	if ev.Kind == ui.EventChange && !ctrl.Validate.Zero() {
		if err := ctrl.Validate.Check(ev.Value); err != nil {
			v.mu.Unlock()
			return fmt.Errorf("render: %s: %w", ctrl.ID, err)
		}
	}
	switch ev.Kind {
	case ui.EventChange, ui.EventSelect:
		v.state[ev.Control]["value"] = ev.Value
		v.version++
	case ui.EventPress, ui.EventMove:
		// Momentary events carry no persistent state.
	}
	sink := v.sink
	v.mu.Unlock()

	if sink != nil {
		sink(ev)
	}
	return nil
}

func (v *baseView) Close() error {
	v.mu.Lock()
	defer v.mu.Unlock()
	v.closed = true
	return nil
}

// Version returns a counter incremented on every visible state change;
// the HTML engine's polling uses it.
func (v *baseView) Version() int64 {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.version
}

// snapshotOrder returns the display order and a deep-enough copy of the
// state for rendering without holding the lock.
func (v *baseView) snapshot() ([]string, map[string]map[string]any) {
	v.mu.Lock()
	defer v.mu.Unlock()
	order := make([]string, len(v.order))
	copy(order, v.order)
	state := make(map[string]map[string]any, len(v.state))
	for id, props := range v.state {
		cp := make(map[string]any, len(props))
		for k, val := range props {
			cp[k] = val
		}
		state[id] = cp
	}
	return order, state
}

func checkEventFits(c ui.Control, ev ui.Event) error {
	allowed := map[ui.Kind][]ui.EventKind{
		ui.KindButton:    {ui.EventPress},
		ui.KindTextInput: {ui.EventChange},
		ui.KindList:      {ui.EventSelect},
		ui.KindChoice:    {ui.EventSelect, ui.EventChange},
		ui.KindRange:     {ui.EventChange},
		ui.KindPad:       {ui.EventMove, ui.EventPress},
	}
	kinds, interactive := allowed[c.Kind]
	if !interactive {
		return fmt.Errorf("%w: %s control %q is not interactive", ErrBadEvent, c.Kind, c.ID)
	}
	for _, k := range kinds {
		if k == ev.Kind {
			return nil
		}
	}
	return fmt.Errorf("%w: %s on %s control %q", ErrBadEvent, ev.Kind, c.Kind, c.ID)
}
