package render

import (
	"fmt"
	"strings"
	"time"

	"github.com/alfredo-mw/alfredo/internal/device"
	"github.com/alfredo-mw/alfredo/internal/ui"
)

// TextRenderer draws a character-cell screen honoring the device's
// display geometry — the eRCP/SWT-on-communicator analog. A landscape
// Nokia 9300i and a portrait M600i render the same description into
// visibly different screens (paper §5.2: "the output interface is
// adapted accordingly").
type TextRenderer struct{}

var _ Renderer = (*TextRenderer)(nil)

// Cell geometry: a character cell approximates 8x10 pixels of a 2008
// phone display.
const (
	cellWidth  = 8
	cellHeight = 10
)

// Name implements Renderer.
func (*TextRenderer) Name() string { return "text" }

// Render implements Renderer. The row budget derives from the display
// height; low-importance controls are shed when they do not fit.
func (*TextRenderer) Render(desc *ui.Description, profile device.Profile) (View, error) {
	defer observeRender("text", time.Now())
	rows := profile.Display.Height / cellHeight
	// Title and frame take three rows; every control needs at least one.
	budget := rows - 3
	if budget < 1 {
		budget = 1
	}
	base, err := newBaseView(desc, profile, "text", budget)
	if err != nil {
		return nil, err
	}
	return &textView{baseView: base, cols: profile.Display.Width / cellWidth}, nil
}

type textView struct {
	*baseView
	cols int
}

// Render draws the screen: a frame, the title, and one line (or more
// for lists) per control, clipped to the column budget.
func (v *textView) Render() string {
	order, state := v.snapshot()
	width := v.cols
	if width < 16 {
		width = 16
	}
	inner := width - 2

	var b strings.Builder
	line := func(s string) {
		if len(s) > inner {
			s = s[:inner-1] + "…"
		}
		fmt.Fprintf(&b, "|%-*s|\n", inner, s)
	}
	b.WriteString("+" + strings.Repeat("-", inner) + "+\n")
	line(center(v.desc.Title, inner))
	for _, id := range order {
		ctrl, _ := v.desc.Control(id)
		props := state[id]
		text, _ := props["text"].(string)
		switch ctrl.Kind {
		case ui.KindLabel:
			line(text)
			if val, ok := props["value"]; ok && val != nil {
				line("  " + fmt.Sprint(val))
			}
		case ui.KindButton:
			line("[ " + text + " ]")
		case ui.KindTextInput:
			line(text + ": " + fmt.Sprint(orEmpty(props["value"])) + "_")
		case ui.KindList:
			line(text + ":")
			if items, ok := props["items"].([]any); ok {
				sel := props["value"]
				for _, it := range items {
					marker := "  "
					if sel != nil && fmt.Sprint(it) == fmt.Sprint(sel) {
						marker = "> "
					}
					line(marker + fmt.Sprint(it))
				}
			}
		case ui.KindChoice:
			choice := fmt.Sprint(orEmpty(props["value"]))
			line(text + " <" + choice + ">")
		case ui.KindRange:
			line(renderGauge(text, props["value"], ctrl.Min, ctrl.Max, inner))
		case ui.KindImage:
			if img, ok := props["image"]; ok && img != nil {
				line("(image: " + describeImage(img) + ")")
			} else {
				line("(no image)")
			}
		case ui.KindProgress:
			line(renderGauge(text, props["value"], 0, 100, inner))
		case ui.KindPad:
			line("< " + text + " (pad) >")
		}
	}
	b.WriteString("+" + strings.Repeat("-", inner) + "+\n")
	return b.String()
}

func center(s string, w int) string {
	if len(s) >= w {
		return s
	}
	pad := (w - len(s)) / 2
	return strings.Repeat(" ", pad) + s
}

func orEmpty(v any) any {
	if v == nil {
		return ""
	}
	return v
}

func renderGauge(label string, value any, min, max, width int) string {
	val := 0
	switch x := value.(type) {
	case int:
		val = x
	case int64:
		val = int(x)
	case float64:
		val = int(x)
	}
	if max <= min {
		max = min + 1
	}
	if val < min {
		val = min
	}
	if val > max {
		val = max
	}
	barWidth := width / 3
	if barWidth < 4 {
		barWidth = 4
	}
	filled := (val - min) * barWidth / (max - min)
	return fmt.Sprintf("%s [%s%s] %d", label,
		strings.Repeat("#", filled), strings.Repeat(".", barWidth-filled), val)
}

func describeImage(img any) string {
	switch x := img.(type) {
	case []byte:
		return fmt.Sprintf("%d bytes", len(x))
	case string:
		if len(x) > 16 {
			return fmt.Sprintf("%d chars", len(x))
		}
		return x
	default:
		return fmt.Sprintf("%T", img)
	}
}
