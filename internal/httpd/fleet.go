package httpd

// Fleet telemetry endpoint: serves an obs.Aggregator — the merged
// metric state of every node that ships MetricsReport frames to this
// host — so one scrape of the host answers for the whole fleet. The
// health endpoint exposes the node's live overload score alongside it.

import (
	"fmt"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"time"

	"github.com/alfredo-mw/alfredo/internal/obs"
)

// FleetAlias is the servlet alias RegisterFleet uses.
const FleetAlias = "/obs/fleet"

// HealthAlias is the servlet alias RegisterHealth uses.
const HealthAlias = "/obs/health"

// NewFleetHandler builds the fleet view mux for an aggregator:
//
//	GET /              reporting nodes (name, tenant, seq, series count)
//	GET /metrics       fleet-wide Prometheus exposition (node/tenant labels)
//	GET /metrics.json  the same merged sample set as JSON
//	GET /quantile?family=<hist>&q=0.99   live fleet-wide windowed quantile
//
// refresh, when non-nil, runs before each request — hosts use it to
// fold their own local registry into the aggregator so the fleet view
// includes the serving node itself. The handler is standalone (paths
// relative to its mount point); use RegisterFleet to mount it.
func NewFleetHandler(agg *obs.Aggregator, refresh func()) http.Handler {
	withRefresh := func(h http.HandlerFunc) http.HandlerFunc {
		return func(w http.ResponseWriter, r *http.Request) {
			if refresh != nil {
				refresh()
			}
			h(w, r)
		}
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/", withRefresh(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		nodes := agg.Nodes()
		if nodes == nil {
			nodes = []obs.NodeInfo{}
		}
		writeJSON(w, struct {
			Nodes   []obs.NodeInfo `json:"nodes"`
			Dropped int64          `json:"dropped_reports"`
		}{nodes, agg.Dropped()})
	}))
	mux.HandleFunc("/metrics", withRefresh(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = obs.WritePrometheusSamples(w, agg.Snapshot())
	}))
	mux.HandleFunc("/metrics.json", withRefresh(func(w http.ResponseWriter, r *http.Request) {
		snap := agg.Snapshot()
		if snap == nil {
			snap = []obs.Sample{}
		}
		writeJSON(w, snap)
	}))
	mux.HandleFunc("/quantile", withRefresh(func(w http.ResponseWriter, r *http.Request) {
		family := r.URL.Query().Get("family")
		if family == "" {
			http.Error(w, "missing ?family=<histogram family>", http.StatusBadRequest)
			return
		}
		q := 0.99
		if s := r.URL.Query().Get("q"); s != "" {
			v, err := strconv.ParseFloat(s, 64)
			if err != nil || v < 0 || v > 1 {
				http.Error(w, fmt.Sprintf("bad quantile %q", s), http.StatusBadRequest)
				return
			}
			q = v
		}
		writeJSON(w, struct {
			Family   string        `json:"family"`
			Q        float64       `json:"q"`
			Window   time.Duration `json:"window_ns"`
			Quantile time.Duration `json:"quantile_ns"`
			Pretty   string        `json:"quantile"`
		}{family, q, obs.WindowSpan, agg.WindowQuantile(family, q),
			agg.WindowQuantile(family, q).String()})
	}))
	return mux
}

// RegisterFleet mounts the fleet handler on the service under
// FleetAlias. The bare alias (no trailing slash) serves the node
// listing rather than bouncing through a redirect.
func RegisterFleet(s *Service, agg *obs.Aggregator, refresh func()) error {
	h := NewFleetHandler(agg, refresh)
	return s.RegisterServlet(FleetAlias,
		http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			r2 := new(http.Request)
			*r2 = *r
			r2.URL = new(url.URL)
			*r2.URL = *r.URL
			r2.URL.Path = strings.TrimPrefix(r.URL.Path, FleetAlias)
			if r2.URL.Path == "" {
				r2.URL.Path = "/"
			}
			h.ServeHTTP(w, r2)
		}))
}

// RegisterHealth mounts a health-score endpoint under HealthAlias:
// GET /obs/health returns the most recent obs.HealthScore as JSON.
// score is called per request (pass view.Score from a core.HealthView
// or scorer.Last from an obs.HealthScorer).
func RegisterHealth(s *Service, score func() obs.HealthScore) error {
	if score == nil {
		score = func() obs.HealthScore { return obs.HealthScore{} }
	}
	return s.RegisterServlet(HealthAlias,
		http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			writeJSON(w, score())
		}))
}
