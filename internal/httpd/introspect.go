package httpd

// Live introspection endpoint: serves the telemetry hub's metrics and
// recent traces over the node's own HTTP service, so an operator (or a
// test) can curl the phone or the target mid-session and see invoke
// latencies, retry counters and cross-peer traces without stopping
// anything.

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"

	"github.com/alfredo-mw/alfredo/internal/obs"
)

// IntrospectionAlias is the servlet alias RegisterIntrospection uses.
const IntrospectionAlias = "/obs"

// NewIntrospectionHandler builds the introspection mux for a hub:
//
//	GET /metrics           Prometheus text exposition
//	GET /metrics.json      same registry as JSON
//	GET /traces?n=20       most recent trace summaries
//	GET /traces/slow?n=20  slowest trace summaries
//	GET /trace?id=<hex>    one trace; &format=text for the span tree
//
// The handler is standalone (paths are relative to its mount point);
// use RegisterIntrospection to mount it on a Service.
func NewIntrospectionHandler(hub *obs.Hub) http.Handler {
	hub = hub.OrDefault()
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = obs.WritePrometheus(w, hub.Metrics)
	})
	mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = obs.WriteJSON(w, hub.Metrics)
	})
	mux.HandleFunc("/traces", func(w http.ResponseWriter, r *http.Request) {
		writeSummaries(w, hub.Traces.Recent(queryN(r)))
	})
	mux.HandleFunc("/traces/slow", func(w http.ResponseWriter, r *http.Request) {
		writeSummaries(w, hub.Traces.Slowest(queryN(r)))
	})
	mux.HandleFunc("/trace", func(w http.ResponseWriter, r *http.Request) {
		id := r.URL.Query().Get("id")
		spans, ok := hub.Traces.Trace(id)
		if !ok {
			http.Error(w, fmt.Sprintf("no trace %q", id), http.StatusNotFound)
			return
		}
		if r.URL.Query().Get("format") == "text" {
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			_, _ = fmt.Fprint(w, obs.FormatTrace(spans))
			return
		}
		out := make([]spanJSON, len(spans))
		for i, sp := range spans {
			out[i] = spanJSON{
				SpanData: sp,
				TraceID:  obs.FormatID(sp.TraceID),
				SpanID:   obs.FormatID(sp.SpanID),
				ParentID: obs.FormatID(sp.ParentID),
			}
		}
		writeJSON(w, out)
	})
	return mux
}

// spanJSON re-attaches the span identity (hex-encoded) that SpanData
// withholds from plain JSON marshaling.
type spanJSON struct {
	obs.SpanData
	TraceID  string `json:"trace_id"`
	SpanID   string `json:"span_id"`
	ParentID string `json:"parent_id,omitempty"`
}

func writeSummaries(w http.ResponseWriter, sums []obs.TraceSummary) {
	if sums == nil {
		sums = []obs.TraceSummary{}
	}
	writeJSON(w, sums)
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// queryN parses ?n= with a sane default for list views.
func queryN(r *http.Request) int {
	if s := r.URL.Query().Get("n"); s != "" {
		if n, err := strconv.Atoi(s); err == nil && n > 0 {
			return n
		}
	}
	return 20
}

// RegisterIntrospection mounts the introspection handler on the
// service under IntrospectionAlias.
func RegisterIntrospection(s *Service, hub *obs.Hub) error {
	return s.RegisterServlet(IntrospectionAlias,
		http.StripPrefix(IntrospectionAlias, NewIntrospectionHandler(hub)))
}
