package httpd

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"github.com/alfredo-mw/alfredo/internal/obs"
	"github.com/alfredo-mw/alfredo/internal/sim/clock"
)

// fleetFixture builds a service with an aggregator fed by two fake
// nodes plus a host registry folded in through refresh.
func fleetFixture(t *testing.T) (*Service, *obs.Aggregator) {
	t.Helper()
	clk := clock.NewVirtual(1)
	agg := obs.NewAggregator()

	hostReg := obs.NewRegistryOn(clk)
	hostReg.Counter("alfredo_remote_invokes_total").Add(7)
	h := hostReg.Histogram("alfredo_remote_invoke_seconds")
	for i := 0; i < 100; i++ {
		h.Observe(2 * time.Millisecond)
	}

	phoneReg := obs.NewRegistryOn(clk)
	phoneReg.Counter("alfredo_remote_invokes_total").Add(3)
	agg.IngestRegistry("phone-1", "tenant-a", phoneReg)

	s := NewService()
	if err := RegisterFleet(s, agg, func() {
		agg.IngestRegistry("host", "", hostReg)
	}); err != nil {
		t.Fatalf("RegisterFleet: %v", err)
	}
	return s, agg
}

func TestFleetNodesListing(t *testing.T) {
	s, _ := fleetFixture(t)
	for _, path := range []string{"/obs/fleet", "/obs/fleet/"} {
		rec := httptest.NewRecorder()
		s.ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
		if rec.Code != http.StatusOK {
			t.Fatalf("GET %s = %d", path, rec.Code)
		}
		var got struct {
			Nodes   []obs.NodeInfo `json:"nodes"`
			Dropped int64          `json:"dropped_reports"`
		}
		if err := json.Unmarshal(rec.Body.Bytes(), &got); err != nil {
			t.Fatalf("GET %s: bad JSON: %v", path, err)
		}
		if len(got.Nodes) != 2 {
			t.Fatalf("GET %s: nodes = %+v, want host + phone-1", path, got.Nodes)
		}
	}
}

func TestFleetPrometheusExposition(t *testing.T) {
	s, _ := fleetFixture(t)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest("GET", "/obs/fleet/metrics", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("GET /obs/fleet/metrics = %d", rec.Code)
	}
	body := rec.Body.String()
	// Fleet exposition carries node labels so one scrape distinguishes
	// every reporting device.
	for _, want := range []string{
		`alfredo_remote_invokes_total{node="host"} 7`,
		`alfredo_remote_invokes_total{node="phone-1",tenant="tenant-a"} 3`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("exposition missing %q in:\n%s", want, body)
		}
	}
}

func TestFleetQuantile(t *testing.T) {
	s, _ := fleetFixture(t)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest("GET",
		"/obs/fleet/quantile?family=alfredo_remote_invoke_seconds&q=0.5", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("quantile = %d: %s", rec.Code, rec.Body.String())
	}
	var got struct {
		Quantile time.Duration `json:"quantile_ns"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &got); err != nil {
		t.Fatal(err)
	}
	if got.Quantile <= 0 || got.Quantile > 50*time.Millisecond {
		t.Errorf("fleet p50 = %v, want ~2ms bucket bound", got.Quantile)
	}

	rec = httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest("GET", "/obs/fleet/quantile", nil))
	if rec.Code != http.StatusBadRequest {
		t.Errorf("missing family = %d, want 400", rec.Code)
	}
	rec = httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest("GET",
		"/obs/fleet/quantile?family=x&q=1.5", nil))
	if rec.Code != http.StatusBadRequest {
		t.Errorf("bad q = %d, want 400", rec.Code)
	}
}

func TestHealthEndpoint(t *testing.T) {
	s := NewService()
	score := obs.HealthScore{Overall: 0.42, Queue: 0.42}
	if err := RegisterHealth(s, func() obs.HealthScore { return score }); err != nil {
		t.Fatalf("RegisterHealth: %v", err)
	}
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest("GET", "/obs/health", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("GET /obs/health = %d", rec.Code)
	}
	var got obs.HealthScore
	if err := json.Unmarshal(rec.Body.Bytes(), &got); err != nil {
		t.Fatal(err)
	}
	if got.Overall != 0.42 {
		t.Errorf("Overall = %v, want 0.42", got.Overall)
	}
}

func TestPprofEndpoints(t *testing.T) {
	s := NewService()
	if err := RegisterPprof(s); err != nil {
		t.Fatalf("RegisterPprof: %v", err)
	}
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/pprof/", nil))
	if rec.Code != http.StatusOK || !strings.Contains(rec.Body.String(), "goroutine") {
		t.Fatalf("pprof index = %d, body %q", rec.Code, rec.Body.String())
	}
	rec = httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/pprof/heap?debug=1", nil))
	if rec.Code != http.StatusOK || !strings.Contains(rec.Body.String(), "heap profile") {
		t.Fatalf("heap profile = %d", rec.Code)
	}
}
