package httpd

// On-demand runtime profiling: mounts the standard net/http/pprof
// handlers on the embedded HTTP service, so a node under investigation
// serves CPU/heap/goroutine/block profiles from the same -obs listener
// that serves metrics — no restart, no extra port. The continuous
// profiler (obs.StartProfiler) covers the always-on gauges; this is the
// deep-dive complement.

import (
	"net/http"
	"net/http/pprof"
)

// PprofAlias is the servlet alias RegisterPprof uses. It matches the
// path net/http/pprof's Index handler links against, so the profile
// listing's hyperlinks resolve.
const PprofAlias = "/debug/pprof"

// RegisterPprof mounts the pprof handlers under PprofAlias. The Index
// handler routes named profiles (heap, goroutine, block, mutex,
// threadcreate, allocs) by the request path itself, so no prefix
// stripping is applied.
func RegisterPprof(s *Service) error {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return s.RegisterServlet(PprofAlias, mux)
}
