package httpd

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

func echoHandler(tag string) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintf(w, "%s:%s", tag, r.URL.Path)
	})
}

func TestRegisterAndDispatch(t *testing.T) {
	s := NewService()
	if err := s.RegisterServlet("/shop", echoHandler("shop")); err != nil {
		t.Fatal(err)
	}
	if err := s.RegisterServlet("/shop/admin", echoHandler("admin")); err != nil {
		t.Fatal(err)
	}

	cases := map[string]string{
		"/shop":         "shop:/shop",
		"/shop/items":   "shop:/shop/items",
		"/shop/admin":   "admin:/shop/admin",
		"/shop/admin/x": "admin:/shop/admin/x",
	}
	for path, want := range cases {
		rec := httptest.NewRecorder()
		s.ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
		if rec.Body.String() != want {
			t.Errorf("GET %s = %q, want %q", path, rec.Body.String(), want)
		}
	}

	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest("GET", "/unknown", nil))
	if rec.Code != http.StatusNotFound {
		t.Errorf("unknown path = %d", rec.Code)
	}
	// "/shopx" must not match the "/shop" alias.
	rec = httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest("GET", "/shopx", nil))
	if rec.Code != http.StatusNotFound {
		t.Errorf("/shopx = %d, want 404", rec.Code)
	}
}

func TestRegisterValidation(t *testing.T) {
	s := NewService()
	if err := s.RegisterServlet("shop", echoHandler("x")); !errors.Is(err, ErrBadAlias) {
		t.Errorf("missing slash = %v", err)
	}
	if err := s.RegisterServlet("/a", nil); err == nil {
		t.Error("nil handler accepted")
	}
	_ = s.RegisterServlet("/a", echoHandler("x"))
	if err := s.RegisterServlet("/a", echoHandler("y")); !errors.Is(err, ErrAliasInUse) {
		t.Errorf("duplicate alias = %v", err)
	}
}

func TestUnregister(t *testing.T) {
	s := NewService()
	_ = s.RegisterServlet("/a", echoHandler("a"))
	s.UnregisterServlet("/a")
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest("GET", "/a", nil))
	if rec.Code != http.StatusNotFound {
		t.Errorf("after unregister = %d", rec.Code)
	}
	if got := s.Aliases(); len(got) != 0 {
		t.Errorf("Aliases = %v", got)
	}
	// Alias reusable.
	if err := s.RegisterServlet("/a", echoHandler("a2")); err != nil {
		t.Errorf("re-register = %v", err)
	}
}

func TestRootAliasCatchesAll(t *testing.T) {
	s := NewService()
	_ = s.RegisterServlet("/", echoHandler("root"))
	_ = s.RegisterServlet("/specific", echoHandler("specific"))
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest("GET", "/anything", nil))
	if rec.Body.String() != "root:/anything" {
		t.Errorf("root dispatch = %q", rec.Body.String())
	}
	rec = httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest("GET", "/specific/x", nil))
	if rec.Body.String() != "specific:/specific/x" {
		t.Errorf("specific dispatch = %q", rec.Body.String())
	}
}

func TestStartServeStop(t *testing.T) {
	s := NewService()
	_ = s.RegisterServlet("/hello", echoHandler("hi"))
	addr, err := s.Start("127.0.0.1:0")
	if err != nil {
		t.Fatalf("Start: %v", err)
	}
	if got, ok := s.Addr(); !ok || got != addr {
		t.Errorf("Addr = %q, %v", got, ok)
	}
	if _, err := s.Start("127.0.0.1:0"); !errors.Is(err, ErrAlreadyServing) {
		t.Errorf("second Start = %v", err)
	}

	resp, err := http.Get("http://" + addr + "/hello/world")
	if err != nil {
		t.Fatalf("GET: %v", err)
	}
	body, _ := io.ReadAll(resp.Body)
	_ = resp.Body.Close()
	if string(body) != "hi:/hello/world" {
		t.Errorf("body = %q", body)
	}

	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	if err := s.Stop(ctx); err != nil {
		t.Fatalf("Stop: %v", err)
	}
	if err := s.Stop(ctx); !errors.Is(err, ErrNotRunning) {
		t.Errorf("double Stop = %v", err)
	}
	if _, ok := s.Addr(); ok {
		t.Error("Addr available after Stop")
	}
}
