// Package httpd is the OSGi HTTP service analog: bundles register
// servlets (http.Handlers) under aliases, and the service routes
// requests by longest-prefix match. The HTML renderer registers its
// views here to serve browser-only clients (paper §3.3: "a web browser
// that is fed by a servlet renderer").
package httpd

import (
	"context"
	"errors"
	"fmt"
	"net"
	"net/http"
	"sort"
	"strings"
	"sync"
)

// HTTP service errors.
var (
	ErrAliasInUse     = errors.New("httpd: alias already registered")
	ErrBadAlias       = errors.New("httpd: alias must start with '/'")
	ErrNotRunning     = errors.New("httpd: service not started")
	ErrAlreadyServing = errors.New("httpd: service already started")
)

// InterfaceName is the service registry interface of the HTTP service.
const InterfaceName = "org.osgi.service.http.HttpService"

// Service is a registerable servlet container.
type Service struct {
	mu       sync.RWMutex
	servlets map[string]http.Handler
	server   *http.Server
	listener net.Listener
	done     chan struct{}
}

var _ http.Handler = (*Service)(nil)

// NewService creates an empty HTTP service.
func NewService() *Service {
	return &Service{servlets: make(map[string]http.Handler)}
}

// RegisterServlet binds a handler to an alias ("/shop"). Nested aliases
// are allowed; the longest prefix wins at dispatch.
func (s *Service) RegisterServlet(alias string, h http.Handler) error {
	if !strings.HasPrefix(alias, "/") {
		return fmt.Errorf("%w: %q", ErrBadAlias, alias)
	}
	if h == nil {
		return fmt.Errorf("httpd: nil handler for %q", alias)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.servlets[alias]; dup {
		return fmt.Errorf("%w: %s", ErrAliasInUse, alias)
	}
	s.servlets[alias] = h
	return nil
}

// UnregisterServlet removes an alias; unknown aliases are ignored.
func (s *Service) UnregisterServlet(alias string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.servlets, alias)
}

// Aliases returns the registered aliases, sorted.
func (s *Service) Aliases() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]string, 0, len(s.servlets))
	for a := range s.servlets {
		out = append(out, a)
	}
	sort.Strings(out)
	return out
}

// ServeHTTP dispatches by longest registered prefix.
func (s *Service) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mu.RLock()
	var best string
	var handler http.Handler
	for alias, h := range s.servlets {
		if matchesAlias(r.URL.Path, alias) && len(alias) > len(best) {
			best, handler = alias, h
		}
	}
	s.mu.RUnlock()
	if handler == nil {
		http.NotFound(w, r)
		return
	}
	handler.ServeHTTP(w, r)
}

func matchesAlias(path, alias string) bool {
	if alias == "/" {
		return true
	}
	return path == alias || strings.HasPrefix(path, alias+"/")
}

// Start listens on addr ("127.0.0.1:0" for an ephemeral port) and
// serves in the background. It returns the bound address.
func (s *Service) Start(addr string) (string, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.server != nil {
		return "", ErrAlreadyServing
	}
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("httpd: listening on %s: %w", addr, err)
	}
	s.listener = l
	s.server = &http.Server{Handler: s}
	s.done = make(chan struct{})
	done := s.done
	go func() {
		defer close(done)
		// http.ErrServerClosed is the orderly-shutdown signal.
		_ = s.server.Serve(l)
	}()
	return l.Addr().String(), nil
}

// Stop shuts the server down and waits for the serve loop to exit.
func (s *Service) Stop(ctx context.Context) error {
	s.mu.Lock()
	server := s.server
	done := s.done
	s.server = nil
	s.listener = nil
	s.mu.Unlock()
	if server == nil {
		return ErrNotRunning
	}
	err := server.Shutdown(ctx)
	<-done
	if err != nil {
		return fmt.Errorf("httpd: shutdown: %w", err)
	}
	return nil
}

// Addr returns the bound address while running.
func (s *Service) Addr() (string, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.listener == nil {
		return "", false
	}
	return s.listener.Addr().String(), true
}
