package script

import (
	"errors"
	"fmt"
	"reflect"
	"sync"

	"github.com/alfredo-mw/alfredo/internal/event"
	"github.com/alfredo-mw/alfredo/internal/sim/clock"
	"github.com/alfredo-mw/alfredo/internal/ui"
)

// Controller errors.
var (
	ErrNotRunning     = errors.New("script: controller not running")
	ErrAlreadyRunning = errors.New("script: controller already running")
)

// Host is the effect surface a running controller may touch: the
// session's services, its own view, and the event bus. Nothing else is
// reachable from shipped rules — this interface IS the sandbox
// boundary of §3.2.
type Host interface {
	// Invoke calls a method on a session service (usually the remote
	// proxy).
	Invoke(service, method string, args []any) (any, error)
	// SetControl updates a property of a rendered control.
	SetControl(controlID, property string, value any) error
	// ControlValue reads the current value of a rendered control.
	ControlValue(controlID string) (any, bool)
	// Post publishes an event on the session's event bus.
	Post(topic string, props map[string]any) error
}

// Controller interprets a Program against a Host: the generated
// application Controller of Figure 2. Create with NewController, drive
// with OnUIEvent/OnRemoteEvent, and Stop when the interaction ends.
type Controller struct {
	prog *Program
	host Host
	// clk drives the poll-rule tickers; wall by default, virtual under
	// the simulation harness (see WithClock).
	clk clock.Clock
	// exprs caches compiled expressions by source; populated once at
	// construction so rule execution never reparses.
	exprs map[string]*Expr

	mu      sync.Mutex
	vars    map[string]any
	running bool
	done    chan struct{}
	lastErr error

	wg sync.WaitGroup
}

// NewController compiles prog (which must validate) for the host.
func NewController(prog *Program, host Host) (*Controller, error) {
	if err := prog.Validate(); err != nil {
		return nil, err
	}
	if host == nil {
		return nil, fmt.Errorf("script: controller requires a host")
	}
	c := &Controller{
		prog:  prog,
		host:  host,
		clk:   clock.Wall,
		exprs: make(map[string]*Expr),
		vars:  make(map[string]any),
	}
	for _, src := range prog.expressions() {
		if _, dup := c.exprs[src]; dup {
			continue
		}
		e, err := ParseExpr(src)
		if err != nil {
			// Validate has already compiled these; a failure here is a
			// programming error in expressions().
			return nil, fmt.Errorf("script: compiling %q: %w", src, err)
		}
		c.exprs[src] = e
	}
	return c, nil
}

// WithClock sets the time source for poll-rule tickers (nil restores
// the wall clock). Call before Start; returns the controller for
// chaining.
func (c *Controller) WithClock(clk clock.Clock) *Controller {
	c.clk = clock.Or(clk)
	return c
}

// expr returns the precompiled expression for src (compiling on the
// fly only for sources outside the program, which does not happen in
// normal operation).
func (c *Controller) expr(src string) *Expr {
	if e, ok := c.exprs[src]; ok {
		return e
	}
	return MustParseExpr(src)
}

// Start evaluates the initial variables and starts the poll loops.
func (c *Controller) Start() error {
	c.mu.Lock()
	if c.running {
		c.mu.Unlock()
		return ErrAlreadyRunning
	}
	c.running = true
	c.done = make(chan struct{})
	c.mu.Unlock()

	for name, src := range c.prog.Init {
		v, err := c.expr(src).Eval(c.baseEnv())
		if err != nil {
			c.Stop()
			return fmt.Errorf("script: init %s: %w", name, err)
		}
		c.mu.Lock()
		c.vars[name] = v
		c.mu.Unlock()
	}

	for i := range c.prog.Rules {
		rule := &c.prog.Rules[i]
		if rule.On.Poll == nil {
			continue
		}
		c.wg.Add(1)
		go c.pollLoop(rule)
	}
	return nil
}

// Stop terminates poll loops and blocks until they exit. Idempotent.
func (c *Controller) Stop() {
	c.mu.Lock()
	if !c.running {
		c.mu.Unlock()
		return
	}
	c.running = false
	close(c.done)
	c.mu.Unlock()
	c.wg.Wait()
}

// Vars returns a snapshot of the controller variables.
func (c *Controller) Vars() map[string]any {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[string]any, len(c.vars))
	for k, v := range c.vars {
		out[k] = v
	}
	return out
}

// LastError returns the most recent rule execution error (rules are
// fire-and-forget from the view's perspective; errors are retained for
// diagnosis rather than crashing the UI).
func (c *Controller) LastError() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lastErr
}

// OnUIEvent feeds a user interaction into the rule set.
func (c *Controller) OnUIEvent(ev ui.Event) {
	env := c.baseEnv()
	env["event"] = map[string]any{
		"control": ev.Control,
		"kind":    string(ev.Kind),
		"value":   ev.Value,
	}
	for i := range c.prog.Rules {
		rule := &c.prog.Rules[i]
		t := rule.On.UI
		if t == nil || t.Control != ev.Control {
			continue
		}
		if t.Kind != "" && t.Kind != ev.Kind {
			continue
		}
		c.runRule(rule, env)
	}
}

// OnRemoteEvent feeds a (remote or local) event-bus event into the rule
// set.
func (c *Controller) OnRemoteEvent(topic string, props map[string]any) {
	env := c.baseEnv()
	env["event"] = map[string]any{"topic": topic, "props": props}
	for i := range c.prog.Rules {
		rule := &c.prog.Rules[i]
		t := rule.On.Event
		if t == nil || !event.TopicMatches(t.Topic, topic) {
			continue
		}
		c.runRule(rule, env)
	}
}

// EventPatterns returns the topic patterns the program listens to; the
// engine uses this to set up remote subscriptions.
func (c *Controller) EventPatterns() []string {
	var out []string
	for _, r := range c.prog.Rules {
		if r.On.Event != nil {
			out = append(out, r.On.Event.Topic)
		}
	}
	return out
}

func (c *Controller) pollLoop(rule *Rule) {
	defer c.wg.Done()
	poll := rule.On.Poll
	ticker := c.clk.NewTicker(poll.Interval())
	defer ticker.Stop()
	var last any
	first := true
	for {
		select {
		case <-c.done:
			return
		case <-ticker.C:
		}
		env := c.baseEnv()
		args, err := c.evalArgs(poll.Args, env)
		if err != nil {
			c.noteErr(err)
			continue
		}
		result, err := c.host.Invoke(poll.Service, poll.Method, args)
		if err != nil {
			c.noteErr(err)
			continue
		}
		if poll.OnChange && !first && reflect.DeepEqual(result, last) {
			continue
		}
		last = result
		first = false
		env["result"] = result
		c.runRule(rule, env)
	}
}

// runRule executes the guard and actions of one rule against env.
func (c *Controller) runRule(rule *Rule, env map[string]any) {
	if rule.When != "" {
		ok, err := c.expr(rule.When).Eval(env)
		if err != nil {
			c.noteErr(fmt.Errorf("script: guard of %s: %w", ruleName(rule), err))
			return
		}
		if !truthy(ok) {
			return
		}
	}
	for _, a := range rule.Do {
		if err := c.runAction(a, env); err != nil {
			c.noteErr(fmt.Errorf("script: %s: %w", ruleName(rule), err))
			return
		}
	}
}

func (c *Controller) runAction(a Action, env map[string]any) error {
	switch {
	case a.Invoke != nil:
		args, err := c.evalArgs(a.Invoke.Args, env)
		if err != nil {
			return err
		}
		result, err := c.host.Invoke(a.Invoke.Service, a.Invoke.Method, args)
		if err != nil {
			return err
		}
		env["result"] = result
		if a.Invoke.AssignTo != "" {
			c.mu.Lock()
			c.vars[a.Invoke.AssignTo] = result
			c.mu.Unlock()
			env[a.Invoke.AssignTo] = result
			env["vars"] = c.Vars()
		}
		return nil
	case a.SetControl != nil:
		v, err := c.expr(a.SetControl.Value).Eval(env)
		if err != nil {
			return err
		}
		return c.host.SetControl(a.SetControl.Control, a.SetControl.Property, v)
	case a.SetVar != nil:
		v, err := c.expr(a.SetVar.Value).Eval(env)
		if err != nil {
			return err
		}
		c.mu.Lock()
		c.vars[a.SetVar.Name] = v
		c.mu.Unlock()
		env[a.SetVar.Name] = v
		env["vars"] = c.Vars()
		return nil
	case a.Post != nil:
		props := make(map[string]any, len(a.Post.Props))
		for k, src := range a.Post.Props {
			v, err := c.expr(src).Eval(env)
			if err != nil {
				return err
			}
			props[k] = v
		}
		return c.host.Post(a.Post.Topic, props)
	default:
		return fmt.Errorf("%w: empty action", ErrBadProgram)
	}
}

func (c *Controller) evalArgs(exprs []string, env map[string]any) ([]any, error) {
	args := make([]any, len(exprs))
	for i, src := range exprs {
		v, err := c.expr(src).Eval(env)
		if err != nil {
			return nil, err
		}
		args[i] = v
	}
	return args, nil
}

// baseEnv builds the standard evaluation environment: controller vars
// both as the "vars" map and flattened for direct reference.
func (c *Controller) baseEnv() map[string]any {
	env := make(map[string]any, len(c.vars)+2)
	c.mu.Lock()
	vars := make(map[string]any, len(c.vars))
	for k, v := range c.vars {
		vars[k] = v
		env[k] = v
	}
	c.mu.Unlock()
	env["vars"] = vars
	return env
}

func (c *Controller) noteErr(err error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.lastErr = err
}

func ruleName(r *Rule) string {
	if r.Name != "" {
		return r.Name
	}
	return "anonymous rule"
}
