package script

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"github.com/alfredo-mw/alfredo/internal/ui"
)

func evalStr(t *testing.T, src string, env map[string]any) any {
	t.Helper()
	e, err := ParseExpr(src)
	if err != nil {
		t.Fatalf("ParseExpr(%q): %v", src, err)
	}
	v, err := e.Eval(env)
	if err != nil {
		t.Fatalf("Eval(%q): %v", src, err)
	}
	return v
}

func TestExprArithmetic(t *testing.T) {
	cases := []struct {
		src  string
		want any
	}{
		{"1 + 2 * 3", int64(7)},
		{"(1 + 2) * 3", int64(9)},
		{"10 / 4", int64(2)},
		{"10.0 / 4", 2.5},
		{"10 % 3", int64(1)},
		{"-5 + 3", int64(-2)},
		{"2 * 3.5", 7.0},
		{"1 < 2", true},
		{"2 <= 2", true},
		{"3 > 4", false},
		{"'a' + 'b'", "ab"},
		{"'n=' + 5", "n=5"},
		{"1 == 1.0", true},
		{"1 != 2", true},
		{"'x' == 'x'", true},
		{"true && false", false},
		{"true || false", true},
		{"!true", false},
		{"!0", true},
		{"nil == nil", true},
	}
	for _, c := range cases {
		if got := evalStr(t, c.src, nil); got != c.want {
			t.Errorf("%q = %#v, want %#v", c.src, got, c.want)
		}
	}
}

func TestExprVariablesAndMembers(t *testing.T) {
	env := map[string]any{
		"x": int64(5),
		"event": map[string]any{
			"control": "btn",
			"value":   []any{int64(1), int64(2)},
		},
	}
	if got := evalStr(t, "x * 2", env); got != int64(10) {
		t.Errorf("x*2 = %v", got)
	}
	if got := evalStr(t, "event.control", env); got != "btn" {
		t.Errorf("event.control = %v", got)
	}
	if got := evalStr(t, "event.value[1]", env); got != int64(2) {
		t.Errorf("event.value[1] = %v", got)
	}
	if got := evalStr(t, "event['control']", env); got != "btn" {
		t.Errorf("event['control'] = %v", got)
	}
}

func TestExprBuiltins(t *testing.T) {
	env := map[string]any{"items": []any{"a", "b", "c"}}
	cases := []struct {
		src  string
		want any
	}{
		{"len(items)", int64(3)},
		{"len('hello')", int64(5)},
		{"str(42)", "42"},
		{"num('17')", int64(17)},
		{"num('2.5')", 2.5},
		{"min(3, 1, 2)", int64(1)},
		{"max(3, 1, 2)", int64(3)},
		{"contains('MouseController', 'Ctrl') || contains('MouseController', 'Controller')", true},
		{"clamp(15, 0, 10)", int64(10)},
		{"clamp(-3, 0, 10)", int64(0)},
		{"clamp(5, 0, 10)", int64(5)},
	}
	for _, c := range cases {
		if got := evalStr(t, c.src, env); got != c.want {
			t.Errorf("%q = %#v, want %#v", c.src, got, c.want)
		}
	}
}

func TestExprErrors(t *testing.T) {
	badSyntax := []string{"", "1 +", "(1", "1 ++ 2", "foo(", "a.", "a[1", "'unterminated", "@", "1 2"}
	for _, src := range badSyntax {
		if _, err := ParseExpr(src); !errors.Is(err, ErrExprSyntax) {
			t.Errorf("ParseExpr(%q) = %v, want ErrExprSyntax", src, err)
		}
	}
	badEval := []string{"unknownVar", "1 / 0", "5 % 0", "'a' - 'b'", "nope(1)", "x.field", "len(5)", "arr[9]"}
	env := map[string]any{"x": int64(1), "arr": []any{}}
	for _, src := range badEval {
		e, err := ParseExpr(src)
		if err != nil {
			t.Errorf("ParseExpr(%q): %v", src, err)
			continue
		}
		if _, err := e.Eval(env); !errors.Is(err, ErrExprEval) {
			t.Errorf("Eval(%q) = %v, want ErrExprEval", src, err)
		}
	}
}

func TestExprShortCircuit(t *testing.T) {
	// The right side would fail, but short-circuit must prevent that.
	if got := evalStr(t, "false && missingVar", nil); got != false {
		t.Errorf("short-circuit && = %v", got)
	}
	if got := evalStr(t, "true || missingVar", nil); got != true {
		t.Errorf("short-circuit || = %v", got)
	}
}

func TestPropertyIntExprRoundTrip(t *testing.T) {
	prop := func(a, b int16) bool {
		src := fmt.Sprintf("%d + %d", a, b)
		e, err := ParseExpr(src)
		if err != nil {
			return false
		}
		v, err := e.Eval(nil)
		return err == nil && v == int64(a)+int64(b)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestPropertyStringLiteralRoundTrip(t *testing.T) {
	prop := func(s string) bool {
		// Only printable ASCII without quote/backslash, to stay within
		// simple literal syntax.
		for _, r := range s {
			if r < 32 || r > 126 || r == '\'' || r == '"' || r == '\\' {
				return true
			}
		}
		e, err := ParseExpr("'" + s + "'")
		if err != nil {
			return false
		}
		v, err := e.Eval(nil)
		return err == nil && v == s
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// fakeHost records effects for controller tests.
type fakeHost struct {
	mu       sync.Mutex
	invokes  []string
	controls map[string]any
	posts    []string
	results  map[string]any // "service.method" -> result
	fail     error
}

func newFakeHost() *fakeHost {
	return &fakeHost{controls: make(map[string]any), results: make(map[string]any)}
}

func (h *fakeHost) Invoke(service, method string, args []any) (any, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.invokes = append(h.invokes, fmt.Sprintf("%s.%s(%v)", service, method, args))
	if h.fail != nil {
		return nil, h.fail
	}
	return h.results[service+"."+method], nil
}

func (h *fakeHost) SetControl(id, prop string, v any) error {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.controls[id+"."+prop] = v
	return nil
}

func (h *fakeHost) ControlValue(id string) (any, bool) {
	h.mu.Lock()
	defer h.mu.Unlock()
	v, ok := h.controls[id+".value"]
	return v, ok
}

func (h *fakeHost) Post(topic string, props map[string]any) error {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.posts = append(h.posts, topic)
	return nil
}

func (h *fakeHost) invokeLog() []string {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make([]string, len(h.invokes))
	copy(out, h.invokes)
	return out
}

func (h *fakeHost) control(key string) any {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.controls[key]
}

func startController(t *testing.T, prog *Program, host Host) *Controller {
	t.Helper()
	c, err := NewController(prog, host)
	if err != nil {
		t.Fatalf("NewController: %v", err)
	}
	if err := c.Start(); err != nil {
		t.Fatalf("Start: %v", err)
	}
	t.Cleanup(c.Stop)
	return c
}

func TestControllerUIRule(t *testing.T) {
	host := newFakeHost()
	host.results["shop.Browse"] = []any{"bed-1", "bed-2"}
	prog := &Program{Rules: []Rule{{
		Name: "browse-on-press",
		On:   Trigger{UI: &UITrigger{Control: "browseBtn", Kind: ui.EventPress}},
		Do: []Action{
			{Invoke: &InvokeAction{Service: "shop", Method: "Browse", Args: []string{"'beds'"}}},
			{SetControl: &SetControlAction{Control: "productList", Property: "items", Value: "result"}},
		},
	}}}
	c := startController(t, prog, host)

	c.OnUIEvent(ui.Event{Control: "browseBtn", Kind: ui.EventPress})
	if got := host.invokeLog(); len(got) != 1 || got[0] != "shop.Browse([beds])" {
		t.Errorf("invokes = %v", got)
	}
	items := host.control("productList.items")
	if list, ok := items.([]any); !ok || len(list) != 2 {
		t.Errorf("items = %v", items)
	}
	// Non-matching control does nothing.
	c.OnUIEvent(ui.Event{Control: "other", Kind: ui.EventPress})
	if got := host.invokeLog(); len(got) != 1 {
		t.Errorf("invokes after unrelated event = %v", got)
	}
	if c.LastError() != nil {
		t.Errorf("LastError = %v", c.LastError())
	}
}

func TestControllerGuard(t *testing.T) {
	host := newFakeHost()
	prog := &Program{
		Init: map[string]string{"enabled": "false"},
		Rules: []Rule{{
			On:   Trigger{UI: &UITrigger{Control: "b"}},
			When: "enabled",
			Do:   []Action{{Invoke: &InvokeAction{Service: "s", Method: "M"}}},
		}},
	}
	c := startController(t, prog, host)
	c.OnUIEvent(ui.Event{Control: "b", Kind: ui.EventPress})
	if len(host.invokeLog()) != 0 {
		t.Error("guarded rule ran with false guard")
	}
	_ = c
}

func TestControllerVariables(t *testing.T) {
	host := newFakeHost()
	host.results["calc.Add"] = int64(42)
	prog := &Program{
		Init: map[string]string{"count": "0"},
		Rules: []Rule{{
			On: Trigger{UI: &UITrigger{Control: "b"}},
			Do: []Action{
				{SetVar: &SetVarAction{Name: "count", Value: "count + 1"}},
				{Invoke: &InvokeAction{Service: "calc", Method: "Add", AssignTo: "lastResult"}},
				{SetControl: &SetControlAction{Control: "lbl", Property: "text", Value: "'pressed ' + count + ' times, got ' + lastResult"}},
			},
		}},
	}
	c := startController(t, prog, host)
	c.OnUIEvent(ui.Event{Control: "b", Kind: ui.EventPress})
	c.OnUIEvent(ui.Event{Control: "b", Kind: ui.EventPress})
	if got := host.control("lbl.text"); got != "pressed 2 times, got 42" {
		t.Errorf("lbl.text = %v (lastErr %v)", got, c.LastError())
	}
	if v := c.Vars()["count"]; v != int64(2) {
		t.Errorf("count = %v", v)
	}
}

func TestControllerRemoteEvent(t *testing.T) {
	host := newFakeHost()
	prog := &Program{Rules: []Rule{{
		On: Trigger{Event: &EventTrigger{Topic: "mouse/*"}},
		Do: []Action{{SetControl: &SetControlAction{
			Control: "screen", Property: "image", Value: "event.props.frame"}}},
	}}}
	c := startController(t, prog, host)
	c.OnRemoteEvent("mouse/snapshot", map[string]any{"frame": "png-bytes"})
	if got := host.control("screen.image"); got != "png-bytes" {
		t.Errorf("screen.image = %v", got)
	}
	if pats := c.EventPatterns(); len(pats) != 1 || pats[0] != "mouse/*" {
		t.Errorf("EventPatterns = %v", pats)
	}
	c.OnRemoteEvent("other/topic", nil)
	if got := host.control("screen.image"); got != "png-bytes" {
		t.Errorf("unrelated topic changed state: %v", got)
	}
}

func TestControllerPoll(t *testing.T) {
	host := newFakeHost()
	host.results["sensor.Read"] = int64(7)
	prog := &Program{Rules: []Rule{{
		On: Trigger{Poll: &PollTrigger{Service: "sensor", Method: "Read", IntervalMs: 10}},
		Do: []Action{{SetControl: &SetControlAction{Control: "gauge", Property: "value", Value: "result"}}},
	}}}
	c := startController(t, prog, host)
	deadline := time.Now().Add(2 * time.Second)
	for host.control("gauge.value") != int64(7) {
		if time.Now().After(deadline) {
			t.Fatalf("poll never updated gauge (lastErr %v)", c.LastError())
		}
		time.Sleep(2 * time.Millisecond)
	}
	c.Stop()
	n := len(host.invokeLog())
	time.Sleep(30 * time.Millisecond)
	if len(host.invokeLog()) != n {
		t.Error("polling continued after Stop")
	}
}

func TestControllerPollOnChange(t *testing.T) {
	host := newFakeHost()
	host.results["s.Get"] = "same"
	prog := &Program{Rules: []Rule{{
		On: Trigger{Poll: &PollTrigger{Service: "s", Method: "Get", IntervalMs: 5, OnChange: true}},
		Do: []Action{{Post: &PostAction{Topic: "changed"}}},
	}}}
	c := startController(t, prog, host)
	time.Sleep(60 * time.Millisecond)
	c.Stop()
	host.mu.Lock()
	posts := len(host.posts)
	host.mu.Unlock()
	if posts != 1 {
		t.Errorf("OnChange fired %d times for a constant value, want 1", posts)
	}
}

func TestControllerErrorRetention(t *testing.T) {
	host := newFakeHost()
	host.fail = errors.New("service down")
	prog := &Program{Rules: []Rule{{
		On: Trigger{UI: &UITrigger{Control: "b"}},
		Do: []Action{{Invoke: &InvokeAction{Service: "s", Method: "M"}}},
	}}}
	c := startController(t, prog, host)
	c.OnUIEvent(ui.Event{Control: "b", Kind: ui.EventPress})
	if c.LastError() == nil {
		t.Error("failed invoke not retained in LastError")
	}
}

func TestProgramValidation(t *testing.T) {
	bad := []*Program{
		{Rules: []Rule{{Do: []Action{{Post: &PostAction{Topic: "t"}}}}}},                                                                              // no trigger
		{Rules: []Rule{{On: Trigger{UI: &UITrigger{Control: "c"}, Event: &EventTrigger{Topic: "t"}}, Do: []Action{{Post: &PostAction{Topic: "t"}}}}}}, // two triggers
		{Rules: []Rule{{On: Trigger{UI: &UITrigger{Control: "c"}}}}},                                                                                  // no actions
		{Rules: []Rule{{On: Trigger{UI: &UITrigger{Control: ""}}, Do: []Action{{Post: &PostAction{Topic: "t"}}}}}},                                    // empty control
		{Rules: []Rule{{On: Trigger{Poll: &PollTrigger{Service: "s", Method: "m"}}, Do: []Action{{Post: &PostAction{Topic: "t"}}}}}},                  // no interval
		{Rules: []Rule{{On: Trigger{UI: &UITrigger{Control: "c"}}, When: "1 +", Do: []Action{{Post: &PostAction{Topic: "t"}}}}}},                      // bad guard
		{Rules: []Rule{{On: Trigger{UI: &UITrigger{Control: "c"}}, Do: []Action{{}}}}},                                                                // empty action
		{Init: map[string]string{"x": "(("}}, // bad init
		{Rules: []Rule{{On: Trigger{Event: &EventTrigger{Topic: "a/*/b"}}, Do: []Action{{Post: &PostAction{Topic: "t"}}}}}}, // bad pattern
	}
	for i, p := range bad {
		if err := p.Validate(); !errors.Is(err, ErrBadProgram) {
			t.Errorf("program %d: Validate = %v, want ErrBadProgram", i, err)
		}
	}
}

func TestProgramJSONRoundTrip(t *testing.T) {
	prog := &Program{
		Init: map[string]string{"n": "0"},
		Rules: []Rule{{
			Name: "r1",
			On:   Trigger{UI: &UITrigger{Control: "b", Kind: ui.EventPress}},
			When: "n < 10",
			Do: []Action{
				{SetVar: &SetVarAction{Name: "n", Value: "n + 1"}},
				{Post: &PostAction{Topic: "pressed", Props: map[string]string{"n": "n"}}},
			},
		}},
	}
	b, err := prog.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	got, err := UnmarshalProgram(b)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Rules) != 1 || got.Rules[0].Name != "r1" || got.Rules[0].When != "n < 10" {
		t.Errorf("round trip = %+v", got)
	}
	if _, err := UnmarshalProgram([]byte("{bad json")); err == nil {
		t.Error("bad JSON accepted")
	}
	if _, err := UnmarshalProgram([]byte(`{"rules":[{"do":[]}]}`)); err == nil {
		t.Error("invalid program accepted")
	}
}

func TestControllerDoubleStart(t *testing.T) {
	host := newFakeHost()
	c, err := NewController(&Program{}, host)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Start(); err != nil {
		t.Fatal(err)
	}
	defer c.Stop()
	if err := c.Start(); !errors.Is(err, ErrAlreadyRunning) {
		t.Errorf("double Start = %v", err)
	}
	c.Stop()
	c.Stop() // idempotent
}
