// Package script implements the AlfredO controller language: a small,
// sandboxed rule system that ships as data inside the service
// descriptor and is interpreted on the client (paper §3.2: the
// AlfredOEngine "generates the application's Controller based on the
// service requirements specified in the descriptor").
//
// A Program consists of rules. Each rule has a trigger (a UI event, a
// remote event topic, or a periodic poll of a service method), an
// optional guard expression, and a list of actions (invoke a service
// method, set a control property, set a variable, post an event). The
// expression language is pure: all effects go through the Host
// interface, which is how the sandbox-security property of §3.2 is
// enforced — shipped behaviour can only touch the session it belongs
// to, never the phone's local resources.
package script

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
)

// Expression errors.
var (
	ErrExprSyntax = errors.New("script: expression syntax error")
	ErrExprEval   = errors.New("script: expression evaluation error")
)

// Expr is a parsed expression, reusable across evaluations.
type Expr struct {
	node exprNode
	src  string
}

// ParseExpr compiles an expression.
func ParseExpr(src string) (*Expr, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &exprParser{src: src, toks: toks}
	n, err := p.parse(0)
	if err != nil {
		return nil, err
	}
	if p.pos != len(p.toks) {
		return nil, fmt.Errorf("%w: trailing tokens in %q", ErrExprSyntax, src)
	}
	return &Expr{node: n, src: src}, nil
}

// MustParseExpr is ParseExpr panicking on error, for literals in code.
func MustParseExpr(src string) *Expr {
	e, err := ParseExpr(src)
	if err != nil {
		panic(err)
	}
	return e
}

// String returns the source of the expression.
func (e *Expr) String() string { return e.src }

// Eval evaluates the expression against an environment of variables.
// Values follow the wire domain: nil, bool, int64, float64, string,
// []byte, []any, map[string]any.
func (e *Expr) Eval(env map[string]any) (any, error) {
	if e == nil || e.node == nil {
		return nil, nil
	}
	return e.node.eval(env)
}

// --- lexer ---

type tokKind int

const (
	tokNumber tokKind = iota + 1
	tokString
	tokIdent
	tokOp
)

type token struct {
	kind tokKind
	text string
}

func lex(src string) ([]token, error) {
	var toks []token
	i := 0
	for i < len(src) {
		c := src[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c >= '0' && c <= '9':
			j := i
			seenDot := false
			for j < len(src) && (src[j] >= '0' && src[j] <= '9' || (src[j] == '.' && !seenDot && j+1 < len(src) && src[j+1] >= '0' && src[j+1] <= '9')) {
				if src[j] == '.' {
					seenDot = true
				}
				j++
			}
			toks = append(toks, token{tokNumber, src[i:j]})
			i = j
		case c == '"' || c == '\'':
			quote := c
			j := i + 1
			var sb strings.Builder
			for j < len(src) && src[j] != quote {
				if src[j] == '\\' && j+1 < len(src) {
					j++
					switch src[j] {
					case 'n':
						sb.WriteByte('\n')
					case 't':
						sb.WriteByte('\t')
					default:
						sb.WriteByte(src[j])
					}
				} else {
					sb.WriteByte(src[j])
				}
				j++
			}
			if j >= len(src) {
				return nil, fmt.Errorf("%w: unterminated string in %q", ErrExprSyntax, src)
			}
			toks = append(toks, token{tokString, sb.String()})
			i = j + 1
		case isIdentStart(c):
			j := i
			for j < len(src) && isIdentPart(src[j]) {
				j++
			}
			toks = append(toks, token{tokIdent, src[i:j]})
			i = j
		default:
			for _, op := range [...]string{"==", "!=", "<=", ">=", "&&", "||"} {
				if strings.HasPrefix(src[i:], op) {
					toks = append(toks, token{tokOp, op})
					i += 2
					goto next
				}
			}
			switch c {
			case '+', '-', '*', '/', '%', '<', '>', '!', '(', ')', ',', '.', '[', ']':
				toks = append(toks, token{tokOp, string(c)})
				i++
			default:
				return nil, fmt.Errorf("%w: unexpected character %q in %q", ErrExprSyntax, c, src)
			}
		next:
		}
	}
	return toks, nil
}

func isIdentStart(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isIdentPart(c byte) bool {
	return isIdentStart(c) || (c >= '0' && c <= '9')
}

// --- parser (Pratt) ---

type exprParser struct {
	src  string
	toks []token
	pos  int
}

func (p *exprParser) peek() (token, bool) {
	if p.pos >= len(p.toks) {
		return token{}, false
	}
	return p.toks[p.pos], true
}

func (p *exprParser) next() (token, bool) {
	t, ok := p.peek()
	if ok {
		p.pos++
	}
	return t, ok
}

func (p *exprParser) expectOp(op string) error {
	t, ok := p.next()
	if !ok || t.kind != tokOp || t.text != op {
		return fmt.Errorf("%w: expected %q in %q", ErrExprSyntax, op, p.src)
	}
	return nil
}

var binaryPrec = map[string]int{
	"||": 1,
	"&&": 2,
	"==": 3, "!=": 3, "<": 3, "<=": 3, ">": 3, ">=": 3,
	"+": 4, "-": 4,
	"*": 5, "/": 5, "%": 5,
}

func (p *exprParser) parse(minPrec int) (exprNode, error) {
	left, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		t, ok := p.peek()
		if !ok || t.kind != tokOp {
			return left, nil
		}
		prec, isBin := binaryPrec[t.text]
		if !isBin || prec < minPrec {
			return left, nil
		}
		p.pos++
		right, err := p.parse(prec + 1)
		if err != nil {
			return nil, err
		}
		left = &binaryNode{op: t.text, left: left, right: right}
	}
}

func (p *exprParser) parseUnary() (exprNode, error) {
	t, ok := p.peek()
	if ok && t.kind == tokOp && (t.text == "!" || t.text == "-") {
		p.pos++
		operand, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &unaryNode{op: t.text, operand: operand}, nil
	}
	return p.parsePostfix()
}

func (p *exprParser) parsePostfix() (exprNode, error) {
	n, err := p.parsePrimary()
	if err != nil {
		return nil, err
	}
	for {
		t, ok := p.peek()
		if !ok || t.kind != tokOp {
			return n, nil
		}
		switch t.text {
		case ".":
			p.pos++
			id, ok := p.next()
			if !ok || id.kind != tokIdent {
				return nil, fmt.Errorf("%w: expected field after '.' in %q", ErrExprSyntax, p.src)
			}
			n = &memberNode{base: n, field: id.text}
		case "[":
			p.pos++
			idx, err := p.parse(0)
			if err != nil {
				return nil, err
			}
			if err := p.expectOp("]"); err != nil {
				return nil, err
			}
			n = &indexNode{base: n, index: idx}
		default:
			return n, nil
		}
	}
}

func (p *exprParser) parsePrimary() (exprNode, error) {
	t, ok := p.next()
	if !ok {
		return nil, fmt.Errorf("%w: unexpected end of %q", ErrExprSyntax, p.src)
	}
	switch t.kind {
	case tokNumber:
		if strings.Contains(t.text, ".") {
			f, err := strconv.ParseFloat(t.text, 64)
			if err != nil {
				return nil, fmt.Errorf("%w: bad number %q", ErrExprSyntax, t.text)
			}
			return &literalNode{value: f}, nil
		}
		n, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("%w: bad number %q", ErrExprSyntax, t.text)
		}
		return &literalNode{value: n}, nil
	case tokString:
		return &literalNode{value: t.text}, nil
	case tokIdent:
		switch t.text {
		case "true":
			return &literalNode{value: true}, nil
		case "false":
			return &literalNode{value: false}, nil
		case "nil":
			return &literalNode{value: nil}, nil
		}
		// Function call?
		if nt, ok := p.peek(); ok && nt.kind == tokOp && nt.text == "(" {
			p.pos++
			var args []exprNode
			if ct, ok := p.peek(); ok && !(ct.kind == tokOp && ct.text == ")") {
				for {
					arg, err := p.parse(0)
					if err != nil {
						return nil, err
					}
					args = append(args, arg)
					sep, ok := p.next()
					if !ok || sep.kind != tokOp {
						return nil, fmt.Errorf("%w: expected ',' or ')' in %q", ErrExprSyntax, p.src)
					}
					if sep.text == ")" {
						return &callNode{fn: t.text, args: args}, nil
					}
					if sep.text != "," {
						return nil, fmt.Errorf("%w: expected ',' or ')' in %q", ErrExprSyntax, p.src)
					}
				}
			}
			if err := p.expectOp(")"); err != nil {
				return nil, err
			}
			return &callNode{fn: t.text, args: args}, nil
		}
		return &identNode{name: t.text}, nil
	case tokOp:
		if t.text == "(" {
			inner, err := p.parse(0)
			if err != nil {
				return nil, err
			}
			if err := p.expectOp(")"); err != nil {
				return nil, err
			}
			return inner, nil
		}
	}
	return nil, fmt.Errorf("%w: unexpected token %q in %q", ErrExprSyntax, t.text, p.src)
}

// --- AST & evaluation ---

type exprNode interface {
	eval(env map[string]any) (any, error)
}

type literalNode struct{ value any }

func (n *literalNode) eval(map[string]any) (any, error) { return n.value, nil }

type identNode struct{ name string }

func (n *identNode) eval(env map[string]any) (any, error) {
	if v, ok := env[n.name]; ok {
		return v, nil
	}
	return nil, fmt.Errorf("%w: unknown variable %q", ErrExprEval, n.name)
}

type memberNode struct {
	base  exprNode
	field string
}

func (n *memberNode) eval(env map[string]any) (any, error) {
	base, err := n.base.eval(env)
	if err != nil {
		return nil, err
	}
	m, ok := base.(map[string]any)
	if !ok {
		return nil, fmt.Errorf("%w: member access .%s on %T", ErrExprEval, n.field, base)
	}
	return m[n.field], nil
}

type indexNode struct {
	base  exprNode
	index exprNode
}

func (n *indexNode) eval(env map[string]any) (any, error) {
	base, err := n.base.eval(env)
	if err != nil {
		return nil, err
	}
	idx, err := n.index.eval(env)
	if err != nil {
		return nil, err
	}
	switch b := base.(type) {
	case []any:
		i, ok := idx.(int64)
		if !ok || i < 0 || int(i) >= len(b) {
			return nil, fmt.Errorf("%w: index %v out of range (len %d)", ErrExprEval, idx, len(b))
		}
		return b[i], nil
	case map[string]any:
		k, ok := idx.(string)
		if !ok {
			return nil, fmt.Errorf("%w: map index must be string, got %T", ErrExprEval, idx)
		}
		return b[k], nil
	default:
		return nil, fmt.Errorf("%w: cannot index %T", ErrExprEval, base)
	}
}

type unaryNode struct {
	op      string
	operand exprNode
}

func (n *unaryNode) eval(env map[string]any) (any, error) {
	v, err := n.operand.eval(env)
	if err != nil {
		return nil, err
	}
	switch n.op {
	case "!":
		return !truthy(v), nil
	case "-":
		switch x := v.(type) {
		case int64:
			return -x, nil
		case float64:
			return -x, nil
		}
		return nil, fmt.Errorf("%w: cannot negate %T", ErrExprEval, v)
	}
	return nil, fmt.Errorf("%w: unknown unary %q", ErrExprEval, n.op)
}

type binaryNode struct {
	op          string
	left, right exprNode
}

func (n *binaryNode) eval(env map[string]any) (any, error) {
	// Short-circuit logic first.
	if n.op == "&&" || n.op == "||" {
		l, err := n.left.eval(env)
		if err != nil {
			return nil, err
		}
		if n.op == "&&" && !truthy(l) {
			return false, nil
		}
		if n.op == "||" && truthy(l) {
			return true, nil
		}
		r, err := n.right.eval(env)
		if err != nil {
			return nil, err
		}
		return truthy(r), nil
	}

	l, err := n.left.eval(env)
	if err != nil {
		return nil, err
	}
	r, err := n.right.eval(env)
	if err != nil {
		return nil, err
	}

	switch n.op {
	case "+":
		if ls, ok := l.(string); ok {
			return ls + toStr(r), nil
		}
		if rs, ok := r.(string); ok {
			return toStr(l) + rs, nil
		}
		return arith(l, r, n.op)
	case "-", "*", "/", "%":
		return arith(l, r, n.op)
	case "==":
		return equal(l, r), nil
	case "!=":
		return !equal(l, r), nil
	case "<", "<=", ">", ">=":
		c, err := compareValues(l, r)
		if err != nil {
			return nil, err
		}
		switch n.op {
		case "<":
			return c < 0, nil
		case "<=":
			return c <= 0, nil
		case ">":
			return c > 0, nil
		default:
			return c >= 0, nil
		}
	}
	return nil, fmt.Errorf("%w: unknown operator %q", ErrExprEval, n.op)
}

type callNode struct {
	fn   string
	args []exprNode
}

func (n *callNode) eval(env map[string]any) (any, error) {
	vals := make([]any, len(n.args))
	for i, a := range n.args {
		v, err := a.eval(env)
		if err != nil {
			return nil, err
		}
		vals[i] = v
	}
	return callBuiltin(n.fn, vals)
}

// callBuiltin dispatches the pure builtin functions. There is no way to
// register new ones: the function set is part of the sandbox surface.
func callBuiltin(fn string, args []any) (any, error) {
	argc := func(n int) error {
		if len(args) != n {
			return fmt.Errorf("%w: %s takes %d args, got %d", ErrExprEval, fn, n, len(args))
		}
		return nil
	}
	switch fn {
	case "len":
		if err := argc(1); err != nil {
			return nil, err
		}
		switch v := args[0].(type) {
		case string:
			return int64(len(v)), nil
		case []any:
			return int64(len(v)), nil
		case map[string]any:
			return int64(len(v)), nil
		case []byte:
			return int64(len(v)), nil
		case nil:
			return int64(0), nil
		}
		return nil, fmt.Errorf("%w: len of %T", ErrExprEval, args[0])
	case "str":
		if err := argc(1); err != nil {
			return nil, err
		}
		return toStr(args[0]), nil
	case "num":
		if err := argc(1); err != nil {
			return nil, err
		}
		switch v := args[0].(type) {
		case int64:
			return v, nil
		case float64:
			return v, nil
		case bool:
			if v {
				return int64(1), nil
			}
			return int64(0), nil
		case string:
			if i, err := strconv.ParseInt(strings.TrimSpace(v), 10, 64); err == nil {
				return i, nil
			}
			if f, err := strconv.ParseFloat(strings.TrimSpace(v), 64); err == nil {
				return f, nil
			}
		}
		return nil, fmt.Errorf("%w: num(%v)", ErrExprEval, args[0])
	case "min", "max":
		if len(args) < 1 {
			return nil, fmt.Errorf("%w: %s needs at least one arg", ErrExprEval, fn)
		}
		best := args[0]
		for _, a := range args[1:] {
			c, err := compareValues(a, best)
			if err != nil {
				return nil, err
			}
			if (fn == "min" && c < 0) || (fn == "max" && c > 0) {
				best = a
			}
		}
		return best, nil
	case "contains":
		if err := argc(2); err != nil {
			return nil, err
		}
		s, ok1 := args[0].(string)
		sub, ok2 := args[1].(string)
		if !ok1 || !ok2 {
			return nil, fmt.Errorf("%w: contains needs strings", ErrExprEval)
		}
		return strings.Contains(s, sub), nil
	case "clamp":
		if err := argc(3); err != nil {
			return nil, err
		}
		lo, err1 := compareValues(args[0], args[1])
		hi, err2 := compareValues(args[0], args[2])
		if err1 != nil || err2 != nil {
			return nil, fmt.Errorf("%w: clamp needs comparable args", ErrExprEval)
		}
		if lo < 0 {
			return args[1], nil
		}
		if hi > 0 {
			return args[2], nil
		}
		return args[0], nil
	default:
		return nil, fmt.Errorf("%w: unknown function %q", ErrExprEval, fn)
	}
}

// --- value helpers ---

func truthy(v any) bool {
	switch x := v.(type) {
	case nil:
		return false
	case bool:
		return x
	case int64:
		return x != 0
	case float64:
		return x != 0
	case string:
		return x != ""
	case []any:
		return len(x) > 0
	case map[string]any:
		return len(x) > 0
	default:
		return true
	}
}

func toStr(v any) string {
	switch x := v.(type) {
	case nil:
		return ""
	case string:
		return x
	case int64:
		return strconv.FormatInt(x, 10)
	case float64:
		return strconv.FormatFloat(x, 'g', -1, 64)
	case bool:
		return strconv.FormatBool(x)
	default:
		return fmt.Sprint(x)
	}
}

func arith(l, r any, op string) (any, error) {
	li, lInt := l.(int64)
	ri, rInt := r.(int64)
	if lInt && rInt {
		switch op {
		case "+":
			return li + ri, nil
		case "-":
			return li - ri, nil
		case "*":
			return li * ri, nil
		case "/":
			if ri == 0 {
				return nil, fmt.Errorf("%w: division by zero", ErrExprEval)
			}
			return li / ri, nil
		case "%":
			if ri == 0 {
				return nil, fmt.Errorf("%w: modulo by zero", ErrExprEval)
			}
			return li % ri, nil
		}
	}
	lf, lok := toFloat(l)
	rf, rok := toFloat(r)
	if !lok || !rok {
		return nil, fmt.Errorf("%w: %T %s %T", ErrExprEval, l, op, r)
	}
	switch op {
	case "+":
		return lf + rf, nil
	case "-":
		return lf - rf, nil
	case "*":
		return lf * rf, nil
	case "/":
		if rf == 0 {
			return nil, fmt.Errorf("%w: division by zero", ErrExprEval)
		}
		return lf / rf, nil
	case "%":
		return nil, fmt.Errorf("%w: %% needs integers", ErrExprEval)
	}
	return nil, fmt.Errorf("%w: unknown operator %q", ErrExprEval, op)
}

func toFloat(v any) (float64, bool) {
	switch x := v.(type) {
	case int64:
		return float64(x), true
	case float64:
		return x, true
	default:
		return 0, false
	}
}

func equal(l, r any) bool {
	if lf, ok := toFloat(l); ok {
		if rf, ok := toFloat(r); ok {
			return lf == rf
		}
		return false
	}
	return l == r
}

func compareValues(l, r any) (int, error) {
	if lf, lok := toFloat(l); lok {
		rf, rok := toFloat(r)
		if !rok {
			return 0, fmt.Errorf("%w: comparing %T with %T", ErrExprEval, l, r)
		}
		switch {
		case lf < rf:
			return -1, nil
		case lf > rf:
			return 1, nil
		default:
			return 0, nil
		}
	}
	ls, lok := l.(string)
	rs, rok := r.(string)
	if lok && rok {
		return strings.Compare(ls, rs), nil
	}
	return 0, fmt.Errorf("%w: cannot compare %T with %T", ErrExprEval, l, r)
}
