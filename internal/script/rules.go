package script

import (
	"encoding/json"
	"errors"
	"fmt"
	"time"

	"github.com/alfredo-mw/alfredo/internal/event"
	"github.com/alfredo-mw/alfredo/internal/ui"
)

// Program errors.
var (
	ErrBadProgram = errors.New("script: invalid program")
)

// UITrigger fires on a user interaction with a control. Empty Kind
// matches any interaction on the control.
type UITrigger struct {
	Control string       `json:"control"`
	Kind    ui.EventKind `json:"kind,omitempty"`
}

// EventTrigger fires on a (possibly remote) event whose topic matches
// the pattern.
type EventTrigger struct {
	Topic string `json:"topic"`
}

// PollTrigger periodically invokes a service method and fires with the
// result bound to "result" — the §3.2 Controller that "may periodically
// poll a certain service method ... and react to its changes".
type PollTrigger struct {
	Service    string   `json:"service"`
	Method     string   `json:"method"`
	Args       []string `json:"args,omitempty"` // expressions
	IntervalMs int64    `json:"intervalMs"`
	// OnChange restricts firing to polls whose result differs from the
	// previous one.
	OnChange bool `json:"onChange,omitempty"`
}

// Interval returns the poll period.
func (p *PollTrigger) Interval() time.Duration {
	return time.Duration(p.IntervalMs) * time.Millisecond
}

// Trigger is the tagged union of rule triggers; exactly one field must
// be set.
type Trigger struct {
	UI    *UITrigger    `json:"ui,omitempty"`
	Event *EventTrigger `json:"event,omitempty"`
	Poll  *PollTrigger  `json:"poll,omitempty"`
}

// InvokeAction calls a service method; the result is bound to "result"
// for subsequent actions and optionally stored in a variable.
type InvokeAction struct {
	Service  string   `json:"service"`
	Method   string   `json:"method"`
	Args     []string `json:"args,omitempty"` // expressions
	AssignTo string   `json:"assignTo,omitempty"`
}

// SetControlAction updates a property of a rendered control ("text",
// "value", "items", "image", …).
type SetControlAction struct {
	Control  string `json:"control"`
	Property string `json:"property"`
	Value    string `json:"value"` // expression
}

// SetVarAction updates a controller variable.
type SetVarAction struct {
	Name  string `json:"name"`
	Value string `json:"value"` // expression
}

// PostAction publishes an event on the local event admin (which remote
// peers may have subscribed to).
type PostAction struct {
	Topic string            `json:"topic"`
	Props map[string]string `json:"props,omitempty"` // expressions
}

// Action is the tagged union of rule actions; exactly one field must be
// set.
type Action struct {
	Invoke     *InvokeAction     `json:"invoke,omitempty"`
	SetControl *SetControlAction `json:"setControl,omitempty"`
	SetVar     *SetVarAction     `json:"setVar,omitempty"`
	Post       *PostAction       `json:"post,omitempty"`
}

// Rule binds a trigger to guarded actions.
type Rule struct {
	Name string   `json:"name,omitempty"`
	On   Trigger  `json:"on"`
	When string   `json:"when,omitempty"` // guard expression
	Do   []Action `json:"do"`
}

// Program is a complete shippable controller: initial variables plus
// rules. It is pure data and JSON-serializable.
type Program struct {
	Init  map[string]string `json:"init,omitempty"` // var -> expression
	Rules []Rule            `json:"rules"`
}

// Marshal serializes the program.
func (p *Program) Marshal() ([]byte, error) {
	b, err := json.Marshal(p)
	if err != nil {
		return nil, fmt.Errorf("script: marshaling program: %w", err)
	}
	return b, nil
}

// UnmarshalProgram parses and validates a program.
func UnmarshalProgram(b []byte) (*Program, error) {
	var p Program
	if err := json.Unmarshal(b, &p); err != nil {
		return nil, fmt.Errorf("script: parsing program: %w", err)
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return &p, nil
}

// expressions returns every expression source embedded in the program
// (with duplicates), in a stable order; the controller precompiles them.
func (p *Program) expressions() []string {
	var out []string
	for _, src := range p.Init {
		out = append(out, src)
	}
	for _, r := range p.Rules {
		if r.When != "" {
			out = append(out, r.When)
		}
		if r.On.Poll != nil {
			out = append(out, r.On.Poll.Args...)
		}
		for _, a := range r.Do {
			switch {
			case a.Invoke != nil:
				out = append(out, a.Invoke.Args...)
			case a.SetControl != nil:
				out = append(out, a.SetControl.Value)
			case a.SetVar != nil:
				out = append(out, a.SetVar.Value)
			case a.Post != nil:
				for _, v := range a.Post.Props {
					out = append(out, v)
				}
			}
		}
	}
	return out
}

// Validate checks structural soundness and compiles every embedded
// expression once, so malformed shipped controllers are rejected before
// any rule runs.
func (p *Program) Validate() error {
	for name, src := range p.Init {
		if _, err := ParseExpr(src); err != nil {
			return fmt.Errorf("%w: init %s: %v", ErrBadProgram, name, err)
		}
	}
	for i, r := range p.Rules {
		where := r.Name
		if where == "" {
			where = fmt.Sprintf("rule #%d", i)
		}
		set := 0
		if r.On.UI != nil {
			set++
			if r.On.UI.Control == "" {
				return fmt.Errorf("%w: %s: ui trigger without control", ErrBadProgram, where)
			}
		}
		if r.On.Event != nil {
			set++
			if err := event.ValidatePattern(r.On.Event.Topic); err != nil {
				return fmt.Errorf("%w: %s: %v", ErrBadProgram, where, err)
			}
		}
		if r.On.Poll != nil {
			set++
			// An empty Service targets the session's main service.
			if r.On.Poll.Method == "" {
				return fmt.Errorf("%w: %s: poll trigger needs a method", ErrBadProgram, where)
			}
			if r.On.Poll.IntervalMs <= 0 {
				return fmt.Errorf("%w: %s: poll interval must be positive", ErrBadProgram, where)
			}
			for _, a := range r.On.Poll.Args {
				if _, err := ParseExpr(a); err != nil {
					return fmt.Errorf("%w: %s: poll arg: %v", ErrBadProgram, where, err)
				}
			}
		}
		if set != 1 {
			return fmt.Errorf("%w: %s: exactly one trigger required, got %d", ErrBadProgram, where, set)
		}
		if r.When != "" {
			if _, err := ParseExpr(r.When); err != nil {
				return fmt.Errorf("%w: %s: guard: %v", ErrBadProgram, where, err)
			}
		}
		if len(r.Do) == 0 {
			return fmt.Errorf("%w: %s: no actions", ErrBadProgram, where)
		}
		for j, a := range r.Do {
			if err := validateAction(a); err != nil {
				return fmt.Errorf("%w: %s action #%d: %v", ErrBadProgram, where, j, err)
			}
		}
	}
	return nil
}

func validateAction(a Action) error {
	set := 0
	if a.Invoke != nil {
		set++
		// An empty Service targets the session's main service.
		if a.Invoke.Method == "" {
			return errors.New("invoke needs a method")
		}
		for _, arg := range a.Invoke.Args {
			if _, err := ParseExpr(arg); err != nil {
				return err
			}
		}
	}
	if a.SetControl != nil {
		set++
		if a.SetControl.Control == "" || a.SetControl.Property == "" {
			return errors.New("setControl needs control and property")
		}
		if _, err := ParseExpr(a.SetControl.Value); err != nil {
			return err
		}
	}
	if a.SetVar != nil {
		set++
		if a.SetVar.Name == "" {
			return errors.New("setVar needs a name")
		}
		if _, err := ParseExpr(a.SetVar.Value); err != nil {
			return err
		}
	}
	if a.Post != nil {
		set++
		if err := event.ValidateTopic(a.Post.Topic); err != nil {
			return err
		}
		for _, v := range a.Post.Props {
			if _, err := ParseExpr(v); err != nil {
				return err
			}
		}
	}
	if set != 1 {
		return fmt.Errorf("exactly one action kind required, got %d", set)
	}
	return nil
}
