package discovery

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"github.com/alfredo-mw/alfredo/internal/filter"
)

func newAgentPair(t *testing.T) (*Agent, *Agent) {
	t.Helper()
	bus := NewInProcBus()
	sa, err := NewAgent("shop-screen", bus)
	if err != nil {
		t.Fatal(err)
	}
	ua, err := NewAgent("phone", bus)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		sa.Close()
		ua.Close()
	})
	return sa, ua
}

func discoverCtx() (context.Context, context.CancelFunc) {
	return context.WithTimeout(context.Background(), 100*time.Millisecond)
}

func TestServiceURLParsing(t *testing.T) {
	typ, addr, err := ParseServiceURL("service:alfredo://screen:9278")
	if err != nil || typ != "alfredo" || addr != "screen:9278" {
		t.Errorf("parse = %q, %q, %v", typ, addr, err)
	}
	for _, bad := range []string{"", "alfredo://x", "service:", "service:alfredo", "service://x"} {
		if _, _, err := ParseServiceURL(bad); !errors.Is(err, ErrBadServiceURL) {
			t.Errorf("ParseServiceURL(%q) = %v", bad, err)
		}
	}
	if MakeServiceURL("alfredo", "h:1") != "service:alfredo://h:1" {
		t.Error("MakeServiceURL mismatch")
	}
}

func TestDiscoverByType(t *testing.T) {
	sa, ua := newAgentPair(t)
	_, err := sa.Register(Advertisement{
		URL:        "service:alfredo://shop-screen:9278",
		Attributes: map[string]any{"app": "AlfredOShop"},
	})
	if err != nil {
		t.Fatal(err)
	}
	_, _ = sa.Register(Advertisement{URL: "service:printer://shop-screen:631"})

	ctx, cancel := discoverCtx()
	defer cancel()
	found, err := ua.Discover(ctx, "alfredo", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(found) != 1 || found[0].URL != "service:alfredo://shop-screen:9278" {
		t.Errorf("found = %v", found)
	}
	if found[0].Attributes["app"] != "AlfredOShop" {
		t.Errorf("attributes = %v", found[0].Attributes)
	}
}

func TestDiscoverWithPredicate(t *testing.T) {
	sa, ua := newAgentPair(t)
	_, _ = sa.Register(Advertisement{
		URL:        "service:alfredo://a:1",
		Attributes: map[string]any{"category": "furniture"},
	})
	_, _ = sa.Register(Advertisement{
		URL:        "service:alfredo://b:2",
		Attributes: map[string]any{"category": "vending"},
	})

	ctx, cancel := discoverCtx()
	defer cancel()
	found, err := ua.Discover(ctx, "alfredo", "", filter.MustParse("(category=furniture)"))
	if err != nil {
		t.Fatal(err)
	}
	if len(found) != 1 || found[0].URL != "service:alfredo://a:1" {
		t.Errorf("found = %v", found)
	}
}

func TestDiscoverScope(t *testing.T) {
	sa, ua := newAgentPair(t)
	_, _ = sa.Register(Advertisement{URL: "service:alfredo://a:1", Scope: "mall"})
	_, _ = sa.Register(Advertisement{URL: "service:alfredo://b:2"}) // default scope

	ctx, cancel := discoverCtx()
	defer cancel()
	found, _ := ua.Discover(ctx, "alfredo", "mall", nil)
	if len(found) != 1 || found[0].URL != "service:alfredo://a:1" {
		t.Errorf("scoped discovery = %v", found)
	}
	ctx2, cancel2 := discoverCtx()
	defer cancel2()
	found, _ = ua.Discover(ctx2, "alfredo", "", nil) // "" = default scope
	if len(found) != 1 || found[0].URL != "service:alfredo://b:2" {
		t.Errorf("default scope discovery = %v", found)
	}
}

func TestDeregistration(t *testing.T) {
	sa, ua := newAgentPair(t)
	unregister, _ := sa.Register(Advertisement{URL: "service:alfredo://a:1"})
	unregister()

	ctx, cancel := discoverCtx()
	defer cancel()
	found, _ := ua.Discover(ctx, "alfredo", "", nil)
	if len(found) != 0 {
		t.Errorf("withdrawn advertisement found: %v", found)
	}
}

func TestMultipleResponders(t *testing.T) {
	bus := NewInProcBus()
	for i, name := range []string{"screen-a", "screen-b", "screen-c"} {
		agent, err := NewAgent(name, bus)
		if err != nil {
			t.Fatal(err)
		}
		defer agent.Close()
		_, _ = agent.Register(Advertisement{
			URL:        MakeServiceURL("alfredo", name+":9278"),
			Attributes: map[string]any{"idx": i},
		})
	}
	ua, err := NewAgent("phone", bus)
	if err != nil {
		t.Fatal(err)
	}
	defer ua.Close()

	ctx, cancel := discoverCtx()
	defer cancel()
	found, _ := ua.Discover(ctx, "alfredo", "", nil)
	if len(found) != 3 {
		t.Errorf("found %d services, want 3: %v", len(found), found)
	}
}

func TestAnnouncements(t *testing.T) {
	sa, ua := newAgentPair(t)
	_, _ = sa.Register(Advertisement{URL: "service:alfredo://shop:1"})

	var mu sync.Mutex
	var got []string
	ua.OnAnnouncement(func(adv Advertisement) {
		mu.Lock()
		got = append(got, adv.URL)
		mu.Unlock()
	})

	if err := sa.StartAnnouncing(10 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for {
		mu.Lock()
		n := len(got)
		mu.Unlock()
		if n >= 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("announcements never arrived")
		}
		time.Sleep(2 * time.Millisecond)
	}
	sa.StopAnnouncing()
	mu.Lock()
	if got[0] != "service:alfredo://shop:1" {
		t.Errorf("announced URL = %s", got[0])
	}
	mu.Unlock()
}

func TestAgentClose(t *testing.T) {
	bus := NewInProcBus()
	a, _ := NewAgent("x", bus)
	a.Close()
	a.Close() // idempotent
	if _, err := a.Register(Advertisement{URL: "service:a://b"}); !errors.Is(err, ErrAgentClosed) {
		t.Errorf("Register after close = %v", err)
	}
	if _, err := a.Discover(context.Background(), "a", "", nil); !errors.Is(err, ErrAgentClosed) {
		t.Errorf("Discover after close = %v", err)
	}
	// The name is reusable after leaving.
	b, err := NewAgent("x", bus)
	if err != nil {
		t.Errorf("rejoin after close: %v", err)
	} else {
		b.Close()
	}
}

func TestDuplicateMember(t *testing.T) {
	bus := NewInProcBus()
	a, _ := NewAgent("same", bus)
	defer a.Close()
	if _, err := NewAgent("same", bus); !errors.Is(err, ErrDuplicate) {
		t.Errorf("duplicate join = %v", err)
	}
}

func TestBadPredicateMatchesNothing(t *testing.T) {
	sa, ua := newAgentPair(t)
	_, _ = sa.Register(Advertisement{URL: "service:alfredo://a:1"})
	// Send a raw malformed request; must be ignored, not crash.
	ua.send(Packet{Kind: PacketSrvRqst, RequestID: 99, ServiceType: "alfredo", Scope: DefaultScope, Predicate: "((("})
	time.Sleep(20 * time.Millisecond)
}

func TestRegisterValidatesURL(t *testing.T) {
	bus := NewInProcBus()
	a, _ := NewAgent("v", bus)
	defer a.Close()
	if _, err := a.Register(Advertisement{URL: "not-a-url"}); !errors.Is(err, ErrBadServiceURL) {
		t.Errorf("bad URL register = %v", err)
	}
}
