package discovery

import (
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sync"
)

// DefaultGroup is the default multicast group and port for the UDP bus
// (port 427 is SLP's; an unprivileged port is used instead).
const DefaultGroup = "239.255.255.253:42700"

// maxDatagram bounds accepted discovery datagrams.
const maxDatagram = 60 * 1024

// ErrBusClosed is returned when joining a closed bus.
var ErrBusClosed = errors.New("discovery: bus closed")

// UDPBus is a Bus over UDP multicast, for real cross-process discovery
// on a LAN segment. Packets are JSON datagrams. Multicast may be
// unavailable in restricted environments; NewUDPBus fails cleanly then.
type UDPBus struct {
	group *net.UDPAddr
	recv  *net.UDPConn
	send  *net.UDPConn

	mu      sync.Mutex
	members map[string]func(Packet)
	closed  bool

	wg sync.WaitGroup
}

var _ Bus = (*UDPBus)(nil)

// udpPacket is the wire form of a Packet.
type udpPacket struct {
	Kind        int             `json:"kind"`
	From        string          `json:"from"`
	RequestID   int64           `json:"requestId,omitempty"`
	ServiceType string          `json:"serviceType,omitempty"`
	Scope       string          `json:"scope,omitempty"`
	Predicate   string          `json:"predicate,omitempty"`
	Services    []Advertisement `json:"services,omitempty"`
}

// NewUDPBus joins the multicast group ("" selects DefaultGroup).
func NewUDPBus(group string) (*UDPBus, error) {
	if group == "" {
		group = DefaultGroup
	}
	addr, err := net.ResolveUDPAddr("udp4", group)
	if err != nil {
		return nil, fmt.Errorf("discovery: resolving group %s: %w", group, err)
	}
	recv, err := net.ListenMulticastUDP("udp4", nil, addr)
	if err != nil {
		return nil, fmt.Errorf("discovery: joining multicast group %s: %w", group, err)
	}
	send, err := net.DialUDP("udp4", nil, addr)
	if err != nil {
		_ = recv.Close()
		return nil, fmt.Errorf("discovery: opening send socket: %w", err)
	}
	b := &UDPBus{
		group:   addr,
		recv:    recv,
		send:    send,
		members: make(map[string]func(Packet)),
	}
	b.wg.Add(1)
	go b.readLoop()
	return b, nil
}

func (b *UDPBus) readLoop() {
	defer b.wg.Done()
	buf := make([]byte, maxDatagram)
	for {
		n, _, err := b.recv.ReadFromUDP(buf)
		if err != nil {
			return // socket closed
		}
		var up udpPacket
		if err := json.Unmarshal(buf[:n], &up); err != nil {
			continue // malformed datagrams are ignored
		}
		p := Packet{
			Kind:        PacketKind(up.Kind),
			From:        up.From,
			RequestID:   up.RequestID,
			ServiceType: up.ServiceType,
			Scope:       up.Scope,
			Predicate:   up.Predicate,
			Services:    up.Services,
		}
		b.mu.Lock()
		handlers := make([]func(Packet), 0, len(b.members))
		for name, h := range b.members {
			if name != p.From {
				handlers = append(handlers, h)
			}
		}
		b.mu.Unlock()
		for _, h := range handlers {
			h(p)
		}
	}
}

// Join implements Bus.
func (b *UDPBus) Join(member string, h func(Packet)) (func(Packet), func(), error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return nil, nil, ErrBusClosed
	}
	if _, dup := b.members[member]; dup {
		return nil, nil, fmt.Errorf("%w: %s", ErrDuplicate, member)
	}
	b.members[member] = h

	sendFn := func(p Packet) {
		p.From = member
		payload, err := json.Marshal(udpPacket{
			Kind:        int(p.Kind),
			From:        p.From,
			RequestID:   p.RequestID,
			ServiceType: p.ServiceType,
			Scope:       p.Scope,
			Predicate:   p.Predicate,
			Services:    p.Services,
		})
		if err != nil || len(payload) > maxDatagram {
			return
		}
		_, _ = b.send.Write(payload)
	}
	leave := func() {
		b.mu.Lock()
		defer b.mu.Unlock()
		delete(b.members, member)
	}
	return sendFn, leave, nil
}

// Close leaves the group and stops the reader.
func (b *UDPBus) Close() {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return
	}
	b.closed = true
	b.mu.Unlock()
	_ = b.recv.Close()
	_ = b.send.Close()
	b.wg.Wait()
}
