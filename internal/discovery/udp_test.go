package discovery

import (
	"context"
	"testing"
	"time"
)

// newUDPBusOrSkip joins the multicast group, skipping the test in
// environments without multicast support.
func newUDPBusOrSkip(t *testing.T) *UDPBus {
	t.Helper()
	bus, err := NewUDPBus("239.255.255.253:42713")
	if err != nil {
		t.Skipf("multicast unavailable: %v", err)
	}
	t.Cleanup(bus.Close)
	return bus
}

func TestUDPBusDiscovery(t *testing.T) {
	bus := newUDPBusOrSkip(t)

	sa, err := NewAgent("udp-screen", bus)
	if err != nil {
		t.Fatal(err)
	}
	defer sa.Close()
	ua, err := NewAgent("udp-phone", bus)
	if err != nil {
		t.Fatal(err)
	}
	defer ua.Close()

	if _, err := sa.Register(Advertisement{
		URL:        "service:alfredo://udp-screen:9278",
		Attributes: map[string]any{"transport": "udp"},
	}); err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 300*time.Millisecond)
	defer cancel()
	found, err := ua.Discover(ctx, "alfredo", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(found) != 1 || found[0].URL != "service:alfredo://udp-screen:9278" {
		t.Fatalf("found = %v", found)
	}
}

func TestUDPBusAnnouncements(t *testing.T) {
	bus := newUDPBusOrSkip(t)
	sa, err := NewAgent("udp-annc", bus)
	if err != nil {
		t.Fatal(err)
	}
	defer sa.Close()
	ua, err := NewAgent("udp-listener", bus)
	if err != nil {
		t.Fatal(err)
	}
	defer ua.Close()

	got := make(chan string, 8)
	ua.OnAnnouncement(func(adv Advertisement) {
		select {
		case got <- adv.URL:
		default:
		}
	})
	_, _ = sa.Register(Advertisement{URL: "service:alfredo://udp-annc:1"})
	if err := sa.StartAnnouncing(20 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	defer sa.StopAnnouncing()

	select {
	case url := <-got:
		if url != "service:alfredo://udp-annc:1" {
			t.Errorf("announced = %s", url)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("no announcement over UDP")
	}
}

func TestUDPBusClose(t *testing.T) {
	bus := newUDPBusOrSkip(t)
	bus.Close()
	bus.Close() // idempotent
	if _, _, err := bus.Join("late", func(Packet) {}); err == nil {
		t.Error("join after close accepted")
	}
}
