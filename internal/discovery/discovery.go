// Package discovery implements SLP-style service discovery (paper §3.2;
// R-OSGi uses SLP [10,11]): service agents register advertisements with
// service URLs and attributes, user agents multicast service requests
// with scopes and LDAP predicates and collect replies, and — matching
// the paper's invitation model — agents can periodically broadcast
// announcements that nearby devices surface to their users.
//
// The multicast domain is abstracted as a Bus. InProcBus is the
// in-process implementation used by tests and simulations; it delivers
// every packet to every member except the sender, like a multicast
// group on one segment.
package discovery

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"time"

	"github.com/alfredo-mw/alfredo/internal/filter"
)

// Discovery errors.
var (
	ErrBadServiceURL = errors.New("discovery: malformed service URL")
	ErrAgentClosed   = errors.New("discovery: agent closed")
	ErrDuplicate     = errors.New("discovery: member already joined")
)

// DefaultScope is used when an advertisement or request names none.
const DefaultScope = "default"

// Advertisement describes one discoverable service.
type Advertisement struct {
	// URL locates the service, e.g. "service:alfredo://shop-screen:9278".
	URL string `json:"url"`
	// Scope partitions the discovery domain (SLP scopes).
	Scope string `json:"scope,omitempty"`
	// Attributes are matched against request predicates.
	Attributes map[string]any `json:"attributes,omitempty"`
	// Lifetime bounds the advertisement's validity.
	Lifetime time.Duration `json:"lifetime,omitempty"`
}

// ServiceType extracts the type from the advertisement URL
// ("service:alfredo://x" -> "alfredo").
func (a Advertisement) ServiceType() string {
	t, _, err := ParseServiceURL(a.URL)
	if err != nil {
		return ""
	}
	return t
}

// ParseServiceURL splits "service:<type>://<address>".
func ParseServiceURL(url string) (serviceType, address string, err error) {
	rest, ok := strings.CutPrefix(url, "service:")
	if !ok {
		return "", "", fmt.Errorf("%w: %q lacks service: prefix", ErrBadServiceURL, url)
	}
	serviceType, address, ok = strings.Cut(rest, "://")
	if !ok || serviceType == "" || address == "" {
		return "", "", fmt.Errorf("%w: %q", ErrBadServiceURL, url)
	}
	return serviceType, address, nil
}

// MakeServiceURL builds a service URL.
func MakeServiceURL(serviceType, address string) string {
	return "service:" + serviceType + "://" + address
}

// PacketKind enumerates SLP-style packets.
type PacketKind int

// Packet kinds.
const (
	// PacketSrvRqst asks for services of a type/scope matching a
	// predicate.
	PacketSrvRqst PacketKind = iota + 1
	// PacketSrvRply answers a SrvRqst.
	PacketSrvRply
	// PacketAnnounce is an unsolicited invitation (paper §3.2: "the
	// target device itself may periodically broadcast invitations").
	PacketAnnounce
)

// Packet is one discovery message on the bus.
type Packet struct {
	Kind        PacketKind
	From        string
	RequestID   int64
	ServiceType string
	Scope       string
	Predicate   string
	Services    []Advertisement
}

// Bus is the multicast domain: every member receives every packet sent
// by any other member.
type Bus interface {
	// Join adds a member; the handler receives packets from others.
	// The returned send function broadcasts, leave departs.
	Join(member string, h func(Packet)) (send func(Packet), leave func(), err error)
}

// InProcBus is the in-process multicast segment.
type InProcBus struct {
	mu      sync.Mutex
	members map[string]func(Packet)
}

var _ Bus = (*InProcBus)(nil)

// NewInProcBus creates an empty bus.
func NewInProcBus() *InProcBus {
	return &InProcBus{members: make(map[string]func(Packet))}
}

// Join implements Bus.
func (b *InProcBus) Join(member string, h func(Packet)) (func(Packet), func(), error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if _, dup := b.members[member]; dup {
		return nil, nil, fmt.Errorf("%w: %s", ErrDuplicate, member)
	}
	b.members[member] = h

	send := func(p Packet) {
		p.From = member
		b.mu.Lock()
		handlers := make([]func(Packet), 0, len(b.members))
		for name, mh := range b.members {
			if name != member {
				handlers = append(handlers, mh)
			}
		}
		b.mu.Unlock()
		for _, mh := range handlers {
			mh(p)
		}
	}
	leave := func() {
		b.mu.Lock()
		defer b.mu.Unlock()
		delete(b.members, member)
	}
	return send, leave, nil
}

// Agent is a combined SLP service agent (answers requests for its
// registered services) and user agent (discovers remote services).
type Agent struct {
	name string
	send func(Packet)

	mu        sync.Mutex
	leave     func()
	local     map[string]Advertisement // by URL
	nextReq   int64
	collect   map[int64]chan []Advertisement
	announceH []func(Advertisement)
	closed    bool

	wg       sync.WaitGroup
	stopAnno chan struct{}
}

// NewAgent joins the bus under the given member name.
func NewAgent(name string, bus Bus) (*Agent, error) {
	a := &Agent{
		name:    name,
		local:   make(map[string]Advertisement),
		collect: make(map[int64]chan []Advertisement),
	}
	send, leave, err := bus.Join(name, a.onPacket)
	if err != nil {
		return nil, err
	}
	a.send = send
	a.leave = leave
	return a, nil
}

// Register adds a local advertisement; the returned function withdraws
// it.
func (a *Agent) Register(adv Advertisement) (func(), error) {
	if _, _, err := ParseServiceURL(adv.URL); err != nil {
		return nil, err
	}
	if adv.Scope == "" {
		adv.Scope = DefaultScope
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.closed {
		return nil, ErrAgentClosed
	}
	a.local[adv.URL] = adv
	url := adv.URL
	return func() {
		a.mu.Lock()
		defer a.mu.Unlock()
		delete(a.local, url)
	}, nil
}

// Registered lists local advertisements.
func (a *Agent) Registered() []Advertisement {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make([]Advertisement, 0, len(a.local))
	for _, adv := range a.local {
		out = append(out, adv)
	}
	return out
}

// Discover multicasts a service request and collects replies until the
// context expires or is cancelled. serviceType and scope filter
// candidates ("" matches any type); predicate is an optional RFC 1960
// filter over advertisement attributes.
func (a *Agent) Discover(ctx context.Context, serviceType, scope string, predicate *filter.Filter) ([]Advertisement, error) {
	if scope == "" {
		scope = DefaultScope
	}
	a.mu.Lock()
	if a.closed {
		a.mu.Unlock()
		return nil, ErrAgentClosed
	}
	a.nextReq++
	reqID := a.nextReq
	ch := make(chan []Advertisement, 16)
	a.collect[reqID] = ch
	a.mu.Unlock()

	defer func() {
		a.mu.Lock()
		delete(a.collect, reqID)
		a.mu.Unlock()
	}()

	pred := ""
	if predicate != nil {
		pred = predicate.String()
	}
	a.send(Packet{
		Kind:        PacketSrvRqst,
		RequestID:   reqID,
		ServiceType: serviceType,
		Scope:       scope,
		Predicate:   pred,
	})

	var found []Advertisement
	seen := make(map[string]bool)
	for {
		select {
		case advs := <-ch:
			for _, adv := range advs {
				if !seen[adv.URL] {
					seen[adv.URL] = true
					found = append(found, adv)
				}
			}
		case <-ctx.Done():
			return found, nil
		}
	}
}

// OnAnnouncement registers a handler for unsolicited invitations from
// other devices.
func (a *Agent) OnAnnouncement(h func(Advertisement)) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.announceH = append(a.announceH, h)
}

// StartAnnouncing broadcasts all local advertisements every interval
// until StopAnnouncing or Close.
func (a *Agent) StartAnnouncing(interval time.Duration) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.closed {
		return ErrAgentClosed
	}
	if a.stopAnno != nil {
		return nil // already announcing
	}
	a.stopAnno = make(chan struct{})
	stop := a.stopAnno
	a.wg.Add(1)
	go func() {
		defer a.wg.Done()
		ticker := time.NewTicker(interval)
		defer ticker.Stop()
		for {
			select {
			case <-stop:
				return
			case <-ticker.C:
				for _, adv := range a.Registered() {
					a.send(Packet{Kind: PacketAnnounce, Services: []Advertisement{adv}})
				}
			}
		}
	}()
	return nil
}

// StopAnnouncing halts the announcement loop.
func (a *Agent) StopAnnouncing() {
	a.mu.Lock()
	stop := a.stopAnno
	a.stopAnno = nil
	a.mu.Unlock()
	if stop != nil {
		close(stop)
	}
	a.wg.Wait()
}

// Close leaves the bus and stops announcing.
func (a *Agent) Close() {
	a.mu.Lock()
	if a.closed {
		a.mu.Unlock()
		return
	}
	a.closed = true
	stop := a.stopAnno
	a.stopAnno = nil
	leave := a.leave
	a.mu.Unlock()
	if stop != nil {
		close(stop)
	}
	a.wg.Wait()
	if leave != nil {
		leave()
	}
}

func (a *Agent) onPacket(p Packet) {
	switch p.Kind {
	case PacketSrvRqst:
		a.answerRequest(p)
	case PacketSrvRply:
		a.mu.Lock()
		ch, ok := a.collect[p.RequestID]
		a.mu.Unlock()
		if ok {
			select {
			case ch <- p.Services:
			default:
			}
		}
	case PacketAnnounce:
		a.mu.Lock()
		handlers := make([]func(Advertisement), len(a.announceH))
		copy(handlers, a.announceH)
		a.mu.Unlock()
		for _, adv := range p.Services {
			for _, h := range handlers {
				h(adv)
			}
		}
	}
}

func (a *Agent) answerRequest(p Packet) {
	var pred *filter.Filter
	if p.Predicate != "" {
		f, err := filter.Parse(p.Predicate)
		if err != nil {
			return // malformed predicates match nothing
		}
		pred = f
	}
	var matches []Advertisement
	for _, adv := range a.Registered() {
		if p.ServiceType != "" && adv.ServiceType() != p.ServiceType {
			continue
		}
		if p.Scope != "" && adv.Scope != p.Scope {
			continue
		}
		if pred != nil && !pred.Matches(adv.Attributes) {
			continue
		}
		matches = append(matches, adv)
	}
	if len(matches) == 0 {
		return
	}
	a.send(Packet{Kind: PacketSrvRply, RequestID: p.RequestID, Services: matches})
}
