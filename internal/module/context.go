package module

import (
	"sync"

	"github.com/alfredo-mw/alfredo/internal/filter"
	"github.com/alfredo-mw/alfredo/internal/service"
)

// Context is the bundle's window into the framework while it is active
// (the OSGi BundleContext analog). Everything acquired through a context
// — service registrations, listeners, trackers — is released
// automatically when the bundle stops.
type Context struct {
	fw *Framework
	b  *Bundle

	mu       sync.Mutex
	regs     []*service.Registration
	tokens   []int64
	trackers []*service.Tracker
	closed   bool
}

func newContext(fw *Framework, b *Bundle) *Context {
	return &Context{fw: fw, b: b}
}

// Bundle returns the owning bundle.
func (c *Context) Bundle() *Bundle { return c.b }

// Framework returns the hosting framework.
func (c *Context) Framework() *Framework { return c.fw }

// RegisterService publishes a service owned by this bundle. It is
// unregistered automatically when the bundle stops.
func (c *Context) RegisterService(ifaces []string, svc any, props service.Properties) (*service.Registration, error) {
	reg, err := c.fw.reg.Register(ifaces, svc, props, c.b.owner())
	if err != nil {
		return nil, err
	}
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		_ = reg.Unregister()
		return nil, ErrNotActive
	}
	c.regs = append(c.regs, reg)
	c.mu.Unlock()
	return reg, nil
}

// FindService returns the best reference for iface matching flt.
func (c *Context) FindService(iface string, flt *filter.Filter) *service.Reference {
	return c.fw.reg.Find(iface, flt)
}

// FindServices returns all references for iface matching flt.
func (c *Context) FindServices(iface string, flt *filter.Filter) []*service.Reference {
	return c.fw.reg.FindAll(iface, flt)
}

// GetService resolves a reference to its service object. The returned
// release function must be called when the service is no longer used.
func (c *Context) GetService(ref *service.Reference) (svc any, release func(), ok bool) {
	svc, ok = c.fw.reg.Get(ref, c.b.owner())
	if !ok {
		return nil, func() {}, false
	}
	var once sync.Once
	return svc, func() { once.Do(func() { c.fw.reg.Unget(ref) }) }, true
}

// AddServiceListener subscribes to service events for the lifetime of
// the bundle (or until RemoveServiceListener).
func (c *Context) AddServiceListener(l service.Listener, flt *filter.Filter) int64 {
	tok := c.fw.reg.AddListener(l, flt)
	c.mu.Lock()
	c.tokens = append(c.tokens, tok)
	c.mu.Unlock()
	return tok
}

// RemoveServiceListener cancels a subscription made through this
// context.
func (c *Context) RemoveServiceListener(tok int64) {
	c.fw.reg.RemoveListener(tok)
	c.mu.Lock()
	for i, t := range c.tokens {
		if t == tok {
			c.tokens = append(c.tokens[:i], c.tokens[i+1:]...)
			break
		}
	}
	c.mu.Unlock()
}

// NewTracker creates and opens a service tracker bound to the bundle's
// lifetime.
func (c *Context) NewTracker(iface string, flt *filter.Filter, cbs service.TrackerCallbacks) *service.Tracker {
	tr := service.NewTracker(c.fw.reg, iface, flt, c.b.owner(), cbs)
	c.mu.Lock()
	c.trackers = append(c.trackers, tr)
	c.mu.Unlock()
	tr.Open()
	return tr
}

// InstallBundle installs another archive into the hosting framework.
func (c *Context) InstallBundle(a *Archive) (*Bundle, error) {
	return c.fw.Install(a)
}

// Resource reads a named resource from the owning bundle's archive.
func (c *Context) Resource(name string) ([]byte, bool) {
	return c.b.Resource(name)
}

// cleanup releases everything acquired through the context. It runs
// when the bundle stops.
func (c *Context) cleanup() {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	c.closed = true
	regs := c.regs
	tokens := c.tokens
	trackers := c.trackers
	c.regs, c.tokens, c.trackers = nil, nil, nil
	c.mu.Unlock()

	for _, tr := range trackers {
		tr.Close()
	}
	for _, tok := range tokens {
		c.fw.reg.RemoveListener(tok)
	}
	for _, reg := range regs {
		_ = reg.Unregister()
	}
	// Catch services registered directly against the registry with this
	// bundle's owner string (e.g. by helper libraries).
	c.fw.reg.UnregisterOwned(c.b.owner())
}
