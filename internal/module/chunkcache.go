package module

import (
	"container/list"
	"fmt"
	"os"
	"path/filepath"
	"sync"
)

// ChunkCache is the phone-side half of the acquire data plane: a
// content-addressed chunk store with an LRU byte budget, shared by all
// sessions on a node so chunks persist across leases. Keys are
// ChunkHash digests, so a cached chunk is valid for any service, any
// peer, any version that references the same bytes — warm-starting an
// unchanged service needs only the manifest exchange, and a version
// bump invalidates exactly the chunks whose content changed.
//
// When built with a directory, chunks are additionally persisted as
// one file per hash and reloaded (hash-verified) on startup, so the
// cache survives process restarts.
type ChunkCache struct {
	budget int64
	dir    string // "" = memory only

	mu    sync.Mutex
	order *list.List // front = most recent; values are *cacheEntry
	byKey map[string]*list.Element
	used  int64

	hits, misses, puts, evictions, corruptDropped int64
}

type cacheEntry struct {
	hash string
	data []byte
}

// CacheStats is a snapshot of ChunkCache counters. The conservation
// identity Puts − Evictions == Chunks (corrupt puts are rejected before
// counting) is checked as a sim invariant.
type CacheStats struct {
	Hits, Misses, Puts, Evictions, CorruptDropped int64
	Chunks                                        int
	BytesUsed, BytesBudget                        int64
}

// NewChunkCache creates a cache holding at most budget bytes of chunk
// data. dir, when non-empty, enables disk persistence: existing files
// are loaded (oldest first by name order — access order is lost across
// restarts), and files whose content no longer matches their name are
// deleted and counted as CorruptDropped rather than served.
func NewChunkCache(budget int64, dir string) (*ChunkCache, error) {
	c := &ChunkCache{
		budget: budget,
		dir:    dir,
		order:  list.New(),
		byKey:  make(map[string]*list.Element),
	}
	if dir == "" {
		return c, nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("module: chunk cache dir: %w", err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("module: chunk cache dir: %w", err)
	}
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		path := filepath.Join(dir, e.Name())
		data, err := os.ReadFile(path)
		if err != nil {
			continue
		}
		if ChunkHash(data) != e.Name() {
			os.Remove(path)
			c.corruptDropped++
			continue
		}
		c.insertLocked(e.Name(), data)
	}
	return c, nil
}

// Budget returns the cache's byte budget.
func (c *ChunkCache) Budget() int64 { return c.budget }

// Get returns the cached bytes for hash and marks the chunk recently
// used. The returned slice must not be mutated.
func (c *ChunkCache) Get(hash string) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.byKey[hash]
	if !ok {
		c.misses++
		return nil, false
	}
	c.hits++
	c.order.MoveToFront(el)
	return el.Value.(*cacheEntry).data, true
}

// Contains reports whether hash is cached without touching LRU order
// or hit/miss counters (used when diffing a manifest against the
// cache before deciding what to fetch).
func (c *ChunkCache) Contains(hash string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	_, ok := c.byKey[hash]
	return ok
}

// Put stores a verified chunk. Bytes that do not hash to hash are
// rejected with a *CorruptError — a corrupted transfer can never
// poison the cache. Chunks larger than the whole budget are silently
// skipped (caching them would evict everything else for one entry).
func (c *ChunkCache) Put(hash string, data []byte) error {
	if got := ChunkHash(data); got != hash {
		c.mu.Lock()
		c.corruptDropped++
		c.mu.Unlock()
		return &CorruptError{Ref: "chunk " + short(hash), Expected: hash, Actual: got}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.byKey[hash]; ok {
		c.order.MoveToFront(el)
		return nil
	}
	if int64(len(data)) > c.budget {
		return nil
	}
	cp := make([]byte, len(data))
	copy(cp, data)
	c.insertLocked(hash, cp)
	c.puts++
	if c.dir != "" {
		// Best-effort persistence; the in-memory entry is canonical.
		os.WriteFile(filepath.Join(c.dir, hash), cp, 0o644)
	}
	for c.used > c.budget {
		c.evictLocked()
	}
	return nil
}

func (c *ChunkCache) insertLocked(hash string, data []byte) {
	c.byKey[hash] = c.order.PushFront(&cacheEntry{hash: hash, data: data})
	c.used += int64(len(data))
	for c.used > c.budget {
		c.evictLocked()
	}
}

func (c *ChunkCache) evictLocked() {
	el := c.order.Back()
	if el == nil {
		return
	}
	ent := el.Value.(*cacheEntry)
	c.order.Remove(el)
	delete(c.byKey, ent.hash)
	c.used -= int64(len(ent.data))
	c.evictions++
	if c.dir != "" {
		os.Remove(filepath.Join(c.dir, ent.hash))
	}
}

// Stats returns a snapshot of the cache counters.
func (c *ChunkCache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{
		Hits:           c.hits,
		Misses:         c.misses,
		Puts:           c.puts,
		Evictions:      c.evictions,
		CorruptDropped: c.corruptDropped,
		Chunks:         c.order.Len(),
		BytesUsed:      c.used,
		BytesBudget:    c.budget,
	}
}

// Validate is the cache-coherence check used by the sim harness: every
// entry must still hash to its key, byte accounting must match, and
// usage must respect the budget. It returns the first violation found.
func (c *ChunkCache) Validate() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	var sum int64
	for el := c.order.Front(); el != nil; el = el.Next() {
		ent := el.Value.(*cacheEntry)
		if got := ChunkHash(ent.data); got != ent.hash {
			return &CorruptError{Ref: "cached chunk " + short(ent.hash), Expected: ent.hash, Actual: got}
		}
		sum += int64(len(ent.data))
	}
	if sum != c.used {
		return fmt.Errorf("module: chunk cache accounting: tracked %d bytes, entries total %d", c.used, sum)
	}
	if c.used > c.budget {
		return fmt.Errorf("module: chunk cache over budget: %d > %d", c.used, c.budget)
	}
	if n := c.order.Len(); n != len(c.byKey) {
		return fmt.Errorf("module: chunk cache index skew: %d entries, %d keys", n, len(c.byKey))
	}
	return nil
}

func short(hash string) string {
	if len(hash) > 12 {
		return hash[:12]
	}
	return hash
}
