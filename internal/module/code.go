package module

import (
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"sort"
	"sync"
)

// Code registry errors.
var (
	ErrDuplicateCode = errors.New("module: code already registered under this name")
	ErrUnknownCode   = errors.New("module: no code registered under this name")
)

// Activator receives lifecycle callbacks when its bundle starts and
// stops, the OSGi BundleActivator analog.
type Activator interface {
	Start(ctx *Context) error
	Stop(ctx *Context) error
}

// ActivatorFactory creates a fresh activator instance per bundle start.
type ActivatorFactory func() Activator

// CodeRegistry maps activator names to factories. It stands in for
// dynamic code loading: a manifest's ActivatorRef is looked up here
// instead of being class-loaded from the archive. Names may be plain
// identifiers or content hashes (see HashRef) for the trusted
// smart-proxy distribution model.
type CodeRegistry struct {
	mu        sync.RWMutex
	factories map[string]ActivatorFactory
}

// NewCodeRegistry creates an empty code registry.
func NewCodeRegistry() *CodeRegistry {
	return &CodeRegistry{factories: make(map[string]ActivatorFactory)}
}

// Register adds a factory under name. Registering the same name twice
// is an error, to catch accidental shadowing of installed code.
func (c *CodeRegistry) Register(name string, f ActivatorFactory) error {
	if name == "" || f == nil {
		return fmt.Errorf("module: invalid code registration (name=%q, nil=%v)", name, f == nil)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, dup := c.factories[name]; dup {
		return fmt.Errorf("%w: %s", ErrDuplicateCode, name)
	}
	c.factories[name] = f
	return nil
}

// Lookup returns the factory registered under name.
func (c *CodeRegistry) Lookup(name string) (ActivatorFactory, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	f, ok := c.factories[name]
	return f, ok
}

// Names returns all registered names, sorted.
func (c *CodeRegistry) Names() []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	names := make([]string, 0, len(c.factories))
	for n := range c.factories {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// HashRef derives a content-addressed code reference from an opaque
// descriptor (e.g. the serialized form of smart-proxy code). Peers that
// have pre-installed the same code under HashRef(desc) can activate it
// when the hash arrives over the wire, without any code transfer.
func HashRef(desc []byte) string {
	sum := sha256.Sum256(desc)
	return "sha256:" + hex.EncodeToString(sum[:8])
}
