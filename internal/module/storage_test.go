package module

import (
	"os"
	"path/filepath"
	"testing"
)

func TestBundlePersistenceAcrossBoots(t *testing.T) {
	dir := t.TempDir()

	// Boot 1: install two bundles, one with resources.
	fw1 := NewFramework(Config{Name: "persist", StorageDir: dir})
	if err := fw1.BootError(); err != nil {
		t.Fatalf("boot 1: %v", err)
	}
	a := archive("app.one", "1.2.0")
	a.Resources = map[string][]byte{"cfg": []byte("hello")}
	if _, err := fw1.Install(a); err != nil {
		t.Fatal(err)
	}
	if _, err := fw1.Install(archive("app.two", "2.0.0")); err != nil {
		t.Fatal(err)
	}
	if err := fw1.Shutdown(); err != nil {
		t.Fatal(err)
	}

	// The archives landed on the file system (§4.1 measures exactly
	// this).
	files, _ := filepath.Glob(filepath.Join(dir, "*"+archiveExt))
	if len(files) != 2 {
		t.Fatalf("stored files = %v", files)
	}

	// Boot 2: both bundles come back in INSTALLED state, in order.
	fw2 := NewFramework(Config{Name: "persist", StorageDir: dir})
	if err := fw2.BootError(); err != nil {
		t.Fatalf("boot 2: %v", err)
	}
	defer fw2.Shutdown()
	bundles := fw2.Bundles()
	if len(bundles) != 2 {
		t.Fatalf("restored %d bundles", len(bundles))
	}
	if bundles[0].SymbolicName() != "app.one" || bundles[1].SymbolicName() != "app.two" {
		t.Errorf("restore order: %v, %v", bundles[0], bundles[1])
	}
	if bundles[0].Version().String() != "1.2.0" {
		t.Errorf("version = %v", bundles[0].Version())
	}
	if data, ok := bundles[0].Resource("cfg"); !ok || string(data) != "hello" {
		t.Errorf("resource = %q, %v", data, ok)
	}
}

func TestUninstallRemovesStoredArchive(t *testing.T) {
	dir := t.TempDir()
	fw := NewFramework(Config{Name: "p", StorageDir: dir})
	defer fw.Shutdown()
	b, err := fw.Install(archive("gone", "1.0.0"))
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Uninstall(); err != nil {
		t.Fatal(err)
	}
	files, _ := filepath.Glob(filepath.Join(dir, "*"+archiveExt))
	if len(files) != 0 {
		t.Errorf("archive survived uninstall: %v", files)
	}
}

func TestDynamicBundlesNeverPersist(t *testing.T) {
	dir := t.TempDir()
	fw := NewFramework(Config{Name: "p", StorageDir: dir})
	defer fw.Shutdown()
	if _, err := fw.InstallDynamic(archive("proxy.x", "1.0.0"), &recordingActivator{}); err != nil {
		t.Fatal(err)
	}
	files, _ := filepath.Glob(filepath.Join(dir, "*"+archiveExt))
	if len(files) != 0 {
		t.Errorf("dynamic bundle persisted: %v", files)
	}
}

func TestUpdatePersists(t *testing.T) {
	dir := t.TempDir()
	fw := NewFramework(Config{Name: "p", StorageDir: dir})
	defer fw.Shutdown()
	b, _ := fw.Install(archive("u", "1.0.0"))
	if err := b.Update(archive("u", "1.1.0")); err != nil {
		t.Fatal(err)
	}
	_ = fw.Shutdown()

	fw2 := NewFramework(Config{Name: "p", StorageDir: dir})
	defer fw2.Shutdown()
	restored := fw2.FindBundle("u")
	if restored == nil || restored.Version().String() != "1.1.0" {
		t.Errorf("restored = %v", restored)
	}
}

func TestBootToleratesCorruptArchive(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "000001"+archiveExt), []byte("not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	fw := NewFramework(Config{Name: "p", StorageDir: dir})
	defer fw.Shutdown()
	if fw.BootError() == nil {
		t.Error("corrupt archive not reported")
	}
	// The framework still boots and accepts new installs.
	if _, err := fw.Install(archive("fresh", "1.0.0")); err != nil {
		t.Errorf("install after dirty boot: %v", err)
	}
}

func TestStorageDisabledByDefault(t *testing.T) {
	fw := newTestFramework(t)
	if fw.BootError() != nil {
		t.Errorf("BootError without storage = %v", fw.BootError())
	}
	if _, err := fw.Install(archive("mem", "1.0.0")); err != nil {
		t.Fatal(err)
	}
}
