package module

import (
	"encoding/json"
	"errors"
	"fmt"
	"sort"
)

// Manifest errors.
var (
	ErrNoSymbolicName = errors.New("module: manifest requires a symbolic name")
)

// ExportedPackage declares a package a bundle offers to others.
type ExportedPackage struct {
	Name    string  `json:"name"`
	Version Version `json:"version"`
}

// ImportedPackage declares a package a bundle requires. A zero Range
// accepts any version. Optional imports do not block resolution.
type ImportedPackage struct {
	Name     string       `json:"name"`
	Range    VersionRange `json:"range"`
	Optional bool         `json:"optional,omitempty"`
}

// Manifest is the metadata of a bundle: identity, package wiring
// declarations and the reference to its activator code.
//
// Because Go cannot load code at runtime, ActivatorRef names an entry in
// the framework's CodeRegistry rather than embedding byte code; see the
// package documentation for the substitution rationale.
type Manifest struct {
	SymbolicName string            `json:"symbolicName"`
	Version      Version           `json:"version"`
	Exports      []ExportedPackage `json:"exports,omitempty"`
	Imports      []ImportedPackage `json:"imports,omitempty"`
	ActivatorRef string            `json:"activatorRef,omitempty"`
	Headers      map[string]string `json:"headers,omitempty"`
}

// Validate reports whether the manifest is structurally sound.
func (m *Manifest) Validate() error {
	if m.SymbolicName == "" {
		return ErrNoSymbolicName
	}
	seen := make(map[string]bool, len(m.Exports))
	for _, e := range m.Exports {
		if e.Name == "" {
			return fmt.Errorf("module: bundle %s exports a package with no name", m.SymbolicName)
		}
		key := e.Name + "/" + e.Version.String()
		if seen[key] {
			return fmt.Errorf("module: bundle %s exports %s twice", m.SymbolicName, key)
		}
		seen[key] = true
	}
	for _, i := range m.Imports {
		if i.Name == "" {
			return fmt.Errorf("module: bundle %s imports a package with no name", m.SymbolicName)
		}
	}
	return nil
}

// Archive is an installable unit: a manifest plus named resources
// (descriptors, images, data files). It is the moral equivalent of a
// bundle JAR; Size reports its serialized footprint, which is what the
// paper's §4.1 resource-consumption numbers measure.
type Archive struct {
	Manifest  Manifest          `json:"manifest"`
	Resources map[string][]byte `json:"resources,omitempty"`
}

// Size returns the serialized size of the archive in bytes.
func (a *Archive) Size() int {
	b, err := a.Encode()
	if err != nil {
		return 0
	}
	return len(b)
}

// Encode serializes the archive deterministically (resources in sorted
// key order via JSON object encoding).
func (a *Archive) Encode() ([]byte, error) {
	b, err := json.Marshal(a)
	if err != nil {
		return nil, fmt.Errorf("module: encoding archive %s: %w", a.Manifest.SymbolicName, err)
	}
	return b, nil
}

// DecodeArchive parses an archive previously produced by Encode.
func DecodeArchive(b []byte) (*Archive, error) {
	var a Archive
	if err := json.Unmarshal(b, &a); err != nil {
		return nil, fmt.Errorf("module: decoding archive: %w", err)
	}
	return &a, nil
}

// ResourceNames returns the sorted resource names of the archive.
func (a *Archive) ResourceNames() []string {
	names := make([]string, 0, len(a.Resources))
	for n := range a.Resources {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
