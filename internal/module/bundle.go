package module

import (
	"errors"
	"fmt"
	"sync"
)

// State enumerates the bundle lifecycle states.
type State int

// Bundle lifecycle states, in the usual OSGi progression.
const (
	StateInstalled State = iota + 1
	StateResolved
	StateStarting
	StateActive
	StateStopping
	StateUninstalled
)

func (s State) String() string {
	switch s {
	case StateInstalled:
		return "INSTALLED"
	case StateResolved:
		return "RESOLVED"
	case StateStarting:
		return "STARTING"
	case StateActive:
		return "ACTIVE"
	case StateStopping:
		return "STOPPING"
	case StateUninstalled:
		return "UNINSTALLED"
	default:
		return fmt.Sprintf("State(%d)", int(s))
	}
}

// Lifecycle errors.
var (
	ErrUninstalledBundle = errors.New("module: bundle is uninstalled")
	ErrAlreadyActive     = errors.New("module: bundle is already active")
	ErrNotActive         = errors.New("module: bundle is not active")
)

// ResolutionError reports the imports that could not be wired when a
// bundle failed to resolve.
type ResolutionError struct {
	Bundle  string
	Missing []ImportedPackage
}

func (e *ResolutionError) Error() string {
	return fmt.Sprintf("module: bundle %s unresolved, missing %v", e.Bundle, e.Missing)
}

// Bundle is an installed unit of modularity. All methods are safe for
// concurrent use; lifecycle transitions are serialized per bundle.
type Bundle struct {
	id int64
	fw *Framework

	// opMu serializes lifecycle operations (start/stop/update/uninstall).
	opMu sync.Mutex

	mu        sync.RWMutex
	archive   *Archive
	state     State
	activator Activator
	// dynActivator, when non-nil, overrides the code-registry lookup.
	// It is how runtime-synthesized bundles (remote service proxies)
	// carry their generated activator.
	dynActivator Activator
	ctx          *Context
	// wiring maps each imported package name to the providing bundle id.
	wiring map[string]int64
}

// ID returns the framework-assigned bundle id.
func (b *Bundle) ID() int64 { return b.id }

// SymbolicName returns the manifest symbolic name.
func (b *Bundle) SymbolicName() string {
	b.mu.RLock()
	defer b.mu.RUnlock()
	return b.archive.Manifest.SymbolicName
}

// Version returns the manifest version.
func (b *Bundle) Version() Version {
	b.mu.RLock()
	defer b.mu.RUnlock()
	return b.archive.Manifest.Version
}

// State returns the current lifecycle state.
func (b *Bundle) State() State {
	b.mu.RLock()
	defer b.mu.RUnlock()
	return b.state
}

// Manifest returns a copy of the bundle manifest.
func (b *Bundle) Manifest() Manifest {
	b.mu.RLock()
	defer b.mu.RUnlock()
	return b.archive.Manifest
}

// Resource returns a named resource from the bundle archive.
func (b *Bundle) Resource(name string) ([]byte, bool) {
	b.mu.RLock()
	defer b.mu.RUnlock()
	r, ok := b.archive.Resources[name]
	if !ok {
		return nil, false
	}
	out := make([]byte, len(r))
	copy(out, r)
	return out, true
}

// Footprint returns the serialized size of the bundle archive in bytes.
func (b *Bundle) Footprint() int {
	b.mu.RLock()
	defer b.mu.RUnlock()
	return b.archive.Size()
}

// Wiring returns the import-package wiring established at resolution
// time (import name to provider bundle id).
func (b *Bundle) Wiring() map[string]int64 {
	b.mu.RLock()
	defer b.mu.RUnlock()
	out := make(map[string]int64, len(b.wiring))
	for k, v := range b.wiring {
		out[k] = v
	}
	return out
}

// owner is the registry owner string for services registered through
// this bundle's context.
func (b *Bundle) owner() string {
	return fmt.Sprintf("bundle:%d:%s", b.id, b.SymbolicName())
}

// Start resolves the bundle if necessary, instantiates its activator
// and moves it to ACTIVE. Starting an active bundle is an error;
// starting a bundle with no activator succeeds and only transitions
// state.
func (b *Bundle) Start() error {
	b.opMu.Lock()
	defer b.opMu.Unlock()
	return b.startLocked()
}

func (b *Bundle) startLocked() error {
	switch b.State() {
	case StateUninstalled:
		return fmt.Errorf("%w: %s", ErrUninstalledBundle, b.SymbolicName())
	case StateActive:
		return fmt.Errorf("%w: %s", ErrAlreadyActive, b.SymbolicName())
	case StateInstalled:
		if err := b.fw.resolve(b); err != nil {
			return err
		}
	case StateResolved, StateStarting, StateStopping:
		// StateResolved falls through to the start sequence below;
		// Starting/Stopping cannot be observed here because opMu is held
		// for the whole transition.
	}

	activator, err := b.makeActivator()
	if err != nil {
		return err
	}

	b.setState(StateStarting)
	b.fw.fireEvent(BundleEvent{Type: BundleStarting, Bundle: b})

	ctx := newContext(b.fw, b)
	b.mu.Lock()
	b.ctx = ctx
	b.activator = activator
	b.mu.Unlock()

	if activator != nil {
		if err := activator.Start(ctx); err != nil {
			ctx.cleanup()
			b.mu.Lock()
			b.ctx = nil
			b.activator = nil
			b.mu.Unlock()
			b.setState(StateResolved)
			return fmt.Errorf("module: activator of %s failed to start: %w", b.SymbolicName(), err)
		}
	}
	b.setState(StateActive)
	b.fw.fireEvent(BundleEvent{Type: BundleStarted, Bundle: b})
	b.fw.noteStarted(b.id)
	return nil
}

// Stop deactivates the bundle: the activator's Stop runs, then all
// services registered by the bundle are unregistered and its listeners
// removed.
func (b *Bundle) Stop() error {
	b.opMu.Lock()
	defer b.opMu.Unlock()
	return b.stopLocked()
}

func (b *Bundle) stopLocked() error {
	if b.State() == StateUninstalled {
		return fmt.Errorf("%w: %s", ErrUninstalledBundle, b.SymbolicName())
	}
	if b.State() != StateActive {
		return fmt.Errorf("%w: %s in state %s", ErrNotActive, b.SymbolicName(), b.State())
	}

	b.setState(StateStopping)
	b.fw.fireEvent(BundleEvent{Type: BundleStopping, Bundle: b})

	b.mu.Lock()
	activator := b.activator
	ctx := b.ctx
	b.activator = nil
	b.ctx = nil
	b.mu.Unlock()

	var stopErr error
	if activator != nil {
		stopErr = activator.Stop(ctx)
	}
	if ctx != nil {
		ctx.cleanup()
	}
	b.setState(StateResolved)
	b.fw.fireEvent(BundleEvent{Type: BundleStopped, Bundle: b})
	b.fw.noteStopped(b.id)
	if stopErr != nil {
		return fmt.Errorf("module: activator of %s failed to stop: %w", b.SymbolicName(), stopErr)
	}
	return nil
}

// Update replaces the bundle's archive. An active bundle is stopped,
// updated and restarted, mirroring OSGi update semantics.
func (b *Bundle) Update(a *Archive) error {
	if err := a.Manifest.Validate(); err != nil {
		return err
	}
	b.opMu.Lock()
	defer b.opMu.Unlock()

	if b.State() == StateUninstalled {
		return fmt.Errorf("%w: %s", ErrUninstalledBundle, b.SymbolicName())
	}
	wasActive := b.State() == StateActive
	if wasActive {
		if err := b.stopLocked(); err != nil {
			return err
		}
	}
	b.mu.Lock()
	b.archive = a
	b.state = StateInstalled
	b.wiring = nil
	isDynamic := b.dynActivator != nil
	b.mu.Unlock()
	if !isDynamic {
		if err := b.fw.persist(b); err != nil {
			return err
		}
	}
	b.fw.fireEvent(BundleEvent{Type: BundleUpdated, Bundle: b})

	if wasActive {
		if err := b.startLocked(); err != nil {
			return fmt.Errorf("module: restart after update of %s: %w", b.SymbolicName(), err)
		}
	}
	return nil
}

// Uninstall stops the bundle if active and removes it from the
// framework permanently.
func (b *Bundle) Uninstall() error {
	b.opMu.Lock()
	defer b.opMu.Unlock()

	switch b.State() {
	case StateUninstalled:
		return fmt.Errorf("%w: %s", ErrUninstalledBundle, b.SymbolicName())
	case StateActive:
		if err := b.stopLocked(); err != nil {
			return err
		}
	case StateInstalled, StateResolved, StateStarting, StateStopping:
		// Nothing to tear down beyond removal.
	}
	b.setState(StateUninstalled)
	b.fw.remove(b)
	b.fw.fireEvent(BundleEvent{Type: BundleUninstalled, Bundle: b})
	return nil
}

// Context returns the bundle's context while ACTIVE, or nil.
func (b *Bundle) Context() *Context {
	b.mu.RLock()
	defer b.mu.RUnlock()
	return b.ctx
}

func (b *Bundle) setState(s State) {
	b.mu.Lock()
	b.state = s
	b.mu.Unlock()
}

func (b *Bundle) makeActivator() (Activator, error) {
	b.mu.RLock()
	dyn := b.dynActivator
	ref := b.archive.Manifest.ActivatorRef
	b.mu.RUnlock()
	if dyn != nil {
		return dyn, nil
	}
	if ref == "" {
		return nil, nil
	}
	factory, ok := b.fw.code.Lookup(ref)
	if !ok {
		return nil, fmt.Errorf("%w: %s (bundle %s)", ErrUnknownCode, ref, b.SymbolicName())
	}
	return factory(), nil
}

// String implements fmt.Stringer for diagnostics.
func (b *Bundle) String() string {
	return fmt.Sprintf("bundle{id=%d, name=%s, state=%s}", b.id, b.SymbolicName(), b.State())
}
