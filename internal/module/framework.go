// Package module implements the bundle framework underneath AlfredO —
// the analog of the Concierge OSGi platform the paper runs on. Bundles
// are installable archives with manifests, version-ranged package
// wiring, a lifecycle, and activators; services are published through
// the registry in package service.
//
// Substitution note (see DESIGN.md §2): Go cannot load code at runtime,
// so activator code is resolved through a process-local CodeRegistry (by
// name or content hash) while everything else about a bundle — manifest,
// resources, lifecycle, resolution, events — behaves as in OSGi. Proxy
// bundles for remote services are synthesized at runtime with dynamic
// activators and pass through the same install/resolve/start pipeline,
// which is the operation the paper times in Tables 1 and 2.
package module

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"github.com/alfredo-mw/alfredo/internal/service"
)

// Framework errors.
var (
	ErrFrameworkDown = errors.New("module: framework is shut down")
)

// BundleEventType enumerates bundle lifecycle events.
type BundleEventType int

// Bundle event types.
const (
	BundleInstalled BundleEventType = iota + 1
	BundleResolved
	BundleStarting
	BundleStarted
	BundleStopping
	BundleStopped
	BundleUpdated
	BundleUninstalled
)

func (t BundleEventType) String() string {
	switch t {
	case BundleInstalled:
		return "INSTALLED"
	case BundleResolved:
		return "RESOLVED"
	case BundleStarting:
		return "STARTING"
	case BundleStarted:
		return "STARTED"
	case BundleStopping:
		return "STOPPING"
	case BundleStopped:
		return "STOPPED"
	case BundleUpdated:
		return "UPDATED"
	case BundleUninstalled:
		return "UNINSTALLED"
	default:
		return fmt.Sprintf("BundleEventType(%d)", int(t))
	}
}

// BundleEvent describes a bundle lifecycle transition.
type BundleEvent struct {
	Type   BundleEventType
	Bundle *Bundle
}

// BundleListener receives bundle events synchronously.
type BundleListener func(BundleEvent)

// Config parameterizes a framework instance.
type Config struct {
	// Name identifies the framework instance (typically the device
	// name); it appears in diagnostics and peer identities.
	Name string
	// Code is the activator code registry. A fresh one is created when
	// nil.
	Code *CodeRegistry
	// StorageDir, when set, persists installed bundle archives to disk
	// and reloads them on the next boot (Concierge-style bundle
	// storage). Dynamic bundles (runtime-synthesized proxies) are never
	// persisted.
	StorageDir string
}

// Framework hosts bundles and the service registry. Create instances
// with NewFramework; a Framework must be shut down with Shutdown to
// release bundle resources.
type Framework struct {
	name       string
	reg        *service.Registry
	code       *CodeRegistry
	storageDir string

	mu         sync.Mutex
	bundles    map[int64]*Bundle
	nextID     int64
	listeners  map[int64]BundleListener
	nextTok    int64
	startOrder []int64
	down       bool
	bootErr    error
}

// NewFramework creates and "boots" a framework instance. With a
// storage directory configured, previously persisted bundles are
// reinstalled (state INSTALLED); loading errors are reported through
// the returned framework's BootError.
func NewFramework(cfg Config) *Framework {
	code := cfg.Code
	if code == nil {
		code = NewCodeRegistry()
	}
	name := cfg.Name
	if name == "" {
		name = "framework"
	}
	f := &Framework{
		name:       name,
		reg:        service.NewRegistry(),
		code:       code,
		storageDir: cfg.StorageDir,
		bundles:    make(map[int64]*Bundle),
		listeners:  make(map[int64]BundleListener),
	}
	f.bootErr = f.loadStorage()
	return f
}

// BootError reports problems encountered while reloading persisted
// bundles at boot (nil when storage is disabled or clean).
func (f *Framework) BootError() error { return f.bootErr }

// Name returns the framework instance name.
func (f *Framework) Name() string { return f.name }

// Registry returns the framework's service registry.
func (f *Framework) Registry() *service.Registry { return f.reg }

// Code returns the framework's activator code registry.
func (f *Framework) Code() *CodeRegistry { return f.code }

// Install adds an archive as a new bundle in state INSTALLED.
func (f *Framework) Install(a *Archive) (*Bundle, error) {
	return f.install(a, nil)
}

// InstallDynamic installs an archive whose activator is supplied
// directly instead of via the code registry. This is how the remote
// layer installs runtime-synthesized proxy bundles.
func (f *Framework) InstallDynamic(a *Archive, act Activator) (*Bundle, error) {
	if act == nil {
		return nil, fmt.Errorf("module: InstallDynamic requires an activator for %s", a.Manifest.SymbolicName)
	}
	return f.install(a, act)
}

func (f *Framework) install(a *Archive, dyn Activator) (*Bundle, error) {
	if err := a.Manifest.Validate(); err != nil {
		return nil, err
	}
	f.mu.Lock()
	if f.down {
		f.mu.Unlock()
		return nil, ErrFrameworkDown
	}
	f.nextID++
	b := &Bundle{
		id:           f.nextID,
		fw:           f,
		archive:      a,
		state:        StateInstalled,
		dynActivator: dyn,
	}
	f.bundles[b.id] = b
	f.mu.Unlock()

	// Only code-registry bundles persist; dynamic proxies are
	// per-interaction artifacts (§4.1: never cached).
	if dyn == nil {
		if err := f.persist(b); err != nil {
			f.mu.Lock()
			delete(f.bundles, b.id)
			f.mu.Unlock()
			return nil, err
		}
	}

	f.fireEvent(BundleEvent{Type: BundleInstalled, Bundle: b})
	return b, nil
}

// InstallAndStart installs an archive and starts the bundle.
func (f *Framework) InstallAndStart(a *Archive) (*Bundle, error) {
	b, err := f.Install(a)
	if err != nil {
		return nil, err
	}
	if err := b.Start(); err != nil {
		return b, err
	}
	return b, nil
}

// Bundle returns the bundle with the given id, or nil.
func (f *Framework) Bundle(id int64) *Bundle {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.bundles[id]
}

// FindBundle returns the installed bundle with the given symbolic name
// (the highest version when several are installed), or nil.
func (f *Framework) FindBundle(symbolicName string) *Bundle {
	f.mu.Lock()
	defer f.mu.Unlock()
	var best *Bundle
	for _, b := range f.bundles {
		if b.SymbolicName() != symbolicName {
			continue
		}
		if best == nil || b.Version().Compare(best.Version()) > 0 {
			best = b
		}
	}
	return best
}

// Bundles returns all installed bundles ordered by id.
func (f *Framework) Bundles() []*Bundle {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]*Bundle, 0, len(f.bundles))
	for _, b := range f.bundles {
		out = append(out, b)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].id < out[j].id })
	return out
}

// Footprint returns the total serialized size of all installed bundles,
// the number the paper's §4.1 reports as the platform footprint.
func (f *Framework) Footprint() int {
	total := 0
	for _, b := range f.Bundles() {
		total += b.Footprint()
	}
	return total
}

// AddBundleListener subscribes to bundle events; the returned token is
// passed to RemoveBundleListener.
func (f *Framework) AddBundleListener(l BundleListener) int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.nextTok++
	f.listeners[f.nextTok] = l
	return f.nextTok
}

// RemoveBundleListener cancels a subscription.
func (f *Framework) RemoveBundleListener(tok int64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	delete(f.listeners, tok)
}

// Shutdown stops all active bundles in reverse start order and closes
// the service registry. The framework cannot be used afterwards.
func (f *Framework) Shutdown() error {
	f.mu.Lock()
	if f.down {
		f.mu.Unlock()
		return nil
	}
	f.down = true
	order := make([]int64, len(f.startOrder))
	copy(order, f.startOrder)
	f.mu.Unlock()

	var errs []error
	for i := len(order) - 1; i >= 0; i-- {
		b := f.Bundle(order[i])
		if b != nil && b.State() == StateActive {
			if err := b.Stop(); err != nil {
				errs = append(errs, err)
			}
		}
	}
	f.reg.Close()
	return errors.Join(errs...)
}

// resolve wires a bundle's imports against the exports of installed
// bundles, transitively resolving providers. Cycles are tolerated by
// treating in-progress bundles as resolvable.
func (f *Framework) resolve(b *Bundle) error {
	if err := f.resolveRec(b, map[int64]bool{}); err != nil {
		return err
	}
	return nil
}

func (f *Framework) resolveRec(b *Bundle, inProgress map[int64]bool) error {
	if b.State() != StateInstalled || inProgress[b.id] {
		return nil
	}
	inProgress[b.id] = true

	manifest := b.Manifest()
	wiring := make(map[string]int64, len(manifest.Imports))
	var missing []ImportedPackage
	var providers []*Bundle
	for _, imp := range manifest.Imports {
		p := f.findProvider(imp, b.id)
		if p == nil {
			if !imp.Optional {
				missing = append(missing, imp)
			}
			continue
		}
		wiring[imp.Name] = p.id
		providers = append(providers, p)
	}
	if len(missing) > 0 {
		return &ResolutionError{Bundle: manifest.SymbolicName, Missing: missing}
	}
	for _, p := range providers {
		if err := f.resolveRec(p, inProgress); err != nil {
			return fmt.Errorf("module: resolving dependency %s of %s: %w",
				p.SymbolicName(), manifest.SymbolicName, err)
		}
	}

	b.mu.Lock()
	b.wiring = wiring
	if b.state == StateInstalled {
		b.state = StateResolved
	}
	b.mu.Unlock()
	f.fireEvent(BundleEvent{Type: BundleResolved, Bundle: b})
	return nil
}

// findProvider selects the best export for an import: highest version
// within range; ties break toward the lowest bundle id. A bundle may
// satisfy its own import (self-wiring).
func (f *Framework) findProvider(imp ImportedPackage, _ int64) *Bundle {
	f.mu.Lock()
	defer f.mu.Unlock()
	var best *Bundle
	var bestVersion Version
	for _, cand := range f.bundles {
		if cand.State() == StateUninstalled {
			continue
		}
		for _, exp := range cand.Manifest().Exports {
			if exp.Name != imp.Name || !imp.Range.Includes(exp.Version) {
				continue
			}
			switch c := exp.Version.Compare(bestVersion); {
			case best == nil || c > 0:
				best, bestVersion = cand, exp.Version
			case c == 0 && cand.id < best.id:
				best = cand
			}
		}
	}
	return best
}

func (f *Framework) remove(b *Bundle) {
	f.mu.Lock()
	delete(f.bundles, b.id)
	f.mu.Unlock()
	f.unpersist(b.id)
}

func (f *Framework) noteStarted(id int64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.startOrder = append(f.startOrder, id)
}

func (f *Framework) noteStopped(id int64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	for i, v := range f.startOrder {
		if v == id {
			f.startOrder = append(f.startOrder[:i], f.startOrder[i+1:]...)
			break
		}
	}
}

func (f *Framework) fireEvent(ev BundleEvent) {
	f.mu.Lock()
	toks := make([]int64, 0, len(f.listeners))
	for t := range f.listeners {
		toks = append(toks, t)
	}
	sort.Slice(toks, func(i, j int) bool { return toks[i] < toks[j] })
	ls := make([]BundleListener, len(toks))
	for i, t := range toks {
		ls[i] = f.listeners[t]
	}
	f.mu.Unlock()

	for _, l := range ls {
		l(ev)
	}
}
