package module

import (
	"errors"
	"testing"
	"testing/quick"
)

func TestParseVersion(t *testing.T) {
	cases := []struct {
		in   string
		want Version
	}{
		{"1", Version{Major: 1}},
		{"1.2", Version{Major: 1, Minor: 2}},
		{"1.2.3", Version{Major: 1, Minor: 2, Micro: 3}},
		{"1.2.3.beta", Version{Major: 1, Minor: 2, Micro: 3, Qualifier: "beta"}},
		{" 4.1.0 ", Version{Major: 4, Minor: 1}},
	}
	for _, c := range cases {
		got, err := ParseVersion(c.in)
		if err != nil {
			t.Errorf("ParseVersion(%q): %v", c.in, err)
			continue
		}
		if got != c.want {
			t.Errorf("ParseVersion(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestParseVersionErrors(t *testing.T) {
	for _, s := range []string{"", "a", "1.a", "-1", "1.-2", "1..2"} {
		if _, err := ParseVersion(s); err == nil {
			t.Errorf("ParseVersion(%q) should fail", s)
		} else if !errors.Is(err, ErrVersionSyntax) {
			t.Errorf("ParseVersion(%q) error %v not ErrVersionSyntax", s, err)
		}
	}
}

func TestVersionCompare(t *testing.T) {
	ordered := []string{"0.0.0", "0.0.1", "0.1.0", "1.0.0", "1.0.0.alpha", "1.0.0.beta", "1.0.1", "2.0.0"}
	for i := 1; i < len(ordered); i++ {
		a, b := MustParseVersion(ordered[i-1]), MustParseVersion(ordered[i])
		if a.Compare(b) >= 0 {
			t.Errorf("%s should sort before %s", a, b)
		}
		if b.Compare(a) <= 0 {
			t.Errorf("%s should sort after %s", b, a)
		}
	}
	v := MustParseVersion("1.2.3")
	if v.Compare(v) != 0 {
		t.Error("version not equal to itself")
	}
}

func TestVersionRange(t *testing.T) {
	cases := []struct {
		rng     string
		version string
		want    bool
	}{
		{"", "0.0.0", true},
		{"", "99.0.0", true},
		{"1.0", "0.9.0", false},
		{"1.0", "1.0.0", true},
		{"1.0", "5.0.0", true},
		{"[1.0,2.0)", "1.0.0", true},
		{"[1.0,2.0)", "1.9.9", true},
		{"[1.0,2.0)", "2.0.0", false},
		{"[1.0,2.0]", "2.0.0", true},
		{"(1.0,2.0]", "1.0.0", false},
		{"(1.0,2.0]", "1.0.1", true},
	}
	for _, c := range cases {
		r := MustParseVersionRange(c.rng)
		v := MustParseVersion(c.version)
		if got := r.Includes(v); got != c.want {
			t.Errorf("range %q includes %q = %v, want %v", c.rng, c.version, got, c.want)
		}
	}
}

func TestVersionRangeErrors(t *testing.T) {
	for _, s := range []string{"[1.0", "[1.0,2.0", "[2.0,1.0]", "[a,b]", "[1.0,2.0,3.0]", "[1.0]"} {
		if _, err := ParseVersionRange(s); err == nil {
			t.Errorf("ParseVersionRange(%q) should fail", s)
		}
	}
}

func TestVersionStringRoundTrip(t *testing.T) {
	prop := func(maj, min, mic uint8) bool {
		v := Version{Major: int(maj), Minor: int(min), Micro: int(mic)}
		p, err := ParseVersion(v.String())
		return err == nil && p == v
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestVersionRangeStringRoundTrip(t *testing.T) {
	for _, s := range []string{"1.0.0", "[1.0.0,2.0.0)", "(1.0.0,2.0.0]", "[1.2.3,1.2.3]"} {
		r := MustParseVersionRange(s)
		r2 := MustParseVersionRange(r.String())
		if r.String() != r2.String() {
			t.Errorf("range round trip %q -> %q -> %q", s, r.String(), r2.String())
		}
	}
}

func TestVersionCompareAntisymmetric(t *testing.T) {
	prop := func(a, b uint16) bool {
		va := Version{Major: int(a >> 8), Minor: int(a & 0xff)}
		vb := Version{Major: int(b >> 8), Minor: int(b & 0xff)}
		return va.Compare(vb) == -vb.Compare(va)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}
