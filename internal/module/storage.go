package module

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// Bundle persistence: with Config.StorageDir set, installed archives
// are written to disk and reloaded on the next framework boot — the
// Concierge behaviour behind the paper's §4.1 remark that a proxy
// bundle "consumes 6 kBytes on the file system". Dynamic bundles
// (runtime-synthesized proxies) are deliberately NOT persisted: the
// paper's model uninstalls them at the end of every interaction.

const archiveExt = ".bundle.json"

// persist writes a bundle's archive into the storage directory.
func (f *Framework) persist(b *Bundle) error {
	if f.storageDir == "" {
		return nil
	}
	data, err := b.archiveBytes()
	if err != nil {
		return err
	}
	path := f.archivePath(b.id)
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return fmt.Errorf("module: persisting bundle %d: %w", b.id, err)
	}
	return nil
}

// unpersist removes a bundle's stored archive.
func (f *Framework) unpersist(id int64) {
	if f.storageDir == "" {
		return
	}
	_ = os.Remove(f.archivePath(id))
}

func (f *Framework) archivePath(id int64) string {
	return filepath.Join(f.storageDir, fmt.Sprintf("%06d%s", id, archiveExt))
}

func (b *Bundle) archiveBytes() ([]byte, error) {
	b.mu.RLock()
	defer b.mu.RUnlock()
	return b.archive.Encode()
}

// loadStorage restores persisted bundles into state INSTALLED, in their
// original id order (ids are reassigned contiguously).
func (f *Framework) loadStorage() error {
	if f.storageDir == "" {
		return nil
	}
	if err := os.MkdirAll(f.storageDir, 0o755); err != nil {
		return fmt.Errorf("module: creating storage dir: %w", err)
	}
	entries, err := os.ReadDir(f.storageDir)
	if err != nil {
		return fmt.Errorf("module: reading storage dir: %w", err)
	}
	names := make([]string, 0, len(entries))
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), archiveExt) {
			names = append(names, e.Name())
		}
	}
	sort.Slice(names, func(i, j int) bool {
		return storedID(names[i]) < storedID(names[j])
	})

	var errs []error
	for _, name := range names {
		data, err := os.ReadFile(filepath.Join(f.storageDir, name))
		if err != nil {
			errs = append(errs, err)
			continue
		}
		a, err := DecodeArchive(data)
		if err != nil {
			// Undecodable stored bytes are corruption, not a config
			// error: surface a typed CorruptError carrying the content
			// digest so callers can errors.Is(err, ErrBundleCorrupt)
			// and refetch instead of failing the session.
			cerr := &CorruptError{Ref: "stored bundle " + name, Actual: ChunkHash(data)}
			errs = append(errs, fmt.Errorf("%w: %v", cerr, err))
			continue
		}
		// Remove the stale file; install re-persists under the new id.
		_ = os.Remove(filepath.Join(f.storageDir, name))
		if _, err := f.Install(a); err != nil {
			errs = append(errs, fmt.Errorf("module: reinstalling %s: %w", a.Manifest.SymbolicName, err))
		}
	}
	return errors.Join(errs...)
}

func storedID(name string) int64 {
	base := strings.TrimSuffix(name, archiveExt)
	id, err := strconv.ParseInt(base, 10, 64)
	if err != nil {
		return 1 << 62 // malformed names sort last
	}
	return id
}
