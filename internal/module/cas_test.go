package module

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"
)

func randBytes(seed int64, n int) []byte {
	r := rand.New(rand.NewSource(seed))
	b := make([]byte, n)
	r.Read(b)
	return b
}

func TestSplitChunksRoundTrip(t *testing.T) {
	for _, n := range []int{0, 1, 100, 4096, 4097, 10000} {
		data := randBytes(int64(n)+1, n)
		refs, parts := SplitChunks(data, 4096)
		if len(refs) != len(parts) {
			t.Fatalf("n=%d: %d refs vs %d parts", n, len(refs), len(parts))
		}
		var total int64
		var joined []byte
		for i, p := range parts {
			if ChunkHash(p) != refs[i].Hash {
				t.Fatalf("n=%d: chunk %d hash mismatch", n, i)
			}
			total += refs[i].Size
			joined = append(joined, p...)
		}
		if total != int64(n) || !bytes.Equal(joined, data) {
			t.Fatalf("n=%d: reassembly mismatch", n)
		}
	}
}

func TestAssembleChunksVerifies(t *testing.T) {
	data := randBytes(7, 9000)
	refs, parts := SplitChunks(data, 4096)
	m := BundleManifest{
		Version:    1,
		ChunkBytes: 4096,
		TotalBytes: int64(len(data)),
		Root:       ManifestRoot(refs),
		Chunks:     refs,
	}
	byHash := make(map[string][]byte)
	for i, p := range parts {
		byHash[refs[i].Hash] = p
	}
	get := func(h string) ([]byte, bool) { d, ok := byHash[h]; return d, ok }

	out, err := AssembleChunks(m, get)
	if err != nil || !bytes.Equal(out, data) {
		t.Fatalf("assemble: err=%v, equal=%v", err, bytes.Equal(out, data))
	}

	// A flipped bit in one chunk must surface as ErrBundleCorrupt.
	bad := append([]byte(nil), parts[1]...)
	bad[0] ^= 0xff
	byHash[refs[1].Hash] = bad
	if _, err := AssembleChunks(m, get); !errors.Is(err, ErrBundleCorrupt) {
		t.Fatalf("corrupt chunk: got %v, want ErrBundleCorrupt", err)
	}
	byHash[refs[1].Hash] = parts[1]

	// A tampered root must fail before any chunk is read.
	m.Root = ChunkHash([]byte("not the root"))
	if _, err := AssembleChunks(m, get); !errors.Is(err, ErrBundleCorrupt) {
		t.Fatalf("bad root: got %v, want ErrBundleCorrupt", err)
	}
}

func TestArtifactStoreVersioning(t *testing.T) {
	s := NewArtifactStore(4096)
	a := randBytes(1, 10000)

	m1 := s.Manifest("svc", a)
	if m1.Version != 1 || m1.TotalBytes != int64(len(a)) || len(m1.Chunks) != 3 {
		t.Fatalf("first manifest: %+v", m1)
	}
	// Unchanged content: identical manifest, no version bump.
	m2 := s.Manifest("svc", append([]byte(nil), a...))
	if m2.Version != 1 || m2.Root != m1.Root {
		t.Fatalf("unchanged content bumped manifest: %+v", m2)
	}

	// Mutate only the tail: version bumps, shared prefix chunks keep
	// their hashes (the delta is exactly the changed chunks).
	b := append([]byte(nil), a...)
	b[len(b)-1] ^= 0xff
	m3 := s.Manifest("svc", b)
	if m3.Version != 2 || m3.Root == m1.Root {
		t.Fatalf("changed content: %+v", m3)
	}
	if m3.Chunks[0] != m1.Chunks[0] || m3.Chunks[1] != m1.Chunks[1] {
		t.Fatal("unchanged chunks changed hash")
	}
	if m3.Chunks[2] == m1.Chunks[2] {
		t.Fatal("changed chunk kept its hash")
	}

	// Every chunk of the live manifest is servable; the replaced tail
	// chunk of version 1 has been released.
	for _, ref := range m3.Chunks {
		if _, ok := s.Chunk(ref.Hash); !ok {
			t.Fatalf("live chunk %.12s not servable", ref.Hash)
		}
	}
	if _, ok := s.Chunk(m1.Chunks[2].Hash); ok {
		t.Fatal("stale chunk still stored after replacement")
	}

	s.Drop("svc")
	if _, ok := s.Chunk(m3.Chunks[0].Hash); ok {
		t.Fatal("chunk survived Drop")
	}
}

func TestArtifactStoreSharedChunks(t *testing.T) {
	s := NewArtifactStore(4096)
	shared := randBytes(3, 8192)
	m1 := s.Manifest("a", shared)
	m2 := s.Manifest("b", shared)
	if m1.Root != m2.Root {
		t.Fatal("identical content under two keys produced different roots")
	}
	s.Drop("a")
	// "b" still references the shared chunks.
	for _, ref := range m2.Chunks {
		if _, ok := s.Chunk(ref.Hash); !ok {
			t.Fatal("shared chunk released while still referenced")
		}
	}
}
