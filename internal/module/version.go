package module

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
)

// ErrVersionSyntax is wrapped by all version parse errors.
var ErrVersionSyntax = errors.New("module: invalid version syntax")

// Version is an OSGi-style three-part version number with an optional
// qualifier. Versions are compared numerically on the three parts, then
// lexically on the qualifier.
type Version struct {
	Major     int
	Minor     int
	Micro     int
	Qualifier string
}

// ParseVersion parses "major[.minor[.micro[.qualifier]]]".
func ParseVersion(s string) (Version, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return Version{}, fmt.Errorf("%w: empty version", ErrVersionSyntax)
	}
	parts := strings.SplitN(s, ".", 4)
	var v Version
	var err error
	if v.Major, err = parsePart(parts[0]); err != nil {
		return Version{}, err
	}
	if len(parts) > 1 {
		if v.Minor, err = parsePart(parts[1]); err != nil {
			return Version{}, err
		}
	}
	if len(parts) > 2 {
		if v.Micro, err = parsePart(parts[2]); err != nil {
			return Version{}, err
		}
	}
	if len(parts) > 3 {
		v.Qualifier = parts[3]
	}
	return v, nil
}

func parsePart(s string) (int, error) {
	n, err := strconv.Atoi(strings.TrimSpace(s))
	if err != nil || n < 0 {
		return 0, fmt.Errorf("%w: bad numeric component %q", ErrVersionSyntax, s)
	}
	return n, nil
}

// MustParseVersion is ParseVersion panicking on error, for constants.
func MustParseVersion(s string) Version {
	v, err := ParseVersion(s)
	if err != nil {
		panic(err)
	}
	return v
}

// Compare returns -1, 0 or 1 as v is less than, equal to or greater
// than o.
func (v Version) Compare(o Version) int {
	if c := cmpInt(v.Major, o.Major); c != 0 {
		return c
	}
	if c := cmpInt(v.Minor, o.Minor); c != 0 {
		return c
	}
	if c := cmpInt(v.Micro, o.Micro); c != 0 {
		return c
	}
	return strings.Compare(v.Qualifier, o.Qualifier)
}

func cmpInt(a, b int) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	default:
		return 0
	}
}

// String renders the canonical dotted form.
func (v Version) String() string {
	s := fmt.Sprintf("%d.%d.%d", v.Major, v.Minor, v.Micro)
	if v.Qualifier != "" {
		s += "." + v.Qualifier
	}
	return s
}

// VersionRange is an OSGi version range. The zero value matches every
// version (the "unbounded from 0.0.0" default of a bare import).
type VersionRange struct {
	Min          Version
	MinExclusive bool
	// Max is nil for an unbounded range.
	Max          *Version
	MaxExclusive bool
}

// ParseVersionRange parses either a single version "1.2" (meaning
// [1.2, infinity)) or an interval "[1.0,2.0)" with the usual bracket
// conventions.
func ParseVersionRange(s string) (VersionRange, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return VersionRange{}, nil
	}
	if s[0] != '[' && s[0] != '(' {
		min, err := ParseVersion(s)
		if err != nil {
			return VersionRange{}, err
		}
		return VersionRange{Min: min}, nil
	}
	if len(s) < 2 {
		return VersionRange{}, fmt.Errorf("%w: truncated range %q", ErrVersionSyntax, s)
	}
	last := s[len(s)-1]
	if last != ']' && last != ')' {
		return VersionRange{}, fmt.Errorf("%w: range %q must end with ']' or ')'", ErrVersionSyntax, s)
	}
	body := s[1 : len(s)-1]
	parts := strings.Split(body, ",")
	if len(parts) != 2 {
		return VersionRange{}, fmt.Errorf("%w: range %q must have two endpoints", ErrVersionSyntax, s)
	}
	min, err := ParseVersion(parts[0])
	if err != nil {
		return VersionRange{}, err
	}
	max, err := ParseVersion(parts[1])
	if err != nil {
		return VersionRange{}, err
	}
	if max.Compare(min) < 0 {
		return VersionRange{}, fmt.Errorf("%w: range %q is empty", ErrVersionSyntax, s)
	}
	return VersionRange{
		Min:          min,
		MinExclusive: s[0] == '(',
		Max:          &max,
		MaxExclusive: last == ')',
	}, nil
}

// MustParseVersionRange is ParseVersionRange panicking on error.
func MustParseVersionRange(s string) VersionRange {
	r, err := ParseVersionRange(s)
	if err != nil {
		panic(err)
	}
	return r
}

// Includes reports whether v lies within the range.
func (r VersionRange) Includes(v Version) bool {
	c := v.Compare(r.Min)
	if c < 0 || (c == 0 && r.MinExclusive) {
		return false
	}
	if r.Max == nil {
		return true
	}
	c = v.Compare(*r.Max)
	return c < 0 || (c == 0 && !r.MaxExclusive)
}

// String renders the canonical range form.
func (r VersionRange) String() string {
	if r.Max == nil {
		if r.MinExclusive {
			// Not expressible in shorthand; render as open interval.
			return "(" + r.Min.String() + ",)"
		}
		return r.Min.String()
	}
	lo, hi := "[", "]"
	if r.MinExclusive {
		lo = "("
	}
	if r.MaxExclusive {
		hi = ")"
	}
	return lo + r.Min.String() + "," + r.Max.String() + hi
}
