package module

import (
	"errors"
	"fmt"
	"github.com/alfredo-mw/alfredo/internal/service"
	"testing"
)

// recordingActivator records lifecycle calls and optionally fails.
type recordingActivator struct {
	started, stopped int
	failStart        error
	failStop         error
	onStart          func(ctx *Context) error
}

func (a *recordingActivator) Start(ctx *Context) error {
	a.started++
	if a.failStart != nil {
		return a.failStart
	}
	if a.onStart != nil {
		return a.onStart(ctx)
	}
	return nil
}

func (a *recordingActivator) Stop(ctx *Context) error {
	a.stopped++
	return a.failStop
}

func newTestFramework(t *testing.T) *Framework {
	t.Helper()
	fw := NewFramework(Config{Name: "test"})
	t.Cleanup(func() {
		if err := fw.Shutdown(); err != nil {
			t.Errorf("Shutdown: %v", err)
		}
	})
	return fw
}

func archive(name, version string) *Archive {
	return &Archive{Manifest: Manifest{
		SymbolicName: name,
		Version:      MustParseVersion(version),
	}}
}

func TestInstallStartStop(t *testing.T) {
	fw := newTestFramework(t)
	act := &recordingActivator{}
	if err := fw.Code().Register("test.act", func() Activator { return act }); err != nil {
		t.Fatalf("Register code: %v", err)
	}

	a := archive("com.example.a", "1.0.0")
	a.Manifest.ActivatorRef = "test.act"
	b, err := fw.Install(a)
	if err != nil {
		t.Fatalf("Install: %v", err)
	}
	if b.State() != StateInstalled {
		t.Errorf("state = %v, want INSTALLED", b.State())
	}
	if err := b.Start(); err != nil {
		t.Fatalf("Start: %v", err)
	}
	if b.State() != StateActive {
		t.Errorf("state = %v, want ACTIVE", b.State())
	}
	if act.started != 1 {
		t.Errorf("activator started %d times", act.started)
	}
	if err := b.Start(); !errors.Is(err, ErrAlreadyActive) {
		t.Errorf("double Start = %v, want ErrAlreadyActive", err)
	}
	if err := b.Stop(); err != nil {
		t.Fatalf("Stop: %v", err)
	}
	if b.State() != StateResolved {
		t.Errorf("state after stop = %v, want RESOLVED", b.State())
	}
	if act.stopped != 1 {
		t.Errorf("activator stopped %d times", act.stopped)
	}
}

func TestStartWithoutActivator(t *testing.T) {
	fw := newTestFramework(t)
	b, err := fw.InstallAndStart(archive("plain", "1.0.0"))
	if err != nil {
		t.Fatalf("InstallAndStart: %v", err)
	}
	if b.State() != StateActive {
		t.Errorf("state = %v", b.State())
	}
}

func TestStartUnknownActivator(t *testing.T) {
	fw := newTestFramework(t)
	a := archive("ghost", "1.0.0")
	a.Manifest.ActivatorRef = "no.such.code"
	b, _ := fw.Install(a)
	if err := b.Start(); !errors.Is(err, ErrUnknownCode) {
		t.Errorf("Start = %v, want ErrUnknownCode", err)
	}
}

func TestActivatorStartFailure(t *testing.T) {
	fw := newTestFramework(t)
	boom := errors.New("boom")
	_ = fw.Code().Register("failing", func() Activator { return &recordingActivator{failStart: boom} })
	a := archive("f", "1.0.0")
	a.Manifest.ActivatorRef = "failing"
	b, _ := fw.Install(a)
	err := b.Start()
	if !errors.Is(err, boom) {
		t.Fatalf("Start = %v, want wrapped boom", err)
	}
	if b.State() != StateResolved {
		t.Errorf("state after failed start = %v, want RESOLVED", b.State())
	}
}

func TestServicesReleasedOnStop(t *testing.T) {
	fw := newTestFramework(t)
	_ = fw.Code().Register("svc.provider", func() Activator {
		return &recordingActivator{onStart: func(ctx *Context) error {
			_, err := ctx.RegisterService([]string{"test.Svc"}, &struct{}{}, nil)
			return err
		}}
	})
	a := archive("provider", "1.0.0")
	a.Manifest.ActivatorRef = "svc.provider"
	b, err := fw.InstallAndStart(a)
	if err != nil {
		t.Fatalf("InstallAndStart: %v", err)
	}
	if fw.Registry().Find("test.Svc", nil) == nil {
		t.Fatal("service not registered")
	}
	if err := b.Stop(); err != nil {
		t.Fatalf("Stop: %v", err)
	}
	if fw.Registry().Find("test.Svc", nil) != nil {
		t.Error("service survived bundle stop")
	}
}

func TestResolution(t *testing.T) {
	fw := newTestFramework(t)
	prov := archive("provider", "1.0.0")
	prov.Manifest.Exports = []ExportedPackage{{Name: "api.shop", Version: MustParseVersion("1.2.0")}}
	pb, _ := fw.Install(prov)

	cons := archive("consumer", "1.0.0")
	cons.Manifest.Imports = []ImportedPackage{{Name: "api.shop", Range: MustParseVersionRange("[1.0,2.0)")}}
	cb, _ := fw.Install(cons)

	if err := cb.Start(); err != nil {
		t.Fatalf("Start consumer: %v", err)
	}
	wiring := cb.Wiring()
	if wiring["api.shop"] != pb.ID() {
		t.Errorf("wiring = %v, want api.shop -> %d", wiring, pb.ID())
	}
	// Provider is resolved transitively.
	if pb.State() != StateResolved {
		t.Errorf("provider state = %v, want RESOLVED", pb.State())
	}
}

func TestResolutionFailure(t *testing.T) {
	fw := newTestFramework(t)
	cons := archive("consumer", "1.0.0")
	cons.Manifest.Imports = []ImportedPackage{{Name: "api.missing"}}
	cb, _ := fw.Install(cons)
	err := cb.Start()
	var resErr *ResolutionError
	if !errors.As(err, &resErr) {
		t.Fatalf("Start = %v, want ResolutionError", err)
	}
	if len(resErr.Missing) != 1 || resErr.Missing[0].Name != "api.missing" {
		t.Errorf("missing = %v", resErr.Missing)
	}
	if cb.State() != StateInstalled {
		t.Errorf("state = %v, want INSTALLED", cb.State())
	}
}

func TestOptionalImportDoesNotBlock(t *testing.T) {
	fw := newTestFramework(t)
	cons := archive("consumer", "1.0.0")
	cons.Manifest.Imports = []ImportedPackage{{Name: "api.missing", Optional: true}}
	cb, _ := fw.Install(cons)
	if err := cb.Start(); err != nil {
		t.Fatalf("Start with optional missing import: %v", err)
	}
}

func TestResolutionPicksHighestVersion(t *testing.T) {
	fw := newTestFramework(t)
	old := archive("provider-old", "1.0.0")
	old.Manifest.Exports = []ExportedPackage{{Name: "api.x", Version: MustParseVersion("1.0.0")}}
	_, _ = fw.Install(old)
	newer := archive("provider-new", "1.0.0")
	newer.Manifest.Exports = []ExportedPackage{{Name: "api.x", Version: MustParseVersion("1.5.0")}}
	nb, _ := fw.Install(newer)
	tooNew := archive("provider-2x", "1.0.0")
	tooNew.Manifest.Exports = []ExportedPackage{{Name: "api.x", Version: MustParseVersion("2.0.0")}}
	_, _ = fw.Install(tooNew)

	cons := archive("consumer", "1.0.0")
	cons.Manifest.Imports = []ImportedPackage{{Name: "api.x", Range: MustParseVersionRange("[1.0,2.0)")}}
	cb, _ := fw.Install(cons)
	if err := cb.Start(); err != nil {
		t.Fatalf("Start: %v", err)
	}
	if cb.Wiring()["api.x"] != nb.ID() {
		t.Errorf("wired to bundle %d, want %d (highest in range)", cb.Wiring()["api.x"], nb.ID())
	}
}

func TestResolutionCycle(t *testing.T) {
	fw := newTestFramework(t)
	a := archive("cycle-a", "1.0.0")
	a.Manifest.Exports = []ExportedPackage{{Name: "pkg.a", Version: MustParseVersion("1.0.0")}}
	a.Manifest.Imports = []ImportedPackage{{Name: "pkg.b"}}
	ab, _ := fw.Install(a)

	b := archive("cycle-b", "1.0.0")
	b.Manifest.Exports = []ExportedPackage{{Name: "pkg.b", Version: MustParseVersion("1.0.0")}}
	b.Manifest.Imports = []ImportedPackage{{Name: "pkg.a"}}
	_, _ = fw.Install(b)

	if err := ab.Start(); err != nil {
		t.Fatalf("Start in cycle: %v", err)
	}
}

func TestUpdateRestartsActiveBundle(t *testing.T) {
	fw := newTestFramework(t)
	act := &recordingActivator{}
	_ = fw.Code().Register("upd", func() Activator { return act })
	a := archive("u", "1.0.0")
	a.Manifest.ActivatorRef = "upd"
	b, err := fw.InstallAndStart(a)
	if err != nil {
		t.Fatalf("InstallAndStart: %v", err)
	}
	a2 := archive("u", "1.1.0")
	a2.Manifest.ActivatorRef = "upd"
	if err := b.Update(a2); err != nil {
		t.Fatalf("Update: %v", err)
	}
	if b.State() != StateActive {
		t.Errorf("state after update = %v, want ACTIVE", b.State())
	}
	if b.Version().String() != "1.1.0" {
		t.Errorf("version = %v", b.Version())
	}
	if act.started != 2 || act.stopped != 1 {
		t.Errorf("start/stop = %d/%d, want 2/1", act.started, act.stopped)
	}
}

func TestUninstall(t *testing.T) {
	fw := newTestFramework(t)
	act := &recordingActivator{}
	_ = fw.Code().Register("uni", func() Activator { return act })
	a := archive("u", "1.0.0")
	a.Manifest.ActivatorRef = "uni"
	b, _ := fw.InstallAndStart(a)
	if err := b.Uninstall(); err != nil {
		t.Fatalf("Uninstall: %v", err)
	}
	if b.State() != StateUninstalled {
		t.Errorf("state = %v", b.State())
	}
	if act.stopped != 1 {
		t.Errorf("activator not stopped on uninstall")
	}
	if fw.Bundle(b.ID()) != nil {
		t.Error("bundle still listed after uninstall")
	}
	if err := b.Start(); !errors.Is(err, ErrUninstalledBundle) {
		t.Errorf("Start after uninstall = %v", err)
	}
}

func TestInstallDynamic(t *testing.T) {
	fw := newTestFramework(t)
	act := &recordingActivator{}
	b, err := fw.InstallDynamic(archive("dyn.proxy", "1.0.0"), act)
	if err != nil {
		t.Fatalf("InstallDynamic: %v", err)
	}
	if err := b.Start(); err != nil {
		t.Fatalf("Start: %v", err)
	}
	if act.started != 1 {
		t.Error("dynamic activator not started")
	}
	if _, err := fw.InstallDynamic(archive("x", "1.0.0"), nil); err == nil {
		t.Error("InstallDynamic(nil) should fail")
	}
}

func TestBundleEvents(t *testing.T) {
	fw := newTestFramework(t)
	var types []BundleEventType
	fw.AddBundleListener(func(ev BundleEvent) { types = append(types, ev.Type) })
	b, _ := fw.Install(archive("ev", "1.0.0"))
	_ = b.Start()
	_ = b.Stop()
	_ = b.Uninstall()
	want := []BundleEventType{
		BundleInstalled, BundleResolved, BundleStarting, BundleStarted,
		BundleStopping, BundleStopped, BundleUninstalled,
	}
	if len(types) != len(want) {
		t.Fatalf("events = %v, want %v", types, want)
	}
	for i := range want {
		if types[i] != want[i] {
			t.Errorf("event[%d] = %v, want %v", i, types[i], want[i])
		}
	}
}

func TestFindBundlePicksHighestVersion(t *testing.T) {
	fw := newTestFramework(t)
	_, _ = fw.Install(archive("multi", "1.0.0"))
	b2, _ := fw.Install(archive("multi", "2.0.0"))
	if got := fw.FindBundle("multi"); got != b2 {
		t.Errorf("FindBundle = %v, want version 2.0.0", got)
	}
	if fw.FindBundle("nope") != nil {
		t.Error("FindBundle for unknown name should be nil")
	}
}

func TestShutdownStopsInReverseOrder(t *testing.T) {
	fw := NewFramework(Config{})
	var order []string
	for _, name := range []string{"first", "second", "third"} {
		name := name
		_ = fw.Code().Register(name, func() Activator {
			return &stopOrderActivator{name: name, order: &order}
		})
		a := archive(name, "1.0.0")
		a.Manifest.ActivatorRef = name
		if _, err := fw.InstallAndStart(a); err != nil {
			t.Fatalf("start %s: %v", name, err)
		}
	}
	if err := fw.Shutdown(); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	want := []string{"third", "second", "first"}
	if fmt.Sprint(order) != fmt.Sprint(want) {
		t.Errorf("stop order = %v, want %v", order, want)
	}
	if _, err := fw.Install(archive("late", "1.0.0")); !errors.Is(err, ErrFrameworkDown) {
		t.Errorf("Install after shutdown = %v", err)
	}
}

type stopOrderActivator struct {
	name  string
	order *[]string
}

func (a *stopOrderActivator) Start(ctx *Context) error { return nil }
func (a *stopOrderActivator) Stop(ctx *Context) error {
	*a.order = append(*a.order, a.name)
	return nil
}

func TestFootprint(t *testing.T) {
	fw := newTestFramework(t)
	a := archive("fp", "1.0.0")
	a.Resources = map[string][]byte{"descriptor.json": make([]byte, 1000)}
	b, _ := fw.Install(a)
	if b.Footprint() <= 1000 {
		t.Errorf("Footprint = %d, want > 1000 (resources + manifest)", b.Footprint())
	}
	if fw.Footprint() != b.Footprint() {
		t.Errorf("framework footprint %d != bundle %d", fw.Footprint(), b.Footprint())
	}
}

func TestArchiveEncodeDecode(t *testing.T) {
	a := archive("codec", "1.2.3")
	a.Manifest.Exports = []ExportedPackage{{Name: "p", Version: MustParseVersion("1.0.0")}}
	a.Resources = map[string][]byte{"r1": []byte("hello"), "r2": {0, 1, 2}}
	b, err := a.Encode()
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	a2, err := DecodeArchive(b)
	if err != nil {
		t.Fatalf("DecodeArchive: %v", err)
	}
	if a2.Manifest.SymbolicName != "codec" || string(a2.Resources["r1"]) != "hello" {
		t.Errorf("round trip mismatch: %+v", a2)
	}
	if got := a2.ResourceNames(); len(got) != 2 || got[0] != "r1" {
		t.Errorf("ResourceNames = %v", got)
	}
}

func TestManifestValidate(t *testing.T) {
	bad := []Manifest{
		{},
		{SymbolicName: "x", Exports: []ExportedPackage{{Name: ""}}},
		{SymbolicName: "x", Imports: []ImportedPackage{{Name: ""}}},
		{SymbolicName: "x", Exports: []ExportedPackage{{Name: "p"}, {Name: "p"}}},
	}
	for i, m := range bad {
		m := m
		if err := m.Validate(); err == nil {
			t.Errorf("case %d should fail validation", i)
		}
	}
}

func TestContextGetServiceRelease(t *testing.T) {
	fw := newTestFramework(t)
	var ctx *Context
	_ = fw.Code().Register("holder", func() Activator {
		return &recordingActivator{onStart: func(c *Context) error { ctx = c; return nil }}
	})
	a := archive("h", "1.0.0")
	a.Manifest.ActivatorRef = "holder"
	if _, err := fw.InstallAndStart(a); err != nil {
		t.Fatalf("start: %v", err)
	}
	reg, _ := fw.Registry().Register([]string{"x"}, &struct{}{}, nil, "other")
	ref := reg.Reference()
	svc, release, ok := ctx.GetService(ref)
	if !ok || svc == nil {
		t.Fatal("GetService failed")
	}
	if uc := fw.Registry().UseCount(ref); uc != 1 {
		t.Errorf("use count = %d", uc)
	}
	release()
	release() // double release is safe
	if uc := fw.Registry().UseCount(ref); uc != 0 {
		t.Errorf("use count after release = %d", uc)
	}
}

func TestUpdateUninstalledBundle(t *testing.T) {
	fw := newTestFramework(t)
	b, _ := fw.Install(archive("u", "1.0.0"))
	_ = b.Uninstall()
	if err := b.Update(archive("u", "2.0.0")); !errors.Is(err, ErrUninstalledBundle) {
		t.Errorf("Update after uninstall = %v", err)
	}
	if err := b.Stop(); !errors.Is(err, ErrUninstalledBundle) {
		t.Errorf("Stop after uninstall = %v", err)
	}
	if err := b.Uninstall(); !errors.Is(err, ErrUninstalledBundle) {
		t.Errorf("double Uninstall = %v", err)
	}
}

func TestUpdateRejectsInvalidManifest(t *testing.T) {
	fw := newTestFramework(t)
	b, _ := fw.Install(archive("u", "1.0.0"))
	bad := &Archive{} // no symbolic name
	if err := b.Update(bad); !errors.Is(err, ErrNoSymbolicName) {
		t.Errorf("Update with bad manifest = %v", err)
	}
}

func TestActivatorStopFailurePropagates(t *testing.T) {
	fw := newTestFramework(t)
	boom := errors.New("stop failed")
	_ = fw.Code().Register("stopfail", func() Activator {
		return &recordingActivator{failStop: boom}
	})
	a := archive("s", "1.0.0")
	a.Manifest.ActivatorRef = "stopfail"
	b, err := fw.InstallAndStart(a)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Stop(); !errors.Is(err, boom) {
		t.Errorf("Stop = %v, want wrapped boom", err)
	}
	// Despite the activator failure, the bundle reached RESOLVED and
	// its resources were released.
	if b.State() != StateResolved {
		t.Errorf("state after failed stop = %v", b.State())
	}
}

func TestStopNotActive(t *testing.T) {
	fw := newTestFramework(t)
	b, _ := fw.Install(archive("idle", "1.0.0"))
	if err := b.Stop(); !errors.Is(err, ErrNotActive) {
		t.Errorf("Stop on installed bundle = %v", err)
	}
}

func TestBundleResourceAccess(t *testing.T) {
	fw := newTestFramework(t)
	a := archive("res", "1.0.0")
	a.Resources = map[string][]byte{"cfg.json": []byte(`{"x":1}`)}
	b, _ := fw.Install(a)
	data, ok := b.Resource("cfg.json")
	if !ok || string(data) != `{"x":1}` {
		t.Errorf("Resource = %q, %v", data, ok)
	}
	// The returned slice is a copy: mutating it cannot corrupt the archive.
	data[0] = 'X'
	again, _ := b.Resource("cfg.json")
	if string(again) != `{"x":1}` {
		t.Error("Resource returned a shared slice")
	}
	if _, ok := b.Resource("missing"); ok {
		t.Error("phantom resource")
	}
}

func TestCodeRegistry(t *testing.T) {
	reg := NewCodeRegistry()
	if err := reg.Register("", nil); err == nil {
		t.Error("empty registration accepted")
	}
	if err := reg.Register("a", func() Activator { return &recordingActivator{} }); err != nil {
		t.Fatal(err)
	}
	if err := reg.Register("a", func() Activator { return &recordingActivator{} }); !errors.Is(err, ErrDuplicateCode) {
		t.Errorf("duplicate = %v", err)
	}
	if _, ok := reg.Lookup("a"); !ok {
		t.Error("lookup failed")
	}
	if _, ok := reg.Lookup("b"); ok {
		t.Error("phantom code")
	}
	if names := reg.Names(); len(names) != 1 || names[0] != "a" {
		t.Errorf("Names = %v", names)
	}
}

func TestHashRefDeterministic(t *testing.T) {
	a := HashRef([]byte("code-v1"))
	b := HashRef([]byte("code-v1"))
	c := HashRef([]byte("code-v2"))
	if a != b {
		t.Error("HashRef not deterministic")
	}
	if a == c {
		t.Error("HashRef collision on different content")
	}
	if len(a) < 10 || a[:7] != "sha256:" {
		t.Errorf("HashRef format: %q", a)
	}
}

func TestDecodeArchiveErrors(t *testing.T) {
	if _, err := DecodeArchive([]byte("not json")); err == nil {
		t.Error("garbage archive accepted")
	}
}

func TestContextListenerManagement(t *testing.T) {
	fw := newTestFramework(t)
	var ctx *Context
	_ = fw.Code().Register("lm", func() Activator {
		return &recordingActivator{onStart: func(c *Context) error { ctx = c; return nil }}
	})
	a := archive("lm", "1.0.0")
	a.Manifest.ActivatorRef = "lm"
	b, err := fw.InstallAndStart(a)
	if err != nil {
		t.Fatal(err)
	}
	hits := 0
	tok := ctx.AddServiceListener(func(ev service.Event) { hits++ }, nil)
	_, _ = fw.Registry().Register([]string{"x"}, &struct{}{}, nil, "other")
	if hits != 1 {
		t.Fatalf("hits = %d", hits)
	}
	ctx.RemoveServiceListener(tok)
	_, _ = fw.Registry().Register([]string{"y"}, &struct{}{}, nil, "other")
	if hits != 1 {
		t.Errorf("listener survived removal: %d", hits)
	}
	// A tracker opened through the context closes with the bundle.
	tr := ctx.NewTracker("x", nil, service.TrackerCallbacks{})
	if tr.Count() != 1 {
		t.Fatalf("tracker count = %d", tr.Count())
	}
	_ = b.Stop()
	if tr.Count() != 0 {
		t.Errorf("tracker survived bundle stop: %d", tr.Count())
	}
}
