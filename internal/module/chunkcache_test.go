package module

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

func TestChunkCacheLRUBudget(t *testing.T) {
	c, err := NewChunkCache(3000, "")
	if err != nil {
		t.Fatal(err)
	}
	chunks := make([][]byte, 4)
	hashes := make([]string, 4)
	for i := range chunks {
		chunks[i] = randBytes(int64(i+10), 1000)
		hashes[i] = ChunkHash(chunks[i])
		if err := c.Put(hashes[i], chunks[i]); err != nil {
			t.Fatal(err)
		}
	}
	// Budget holds 3 chunks: the first (least recently used) is gone.
	if _, ok := c.Get(hashes[0]); ok {
		t.Fatal("LRU chunk survived over-budget insert")
	}
	if _, ok := c.Get(hashes[3]); !ok {
		t.Fatal("fresh chunk evicted")
	}
	// Touch hashes[1], insert a new chunk: hashes[2] (now LRU) goes.
	if _, ok := c.Get(hashes[1]); !ok {
		t.Fatal("chunk 1 missing")
	}
	extra := randBytes(99, 1000)
	if err := c.Put(ChunkHash(extra), extra); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Get(hashes[2]); ok {
		t.Fatal("recently-touched order not respected")
	}
	if _, ok := c.Get(hashes[1]); !ok {
		t.Fatal("touched chunk evicted before colder one")
	}

	st := c.Stats()
	if st.BytesUsed != 3000 || st.Chunks != 3 {
		t.Fatalf("stats: %+v", st)
	}
	if st.Puts-st.Evictions != int64(st.Chunks) {
		t.Fatalf("conservation violated: %+v", st)
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestChunkCacheRejectsCorrupt(t *testing.T) {
	c, _ := NewChunkCache(1<<20, "")
	good := randBytes(5, 512)
	if err := c.Put(ChunkHash(good), append(good, 'x')); !errors.Is(err, ErrBundleCorrupt) {
		t.Fatalf("mismatched bytes accepted: %v", err)
	}
	if st := c.Stats(); st.CorruptDropped != 1 || st.Chunks != 0 {
		t.Fatalf("stats after corrupt put: %+v", st)
	}
	// Oversize chunks are skipped, not cached.
	small, _ := NewChunkCache(10, "")
	if err := small.Put(ChunkHash(good), good); err != nil {
		t.Fatal(err)
	}
	if st := small.Stats(); st.Chunks != 0 {
		t.Fatal("oversize chunk cached")
	}
}

func TestChunkCachePersistence(t *testing.T) {
	dir := t.TempDir()
	data := randBytes(8, 2048)
	hash := ChunkHash(data)

	c1, err := NewChunkCache(1<<20, dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := c1.Put(hash, data); err != nil {
		t.Fatal(err)
	}

	// A second cache over the same directory sees the chunk.
	c2, err := NewChunkCache(1<<20, dir)
	if err != nil {
		t.Fatal(err)
	}
	got, ok := c2.Get(hash)
	if !ok || !bytes.Equal(got, data) {
		t.Fatal("persisted chunk not reloaded")
	}

	// Corrupt the file on disk: reload must drop it, not serve it.
	if err := os.WriteFile(filepath.Join(dir, hash), []byte("junk"), 0o644); err != nil {
		t.Fatal(err)
	}
	c3, err := NewChunkCache(1<<20, dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := c3.Get(hash); ok {
		t.Fatal("corrupted file served from cache")
	}
	if st := c3.Stats(); st.CorruptDropped != 1 {
		t.Fatalf("stats after corrupt reload: %+v", st)
	}
	if _, err := os.Stat(filepath.Join(dir, hash)); !os.IsNotExist(err) {
		t.Fatal("corrupted file left on disk")
	}
}

func TestStoredBundleCorruptionTyped(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, fmt.Sprintf("%06d%s", 1, archiveExt)), []byte("{not an archive"), 0o644); err != nil {
		t.Fatal(err)
	}
	fw := NewFramework(Config{Name: "corrupt-store", StorageDir: dir})
	err := fw.BootError()
	if !errors.Is(err, ErrBundleCorrupt) {
		t.Fatalf("corrupted archive error not typed: %v", err)
	}
	var cerr *CorruptError
	if !errors.As(err, &cerr) || cerr.Actual == "" {
		t.Fatalf("boot error missing digest detail: %v", err)
	}
}
