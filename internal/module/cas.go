package module

import (
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"sync"
)

// Content-addressed bundle store (the acquire data plane, DESIGN.md
// §10). Served artifacts — the encoded service reply a peer ships when
// a client leases one of its services — are split into fixed-size
// chunks, each keyed by its content hash. A manifest lists the chunk
// references plus a root digest over them, so a receiver can fetch only
// the chunks it is missing (rsync-style delta transfer) and still prove
// it reassembled exactly the bytes the sender chunked.

// DefaultChunkBytes is the fixed chunk size used when a store or peer
// is configured with zero: small enough that editing one descriptor
// field invalidates one chunk, large enough that per-chunk framing and
// hashing overhead stays below a percent of the payload.
const DefaultChunkBytes = 4 << 10

// ErrBundleCorrupt marks bundle content whose bytes do not match their
// digest (a transferred chunk, a reassembled artifact, or a stored
// archive that no longer decodes). Match it with errors.Is; the
// concrete *CorruptError carries the digests.
var ErrBundleCorrupt = errors.New("module: bundle content corrupt")

// CorruptError is the typed form of ErrBundleCorrupt: which ref failed
// verification and the expected/actual digests. Expected is empty when
// no digest was recorded for the content (an undecodable stored
// archive). The remote layer maps this error to a refetch of the
// offending chunks, never to a session failure.
type CorruptError struct {
	Ref      string // chunk hash, manifest root, or archive name
	Expected string
	Actual   string
}

func (e *CorruptError) Error() string {
	if e.Expected == "" {
		return fmt.Sprintf("module: %s corrupt (digest %s)", e.Ref, e.Actual)
	}
	return fmt.Sprintf("module: %s corrupt: digest %s, want %s", e.Ref, e.Actual, e.Expected)
}

// Is makes errors.Is(err, ErrBundleCorrupt) hold for CorruptError.
func (e *CorruptError) Is(target error) bool { return target == ErrBundleCorrupt }

// ChunkHash returns the content key of a chunk: the full hex sha256 of
// its bytes. (HashRef keeps its short prefixed form for proxy-code
// refs; chunk keys need the full digest because equality IS identity.)
func ChunkHash(data []byte) string {
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:])
}

// ChunkRef names one chunk of an artifact: its content hash and size.
type ChunkRef struct {
	Hash string
	Size int64
}

// BundleManifest describes a chunked artifact: the ordered chunk refs,
// the fixed chunk size they were cut with, and a root digest binding
// the whole list. Version counts content changes of the artifact under
// its key (a bump means the root changed; unchanged chunks keep their
// hashes, so the delta is exactly the changed chunks).
type BundleManifest struct {
	Version    int64
	ChunkBytes int64
	TotalBytes int64
	Root       string
	Chunks     []ChunkRef
}

// SplitChunks cuts data into fixed-size chunks and returns their refs
// alongside the chunk bytes (subslices of data, not copies).
func SplitChunks(data []byte, chunkBytes int) ([]ChunkRef, [][]byte) {
	if chunkBytes <= 0 {
		chunkBytes = DefaultChunkBytes
	}
	n := (len(data) + chunkBytes - 1) / chunkBytes
	refs := make([]ChunkRef, 0, n)
	parts := make([][]byte, 0, n)
	for off := 0; off < len(data); off += chunkBytes {
		end := off + chunkBytes
		if end > len(data) {
			end = len(data)
		}
		part := data[off:end]
		refs = append(refs, ChunkRef{Hash: ChunkHash(part), Size: int64(end - off)})
		parts = append(parts, part)
	}
	return refs, parts
}

// ManifestRoot digests the ordered chunk list: reassembling chunks that
// individually hash to their refs, in ref order, yields an artifact
// whose identity is this root.
func ManifestRoot(chunks []ChunkRef) string {
	h := sha256.New()
	for _, c := range chunks {
		fmt.Fprintf(h, "%s %d\n", c.Hash, c.Size)
	}
	return hex.EncodeToString(h.Sum(nil))
}

// AssembleChunks rebuilds an artifact from a manifest and a chunk
// getter, re-verifying every chunk hash and the root digest. A chunk
// whose bytes do not match its ref yields a *CorruptError — the caller
// refetches, it never installs poisoned bytes.
func AssembleChunks(m BundleManifest, get func(hash string) ([]byte, bool)) ([]byte, error) {
	if root := ManifestRoot(m.Chunks); root != m.Root {
		return nil, &CorruptError{Ref: "manifest root", Expected: m.Root, Actual: root}
	}
	out := make([]byte, 0, m.TotalBytes)
	for _, ref := range m.Chunks {
		data, ok := get(ref.Hash)
		if !ok {
			return nil, fmt.Errorf("module: assembling artifact: chunk %.12s missing", ref.Hash)
		}
		if got := ChunkHash(data); got != ref.Hash || int64(len(data)) != ref.Size {
			return nil, &CorruptError{Ref: "chunk " + ref.Hash[:12], Expected: ref.Hash, Actual: got}
		}
		out = append(out, data...)
	}
	return out, nil
}

// artifact is one chunked payload held by an ArtifactStore.
type artifact struct {
	manifest BundleManifest
	chunks   []string // hashes, in manifest order (data lives in the store)
}

// ArtifactStore is the serving side of the acquire data plane: it
// chunks artifacts under a key (one per exported service), keeps the
// chunk bytes addressable by hash, and reuses the previous manifest
// when the content is unchanged — so re-leasing an unchanged service
// yields a byte-identical manifest, and a content change bumps Version
// while unchanged chunks keep their hashes. Chunks shared between
// artifacts (or across versions) are stored once and refcounted.
type ArtifactStore struct {
	chunkBytes int

	mu    sync.Mutex
	byKey map[string]*artifact
	data  map[string][]byte
	refs  map[string]int
}

// NewArtifactStore creates a store cutting chunks of chunkBytes
// (DefaultChunkBytes when <= 0).
func NewArtifactStore(chunkBytes int) *ArtifactStore {
	if chunkBytes <= 0 {
		chunkBytes = DefaultChunkBytes
	}
	return &ArtifactStore{
		chunkBytes: chunkBytes,
		byKey:      make(map[string]*artifact),
		data:       make(map[string][]byte),
		refs:       make(map[string]int),
	}
}

// ChunkBytes returns the store's chunk size.
func (s *ArtifactStore) ChunkBytes() int { return s.chunkBytes }

// Manifest chunks payload under key and returns its manifest. Unchanged
// content returns the cached manifest (same Version, same Root); new
// content replaces the previous artifact, releasing chunks no longer
// referenced and bumping Version.
func (s *ArtifactStore) Manifest(key string, payload []byte) BundleManifest {
	refs, parts := SplitChunks(payload, s.chunkBytes)
	root := ManifestRoot(refs)

	s.mu.Lock()
	defer s.mu.Unlock()
	prev := s.byKey[key]
	if prev != nil && prev.manifest.Root == root {
		return prev.manifest
	}
	version := int64(1)
	if prev != nil {
		version = prev.manifest.Version + 1
	}
	a := &artifact{
		manifest: BundleManifest{
			Version:    version,
			ChunkBytes: int64(s.chunkBytes),
			TotalBytes: int64(len(payload)),
			Root:       root,
			Chunks:     refs,
		},
		chunks: make([]string, len(refs)),
	}
	for i, ref := range refs {
		a.chunks[i] = ref.Hash
		if s.refs[ref.Hash] == 0 {
			// Copy: parts alias the caller's payload buffer.
			cp := make([]byte, len(parts[i]))
			copy(cp, parts[i])
			s.data[ref.Hash] = cp
		}
		s.refs[ref.Hash]++
	}
	s.byKey[key] = a
	if prev != nil {
		s.releaseLocked(prev)
	}
	return a.manifest
}

// Chunk returns the bytes of a stored chunk by hash.
func (s *ArtifactStore) Chunk(hash string) ([]byte, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	data, ok := s.data[hash]
	return data, ok
}

// Drop removes the artifact under key, releasing its chunks.
func (s *ArtifactStore) Drop(key string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if a := s.byKey[key]; a != nil {
		delete(s.byKey, key)
		s.releaseLocked(a)
	}
}

func (s *ArtifactStore) releaseLocked(a *artifact) {
	for _, h := range a.chunks {
		if s.refs[h]--; s.refs[h] <= 0 {
			delete(s.refs, h)
			delete(s.data, h)
		}
	}
}
