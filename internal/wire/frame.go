package wire

import (
	"encoding/binary"
	"fmt"
	"io"
)

// EncodeInto serializes a message as a complete frame (header included)
// into b, resetting it first. The returned slice aliases b's storage, so
// it is valid until the next use of b; callers that pool buffers write
// the frame out and release b without any intermediate copy. The frame
// is built in a single pass: the header is patched in place once the
// payload length is known.
func EncodeInto(b *Buffer, m Message) ([]byte, error) {
	b.Reset()
	b.b = append(b.b, 0, 0, 0, 0) // frame header, patched below
	b.WriteU8(byte(m.Type()))
	if err := m.encode(b); err != nil {
		return nil, fmt.Errorf("wire: encoding %s: %w", m.Type(), err)
	}
	payload := len(b.b) - 4
	if payload > MaxFrame {
		return nil, fmt.Errorf("%w: %s frame of %d bytes", ErrTooLarge, m.Type(), payload)
	}
	binary.BigEndian.PutUint32(b.b[:4], uint32(payload))
	mFramesEncoded.Inc()
	mBytesEncoded.Add(int64(len(b.b)))
	return b.b, nil
}

// EncodeMessage serializes a message to a freshly allocated frame,
// suitable for a single Write. Hot paths should prefer EncodeInto with a
// pooled buffer (GetBuffer/PutBuffer); EncodeMessage remains for callers
// that retain the frame.
func EncodeMessage(m Message) ([]byte, error) {
	return EncodeInto(&Buffer{}, m)
}

// WriteMessage encodes and writes one framed message through a pooled
// encode buffer: no per-message buffer allocation.
func WriteMessage(w io.Writer, m Message) error {
	b := GetBuffer()
	defer PutBuffer(b)
	frame, err := EncodeInto(b, m)
	if err != nil {
		return err
	}
	if _, err := w.Write(frame); err != nil {
		return fmt.Errorf("wire: writing %s frame: %w", m.Type(), err)
	}
	return nil
}

// AppendStreamTail appends the encoded tail of a StreamData frame — the
// length-prefixed chunk plus the optional More marker — to dst and
// returns the extended slice. Together with AppendStreamDataHeader it
// lets fan-out paths encode a chunk's payload once and share the tail
// bytes across many subscriber streams: only the tiny per-stream header
// differs. The concatenation header+tail is byte-identical to
// EncodeMessage of the equivalent StreamData (locked by a test).
func AppendStreamTail(dst []byte, chunk []byte, more bool) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(chunk)))
	dst = append(dst, chunk...)
	if more {
		dst = append(dst, 1)
	}
	return dst
}

// AppendStreamDataHeader appends the wire prefix of a StreamData frame
// whose tail (see AppendStreamTail) is tailLen bytes: the 4-byte frame
// length, the type discriminator, and the stream id. The header is at
// most 4+1+binary.MaxVarintLen64 bytes, so callers keep it on the
// stack.
func AppendStreamDataHeader(dst []byte, streamID int64, tailLen int) []byte {
	var idb [binary.MaxVarintLen64]byte
	idn := binary.PutVarint(idb[:], streamID)
	payload := 1 + idn + tailLen
	dst = append(dst, byte(payload>>24), byte(payload>>16), byte(payload>>8), byte(payload))
	dst = append(dst, byte(MsgStreamData))
	return append(dst, idb[:idn]...)
}

// ReadMessage reads and decodes one framed message.
func ReadMessage(r io.Reader) (Message, error) {
	m, _, err := ReadMessageSize(r)
	return m, err
}

// ReadMessageSize reads and decodes one framed message, additionally
// reporting the frame's size on the wire (header + payload). The size
// lets receivers account per-message transfer and dispatch costs without
// ever re-encoding the message (the seed's invoke path encoded every
// inbound frame a second time just to learn its length).
func ReadMessageSize(r io.Reader) (Message, int, error) {
	var header [4]byte
	if _, err := io.ReadFull(r, header[:]); err != nil {
		return nil, 0, fmt.Errorf("wire: reading frame header: %w", err)
	}
	n := binary.BigEndian.Uint32(header[:])
	if n == 0 {
		mDecodeErrors.Inc()
		return nil, 0, fmt.Errorf("%w: empty frame", ErrBadMsg)
	}
	if n > MaxFrame {
		mDecodeErrors.Inc()
		return nil, 0, fmt.Errorf("%w: frame of %d bytes", ErrTooLarge, n)
	}
	payload, err := readPayload(r, int(n))
	if err != nil {
		return nil, 0, fmt.Errorf("wire: reading frame payload: %w", err)
	}
	m, err := DecodeMessage(payload)
	if err != nil {
		return nil, 0, err
	}
	return m, 4 + int(n), nil
}

// payloadChunk bounds how much memory a frame read commits to ahead of
// the bytes actually arriving. A corrupted or hostile length prefix can
// claim anything up to MaxFrame; reading in chunks means such a frame
// costs at most one chunk of allocation before the stream runs dry.
const payloadChunk = 64 << 10

// readPayload reads exactly n payload bytes, growing the buffer
// chunkwise so the allocation tracks delivered bytes, not the claimed
// frame length.
func readPayload(r io.Reader, n int) ([]byte, error) {
	buf := make([]byte, 0, min(n, payloadChunk))
	for len(buf) < n {
		k := min(n-len(buf), payloadChunk)
		off := len(buf)
		buf = append(buf, make([]byte, k)...)
		if _, err := io.ReadFull(r, buf[off:]); err != nil {
			return nil, err
		}
	}
	return buf, nil
}

// DecodeMessage decodes a frame payload (type byte + message body).
func DecodeMessage(payload []byte) (Message, error) {
	b := NewBuffer(payload)
	t := MsgType(b.ReadU8())
	if b.Err() != nil {
		mDecodeErrors.Inc()
		return nil, b.Err()
	}
	m, err := newMessage(t)
	if err != nil {
		mDecodeErrors.Inc()
		return nil, err
	}
	m.decode(b)
	if b.Err() != nil {
		mDecodeErrors.Inc()
		return nil, fmt.Errorf("wire: decoding %s: %w", t, b.Err())
	}
	if b.Remaining() != 0 {
		mDecodeErrors.Inc()
		return nil, fmt.Errorf("%w: %d trailing bytes after %s", ErrBadMsg, b.Remaining(), t)
	}
	mFramesDecoded.Inc()
	mBytesDecoded.Add(int64(len(payload)))
	return m, nil
}
