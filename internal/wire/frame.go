package wire

import (
	"encoding/binary"
	"fmt"
	"io"
)

// EncodeMessage serializes a message to a complete frame (header
// included), suitable for a single Write.
func EncodeMessage(m Message) ([]byte, error) {
	body := &Buffer{}
	body.WriteU8(byte(m.Type()))
	if err := m.encode(body); err != nil {
		return nil, fmt.Errorf("wire: encoding %s: %w", m.Type(), err)
	}
	payload := body.Bytes()
	if len(payload) > MaxFrame {
		return nil, fmt.Errorf("%w: %s frame of %d bytes", ErrTooLarge, m.Type(), len(payload))
	}
	frame := make([]byte, 4+len(payload))
	binary.BigEndian.PutUint32(frame, uint32(len(payload)))
	copy(frame[4:], payload)
	mFramesEncoded.Inc()
	mBytesEncoded.Add(int64(len(frame)))
	return frame, nil
}

// WriteMessage encodes and writes one framed message.
func WriteMessage(w io.Writer, m Message) error {
	frame, err := EncodeMessage(m)
	if err != nil {
		return err
	}
	if _, err := w.Write(frame); err != nil {
		return fmt.Errorf("wire: writing %s frame: %w", m.Type(), err)
	}
	return nil
}

// ReadMessage reads and decodes one framed message.
func ReadMessage(r io.Reader) (Message, error) {
	var header [4]byte
	if _, err := io.ReadFull(r, header[:]); err != nil {
		return nil, fmt.Errorf("wire: reading frame header: %w", err)
	}
	n := binary.BigEndian.Uint32(header[:])
	if n == 0 {
		mDecodeErrors.Inc()
		return nil, fmt.Errorf("%w: empty frame", ErrBadMsg)
	}
	if n > MaxFrame {
		mDecodeErrors.Inc()
		return nil, fmt.Errorf("%w: frame of %d bytes", ErrTooLarge, n)
	}
	payload, err := readPayload(r, int(n))
	if err != nil {
		return nil, fmt.Errorf("wire: reading frame payload: %w", err)
	}
	return DecodeMessage(payload)
}

// payloadChunk bounds how much memory a frame read commits to ahead of
// the bytes actually arriving. A corrupted or hostile length prefix can
// claim anything up to MaxFrame; reading in chunks means such a frame
// costs at most one chunk of allocation before the stream runs dry.
const payloadChunk = 64 << 10

// readPayload reads exactly n payload bytes, growing the buffer
// chunkwise so the allocation tracks delivered bytes, not the claimed
// frame length.
func readPayload(r io.Reader, n int) ([]byte, error) {
	buf := make([]byte, 0, min(n, payloadChunk))
	for len(buf) < n {
		k := min(n-len(buf), payloadChunk)
		off := len(buf)
		buf = append(buf, make([]byte, k)...)
		if _, err := io.ReadFull(r, buf[off:]); err != nil {
			return nil, err
		}
	}
	return buf, nil
}

// DecodeMessage decodes a frame payload (type byte + message body).
func DecodeMessage(payload []byte) (Message, error) {
	b := NewBuffer(payload)
	t := MsgType(b.ReadU8())
	if b.Err() != nil {
		mDecodeErrors.Inc()
		return nil, b.Err()
	}
	m, err := newMessage(t)
	if err != nil {
		mDecodeErrors.Inc()
		return nil, err
	}
	m.decode(b)
	if b.Err() != nil {
		mDecodeErrors.Inc()
		return nil, fmt.Errorf("wire: decoding %s: %w", t, b.Err())
	}
	if b.Remaining() != 0 {
		mDecodeErrors.Inc()
		return nil, fmt.Errorf("%w: %d trailing bytes after %s", ErrBadMsg, b.Remaining(), t)
	}
	mFramesDecoded.Inc()
	mBytesDecoded.Add(int64(len(payload)))
	return m, nil
}
