package wire

import (
	"fmt"
)

// MsgType identifies a protocol message.
type MsgType byte

// Protocol messages. The set mirrors the R-OSGi protocol: connection
// handshake and symmetric lease exchange, incremental lease updates,
// service fetching (interface + descriptor shipping), synchronous
// invocations, asynchronous remote events, stream proxies and liveness
// probes.
const (
	MsgHello MsgType = iota + 1
	MsgLease
	MsgServiceAdded
	MsgServiceRemoved
	MsgFetchService
	MsgServiceReply
	MsgInvoke
	MsgResult
	MsgError
	MsgEvent
	MsgSubscribe
	MsgStreamOpen
	MsgStreamData
	MsgStreamClose
	MsgPing
	MsgPong
	MsgBye
	MsgFetchManifest
	MsgManifestReply
	MsgFetchChunks
	MsgChunkData
	MsgMetricsReport
	MsgStreamCredit
)

func (t MsgType) String() string {
	names := [...]string{
		"HELLO", "LEASE", "SERVICE_ADDED", "SERVICE_REMOVED", "FETCH_SERVICE",
		"SERVICE_REPLY", "INVOKE", "RESULT", "ERROR", "EVENT", "SUBSCRIBE",
		"STREAM_OPEN", "STREAM_DATA", "STREAM_CLOSE", "PING", "PONG", "BYE",
		"FETCH_MANIFEST", "MANIFEST_REPLY", "FETCH_CHUNKS", "CHUNK_DATA",
		"METRICS_REPORT", "STREAM_CREDIT",
	}
	if t >= 1 && int(t) <= len(names) {
		return names[t-1]
	}
	return fmt.Sprintf("MsgType(%d)", byte(t))
}

// ProtocolVersion is negotiated in Hello; peers reject mismatches.
const ProtocolVersion = 1

// Message is implemented by all protocol messages.
type Message interface {
	// Type returns the message discriminator used in the frame header.
	Type() MsgType
	encode(b *Buffer) error
	decode(b *Buffer)
}

// ServiceInfo describes one remotely offered service inside a lease.
type ServiceInfo struct {
	ID         int64
	Interfaces []string
	Props      map[string]any
}

func (s *ServiceInfo) encode(b *Buffer) error {
	b.WriteInt64(s.ID)
	b.WriteStrings(s.Interfaces)
	return b.WriteProps(s.Props)
}

func (s *ServiceInfo) decode(b *Buffer) {
	s.ID = b.ReadInt64()
	s.Interfaces = b.ReadStrings()
	s.Props = b.ReadProps()
}

// MethodDesc describes one method of a shipped service interface: its
// name, the wire type names of its arguments and of its return value
// ("void" for none).
type MethodDesc struct {
	Name   string
	Args   []string
	Return string
}

// InterfaceDesc is the shippable form of a service interface, from
// which the receiving peer synthesizes a proxy (paper §2.2: "the service
// interface is shipped through the network and a local proxy for the
// service is created from this interface").
type InterfaceDesc struct {
	Name    string
	Methods []MethodDesc
}

// Method returns the descriptor of the named method, if present.
func (d *InterfaceDesc) Method(name string) (MethodDesc, bool) {
	for _, m := range d.Methods {
		if m.Name == name {
			return m, true
		}
	}
	return MethodDesc{}, false
}

func (d *InterfaceDesc) encode(b *Buffer) {
	b.WriteString(d.Name)
	b.WriteUvarint(uint64(len(d.Methods)))
	for _, m := range d.Methods {
		b.WriteString(m.Name)
		b.WriteStrings(m.Args)
		b.WriteString(m.Return)
	}
}

func (d *InterfaceDesc) decode(b *Buffer) {
	d.Name = b.ReadString()
	n := b.ReadUvarint()
	if n > MaxElems {
		b.fail(fmt.Errorf("%w: %d methods", ErrTooLarge, n))
		return
	}
	if n == 0 {
		return
	}
	d.Methods = make([]MethodDesc, 0, min(int(n), 256))
	for i := uint64(0); i < n && b.err == nil; i++ {
		var m MethodDesc
		m.Name = b.ReadString()
		m.Args = b.ReadStrings()
		m.Return = b.ReadString()
		d.Methods = append(d.Methods, m)
	}
}

// TypeField is one field of an injected type descriptor.
type TypeField struct {
	Name string
	Type string
}

// TypeDesc is the analog of R-OSGi type injection: when a service
// interface references composite types, their shape is shipped alongside
// so the client can validate and display them.
type TypeDesc struct {
	Name   string
	Fields []TypeField
}

func (d *TypeDesc) encode(b *Buffer) {
	b.WriteString(d.Name)
	b.WriteUvarint(uint64(len(d.Fields)))
	for _, f := range d.Fields {
		b.WriteString(f.Name)
		b.WriteString(f.Type)
	}
}

func (d *TypeDesc) decode(b *Buffer) {
	d.Name = b.ReadString()
	n := b.ReadUvarint()
	if n > MaxElems {
		b.fail(fmt.Errorf("%w: %d fields", ErrTooLarge, n))
		return
	}
	if n == 0 {
		return
	}
	d.Fields = make([]TypeField, 0, min(int(n), 256))
	for i := uint64(0); i < n && b.err == nil; i++ {
		var f TypeField
		f.Name = b.ReadString()
		f.Type = b.ReadString()
		d.Fields = append(d.Fields, f)
	}
}

// SmartProxyRef names client-side proxy code by content hash. Methods in
// LocalMethods run in the locally installed code; all others fall
// through to remote invocation (paper §2.2 smart proxies).
type SmartProxyRef struct {
	CodeRef      string
	LocalMethods []string
}

// Hello opens a connection: identities and protocol version are
// exchanged in both directions.
type Hello struct {
	PeerID  string
	Version int64
	Props   map[string]any
}

// Type implements Message.
func (m *Hello) Type() MsgType { return MsgHello }

func (m *Hello) encode(b *Buffer) error {
	b.WriteString(m.PeerID)
	b.WriteInt64(m.Version)
	return b.WriteProps(m.Props)
}

func (m *Hello) decode(b *Buffer) {
	m.PeerID = b.ReadString()
	m.Version = b.ReadInt64()
	m.Props = b.ReadProps()
}

// Lease carries the full set of services a peer currently offers; it is
// exchanged symmetrically right after Hello (paper §3.2: "the two
// devices exchange symmetric leases that contain the name of the
// services that each device offers").
type Lease struct {
	Services []ServiceInfo
}

// Type implements Message.
func (m *Lease) Type() MsgType { return MsgLease }

func (m *Lease) encode(b *Buffer) error {
	b.WriteUvarint(uint64(len(m.Services)))
	for i := range m.Services {
		if err := m.Services[i].encode(b); err != nil {
			return err
		}
	}
	return nil
}

func (m *Lease) decode(b *Buffer) {
	n := b.ReadUvarint()
	if n > MaxElems {
		b.fail(fmt.Errorf("%w: %d lease entries", ErrTooLarge, n))
		return
	}
	if n == 0 {
		return
	}
	m.Services = make([]ServiceInfo, 0, min(int(n), 1024))
	for i := uint64(0); i < n && b.err == nil; i++ {
		var s ServiceInfo
		s.decode(b)
		m.Services = append(m.Services, s)
	}
}

// ServiceAdded announces a newly registered remote service
// (incremental lease update; §2.2: "service descriptions are
// synchronized between the devices").
type ServiceAdded struct {
	Service ServiceInfo
}

// Type implements Message.
func (m *ServiceAdded) Type() MsgType { return MsgServiceAdded }

func (m *ServiceAdded) encode(b *Buffer) error { return m.Service.encode(b) }
func (m *ServiceAdded) decode(b *Buffer)       { m.Service.decode(b) }

// ServiceRemoved announces the unregistration of a remote service.
type ServiceRemoved struct {
	ServiceID int64
}

// Type implements Message.
func (m *ServiceRemoved) Type() MsgType { return MsgServiceRemoved }

func (m *ServiceRemoved) encode(b *Buffer) error {
	b.WriteInt64(m.ServiceID)
	return nil
}

func (m *ServiceRemoved) decode(b *Buffer) { m.ServiceID = b.ReadInt64() }

// FetchService asks the peer for everything needed to build a local
// proxy for one of its services.
type FetchService struct {
	RequestID int64
	ServiceID int64
	// TraceID and SpanID carry the requester's trace context so the
	// serving peer can parent its handling span under the caller's.
	// Zero TraceID means "no trace context": the pair is then omitted
	// from the frame entirely, keeping the encoding byte-identical to
	// peers that predate tracing. The pair is fixed-width (two 8-byte
	// words): IDs are uniformly spread 64-bit values, so varints would
	// be larger on average and — worse — make the frame length depend
	// on the ID drawn, which breaks byte-identical simulation replays.
	TraceID uint64
	SpanID  uint64
}

// Type implements Message.
func (m *FetchService) Type() MsgType { return MsgFetchService }

func (m *FetchService) encode(b *Buffer) error {
	b.WriteInt64(m.RequestID)
	b.WriteInt64(m.ServiceID)
	if m.TraceID != 0 {
		b.WriteU64(m.TraceID)
		b.WriteU64(m.SpanID)
	}
	return nil
}

func (m *FetchService) decode(b *Buffer) {
	m.RequestID = b.ReadInt64()
	m.ServiceID = b.ReadInt64()
	if b.err == nil && b.Remaining() > 0 {
		m.TraceID = b.ReadU64()
		m.SpanID = b.ReadU64()
	}
}

// ServiceReply answers FetchService with the shipped interface(s), any
// injected types, the AlfredO service descriptor resource, and an
// optional smart proxy reference.
type ServiceReply struct {
	RequestID  int64
	Info       ServiceInfo
	Interfaces []InterfaceDesc
	Types      []TypeDesc
	Descriptor []byte
	Smart      *SmartProxyRef
}

// Type implements Message.
func (m *ServiceReply) Type() MsgType { return MsgServiceReply }

func (m *ServiceReply) encode(b *Buffer) error {
	b.WriteInt64(m.RequestID)
	if err := m.Info.encode(b); err != nil {
		return err
	}
	b.WriteUvarint(uint64(len(m.Interfaces)))
	for i := range m.Interfaces {
		m.Interfaces[i].encode(b)
	}
	b.WriteUvarint(uint64(len(m.Types)))
	for i := range m.Types {
		m.Types[i].encode(b)
	}
	b.WriteBytes(m.Descriptor)
	if m.Smart != nil {
		b.WriteBool(true)
		b.WriteString(m.Smart.CodeRef)
		b.WriteStrings(m.Smart.LocalMethods)
	} else {
		b.WriteBool(false)
	}
	return nil
}

func (m *ServiceReply) decode(b *Buffer) {
	m.RequestID = b.ReadInt64()
	m.Info.decode(b)
	n := b.ReadUvarint()
	if n > MaxElems {
		b.fail(fmt.Errorf("%w: %d interfaces", ErrTooLarge, n))
		return
	}
	if n > 0 {
		m.Interfaces = make([]InterfaceDesc, 0, min(int(n), 64))
		for i := uint64(0); i < n && b.err == nil; i++ {
			var d InterfaceDesc
			d.decode(b)
			m.Interfaces = append(m.Interfaces, d)
		}
	}
	n = b.ReadUvarint()
	if n > MaxElems {
		b.fail(fmt.Errorf("%w: %d types", ErrTooLarge, n))
		return
	}
	if n > 0 {
		m.Types = make([]TypeDesc, 0, min(int(n), 64))
		for i := uint64(0); i < n && b.err == nil; i++ {
			var d TypeDesc
			d.decode(b)
			m.Types = append(m.Types, d)
		}
	}
	m.Descriptor = b.ReadBytes()
	if b.ReadBool() {
		m.Smart = &SmartProxyRef{
			CodeRef:      b.ReadString(),
			LocalMethods: b.ReadStrings(),
		}
	}
}

// Invoke is a synchronous remote method invocation.
type Invoke struct {
	CallID    int64
	ServiceID int64
	Method    string
	Args      []any
	// TraceID and SpanID carry the caller's trace context across the
	// wire so one trace covers phone -> target -> phone. Zero TraceID
	// means "no trace context": the pair is then omitted from the frame
	// entirely, keeping the encoding byte-identical to peers that
	// predate tracing, and decoders accept both forms. The pair is
	// fixed-width (two 8-byte words): IDs are uniformly spread 64-bit
	// values, so varints would be larger on average and — worse — make
	// the frame length depend on the ID drawn, which breaks
	// byte-identical simulation replays.
	TraceID uint64
	SpanID  uint64
}

// Type implements Message.
func (m *Invoke) Type() MsgType { return MsgInvoke }

func (m *Invoke) encode(b *Buffer) error {
	b.WriteInt64(m.CallID)
	b.WriteInt64(m.ServiceID)
	b.WriteString(m.Method)
	if err := b.WriteValues(m.Args); err != nil {
		return err
	}
	if m.TraceID != 0 {
		b.WriteU64(m.TraceID)
		b.WriteU64(m.SpanID)
	}
	return nil
}

func (m *Invoke) decode(b *Buffer) {
	m.CallID = b.ReadInt64()
	m.ServiceID = b.ReadInt64()
	m.Method = b.ReadString()
	m.Args = b.ReadValues()
	if b.err == nil && b.Remaining() > 0 {
		m.TraceID = b.ReadU64()
		m.SpanID = b.ReadU64()
	}
}

// Result carries a successful invocation result.
type Result struct {
	CallID int64
	Value  any
}

// Type implements Message.
func (m *Result) Type() MsgType { return MsgResult }

func (m *Result) encode(b *Buffer) error {
	b.WriteInt64(m.CallID)
	return b.WriteValue(m.Value)
}

func (m *Result) decode(b *Buffer) {
	m.CallID = b.ReadInt64()
	m.Value = b.ReadValue()
}

// ErrorReply carries a failed invocation (CallID > 0) or a
// connection-level protocol error (CallID == 0).
type ErrorReply struct {
	CallID  int64
	Code    string
	Message string
}

// Type implements Message.
func (m *ErrorReply) Type() MsgType { return MsgError }

func (m *ErrorReply) encode(b *Buffer) error {
	b.WriteInt64(m.CallID)
	b.WriteString(m.Code)
	b.WriteString(m.Message)
	return nil
}

func (m *ErrorReply) decode(b *Buffer) {
	m.CallID = b.ReadInt64()
	m.Code = b.ReadString()
	m.Message = b.ReadString()
}

// Event forwards an EventAdmin event to a subscribed peer (§2.1
// asynchronous remote events).
type Event struct {
	Topic string
	Props map[string]any
}

// Type implements Message.
func (m *Event) Type() MsgType { return MsgEvent }

func (m *Event) encode(b *Buffer) error {
	b.WriteString(m.Topic)
	return b.WriteProps(m.Props)
}

func (m *Event) decode(b *Buffer) {
	m.Topic = b.ReadString()
	m.Props = b.ReadProps()
}

// Subscribe replaces the set of topic patterns the sending peer wants
// forwarded to it.
type Subscribe struct {
	Patterns []string
}

// Type implements Message.
func (m *Subscribe) Type() MsgType { return MsgSubscribe }

func (m *Subscribe) encode(b *Buffer) error {
	b.WriteStrings(m.Patterns)
	return nil
}

func (m *Subscribe) decode(b *Buffer) { m.Patterns = b.ReadStrings() }

// StreamOpen opens a byte stream to the peer (transparent stream
// proxies for high-volume data, §3.2).
type StreamOpen struct {
	StreamID int64
	Name     string
	Props    map[string]any
}

// Type implements Message.
func (m *StreamOpen) Type() MsgType { return MsgStreamOpen }

func (m *StreamOpen) encode(b *Buffer) error {
	b.WriteInt64(m.StreamID)
	b.WriteString(m.Name)
	return b.WriteProps(m.Props)
}

func (m *StreamOpen) decode(b *Buffer) {
	m.StreamID = b.ReadInt64()
	m.Name = b.ReadString()
	m.Props = b.ReadProps()
}

// StreamData carries one chunk of an open stream.
type StreamData struct {
	StreamID int64
	Chunk    []byte
	// More marks a segment of a larger application message: the receiver
	// buffers segments until a frame with More false arrives, then
	// delivers the reassembled message. Senders segment large writes into
	// bounded frames so bulk streams yield the channel to latency-bound
	// traffic between segments. More is encoded as an optional trailing
	// bool only when true, keeping frames byte-identical to peers that
	// predate segmentation — and senders only segment once stream credit
	// support has been negotiated in Hello, so legacy peers never see it.
	More bool
}

// Type implements Message.
func (m *StreamData) Type() MsgType { return MsgStreamData }

func (m *StreamData) encode(b *Buffer) error {
	b.WriteInt64(m.StreamID)
	b.WriteBytes(m.Chunk)
	if m.More {
		b.WriteBool(true)
	}
	return nil
}

func (m *StreamData) decode(b *Buffer) {
	m.StreamID = b.ReadInt64()
	m.Chunk = b.ReadBytes()
	if b.err == nil && b.Remaining() > 0 {
		m.More = b.ReadBool()
	}
}

// StreamCredit grants the sender of a stream permission to transmit
// Bytes more payload bytes on StreamID. Credits are issued by the
// receiving side: an initial window when the stream handler attaches,
// then replenishments as the application consumes chunks, so a slow
// reader exerts backpressure instead of silently losing data. Credits
// are cumulative grants, not a window position — the sender adds Bytes
// to its available budget. The message only flows between peers that
// both announced "stream.credit" in Hello; legacy peers keep the
// original unbounded send / receiver drop-oldest behavior.
type StreamCredit struct {
	StreamID int64
	Bytes    int64
}

// Type implements Message.
func (m *StreamCredit) Type() MsgType { return MsgStreamCredit }

func (m *StreamCredit) encode(b *Buffer) error {
	b.WriteInt64(m.StreamID)
	b.WriteInt64(m.Bytes)
	return nil
}

func (m *StreamCredit) decode(b *Buffer) {
	m.StreamID = b.ReadInt64()
	m.Bytes = b.ReadInt64()
}

// StreamClose terminates a stream; Err is empty on clean EOF.
type StreamClose struct {
	StreamID int64
	Err      string
}

// Type implements Message.
func (m *StreamClose) Type() MsgType { return MsgStreamClose }

func (m *StreamClose) encode(b *Buffer) error {
	b.WriteInt64(m.StreamID)
	b.WriteString(m.Err)
	return nil
}

func (m *StreamClose) decode(b *Buffer) {
	m.StreamID = b.ReadInt64()
	m.Err = b.ReadString()
}

// Ping is a liveness and latency probe; the peer answers with Pong
// carrying the same sequence number. It doubles as the ICMP-ping
// baseline in the paper's Figures 5 and 6.
type Ping struct {
	Seq int64
}

// Type implements Message.
func (m *Ping) Type() MsgType { return MsgPing }

func (m *Ping) encode(b *Buffer) error {
	b.WriteInt64(m.Seq)
	return nil
}

func (m *Ping) decode(b *Buffer) { m.Seq = b.ReadInt64() }

// Pong answers Ping.
type Pong struct {
	Seq int64
}

// Type implements Message.
func (m *Pong) Type() MsgType { return MsgPong }

func (m *Pong) encode(b *Buffer) error {
	b.WriteInt64(m.Seq)
	return nil
}

func (m *Pong) decode(b *Buffer) { m.Seq = b.ReadInt64() }

// Bye announces an orderly disconnect.
type Bye struct {
	Reason string
}

// Type implements Message.
func (m *Bye) Type() MsgType { return MsgBye }

func (m *Bye) encode(b *Buffer) error {
	b.WriteString(m.Reason)
	return nil
}

func (m *Bye) decode(b *Buffer) { m.Reason = b.ReadString() }

// ChunkRef names one chunk of a chunked service artifact: its content
// hash (full hex sha256) and size in bytes.
type ChunkRef struct {
	Hash string
	Size int64
}

// FetchManifest asks the peer for the chunk manifest of a service's
// artifact instead of the whole reply in one frame (legacy
// FetchService). The manifest lets the requester diff against its
// content-addressed cache and fetch only missing chunks.
type FetchManifest struct {
	RequestID int64
	ServiceID int64
	// Trace context, same optional fixed-width tail as FetchService.
	TraceID uint64
	SpanID  uint64
}

// Type implements Message.
func (m *FetchManifest) Type() MsgType { return MsgFetchManifest }

func (m *FetchManifest) encode(b *Buffer) error {
	b.WriteInt64(m.RequestID)
	b.WriteInt64(m.ServiceID)
	if m.TraceID != 0 {
		b.WriteU64(m.TraceID)
		b.WriteU64(m.SpanID)
	}
	return nil
}

func (m *FetchManifest) decode(b *Buffer) {
	m.RequestID = b.ReadInt64()
	m.ServiceID = b.ReadInt64()
	if b.err == nil && b.Remaining() > 0 {
		m.TraceID = b.ReadU64()
		m.SpanID = b.ReadU64()
	}
}

// ManifestReply answers FetchManifest. OK false means the peer does not
// serve this service chunked (the requester falls back to the legacy
// single-shot FetchService). Root is the digest over the ordered chunk
// list; Version bumps whenever the artifact's content changes.
type ManifestReply struct {
	RequestID  int64
	OK         bool
	Version    int64
	ChunkBytes int64
	TotalBytes int64
	Root       string
	Chunks     []ChunkRef
}

// Type implements Message.
func (m *ManifestReply) Type() MsgType { return MsgManifestReply }

func (m *ManifestReply) encode(b *Buffer) error {
	b.WriteInt64(m.RequestID)
	b.WriteBool(m.OK)
	b.WriteInt64(m.Version)
	b.WriteInt64(m.ChunkBytes)
	b.WriteInt64(m.TotalBytes)
	b.WriteString(m.Root)
	b.WriteUvarint(uint64(len(m.Chunks)))
	for _, c := range m.Chunks {
		b.WriteString(c.Hash)
		b.WriteInt64(c.Size)
	}
	return nil
}

func (m *ManifestReply) decode(b *Buffer) {
	m.RequestID = b.ReadInt64()
	m.OK = b.ReadBool()
	m.Version = b.ReadInt64()
	m.ChunkBytes = b.ReadInt64()
	m.TotalBytes = b.ReadInt64()
	m.Root = b.ReadString()
	n := b.ReadUvarint()
	if b.err != nil {
		return
	}
	if n > MaxElems {
		b.fail(fmt.Errorf("%w: %d chunk refs", ErrBadMsg, n))
		return
	}
	m.Chunks = make([]ChunkRef, 0, n)
	for i := uint64(0); i < n && b.err == nil; i++ {
		var c ChunkRef
		c.Hash = b.ReadString()
		c.Size = b.ReadInt64()
		m.Chunks = append(m.Chunks, c)
	}
}

// FetchChunks requests the named chunks of an artifact by content
// hash. The serving peer answers with one ChunkData per hash, in
// request order. Requesters keep at most a configured window of hashes
// in flight per link, pipelining requests over one link and spreading
// windows across links when several are available.
type FetchChunks struct {
	RequestID int64
	Hashes    []string
}

// Type implements Message.
func (m *FetchChunks) Type() MsgType { return MsgFetchChunks }

func (m *FetchChunks) encode(b *Buffer) error {
	b.WriteInt64(m.RequestID)
	b.WriteStrings(m.Hashes)
	return nil
}

func (m *FetchChunks) decode(b *Buffer) {
	m.RequestID = b.ReadInt64()
	m.Hashes = b.ReadStrings()
}

// ChunkData carries one chunk. Missing true means the peer no longer
// stores the hash (artifact replaced since the manifest was issued);
// the requester restarts from a fresh manifest or falls back to the
// legacy fetch. Compressed true means Data is a DEFLATE stream of the
// chunk; the hash always refers to the uncompressed bytes.
type ChunkData struct {
	RequestID  int64
	Hash       string
	Missing    bool
	Compressed bool
	Data       []byte
}

// Type implements Message.
func (m *ChunkData) Type() MsgType { return MsgChunkData }

func (m *ChunkData) encode(b *Buffer) error {
	b.WriteInt64(m.RequestID)
	b.WriteString(m.Hash)
	b.WriteBool(m.Missing)
	b.WriteBool(m.Compressed)
	b.WriteBytes(m.Data)
	return nil
}

func (m *ChunkData) decode(b *Buffer) {
	m.RequestID = b.ReadInt64()
	m.Hash = b.ReadString()
	m.Missing = b.ReadBool()
	m.Compressed = b.ReadBool()
	m.Data = b.ReadBytes()
}

// newMessage allocates the message struct for a type discriminator.
func newMessage(t MsgType) (Message, error) {
	switch t {
	case MsgHello:
		return &Hello{}, nil
	case MsgLease:
		return &Lease{}, nil
	case MsgServiceAdded:
		return &ServiceAdded{}, nil
	case MsgServiceRemoved:
		return &ServiceRemoved{}, nil
	case MsgFetchService:
		return &FetchService{}, nil
	case MsgServiceReply:
		return &ServiceReply{}, nil
	case MsgInvoke:
		return &Invoke{}, nil
	case MsgResult:
		return &Result{}, nil
	case MsgError:
		return &ErrorReply{}, nil
	case MsgEvent:
		return &Event{}, nil
	case MsgSubscribe:
		return &Subscribe{}, nil
	case MsgStreamOpen:
		return &StreamOpen{}, nil
	case MsgStreamData:
		return &StreamData{}, nil
	case MsgStreamClose:
		return &StreamClose{}, nil
	case MsgPing:
		return &Ping{}, nil
	case MsgPong:
		return &Pong{}, nil
	case MsgBye:
		return &Bye{}, nil
	case MsgFetchManifest:
		return &FetchManifest{}, nil
	case MsgManifestReply:
		return &ManifestReply{}, nil
	case MsgFetchChunks:
		return &FetchChunks{}, nil
	case MsgChunkData:
		return &ChunkData{}, nil
	case MsgMetricsReport:
		return &MetricsReport{}, nil
	case MsgStreamCredit:
		return &StreamCredit{}, nil
	default:
		return nil, fmt.Errorf("%w: type %d", ErrBadMsg, byte(t))
	}
}
