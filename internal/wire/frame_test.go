package wire

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"testing"
	"time"
)

// countingReader tracks how many bytes were consumed from the source.
type countingReader struct {
	r io.Reader
	n int
}

func (c *countingReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n += n
	return n, err
}

func TestReadMessageRoundTrip(t *testing.T) {
	m := &Invoke{CallID: 7, ServiceID: 9, Method: "Click", Args: []any{int64(1)}}
	frame, err := EncodeMessage(m)
	if err != nil {
		t.Fatal(err)
	}
	got, err := ReadMessage(bytes.NewReader(frame))
	if err != nil {
		t.Fatalf("ReadMessage: %v", err)
	}
	inv, ok := got.(*Invoke)
	if !ok || inv.CallID != 7 || inv.Method != "Click" {
		t.Fatalf("round trip = %#v", got)
	}
}

func TestReadMessageRejectsOversizedHeader(t *testing.T) {
	var header [4]byte
	binary.BigEndian.PutUint32(header[:], MaxFrame+1)
	_, err := ReadMessage(bytes.NewReader(header[:]))
	if !errors.Is(err, ErrTooLarge) {
		t.Errorf("oversized header error = %v, want ErrTooLarge", err)
	}
}

func TestReadMessageRejectsEmptyFrame(t *testing.T) {
	_, err := ReadMessage(bytes.NewReader(make([]byte, 4)))
	if !errors.Is(err, ErrBadMsg) {
		t.Errorf("empty frame error = %v, want ErrBadMsg", err)
	}
}

// TestReadMessageTruncatedHugeClaim models a corrupted length prefix: a
// header that claims a near-maximal frame over a stream that ends after
// a few bytes must fail quickly and must not commit multi-megabyte
// allocations for bytes that never arrive.
func TestReadMessageTruncatedHugeClaim(t *testing.T) {
	frame := make([]byte, 4, 12)
	binary.BigEndian.PutUint32(frame, MaxFrame) // claims 16 MB
	frame = append(frame, 1, 2, 3, 4, 5, 6, 7, 8)

	start := time.Now()
	_, err := ReadMessage(bytes.NewReader(frame))
	if err == nil {
		t.Fatal("truncated frame decoded successfully")
	}
	if !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Errorf("truncated frame error = %v, want io.ErrUnexpectedEOF", err)
	}
	if d := time.Since(start); d > time.Second {
		t.Errorf("truncated huge frame took %v to fail", d)
	}
}

// TestReadPayloadChunked verifies the chunked reader consumes exactly
// the claimed length and reassembles it intact across chunk boundaries.
func TestReadPayloadChunked(t *testing.T) {
	payload := make([]byte, payloadChunk*2+137)
	for i := range payload {
		payload[i] = byte(i * 31)
	}
	src := &countingReader{r: bytes.NewReader(append(payload, 0xEE, 0xEE))}
	got, err := readPayload(src, len(payload))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Error("chunked payload reassembly corrupted data")
	}
	if src.n != len(payload) {
		t.Errorf("consumed %d bytes, want %d", src.n, len(payload))
	}
}

// TestDecodeBitFlips flips every bit of a valid frame payload in turn:
// each variant must either decode cleanly or fail with an error — never
// panic — exercising the decoder the way netsim corruption does.
func TestDecodeBitFlips(t *testing.T) {
	m := &ServiceReply{
		RequestID: 3,
		Info:      ServiceInfo{ID: 12, Interfaces: []string{"IShop"}, Props: map[string]any{"k": int64(1)}},
		Interfaces: []InterfaceDesc{{
			Name:    "IShop",
			Methods: []MethodDesc{{Name: "Buy", Args: []string{"string"}, Return: "void"}},
		}},
		Descriptor: []byte(`{"title":"shop"}`),
	}
	frame, err := EncodeMessage(m)
	if err != nil {
		t.Fatal(err)
	}
	payload := frame[4:]
	for bit := 0; bit < len(payload)*8; bit++ {
		mutated := make([]byte, len(payload))
		copy(mutated, payload)
		mutated[bit/8] ^= 1 << (bit % 8)
		if _, err := DecodeMessage(mutated); err != nil {
			// Every decode error must be one of the typed wire errors or
			// wrap one of them; callers dispatch on these.
			if !errors.Is(err, ErrTruncated) && !errors.Is(err, ErrTooLarge) &&
				!errors.Is(err, ErrBadMsg) && !errors.Is(err, ErrBadTag) {
				t.Fatalf("bit %d: untyped decode error %v", bit, err)
			}
		}
	}
}
