// Package wire implements the binary protocol spoken between remote
// peers — the analog of the R-OSGi network protocol (paper §2). It
// provides a tagged value codec for invocation arguments and results, and
// a fixed message set for handshakes, leases, service fetches,
// invocations, remote events and streams.
//
// Framing: every message is [4-byte big-endian frame length][1-byte
// message type][payload]. Payload layouts are defined per message type in
// msg.go. All multi-byte integers are big-endian; variable-length data is
// length-prefixed with unsigned varints.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"sync"
)

// Codec limits. They bound memory consumption when decoding untrusted
// input.
const (
	// MaxFrame is the largest accepted frame payload.
	MaxFrame = 16 << 20
	// MaxBlob is the largest accepted single string or byte slice.
	MaxBlob = 8 << 20
	// MaxDepth is the deepest accepted value nesting.
	MaxDepth = 32
	// MaxElems is the largest accepted list or map cardinality.
	MaxElems = 1 << 20
)

// Codec errors.
var (
	ErrTruncated = errors.New("wire: truncated input")
	ErrTooLarge  = errors.New("wire: size limit exceeded")
	ErrBadTag    = errors.New("wire: unknown value tag")
	ErrBadMsg    = errors.New("wire: malformed message")
)

// Buffer is an append-only encoder and cursor-based decoder for the wire
// format. Encoding methods never fail; decoding methods record the first
// error, after which subsequent reads return zero values. Check Err once
// after a decode sequence.
type Buffer struct {
	b   []byte
	off int
	err error
}

// NewBuffer wraps b for decoding (or further encoding).
func NewBuffer(b []byte) *Buffer {
	return &Buffer{b: b}
}

// Bytes returns the encoded bytes.
func (b *Buffer) Bytes() []byte { return b.b }

// Reset empties the buffer for reuse, keeping its storage.
func (b *Buffer) Reset() {
	b.b = b.b[:0]
	b.off = 0
	b.err = nil
}

// maxPooledBuffer caps the storage a pooled buffer may retain: a rare
// multi-megabyte frame (descriptor shipping, stream chunks) must not pin
// its allocation in the pool forever.
const maxPooledBuffer = 64 << 10

var bufPool = sync.Pool{New: func() any { return new(Buffer) }}

// GetBuffer returns an empty encode buffer from the pool. Release it
// with PutBuffer once the encoded bytes have been written out; frames
// returned by EncodeInto alias the buffer and must not outlive it.
func GetBuffer() *Buffer {
	return bufPool.Get().(*Buffer)
}

// PutBuffer returns a buffer to the pool. Oversized buffers are dropped
// so a single large frame cannot pin its storage.
func PutBuffer(b *Buffer) {
	if b == nil || cap(b.b) > maxPooledBuffer {
		return
	}
	b.Reset()
	bufPool.Put(b)
}

// Err returns the first decoding error, if any.
func (b *Buffer) Err() error { return b.err }

// Remaining reports the number of undecoded bytes.
func (b *Buffer) Remaining() int { return len(b.b) - b.off }

func (b *Buffer) fail(err error) {
	if b.err == nil {
		b.err = err
	}
}

// WriteUvarint appends an unsigned varint.
func (b *Buffer) WriteUvarint(v uint64) {
	b.b = binary.AppendUvarint(b.b, v)
}

// ReadUvarint consumes an unsigned varint.
func (b *Buffer) ReadUvarint() uint64 {
	if b.err != nil {
		return 0
	}
	v, n := binary.Uvarint(b.b[b.off:])
	if n <= 0 {
		b.fail(fmt.Errorf("%w: reading uvarint at offset %d", ErrTruncated, b.off))
		return 0
	}
	b.off += n
	return v
}

// WriteU64 appends a fixed-width big-endian 64-bit word. Used for
// values with no small-number bias (trace IDs are uniformly spread
// 64-bit), where a uvarint would average more than 9 bytes and make
// the frame length depend on the value.
func (b *Buffer) WriteU64(v uint64) {
	b.b = binary.BigEndian.AppendUint64(b.b, v)
}

// ReadU64 consumes a fixed-width big-endian 64-bit word.
func (b *Buffer) ReadU64() uint64 {
	if b.err != nil {
		return 0
	}
	if len(b.b)-b.off < 8 {
		b.fail(fmt.Errorf("%w: reading u64 at offset %d", ErrTruncated, b.off))
		return 0
	}
	v := binary.BigEndian.Uint64(b.b[b.off:])
	b.off += 8
	return v
}

// WriteU8 appends a single byte.
func (b *Buffer) WriteU8(v byte) {
	b.b = append(b.b, v)
}

// ReadU8 consumes a single byte.
func (b *Buffer) ReadU8() byte {
	if b.err != nil {
		return 0
	}
	if b.off >= len(b.b) {
		b.fail(fmt.Errorf("%w: reading byte at offset %d", ErrTruncated, b.off))
		return 0
	}
	v := b.b[b.off]
	b.off++
	return v
}

// WriteBool appends a boolean.
func (b *Buffer) WriteBool(v bool) {
	if v {
		b.WriteU8(1)
	} else {
		b.WriteU8(0)
	}
}

// ReadBool consumes a boolean.
func (b *Buffer) ReadBool() bool {
	return b.ReadU8() != 0
}

// WriteInt64 appends a zig-zag varint-encoded signed integer.
func (b *Buffer) WriteInt64(v int64) {
	b.b = binary.AppendVarint(b.b, v)
}

// ReadInt64 consumes a zig-zag varint-encoded signed integer.
func (b *Buffer) ReadInt64() int64 {
	if b.err != nil {
		return 0
	}
	v, n := binary.Varint(b.b[b.off:])
	if n <= 0 {
		b.fail(fmt.Errorf("%w: reading varint at offset %d", ErrTruncated, b.off))
		return 0
	}
	b.off += n
	return v
}

// WriteFloat64 appends an IEEE-754 double.
func (b *Buffer) WriteFloat64(v float64) {
	b.b = binary.BigEndian.AppendUint64(b.b, math.Float64bits(v))
}

// ReadFloat64 consumes an IEEE-754 double.
func (b *Buffer) ReadFloat64() float64 {
	if b.err != nil {
		return 0
	}
	if b.off+8 > len(b.b) {
		b.fail(fmt.Errorf("%w: reading float64 at offset %d", ErrTruncated, b.off))
		return 0
	}
	v := math.Float64frombits(binary.BigEndian.Uint64(b.b[b.off:]))
	b.off += 8
	return v
}

// WriteString appends a length-prefixed string.
func (b *Buffer) WriteString(s string) {
	b.WriteUvarint(uint64(len(s)))
	b.b = append(b.b, s...)
}

// ReadString consumes a length-prefixed string.
func (b *Buffer) ReadString() string {
	n := b.ReadUvarint()
	if b.err != nil {
		return ""
	}
	if n > MaxBlob {
		b.fail(fmt.Errorf("%w: string of %d bytes", ErrTooLarge, n))
		return ""
	}
	if b.off+int(n) > len(b.b) {
		b.fail(fmt.Errorf("%w: string of %d bytes at offset %d", ErrTruncated, n, b.off))
		return ""
	}
	s := string(b.b[b.off : b.off+int(n)])
	b.off += int(n)
	return s
}

// WriteBytes appends a length-prefixed byte slice.
func (b *Buffer) WriteBytes(v []byte) {
	b.WriteUvarint(uint64(len(v)))
	b.b = append(b.b, v...)
}

// ReadBytes consumes a length-prefixed byte slice (copied out).
func (b *Buffer) ReadBytes() []byte {
	n := b.ReadUvarint()
	if b.err != nil {
		return nil
	}
	if n > MaxBlob {
		b.fail(fmt.Errorf("%w: blob of %d bytes", ErrTooLarge, n))
		return nil
	}
	if b.off+int(n) > len(b.b) {
		b.fail(fmt.Errorf("%w: blob of %d bytes at offset %d", ErrTruncated, n, b.off))
		return nil
	}
	out := make([]byte, n)
	copy(out, b.b[b.off:b.off+int(n)])
	b.off += int(n)
	return out
}

// WriteStrings appends a length-prefixed list of strings.
func (b *Buffer) WriteStrings(ss []string) {
	b.WriteUvarint(uint64(len(ss)))
	for _, s := range ss {
		b.WriteString(s)
	}
}

// ReadStrings consumes a length-prefixed list of strings.
func (b *Buffer) ReadStrings() []string {
	n := b.ReadUvarint()
	if b.err != nil {
		return nil
	}
	if n > MaxElems {
		b.fail(fmt.Errorf("%w: %d strings", ErrTooLarge, n))
		return nil
	}
	if n == 0 {
		return nil
	}
	out := make([]string, 0, min(int(n), 1024))
	for i := uint64(0); i < n && b.err == nil; i++ {
		out = append(out, b.ReadString())
	}
	return out
}
