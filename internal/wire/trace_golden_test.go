package wire

import (
	"encoding/hex"
	"math"
	"testing"
)

// Trace-context framing: Invoke and FetchService optionally carry the
// caller's (TraceID, SpanID) as two trailing fixed-width 8-byte words
// — fixed width so the frame length never depends on the ID values
// drawn, which deterministic simulation replays rely on. A zero
// TraceID omits the pair entirely, so the untraced encoding stays
// byte-identical to the pre-tracing protocol, and decoders accept
// both.

func TestInvokeTraceContextGolden(t *testing.T) {
	legacy := "0000000b07020404576f726b010254"
	traced := "0000001b07020404576f726b010254" +
		"0000000000000005" + "0000000000000006"

	m := &Invoke{CallID: 1, ServiceID: 2, Method: "Work", Args: []any{int64(42)}}
	frame, err := EncodeMessage(m)
	if err != nil {
		t.Fatal(err)
	}
	if got := hex.EncodeToString(frame); got != legacy {
		t.Fatalf("untraced invoke changed encoding:\n got  %s\n want %s", got, legacy)
	}

	m.TraceID, m.SpanID = 5, 6
	frame, err = EncodeMessage(m)
	if err != nil {
		t.Fatal(err)
	}
	if got := hex.EncodeToString(frame); got != traced {
		t.Fatalf("traced invoke golden mismatch:\n got  %s\n want %s", got, traced)
	}

	dec, err := DecodeMessage(frame[4:])
	if err != nil {
		t.Fatal(err)
	}
	inv := dec.(*Invoke)
	if inv.TraceID != 5 || inv.SpanID != 6 {
		t.Fatalf("decoded trace context = (%d, %d), want (5, 6)", inv.TraceID, inv.SpanID)
	}
}

func TestFetchServiceTraceContextGolden(t *testing.T) {
	legacy := "00000003050a04"
	traced := "00000013050a04" +
		"0000000000000005" + "0000000000000006"

	m := &FetchService{RequestID: 5, ServiceID: 2}
	frame, err := EncodeMessage(m)
	if err != nil {
		t.Fatal(err)
	}
	if got := hex.EncodeToString(frame); got != legacy {
		t.Fatalf("untraced fetch changed encoding:\n got  %s\n want %s", got, legacy)
	}

	m.TraceID, m.SpanID = 5, 6
	frame, err = EncodeMessage(m)
	if err != nil {
		t.Fatal(err)
	}
	if got := hex.EncodeToString(frame); got != traced {
		t.Fatalf("traced fetch golden mismatch:\n got  %s\n want %s", got, traced)
	}

	dec, err := DecodeMessage(frame[4:])
	if err != nil {
		t.Fatal(err)
	}
	f := dec.(*FetchService)
	if f.TraceID != 5 || f.SpanID != 6 {
		t.Fatalf("decoded trace context = (%d, %d), want (5, 6)", f.TraceID, f.SpanID)
	}
}

// TestTraceContextBackwardCompat replays pre-tracing frames (no
// trailing trace fields) and verifies they still decode, with a zero
// trace context.
func TestTraceContextBackwardCompat(t *testing.T) {
	for name, payloadHex := range map[string]string{
		"invoke": "07020404576f726b010254",
		"fetch":  "050a04",
	} {
		payload, err := hex.DecodeString(payloadHex)
		if err != nil {
			t.Fatal(err)
		}
		m, err := DecodeMessage(payload)
		if err != nil {
			t.Fatalf("%s: legacy frame no longer decodes: %v", name, err)
		}
		switch m := m.(type) {
		case *Invoke:
			if m.TraceID != 0 || m.SpanID != 0 {
				t.Fatalf("legacy invoke grew trace context: %+v", m)
			}
		case *FetchService:
			if m.TraceID != 0 || m.SpanID != 0 {
				t.Fatalf("legacy fetch grew trace context: %+v", m)
			}
		default:
			t.Fatalf("%s decoded to %T", name, m)
		}
	}
}

// TestTraceContextRoundTrip round-trips boundary trace IDs, including
// the full 64-bit range.
func TestTraceContextRoundTrip(t *testing.T) {
	for _, ids := range [][2]uint64{
		{1, 0},
		{1, 1},
		{math.MaxUint64, math.MaxUint64},
		{0xdeadbeefcafe, 7},
	} {
		inv := &Invoke{CallID: 9, ServiceID: 3, Method: "M", Args: []any{"x"},
			TraceID: ids[0], SpanID: ids[1]}
		frame, err := EncodeMessage(inv)
		if err != nil {
			t.Fatal(err)
		}
		dec, err := DecodeMessage(frame[4:])
		if err != nil {
			t.Fatalf("trace ids %v: %v", ids, err)
		}
		got := dec.(*Invoke)
		if got.TraceID != ids[0] || got.SpanID != ids[1] {
			t.Fatalf("round trip (%d, %d) -> (%d, %d)", ids[0], ids[1], got.TraceID, got.SpanID)
		}

		fs := &FetchService{RequestID: 1, ServiceID: 2, TraceID: ids[0], SpanID: ids[1]}
		frame, err = EncodeMessage(fs)
		if err != nil {
			t.Fatal(err)
		}
		dec, err = DecodeMessage(frame[4:])
		if err != nil {
			t.Fatalf("fetch trace ids %v: %v", ids, err)
		}
		gf := dec.(*FetchService)
		if gf.TraceID != ids[0] || gf.SpanID != ids[1] {
			t.Fatalf("fetch round trip (%d, %d) -> (%d, %d)", ids[0], ids[1], gf.TraceID, gf.SpanID)
		}
	}
}

// TestTraceContextTruncated verifies that a frame claiming trace
// context but cut inside it is rejected, not misread.
func TestTraceContextTruncated(t *testing.T) {
	inv := &Invoke{CallID: 1, ServiceID: 2, Method: "Work", Args: []any{int64(42)},
		TraceID: math.MaxUint64, SpanID: 6}
	frame, err := EncodeMessage(inv)
	if err != nil {
		t.Fatal(err)
	}
	payload := frame[4:]
	// Chop inside the 10-byte TraceID uvarint.
	if _, err := DecodeMessage(payload[:len(payload)-5]); err == nil {
		t.Fatal("truncated trace context decoded without error")
	}
}
