package wire

import (
	"encoding/hex"
	"testing"
)

// TestProtocolGoldens locks the wire format: these hex transcripts are
// what interoperating peers have on the wire today. If a change breaks
// one of them, it breaks protocol compatibility and needs a version
// bump (ProtocolVersion), not a silent re-encode.
//
// Messages containing multi-entry maps are excluded (Go map iteration
// makes their byte order nondeterministic); single-entry maps encode
// deterministically.
func TestProtocolGoldens(t *testing.T) {
	cases := []struct {
		name string
		msg  Message
		hex  string
	}{
		{
			name: "hello",
			msg:  &Hello{PeerID: "phone", Version: 1, Props: map[string]any{"device": "nokia"}},
			hex:  "00000018010570686f6e650207010664657669636504056e6f6b6961",
		},
		{
			name: "lease-single",
			msg: &Lease{Services: []ServiceInfo{{
				ID: 7, Interfaces: []string{"a.B"}, Props: map[string]any{"r": int64(3)},
			}}},
			hex: "0000000e02010e0103612e42070101720206",
		},
		{
			name: "service-removed",
			msg:  &ServiceRemoved{ServiceID: 9},
			hex:  "000000020412",
		},
		{
			name: "fetch",
			msg:  &FetchService{RequestID: 5, ServiceID: 2},
			hex:  "00000003050a04",
		},
		{
			name: "invoke",
			msg:  &Invoke{CallID: 1, ServiceID: 2, Method: "Work", Args: []any{int64(42)}},
			hex:  "0000000b07020404576f726b010254",
		},
		{
			name: "result",
			msg:  &Result{CallID: 1, Value: "ok"},
			hex:  "00000006080204026f6b",
		},
		{
			name: "error",
			msg:  &ErrorReply{CallID: 1, Code: "NO_SUCH_METHOD", Message: "x"},
			hex:  "0000001309020e4e4f5f535543485f4d4554484f440178",
		},
		{
			name: "subscribe",
			msg:  &Subscribe{Patterns: []string{"a/*"}},
			hex:  "000000060b0103612f2a",
		},
		{
			name: "stream-data",
			msg:  &StreamData{StreamID: 3, Chunk: []byte{1, 2, 3}},
			hex:  "000000060d0603010203",
		},
		{
			name: "stream-data-segmented",
			msg:  &StreamData{StreamID: 3, Chunk: []byte{1, 2, 3}, More: true},
			hex:  "000000070d060301020301",
		},
		{
			name: "stream-credit",
			msg:  &StreamCredit{StreamID: 3, Bytes: 65536},
			hex:  "000000051706808008",
		},
		{
			name: "ping",
			msg:  &Ping{Seq: 42},
			hex:  "000000020f54",
		},
		{
			name: "bye",
			msg:  &Bye{Reason: "done"},
			hex:  "000000061104646f6e65",
		},
		{
			name: "fetch-manifest",
			msg:  &FetchManifest{RequestID: 5, ServiceID: 2},
			hex:  "00000003120a04",
		},
		{
			name: "manifest-reply",
			msg: &ManifestReply{
				RequestID: 5, OK: true, Version: 1, ChunkBytes: 4096, TotalBytes: 3,
				Root:   "r00t",
				Chunks: []ChunkRef{{Hash: "abcd", Size: 3}},
			},
			hex: "00000013130a0102804006047230307401046162636406",
		},
		{
			name: "fetch-chunks",
			msg:  &FetchChunks{RequestID: 5, Hashes: []string{"abcd"}},
			hex:  "00000008140a010461626364",
		},
		{
			name: "chunk-data",
			msg:  &ChunkData{RequestID: 5, Hash: "abcd", Data: []byte{1, 2, 3}},
			hex:  "0000000d150a0461626364000003010203",
		},
		{
			name: "metrics-report",
			msg: &MetricsReport{
				Node: "phone", Seq: 3, Full: true,
				Samples: []MetricSample{
					{
						Name: "c", Kind: MetricCounter,
						Labels: []string{"tenant", "t1"}, Value: 9,
					},
					{
						Name: "h", Kind: MetricHistogram,
						Buckets: []int64{1, 2}, Count: 3, Sum: 4,
						WinBuckets: []int64{0, 2}, WinCount: 2, WinSum: 2,
					},
				},
			},
			hex: "0000003e160570686f6e65060102016300020674656e616e740274311200000000000000000000000000000168020000000000000000000002020406080200040404",
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			frame, err := EncodeMessage(c.msg)
			if err != nil {
				t.Fatal(err)
			}
			got := hex.EncodeToString(frame)
			if c.hex == "" {
				t.Fatalf("golden missing; current encoding: %s", got)
			}
			if got != c.hex {
				t.Errorf("wire format changed!\n got  %s\n want %s", got, c.hex)
			}
			// And the golden bytes decode back to the message type.
			want, err := hex.DecodeString(c.hex)
			if err != nil {
				t.Fatal(err)
			}
			decoded, err := DecodeMessage(want[4:])
			if err != nil {
				t.Fatalf("golden does not decode: %v", err)
			}
			if decoded.Type() != c.msg.Type() {
				t.Errorf("golden decodes to %s, want %s", decoded.Type(), c.msg.Type())
			}
		})
	}
}
