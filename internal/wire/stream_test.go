package wire

import (
	"bytes"
	"testing"
)

// TestStreamHeaderTailComposition locks the split-encode path used by
// the fan-out hub: AppendStreamDataHeader + AppendStreamTail must
// produce exactly the frame EncodeMessage builds for the equivalent
// StreamData, for every combination of stream id width, chunk size and
// More flag. If this drifts, encode-once fan-out silently ships
// undecodable frames.
func TestStreamHeaderTailComposition(t *testing.T) {
	chunks := [][]byte{nil, {7}, bytes.Repeat([]byte{0xAB}, 300), bytes.Repeat([]byte{1}, 16<<10)}
	for _, id := range []int64{1, 2, 63, 64, 1 << 20, -3} {
		for _, chunk := range chunks {
			for _, more := range []bool{false, true} {
				want, err := EncodeMessage(&StreamData{StreamID: id, Chunk: chunk, More: more})
				if err != nil {
					t.Fatal(err)
				}
				tail := AppendStreamTail(nil, chunk, more)
				got := AppendStreamDataHeader(nil, id, len(tail))
				got = append(got, tail...)
				if !bytes.Equal(got, want) {
					t.Fatalf("id=%d len=%d more=%v: split encode diverges\n got  %x\n want %x",
						id, len(chunk), more, got, want)
				}
				// And the composed frame decodes to the original message.
				m, err := DecodeMessage(got[4:])
				if err != nil {
					t.Fatal(err)
				}
				sd := m.(*StreamData)
				if sd.StreamID != id || !bytes.Equal(sd.Chunk, chunk) || sd.More != more {
					t.Fatalf("roundtrip mismatch: %+v", sd)
				}
			}
		}
	}
}

// TestStreamCreditRoundtrip covers the credit message across the value
// range senders actually use (initial windows, replenishments, and the
// degenerate zero grant).
func TestStreamCreditRoundtrip(t *testing.T) {
	for _, n := range []int64{0, 1, 16 << 10, 256 << 10, 1 << 40} {
		frame, err := EncodeMessage(&StreamCredit{StreamID: 9, Bytes: n})
		if err != nil {
			t.Fatal(err)
		}
		m, err := DecodeMessage(frame[4:])
		if err != nil {
			t.Fatal(err)
		}
		sc := m.(*StreamCredit)
		if sc.StreamID != 9 || sc.Bytes != n {
			t.Fatalf("roundtrip mismatch: %+v", sc)
		}
	}
}
