package wire

import (
	"bytes"
	"errors"
	"math"
	"reflect"
	"testing"
	"testing/quick"
)

func TestValueRoundTrip(t *testing.T) {
	values := []any{
		nil,
		true,
		false,
		int64(0),
		int64(-1),
		int64(math.MaxInt64),
		int64(math.MinInt64),
		3.14159,
		math.Inf(1),
		"",
		"hello, wörld",
		[]byte{},
		[]byte{0, 1, 2, 255},
		[]any{int64(1), "two", 3.0, nil, true},
		map[string]any{"a": int64(1), "b": []any{"x"}, "c": map[string]any{"d": nil}},
	}
	for _, v := range values {
		b := &Buffer{}
		if err := b.WriteValue(v); err != nil {
			t.Errorf("WriteValue(%v): %v", v, err)
			continue
		}
		d := NewBuffer(b.Bytes())
		got := d.ReadValue()
		if d.Err() != nil {
			t.Errorf("ReadValue(%v): %v", v, d.Err())
			continue
		}
		if !reflect.DeepEqual(got, v) && !equalEmpty(got, v) {
			t.Errorf("round trip %#v -> %#v", v, got)
		}
	}
}

// equalEmpty treats empty slices as equal regardless of nil-ness.
func equalEmpty(a, b any) bool {
	ab, aok := a.([]byte)
	bb, bok := b.([]byte)
	return aok && bok && len(ab) == 0 && len(bb) == 0
}

func TestNormalize(t *testing.T) {
	cases := []struct {
		in   any
		want any
	}{
		{42, int64(42)},
		{uint8(7), int64(7)},
		{float32(1.5), 1.5},
		{[]string{"a", "b"}, []any{"a", "b"}},
		{[]any{1, float32(2)}, []any{int64(1), float64(2)}},
		{map[string]any{"k": 1}, map[string]any{"k": int64(1)}},
	}
	for _, c := range cases {
		got, err := Normalize(c.in)
		if err != nil {
			t.Errorf("Normalize(%v): %v", c.in, err)
			continue
		}
		if !reflect.DeepEqual(got, c.want) {
			t.Errorf("Normalize(%#v) = %#v, want %#v", c.in, got, c.want)
		}
	}
	if _, err := Normalize(struct{}{}); err == nil {
		t.Error("Normalize(struct{}{}) should fail")
	}
	if _, err := Normalize(map[string]any{"bad": make(chan int)}); err == nil {
		t.Error("Normalize of nested unsupported type should fail")
	}
}

func TestTypeName(t *testing.T) {
	cases := map[string]any{
		"void": nil, "bool": true, "int": 5, "float": 2.5,
		"string": "s", "bytes": []byte{1}, "list": []any{}, "map": map[string]any{},
	}
	for want, v := range cases {
		if got := TypeName(v); got != want {
			t.Errorf("TypeName(%T) = %q, want %q", v, got, want)
		}
	}
	if TypeName(struct{}{}) != "" {
		t.Error("TypeName of unsupported type should be empty")
	}
}

func TestDepthLimit(t *testing.T) {
	// Hand-encode nesting beyond MaxDepth.
	b := &Buffer{}
	for i := 0; i < MaxDepth+2; i++ {
		b.WriteU8(tagList)
		b.WriteUvarint(1)
	}
	b.WriteU8(tagNil)
	d := NewBuffer(b.Bytes())
	d.ReadValue()
	if !errors.Is(d.Err(), ErrTooLarge) {
		t.Errorf("deep nesting error = %v, want ErrTooLarge", d.Err())
	}
}

func TestTruncatedValues(t *testing.T) {
	b := &Buffer{}
	if err := b.WriteValue(map[string]any{"key": "a long enough value"}); err != nil {
		t.Fatal(err)
	}
	full := b.Bytes()
	for cut := 0; cut < len(full); cut++ {
		d := NewBuffer(full[:cut])
		d.ReadValue()
		if d.Err() == nil && cut < len(full) {
			// Some prefixes decode to a smaller valid value; they must
			// not panic, and the common case is an error.
			continue
		}
	}
}

func TestBadTag(t *testing.T) {
	d := NewBuffer([]byte{99})
	d.ReadValue()
	if !errors.Is(d.Err(), ErrBadTag) {
		t.Errorf("error = %v, want ErrBadTag", d.Err())
	}
}

func allMessages() []Message {
	return []Message{
		&Hello{PeerID: "phone-nokia9300i", Version: ProtocolVersion, Props: map[string]any{"cpu": "arm9"}},
		&Lease{Services: []ServiceInfo{
			{ID: 1, Interfaces: []string{"ch.ethz.Pointer"}, Props: map[string]any{"ranking": int64(3)}},
			{ID: 2, Interfaces: []string{"ch.ethz.Shop", "ch.ethz.Catalog"}, Props: map[string]any{}},
		}},
		&Lease{},
		&ServiceAdded{Service: ServiceInfo{ID: 9, Interfaces: []string{"x"}, Props: map[string]any{}}},
		&ServiceRemoved{ServiceID: 9},
		&FetchService{RequestID: 5, ServiceID: 2},
		&ServiceReply{
			RequestID: 5,
			Info:      ServiceInfo{ID: 2, Interfaces: []string{"ch.ethz.Shop"}, Props: map[string]any{}},
			Interfaces: []InterfaceDesc{{
				Name: "ch.ethz.Shop",
				Methods: []MethodDesc{
					{Name: "Browse", Args: []string{"string"}, Return: "list"},
					{Name: "Detail", Args: []string{"int"}, Return: "map"},
				},
			}},
			Types:      []TypeDesc{{Name: "Product", Fields: []TypeField{{Name: "name", Type: "string"}}}},
			Descriptor: []byte(`{"ui":[]}`),
			Smart:      &SmartProxyRef{CodeRef: "sha256:abc", LocalMethods: []string{"Browse"}},
		},
		&ServiceReply{RequestID: 6, Info: ServiceInfo{ID: 3, Props: map[string]any{}}, Descriptor: []byte{}},
		&Invoke{CallID: 77, ServiceID: 2, Method: "Browse", Args: []any{"beds", int64(10)}},
		&Result{CallID: 77, Value: []any{"bed-1", "bed-2"}},
		&Result{CallID: 78, Value: nil},
		&ErrorReply{CallID: 77, Code: "NO_SUCH_METHOD", Message: "Browse2 not found"},
		&Event{Topic: "alfredo/mouse/snapshot", Props: map[string]any{"seq": int64(1)}},
		&Subscribe{Patterns: []string{"alfredo/*", "shop/update"}},
		&StreamOpen{StreamID: 3, Name: "screen", Props: map[string]any{"fmt": "rgb"}},
		&StreamData{StreamID: 3, Chunk: []byte{9, 9, 9}},
		&StreamClose{StreamID: 3, Err: "link lost"},
		&Ping{Seq: 42},
		&Pong{Seq: 42},
		&Bye{Reason: "session end"},
	}
}

func TestMessageRoundTrip(t *testing.T) {
	for _, m := range allMessages() {
		var buf bytes.Buffer
		if err := WriteMessage(&buf, m); err != nil {
			t.Errorf("WriteMessage(%s): %v", m.Type(), err)
			continue
		}
		got, err := ReadMessage(&buf)
		if err != nil {
			t.Errorf("ReadMessage(%s): %v", m.Type(), err)
			continue
		}
		if !reflect.DeepEqual(got, m) {
			t.Errorf("round trip %s:\n got %#v\nwant %#v", m.Type(), got, m)
		}
		if buf.Len() != 0 {
			t.Errorf("%s left %d bytes in stream", m.Type(), buf.Len())
		}
	}
}

func TestMessageStream(t *testing.T) {
	var buf bytes.Buffer
	msgs := allMessages()
	for _, m := range msgs {
		if err := WriteMessage(&buf, m); err != nil {
			t.Fatalf("WriteMessage: %v", err)
		}
	}
	for i := range msgs {
		got, err := ReadMessage(&buf)
		if err != nil {
			t.Fatalf("ReadMessage #%d: %v", i, err)
		}
		if got.Type() != msgs[i].Type() {
			t.Errorf("message %d type = %s, want %s", i, got.Type(), msgs[i].Type())
		}
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	cases := [][]byte{
		{},                    // empty payload
		{0},                   // type 0
		{200},                 // unknown type
		{byte(MsgPing)},       // truncated body
		{byte(MsgPing), 1, 1}, // trailing bytes
	}
	for _, payload := range cases {
		if _, err := DecodeMessage(payload); err == nil {
			t.Errorf("DecodeMessage(%v) should fail", payload)
		}
	}
}

func TestReadMessageRejectsOversizedFrame(t *testing.T) {
	var buf bytes.Buffer
	buf.Write([]byte{0xFF, 0xFF, 0xFF, 0xFF})
	if _, err := ReadMessage(&buf); !errors.Is(err, ErrTooLarge) {
		t.Errorf("oversized frame error = %v", err)
	}
	buf.Reset()
	buf.Write([]byte{0, 0, 0, 0})
	if _, err := ReadMessage(&buf); !errors.Is(err, ErrBadMsg) {
		t.Errorf("empty frame error = %v", err)
	}
}

func TestPropertyScalarRoundTrip(t *testing.T) {
	prop := func(i int64, f float64, s string, bs []byte, flag bool) bool {
		in := []any{i, f, s, bs, flag}
		b := &Buffer{}
		if err := b.WriteValues(in); err != nil {
			return false
		}
		d := NewBuffer(b.Bytes())
		out := d.ReadValues()
		if d.Err() != nil || len(out) != len(in) {
			return false
		}
		if out[0] != i || out[2] != s || out[4] != flag {
			return false
		}
		// NaN is the one float that does not compare equal to itself.
		of, _ := out[1].(float64)
		if f == f && of != f {
			return false
		}
		ob, _ := out[3].([]byte)
		return bytes.Equal(ob, bs)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestPropertyInvokeRoundTrip(t *testing.T) {
	prop := func(callID, svcID int64, method string, arg string) bool {
		m := &Invoke{CallID: callID, ServiceID: svcID, Method: method, Args: []any{arg}}
		var buf bytes.Buffer
		if err := WriteMessage(&buf, m); err != nil {
			return false
		}
		got, err := ReadMessage(&buf)
		if err != nil {
			return false
		}
		gm, ok := got.(*Invoke)
		return ok && gm.CallID == callID && gm.ServiceID == svcID &&
			gm.Method == method && len(gm.Args) == 1 && gm.Args[0] == arg
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestPropertyDecodeNeverPanics feeds random bytes to the frame decoder.
func TestPropertyDecodeNeverPanics(t *testing.T) {
	prop := func(payload []byte) bool {
		defer func() {
			if r := recover(); r != nil {
				t.Errorf("DecodeMessage panicked on %v: %v", payload, r)
			}
		}()
		_, _ = DecodeMessage(payload)
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestInterfaceDescMethodLookup(t *testing.T) {
	d := InterfaceDesc{Name: "I", Methods: []MethodDesc{{Name: "A"}, {Name: "B"}}}
	if m, ok := d.Method("B"); !ok || m.Name != "B" {
		t.Errorf("Method(B) = %v, %v", m, ok)
	}
	if _, ok := d.Method("C"); ok {
		t.Error("Method(C) should not exist")
	}
}

func TestEmptyPropsDecodeToEmptyMap(t *testing.T) {
	m := &Hello{PeerID: "p", Version: 1}
	var buf bytes.Buffer
	if err := WriteMessage(&buf, m); err != nil {
		t.Fatal(err)
	}
	got, err := ReadMessage(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.(*Hello).Props == nil {
		t.Error("nil props should decode as empty map")
	}
}
