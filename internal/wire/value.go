package wire

import (
	"fmt"
	"sort"
)

// Value tags for the tagged codec. Invocation arguments and results, and
// service/event property maps, are encoded as tagged values.
const (
	tagNil     = 0
	tagBool    = 1
	tagInt64   = 2
	tagFloat64 = 3
	tagString  = 4
	tagBytes   = 5
	tagList    = 6
	tagMap     = 7
)

// TypeName returns the wire type name used in interface descriptors for
// a Go value: one of "void", "bool", "int", "float", "string", "bytes",
// "list", "map". Unsupported Go types map to "" (callers must normalize
// first).
func TypeName(v any) string {
	switch v.(type) {
	case nil:
		return "void"
	case bool:
		return "bool"
	case int, int8, int16, int32, int64, uint, uint8, uint16, uint32:
		return "int"
	case float32, float64:
		return "float"
	case string:
		return "string"
	case []byte:
		return "bytes"
	case []any:
		return "list"
	case map[string]any:
		return "map"
	default:
		return ""
	}
}

// Normalize converts a supported Go value into its canonical wire form:
// integers widen to int64, float32 to float64, []string to []any.
// It returns an error for unsupported types, which keeps surprises at
// the encoding boundary instead of on the remote side.
func Normalize(v any) (any, error) {
	switch vv := v.(type) {
	case nil, bool, int64, float64, string:
		return vv, nil
	case []byte:
		return vv, nil
	case int:
		return int64(vv), nil
	case int8:
		return int64(vv), nil
	case int16:
		return int64(vv), nil
	case int32:
		return int64(vv), nil
	case uint:
		return int64(vv), nil
	case uint8:
		return int64(vv), nil
	case uint16:
		return int64(vv), nil
	case uint32:
		return int64(vv), nil
	case float32:
		return float64(vv), nil
	case []string:
		out := make([]any, len(vv))
		for i, s := range vv {
			out[i] = s
		}
		return out, nil
	case []any:
		out := make([]any, len(vv))
		for i, e := range vv {
			n, err := Normalize(e)
			if err != nil {
				return nil, err
			}
			out[i] = n
		}
		return out, nil
	case map[string]any:
		out := make(map[string]any, len(vv))
		for k, e := range vv {
			n, err := Normalize(e)
			if err != nil {
				return nil, err
			}
			out[k] = n
		}
		return out, nil
	default:
		return nil, fmt.Errorf("wire: unsupported value type %T", v)
	}
}

// WriteValue appends a normalized value (see Normalize) to the buffer.
// Values that Normalize rejects cause an encoding error return.
func (b *Buffer) WriteValue(v any) error {
	n, err := Normalize(v)
	if err != nil {
		return err
	}
	b.writeNormalized(n)
	return nil
}

func (b *Buffer) writeNormalized(v any) {
	switch vv := v.(type) {
	case nil:
		b.WriteU8(tagNil)
	case bool:
		b.WriteU8(tagBool)
		b.WriteBool(vv)
	case int64:
		b.WriteU8(tagInt64)
		b.WriteInt64(vv)
	case float64:
		b.WriteU8(tagFloat64)
		b.WriteFloat64(vv)
	case string:
		b.WriteU8(tagString)
		b.WriteString(vv)
	case []byte:
		b.WriteU8(tagBytes)
		b.WriteBytes(vv)
	case []any:
		b.WriteU8(tagList)
		b.WriteUvarint(uint64(len(vv)))
		for _, e := range vv {
			b.writeNormalized(e)
		}
	case map[string]any:
		b.WriteU8(tagMap)
		b.WriteUvarint(uint64(len(vv)))
		// Sorted keys: the acquire data plane content-addresses encoded
		// replies, so the same value must always encode to the same
		// bytes — map iteration order must not leak into the frame.
		keys := make([]string, 0, len(vv))
		for k := range vv {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			b.WriteString(k)
			b.writeNormalized(vv[k])
		}
	default:
		// writeNormalized is only called with Normalize output; reaching
		// this branch is a programming error worth failing loudly on.
		panic(fmt.Sprintf("wire: writeNormalized on unnormalized %T", v))
	}
}

// ReadValue consumes a tagged value.
func (b *Buffer) ReadValue() any {
	return b.readValueDepth(0)
}

func (b *Buffer) readValueDepth(depth int) any {
	if b.err != nil {
		return nil
	}
	if depth > MaxDepth {
		b.fail(fmt.Errorf("%w: nesting deeper than %d", ErrTooLarge, MaxDepth))
		return nil
	}
	tag := b.ReadU8()
	if b.err != nil {
		return nil
	}
	switch tag {
	case tagNil:
		return nil
	case tagBool:
		return b.ReadBool()
	case tagInt64:
		return b.ReadInt64()
	case tagFloat64:
		return b.ReadFloat64()
	case tagString:
		return b.ReadString()
	case tagBytes:
		return b.ReadBytes()
	case tagList:
		n := b.ReadUvarint()
		if n > MaxElems {
			b.fail(fmt.Errorf("%w: list of %d elements", ErrTooLarge, n))
			return nil
		}
		out := make([]any, 0, min(int(n), 1024))
		for i := uint64(0); i < n && b.err == nil; i++ {
			out = append(out, b.readValueDepth(depth+1))
		}
		return out
	case tagMap:
		n := b.ReadUvarint()
		if n > MaxElems {
			b.fail(fmt.Errorf("%w: map of %d entries", ErrTooLarge, n))
			return nil
		}
		out := make(map[string]any, min(int(n), 1024))
		for i := uint64(0); i < n && b.err == nil; i++ {
			k := b.ReadString()
			out[k] = b.readValueDepth(depth + 1)
		}
		return out
	default:
		b.fail(fmt.Errorf("%w: tag %d at offset %d", ErrBadTag, tag, b.off-1))
		return nil
	}
}

// WriteValues appends a length-prefixed list of values.
func (b *Buffer) WriteValues(vs []any) error {
	b.WriteUvarint(uint64(len(vs)))
	for _, v := range vs {
		if err := b.WriteValue(v); err != nil {
			return err
		}
	}
	return nil
}

// ReadValues consumes a length-prefixed list of values.
func (b *Buffer) ReadValues() []any {
	n := b.ReadUvarint()
	if b.err != nil {
		return nil
	}
	if n > MaxElems {
		b.fail(fmt.Errorf("%w: %d values", ErrTooLarge, n))
		return nil
	}
	if n == 0 {
		return nil
	}
	out := make([]any, 0, min(int(n), 1024))
	for i := uint64(0); i < n && b.err == nil; i++ {
		out = append(out, b.ReadValue())
	}
	return out
}

// WriteProps appends a property map.
func (b *Buffer) WriteProps(p map[string]any) error {
	n, err := Normalize(p)
	if err != nil {
		return err
	}
	if n == nil {
		n = map[string]any{}
	}
	b.writeNormalized(n)
	return nil
}

// ReadProps consumes a property map.
func (b *Buffer) ReadProps() map[string]any {
	v := b.ReadValue()
	if b.err != nil {
		return nil
	}
	m, ok := v.(map[string]any)
	if !ok {
		b.fail(fmt.Errorf("%w: expected map, got %T", ErrBadMsg, v))
		return nil
	}
	return m
}
