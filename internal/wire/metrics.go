package wire

import "github.com/alfredo-mw/alfredo/internal/obs"

// Frame I/O telemetry, recorded on the process-wide default hub (the
// codec has no per-connection configuration to plumb a hub through).
// Handles are resolved once at init so the per-frame cost is a single
// atomic add each. Every message is encoded exactly once — receivers
// learn frame sizes from ReadMessageSize instead of re-encoding — so
// frames_encoded tracks frames actually produced for a transport.
var (
	mFramesEncoded = obs.Default().Metrics.Counter("alfredo_wire_frames_encoded_total")
	mBytesEncoded  = obs.Default().Metrics.Counter("alfredo_wire_bytes_encoded_total")
	mFramesDecoded = obs.Default().Metrics.Counter("alfredo_wire_frames_decoded_total")
	mBytesDecoded  = obs.Default().Metrics.Counter("alfredo_wire_bytes_decoded_total")
	mDecodeErrors  = obs.Default().Metrics.Counter("alfredo_wire_decode_errors_total")
)

func init() {
	m := obs.Default().Metrics
	m.Help("alfredo_wire_frames_encoded_total", "Frames successfully encoded for a transport.")
	m.Help("alfredo_wire_bytes_encoded_total", "Total bytes of encoded frames, headers included.")
	m.Help("alfredo_wire_frames_decoded_total", "Frame payloads successfully decoded.")
	m.Help("alfredo_wire_bytes_decoded_total", "Total bytes of decoded frame payloads.")
	m.Help("alfredo_wire_decode_errors_total", "Malformed frames rejected by the decoder.")
}
