package wire

import "fmt"

// Metric kinds carried inside a MetricsReport. The values are part of
// the wire format; append only.
const (
	MetricCounter   byte = 0
	MetricGauge     byte = 1
	MetricHistogram byte = 2
	MetricMeter     byte = 3
)

// MetricSample is one metric series inside a MetricsReport. Counters
// and gauges carry Value; meters carry Rate; histograms carry the
// cumulative bucket array (Buckets/Count/Sum) plus the sliding-window
// view (WinBuckets/WinCount/WinSum). Values are cumulative, not deltas:
// a report lost to the link costs freshness, never correctness, because
// the next one carries the absolute state again.
type MetricSample struct {
	Name   string
	Kind   byte
	Labels []string // alternating key, value

	Value int64
	Rate  float64

	Buckets []int64
	Count   int64
	Sum     int64 // nanoseconds

	WinBuckets []int64
	WinCount   int64
	WinSum     int64 // nanoseconds
}

func (s *MetricSample) encode(b *Buffer) {
	b.WriteString(s.Name)
	b.WriteU8(s.Kind)
	b.WriteStrings(s.Labels)
	b.WriteInt64(s.Value)
	b.WriteFloat64(s.Rate)
	writeInt64s(b, s.Buckets)
	b.WriteInt64(s.Count)
	b.WriteInt64(s.Sum)
	writeInt64s(b, s.WinBuckets)
	b.WriteInt64(s.WinCount)
	b.WriteInt64(s.WinSum)
}

func (s *MetricSample) decode(b *Buffer) {
	s.Name = b.ReadString()
	s.Kind = b.ReadU8()
	s.Labels = b.ReadStrings()
	s.Value = b.ReadInt64()
	s.Rate = b.ReadFloat64()
	s.Buckets = readInt64s(b)
	s.Count = b.ReadInt64()
	s.Sum = b.ReadInt64()
	s.WinBuckets = readInt64s(b)
	s.WinCount = b.ReadInt64()
	s.WinSum = b.ReadInt64()
}

func writeInt64s(b *Buffer, vs []int64) {
	b.WriteUvarint(uint64(len(vs)))
	for _, v := range vs {
		b.WriteInt64(v)
	}
}

func readInt64s(b *Buffer) []int64 {
	n := b.ReadUvarint()
	if n == 0 || b.err != nil {
		return nil
	}
	if n > MaxElems {
		b.fail(fmt.Errorf("%w: %d int64s", ErrTooLarge, n))
		return nil
	}
	vs := make([]int64, 0, min(int(n), 256))
	for i := uint64(0); i < n && b.err == nil; i++ {
		vs = append(vs, b.ReadInt64())
	}
	return vs
}

// MetricsReport ships one node's metric state to its peer (phone ->
// host on a clock-driven cadence; negotiated in hello via the
// "metrics.sink" prop). Seq increases per sender connection; the
// receiver drops stale reorderings. Full true means Samples carries the
// sender's entire registry (sent on the first report of a connection
// and periodically as a resync); false means only series whose state
// changed since the previous report. Sample values are always
// cumulative, so applying a report is idempotent last-write-wins.
type MetricsReport struct {
	Node    string
	Seq     int64
	Full    bool
	Samples []MetricSample
}

// Type implements Message.
func (m *MetricsReport) Type() MsgType { return MsgMetricsReport }

func (m *MetricsReport) encode(b *Buffer) error {
	b.WriteString(m.Node)
	b.WriteInt64(m.Seq)
	b.WriteBool(m.Full)
	b.WriteUvarint(uint64(len(m.Samples)))
	for i := range m.Samples {
		m.Samples[i].encode(b)
	}
	return nil
}

func (m *MetricsReport) decode(b *Buffer) {
	m.Node = b.ReadString()
	m.Seq = b.ReadInt64()
	m.Full = b.ReadBool()
	n := b.ReadUvarint()
	if b.err != nil {
		return
	}
	if n > MaxElems {
		b.fail(fmt.Errorf("%w: %d metric samples", ErrTooLarge, n))
		return
	}
	m.Samples = make([]MetricSample, 0, min(int(n), 1024))
	for i := uint64(0); i < n && b.err == nil; i++ {
		var s MetricSample
		s.decode(b)
		m.Samples = append(m.Samples, s)
	}
}
