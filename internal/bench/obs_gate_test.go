package bench

import (
	"testing"
	"time"

	"github.com/alfredo-mw/alfredo/internal/obs"
	"github.com/alfredo-mw/alfredo/internal/remote"
)

// obsGateMaxOverhead is the telemetry budget `make obs-bench` enforces:
// with the full metric stack enabled (counters, windowed histograms,
// meters, exemplars) the pipelined invoke path may lose at most this
// fraction of its throughput versus the same path with telemetry
// compiled down to no-ops.
const obsGateMaxOverhead = 0.05

// TestObsOverheadGate measures pipelined invoke throughput with
// telemetry enabled (a live hub) and disabled (obs.Nop) and fails when
// the enabled path is more than obsGateMaxOverhead slower. Throughput
// on a shared machine is noisy, so the gate takes the best of three
// attempts before failing — a genuine regression fails all three.
func TestObsOverheadGate(t *testing.T) {
	if testing.Short() {
		t.Skip("throughput gate skipped in -short")
	}

	measure := func(hub *obs.Hub) float64 {
		t.Helper()
		env, err := NewThroughputEnvConfig(remote.Config{Obs: hub})
		if err != nil {
			t.Fatal(err)
		}
		defer env.Close()
		// Warmup primes the dispatch pool and the connection.
		measureThroughput(env, 8, 100*time.Millisecond, true)
		return measureThroughput(env, 8, 500*time.Millisecond, true)
	}

	var worst float64
	for attempt := 1; attempt <= 3; attempt++ {
		enabled := measure(obs.NewHub())
		disabled := measure(obs.Nop())
		overhead := 1 - enabled/disabled
		t.Logf("attempt %d: enabled %.0f op/s, disabled %.0f op/s, overhead %.2f%%",
			attempt, enabled, disabled, overhead*100)
		if overhead <= obsGateMaxOverhead {
			return
		}
		if overhead > worst {
			worst = overhead
		}
	}
	t.Fatalf("telemetry overhead %.2f%% exceeds the %.0f%% budget in all attempts",
		worst*100, obsGateMaxOverhead*100)
}
