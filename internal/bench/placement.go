package bench

import (
	"fmt"
	"time"

	"github.com/alfredo-mw/alfredo/internal/apps/shop"
	"github.com/alfredo-mw/alfredo/internal/core"
	"github.com/alfredo-mw/alfredo/internal/device"
	"github.com/alfredo-mw/alfredo/internal/netsim"
	"github.com/alfredo-mw/alfredo/internal/obs"
	"github.com/alfredo-mw/alfredo/internal/remote"
)

// PlacementPhase is one measured phase of the re-placement sweep.
type PlacementPhase struct {
	Name    string
	Local   bool          // where the logic tier ran during measurement
	Invokes int           // completed dependency invokes
	Errors  int           // failed dependency invokes
	Mean    time.Duration // mean dependency-invoke latency
}

// PlacementResult is the outcome of RunPlacement: the three measured
// phases plus the decision counters the optimizer produced along the
// way.
type PlacementResult struct {
	Phases []PlacementPhase
	Pulls  int64
	Pushes int64
	Flaps  int64
	// Issued/Dispatched are the exactly-once accounting totals; they
	// must be equal once the sweep drains.
	Issued     int64
	Dispatched int64
}

// RunPlacement is the live re-placement sweep behind `-exp placement`:
// one phone leases the shop over a link that starts fast, degrades,
// and recovers, with the bidirectional optimizer live the whole time.
// Dependency invokes run in every phase — including through both
// cutovers — and the report shows the latency the user experiences in
// each placement plus the pull/push/flap counters. Every invoke must
// complete; the issued/dispatched totals must match exactly.
func RunPlacement(cfg Config) (*PlacementResult, error) {
	cfg = cfg.withDefaults()
	hub := obs.NewHub()

	fabric := netsim.NewFabric()
	host, err := core.NewNode(core.NodeConfig{Name: "place-host", Profile: device.Notebook(), Obs: hub})
	if err != nil {
		return nil, err
	}
	defer host.Close()
	if err := host.RegisterApp(shop.New().App()); err != nil {
		return nil, err
	}
	l, err := fabric.Listen("place-host")
	if err != nil {
		return nil, err
	}
	defer l.Close()
	host.Serve(l)

	proxyCode := remote.NewProxyCodeRegistry()
	if err := shop.RegisterProxyCode(proxyCode); err != nil {
		return nil, err
	}
	phone, err := core.NewNode(core.NodeConfig{
		Name:      "place-phone",
		Profile:   device.Nokia9300i(),
		ProxyCode: proxyCode,
		Obs:       hub,
	})
	if err != nil {
		return nil, err
	}
	defer phone.Close()

	rawConn, err := fabric.Dial("place-host", netsim.Loopback)
	if err != nil {
		return nil, err
	}
	conn := rawConn.(*netsim.Conn)
	session, err := phone.Connect(rawConn)
	if err != nil {
		return nil, err
	}
	defer session.Close()
	app, err := session.Acquire(shop.InterfaceName, core.AcquireOptions{SkipUI: true})
	if err != nil {
		return nil, err
	}

	opt, err := app.StartOptimizer(core.OptimizerConfig{
		Interval:     20 * time.Millisecond,
		RTTThreshold: 20 * time.Millisecond,
		PushRTT:      5 * time.Millisecond,
		RTTAlpha:     1, // react on the first post-transition probe
		MinDwell:     200 * time.Millisecond,
	})
	if err != nil {
		return nil, err
	}
	defer opt.Stop()

	res := &PlacementResult{}
	m := hub.Metrics

	// measure drives dependency invokes for the window and records the
	// phase. Invokes keep flowing while a cutover is still settling, so
	// the exactly-once property is exercised on the seams, not around
	// them.
	measure := func(name string, wantLocal bool, settle time.Duration) error {
		deadline := time.Now().Add(settle)
		for {
			local, _ := app.DependencyLocal(shop.LogicInterface)
			if local == wantLocal || time.Now().After(deadline) {
				break
			}
			if _, err := app.InvokeDependency(shop.LogicInterface, "FormatPrice", int64(199)); err != nil {
				return fmt.Errorf("bench: invoke during cutover (%s): %w", name, err)
			}
			time.Sleep(5 * time.Millisecond)
		}
		local, _ := app.DependencyLocal(shop.LogicInterface)
		if local != wantLocal {
			return fmt.Errorf("bench: phase %s: placement local=%v, want %v", name, local, wantLocal)
		}
		ph := PlacementPhase{Name: name, Local: local}
		var total time.Duration
		end := time.Now().Add(cfg.Window / 3)
		for time.Now().Before(end) {
			start := time.Now()
			v, err := app.InvokeDependency(shop.LogicInterface, "FormatPrice", int64(199))
			if err != nil || v != "1.99" {
				ph.Errors++
				continue
			}
			total += time.Since(start)
			ph.Invokes++
		}
		if ph.Invokes > 0 {
			ph.Mean = total / time.Duration(ph.Invokes)
		}
		res.Phases = append(res.Phases, ph)
		return nil
	}

	// Phase 1: fast link, logic stays on the target.
	if err := measure("baseline-fast", false, time.Second); err != nil {
		return nil, err
	}
	// Phase 2: the user walks away from the access point; the optimizer
	// pulls the logic tier and invokes go local.
	conn.SetLink(netsim.LinkProfile{Name: "degraded", Latency: 30 * time.Millisecond})
	if err := measure("degraded-pulled", true, 5*time.Second); err != nil {
		return nil, err
	}
	// Phase 3: the link recovers; after the dwell the optimizer pushes
	// the tier back and invokes are remote again.
	conn.SetLink(netsim.Loopback)
	if err := measure("recovered-pushed", false, 5*time.Second); err != nil {
		return nil, err
	}

	res.Pulls = m.Total("alfredo_core_placement_pulls_total")
	res.Pushes = m.Total("alfredo_core_placement_pushes_total")
	res.Flaps = m.Total("alfredo_core_placement_flaps_total")
	res.Issued = m.Total("alfredo_core_dep_invokes_total")
	res.Dispatched = m.Total("alfredo_core_dep_dispatch_total")

	fmt.Fprintln(cfg.Out, "Live re-placement sweep (degrade -> pull, recover -> push), optimizer online:")
	fmt.Fprintf(cfg.Out, "  %-18s %-8s %10s %8s %8s\n", "phase", "tier", "mean", "invokes", "errors")
	for _, ph := range res.Phases {
		tier := "remote"
		if ph.Local {
			tier = "local"
		}
		fmt.Fprintf(cfg.Out, "  %-18s %-8s %10v %8d %8d\n",
			ph.Name, tier, ph.Mean.Round(time.Microsecond), ph.Invokes, ph.Errors)
	}
	fmt.Fprintf(cfg.Out, "  decisions: pulls=%d pushes=%d flaps=%d\n", res.Pulls, res.Pushes, res.Flaps)
	fmt.Fprintf(cfg.Out, "  exactly-once: issued=%d dispatched=%d\n", res.Issued, res.Dispatched)
	if res.Issued != res.Dispatched {
		return nil, fmt.Errorf("bench: %d dep invokes issued but %d dispatched", res.Issued, res.Dispatched)
	}
	return res, nil
}
