package bench

import (
	"fmt"
	"net"
	"sync"
	"time"

	"github.com/alfredo-mw/alfredo/internal/apps/shop"
	"github.com/alfredo-mw/alfredo/internal/core"
	"github.com/alfredo-mw/alfredo/internal/device"
	"github.com/alfredo-mw/alfredo/internal/netsim"
	"github.com/alfredo-mw/alfredo/internal/obs"
	"github.com/alfredo-mw/alfredo/internal/remote"
)

// RunObsDemo drives one instrumented session end to end and dumps what
// the telemetry stack recorded: a shop acquisition and invocations over
// a simulated WLAN link, a partition that forces a timed-out retry, a
// hard drop that forces reconnection and lease recovery — then the
// acquire-phase latencies, the full Prometheus snapshot, the slowest
// recorded trace as a span tree, and an instrumented-vs-disabled invoke
// overhead comparison. Everything it prints comes from the process-wide
// obs.Default() hub, i.e. exactly what the introspection endpoint would
// serve.
func RunObsDemo(cfg Config) error {
	cfg = cfg.withDefaults()
	hub := obs.Default()

	fmt.Fprintln(cfg.Out, "Telemetry demo: instrumented shop session (WLAN, partition, drop)")

	if err := obsDemoSession(); err != nil {
		return err
	}

	// Phase timings, as the acquire-phase histograms recorded them.
	fmt.Fprintln(cfg.Out, "\nAcquire phase latencies (histogram means):")
	for _, s := range hub.Metrics.Snapshot() {
		if s.Name != "alfredo_core_acquire_phase_seconds" || s.Hist == nil {
			continue
		}
		fmt.Fprintf(cfg.Out, "  %-40s %10v (n=%d)\n",
			s.Name+s.LabelString(), s.Hist.Mean().Round(time.Microsecond), s.Hist.Count)
	}

	fmt.Fprintln(cfg.Out, "\nMetrics snapshot (Prometheus exposition):")
	if err := obs.WritePrometheus(cfg.Out, hub.Metrics); err != nil {
		return err
	}

	fmt.Fprintln(cfg.Out, "\nSlowest recorded trace:")
	if slow := hub.Traces.Slowest(1); len(slow) > 0 {
		if spans, ok := hub.Traces.Trace(slow[0].TraceID); ok {
			fmt.Fprint(cfg.Out, obs.FormatTrace(spans))
		}
	} else {
		fmt.Fprintln(cfg.Out, "(no traces recorded)")
	}

	// Overhead: the same invoke loop against the same target, once on
	// the default hub and once with telemetry disabled (obs.Nop()).
	instr, plain, n, err := obsOverhead()
	if err != nil {
		return err
	}
	fmt.Fprintf(cfg.Out, "\nInvoke overhead (%d invocations, loopback link):\n", n)
	fmt.Fprintf(cfg.Out, "  instrumented %10v/op\n", instr.Round(time.Microsecond))
	fmt.Fprintf(cfg.Out, "  disabled     %10v/op\n", plain.Round(time.Microsecond))
	fmt.Fprintf(cfg.Out, "  delta        %10v/op\n", (instr - plain).Round(time.Microsecond))
	fmt.Fprintln(cfg.Out)
	return nil
}

// obsDemoSession runs the scripted session whose telemetry the demo
// dumps: acquire, a few invokes, a partition long enough to time out
// one attempt (counted retry), and a hard drop (reconnect + recovery).
func obsDemoSession() error {
	fabric := netsim.NewFabric()
	host, err := core.NewNode(core.NodeConfig{Name: "obs-host", Profile: device.Notebook()})
	if err != nil {
		return err
	}
	defer host.Close()
	if err := host.RegisterApp(shop.New().App()); err != nil {
		return err
	}
	l, err := fabric.Listen("obs-host")
	if err != nil {
		return err
	}
	defer l.Close()
	host.Serve(l)

	phone, err := core.NewNode(core.NodeConfig{
		Name:          "obs-phone",
		Profile:       device.Nokia9300i(),
		InvokeTimeout: 150 * time.Millisecond,
		Retry: remote.RetryPolicy{
			MaxAttempts:     4,
			BaseDelay:       100 * time.Millisecond,
			ReconnectBudget: 10 * time.Second,
		},
	})
	if err != nil {
		return err
	}
	defer phone.Close()

	var mu sync.Mutex
	var last *netsim.Conn
	dial := func() (net.Conn, error) {
		c, err := fabric.Dial("obs-host", netsim.WLAN11b)
		if err != nil {
			return nil, err
		}
		mu.Lock()
		last = c.(*netsim.Conn)
		mu.Unlock()
		return c, nil
	}
	session, err := phone.ConnectResilient(dial)
	if err != nil {
		return err
	}
	defer session.Close()

	app, err := session.Acquire(shop.InterfaceName, core.AcquireOptions{})
	if err != nil {
		return err
	}
	for i := 0; i < 5; i++ {
		if _, err := app.Invoke("Categories"); err != nil {
			return err
		}
	}

	// Partition: the in-flight attempt times out, the idempotent retry
	// lands after the stall lifts — one retries_total{op=invoke} tick.
	info, _ := session.Channel().FindRemoteService(shop.InterfaceName)
	mu.Lock()
	last.Partition(200 * time.Millisecond)
	mu.Unlock()
	if _, err := session.Channel().InvokeIdempotent(info.ID, "Categories", nil); err != nil {
		return fmt.Errorf("bench: invoke across partition: %w", err)
	}

	// Hard drop: reconnect + degrade/recover cycle.
	mu.Lock()
	last.Drop()
	mu.Unlock()
	for !app.Degraded() {
		time.Sleep(time.Millisecond)
	}
	if _, err := app.Invoke("Categories"); err != nil {
		return fmt.Errorf("bench: invoke after drop: %w", err)
	}
	return nil
}

// obsOverhead measures the same invoke loop with telemetry on (default
// hub) and off (obs.Nop()), returning per-op means and the loop count.
func obsOverhead() (instrumented, disabled time.Duration, n int, err error) {
	n = 300
	run := func(hub *obs.Hub) (time.Duration, error) {
		fabric := netsim.NewFabric()
		host, err := core.NewNode(core.NodeConfig{Name: "ovh-host", Profile: device.Notebook(), Obs: hub})
		if err != nil {
			return 0, err
		}
		defer host.Close()
		if err := host.RegisterApp(shop.New().App()); err != nil {
			return 0, err
		}
		l, err := fabric.Listen("ovh-host")
		if err != nil {
			return 0, err
		}
		defer l.Close()
		host.Serve(l)

		phone, err := core.NewNode(core.NodeConfig{Name: "ovh-phone", Profile: device.Nokia9300i(), Obs: hub})
		if err != nil {
			return 0, err
		}
		defer phone.Close()
		conn, err := fabric.Dial("ovh-host", netsim.Loopback)
		if err != nil {
			return 0, err
		}
		session, err := phone.Connect(conn)
		if err != nil {
			return 0, err
		}
		defer session.Close()
		app, err := session.Acquire(shop.InterfaceName, core.AcquireOptions{SkipUI: true})
		if err != nil {
			return 0, err
		}
		// Warmup.
		for i := 0; i < 20; i++ {
			if _, err := app.Invoke("Categories"); err != nil {
				return 0, err
			}
		}
		start := time.Now()
		for i := 0; i < n; i++ {
			if _, err := app.Invoke("Categories"); err != nil {
				return 0, err
			}
		}
		return time.Since(start) / time.Duration(n), nil
	}
	if instrumented, err = run(obs.Default()); err != nil {
		return 0, 0, 0, err
	}
	if disabled, err = run(obs.Nop()); err != nil {
		return 0, 0, 0, err
	}
	return instrumented, disabled, n, nil
}
