package bench

import (
	"testing"
	"time"
)

// TestPlacementSweepSmoke runs the re-placement sweep with a short
// window and checks its contract: one pull on degrade, one push on
// recover, zero flaps, zero invoke errors, and exact issued/dispatched
// accounting across both cutovers.
func TestPlacementSweepSmoke(t *testing.T) {
	res, err := RunPlacement(Config{Window: 600 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Phases) != 3 {
		t.Fatalf("got %d phases, want 3", len(res.Phases))
	}
	wantLocal := []bool{false, true, false}
	for i, ph := range res.Phases {
		if ph.Local != wantLocal[i] {
			t.Errorf("phase %s: local=%v, want %v", ph.Name, ph.Local, wantLocal[i])
		}
		if ph.Errors != 0 {
			t.Errorf("phase %s: %d invoke errors", ph.Name, ph.Errors)
		}
		if ph.Invokes == 0 {
			t.Errorf("phase %s: no invokes completed", ph.Name)
		}
	}
	// On-device execution must beat the degraded 60 ms round trip.
	if d, r := res.Phases[1].Mean, 30*time.Millisecond; d >= r {
		t.Errorf("degraded-pulled mean %v not faster than %v: logic did not run locally", d, r)
	}
	if res.Pulls != 1 || res.Pushes != 1 {
		t.Errorf("pulls=%d pushes=%d, want exactly one each", res.Pulls, res.Pushes)
	}
	if res.Flaps != 0 {
		t.Errorf("flaps=%d on a clean degrade/recover arc, want 0", res.Flaps)
	}
	if res.Issued != res.Dispatched {
		t.Errorf("issued %d != dispatched %d", res.Issued, res.Dispatched)
	}
}

// TestPlacementExperimentRegistered keeps `-exp placement` wired into
// the registry and the report order.
func TestPlacementExperimentRegistered(t *testing.T) {
	if _, ok := Experiments["placement"]; !ok {
		t.Fatal("placement experiment not registered")
	}
	found := false
	for _, id := range Order {
		if id == "placement" {
			found = true
		}
	}
	if !found {
		t.Fatal("placement missing from report order")
	}
}
