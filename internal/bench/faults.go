package bench

import (
	"fmt"
	"net"
	"sync"
	"time"

	"github.com/alfredo-mw/alfredo/internal/apps/shop"
	"github.com/alfredo-mw/alfredo/internal/core"
	"github.com/alfredo-mw/alfredo/internal/device"
	"github.com/alfredo-mw/alfredo/internal/netsim"
	"github.com/alfredo-mw/alfredo/internal/remote"
)

// FaultPoint is one row of the fault-recovery ablation: how long a
// resilient session needs to get back to a successful invocation after
// a hard disconnect followed by an outage of the given length.
type FaultPoint struct {
	Link     string
	Outage   time.Duration
	Recovery time.Duration // disconnect -> first successful invocation
	Overhead time.Duration // Recovery - Outage: redial + handshake + re-lease
}

// RunFaultAblation measures recovery time versus disconnect duration
// over the paper's phone links. The paper's lease model (§3.2) argues
// that devices vanish and reappear on wireless links; this experiment
// quantifies what that costs with the resilient layer in place: the
// connection is hard-dropped, redials are refused for the outage
// duration (access point out of range), and the clock stops at the
// first invocation that completes after the blackout lifts.
func RunFaultAblation(cfg Config) ([]FaultPoint, error) {
	cfg = cfg.withDefaults()
	outages := []time.Duration{
		100 * time.Millisecond, 250 * time.Millisecond,
		500 * time.Millisecond, time.Second,
	}
	if cfg.Full {
		outages = append(outages, 2*time.Second, 4*time.Second)
	}
	links := []netsim.LinkProfile{netsim.WLAN11b, netsim.BT20}

	fmt.Fprintln(cfg.Out, "Ablation: recovery time vs disconnect duration (shop session)")
	fmt.Fprintf(cfg.Out, "%-10s %10s %14s %14s\n", "link", "outage", "recovery", "overhead")

	var out []FaultPoint
	for _, link := range links {
		for _, outage := range outages {
			var total time.Duration
			for rep := 0; rep < cfg.Repeats; rep++ {
				rec, err := measureRecovery(link, outage)
				if err != nil {
					return nil, err
				}
				total += rec
			}
			p := FaultPoint{
				Link:     link.Name,
				Outage:   outage,
				Recovery: total / time.Duration(cfg.Repeats),
			}
			p.Overhead = p.Recovery - outage
			out = append(out, p)
			fmt.Fprintf(cfg.Out, "%-10s %10s %14s %14s\n",
				p.Link, fmtDur(p.Outage), fmtDur(p.Recovery), fmtDur(p.Overhead))
		}
	}
	fmt.Fprintln(cfg.Out)
	return out, nil
}

// measureRecovery runs one disconnect/recover cycle: establish a
// resilient shop session, drop the transport with redials refused for
// the outage duration, and time until an invocation completes again.
func measureRecovery(link netsim.LinkProfile, outage time.Duration) (time.Duration, error) {
	fabric := netsim.NewFabric()
	host, err := core.NewNode(core.NodeConfig{Name: "fault-host", Profile: device.Notebook()})
	if err != nil {
		return 0, err
	}
	defer host.Close()
	if err := host.RegisterApp(shop.New().App()); err != nil {
		return 0, err
	}
	l, err := fabric.Listen("fault-host")
	if err != nil {
		return 0, err
	}
	defer l.Close()
	host.Serve(l)

	phone, err := core.NewNode(core.NodeConfig{
		Name:    "fault-phone",
		Profile: device.Nokia9300i(),
		Retry: remote.RetryPolicy{
			MaxAttempts:     3,
			BaseDelay:       25 * time.Millisecond,
			ReconnectBudget: outage + 15*time.Second,
		},
	})
	if err != nil {
		return 0, err
	}
	defer phone.Close()

	var mu sync.Mutex
	var last *netsim.Conn
	dial := func() (net.Conn, error) {
		c, err := fabric.Dial("fault-host", link)
		if err != nil {
			return nil, err
		}
		mu.Lock()
		last = c.(*netsim.Conn)
		mu.Unlock()
		return c, nil
	}
	session, err := phone.ConnectResilient(dial)
	if err != nil {
		return 0, err
	}
	defer session.Close()
	app, err := session.Acquire(shop.InterfaceName, core.AcquireOptions{SkipUI: true})
	if err != nil {
		return 0, err
	}
	if _, err := app.Invoke("Categories"); err != nil {
		return 0, err
	}

	// Outage: hard drop, redials refused until the blackout lifts.
	start := time.Now()
	fabric.Block("fault-host", outage)
	mu.Lock()
	last.Drop()
	mu.Unlock()

	// Wait for the session to notice the failure (the degraded window
	// spans the whole blackout, so this poll cannot miss it).
	for !app.Degraded() {
		if session.Link().State() == remote.LinkDown {
			return 0, fmt.Errorf("bench: link down during %v outage", outage)
		}
		time.Sleep(time.Millisecond)
	}

	// Invoke blocks while degraded and completes once the lease is
	// re-established — exactly the user-visible recovery time.
	if _, err := app.Invoke("Categories"); err != nil {
		return 0, fmt.Errorf("bench: recovery invoke after %v outage: %w", outage, err)
	}
	return time.Since(start), nil
}
