package bench

import (
	"strings"
	"testing"
)

// TestAcquireBenchSmoke is the CI gate behind `make acquire-bench`: a
// tiny cold/warm/delta cycle on the virtual clock asserting the
// warm-start guarantee — re-leasing an unchanged service must move
// less than 10% of the cold-fetch bytes.
func TestAcquireBenchSmoke(t *testing.T) {
	for _, loss := range []float64{0, 0.05} {
		pts, err := measureAcquire(16<<10, loss)
		if err != nil {
			t.Fatalf("loss %.0f%%: %v", loss*100, err)
		}
		if len(pts) != 3 {
			t.Fatalf("loss %.0f%%: got %d phases, want 3", loss*100, len(pts))
		}
		cold, warm, delta := pts[0], pts[1], pts[2]
		if cold.Stats.Mode != "cold" {
			t.Errorf("loss %.0f%%: first fetch mode = %q, want cold", loss*100, cold.Stats.Mode)
		}
		if warm.Stats.Mode != "warm" || warm.Stats.ChunksFetched != 0 {
			t.Errorf("loss %.0f%%: warm fetch mode=%q chunks=%d, want warm/0",
				loss*100, warm.Stats.Mode, warm.Stats.ChunksFetched)
		}
		if warm.WireBytes*10 >= cold.WireBytes {
			t.Errorf("loss %.0f%%: warm re-acquire moved %d bytes, cold moved %d — want warm < 10%% of cold",
				loss*100, warm.WireBytes, cold.WireBytes)
		}
		if delta.Stats.Mode != "delta" {
			t.Errorf("loss %.0f%%: delta fetch mode = %q, want delta", loss*100, delta.Stats.Mode)
		}
		if delta.WireBytes >= cold.WireBytes {
			t.Errorf("loss %.0f%%: delta moved %d bytes, not less than cold's %d",
				loss*100, delta.WireBytes, cold.WireBytes)
		}
	}
}

// TestAcquireExperimentRegistered keeps the runner wiring honest.
func TestAcquireExperimentRegistered(t *testing.T) {
	if _, ok := Experiments["acquire"]; !ok {
		t.Fatal("acquire missing from Experiments map")
	}
	if !strings.Contains(strings.Join(Order, ","), "acquire") {
		t.Fatal("acquire missing from Order")
	}
}
