package bench

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"github.com/alfredo-mw/alfredo/internal/module"
	"github.com/alfredo-mw/alfredo/internal/netsim"
	"github.com/alfredo-mw/alfredo/internal/remote"
	"github.com/alfredo-mw/alfredo/internal/service"
)

// ThroughputEnv is a ready-to-invoke server/client pair on the in-proc
// Gigabit fabric with device simulation disabled: invocation cost is the
// real encode/dispatch/write path, nothing simulated. It backs
// BenchmarkInvokeThroughput and the -exp throughput sweep.
type ThroughputEnv struct {
	Ch    *remote.Channel
	SvcID int64

	serverFW   *module.Framework
	serverPeer *remote.Peer
	clientFW   *module.Framework
	clientPeer *remote.Peer
	l          *netsim.Listener
}

// NewThroughputEnv builds the echo server and one connected client
// channel with the peer's default dispatch configuration.
func NewThroughputEnv() (*ThroughputEnv, error) {
	return NewThroughputEnvConfig(remote.Config{})
}

// NewThroughputEnvConfig is NewThroughputEnv with server-side dispatch
// knobs (Config.Framework is overwritten; everything else is kept), so
// ablations can pin worker-pool settings.
func NewThroughputEnvConfig(serverCfg remote.Config) (*ThroughputEnv, error) {
	env := &ThroughputEnv{}
	env.serverFW = module.NewFramework(module.Config{Name: "tp-server"})
	serverCfg.Framework = env.serverFW
	peer, err := remote.NewPeer(serverCfg)
	if err != nil {
		env.Close()
		return nil, err
	}
	env.serverPeer = peer
	if _, err := env.serverFW.Registry().Register([]string{echoInterface}, newEchoService(),
		service.Properties{remote.PropExported: true}, "bench"); err != nil {
		env.Close()
		return nil, err
	}
	fabric := netsim.NewFabric()
	if env.l, err = fabric.Listen("tp-server"); err != nil {
		env.Close()
		return nil, err
	}
	go func() { _ = peer.Serve(env.l) }()

	env.clientFW = module.NewFramework(module.Config{Name: "tp-client"})
	env.clientPeer, err = remote.NewPeer(remote.Config{
		Framework: env.clientFW,
		Timeout:   30 * time.Second,
		// The client records on the same hub as the server, so a run
		// with telemetry pinned off (obs.Nop) measures the bare path on
		// both ends.
		Obs: serverCfg.Obs,
	})
	if err != nil {
		env.Close()
		return nil, err
	}
	conn, err := fabric.Dial("tp-server", netsim.Gigabit)
	if err != nil {
		env.Close()
		return nil, err
	}
	if env.Ch, err = env.clientPeer.Connect(conn); err != nil {
		env.Close()
		return nil, err
	}
	info, ok := env.Ch.FindRemoteService(echoInterface)
	if !ok {
		env.Close()
		return nil, fmt.Errorf("bench: echo service not leased")
	}
	env.SvcID = info.ID
	return env, nil
}

// ThroughputPoint is one measured cell of the throughput sweep.
type ThroughputPoint struct {
	Callers   int
	SyncOps   float64 // synchronous Invoke, bounded dispatch pool
	AsyncOps  float64 // pipelined InvokeAsync batches, bounded pool
	SeedOps   float64 // synchronous Invoke, seed goroutine-per-invoke
	AsyncGain float64 // AsyncOps / SyncOps
}

// asyncBatch is how many invocations a pipelined caller keeps in
// flight before collecting; deep enough to hide the link round trip,
// shallow enough that a sweep cell finishes promptly.
const asyncBatch = 16

// RunThroughput sweeps sustained invoke throughput (ops/sec) against
// the number of concurrent callers on the in-proc Gigabit fabric, with
// three variants per point: synchronous invokes on the bounded dispatch
// pool, pipelined InvokeAsync batches on the same pool, and the seed's
// unbounded goroutine-per-invoke dispatch as the ablation baseline
// (remote.Config{DispatchWorkers: -1}).
func RunThroughput(cfg Config) ([]ThroughputPoint, error) {
	cfg = cfg.withDefaults()
	window := cfg.Window / 3
	if window < 200*time.Millisecond {
		window = 200 * time.Millisecond
	}
	callers := []int{1, 2, 4, 8, 16, 32, 64}

	fmt.Fprintln(cfg.Out, "Invoke throughput vs concurrent callers (in-proc Gigabit, echo service)")
	fmt.Fprintf(cfg.Out, "%-8s %14s %14s %14s %10s\n",
		"callers", "sync op/s", "pipelined op/s", "seed op/s", "pipe/sync")

	pooled, err := NewThroughputEnv()
	if err != nil {
		return nil, err
	}
	defer pooled.Close()
	seed, err := NewThroughputEnvConfig(remote.Config{DispatchWorkers: -1})
	if err != nil {
		return nil, err
	}
	defer seed.Close()

	var out []ThroughputPoint
	for _, n := range callers {
		syncOps := measureThroughput(pooled, n, window, false)
		asyncOps := measureThroughput(pooled, n, window, true)
		seedOps := measureThroughput(seed, n, window, false)
		p := ThroughputPoint{
			Callers:   n,
			SyncOps:   syncOps,
			AsyncOps:  asyncOps,
			SeedOps:   seedOps,
			AsyncGain: asyncOps / syncOps,
		}
		out = append(out, p)
		fmt.Fprintf(cfg.Out, "%-8d %14.0f %14.0f %14.0f %9.2fx\n",
			n, syncOps, asyncOps, seedOps, p.AsyncGain)
	}
	fmt.Fprintln(cfg.Out)
	return out, nil
}

// measureThroughput runs n concurrent callers against env's echo
// service for the given window and reports aggregate ops/sec. Pipelined
// callers keep asyncBatch invocations in flight; synchronous callers
// issue one at a time.
func measureThroughput(env *ThroughputEnv, n int, window time.Duration, pipelined bool) float64 {
	var ops atomic.Int64
	var wg sync.WaitGroup
	stop := make(chan struct{})
	start := time.Now()
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			args := []any{int64(1)}
			for {
				select {
				case <-stop:
					return
				default:
				}
				if pipelined {
					calls := make([]*remote.Call, asyncBatch)
					for j := range calls {
						calls[j] = env.Ch.InvokeAsync(env.SvcID, "Work", args)
					}
					if _, err := remote.CollectResults(calls); err != nil {
						return
					}
					ops.Add(int64(asyncBatch))
				} else {
					if _, err := env.Ch.Invoke(env.SvcID, "Work", args); err != nil {
						return
					}
					ops.Add(1)
				}
			}
		}()
	}
	time.Sleep(window)
	close(stop)
	wg.Wait()
	return float64(ops.Load()) / time.Since(start).Seconds()
}

// Close tears the pair down.
func (e *ThroughputEnv) Close() {
	if e.Ch != nil {
		e.Ch.Close()
	}
	if e.l != nil {
		_ = e.l.Close()
	}
	if e.clientPeer != nil {
		e.clientPeer.Close()
	}
	if e.serverPeer != nil {
		e.serverPeer.Close()
	}
	if e.clientFW != nil {
		_ = e.clientFW.Shutdown()
	}
	if e.serverFW != nil {
		_ = e.serverFW.Shutdown()
	}
}
