package bench

import (
	"context"
	"fmt"
	"math/rand"
	"sync/atomic"
	"time"

	"github.com/alfredo-mw/alfredo/internal/event"
	"github.com/alfredo-mw/alfredo/internal/module"
	"github.com/alfredo-mw/alfredo/internal/netsim"
	"github.com/alfredo-mw/alfredo/internal/obs"
	"github.com/alfredo-mw/alfredo/internal/remote"
	"github.com/alfredo-mw/alfredo/internal/service"
	"github.com/alfredo-mw/alfredo/internal/sim/clock"
)

// acquireSeed fixes the virtual clock, the fabric's loss/jitter draws
// and the generated bundle bytes, so every run of the sweep reproduces
// the same table.
const acquireSeed = 0xacc1

// AcquirePoint is one row of the acquisition sweep: one phase of the
// cold/warm/delta cycle at one bundle size and loss rate.
type AcquirePoint struct {
	Bundle int     // descriptor payload bytes
	Loss   float64 // injected symmetric per-chunk loss probability
	Phase  string  // "cold", "warm", "delta"
	// WireBytes is what the fabric actually carried for the phase,
	// summed across every dial attempt (loss can kill a channel
	// mid-fetch; retries resume from the cache).
	WireBytes int64
	// Virtual is the phase's virtual-clock duration, dial to assembled
	// bundle.
	Virtual time.Duration
	// Attempts counts dials (1 = no mid-fetch channel loss).
	Attempts int
	// Stats is the final successful attempt's fetch accounting.
	Stats remote.FetchStats
}

// RunAcquire measures the acquire data plane end to end: a cold fetch
// into an empty cache, a warm re-lease of the unchanged service, and a
// delta re-lease after a tail mutation — per bundle size, per loss
// rate. Everything runs on a seeded virtual clock over netsim, so the
// table is reproducible bit for bit and the lossy cells cost no wall
// time. The warm row is the headline: an unchanged service re-lease
// moves only the manifest exchange (and survives loss by retrying a
// transfer that is already almost entirely local).
func RunAcquire(cfg Config) ([]AcquirePoint, error) {
	cfg = cfg.withDefaults()
	sizes := []int{8 << 10, 64 << 10}
	if cfg.Full {
		sizes = append(sizes, 256<<10)
	}
	losses := []float64{0, 0.01, 0.05}

	fmt.Fprintln(cfg.Out, "Acquire data plane: wire bytes per phase vs bundle size and loss")
	fmt.Fprintf(cfg.Out, "%-8s %6s %-6s %12s %9s %9s %10s %8s\n",
		"bundle", "loss", "phase", "wire-bytes", "of-cold", "attempts", "chunks", "virtual")

	var out []AcquirePoint
	for _, size := range sizes {
		for _, loss := range losses {
			pts, err := measureAcquire(size, loss)
			if err != nil {
				return nil, fmt.Errorf("bench: acquire %dKB loss %.0f%%: %w", size>>10, loss*100, err)
			}
			cold := pts[0].WireBytes
			for _, p := range pts {
				ofCold := "-"
				if cold > 0 {
					ofCold = fmt.Sprintf("%.1f%%", 100*float64(p.WireBytes)/float64(cold))
				}
				fmt.Fprintf(cfg.Out, "%-8s %5.0f%% %-6s %12d %9s %9d %6d/%-3d %8s\n",
					fmt.Sprintf("%dKB", p.Bundle>>10), p.Loss*100, p.Phase,
					p.WireBytes, ofCold, p.Attempts,
					p.Stats.ChunksFetched, p.Stats.ChunksTotal, fmtDur(p.Virtual))
			}
			out = append(out, pts...)
		}
	}
	fmt.Fprintln(cfg.Out)
	return out, nil
}

// measureAcquire runs one cold/warm/delta cycle at the given bundle
// size and loss rate on a fresh virtual-clock fabric.
func measureAcquire(size int, loss float64) ([]AcquirePoint, error) {
	clk := clock.NewVirtual(acquireSeed)
	fabric := netsim.NewFabric().WithClock(clk).WithSeed(acquireSeed)
	retry := remote.RetryPolicy{MaxAttempts: 4, BaseDelay: 20 * time.Millisecond}

	hostFW := module.NewFramework(module.Config{Name: "acq-host"})
	hostEv := event.NewAdmin(0)
	host, err := remote.NewPeer(remote.Config{
		Framework: hostFW,
		Events:    hostEv,
		ProxyCode: remote.NewProxyCodeRegistry(),
		Timeout:   2 * time.Second,
		Retry:     retry,
		Obs:       obs.NewHub(),
		Clock:     clk,
		Seed:      acquireSeed + 1,
	})
	if err != nil {
		return nil, err
	}
	defer func() {
		host.Close()
		hostEv.Close()
		_ = hostFW.Shutdown()
	}()

	rng := rand.New(rand.NewSource(acquireSeed))
	desc := acquirePayload(rng, size)
	svc := remote.NewService("bench.Acquire").
		Method("Noop", nil, "int", func([]any) (any, error) { return int64(1), nil }).
		WithDescriptor(desc)
	if _, err := hostFW.Registry().Register([]string{"bench.Acquire"}, svc,
		service.Properties{remote.PropExported: true}, "acq-host"); err != nil {
		return nil, err
	}

	cache, err := module.NewChunkCache(8<<20, "")
	if err != nil {
		return nil, err
	}
	phoneFW := module.NewFramework(module.Config{Name: "acq-phone"})
	phoneEv := event.NewAdmin(0)
	phone, err := remote.NewPeer(remote.Config{
		Framework:  phoneFW,
		Events:     phoneEv,
		ProxyCode:  remote.NewProxyCodeRegistry(),
		Timeout:    2 * time.Second,
		Retry:      retry,
		Obs:        obs.NewHub(),
		Clock:      clk,
		Seed:       acquireSeed + 2,
		ChunkCache: cache,
	})
	if err != nil {
		return nil, err
	}
	defer func() {
		phone.Close()
		phoneEv.Close()
		_ = phoneFW.Shutdown()
	}()

	l, err := fabric.Listen("acq-host")
	if err != nil {
		return nil, err
	}
	defer l.Close()
	go func() { _ = host.Serve(l) }()

	// Everything below blocks on virtual timers (handshakes, transfer
	// pacing, retransmit timeouts), so it runs off the driver goroutine
	// while WaitCond steps the clock.
	do := func(fn func() error) error {
		var err error
		var done atomic.Bool
		go func() { err = fn(); done.Store(true) }()
		if !clk.WaitCond(10*time.Minute, done.Load) {
			return fmt.Errorf("operation stalled past virtual budget")
		}
		return err
	}

	// phase dials until one acquisition completes. A lost frame desyncs
	// the stream and kills the channel, so under loss an attempt can die
	// mid-transfer — but verified chunks are already cached, and the
	// next attempt fetches only what is still missing.
	phase := func(name string) (AcquirePoint, error) {
		p := AcquirePoint{Bundle: size, Loss: loss, Phase: name}
		before := fabric.Stats().Bytes.Load()
		start := clk.Elapsed()
		err := do(func() error {
			const maxDials = 40
			var lastErr error
			for p.Attempts = 1; p.Attempts <= maxDials; p.Attempts++ {
				conn, err := fabric.Dial("acq-host", netsim.WLAN11b)
				if err != nil {
					return err
				}
				if loss > 0 {
					conn.(*netsim.Conn).SetLoss(loss, loss)
				}
				ch, err := phone.Connect(conn)
				if err != nil {
					lastErr = err
					continue
				}
				info, ok := ch.FindRemoteService("bench.Acquire")
				if !ok {
					ch.Close()
					lastErr = fmt.Errorf("bench.Acquire not offered")
					continue
				}
				_, st, err := ch.AcquireFetch(context.Background(), info.ID)
				ch.Close()
				if err == nil {
					p.Stats = st
					return nil
				}
				lastErr = err
			}
			return fmt.Errorf("no successful acquisition in %d dials: %w", maxDials, lastErr)
		})
		p.WireBytes = fabric.Stats().Bytes.Load() - before
		p.Virtual = clk.Elapsed() - start
		return p, err
	}

	cold, err := phase("cold")
	if err != nil {
		return nil, err
	}
	warm, err := phase("warm")
	if err != nil {
		return nil, err
	}
	// Mutate the tail quarter of the bundle: the re-lease must move
	// only the chunks the mutation touched.
	delta := desc
	if len(desc) >= 8 {
		delta = append([]byte(nil), desc...)
		tail := acquirePayload(rng, len(desc)/4)
		copy(delta[len(delta)-len(tail):], tail)
	}
	svc.WithDescriptor(delta)
	dp, err := phase("delta")
	if err != nil {
		return nil, err
	}
	return []AcquirePoint{cold, warm, dp}, nil
}

// acquirePayload generates deterministic base64-alphabet bytes — text-
// like enough to be a plausible descriptor, random enough that the
// table measures chunking rather than compression.
func acquirePayload(rng *rand.Rand, n int) []byte {
	const alphabet = "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789+/"
	b := make([]byte, n)
	for i := range b {
		b[i] = alphabet[rng.Intn(len(alphabet))]
	}
	return b
}
