package bench

import (
	"fmt"
	"time"

	"github.com/alfredo-mw/alfredo/internal/apps/mousecontroller"
	"github.com/alfredo-mw/alfredo/internal/apps/shop"
	"github.com/alfredo-mw/alfredo/internal/core"
	"github.com/alfredo-mw/alfredo/internal/device"
	"github.com/alfredo-mw/alfredo/internal/devsim"
	"github.com/alfredo-mw/alfredo/internal/netsim"
)

// Paper values for Tables 1 and 2, in milliseconds.
var (
	paperTable1 = map[string]map[string]time.Duration{
		"MouseController": {
			"Acquire service interface": 94 * time.Millisecond,
			"Build proxy bundle":        3125 * time.Millisecond,
			"Install proxy bundle":      703 * time.Millisecond,
			"Start proxy bundle":        1000 * time.Millisecond,
			"Total start time":          4922 * time.Millisecond,
		},
		"AlfredOShop": {
			"Acquire service interface": 110 * time.Millisecond,
			"Build proxy bundle":        3110 * time.Millisecond,
			"Install proxy bundle":      703 * time.Millisecond,
			"Start proxy bundle":        359 * time.Millisecond,
			"Total start time":          4282 * time.Millisecond,
		},
	}
	paperTable2 = map[string]map[string]time.Duration{
		"MouseController": {
			"Acquire service interface": 263 * time.Millisecond,
			"Build proxy bundle":        1882 * time.Millisecond,
			"Install proxy bundle":      259 * time.Millisecond,
			"Start proxy bundle":        892 * time.Millisecond,
			"Total start time":          3296 * time.Millisecond,
		},
		"AlfredOShop": {
			"Acquire service interface": 312 * time.Millisecond,
			"Build proxy bundle":        1881 * time.Millisecond,
			"Install proxy bundle":      260 * time.Millisecond,
			"Start proxy bundle":        246 * time.Millisecond,
			"Total start time":          2699 * time.Millisecond,
		},
	}
)

// StartupOnce runs a single acquisition of the named app ("mouse" or
// "shop") with the given phone simulation and link, returning the
// phase timings. It is the primitive under Tables 1 and 2 and the
// corresponding testing.B benchmarks.
func StartupOnce(app string, phoneSim *devsim.Device, phoneProfile device.Profile, link netsim.LinkProfile) (core.Timing, error) {
	provider, err := core.NewNode(core.NodeConfig{Name: "target", Profile: device.Notebook()})
	if err != nil {
		return core.Timing{}, err
	}
	defer provider.Close()

	var iface string
	switch app {
	case "mouse":
		iface = mousecontroller.InterfaceName
		if err := provider.RegisterApp(mousecontroller.New(1280, 800).App()); err != nil {
			return core.Timing{}, err
		}
	case "shop":
		iface = shop.InterfaceName
		if err := provider.RegisterApp(shop.New().App()); err != nil {
			return core.Timing{}, err
		}
	default:
		return core.Timing{}, fmt.Errorf("bench: unknown app %q", app)
	}

	phone, err := core.NewNode(core.NodeConfig{
		Name:    "phone",
		Profile: phoneProfile,
		Sim:     phoneSim,
	})
	if err != nil {
		return core.Timing{}, err
	}
	defer phone.Close()

	fabric := netsim.NewFabric()
	l, err := fabric.Listen("target")
	if err != nil {
		return core.Timing{}, err
	}
	defer l.Close()
	provider.Serve(l)

	conn, err := fabric.Dial("target", link)
	if err != nil {
		return core.Timing{}, err
	}
	session, err := phone.Connect(conn)
	if err != nil {
		return core.Timing{}, err
	}
	defer session.Close()

	acquired, err := session.Acquire(iface, core.AcquireOptions{SkipUI: true})
	if err != nil {
		return core.Timing{}, err
	}
	t := acquired.Timing
	acquired.Release()
	return t, nil
}

// runStartupTable measures both apps on one phone/link pair, averaging
// Repeats runs.
func runStartupTable(cfg Config, title string, mkSim func() *devsim.Device,
	profile device.Profile, link netsim.LinkProfile,
	paper map[string]map[string]time.Duration) (*StartupTable, error) {
	cfg = cfg.withDefaults()
	table := &StartupTable{Title: title, Phases: startupPhases}
	for _, app := range []struct{ key, label string }{
		{"mouse", "MouseController"},
		{"shop", "AlfredOShop"},
	} {
		sum := make(map[string]time.Duration, len(startupPhases))
		for i := 0; i < cfg.Repeats; i++ {
			t, err := StartupOnce(app.key, mkSim(), profile, link)
			if err != nil {
				return nil, fmt.Errorf("bench: %s %s run %d: %w", title, app.label, i, err)
			}
			sum["Acquire service interface"] += t.AcquireInterface
			sum["Build proxy bundle"] += t.BuildProxy
			sum["Install proxy bundle"] += t.InstallProxy
			sum["Start proxy bundle"] += t.StartProxy
			sum["Total start time"] += t.TotalStart()
		}
		measured := make(map[string]time.Duration, len(sum))
		for k, v := range sum {
			measured[k] = v / time.Duration(cfg.Repeats)
		}
		table.Rows = append(table.Rows, StartupRow{
			App:      app.label,
			Measured: measured,
			Paper:    paper[app.label],
		})
	}
	return table, nil
}

// RunTable1 regenerates Table 1: initial delay for service interaction
// on a Nokia 9300i over 802.11b WLAN.
func RunTable1(cfg Config) (*StartupTable, error) {
	cfg = cfg.withDefaults()
	table, err := runStartupTable(cfg, "Table 1: initial delay, Nokia 9300i over WLAN",
		devsim.Nokia9300i, device.Nokia9300i(), netsim.WLAN11b, paperTable1)
	if err != nil {
		return nil, err
	}
	table.Print(cfg.Out)
	return table, nil
}

// RunTable2 regenerates Table 2: initial delay on a Sony Ericsson M600i
// over Bluetooth 2.0.
func RunTable2(cfg Config) (*StartupTable, error) {
	cfg = cfg.withDefaults()
	table, err := runStartupTable(cfg, "Table 2: initial delay, Sony Ericsson M600i over Bluetooth",
		devsim.SonyEricssonM600i, device.SonyEricssonM600i(), netsim.BT20, paperTable2)
	if err != nil {
		return nil, err
	}
	table.Print(cfg.Out)
	return table, nil
}
