// Package bench is the experiment harness that regenerates every table
// and figure of the paper's evaluation (§4) on the simulated substrate:
//
//	§4.1  resource consumption (footprint report)
//	Table 1  startup phases, Nokia 9300i over 802.11b WLAN
//	Table 2  startup phases, Sony Ericsson M600i over Bluetooth 2.0
//	Fig. 3   invocation time vs concurrent clients, P4 server, 100 Mb/s
//	Fig. 4   invocation time vs concurrent clients, Opteron cluster, 1 Gb/s
//	Fig. 5   invocation time vs acquired services, Nokia 9300i, WLAN
//	Fig. 6   invocation time vs acquired services, M600i, Bluetooth
//
// plus three ablations the paper motivates but does not measure:
// tier placement vs link latency, renderer cost, and smart-proxy
// local/remote method mixes.
//
// Absolute numbers come from the netsim/devsim calibration (see
// DESIGN.md §2); the harness prints paper-reported values next to the
// measured ones so the shape comparison is one glance. Measurement
// windows are shorter than the paper's 90 s by default; raise
// Config.Window to tighten confidence.
package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"time"
)

// Config tunes the harness.
type Config struct {
	// Out receives the reports (defaults to io.Discard when nil).
	Out io.Writer
	// Window is the per-point measurement window (default 3s).
	Window time.Duration
	// Warmup precedes each measurement window (default 1s).
	Warmup time.Duration
	// Repeats averages the startup tables over this many runs
	// (default 3).
	Repeats int
	// Full includes the slow saturation points of Figure 4 and the
	// full-length phone sweeps.
	Full bool
	// JSONDir, when non-empty, is a directory where experiments also
	// drop machine-readable BENCH_<name>.json result files next to
	// their printed tables (for CI gates and trend tracking). Empty
	// disables emission.
	JSONDir string
}

func (c Config) withDefaults() Config {
	if c.Out == nil {
		c.Out = io.Discard
	}
	if c.Window <= 0 {
		c.Window = 3 * time.Second
	}
	if c.Warmup <= 0 {
		c.Warmup = time.Second
	}
	if c.Repeats <= 0 {
		c.Repeats = 3
	}
	return c
}

// Point is one x/y sample of a figure series.
type Point struct {
	X     int
	Avg   time.Duration
	P50   time.Duration
	P95   time.Duration
	Count int
	// Util is the server CPU utilization during the window (0 when not
	// measured). It makes the queueing knees of Figures 3/4 legible:
	// latency explodes as Util approaches 1.
	Util float64
}

// summarize computes a Point from raw samples.
func summarize(x int, samples []time.Duration) Point {
	if len(samples) == 0 {
		return Point{X: x}
	}
	sorted := make([]time.Duration, len(samples))
	copy(sorted, samples)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	var sum time.Duration
	for _, s := range sorted {
		sum += s
	}
	pick := func(q float64) time.Duration {
		idx := int(q * float64(len(sorted)-1))
		return sorted[idx]
	}
	return Point{
		X:     x,
		Avg:   sum / time.Duration(len(sorted)),
		P50:   pick(0.50),
		P95:   pick(0.95),
		Count: len(sorted),
	}
}

// Series is a measured figure.
type Series struct {
	Title  string
	XLabel string
	Points []Point
	// Baseline is the ping round-trip (dotted line of Figs. 5 and 6).
	Baseline time.Duration
	// PaperNote summarizes what the paper's curve shows.
	PaperNote string
}

// Print renders the series as the paper's figures-as-tables, with
// median and tail columns the paper's plots do not show.
func (s *Series) Print(w io.Writer) {
	fmt.Fprintf(w, "%s\n", s.Title)
	fmt.Fprintf(w, "%-12s %14s %10s %10s %9s %8s\n", s.XLabel, "avg invocation", "p50", "p95", "samples", "srv-util")
	sort.Slice(s.Points, func(i, j int) bool { return s.Points[i].X < s.Points[j].X })
	for _, p := range s.Points {
		util := "-"
		if p.Util > 0 {
			util = fmt.Sprintf("%.0f%%", p.Util*100)
		}
		fmt.Fprintf(w, "%-12d %14s %10s %10s %9d %8s\n", p.X, fmtDur(p.Avg), fmtDur(p.P50), fmtDur(p.P95), p.Count, util)
	}
	if s.Baseline > 0 {
		fmt.Fprintf(w, "%-12s %14s\n", "ping", fmtDur(s.Baseline))
	}
	if s.PaperNote != "" {
		fmt.Fprintf(w, "paper: %s\n", s.PaperNote)
	}
	fmt.Fprintln(w)
}

// StartupRow is one application column of Tables 1 and 2.
type StartupRow struct {
	App      string
	Measured map[string]time.Duration
	Paper    map[string]time.Duration
}

// StartupTable is a full Table 1 / Table 2.
type StartupTable struct {
	Title  string
	Phases []string
	Rows   []StartupRow
}

// Phase names, in table order.
var startupPhases = []string{
	"Acquire service interface",
	"Build proxy bundle",
	"Install proxy bundle",
	"Start proxy bundle",
	"Total start time",
}

// Print renders the table with measured-vs-paper columns per app.
func (t *StartupTable) Print(w io.Writer) {
	fmt.Fprintf(w, "%s\n", t.Title)
	fmt.Fprintf(w, "%-28s", "Operation")
	for _, row := range t.Rows {
		fmt.Fprintf(w, " %18s %12s", row.App, "(paper)")
	}
	fmt.Fprintln(w)
	for _, phase := range t.Phases {
		fmt.Fprintf(w, "%-28s", phase)
		for _, row := range t.Rows {
			fmt.Fprintf(w, " %18s %12s", fmtDur(row.Measured[phase]), fmtDur(row.Paper[phase]))
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintln(w)
}

// WriteBenchJSON writes v as indented JSON to BENCH_<name>.json under
// cfg.JSONDir. With no JSONDir configured it is a no-op, so tests and
// ad-hoc runs never litter the tree.
func WriteBenchJSON(cfg Config, name string, v any) error {
	if cfg.JSONDir == "" {
		return nil
	}
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return fmt.Errorf("bench: marshal %s report: %w", name, err)
	}
	path := filepath.Join(cfg.JSONDir, "BENCH_"+name+".json")
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return fmt.Errorf("bench: write %s report: %w", name, err)
	}
	fmt.Fprintf(cfg.Out, "wrote %s\n", path)
	return nil
}

func fmtDur(d time.Duration) string {
	switch {
	case d <= 0:
		return "-"
	case d < time.Millisecond:
		return fmt.Sprintf("%.2fms", float64(d)/float64(time.Millisecond))
	case d < time.Second:
		return fmt.Sprintf("%dms", d.Milliseconds())
	default:
		return fmt.Sprintf("%.2fs", d.Seconds())
	}
}
