package bench

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"github.com/alfredo-mw/alfredo/internal/module"
	"github.com/alfredo-mw/alfredo/internal/netsim"
	"github.com/alfredo-mw/alfredo/internal/obs"
	"github.com/alfredo-mw/alfredo/internal/remote"
	"github.com/alfredo-mw/alfredo/internal/service"
)

// scaleTenants is the number of tenant identities (and client peers)
// the scale sweep spreads its sessions across.
const scaleTenants = 16

// ScalePoint is one row of the massive-multitenancy sweep: Clients
// concurrent sessions held open against one serve-side peer, with
// invoke latency quantiles read from the run's own telemetry hub and
// the marginal heap cost per session.
type ScalePoint struct {
	Clients         int
	P50, P99        time.Duration
	BytesPerSession int64
	Invokes         int64
	Rejected        int64
}

// scaleHost is the serve side of the sweep: one peer with the striped
// tables, the reactor pool, admission control and the fleet aggregator
// all engaged, sized for tens of thousands of sessions (small write
// buffers).
type scaleHost struct {
	fw   *module.Framework
	peer *remote.Peer
	l    *netsim.Listener
	hub  *obs.Hub
	agg  *obs.Aggregator
}

func newScaleHost(fabric *netsim.Fabric) (*scaleHost, error) {
	h := &scaleHost{hub: obs.NewHub(), agg: obs.NewAggregator()}
	h.fw = module.NewFramework(module.Config{Name: "scale-host"})
	peer, err := remote.NewPeer(remote.Config{
		Framework: h.fw,
		Admission: &remote.AdmissionPolicy{
			MaxInFlight: 4096,
			RatePerSec:  1 << 20,
			Burst:       1 << 21,
		},
		WriteBufferBytes: 4 << 10,
		Obs:              h.hub,
		Aggregator:       h.agg,
	})
	if err != nil {
		_ = h.fw.Shutdown()
		return nil, err
	}
	h.peer = peer
	if _, err := h.fw.Registry().Register([]string{echoInterface}, newEchoService(),
		service.Properties{remote.PropExported: true}, "bench"); err != nil {
		h.close()
		return nil, err
	}
	if h.l, err = fabric.Listen("scale-host"); err != nil {
		h.close()
		return nil, err
	}
	go func() { _ = peer.Serve(h.l) }()
	return h, nil
}

func (h *scaleHost) close() {
	if h.l != nil {
		_ = h.l.Close()
	}
	if h.peer != nil {
		h.peer.Close()
	}
	_ = h.fw.Shutdown()
}

// measureScalePoint opens `clients` sessions from scaleTenants client
// peers, measures the marginal heap per session, then drives a bounded
// wave of invocations across a sample of the sessions and reads
// p50/p99 off the hub's invoke histogram.
func measureScalePoint(clients int) (ScalePoint, error) {
	runtime.GC()
	var before runtime.MemStats
	runtime.ReadMemStats(&before)

	fabric := netsim.NewFabric().WithPipeDepth(8)
	host, err := newScaleHost(fabric)
	if err != nil {
		return ScalePoint{}, err
	}
	defer host.close()

	var clientPeers []*remote.Peer
	var clientFWs []*module.Framework
	defer func() {
		for _, p := range clientPeers {
			p.Close()
		}
		for _, fw := range clientFWs {
			_ = fw.Shutdown()
		}
	}()
	clientHubs := make([]*obs.Hub, scaleTenants)
	for i := 0; i < scaleTenants; i++ {
		fw := module.NewFramework(module.Config{Name: fmt.Sprintf("scale-tenant-%d", i)})
		clientHubs[i] = obs.NewHub()
		peer, err := remote.NewPeer(remote.Config{
			Framework:        fw,
			Timeout:          30 * time.Second,
			WriteBufferBytes: 4 << 10,
			HelloProps:       map[string]any{remote.HelloTenantProp: fmt.Sprintf("tenant-%03d", i)},
			// Each tenant records invoke latency on its own hub and
			// ships it to the host's aggregator only on the explicit
			// post-wave flush: interval < 0 keeps the tens of thousands
			// of open channels from each running a shipping ticker.
			Obs:             clientHubs[i],
			MetricsInterval: -1,
		})
		if err != nil {
			_ = fw.Shutdown()
			return ScalePoint{}, err
		}
		clientFWs = append(clientFWs, fw)
		clientPeers = append(clientPeers, peer)
	}

	// Connect in bounded batches so a 100k point does not hold 100k
	// half-done handshakes at once.
	channels := make([]*remote.Channel, clients)
	const batch = 512
	for start := 0; start < clients; start += batch {
		end := start + batch
		if end > clients {
			end = clients
		}
		var wg sync.WaitGroup
		errs := make(chan error, end-start)
		for i := start; i < end; i++ {
			i := i
			wg.Add(1)
			go func() {
				defer wg.Done()
				conn, err := fabric.Dial("scale-host", netsim.Loopback)
				if err != nil {
					errs <- err
					return
				}
				ch, err := clientPeers[i%scaleTenants].Connect(conn)
				if err != nil {
					errs <- fmt.Errorf("bench: connecting session %d: %w", i, err)
					return
				}
				channels[i] = ch
			}()
		}
		wg.Wait()
		select {
		case err := <-errs:
			return ScalePoint{}, err
		default:
		}
	}
	defer func() {
		for _, ch := range channels {
			if ch != nil {
				ch.Close()
			}
		}
	}()

	runtime.GC()
	var after runtime.MemStats
	runtime.ReadMemStats(&after)
	perSession := (int64(after.HeapAlloc) - int64(before.HeapAlloc)) / int64(clients)

	info, ok := channels[0].FindRemoteService(echoInterface)
	if !ok {
		return ScalePoint{}, fmt.Errorf("bench: echo service not leased")
	}

	// The invoke wave: enough calls for stable tails, bounded so the
	// 100k point costs invocations proportional to its sample, not its
	// population. Concurrency is capped well above the admission
	// window so the serve-side path, not the generator, is measured.
	invokes := 4 * clients
	if invokes > 40000 {
		invokes = 40000
	}
	sem := make(chan struct{}, 1024)
	var wg sync.WaitGroup
	var rejected int64
	var rejMu sync.Mutex
	for i := 0; i < invokes; i++ {
		ch := channels[i%clients]
		sem <- struct{}{}
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() { <-sem }()
			if _, err := ch.Invoke(info.ID, "Work", []any{int64(1)}); err != nil {
				rejMu.Lock()
				rejected++
				rejMu.Unlock()
			}
		}()
	}
	wg.Wait()

	// Cross-node shipping closes the loop: each tenant flushes one full
	// report over one of its channels (a report carries the whole
	// per-tenant registry), and the point's quantiles are read back from
	// the host's fleet aggregator — live windowed p50/p99, the same view
	// `/obs/fleet` serves in production.
	const invokeFam = "alfredo_remote_invoke_seconds"
	var expected int64
	for i := 0; i < scaleTenants && i < clients; i++ {
		if err := channels[i].ShipMetricsNow(); err != nil {
			return ScalePoint{}, fmt.Errorf("bench: tenant %d metrics flush: %w", i, err)
		}
		expected += clientHubs[i].Metrics.Histogram(invokeFam, "service", echoInterface).Count()
	}
	// Ingestion is asynchronous on the host's read loops; wait briefly
	// for every flushed report to land.
	for deadline := time.Now().Add(10 * time.Second); host.agg.Count(invokeFam) < expected; {
		if time.Now().After(deadline) {
			return ScalePoint{}, fmt.Errorf("bench: aggregator ingested %d/%d invokes",
				host.agg.Count(invokeFam), expected)
		}
		time.Sleep(5 * time.Millisecond)
	}

	return ScalePoint{
		Clients:         clients,
		P50:             host.agg.WindowQuantile(invokeFam, 0.50),
		P99:             host.agg.WindowQuantile(invokeFam, 0.99),
		BytesPerSession: perSession,
		Invokes:         host.agg.Count(invokeFam),
		Rejected:        rejected,
	}, nil
}

// RunScale sweeps concurrent session counts against one serve-side
// peer — the massive-multitenancy experiment behind `-exp scale` and
// `make scale-bench`. The default sweep stops at 10k sessions;
// Config.Full extends it to 100k (plan ~4 GB of RAM for the last
// point: two endpoints and two transport directions per session).
func RunScale(cfg Config) ([]ScalePoint, error) {
	cfg = cfg.withDefaults()
	counts := []int{1000, 10000}
	if cfg.Full {
		counts = append(counts, 50000, 100000)
	}

	fmt.Fprintln(cfg.Out, "Serve-side scale sweep (striped tables + reactor pool + admission, loopback)")
	fmt.Fprintln(cfg.Out, "p50/p99 are live windowed quantiles from the host's fleet aggregator")
	fmt.Fprintf(cfg.Out, "%-10s %12s %12s %14s %10s %10s\n",
		"clients", "p50", "p99", "bytes/session", "invokes", "rejected")

	var out []ScalePoint
	for _, n := range counts {
		p, err := measureScalePoint(n)
		if err != nil {
			return nil, fmt.Errorf("bench: scale point %d: %w", n, err)
		}
		out = append(out, p)
		fmt.Fprintf(cfg.Out, "%-10d %12v %12v %14d %10d %10d\n",
			p.Clients, p.P50.Round(time.Microsecond), p.P99.Round(time.Microsecond),
			p.BytesPerSession, p.Invokes, p.Rejected)
	}
	fmt.Fprintln(cfg.Out)
	return out, nil
}
