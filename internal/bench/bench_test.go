package bench

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"github.com/alfredo-mw/alfredo/internal/device"
	"github.com/alfredo-mw/alfredo/internal/devsim"
	"github.com/alfredo-mw/alfredo/internal/netsim"
)

// The harness tests use tiny windows: they verify mechanics and rough
// shape, not tight confidence intervals (that is alfredo-bench's job).

func shortCfg(buf *bytes.Buffer) Config {
	return Config{
		Out:     buf,
		Window:  400 * time.Millisecond,
		Warmup:  200 * time.Millisecond,
		Repeats: 1,
	}
}

func TestStartupOnceWithoutSimulation(t *testing.T) {
	// nil device: only real work is measured, still all phases > 0
	// except the simulated ones.
	timing, err := StartupOnce("shop", nil, device.Nokia9300i(), netsim.Loopback)
	if err != nil {
		t.Fatal(err)
	}
	if timing.AcquireInterface <= 0 {
		t.Errorf("timing = %+v", timing)
	}
	if _, err := StartupOnce("bogus", nil, device.Nokia9300i(), netsim.Loopback); err == nil {
		t.Error("unknown app accepted")
	}
}

func TestStartupTablesShape(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second simulated phases")
	}
	var buf bytes.Buffer
	cfg := shortCfg(&buf)
	t1, err := RunTable1(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t2, err := RunTable2(cfg)
	if err != nil {
		t.Fatal(err)
	}

	get := func(tab *StartupTable, app, phase string) time.Duration {
		for _, row := range tab.Rows {
			if row.App == app {
				return row.Measured[phase]
			}
		}
		t.Fatalf("row %s missing", app)
		return 0
	}

	// Shape assertions from the paper:
	// 1. Build dominates the total on both phones (§4.2: "Building,
	//    installing, and starting the proxy ... takes much longer" than
	//    the network fetch).
	for _, tab := range []*StartupTable{t1, t2} {
		for _, app := range []string{"MouseController", "AlfredOShop"} {
			build := get(tab, app, "Build proxy bundle")
			acq := get(tab, app, "Acquire service interface")
			if build < 3*acq {
				t.Errorf("%s/%s: build %v not >> acquire %v", tab.Title, app, build, acq)
			}
		}
	}
	// 2. The M600i builds ~40% faster than the Nokia.
	nokiaBuild := get(t1, "MouseController", "Build proxy bundle")
	m600iBuild := get(t2, "MouseController", "Build proxy bundle")
	ratio := float64(m600iBuild) / float64(nokiaBuild)
	if ratio < 0.4 || ratio > 0.85 {
		t.Errorf("M600i/Nokia build ratio = %.2f, want ~0.6", ratio)
	}
	// 3. BT makes the interface acquisition slower despite the faster
	//    phone (Table 2 vs Table 1).
	nokiaAcq := get(t1, "AlfredOShop", "Acquire service interface")
	m600iAcq := get(t2, "AlfredOShop", "Acquire service interface")
	if m600iAcq < nokiaAcq {
		t.Errorf("BT acquire %v should exceed WLAN acquire %v", m600iAcq, nokiaAcq)
	}
	// 4. Totals land in the paper's ballpark (seconds, not tens).
	total := get(t1, "MouseController", "Total start time")
	if total < 3*time.Second || total > 8*time.Second {
		t.Errorf("Nokia mouse total = %v, want ~5s", total)
	}
	if !strings.Contains(buf.String(), "Table 1") {
		t.Error("report not printed")
	}
}

func TestServerLoadLowVsHigh(t *testing.T) {
	if testing.Short() {
		t.Skip("second-scale measurement windows")
	}
	low, err := MeasureServerLoad(devsim.DesktopP4(), netsim.Ethernet100,
		1, 100*time.Millisecond, 300*time.Millisecond, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	// Single client: ~1 ms (paper Figure 3).
	if low.Avg > 5*time.Millisecond {
		t.Errorf("1-client latency = %v, want ~1ms", low.Avg)
	}
	// Far beyond capacity (~1500/s for the P4): clear queueing blow-up.
	over, err := MeasureServerLoad(devsim.DesktopP4(), netsim.Ethernet100,
		256, 100*time.Millisecond, time.Second, 1500*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if over.Avg < 3*low.Avg {
		t.Errorf("overload latency %v not clearly above baseline %v", over.Avg, low.Avg)
	}
}

func TestPhoneLoadMatchesPaperBand(t *testing.T) {
	if testing.Short() {
		t.Skip("second-scale measurement windows")
	}
	p, baseline, err := MeasurePhoneLoad(devsim.Nokia9300i(), netsim.WLAN11b,
		10, time.Second, 300*time.Millisecond, 1500*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	// Paper Figure 5: ~100 ms, ping baseline below the curve.
	if p.Avg < 60*time.Millisecond || p.Avg > 200*time.Millisecond {
		t.Errorf("phone invocation = %v, want ~100ms", p.Avg)
	}
	if baseline <= 0 || baseline > p.Avg {
		t.Errorf("ping baseline %v should sit below the invocation time %v", baseline, p.Avg)
	}
}

func TestFootprintReport(t *testing.T) {
	var buf bytes.Buffer
	res, err := RunFootprint(shortCfg(&buf))
	if err != nil {
		t.Fatal(err)
	}
	// Paper: "about 2 kBytes for each application" shipped.
	for app, n := range res.TransferBytes {
		if n < 500 || n > 8192 {
			t.Errorf("%s transfer = %d bytes, want ~2kB", app, n)
		}
	}
	// Proxy archives exist and shop's is the larger one (paper: 6 vs 7 kB).
	if res.ProxyArchiveBytes["AlfredOShop"] <= res.ProxyArchiveBytes["MouseController"] {
		t.Errorf("proxy sizes = %v, shop should exceed mouse", res.ProxyArchiveBytes)
	}
	// Client memory: mouse (bitmap) >> shop (paper: 200 kB vs 30 kB).
	if res.ClientMemoryBytes["MouseController"] < 150_000 {
		t.Errorf("mouse client memory = %d, want ~200kB", res.ClientMemoryBytes["MouseController"])
	}
	if res.ClientMemoryBytes["AlfredOShop"] > res.ClientMemoryBytes["MouseController"]/2 {
		t.Errorf("shop memory %d not well below mouse %d",
			res.ClientMemoryBytes["AlfredOShop"], res.ClientMemoryBytes["MouseController"])
	}
	if !strings.Contains(buf.String(), "Resource consumption") {
		t.Error("report not printed")
	}
}

func TestTierAblationCrossover(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-point network sweeps")
	}
	var buf bytes.Buffer
	points, err := RunTierAblation(shortCfg(&buf))
	if err != nil {
		t.Fatal(err)
	}
	if len(points) < 3 {
		t.Fatalf("points = %d", len(points))
	}
	// On the slowest link, offloading must win decisively.
	last := points[len(points)-1]
	if last.Offloaded*4 > last.Thin {
		t.Errorf("at RTT %v offloaded %v not clearly below thin %v",
			last.RTT, last.Offloaded, last.Thin)
	}
}

func TestRendererAblation(t *testing.T) {
	var buf bytes.Buffer
	points, err := RunRendererAblation(shortCfg(&buf))
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 3 {
		t.Fatalf("points = %v", points)
	}
	for _, p := range points {
		if p.Bytes == 0 || p.PerView <= 0 {
			t.Errorf("engine %s: %+v", p.Renderer, p)
		}
	}
}

func TestSmartProxyAblation(t *testing.T) {
	if testing.Short() {
		t.Skip("radio-link round trips")
	}
	var buf bytes.Buffer
	points, err := RunSmartProxyAblation(shortCfg(&buf))
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 2 {
		t.Fatalf("points = %v", points)
	}
	if points[0].Per*10 > points[1].Per {
		t.Errorf("local %v not an order of magnitude below remote %v",
			points[0].Per, points[1].Per)
	}
}

func TestFaultAblationShape(t *testing.T) {
	if testing.Short() {
		t.Skip("full disconnect/recover cycles")
	}
	rec, err := measureRecovery(netsim.WLAN11b, 200*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	// Recovery includes the outage itself plus redial + handshake +
	// re-lease overhead; it cannot undercut the blackout, and on a WLAN
	// link the overhead should stay well under a second.
	if rec < 200*time.Millisecond {
		t.Errorf("recovery %v shorter than the 200ms outage", rec)
	}
	if rec > 5*time.Second {
		t.Errorf("recovery %v implausibly slow for a 200ms outage", rec)
	}
}

func TestExperimentRegistry(t *testing.T) {
	if len(Order) != len(Experiments) {
		t.Errorf("Order (%d) and Experiments (%d) out of sync", len(Order), len(Experiments))
	}
	for _, id := range Order {
		if Experiments[id] == nil {
			t.Errorf("experiment %s missing", id)
		}
	}
}
