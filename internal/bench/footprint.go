package bench

import (
	"fmt"
	"runtime"
	"time"

	"github.com/alfredo-mw/alfredo/internal/apps/mousecontroller"
	"github.com/alfredo-mw/alfredo/internal/apps/shop"
	"github.com/alfredo-mw/alfredo/internal/core"
	"github.com/alfredo-mw/alfredo/internal/device"
	"github.com/alfredo-mw/alfredo/internal/netsim"
	"github.com/alfredo-mw/alfredo/internal/ui"
	"github.com/alfredo-mw/alfredo/internal/wire"
)

// FootprintResult is the §4.1 resource-consumption report.
type FootprintResult struct {
	// TransferBytes is the data shipped to acquire each app (interface
	// + descriptor; the paper reports "about 2 kBytes for each
	// application").
	TransferBytes map[string]int
	// ProxyArchiveBytes is the installed proxy bundle size (paper: 6 kB
	// MouseController, 7 kB AlfredOShop on the file system).
	ProxyArchiveBytes map[string]int
	// DescriptorBytes is the size of the shipped AlfredO descriptor.
	DescriptorBytes map[string]int
	// ClientMemoryBytes is the measured runtime memory of the client
	// application state (paper: ~200 kB MouseController — dominated by
	// the received RGB bitmap — vs ~30 kB AlfredOShop).
	ClientMemoryBytes map[string]int
}

// RunFootprint measures the §4.1 numbers on the real code path: it
// performs the acquisitions on a loopback link and weighs the shipped
// and retained artifacts.
func RunFootprint(cfg Config) (*FootprintResult, error) {
	cfg = cfg.withDefaults()
	res := &FootprintResult{
		TransferBytes:     make(map[string]int),
		ProxyArchiveBytes: make(map[string]int),
		DescriptorBytes:   make(map[string]int),
		ClientMemoryBytes: make(map[string]int),
	}

	provider, err := core.NewNode(core.NodeConfig{Name: "target", Profile: device.Notebook()})
	if err != nil {
		return nil, err
	}
	defer provider.Close()
	mouseSvc := mousecontroller.New(1280, 800)
	if err := provider.RegisterApp(mouseSvc.App()); err != nil {
		return nil, err
	}
	if err := provider.RegisterApp(shop.New().App()); err != nil {
		return nil, err
	}

	phone, err := core.NewNode(core.NodeConfig{Name: "phone", Profile: device.Nokia9300i()})
	if err != nil {
		return nil, err
	}
	defer phone.Close()

	fabric := netsim.NewFabric()
	l, err := fabric.Listen("target")
	if err != nil {
		return nil, err
	}
	defer l.Close()
	provider.Serve(l)
	conn, err := fabric.Dial("target", netsim.Loopback)
	if err != nil {
		return nil, err
	}
	session, err := phone.Connect(conn)
	if err != nil {
		return nil, err
	}
	defer session.Close()

	for _, app := range []struct{ label, iface string }{
		{"MouseController", mousecontroller.InterfaceName},
		{"AlfredOShop", shop.InterfaceName},
	} {
		info, ok := session.Channel().FindRemoteService(app.iface)
		if !ok {
			return nil, fmt.Errorf("bench: %s not leased", app.iface)
		}
		reply, err := session.Channel().Fetch(info.ID)
		if err != nil {
			return nil, err
		}
		if frame, err := wire.EncodeMessage(reply); err == nil {
			res.TransferBytes[app.label] = len(frame)
		}
		res.DescriptorBytes[app.label] = len(reply.Descriptor)
		pb, err := session.Channel().BuildProxy(reply)
		if err != nil {
			return nil, err
		}
		res.ProxyArchiveBytes[app.label] = pb.Archive.Size()

		// Client runtime memory: acquire the application, feed it its
		// characteristic state (the Mouse view holds the received RGB
		// bitmap), and weigh the heap.
		acquired, err := session.Acquire(app.iface, core.AcquireOptions{})
		if err != nil {
			return nil, err
		}
		// Background goroutines (snapshot streams, netsim deliveries from
		// earlier sessions) occasionally free more between the two
		// readings than the app state allocates, yielding a non-positive
		// delta; re-weigh with fresh state when that happens.
		var delta int
		for attempt := 0; attempt < 3; attempt++ {
			if app.label == "MouseController" {
				// Drop the frame held by a previous attempt so the
				// weigh starts from a clean slate; otherwise setting a
				// fresh frame frees as much as it allocates.
				_ = acquired.View.SetProperty("screen", "image", nil)
			}
			before := heapAlloc()
			if app.label == "MouseController" {
				frame := mouseSvc.Desktop().Snapshot()
				if err := acquired.View.SetProperty("screen", "image", frame); err != nil {
					return nil, err
				}
			} else {
				// Browse once so the view holds the product list + detail.
				_ = acquired.View.Inject(ui.Event{Control: "categories", Kind: ui.EventSelect, Value: "beds"})
				_ = acquired.View.Inject(ui.Event{Control: "products", Kind: ui.EventSelect, Value: "Malm"})
			}
			after := heapAlloc()
			delta = int(after) - int(before)
			if delta > 0 {
				break
			}
			delta = 0
		}
		res.ClientMemoryBytes[app.label] = delta
		acquired.Release()
	}

	printFootprint(cfg, res)
	return res, nil
}

func heapAlloc() uint64 {
	runtime.GC()
	runtime.GC()
	time.Sleep(time.Millisecond)
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return ms.HeapAlloc
}

func printFootprint(cfg Config, res *FootprintResult) {
	w := cfg.Out
	fmt.Fprintln(w, "Resource consumption (paper §4.1)")
	fmt.Fprintf(w, "%-34s %16s %16s %14s\n", "", "MouseController", "AlfredOShop", "(paper)")
	fmt.Fprintf(w, "%-34s %16d %16d %14s\n", "acquisition transfer (bytes)",
		res.TransferBytes["MouseController"], res.TransferBytes["AlfredOShop"], "~2 kB each")
	fmt.Fprintf(w, "%-34s %16d %16d %14s\n", "proxy bundle size (bytes)",
		res.ProxyArchiveBytes["MouseController"], res.ProxyArchiveBytes["AlfredOShop"], "6 kB / 7 kB")
	fmt.Fprintf(w, "%-34s %16d %16d %14s\n", "shipped descriptor (bytes)",
		res.DescriptorBytes["MouseController"], res.DescriptorBytes["AlfredOShop"], "-")
	fmt.Fprintf(w, "%-34s %16d %16d %14s\n", "client app memory (bytes)",
		res.ClientMemoryBytes["MouseController"], res.ClientMemoryBytes["AlfredOShop"], "200 kB / 30 kB")
	fmt.Fprintln(w)
}
