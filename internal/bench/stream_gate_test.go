package bench

import (
	"testing"
	"time"
)

// Stream gate budgets, enforced by `make stream-bench`. Wall-clock
// latency on a shared CI machine is noisy, so both latency gates carry
// generous multipliers and absolute slack on top of the design targets
// (invoke p99 within 10% under bulk load; fan-out p99 at 1k subs under
// 2x the 1-sub baseline) — a real priority-inversion or fan-out
// regression overshoots these by an order of magnitude.
const (
	streamGateHOLRatio = 3.0
	streamGateHOLSlack = 5 * time.Millisecond
	streamGateFanRatio = 2.0
	streamGateFanSlack = 100 * time.Millisecond
	streamGateFanSubs  = 1000
)

// TestStreamHOLGate checks the priority gate end to end: invoke p99
// with a saturating bulk stream on the same channel must stay within
// the budget of the quiet p99, and the bulk stream must actually have
// moved bytes (otherwise the measurement proves nothing). Best of three
// attempts; a genuine head-of-line regression fails all three.
func TestStreamHOLGate(t *testing.T) {
	if testing.Short() {
		t.Skip("latency gate skipped in -short")
	}
	cfg := Config{Window: 1500 * time.Millisecond}
	var last *StreamHOL
	for attempt := 1; attempt <= 3; attempt++ {
		hol, err := measureStreamHOL(cfg)
		if err != nil {
			t.Fatal(err)
		}
		last = hol
		t.Logf("attempt %d: quiet p99 %v, loaded p99 %v (ratio %.2fx, bulk %.1f MB/s)",
			attempt, hol.QuietP99, hol.LoadedP99, hol.Ratio, hol.BulkMBps)
		if hol.BulkMBps < 1 {
			t.Fatalf("bulk stream only moved %.2f MB/s; the loaded measurement is not loaded", hol.BulkMBps)
		}
		budget := time.Duration(float64(hol.QuietP99)*streamGateHOLRatio) + streamGateHOLSlack
		if hol.LoadedP99 <= budget {
			return
		}
	}
	t.Fatalf("invoke p99 under bulk load %v exceeds %.1fx quiet p99 %v (+%v slack) in all attempts",
		last.LoadedP99, streamGateHOLRatio, last.QuietP99, streamGateHOLSlack)
}

// TestStreamFanoutGate runs the 1-sub and 1k-sub fan-out points and
// gates the 1k p99 against the scaled baseline, delivery completeness
// (no coalescing on an unloaded host means every subscriber sees every
// message), and encode-once accounting (encodes track published
// messages, not deliveries).
func TestStreamFanoutGate(t *testing.T) {
	if testing.Short() {
		t.Skip("latency gate skipped in -short")
	}
	cfg := Config{}
	base, err := measureStreamFanout(cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	var wide *StreamFanoutPoint
	for attempt := 1; attempt <= 3; attempt++ {
		wide, err = measureStreamFanout(cfg, streamGateFanSubs)
		if err != nil {
			t.Fatal(err)
		}
		t.Logf("attempt %d: 1-sub p99 %v, %d-sub p99 %v, delivered %d, coalesced %d, encodes %d",
			attempt, base.P99, streamGateFanSubs, wide.P99, wide.Delivered, wide.Coalesced, wide.Encodes)
		if wide.Encodes != base.Encodes {
			t.Fatalf("encodes scaled with fan-out (%d at 1 sub, %d at %d subs): encode-once is broken",
				base.Encodes, wide.Encodes, streamGateFanSubs)
		}
		if wide.Delivered+wide.Coalesced+int64(streamGateFanSubs/10) < wide.Published*int64(streamGateFanSubs) {
			t.Fatalf("fan-out lost messages: %d published x %d subs, %d delivered + %d coalesced",
				wide.Published, streamGateFanSubs, wide.Delivered, wide.Coalesced)
		}
		budget := time.Duration(float64(base.P99)*streamGateFanRatio) + streamGateFanSlack
		if wide.P99 <= budget {
			return
		}
	}
	t.Fatalf("fan-out p99 at %d subs %v exceeds %.0fx 1-sub baseline %v (+%v slack) in all attempts",
		streamGateFanSubs, wide.P99, streamGateFanRatio, base.P99, streamGateFanSlack)
}

// TestStreamFaultGate drives the reliable credited stream across two
// link partitions and requires zero loss — the acceptance bar for the
// flow-control layer. Deterministic: partitions stall, they never drop.
func TestStreamFaultGate(t *testing.T) {
	if testing.Short() {
		t.Skip("fault gate skipped in -short")
	}
	f, err := measureStreamFaults(Config{})
	if err != nil {
		t.Fatal(err)
	}
	if f.Delivered != f.Sent {
		t.Fatalf("reliable stream lost chunks across %d partitions: %d/%d delivered",
			f.Partitions, f.Delivered, f.Sent)
	}
}
