package bench

import (
	"fmt"
	"time"

	"github.com/alfredo-mw/alfredo/internal/devsim"
	"github.com/alfredo-mw/alfredo/internal/module"
	"github.com/alfredo-mw/alfredo/internal/netsim"
	"github.com/alfredo-mw/alfredo/internal/remote"
	"github.com/alfredo-mw/alfredo/internal/service"
)

// PayloadPoint is one row of the payload-size experiment.
type PayloadPoint struct {
	Bytes int
	WLAN  time.Duration
	BT    time.Duration
}

// RunPayloadAblation quantifies the paper's §4.3 observation head-on:
// "since the messages exchanged are fairly small, the bandwidth is not
// a dominating factor unless a larger amount of data is shipped through
// the network". It measures round-trip invocation time for growing
// reply sizes over WLAN and Bluetooth: small payloads are comparable
// (latency-bound), large ones diverge with the ~8x bandwidth gap.
func RunPayloadAblation(cfg Config) ([]PayloadPoint, error) {
	cfg = cfg.withDefaults()
	sizes := []int{64, 1 << 10, 8 << 10, 64 << 10}
	fmt.Fprintln(cfg.Out, "Ablation: invocation time vs payload size (Nokia/WLAN vs M600i/BT)")
	fmt.Fprintf(cfg.Out, "%-12s %14s %14s %10s\n", "payload", "wlan11b", "bt20", "bt/wlan")

	var out []PayloadPoint
	for _, size := range sizes {
		wlan, err := measurePayload(netsim.WLAN11b, devsim.Nokia9300i(), size)
		if err != nil {
			return nil, err
		}
		bt, err := measurePayload(netsim.BT20, devsim.SonyEricssonM600i(), size)
		if err != nil {
			return nil, err
		}
		out = append(out, PayloadPoint{Bytes: size, WLAN: wlan, BT: bt})
		fmt.Fprintf(cfg.Out, "%-12d %14s %14s %9.1fx\n",
			size, fmtDur(wlan), fmtDur(bt), float64(bt)/float64(wlan))
	}
	fmt.Fprintln(cfg.Out)
	return out, nil
}

// measurePayload times one warm invocation returning a blob of the
// given size.
func measurePayload(link netsim.LinkProfile, phoneSim *devsim.Device, size int) (time.Duration, error) {
	fabric := netsim.NewFabric()

	serverFW := module.NewFramework(module.Config{Name: "server"})
	defer serverFW.Shutdown()
	serverPeer, err := remote.NewPeer(remote.Config{Framework: serverFW, Device: devsim.DesktopP4()})
	if err != nil {
		return 0, err
	}
	defer serverPeer.Close()
	blob := remote.NewService("bench.Blob").
		Method("Fetch", []string{"int"}, "bytes", func(args []any) (any, error) {
			return make([]byte, args[0].(int64)), nil
		})
	if _, err := serverFW.Registry().Register([]string{"bench.Blob"}, blob,
		service.Properties{remote.PropExported: true}, "bench"); err != nil {
		return 0, err
	}
	l, err := fabric.Listen("server")
	if err != nil {
		return 0, err
	}
	defer l.Close()
	go func() { _ = serverPeer.Serve(l) }()

	phoneFW := module.NewFramework(module.Config{Name: "phone"})
	defer phoneFW.Shutdown()
	phonePeer, err := remote.NewPeer(remote.Config{Framework: phoneFW, Device: phoneSim, Timeout: time.Minute})
	if err != nil {
		return 0, err
	}
	defer phonePeer.Close()
	conn, err := fabric.Dial("server", link)
	if err != nil {
		return 0, err
	}
	ch, err := phonePeer.Connect(conn)
	if err != nil {
		return 0, err
	}
	defer ch.Close()

	info, ok := ch.FindRemoteService("bench.Blob")
	if !ok {
		return 0, fmt.Errorf("bench: blob service not leased")
	}
	// One warmup, then average a few rounds.
	if _, err := ch.Invoke(info.ID, "Fetch", []any{int64(size)}); err != nil {
		return 0, err
	}
	const rounds = 3
	var total time.Duration
	for i := 0; i < rounds; i++ {
		t0 := time.Now()
		res, err := ch.Invoke(info.ID, "Fetch", []any{int64(size)})
		if err != nil {
			return 0, err
		}
		if b, ok := res.([]byte); !ok || len(b) != size {
			return 0, fmt.Errorf("bench: blob reply %T len mismatch", res)
		}
		total += time.Since(t0)
	}
	return total / rounds, nil
}
